package cache

import "testing"

// tableIMem replicates the paper's Table I memory system (uarch.Baseline
// cannot be imported here: uarch depends on this package).
func tableIMem() HierarchyConfig {
	return HierarchyConfig{
		IL1: Config{Name: "IL1", SizeBytes: 64 << 10, LineBytes: 64, Ways: 2, HitLatency: 1},
		DL1: Config{Name: "DL1", SizeBytes: 64 << 10, LineBytes: 64, Ways: 2, HitLatency: 3},
		L2:  Config{Name: "L2", SizeBytes: 1 << 20, LineBytes: 64, Ways: 1, HitLatency: 7},
		DTLB: TLBConfig{Name: "DTLB", Entries: 256, PageBytes: 8 << 10,
			EntryBits: 80, WalkLatency: 30},
		MemLatency: 200,
	}
}

// testHierarchy builds a small hierarchy with known latencies:
// DL1 hit 3, L2 hit 7, memory 100, walk 30.
func testHierarchy(t *testing.T) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(HierarchyConfig{
		IL1:        Config{Name: "il1", SizeBytes: 1 << 10, LineBytes: 64, Ways: 2, HitLatency: 1},
		DL1:        Config{Name: "dl1", SizeBytes: 1 << 10, LineBytes: 64, Ways: 2, HitLatency: 3},
		L2:         Config{Name: "l2", SizeBytes: 8 << 10, LineBytes: 64, Ways: 1, HitLatency: 7},
		DTLB:       TLBConfig{Name: "tlb", Entries: 4, PageBytes: 8 << 10, EntryBits: 80, WalkLatency: 30},
		MemLatency: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHierarchyValidation(t *testing.T) {
	cfg := tableIMem()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg.MemLatency = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero memory latency accepted")
	}
	cfg = tableIMem()
	cfg.DL1.LineBytes = 32
	if err := cfg.Validate(); err == nil {
		t.Error("mismatched line sizes accepted")
	}
	cfg = tableIMem()
	cfg.DL1.HitLatency = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero DL1 hit latency accepted (completion events must be strictly future)")
	}
}

func TestHierarchyChunkValidation(t *testing.T) {
	// The access contract: DL1 chunks divide the 8-byte data granule,
	// IL1 chunks divide the 4-byte fetch granule, L2 chunks divide DL1's
	// (writeback masks).
	cfg := tableIMem()
	cfg.IL1.ChunkBytes, cfg.DL1.ChunkBytes, cfg.L2.ChunkBytes = 4, 8, 8
	if err := cfg.Validate(); err != nil {
		t.Fatalf("production chunk set rejected: %v", err)
	}
	bad := []func(*HierarchyConfig){
		func(c *HierarchyConfig) { c.DL1.ChunkBytes = 16 },                     // > data granule
		func(c *HierarchyConfig) { c.IL1.ChunkBytes = 8 },                      // > fetch granule
		func(c *HierarchyConfig) { c.DL1.ChunkBytes = 4; c.L2.ChunkBytes = 8 }, // L2 ∤ DL1
	}
	for i, mut := range bad {
		c := tableIMem()
		c.IL1.ChunkBytes, c.DL1.ChunkBytes, c.L2.ChunkBytes = 4, 8, 8
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad chunk combination %d accepted", i)
		}
	}
}

func TestDataLatencyLadder(t *testing.T) {
	h := testHierarchy(t)
	// Cold access: TLB walk (30) + memory (100) + DL1 fill + DL1 hit (3).
	lat, dl1Miss, l2Miss := h.Data(0, 0x1000, 8, false)
	if !dl1Miss || !l2Miss {
		t.Fatal("cold access should miss both levels")
	}
	if lat != 30+100+3 {
		t.Errorf("cold latency %d, want 133", lat)
	}
	// Re-access: everything hits.
	lat, dl1Miss, l2Miss = h.Data(200, 0x1000, 8, false)
	if dl1Miss || l2Miss || lat != 3 {
		t.Errorf("warm access: lat=%d dl1Miss=%v l2Miss=%v", lat, dl1Miss, l2Miss)
	}
	// Evict from DL1 only (fill conflicting lines): next access is an L2 hit.
	h.Data(300, 0x1000+1024, 8, false)
	h.Data(310, 0x1000+2048, 8, false)
	lat, dl1Miss, l2Miss = h.Data(400, 0x1000, 8, false)
	if !dl1Miss || l2Miss {
		t.Fatalf("expected DL1 miss / L2 hit, got dl1Miss=%v l2Miss=%v", dl1Miss, l2Miss)
	}
	if lat != 7+3 {
		t.Errorf("L2-hit latency %d, want 10", lat)
	}
}

func TestDirtyWritebackReachesL2(t *testing.T) {
	h := testHierarchy(t)
	h.Data(0, 0x1000, 8, true) // dirty in DL1
	// Evict 0x1000 from DL1 with two conflicting fills.
	h.Data(100, 0x1000+1024, 8, false)
	h.Data(110, 0x1000+2048, 8, false)
	if h.L2.Writebacks != 0 {
		t.Error("L2 should not have written back yet")
	}
	// The dirty line's bytes must now be marked written in L2: evicting it
	// from L2 (or finalizing) counts write→evict ACE.
	before := h.L2.aceBytes()
	h.L2.Finalize(500)
	if h.L2.aceBytes() == before {
		t.Error("dirty writeback did not mark L2 bytes (no write→evict ACE)")
	}
}

func TestFetchPath(t *testing.T) {
	h := testHierarchy(t)
	if extra := h.Fetch(0, 0x8000); extra == 0 {
		t.Error("cold fetch should pay an L2/memory penalty")
	}
	if extra := h.Fetch(10, 0x8004); extra != 0 {
		t.Errorf("same-line fetch should hit IL1, got extra %d", extra)
	}
}

func TestUnifiedL2SeesInstructionLines(t *testing.T) {
	h := testHierarchy(t)
	h.Fetch(0, 0x8000)
	if !h.L2.Probe(0x8000) {
		t.Error("instruction line not allocated in the unified L2")
	}
}

func TestHierarchyResets(t *testing.T) {
	h := testHierarchy(t)
	// Cold write: TLB walk (30) + memory (100) put the DL1 write at t=133.
	h.Data(0, 0x1000, 8, true)
	h.Fetch(0, 0x8000)
	h.ResetACE(150)
	h.ResetStats()
	if h.DL1.Accesses != 0 || h.L2.Accesses != 0 || h.DTLB.Accesses != 0 {
		t.Error("stats survived reset")
	}
	h.Finalize(200)
	// The dirty bytes written at t=133 are clipped at the window start:
	// ACE = (200-150) × 8 bytes, not (200-133) × 8.
	if got := h.DL1.aceBytes(); got != 8*50 {
		t.Errorf("clipped dirty ACE %d byte-cycles, want 400", got)
	}
}

func TestBaselineHierarchyGeometry(t *testing.T) {
	// Table I geometry survives into the built caches.
	h, err := NewHierarchy(tableIMem())
	if err != nil {
		t.Fatal(err)
	}
	if h.DL1.Lines() != 1024 {
		t.Errorf("DL1 lines = %d, want 1024", h.DL1.Lines())
	}
	if h.L2.Lines() != 16384 {
		t.Errorf("L2 lines = %d, want 16384", h.L2.Lines())
	}
	if h.DTLB.Config().Entries != 256 {
		t.Errorf("DTLB entries = %d, want 256", h.DTLB.Config().Entries)
	}
}
