package experiments

import (
	"strings"
	"testing"

	"avfstress/internal/scenario"
	"avfstress/internal/sched"
	"avfstress/internal/simcache"
)

// TestResolveSpecFaultInject: the short form expands with the spec's
// config/rates/trials, the full form passes through, malformed trial
// counts are rejected.
func TestResolveSpecFaultInject(t *testing.T) {
	names, err := ResolveSpec(scenario.Spec{Scenarios: []string{"faultinject"}})
	if err != nil {
		t.Fatal(err)
	}
	if names[0] != "faultinject:baseline:uniform:1000" {
		t.Errorf("default expansion = %q", names[0])
	}
	names, err = ResolveSpec(scenario.Spec{
		Scenarios: []string{"faultinject"}, Config: "configA", Rates: "edr", InjectTrials: 250,
	})
	if err != nil {
		t.Fatal(err)
	}
	if names[0] != "faultinject:configA:edr:250" {
		t.Errorf("parameterised expansion = %q", names[0])
	}
	if _, err := ResolveSpec(scenario.Spec{Scenarios: []string{"faultinject:baseline:uniform:250"}}); err != nil {
		t.Errorf("full form rejected: %v", err)
	}
	for _, bad := range []string{
		"faultinject:baseline:uniform:0",
		"faultinject:baseline:uniform:x",
		"faultinject:nope:uniform:10",
		"faultinject:baseline:nope:10",
		"faultinject:baseline:uniform",
		"rootcause:baseline:uniform:0",
		"rootcause:nope:uniform:10",
		"rootcause:baseline:uniform",
	} {
		if _, err := ResolveSpec(scenario.Spec{Scenarios: []string{bad}}); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

// TestResolveSpecRootCause: the rootcause short form expands exactly
// like faultinject (the two views share one study), with the spec's
// config/rates/trials or their defaults.
func TestResolveSpecRootCause(t *testing.T) {
	names, err := ResolveSpec(scenario.Spec{
		Scenarios: []string{"rootcause"}, Config: "configA", Rates: "edr", InjectTrials: 250,
	})
	if err != nil {
		t.Fatal(err)
	}
	if names[0] != "rootcause:configA:edr:250" {
		t.Errorf("parameterised expansion = %q", names[0])
	}
	// Unparameterised, the bare name is the registered default
	// experiment and passes through verbatim.
	names, err = ResolveSpec(scenario.Spec{Scenarios: []string{"rootcause"}})
	if err != nil {
		t.Fatal(err)
	}
	if names[0] != "rootcause" {
		t.Errorf("bare name resolved to %q, want the registered experiment", names[0])
	}
	names, err = ResolveSpec(scenario.Spec{Scenarios: []string{"rootcause"}, InjectTrials: 40})
	if err != nil {
		t.Fatal(err)
	}
	if names[0] != "rootcause:baseline:uniform:40" {
		t.Errorf("trial-count expansion = %q", names[0])
	}
	if _, err := ResolveSpec(scenario.Spec{Scenarios: []string{"rootcause:baseline:rhc:40"}}); err != nil {
		t.Errorf("full form rejected: %v", err)
	}
}

// TestFaultInjectScenario runs a small faultinject scenario end to end
// through the scheduler path and checks the declared-jobs purity
// contract: after the declared jobs have run, rendering replays
// nothing.
func TestFaultInjectScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("injection campaigns in -short mode")
	}
	store := simcache.New(simcache.Options{})
	opts := smallOpts()
	opts.Cache = store
	c := NewContext(opts)
	name := "faultinject:baseline:uniform:20"
	d, err := c.lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(bg, d.Jobs(), sched.Options{}); err != nil {
		t.Fatalf("declared jobs: %v", err)
	}
	before := store.Stats().Simulated
	out, err := d.Render(bg)
	if err != nil {
		t.Fatal(err)
	}
	if after := store.Stats().Simulated; after != before {
		t.Errorf("render simulated %d times beyond the declared jobs", after-before)
	}
	for _, want := range []string{
		"Fault-injection validation", "bit-weighted AVF, injection vs ACE", "derated (rate-weighted)",
		"403.gcc", "qsort", "stressmark campaign, per structure", "ROB", "overall",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	// Same spec, fresh context sharing the store: byte-identical report,
	// campaigns replayed entirely from the blob tier.
	c2 := NewContext(opts)
	out2, err := c2.Run(bg, name)
	if err != nil {
		t.Fatal(err)
	}
	if out2 != out {
		t.Errorf("warm-store report differs:\n%s\nvs\n%s", out2, out)
	}

	// The rootcause view of the same parameters shares the memoised
	// study: rendering it on the warm context replays nothing and emits
	// the attribution tables.
	rd, err := c2.lookup("rootcause:baseline:uniform:20")
	if err != nil {
		t.Fatal(err)
	}
	before = store.Stats().Simulated
	rout, err := rd.Render(bg)
	if err != nil {
		t.Fatal(err)
	}
	if after := store.Stats().Simulated; after != before {
		t.Errorf("rootcause render simulated %d times beyond the shared study", after-before)
	}
	for _, want := range []string{
		"Root-cause instruction analysis", "instantaneous worst case",
		"Root-cause instructions", "Root-cause instruction classes",
		"SDC density", "403.gcc",
	} {
		if !strings.Contains(rout, want) {
			t.Errorf("rootcause report missing %q:\n%s", want, rout)
		}
	}
}
