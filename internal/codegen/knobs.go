// Package codegen is the paper's stressmark code generator (§IV-B): it
// turns a small set of knob values into a synthetic loop program in which
// every instruction is ACE (every produced value transitively reaches a
// store, and stored locations are program output).
//
// The generator reproduces the structure of the paper's Figure 2:
//
//	loop:
//	    p = Array[p + i]          ; self-dependent strided load,
//	                              ; L2 miss (or L2 hit, per the switch)
//	    i = i + stride            ; induction
//	    <instructions dependent on p>        ; IQ occupancy in the shadow
//	    <loads covering the previous line>   ; DL1/DTLB coverage (hits)
//	    <ACE add/mul chains>                 ; ILP / latency control
//	    <stores covering the previous line>  ; close every chain
//	    branch loop
//
// All placement decisions are deterministic functions of the knobs
// (including the random seed knob), so a knob vector is a complete,
// reproducible description of a candidate stressmark.
package codegen

import (
	"fmt"
	"strings"

	"avfstress/internal/uarch"
)

// Knobs are the code-generator parameters exposed to the genetic
// algorithm, mirroring §IV-B of the paper.
type Knobs struct {
	// LoopSize is the number of instructions in the loop body, capped at
	// 1.2× the ROB size (the paper's restriction).
	LoopSize int
	// NumLoads is the total number of loads, including the pointer-chase
	// load.
	NumLoads int
	// NumStores is the number of stores.
	NumStores int
	// NumIndepArith is the number of arithmetic instructions independent
	// of any load (they chain from the induction variable).
	NumIndepArith int
	// MissDependent is the number of instructions transitively dependent
	// on the chase load ("instructions dependent on L2 miss"), which
	// populate the issue queue in the miss shadow.
	MissDependent int
	// AvgChainLength is the target average length of the arithmetic
	// chain between a load and its terminal store.
	AvgChainLength float64
	// DepDistance is the number of instructions between two dependent
	// instructions (the scheduler interleaves that many chains).
	DepDistance int
	// FracLongLatency is the fraction of chain arithmetic that uses the
	// long-latency multiplier.
	FracLongLatency float64
	// FracRegReg is the fraction of arithmetic in register-register form
	// (extra register reads keep more architected values ACE).
	FracRegReg float64
	// Seed randomises instruction placement and long/short-latency
	// assignment.
	Seed int64
	// L2Hit switches to the second code generator, in which the chase
	// load hits in L2 (misses only DL1) — the generator the paper's GA
	// selects for the EDR configuration.
	L2Hit bool
}

// String renders the knob table in the style of the paper's Figure 5(a).
func (k Knobs) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-44s %v\n", "Loop Size", k.LoopSize)
	fmt.Fprintf(&b, "%-44s %v\n", "No. of loads", k.NumLoads)
	fmt.Fprintf(&b, "%-44s %v\n", "No. of stores", k.NumStores)
	fmt.Fprintf(&b, "%-44s %v\n", "No. of Independent Arithmetic Instructions", k.NumIndepArith)
	mode := "miss"
	if k.L2Hit {
		mode = "hit"
	}
	fmt.Fprintf(&b, "No. of instructions dependent on L2 %-8s %v\n", mode, k.MissDependent)
	fmt.Fprintf(&b, "%-44s %.2f\n", "Avg. Dependence Chain Length", k.AvgChainLength)
	fmt.Fprintf(&b, "%-44s %v\n", "Dependency Distance", k.DepDistance)
	fmt.Fprintf(&b, "%-44s %.2f\n", "Fraction of Long Latency Arithmetic", k.FracLongLatency)
	fmt.Fprintf(&b, "%-44s %.2f\n", "Fraction of Reg-Reg arithmetic instructions", k.FracRegReg)
	return b.String()
}

// Fingerprint returns a canonical description of the knob vector for
// internal/simcache keys. The generator is a deterministic function of
// (config, knobs), so the knobs are a complete content address for the
// generated program; float fields render in Go's shortest round-trip
// form, so distinct values never collapse. %#v (not %+v) is essential:
// Knobs implements Stringer, and %+v would render the lossy display
// table — which omits Seed entirely and rounds the float knobs to two
// decimals, silently aliasing distinct candidates in the cache.
func (k Knobs) Fingerprint() string {
	return fmt.Sprintf("%#v", k)
}

// reserved instructions: chase load, induction add, loop branch.
const reserved = 3

// MaxLoopFactor is the paper's cap on loop size relative to the ROB.
const MaxLoopFactor = 1.2

// MaxDepDistance bounds the scheduler's interleaving width (the register
// file must hold roughly two live values per interleaved chain).
const MaxDepDistance = 12

// Normalize clamps and repairs the knobs into a feasible configuration
// for cfg, deterministically: the same input always yields the same
// output, and a normalised knob set is a fixed point. The repair order
// (chain arithmetic, then independent arithmetic, then miss-dependent
// instructions, then loads/stores) drops the lowest-impact structure
// first.
func (k Knobs) Normalize(cfg uarch.Config) Knobs {
	maxLoop := int(MaxLoopFactor * float64(cfg.Core.ROBEntries))
	k.LoopSize = clampInt(k.LoopSize, reserved+1, maxLoop)
	k.NumLoads = clampInt(k.NumLoads, 1, k.LoopSize)
	k.NumStores = clampInt(k.NumStores, 1, k.LoopSize)
	k.NumIndepArith = clampInt(k.NumIndepArith, 0, k.LoopSize)
	k.MissDependent = clampInt(k.MissDependent, 0, cfg.Core.IQEntries)
	if k.AvgChainLength < 0 {
		k.AvgChainLength = 0
	}
	if k.AvgChainLength > 16 {
		k.AvgChainLength = 16
	}
	k.DepDistance = clampInt(k.DepDistance, 1, MaxDepDistance)
	k.FracLongLatency = clamp01(k.FracLongLatency)
	k.FracRegReg = clamp01(k.FracRegReg)

	// The rP chain always ends in a store; the independent chain needs a
	// second store. With a single store there is no room for independent
	// arithmetic.
	if k.NumStores < 2 {
		k.NumIndepArith = 0
	}
	// Sweep loads need at least one load-rooted chain to close into.
	if k.loadChains() == 0 {
		k.NumLoads = 1
	}

	// Shrink until the body fits: budget = LoopSize - reserved must hold
	// sweep loads, stores, the two special chains, and enough chain
	// arithmetic to fold any loads in excess of the available chains.
	for {
		budget := k.LoopSize - reserved
		sweep := k.NumLoads - 1
		need := sweep + k.NumStores + k.NumIndepArith + k.MissDependent + k.foldsNeeded()
		if need <= budget {
			break
		}
		switch {
		case k.NumIndepArith > 0:
			k.NumIndepArith--
		case k.MissDependent > 0:
			k.MissDependent--
		case k.NumLoads > 1 && k.NumLoads >= k.NumStores:
			k.NumLoads--
		case k.NumStores > 1:
			k.NumStores--
		default:
			// 1 load + 1 store always fit (LoopSize ≥ reserved+1).
			k.NumLoads, k.NumStores = 1, 1
		}
	}
	// Without load chains the residual chain arithmetic has no chain to
	// live in: shrink the loop to the exact body the special chains need.
	if k.loadChains() == 0 {
		k.LoopSize = reserved + k.NumStores + k.NumIndepArith + k.MissDependent
	}
	return k
}

// foldsNeeded returns how many chain-arithmetic slots are consumed by
// folding sweep loads in excess of the available load chains.
func (k Knobs) foldsNeeded() int {
	chains := k.loadChains()
	extra := (k.NumLoads - 1) - chains
	if extra < 0 {
		return 0
	}
	return extra
}

// loadChains returns how many stores remain for load-rooted chains after
// the dedicated rP-chain store and independent-chain store.
func (k Knobs) loadChains() int {
	n := k.NumStores - 1 // rP chain store
	if k.NumIndepArith > 0 {
		n--
	}
	if n < 0 {
		n = 0
	}
	return n
}

// ChainArith returns the number of body slots left for load-chain
// arithmetic after all other components (derived, not a free knob).
func (k Knobs) ChainArith() int {
	return k.LoopSize - reserved - (k.NumLoads - 1) - k.NumStores -
		k.NumIndepArith - k.MissDependent
}

// EffectiveChainLength reports the realised average dependence-chain
// length (chain arithmetic per load chain), the quantity the paper
// reports in its knob tables.
func (k Knobs) EffectiveChainLength() float64 {
	c := k.loadChains()
	if c == 0 {
		return 0
	}
	return float64(k.ChainArith()) / float64(c)
}

// Validate reports whether the knobs are feasible for cfg without
// repair. Normalize(cfg) always yields a valid set.
func (k Knobs) Validate(cfg uarch.Config) error {
	n := k.Normalize(cfg)
	if n != k {
		return fmt.Errorf("codegen: knobs not normalised for %s: have %+v, want %+v", cfg.Name, k, n)
	}
	return nil
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
