package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"avfstress/internal/scenario"
	"avfstress/internal/sched"
	"avfstress/internal/simcache"
)

// TestRegistryCoversNames: every published experiment name resolves to
// a registered scenario, and the registry preserves paper order.
func TestRegistryCoversNames(t *testing.T) {
	c := NewContext(smallOpts())
	reg := c.Registry()
	regNames := reg.Names()
	names := Names()
	if len(regNames) != len(names) {
		t.Fatalf("registry has %d scenarios, Names() has %d", len(regNames), len(names))
	}
	for i, n := range names {
		if regNames[i] != n {
			t.Errorf("registry order diverges at %d: %q vs %q", i, regNames[i], n)
		}
		d, err := reg.Lookup(n)
		if err != nil {
			t.Errorf("%s: %v", n, err)
			continue
		}
		if d.Render == nil {
			t.Errorf("%s has no render step", n)
		}
	}
}

// TestUnknownNameDescriptiveError: unknown names keep the historical
// descriptive error listing the valid experiments.
func TestUnknownNameDescriptiveError(t *testing.T) {
	c := NewContext(smallOpts())
	for _, call := range []func() error{
		func() error { _, err := c.Run(bg, "bogus"); return err },
		func() error { _, err := c.RunScenarios(bg, []string{"fig3", "bogus"}); return err },
	} {
		err := call()
		if err == nil {
			t.Fatal("unknown experiment accepted")
		}
		for _, want := range []string{"unknown experiment", `"bogus"`, "fig3", "hvf"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("error %q does not mention %q", err, want)
			}
		}
	}
}

// TestRunAllMatchesSequential is the tentpole's byte-identity lock: the
// concurrent, scheduler-driven RunAll must produce exactly the combined
// report of the pre-refactor sequential path — each experiment rendered
// in paper order between 72-char '=' rules, joined by blank lines —
// whatever order the scheduler completes jobs in.
func TestRunAllMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite in -short mode")
	}
	store := simcache.New(simcache.Options{})
	opts := smallOpts()
	opts.Cache = store

	// The sequential reference: one experiment at a time, in order,
	// assembled exactly like the historical RunAll.
	seq := NewContext(opts)
	var b strings.Builder
	for _, n := range Names() {
		s, err := seq.Run(bg, n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		fmt.Fprintf(&b, "%s\n%s\n%s\n\n", strings.Repeat("=", 72), s, strings.Repeat("=", 72))
	}

	conc := NewContext(opts)
	conc.Opts.Parallelism = 8 // force real scheduler concurrency
	got, err := conc.RunAll(bg)
	if err != nil {
		t.Fatal(err)
	}
	if got != b.String() {
		t.Errorf("concurrent RunAll diverges from the sequential assembly (%d vs %d bytes)",
			len(got), len(b.String()))
	}
}

// TestRunAllErrorPathReturnsEmptyReport is the satellite regression
// test: on any error the combined report must be empty, never a partial
// render alongside a non-nil error.
func TestRunAllErrorPathReturnsEmptyReport(t *testing.T) {
	c := NewContext(smallOpts())
	boom := errors.New("boom")
	if err := c.Registry().Register(scenario.Definition{
		Name: "boom",
		Render: func(context.Context) (string, error) {
			return "partial output that must not leak", boom
		},
	}); err != nil {
		t.Fatal(err)
	}
	out, err := c.RunScenarios(bg, []string{"table1", "boom"})
	if !errors.Is(err, boom) {
		t.Fatalf("error lost: %v", err)
	}
	if out != "" {
		t.Errorf("error path returned a partial report (%d bytes)", len(out))
	}
	// A pre-cancelled context: same contract, and the context's error.
	ctx, cancel := context.WithCancel(bg)
	cancel()
	out, err = NewContext(smallOpts()).RunAll(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if out != "" {
		t.Errorf("cancelled RunAll returned a partial report (%d bytes)", len(out))
	}
}

// TestDeclaredJobsCoverRender locks the declared-jobs purity invariant
// (DESIGN.md §8): once a scenario's declared jobs have run, rendering
// performs no further simulation — so the scheduler can treat the
// declarations as the complete work list.
func TestDeclaredJobsCoverRender(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite in -short mode")
	}
	for _, name := range Names() {
		store := simcache.New(simcache.Options{})
		opts := smallOpts()
		opts.Cache = store
		c := NewContext(opts)
		d, err := c.lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		var jobs []scenario.Job
		if d.Jobs != nil {
			jobs = d.Jobs()
		}
		if err := sched.Run(bg, jobs, sched.Options{}); err != nil {
			t.Fatalf("%s jobs: %v", name, err)
		}
		before := store.Stats().Simulated
		if _, err := d.Render(bg); err != nil {
			t.Fatalf("%s render: %v", name, err)
		}
		if after := store.Stats().Simulated; after != before {
			t.Errorf("%s render simulated %d times beyond its declared jobs",
				name, after-before)
		}
	}
}

// TestParametricScenarios: the stressmark/workloads parametric forms
// resolve, run and render through the same scheduler path.
func TestParametricScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite in -short mode")
	}
	c := NewContext(smallOpts())
	out, err := c.Run(bg, "stressmark:baseline:uniform")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Stressmark —", "uniform rates", "fitness:"} {
		if !strings.Contains(out, want) {
			t.Errorf("stressmark render missing %q", want)
		}
	}
	out, err = c.Run(bg, "workloads:baseline:mibench")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "dijkstra") || !strings.Contains(out, "QS+RF") {
		t.Errorf("workloads render incomplete:\n%s", out)
	}
	if _, err := c.Run(bg, "stressmark:baseline:cosmic"); err == nil {
		t.Error("bad parametric rates accepted")
	}
	if _, err := c.Run(bg, "workloads:pentium:all"); err == nil {
		t.Error("bad parametric config accepted")
	}
}

// TestResolveSpec: short forms expand with the spec's fields, empty
// scenario lists mean the full suite, and bad names are rejected.
func TestResolveSpec(t *testing.T) {
	names, err := ResolveSpec(scenario.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(names, ",") != strings.Join(Names(), ",") {
		t.Errorf("empty spec resolves to %v", names)
	}
	names, err = ResolveSpec(scenario.Spec{
		Scenarios: []string{"stressmark", "workloads", "fig5"},
		Config:    "configA", Rates: "edr", Suite: "specfp",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"stressmark:configA:edr", "workloads:configA:specfp", "fig5"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("short forms resolved to %v, want %v", names, want)
	}
	if _, err := ResolveSpec(scenario.Spec{Scenarios: []string{"nope"}}); err == nil {
		t.Error("unknown scenario accepted")
	}
	if _, err := ResolveSpec(scenario.Spec{Mode: "guess"}); err == nil {
		t.Error("invalid spec accepted")
	}
}

// TestCancellationMidSearchPropagates is the satellite cancellation
// test at the experiments layer: cancelling during a GA search stops
// the run with context.Canceled, and the shared store is left valid —
// re-running the same scenario afterwards renders byte-identically to a
// virgin-store control.
func TestCancellationMidSearchPropagates(t *testing.T) {
	if testing.Short() {
		t.Skip("GA search in -short mode")
	}
	store := simcache.New(simcache.Options{})
	opts := Options{
		Scale: 32, Seed: 1, GAPop: 6, GAGens: 4, Parallelism: 1,
		WorkloadInstr: 40_000, WorkloadWarmup: 10_000,
		Cache: store,
	}
	ctx, cancel := context.WithCancel(bg)
	gens := 0
	cancelOpts := opts
	cancelOpts.Logf = func(f string, args ...interface{}) {
		if strings.Contains(f, "gen %d/%d") {
			if gens++; gens == 1 {
				cancel()
			}
		}
	}
	_, err := NewContext(cancelOpts).RunScenarios(ctx, []string{"fig5"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled through the scenario path, got %v", err)
	}

	resumed, err := NewContext(opts).Run(bg, "fig5")
	if err != nil {
		t.Fatal(err)
	}
	control, err := NewContext(Options{
		Scale: 32, Seed: 1, GAPop: 6, GAGens: 4, Parallelism: 1,
		WorkloadInstr: 40_000, WorkloadWarmup: 10_000,
	}).Run(bg, "fig5")
	if err != nil {
		t.Fatal(err)
	}
	if resumed != control {
		t.Error("resuming from a cancelled store changed the fig5 report")
	}
}
