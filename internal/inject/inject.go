// Package inject is the Monte Carlo statistical fault-injection
// campaign engine (DESIGN.md §9): the standard cross-check for an
// ACE-based AVF estimator. A campaign samples single-bit fault targets
// (structure, bit, cycle) uniformly over the bit-cycle space of a
// golden (fault-free) simulation, replays the run deterministically
// with each fault injected (internal/pipe.RunFault), classifies every
// trial as masked, SDC or detected, and aggregates per-structure and
// derated AVF estimates with 95% binomial confidence intervals — which
// the ACE-based AVF must fall inside for the estimator to validate.
//
// Campaigns are deterministic end to end: targets derive from a
// splitmix64 stream seeded by (Seed, structure, trial index), replays
// are pure functions of (config, program, budget, fault), and the
// rendered report is byte-identical across runs, worker counts and
// cache states. Trials memoise their outcomes in internal/simcache
// keyed by (golden fingerprint, target), so overlapping campaigns and
// warm re-runs replay only the marginal trials; the marginal trials
// themselves are bucketed by the nearest golden-run checkpoint
// preceding their injection cycle and fan out as one fork-replay job
// per bucket through internal/sched, so most replays resume mid-run
// instead of re-simulating from cycle zero (DESIGN.md §10).
package inject

import (
	"context"
	"crypto/sha256"
	"fmt"
	"strings"
	"sync"

	"avfstress/internal/avf"
	"avfstress/internal/liveness"
	"avfstress/internal/pipe"
	"avfstress/internal/prog"
	"avfstress/internal/report"
	"avfstress/internal/rootcause"
	"avfstress/internal/scenario"
	"avfstress/internal/sched"
	"avfstress/internal/simcache"
	"avfstress/internal/uarch"
)

// Options parameterises one campaign.
type Options struct {
	// Config is the microarchitecture under injection.
	Config uarch.Config
	// Program is the workload whose golden run defines the sampling
	// space.
	Program *prog.Program
	// Run budgets the golden run and every replay.
	Run pipe.RunConfig
	// Rates weight the derated aggregate and define the outcome
	// taxonomy: a structure with rate zero is detection-protected (EDR),
	// so its corrupting trials classify as detected (DUE), not SDC. The
	// zero value means uniform 1 unit/bit.
	Rates uarch.FaultRates
	// Trials is the total trial budget, allocated to structures in
	// proportion to their bit counts (default 1000).
	Trials int
	// MinPerStructure floors each structure's allocation so small
	// structures still get a usable stratum (default 16; the aggregate
	// estimator is stratified, so allocation affects variance only, not
	// bias).
	MinPerStructure int
	// Seed drives target sampling (default 1).
	Seed int64
	// Structures restricts the campaign (default: every SER-tracked
	// structure).
	Structures []uarch.Structure
	// Parallelism bounds concurrent trial replays (0 = GOMAXPROCS).
	Parallelism int
	// Cache, when set, memoises per-trial outcomes content-addressed by
	// (golden fingerprint, target); nil replays every trial.
	Cache *simcache.Store
	// CheckpointInterval controls golden-run checkpoint capture for
	// fork-replay: 0 (the default) picks the interval automatically, a
	// positive value checkpoints every that many measured cycles, and a
	// negative value disables checkpointing so every replay starts from
	// cycle zero. Checkpoints only accelerate replays — outcomes, trial
	// cache keys and the rendered report are byte-identical at any
	// setting.
	CheckpointInterval int64
	// PruneStatic controls static liveness pruning of the injection
	// space (DESIGN.md §12): 0 (the default) and any positive value
	// enable it, a negative value disables it (the benchmark baseline,
	// mirroring CheckpointInterval). When enabled, campaign setup
	// intersects every sampled target with the statically proven dead
	// set — capped queue entries, never-popped physical registers and
	// recorded dead-definition occupancies — classifies those targets
	// as masked analytically with zero replays, and re-allocates the
	// freed trial budget across the live subspace, so the same budget
	// buys a tighter confidence interval. Pruning changes which targets
	// replay, never any replay's outcome; with it disabled the campaign
	// is byte-identical to the legacy sampler.
	PruneStatic int
	// Retry bounds scheduler retries of transiently failing trial jobs
	// (zero value: no retries). Retries change wall-clock only, never
	// outcomes — trials are deterministic and memoised.
	Retry sched.RetryPolicy
	// Executor, when set, arbitrates bucket and trial jobs across
	// campaign-fabric nodes (DESIGN.md §13): every node derives the
	// same buckets, exactly one runs each cold, the rest assemble from
	// the shared store. Nil runs the whole campaign locally. Sharding
	// changes wall-clock only — sampling is up-front and outcomes are
	// content-addressed, so reports stay byte-identical.
	Executor sched.Executor
	// RootCause, when set, attributes every corrupting trial to the
	// program instruction whose value the flipped bit held
	// (internal/rootcause, DESIGN.md §14) and attaches the
	// per-instruction and per-class vulnerability tables to the result.
	// Attribution reuses the first-divergent-commit records every trial
	// replay already produces, so enabling it adds zero replays and
	// trial cache blobs stay shared with non-attributing campaigns.
	RootCause bool
}

func (o Options) withDefaults() Options {
	var zero uarch.FaultRates
	if o.Rates == zero {
		o.Rates = uarch.UniformRates(1)
	}
	if o.Trials <= 0 {
		o.Trials = 1000
	}
	if o.MinPerStructure <= 0 {
		o.MinPerStructure = 16
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Structures) == 0 {
		o.Structures = make([]uarch.Structure, uarch.NumStructures)
		for s := range o.Structures {
			o.Structures[s] = uarch.Structure(s)
		}
	}
	return o
}

// Interval is a confidence interval.
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether x lies inside the interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// StructureResult is one campaign stratum.
type StructureResult struct {
	Structure uarch.Structure
	Bits      uint64
	// Trials counts the stratum's trial slots: replayed trials plus
	// statically pruned targets, so SDC+Detected+Masked+Pruned always
	// reconciles with Trials.
	Trials   int
	SDC      int
	Detected int
	Masked   int
	// Pruned counts targets the static liveness filter classified
	// masked analytically (zero replays). PruneFrac is the dead
	// fraction of the stratum's bit-cycle space the estimator corrects
	// for (exactly zero when pruning is disabled), and StaticBound the
	// tightened static ACE upper bound: the paper's all-bits bound 1.0
	// minus the statically proven dead fraction (reported even when
	// pruning is disabled — it is a static fact of the workload).
	Pruned      int
	PruneFrac   float64
	StaticBound float64
	// AVF is the injection-measured vulnerability: the corrupted
	// fraction over replayed trials (SampleAVF) scaled by the live
	// fraction 1−PruneFrac, since replays sample only the live
	// subspace — detection changes the outcome class, not the
	// underlying vulnerability — with its similarly scaled Wilson 95%
	// confidence interval and the golden run's ACE-based AVF beside
	// it. Phase1* split out the outcome counts of the first sampling
	// phase, whose draws are stream-identical to an unpruned
	// campaign's; the pruned-campaign benchmark reconciles them
	// against the baseline's counts.
	AVF       float64
	SampleAVF float64
	CI        Interval
	ACE       float64

	Phase1SDC, Phase1Detected, Phase1Masked int
}

// Result is the outcome of one campaign.
type Result struct {
	Config   string
	Workload string
	Seed     int64
	Trials   int // trial slots: replays plus pruned targets (≥ Options.Trials after flooring)

	// Golden is the fault-free run the campaign validates, GoldenDigest
	// its committed-state digest (the reference of every replay's
	// architectural-state diff) and WindowStart/WindowCycles the sampled
	// cycle space.
	Golden       *avf.Result
	GoldenDigest uint64
	WindowStart  int64
	WindowCycles int64

	Structures []StructureResult

	// AVF is the bit-weighted injection-measured AVF over the campaign's
	// structures with its stratified 95% confidence interval; ACEAVF is
	// the bit-weighted ACE counterpart. Derated* repeat the comparison
	// under the fault-rate weighting (rate×bits per structure).
	AVF        float64
	CI         Interval
	ACEAVF     float64
	DeratedAVF float64
	DeratedCI  Interval
	DeratedACE float64

	SDC, Detected, Masked int

	// Pruned totals the statically pruned targets across strata,
	// StaticBound is the bit-weighted tightened static ACE upper bound
	// and PruneEnabled records whether the filter was active.
	Pruned       int
	StaticBound  float64
	PruneEnabled bool

	// RootCause holds the instruction-level attribution of the
	// campaign's corrupted trials when Options.RootCause was set; nil
	// otherwise.
	RootCause *rootcause.Result
}

// rng is a splitmix64 stream: a fixed, documented generator so
// campaigns are reproducible across platforms and Go versions
// (math/rand's stream is not part of its compatibility promise).
// The full sequential construction — golden-gamma counter plus
// finalizer — is used rather than ad-hoc finalizer hashing of trial
// indices: the finalizer alone over near-identical inputs leaves
// measurable structure in the low bits that the modulo reductions
// consume, enough to push a thousand-trial stratum several sigma off
// its mean.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// stratumRNG returns the sampling stream of one structure's stratum,
// decorrelated from the seed and the structure index by one finalizer
// round each.
func stratumRNG(seed int64, s uarch.Structure) rng {
	r := rng{state: uint64(seed)}
	a := r.next()
	r.state = a ^ (uint64(s)+1)*0xbf58476d1ce4e5b9
	b := r.next()
	return rng{state: a ^ b}
}

// allocate splits the trial budget across structures proportionally to
// weight (largest-remainder rounding, ties broken in structure order),
// then floors every stratum at min. Deterministic.
func allocate(total, min int, weights []float64) []int {
	n := make([]int, len(weights))
	rem := make([]float64, len(weights))
	allocated := 0
	for i, w := range weights {
		exact := float64(total) * w
		n[i] = int(exact)
		rem[i] = exact - float64(n[i])
		allocated += n[i]
	}
	for allocated < total {
		best := -1
		for i := range rem {
			if best < 0 || rem[i] > rem[best] {
				best = i
			}
		}
		n[best]++
		rem[best] = -1
		allocated++
	}
	for i := range n {
		if n[i] < min {
			n[i] = min
		}
	}
	return n
}

// Run executes the campaign: one golden simulation, then Trials fault
// replays fanned out as deduplicated jobs on internal/sched. The
// context cancels between replays.
func Run(ctx context.Context, o Options) (*Result, error) {
	o = o.withDefaults()
	if err := o.Config.Validate(); err != nil {
		return nil, err
	}
	if o.Program == nil {
		return nil, fmt.Errorf("inject: no program")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pool, err := pipe.NewPool(o.Config)
	if err != nil {
		return nil, err
	}
	// The static liveness pass runs unconditionally: its dead-definition
	// set drives the golden run's interval recording, and the recorded
	// facts are cached — blob content must not depend on the producing
	// campaign's PruneStatic setting.
	live := liveness.Analyze(o.Program, o.Config.Core)
	cfgFP := o.Config.Fingerprint()
	progFP := "prog:" + o.Program.Fingerprint()
	rcFP := o.Run.Fingerprint()

	// Golden run: checkpoint-capturing and cache-aware. The result key
	// deliberately matches the workload-simulation key internal/
	// experiments uses, so campaigns and experiments share one golden
	// run per (config, program, budget); the replay facts (GoldenInfo)
	// live in a sibling blob so a warm campaign skips the golden re-run
	// entirely.
	var (
		info     pipe.GoldenInfo
		haveInfo bool
		cks      *pipe.CheckpointSet
	)
	infoKey := o.Cache.Key(cfgFP, progFP, rcFP, "goldeninfo")
	// publishCheckpoints pushes a freshly captured checkpoint set to the
	// blob tier: the manifest plus one blob per checkpoint, keyed by the
	// interval (a different interval is a different set, not a different
	// answer). Called inside the golden compute — before any fabric
	// claim on the golden result resolves — so a node that waited on a
	// peer's golden run finds the checkpoints already published.
	publishCheckpoints := func(set *pipe.CheckpointSet) {
		if o.CheckpointInterval < 0 || set == nil || o.Cache == nil {
			return
		}
		manifestKey := o.Cache.Key(cfgFP, progFP, rcFP, fmt.Sprintf("ckpts:%d", o.CheckpointInterval))
		o.Cache.PutBlob(manifestKey, encodeManifest(set))
		for i, ck := range set.Checkpoints {
			key := o.Cache.Key(cfgFP, progFP, rcFP, fmt.Sprintf("ckpts:%d:%d", o.CheckpointInterval, i))
			if b, merr := ck.MarshalBinary(); merr == nil {
				o.Cache.PutBlob(key, b)
			}
		}
	}
	if b, ok := o.Cache.GetBlob(infoKey); ok {
		if gi, derr := decodeGoldenInfo(b); derr == nil {
			info, haveInfo = gi, true
		} else {
			// The frame validated but the decoder rejects it: discard so
			// the rebuild below writes a clean entry.
			o.Cache.DiscardBlob(infoKey)
		}
	}
	golden, err := o.Cache.Do(o.Cache.Key(cfgFP, progFP, rcFP), func() (*avf.Result, error) {
		res, gi, set, gerr := pool.SimulateGoldenRecorded(o.Program, o.Run, o.CheckpointInterval, live.DeadDefs)
		if gerr != nil {
			return nil, gerr
		}
		info, haveInfo, cks = gi, true, set
		o.Cache.PutBlob(infoKey, encodeGoldenInfo(gi))
		publishCheckpoints(set)
		return res, nil
	})
	if err != nil {
		return nil, fmt.Errorf("inject: golden run: %w", err)
	}
	if !haveInfo {
		// A fabric peer may have run the golden while we waited on its
		// claim: it publishes the info blob before the claim resolves,
		// so one re-probe avoids a duplicate golden re-run.
		if b, ok := o.Cache.GetBlob(infoKey); ok {
			if gi, derr := decodeGoldenInfo(b); derr == nil {
				info, haveInfo = gi, true
			}
		}
	}
	if !haveInfo {
		// The result tier was warm but the info blob is gone (e.g. a
		// partially swept cache directory): one golden re-run rebuilds
		// both it and the checkpoint set.
		_, gi, set, gerr := pool.SimulateGoldenRecorded(o.Program, o.Run, o.CheckpointInterval, live.DeadDefs)
		if gerr != nil {
			return nil, fmt.Errorf("inject: golden run: %w", gerr)
		}
		info, cks = gi, set
		o.Cache.PutBlob(infoKey, encodeGoldenInfo(gi))
		publishCheckpoints(set)
	}
	if info.Cycles <= 0 {
		return nil, fmt.Errorf("inject: golden run measured no cycles")
	}

	// Recover the checkpoint set (fresh sets were already published by
	// publishCheckpoints inside the golden compute): on a warm golden
	// the manifest alone tells us where checkpoints lie, and each one
	// is decoded lazily only if a bucket needs it.
	var (
		src        *ckptSource
		ckptCycles []int64
		ckptLead   int64
	)
	if o.CheckpointInterval >= 0 {
		manifestKey := o.Cache.Key(cfgFP, progFP, rcFP, fmt.Sprintf("ckpts:%d", o.CheckpointInterval))
		switch {
		case cks != nil:
			ckptCycles, ckptLead = cks.Cycles(), cks.Lead
			src = &ckptSource{set: cks}
		default:
			if b, ok := o.Cache.GetBlob(manifestKey); ok {
				if m, derr := decodeManifest(b); derr == nil {
					ckptCycles, ckptLead = m.cycles, m.lead
					keys := make([]simcache.Key, len(m.cycles))
					for i := range keys {
						keys[i] = o.Cache.Key(cfgFP, progFP, rcFP, fmt.Sprintf("ckpts:%d:%d", o.CheckpointInterval, i))
					}
					src = &ckptSource{cache: o.Cache, prog: o.Program, keys: keys, decoded: map[int]*pipe.Checkpoint{}}
				} else {
					// Undecodable manifest: discard it and run this
					// campaign without checkpoints (replays from cycle
					// zero — slower, never wrong).
					o.Cache.DiscardBlob(manifestKey)
				}
			}
		}
	}

	// Build the static target filter from the liveness summary and the
	// golden run's recorded dead intervals. All sampling below is
	// up-front and single-threaded, and the pruner's inputs are static
	// (or cached alongside the golden result), so pruned campaigns stay
	// byte-deterministic across runs, worker counts and cache states.
	pr := newPruner(o.PruneStatic >= 0, o.Config, live, info)

	weights := make([]float64, len(o.Structures))
	var totalBits float64
	bits := make([]uint64, len(o.Structures))
	for i, s := range o.Structures {
		bits[i] = uarch.Bits(o.Config, s)
		totalBits += float64(bits[i])
	}
	if totalBits == 0 {
		return nil, fmt.Errorf("inject: campaign structures have no bits")
	}
	for i := range weights {
		weights[i] = float64(bits[i]) / totalBits
	}
	alloc := allocate(o.Trials, o.MinPerStructure, weights)

	// Phase 1: draw every stratum's baseline allocation from its
	// deterministic stream. Statically pruned draws are classified
	// analytically and replay nothing; the rest fill the stratum's
	// replay list in draw order. With pruning disabled this phase is
	// the legacy sampler verbatim — same streams, same targets, same
	// order.
	prunedCnt := make([]int, len(o.Structures))
	faultsPer := make([][]pipe.Fault, len(o.Structures))
	rngs := make([]rng, len(o.Structures))
	freed := 0
	for i, s := range o.Structures {
		r := stratumRNG(o.Seed, s)
		for t := 0; t < alloc[i]; t++ {
			f := pipe.Fault{
				Structure: s,
				Bit:       r.next() % bits[i],
				Cycle:     info.WindowStart + int64(r.next()%uint64(info.Cycles)),
			}
			if pr.pruned(f) {
				prunedCnt[i]++
				freed++
				continue
			}
			faultsPer[i] = append(faultsPer[i], f)
		}
		rngs[i] = r
	}
	phase1 := make([]int, len(o.Structures))
	for i := range faultsPer {
		phase1[i] = len(faultsPer[i])
	}

	// Phase 2: re-allocate the freed budget across strata in proportion
	// to their live bit counts (largest-remainder again), continuing
	// each stratum's stream with rejection of pruned draws, so the
	// topped-up trials concentrate where uncertainty remains. The
	// attempt bound only guards a pathological all-dead stratum; budget
	// not placeable within it is dropped, deterministically.
	if pr.enabled && freed > 0 {
		w2 := make([]float64, len(o.Structures))
		var tw float64
		for i, s := range o.Structures {
			w2[i] = float64(bits[i]) * (1 - pr.staticFrac[s])
			tw += w2[i]
		}
		if tw > 0 {
			for i := range w2 {
				w2[i] /= tw
			}
			alloc2 := allocate(freed, 0, w2)
			for i, s := range o.Structures {
				r := rngs[i]
				drawn := 0
				for att := 0; drawn < alloc2[i] && att < 64*alloc2[i]+64; att++ {
					f := pipe.Fault{
						Structure: s,
						Bit:       r.next() % bits[i],
						Cycle:     info.WindowStart + int64(r.next()%uint64(info.Cycles)),
					}
					if pr.pruned(f) {
						continue
					}
					faultsPer[i] = append(faultsPer[i], f)
					drawn++
				}
			}
		}
	}

	// Deduplicate repeated targets into one replay feeding every trial
	// slot.
	type slot struct{ stratum, idx int }
	outcomes := make([][]pipe.FaultTrial, len(o.Structures)) // per replayed trial
	targets := map[pipe.Fault][]slot{}
	var order []pipe.Fault // deterministic job order
	for i := range o.Structures {
		outcomes[i] = make([]pipe.FaultTrial, len(faultsPer[i]))
		for t, f := range faultsPer[i] {
			if _, ok := targets[f]; !ok {
				order = append(order, f)
			}
			targets[f] = append(targets[f], slot{i, t})
		}
	}

	// Bucket the unique faults by the nearest checkpoint that is still
	// valid for their injection cycle (a checkpoint at C can serve a
	// fault at F only if C + lead ≤ F, the lead covering in-flight
	// memory timestamps). Each bucket becomes one job: a single restore
	// (or one cold replay for bucket -1) carries every uncached fault in
	// it as an independent armed watch, so a thousand-trial campaign
	// pays for a handful of partial replays instead of a thousand full
	// ones.
	buckets := map[int][]pipe.Fault{}
	var bucketOrder []int // deterministic: first-seen over `order`
	for _, f := range order {
		n := pipe.NearestCheckpoint(ckptCycles, ckptLead, f.Cycle)
		if _, ok := buckets[n]; !ok {
			bucketOrder = append(bucketOrder, n)
		}
		buckets[n] = append(buckets[n], f)
	}

	trialKey := func(f pipe.Fault) simcache.Key {
		return o.Cache.Key(cfgFP, progFP, rcFP, "injtrial:"+f.Fingerprint())
	}
	var mu sync.Mutex
	if o.CheckpointInterval < 0 {
		// Checkpointing disabled: the pre-fork-replay path, one job per
		// unique fault, each replaying the whole run from cycle zero.
		// Kept both as the safety fallback and as the baseline
		// BenchmarkInjectCampaign measures fork-replay against.
		jobs := make([]scenario.Job, 0, len(order))
		for _, f := range order {
			f, slots := f, targets[f]
			jobs = append(jobs, scenario.Job{
				Key:   "injtrial\x00" + cfgFP + "\x00" + progFP + "\x00" + rcFP + "\x00" + f.Fingerprint(),
				Lease: true,
				Run: func(ctx context.Context) error {
					if err := ctx.Err(); err != nil {
						return err
					}
					b, err := o.Cache.DoBlob(trialKey(f), func() ([]byte, error) {
						trial, err := pool.SimulateFaultDetail(o.Program, o.Run, f)
						if err != nil {
							return nil, fmt.Errorf("inject: trial %s: %w", f.Fingerprint(), err)
						}
						return encodeTrial(trial), nil
					})
					if err != nil {
						return err
					}
					trial, derr := decodeTrial(b)
					if derr != nil {
						// Undecodable (a legacy v1 outcome byte, or a
						// malformed entry): discard and fail transiently —
						// the retry recomputes through a now-clean miss.
						o.Cache.DiscardBlob(trialKey(f))
						return sched.Transient(fmt.Errorf("inject: trial %s: %w", f.Fingerprint(), derr))
					}
					mu.Lock()
					for _, sl := range slots {
						outcomes[sl.stratum][sl.idx] = trial
					}
					mu.Unlock()
					return nil
				},
			})
		}
		if err := sched.Run(ctx, jobs, sched.Options{Workers: o.Parallelism, Retry: o.Retry, Executor: o.Executor}); err != nil {
			return nil, err
		}
		return aggregateResult(o, golden, info, bits, pr, prunedCnt, phase1, faultsPer, outcomes), nil
	}

	jobs := make([]scenario.Job, 0, len(bucketOrder))
	for _, bi := range bucketOrder {
		bi, faults := bi, buckets[bi]
		// The job key content-addresses the bucket's fault set, not its
		// index: two campaigns sharing a scheduler dedup only when they
		// would replay exactly the same faults from the same fork point.
		h := sha256.New()
		for _, f := range faults {
			fmt.Fprintf(h, "%s\x00", f.Fingerprint())
		}
		jobs = append(jobs, scenario.Job{
			Key:   fmt.Sprintf("injbucket\x00%s\x00%s\x00%s\x00%d\x00%x", cfgFP, progFP, rcFP, bi, h.Sum(nil)),
			Lease: true,
			Run: func(ctx context.Context) error {
				if err := ctx.Err(); err != nil {
					return err
				}
				trials := make([]pipe.FaultTrial, len(faults))
				var missing []int
				for i, f := range faults {
					if b, ok := o.Cache.GetBlob(trialKey(f)); ok {
						if t, derr := decodeTrial(b); derr == nil {
							trials[i] = t
							continue
						}
						// Present but undecodable (legacy v1 outcome byte,
						// or malformed): quarantine so the replay below
						// overwrites a clean entry.
						o.Cache.DiscardBlob(trialKey(f))
					}
					missing = append(missing, i)
				}
				if len(missing) > 0 {
					replay := make([]pipe.Fault, len(missing))
					for j, i := range missing {
						replay[j] = faults[i]
					}
					out, rerr := pool.SimulateFaultsDetailFrom(o.Program, o.Run, src.checkpoint(bi), replay)
					if rerr != nil {
						return fmt.Errorf("inject: bucket %d replay: %w", bi, rerr)
					}
					for j, i := range missing {
						trials[i] = out[j]
						o.Cache.PutBlob(trialKey(faults[i]), encodeTrial(out[j]))
					}
				}
				mu.Lock()
				for i, f := range faults {
					for _, sl := range targets[f] {
						outcomes[sl.stratum][sl.idx] = trials[i]
					}
				}
				mu.Unlock()
				return nil
			},
		})
	}
	if err := sched.Run(ctx, jobs, sched.Options{Workers: o.Parallelism, Retry: o.Retry, Executor: o.Executor}); err != nil {
		return nil, err
	}
	return aggregateResult(o, golden, info, bits, pr, prunedCnt, phase1, faultsPer, outcomes), nil
}

// aggregateResult folds the per-trial outcomes into the campaign result:
// per-stratum counts, Wilson intervals, the bit-weighted and
// rate-derated aggregates, and (when requested) the root-cause
// attribution tables. Pure, so both replay paths share it and the
// report cannot depend on which one ran.
func aggregateResult(o Options, golden *avf.Result, info pipe.GoldenInfo, bits []uint64, pr *pruner, pruned, phase1 []int, faultsPer [][]pipe.Fault, outcomes [][]pipe.FaultTrial) *Result {
	res := &Result{
		Config:       golden.Config,
		Workload:     golden.Workload,
		Seed:         o.Seed,
		Golden:       golden,
		GoldenDigest: info.Digest,
		WindowStart:  info.WindowStart,
		WindowCycles: info.Cycles,
		PruneEnabled: pr.enabled,
	}
	var (
		rcTrials  []rootcause.Trial
		rcSampled = map[uarch.Structure]int{}
	)
	for i, s := range o.Structures {
		replayed := len(outcomes[i])
		sr := StructureResult{
			Structure: s, Bits: bits[i],
			Trials: replayed + pruned[i], Pruned: pruned[i],
			PruneFrac: pr.frac(s), StaticBound: pr.bound(s),
			ACE: golden.AVF[s],
		}
		protected := o.Rates[s] == 0
		for t, trial := range outcomes[i] {
			p1 := t < phase1[i]
			switch {
			case !trial.Corrupted:
				sr.Masked++
				if p1 {
					sr.Phase1Masked++
				}
			case protected:
				sr.Detected++
				if p1 {
					sr.Phase1Detected++
				}
			default:
				sr.SDC++
				if p1 {
					sr.Phase1SDC++
				}
			}
			if trial.Corrupted && o.RootCause {
				rcTrials = append(rcTrials, rootcause.Trial{
					Fault: faultsPer[i][t], Diverge: trial.Diverge, DUE: protected,
				})
			}
		}
		if o.RootCause {
			rcSampled[s] = len(outcomes[i])
		}
		// The estimator samples the live subspace only, so the raw
		// corrupted fraction and its Wilson interval scale by the live
		// fraction. With pruning disabled the fraction is exactly zero
		// and the multiplications by 1.0 are IEEE-exact identities —
		// the legacy numbers, bit for bit.
		vuln := sr.SDC + sr.Detected
		liveFrac := 1 - sr.PruneFrac
		if replayed > 0 {
			sr.SampleAVF = float64(vuln) / float64(replayed)
			sr.AVF = liveFrac * sr.SampleAVF
			w := wilson(vuln, replayed)
			sr.CI = Interval{Lo: liveFrac * w.Lo, Hi: liveFrac * w.Hi}
		}
		res.Structures = append(res.Structures, sr)
		res.Trials += sr.Trials
		res.SDC += sr.SDC
		res.Detected += sr.Detected
		res.Masked += sr.Masked
		res.Pruned += sr.Pruned
	}
	res.AVF, res.CI, res.ACEAVF = res.aggregate(func(sr StructureResult) float64 {
		return float64(sr.Bits)
	})
	res.DeratedAVF, res.DeratedCI, res.DeratedACE = res.aggregate(func(sr StructureResult) float64 {
		return o.Rates[sr.Structure] * float64(sr.Bits)
	})
	var totalW float64
	for _, sr := range res.Structures {
		totalW += float64(sr.Bits)
	}
	if totalW > 0 {
		for _, sr := range res.Structures {
			res.StaticBound += float64(sr.Bits) / totalW * sr.StaticBound
		}
	}
	if o.RootCause {
		res.RootCause = rootcause.Aggregate(o.Program, o.Config, rcTrials, rcSampled)
	}
	return res
}

// aggregate combines the strata under the given weighting into the
// weighted AVF estimate, its stratified 95% confidence interval, and
// the weighted ACE counterpart.
func (r *Result) aggregate(weight func(StructureResult) float64) (est float64, ci Interval, ace float64) {
	var totalW float64
	for _, sr := range r.Structures {
		totalW += weight(sr)
	}
	if totalW == 0 {
		return 0, Interval{}, 0
	}
	var v float64 // variance of the stratified estimator
	for _, sr := range r.Structures {
		w := weight(sr) / totalW
		est += w * sr.AVF
		ace += w * sr.ACE
		// Pruned slots carry no sampling variance (they are analytic
		// constants), so each stratum contributes the binomial variance
		// of its replayed trials scaled by the squared live fraction.
		// With pruning disabled both factors are exactly 1.0 and this
		// is the legacy expression bit for bit.
		if n := sr.Trials - sr.Pruned; n > 0 {
			liveFrac := 1 - sr.PruneFrac
			v += w * w * liveFrac * liveFrac * sr.SampleAVF * (1 - sr.SampleAVF) / float64(n)
		}
	}
	return est, normalCI(est, v), ace
}

// TotalBits returns the campaign's sampled bit count.
func (r *Result) TotalBits() uint64 {
	var total uint64
	for _, sr := range r.Structures {
		total += sr.Bits
	}
	return total
}

// Rows renders the campaign as injection-table rows: one per structure
// (campaign order) plus the bit-weighted "overall" aggregate, whose
// outcome counts reconcile exactly with its AVF column. The
// rate-derated aggregate reweights the same trials per structure, so
// its value cannot be recomputed from pooled counts — String reports
// it as a separate line instead of a row with contradictory columns.
func (r *Result) Rows() []report.InjectionRow {
	rows := make([]report.InjectionRow, 0, len(r.Structures)+1)
	for _, sr := range r.Structures {
		rows = append(rows, report.InjectionRow{
			Label: sr.Structure.String(), Bits: sr.Bits, Trials: sr.Trials,
			SDC: sr.SDC, Detected: sr.Detected, Masked: sr.Masked, Pruned: sr.Pruned,
			AVF: sr.AVF, Lo: sr.CI.Lo, Hi: sr.CI.Hi, ACE: sr.ACE,
		})
	}
	rows = append(rows, report.InjectionRow{
		Label: "overall", Bits: r.TotalBits(), Trials: r.Trials,
		SDC: r.SDC, Detected: r.Detected, Masked: r.Masked, Pruned: r.Pruned,
		AVF: r.AVF, Lo: r.CI.Lo, Hi: r.CI.Hi, ACE: r.ACEAVF,
	})
	return rows
}

// DeratedLine renders the rate-weighted comparison as one line.
func (r *Result) DeratedLine() string {
	return fmt.Sprintf("derated (rate-weighted): AVF %.4f [%.4f, %.4f] vs ACE %.4f",
		r.DeratedAVF, r.DeratedCI.Lo, r.DeratedCI.Hi, r.DeratedACE)
}

// PruneLine renders the static-pruning summary as one stats line:
// pruned target counts (total, then per structure with a nonzero
// count) and the bit-weighted tightened static ACE upper bound.
func (r *Result) PruneLine() string {
	if !r.PruneEnabled {
		return "prune: disabled"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "prune: targets=%d/%d bound=%.4f", r.Pruned, r.Trials, r.StaticBound)
	for _, sr := range r.Structures {
		if sr.Pruned > 0 {
			fmt.Fprintf(&b, " %s=%d", sr.Structure, sr.Pruned)
		}
	}
	return b.String()
}

// String renders the campaign report.
func (r *Result) String() string {
	var b strings.Builder
	title := fmt.Sprintf("Injection campaign — %s on %s (%d trials, seed %d)",
		r.Config, r.Workload, r.Trials, r.Seed)
	b.WriteString(report.InjectionTable(title, r.Rows()))
	fmt.Fprintf(&b, "%s\n%s\ngolden: %d instrs, %d cycles, digest %016x\n",
		r.PruneLine(), r.DeratedLine(), r.Golden.Instructions, r.WindowCycles, r.GoldenDigest)
	if r.RootCause != nil {
		b.WriteString(r.RootCause.String())
	}
	return b.String()
}
