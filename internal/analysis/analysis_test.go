package analysis

import (
	"math"
	"strings"
	"testing"

	"avfstress/internal/avf"
	"avfstress/internal/uarch"
)

func TestInstantaneousWorstCaseBaseline(t *testing.T) {
	// The paper's §VI distribution for the baseline: 80 ROB entries held
	// as 32 LQ + 32 SQ + 16 IQ, FU idle, LQ data not yet returned.
	w := InstantaneousWorstCase(uarch.Baseline())
	if w.ROBEntries != 80 || w.LQEntries != 32 || w.SQEntries != 32 || w.IQEntries != 16 {
		t.Fatalf("distribution ROB=%d LQ=%d SQ=%d IQ=%d", w.ROBEntries, w.LQEntries, w.SQEntries, w.IQEntries)
	}
	// ACE bits: 80×76 + 16×32 + 32×64 (LQ tags) + 31×64 (LQ data of the
	// completed hit loads) + 32×128 (SQ) = 14720.
	if w.ACEBits != 14720 {
		t.Errorf("ACE bits = %d, want 14720", w.ACEBits)
	}
	v := w.Value()
	if v <= 0.7 || v >= 1 {
		t.Errorf("bound %f outside the plausible (0.7, 1) band", v)
	}
	if !strings.Contains(w.String(), "units/bit") {
		t.Error("String() lacks units")
	}
}

func TestInstantaneousWorstCaseConfigA(t *testing.T) {
	// Config A has a 96-entry ROB: 32+32 LQ/SQ and the rest (32) in a
	// 32-entry IQ.
	w := InstantaneousWorstCase(uarch.ConfigA())
	if w.ROBEntries != 96 || w.LQEntries != 32 || w.SQEntries != 32 || w.IQEntries != 32 {
		t.Fatalf("distribution ROB=%d LQ=%d SQ=%d IQ=%d", w.ROBEntries, w.LQEntries, w.SQEntries, w.IQEntries)
	}
}

func mkResult(name string, avfVal float64) *avf.Result {
	r := &avf.Result{Workload: name}
	for s := uarch.Structure(0); s < uarch.NumStructures; s++ {
		r.AVF[s] = avfVal
	}
	return r
}

func TestBestPicksMaximum(t *testing.T) {
	cfg := uarch.Baseline()
	rates := uarch.UniformRates(1)
	rs := []*avf.Result{mkResult("lo", 0.2), mkResult("hi", 0.8), mkResult("mid", 0.5)}
	best, ser := Best(rs, cfg, rates, avf.ClassQSRF)
	if best.Workload != "hi" {
		t.Errorf("best = %s", best.Workload)
	}
	if math.Abs(ser-0.8) > 1e-12 {
		t.Errorf("best SER = %f", ser)
	}
}

func TestSumOfHighestPerStructureComposesPrograms(t *testing.T) {
	cfg := uarch.Baseline()
	rates := uarch.UniformRates(1)
	// Program A maxes the ROB, program B maxes the RF: the estimator
	// composes both, exceeding either program's own class SER.
	a, b := mkResult("a", 0.1), mkResult("b", 0.1)
	a.AVF[uarch.ROB] = 0.9
	b.AVF[uarch.RF] = 0.9
	rs := []*avf.Result{a, b}
	est := SumOfHighestPerStructure(rs, cfg, rates, avf.ClassQSRF)
	_, bestSER := Best(rs, cfg, rates, avf.ClassQSRF)
	if est <= bestSER {
		t.Errorf("estimator %f should exceed best individual %f", est, bestSER)
	}
}

func TestSumOfRawRates(t *testing.T) {
	cfg := uarch.Baseline()
	if got := SumOfRawRates(cfg, uarch.UniformRates(1), avf.ClassQSRF); math.Abs(got-1) > 1e-12 {
		t.Errorf("uniform raw rate = %f, want 1", got)
	}
	// The paper reports 0.59 and 0.39 units/bit for its RHC/EDR core
	// rate sets; with our bit widths the same computation lands nearby.
	rhc := SumOfRawRates(cfg, uarch.RHCRates(), avf.ClassQSRF)
	if rhc <= 0.4 || rhc >= 0.75 {
		t.Errorf("RHC raw rate = %f, expected in (0.4, 0.75)", rhc)
	}
	edr := SumOfRawRates(cfg, uarch.EDRRates(), avf.ClassQSRF)
	if edr <= 0.2 || edr >= 0.5 {
		t.Errorf("EDR raw rate = %f, expected in (0.2, 0.5)", edr)
	}
	if edr >= rhc {
		t.Error("EDR raw rate must be below RHC (more structures at zero)")
	}
}

func TestTightenedWorstCase(t *testing.T) {
	cfg := uarch.Baseline()
	rates := uarch.UniformRates(1)
	raw := SumOfRawRates(cfg, rates, avf.ClassQSRF)
	// A nil dead-fraction map is the pessimistic bound itself.
	if got := TightenedWorstCase(cfg, rates, avf.ClassQSRF, nil); got != raw {
		t.Errorf("nil dead fractions: %f != raw %f", got, raw)
	}
	// Proven-dead IQ entries tighten the bound, but never below zero and
	// never above the raw bound.
	dead := map[uarch.Structure]float64{uarch.IQ: 0.25, uarch.SQData: 0.5}
	got := TightenedWorstCase(cfg, rates, avf.ClassQSRF, dead)
	if got >= raw || got <= 0 {
		t.Errorf("tightened bound %f not in (0, %f)", got, raw)
	}
	// The tightening equals the dead bits' share of the weighted space.
	var bits, deadW float64
	for _, s := range avf.ClassQSRF.Structures() {
		b := float64(uarch.Bits(cfg, s))
		bits += b
		deadW += b * rates[s] * dead[s]
	}
	if want := raw - deadW/bits; math.Abs(got-want) > 1e-12 {
		t.Errorf("tightened bound %f, want %f", got, want)
	}
}

func TestSuiteCoverage(t *testing.T) {
	cfg := uarch.Baseline()
	rates := uarch.UniformRates(1)
	rs := []*avf.Result{mkResult("lo", 0.2), mkResult("hi", 0.6)}
	cov := SuiteCoverage(rs, cfg, rates, avf.ClassQS, 0.9)
	if cov.BestName != "hi" {
		t.Errorf("best name %q", cov.BestName)
	}
	if math.Abs(cov.Min-0.2) > 1e-12 || math.Abs(cov.Max-0.6) > 1e-12 {
		t.Errorf("range [%f, %f]", cov.Min, cov.Max)
	}
	if math.Abs(cov.Mean-0.4) > 1e-12 {
		t.Errorf("mean %f", cov.Mean)
	}
	if math.Abs(cov.Gap()-0.5) > 1e-12 {
		t.Errorf("gap %f, want 0.5 (0.9/0.6 - 1)", cov.Gap())
	}
	if !strings.Contains(cov.String(), "hi") {
		t.Error("coverage report missing best workload")
	}
}

func TestCoverageEmpty(t *testing.T) {
	cov := SuiteCoverage(nil, uarch.Baseline(), uarch.UniformRates(1), avf.ClassQS, 0.5)
	if cov.Min != 0 || cov.Max != 0 || cov.Gap() != 0 {
		t.Errorf("empty coverage: %+v", cov)
	}
}
