// Package simcache is a content-addressed memoisation engine for
// simulation results. Every simulation in this repository is a pure
// function of (engine version, microarchitecture configuration, program,
// run budget) — the determinism the paper's automated methodology relies
// on for reproducible stressmark search — so a result can be served from
// a cache keyed by a canonical fingerprint of those inputs and is
// bit-identical to re-running the simulator.
//
// The store is two-tier:
//
//   - an in-memory map, shared by every experiment and GA search in the
//     process (duplicate genomes across generations, the 33-workload
//     suite shared by Figures 3/4/6/7, Table III, ...);
//   - an optional on-disk tier (one CRC-framed file per key, written
//     atomically via internal/persist), shared across processes and
//     runs. Reads validate the frame before decoding: a torn, truncated
//     or bit-flipped entry is quarantined to <dir>/quarantine/ and
//     served as a miss — corruption costs a re-simulation, never a
//     crash and never a wrong result (DESIGN.md §11).
//
// Concurrent requests for the same key are deduplicated (singleflight):
// the first caller simulates, the rest wait and share the result.
//
// Keys incorporate EngineVersion, so entries written by an older
// simulator never match and stale disk tiers self-invalidate (DESIGN.md
// §7 gives the bump rules). Results handed out by the store are shared —
// callers must treat *avf.Result as immutable, which every consumer in
// this repository already does.
package simcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"avfstress/internal/avf"
	"avfstress/internal/persist"
)

// EngineVersion names the simulation semantics of internal/pipe,
// internal/cache and internal/avf. It MUST be bumped by any change that
// alters the bits of any *avf.Result for any (config, program, budget) —
// see DESIGN.md §7. It participates in every key, so a bump invalidates
// both tiers at once. "v3" is the PR 3 state of the engine (event-driven
// pipeline, chunk-granular lifetime tracking).
const EngineVersion = "v3"

// Key is the content address of one simulation: a SHA-256 over the
// engine version and the canonical input fingerprints.
type Key [sha256.Size]byte

// Hex renders the key as the file-name-safe hex string used by the disk
// tier.
func (k Key) Hex() string { return hex.EncodeToString(k[:]) }

// Options configures a Store.
type Options struct {
	// Dir enables the disk tier under this directory ("" = memory only).
	// Entries land in Dir/<version>/<key>.json so stale engine versions
	// are inert and easy to sweep.
	Dir string
	// Version overrides EngineVersion (tests only).
	Version string
	// BlobCapBytes caps the in-memory blob tier (checkpoints can be
	// hundreds of KB each, unlike the small trial-outcome blobs). Past
	// the cap, least-recently-used blobs are evicted from memory —
	// counted in Stats.Evicted — while their disk entries remain, so an
	// eviction degrades a future hit from memory to disk, never to a
	// re-simulation. 0 selects the default (1 GiB); negative = unlimited.
	BlobCapBytes int64
	// Remote attaches a campaign-fabric tier behind the local ones
	// (DESIGN.md §13): on a local miss the store consults it before
	// simulating, and claims the compute right through it so each key
	// is simulated once across the whole cluster. Entries received from
	// it get the same frame-on-receipt validation as disk entries. Nil
	// (the default) keeps the store purely local.
	Remote RemoteTier
}

// defaultBlobCapBytes bounds the in-memory blob tier when the caller
// does not choose (Options.BlobCapBytes == 0).
const defaultBlobCapBytes int64 = 1 << 30

// Store is a handle on the two-tier result cache. The zero value is not
// usable; construct with New. A nil *Store is valid everywhere and
// disables caching (Do just runs the simulation), so call sites need no
// branching.
//
// Handles returned by View share the underlying tiers, dedup state and
// store-wide counters, but additionally count their own traffic — the
// per-job cache-effectiveness attribution the avfstressd service
// reports for concurrent clients sharing one store.
type Store struct {
	st  *state   // shared across all views of one store
	loc counters // this handle's own traffic
}

// state is the shared heart of a store: tiers, dedup and global
// counters.
type state struct {
	version string
	dir     string // "" = memory only
	remote  RemoteTier

	mu     sync.Mutex
	mem    map[Key]*avf.Result
	flight map[Key]*call

	// The blob tier memoises opaque byte values under the same versioned
	// content addressing — fault-injection trial outcomes and replay
	// checkpoints, keyed by (golden fingerprint, target). It shares the
	// store's counters, dedup semantics and disk directory (".bin"
	// entries). The memory side is LRU-bounded by blobCap (0 =
	// unlimited): blobLRU holds a last-touch tick per resident key and
	// blobBytes the resident payload total.
	blobMem    map[Key][]byte
	blobFlight map[Key]*blobCall
	blobLRU    map[Key]int64
	blobTick   int64
	blobBytes  int64
	blobCap    int64

	glob counters
}

// counters is one set of traffic counters.
type counters struct {
	memHits     atomic.Int64
	diskHits    atomic.Int64
	sims        atomic.Int64
	dedups      atomic.Int64
	misses      atomic.Int64
	evicted     atomic.Int64
	quarantined atomic.Int64
	// Tier-attribution counters: blobHits/blobMisses are the blob-tier
	// share of the hit/miss traffic above (so per-handle attribution
	// distinguishes result entries from blob entries), remoteHits/
	// remoteMisses count lookups resolved (or not) by the fabric tier.
	blobHits     atomic.Int64
	blobMisses   atomic.Int64
	remoteHits   atomic.Int64
	remoteMisses atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		MemHits:      c.memHits.Load(),
		DiskHits:     c.diskHits.Load(),
		Simulated:    c.sims.Load(),
		Deduped:      c.dedups.Load(),
		Misses:       c.misses.Load(),
		Evicted:      c.evicted.Load(),
		Quarantined:  c.quarantined.Load(),
		BlobHits:     c.blobHits.Load(),
		BlobMisses:   c.blobMisses.Load(),
		RemoteHits:   c.remoteHits.Load(),
		RemoteMisses: c.remoteMisses.Load(),
	}
}

// call is one in-flight simulation other goroutines can wait on.
type call struct {
	done chan struct{}
	res  *avf.Result
	err  error
}

// blobCall is one in-flight blob computation.
type blobCall struct {
	done chan struct{}
	val  []byte
	err  error
}

// New returns an empty store. With a non-empty Dir the disk tier is
// created lazily on first write.
func New(opts Options) *Store {
	v := opts.Version
	if v == "" {
		v = EngineVersion
	}
	blobCap := opts.BlobCapBytes
	if blobCap == 0 {
		blobCap = defaultBlobCapBytes
	} else if blobCap < 0 {
		blobCap = 0 // unlimited
	}
	st := &state{
		version:    v,
		mem:        map[Key]*avf.Result{},
		flight:     map[Key]*call{},
		blobMem:    map[Key][]byte{},
		blobFlight: map[Key]*blobCall{},
		blobLRU:    map[Key]int64{},
		blobCap:    blobCap,
	}
	if opts.Dir != "" {
		st.dir = filepath.Join(opts.Dir, v)
	}
	st.remote = opts.Remote
	return &Store{st: st}
}

// View returns a new handle on the same store: identical tiers, dedup
// and store-wide Stats, but a fresh LocalStats counter observing only
// traffic through this handle. Safe (and nil) on a nil store.
func (s *Store) View() *Store {
	if s == nil {
		return nil
	}
	return &Store{st: s.st}
}

// Key builds the content address for the given canonical fingerprint
// parts (typically: config fingerprint, program or knobs identity, run
// budget fingerprint). Parts are length-prefixed, so no concatenation of
// distinct part lists collides, and the store's engine version is always
// included. Safe on a nil store.
func (s *Store) Key(parts ...string) Key {
	v := EngineVersion
	if s != nil {
		v = s.st.version
	}
	h := sha256.New()
	var n [8]byte
	write := func(p string) {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	write(v)
	for _, p := range parts {
		write(p)
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// Do returns the cached result for key, or runs simulate, stores its
// result in both tiers and returns it. Concurrent calls with the same
// key run simulate once. Errors are returned to every waiter but never
// cached. On a nil store, Do simply runs simulate.
func (s *Store) Do(key Key, simulate func() (*avf.Result, error)) (*avf.Result, error) {
	if s == nil {
		return simulate()
	}
	st := s.st
	st.mu.Lock()
	if r, ok := st.mem[key]; ok {
		st.mu.Unlock()
		st.glob.memHits.Add(1)
		s.loc.memHits.Add(1)
		return r, nil
	}
	if c, ok := st.flight[key]; ok {
		st.mu.Unlock()
		st.glob.dedups.Add(1)
		s.loc.dedups.Add(1)
		<-c.done
		return c.res, c.err
	}
	c := &call{done: make(chan struct{})}
	st.flight[key] = c
	st.mu.Unlock()

	var err error
	r := s.loadDisk(key)
	switch {
	case r != nil:
		st.glob.diskHits.Add(1)
		s.loc.diskHits.Add(1)
	case st.remote != nil:
		r, err = s.remoteResult(key, simulate)
	default:
		r, err = simulate()
		st.glob.sims.Add(1)
		s.loc.sims.Add(1)
		if err == nil {
			s.saveDisk(key, r)
		}
	}
	c.res, c.err = r, err
	st.mu.Lock()
	delete(st.flight, key)
	if err == nil {
		st.mem[key] = r
	}
	st.mu.Unlock()
	close(c.done)
	return r, err
}

// DoBlob is Do for small opaque byte values: it returns the cached
// bytes for key, or runs compute, stores its result in both tiers
// (".bin" entries beside the ".json" results on disk) and returns it.
// Callers must treat returned slices as immutable — like results, blobs
// are shared across all waiters and future hits. The fault-injection
// campaign engine memoises per-trial outcomes this way, keyed by
// (golden-run fingerprint, fault target), so overlapping campaigns — and
// warm re-runs — replay only the marginal trials.
func (s *Store) DoBlob(key Key, compute func() ([]byte, error)) ([]byte, error) {
	if s == nil {
		return compute()
	}
	st := s.st
	st.mu.Lock()
	if v, ok := st.blobMem[key]; ok {
		st.touchBlob(key)
		st.mu.Unlock()
		st.glob.memHits.Add(1)
		s.loc.memHits.Add(1)
		st.glob.blobHits.Add(1)
		s.loc.blobHits.Add(1)
		return v, nil
	}
	if c, ok := st.blobFlight[key]; ok {
		st.mu.Unlock()
		st.glob.dedups.Add(1)
		s.loc.dedups.Add(1)
		<-c.done
		return c.val, c.err
	}
	c := &blobCall{done: make(chan struct{})}
	st.blobFlight[key] = c
	st.mu.Unlock()

	var err error
	v, ok := s.loadBlob(key)
	switch {
	case ok:
		st.glob.diskHits.Add(1)
		s.loc.diskHits.Add(1)
		st.glob.blobHits.Add(1)
		s.loc.blobHits.Add(1)
	case st.remote != nil:
		v, err = s.remoteBlob(key, compute)
	default:
		v, err = compute()
		st.glob.sims.Add(1)
		s.loc.sims.Add(1)
		if err == nil {
			s.saveBlob(key, v)
		}
	}
	c.val, c.err = v, err
	st.mu.Lock()
	delete(st.blobFlight, key)
	if err == nil {
		st.insertBlob(key, v, &s.loc)
	}
	st.mu.Unlock()
	close(c.done)
	return v, err
}

// GetBlob returns the cached blob for key from either tier, or (nil,
// false) — counted in Stats.Misses — leaving the computation to the
// caller (pair with PutBlob). Unlike DoBlob it never blocks on an
// in-flight computation: campaign code uses it for probe-then-batch
// patterns where a miss changes what gets computed, not just who
// computes it. Always a miss on a nil store.
func (s *Store) GetBlob(key Key) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	st := s.st
	st.mu.Lock()
	if v, ok := st.blobMem[key]; ok {
		st.touchBlob(key)
		st.mu.Unlock()
		st.glob.memHits.Add(1)
		s.loc.memHits.Add(1)
		st.glob.blobHits.Add(1)
		s.loc.blobHits.Add(1)
		return v, true
	}
	st.mu.Unlock()
	if v, ok := s.loadBlob(key); ok {
		st.glob.diskHits.Add(1)
		s.loc.diskHits.Add(1)
		st.glob.blobHits.Add(1)
		s.loc.blobHits.Add(1)
		st.mu.Lock()
		st.insertBlob(key, v, &s.loc)
		st.mu.Unlock()
		return v, true
	}
	// One non-blocking fabric probe: GetBlob's probe-then-batch contract
	// (a miss changes what gets computed) forbids waiting on a peer's
	// claim here, but a resolved remote entry is still a hit.
	if st.remote != nil {
		if v, ok := s.remoteProbeBlob(key); ok {
			return v, true
		}
	}
	st.glob.misses.Add(1)
	s.loc.misses.Add(1)
	st.glob.blobMisses.Add(1)
	s.loc.blobMisses.Add(1)
	return nil, false
}

// PutBlob stores a blob computed outside DoBlob in both tiers. The
// caller must treat v as immutable afterwards (it is shared with every
// future hit). No-op on a nil store.
func (s *Store) PutBlob(key Key, v []byte) {
	if s == nil {
		return
	}
	st := s.st
	st.mu.Lock()
	st.insertBlob(key, v, &s.loc)
	st.mu.Unlock()
	s.saveBlob(key, v)
	if st.remote != nil {
		st.remote.Put(KindBlob, key, persist.EncodeFramed(v))
	}
}

// touchBlob marks key most-recently-used. Caller holds mu.
func (st *state) touchBlob(key Key) {
	st.blobTick++
	st.blobLRU[key] = st.blobTick
}

// insertBlob adds (or replaces) a resident blob, then evicts
// least-recently-used entries until the memory tier fits the cap again.
// Evicted entries keep their disk copies, so the worst case of an
// eviction is a future disk hit. Caller holds mu.
func (st *state) insertBlob(key Key, v []byte, loc *counters) {
	if old, ok := st.blobMem[key]; ok {
		st.blobBytes -= int64(len(old))
	}
	st.blobMem[key] = v
	st.blobBytes += int64(len(v))
	st.touchBlob(key)
	if st.blobCap <= 0 {
		return
	}
	for st.blobBytes > st.blobCap && len(st.blobMem) > 1 {
		var victim Key
		best := st.blobTick + 1
		for k, tick := range st.blobLRU {
			if tick < best {
				best, victim = tick, k
			}
		}
		if victim == key {
			break // never evict the entry being inserted
		}
		st.blobBytes -= int64(len(st.blobMem[victim]))
		delete(st.blobMem, victim)
		delete(st.blobLRU, victim)
		st.glob.evicted.Add(1)
		loc.evicted.Add(1)
	}
}

func (s *Store) blobPath(key Key) string { return filepath.Join(s.st.dir, key.Hex()+".bin") }

// QuarantineDirName is the subdirectory of the disk tier's version
// directory that corrupt entries are moved into.
const QuarantineDirName = "quarantine"

// quarantine moves a corrupt disk entry out of the live tier into
// <dir>/quarantine/ (preserving the bytes for post-mortem) and counts
// it. If the move fails the entry is deleted instead — a corrupt entry
// must never be offered to a future read. Best-effort, like every disk
// operation in the store.
func (s *Store) quarantine(path string) {
	qdir := filepath.Join(s.st.dir, QuarantineDirName)
	if err := os.MkdirAll(qdir, 0o755); err != nil || os.Rename(path, filepath.Join(qdir, filepath.Base(path))) != nil {
		os.Remove(path)
	}
	s.st.glob.quarantined.Add(1)
	s.loc.quarantined.Add(1)
}

// readEntry reads one CRC-framed disk entry and returns its payload.
// A missing (or unreadable) file is a plain miss; an entry that fails
// frame validation — torn write, truncation, any flipped bit, or a
// pre-frame legacy entry — is quarantined and reported as a miss, so
// corruption costs a re-computation, never a crash or a wrong result.
func (s *Store) readEntry(path string) ([]byte, bool) {
	payload, err := persist.ReadFramedFile(path)
	if err == nil {
		return payload, true
	}
	if errors.Is(err, persist.ErrCorrupt) {
		s.quarantine(path)
	}
	return nil, false
}

// writeEntry frames and atomically writes one disk entry, best-effort:
// write failures degrade to memory-only caching.
func (s *Store) writeEntry(path string, payload []byte) {
	if err := os.MkdirAll(s.st.dir, 0o755); err != nil {
		return
	}
	_ = persist.WriteFramedFile(path, payload)
}

// loadBlob returns the disk tier's blob for key; unreadable entries are
// misses (an empty blob is a valid entry, hence the ok bool) and
// corrupt entries are quarantined misses.
func (s *Store) loadBlob(key Key) ([]byte, bool) {
	if s.st.dir == "" {
		return nil, false
	}
	return s.readEntry(s.blobPath(key))
}

// saveBlob writes the blob as a framed entry, best-effort like saveDisk.
func (s *Store) saveBlob(key Key, v []byte) {
	if s.st.dir == "" {
		return
	}
	s.writeEntry(s.blobPath(key), v)
}

// DiscardBlob removes key from the blob tier: the memory entry is
// dropped and the disk entry quarantined. It is the caller-side half of
// the corruption contract — when a decoder rejects a blob the store's
// checksum accepted (a stale or truncated-by-an-old-writer payload),
// discarding it turns the next read into a clean miss instead of a
// repeating decode failure. No-op on a nil store.
func (s *Store) DiscardBlob(key Key) {
	if s == nil {
		return
	}
	st := s.st
	st.mu.Lock()
	if old, ok := st.blobMem[key]; ok {
		st.blobBytes -= int64(len(old))
		delete(st.blobMem, key)
		delete(st.blobLRU, key)
	}
	st.mu.Unlock()
	if st.dir == "" {
		return
	}
	path := s.blobPath(key)
	if _, err := os.Stat(path); err == nil {
		s.quarantine(path)
	}
}

func (s *Store) path(key Key) string { return filepath.Join(s.st.dir, key.Hex()+".json") }

// loadDisk returns the disk tier's entry for key, or nil. A missing
// file is a miss; an entry failing frame validation or JSON decode is
// quarantined and treated as a miss (the re-simulated result writes a
// fresh entry).
func (s *Store) loadDisk(key Key) *avf.Result {
	if s.st.dir == "" {
		return nil
	}
	path := s.path(key)
	payload, ok := s.readEntry(path)
	if !ok {
		return nil
	}
	r := &avf.Result{}
	if err := json.Unmarshal(payload, r); err != nil {
		// The frame validated but the payload does not decode — a
		// writer-side bug or an entry from a divergent build. Same
		// treatment: out of the live tier, miss, re-simulate.
		s.quarantine(path)
		return nil
	}
	return r
}

// saveDisk writes the entry atomically (temp file + rename, CRC-framed
// JSON payload), so concurrent processes sharing one cache directory
// never observe partial writes — and since entries are content-
// addressed, a lost race overwrites identical bytes. The disk tier is
// best-effort: write failures degrade to memory-only caching.
func (s *Store) saveDisk(key Key, r *avf.Result) {
	if s.st.dir == "" {
		return
	}
	payload, err := json.Marshal(r)
	if err != nil {
		return
	}
	s.writeEntry(s.path(key), payload)
}

// Stats is a snapshot of a set of traffic counters.
type Stats struct {
	// MemHits and DiskHits count requests served from each tier;
	// Simulated counts simulations actually executed; Deduped counts
	// callers that waited on an identical in-flight simulation.
	MemHits   int64 `json:"mem_hits"`
	DiskHits  int64 `json:"disk_hits"`
	Simulated int64 `json:"simulated"`
	Deduped   int64 `json:"deduped"`
	// Misses counts GetBlob probes that found neither tier populated;
	// Evicted counts blobs dropped from the memory tier by the
	// BlobCapBytes LRU cap (their disk entries survive).
	Misses  int64 `json:"misses,omitempty"`
	Evicted int64 `json:"evicted,omitempty"`
	// Quarantined counts disk entries that failed frame validation or
	// decode and were moved to the quarantine directory — and fabric
	// entries rejected by the same frame-on-receipt check (each one
	// costs a re-computation, never a wrong result — DESIGN.md §11).
	Quarantined int64 `json:"quarantined,omitempty"`
	// BlobHits and BlobMisses are the blob-tier share of the hit and
	// miss traffic above (results vs. blobs attribution per handle);
	// RemoteHits and RemoteMisses count lookups the campaign-fabric
	// tier resolved or failed to resolve (DESIGN.md §13).
	BlobHits     int64 `json:"blob_hits,omitempty"`
	BlobMisses   int64 `json:"blob_misses,omitempty"`
	RemoteHits   int64 `json:"remote_hits,omitempty"`
	RemoteMisses int64 `json:"remote_misses,omitempty"`
}

// Hits is the total traffic served without running a simulation.
func (st Stats) Hits() int64 { return st.MemHits + st.DiskHits + st.Deduped }

// Stats returns the store-wide counters, covering traffic through every
// view (zero on a nil store).
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return s.st.glob.snapshot()
}

// LocalStats returns the traffic counted through this handle only
// (zero on a nil store). For the handle New returned that is its own
// direct traffic; for a View it is that view's.
func (s *Store) LocalStats() Stats {
	if s == nil {
		return Stats{}
	}
	return s.loc.snapshot()
}

// String renders the counters as the one-line "mem=… disk=… sim=… dedup=…"
// summary the CLIs print. The blob-probe, quarantine, blob-attribution
// and fabric fields are appended (the prefix is load-bearing: scripts
// anchor on the first four fields).
func (st Stats) String() string {
	return fmt.Sprintf("mem=%d disk=%d sim=%d dedup=%d miss=%d evict=%d quar=%d blob=%d/%d remote=%d/%d",
		st.MemHits, st.DiskHits, st.Simulated, st.Deduped, st.Misses, st.Evicted, st.Quarantined,
		st.BlobHits, st.BlobMisses, st.RemoteHits, st.RemoteMisses)
}
