package avf

import (
	"math"
	"strings"
	"testing"

	"avfstress/internal/uarch"
)

func flatResult(v float64) *Result {
	r := &Result{Config: "Baseline", Workload: "w"}
	for s := uarch.Structure(0); s < uarch.NumStructures; s++ {
		r.AVF[s] = v
	}
	return r
}

func TestClassMembership(t *testing.T) {
	if len(ClassQS.Structures()) != 7 {
		t.Errorf("QS has %d structures", len(ClassQS.Structures()))
	}
	if len(ClassQSRF.Structures()) != 8 {
		t.Errorf("QS+RF has %d structures", len(ClassQSRF.Structures()))
	}
	if got := ClassDL1DTLB.Structures(); len(got) != 2 || got[0] != uarch.DL1 || got[1] != uarch.DTLB {
		t.Errorf("DL1+DTLB class = %v", got)
	}
	if got := ClassL2.Structures(); len(got) != 1 || got[0] != uarch.L2 {
		t.Errorf("L2 class = %v", got)
	}
	if len(AllClasses()) != int(NumClasses) {
		t.Error("AllClasses incomplete")
	}
}

func TestSERNormalisation(t *testing.T) {
	cfg := uarch.Baseline()
	rates := uarch.UniformRates(1)
	// With AVF = 1 everywhere and rate 1, every normalised class SER is
	// exactly 1 unit/bit.
	r := flatResult(1)
	for _, cl := range AllClasses() {
		if got := r.SER(cfg, rates, cl); math.Abs(got-1) > 1e-12 {
			t.Errorf("SER(%v) = %f, want 1", cl, got)
		}
	}
	// AVF = 0.5 halves it.
	r = flatResult(0.5)
	if got := r.SER(cfg, rates, ClassQS); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("SER = %f, want 0.5", got)
	}
}

func TestSERRespectsRates(t *testing.T) {
	cfg := uarch.Baseline()
	r := flatResult(1)
	edr := uarch.EDRRates()
	got := r.SER(cfg, edr, ClassQS)
	// With EDR rates, only IQ and FU contribute within QS.
	want := float64(uarch.Bits(cfg, uarch.IQ)+uarch.Bits(cfg, uarch.FU)) /
		float64(qsBits(cfg))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("EDR QS SER = %f, want %f", got, want)
	}
}

func qsBits(cfg uarch.Config) uint64 {
	var b uint64
	for _, s := range uarch.QueueStructures {
		b += uarch.Bits(cfg, s)
	}
	return b
}

func TestStructureSER(t *testing.T) {
	cfg := uarch.Baseline()
	rates := uarch.UniformRates(2)
	r := flatResult(0.5)
	got := r.StructureSER(cfg, rates, uarch.IQ)
	want := 0.5 * float64(uarch.Bits(cfg, uarch.IQ)) * 2
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("StructureSER = %f, want %f", got, want)
	}
	if raw := r.RawSER(cfg, rates, uarch.QueueStructures[:2]); raw <= 0 {
		t.Error("RawSER should be positive")
	}
}

func TestFitnessWeights(t *testing.T) {
	cfg := uarch.Baseline()
	rates := uarch.UniformRates(1)
	r := flatResult(1)
	if got := r.Fitness(cfg, rates, DefaultWeights()); math.Abs(got-1) > 1e-12 {
		t.Errorf("flat-1 fitness = %f, want 1", got)
	}
	// Zero weights zero the fitness.
	if got := r.Fitness(cfg, rates, Weights{}); got != 0 {
		t.Errorf("zero-weight fitness = %f", got)
	}
	// Core-only weight isolates QS+RF.
	coreOnly := r.Fitness(cfg, rates, Weights{Core: 1})
	if math.Abs(coreOnly-r.SER(cfg, rates, ClassQSRF)) > 1e-12 {
		t.Error("core-only fitness should equal QS+RF SER")
	}
}

func TestResultString(t *testing.T) {
	r := flatResult(0.25)
	r.Instructions = 1000
	r.Cycles = 2000
	s := r.String()
	for _, want := range []string{"w on Baseline", "ROB", "25.00%"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestClassString(t *testing.T) {
	names := map[Class]string{
		ClassQS: "QS", ClassQSRF: "QS+RF", ClassDL1DTLB: "DL1+DTLB", ClassL2: "L2",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("class %d renders as %q", c, c.String())
		}
	}
}
