// Package sched executes a declared job DAG (internal/scenario Jobs) on
// a bounded worker pool. Jobs sharing a Key are deduplicated — the
// combined DAG of many scenarios pays for each shared workload suite or
// stressmark search once — and execution is fully concurrent: a job
// becomes runnable the moment its dependencies complete, bounded only
// by the worker count.
//
// Cancellation is first-class: the context passed to Run is handed to
// every job, the first job error (or the caller's cancellation) stops
// new work from starting, and Run returns once all in-flight jobs have
// drained. Because every job result in this repository is memoised
// content-addressed (internal/simcache), a cancelled run leaves only
// complete, valid entries behind — re-running after a cancellation
// resumes from what finished.
//
// Faults are contained per job (DESIGN.md §11): a panicking job fails
// with a *PanicError carrying its stack — never the process; transient
// failures (IsTransient) retry with exponential backoff and jitter
// under Options.Retry; and Options.JobTimeout deadlines each attempt,
// failing runaway jobs with a *DeadlineError instead of hanging the
// run.
package sched

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"avfstress/internal/scenario"
)

// RetryPolicy bounds the scheduler's handling of transient job
// failures (IsTransient): exponential backoff with full jitter,
// capped. The zero value disables retries.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per job, including
	// the first (0 or 1 = no retries).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 50ms
	// when retries are enabled); attempt n waits BaseDelay·2^(n-1)
	// plus up to 50% jitter, capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 5s).
	MaxDelay time.Duration
}

// backoff computes the wait before retry number retry (1-based).
func (p RetryPolicy) backoff(retry int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = 5 * time.Second
	}
	d := base
	for i := 1; i < retry && d < maxd; i++ {
		d *= 2
	}
	if d > maxd {
		d = maxd
	}
	// Full 0–50% jitter decorrelates retries across workers hammering
	// one recovering resource (a shared cache disk).
	return d + time.Duration(rand.Int64N(int64(d)/2+1))
}

// Options configures one Run.
type Options struct {
	// Workers bounds concurrently executing jobs (0 = GOMAXPROCS).
	Workers int
	// OnDone, when set, observes every job completion (progress
	// streams). It may be called from multiple goroutines.
	OnDone func(key string, d time.Duration, err error)
	// Retry bounds retries of transiently failing jobs (zero value:
	// no retries). Permanent failures — the default classification —
	// fail the run on the first attempt.
	Retry RetryPolicy
	// OnRetry, when set, observes every retry decision (job key,
	// attempt number that failed, its error, and the backoff chosen).
	// It may be called from multiple goroutines.
	OnRetry func(key string, attempt int, err error, backoff time.Duration)
	// JobTimeout deadlines each job attempt (0 = none). An expired
	// attempt fails with a transient *DeadlineError — retried under
	// Retry, then failing only that job, never masquerading as a
	// cancellation of the whole run.
	JobTimeout time.Duration
	// Executor, when set, arbitrates jobs declared with Lease across
	// campaign-fabric nodes (DESIGN.md §13): exactly one node runs each
	// leased job cold, the rest wait and then run it warm against the
	// shared store. Nil (the default) runs everything locally.
	Executor Executor
}

// node is one deduplicated job in the DAG.
type node struct {
	key        string
	run        func(context.Context) error
	lease      bool // arbitrate through Options.Executor when set
	dependents []*node
	pending    int // remaining dependencies (guarded by Run's mutex)
}

// Run executes jobs in dependency order and returns the first error
// (job failure, or ctx cancellation). Jobs with identical Keys are
// executed once — by the declared-jobs purity contract (DESIGN.md §8)
// they describe identical work, so the first declaration wins. On
// error or cancellation, running jobs drain but no new jobs start.
// Job errors are returned unwrapped (keys are dedup identities, not
// display strings), so jobs should return self-describing errors.
func Run(ctx context.Context, jobs []scenario.Job, opts Options) error {
	nodes, err := build(jobs)
	if err != nil {
		return err
	}
	if len(nodes) == 0 {
		return ctx.Err()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, workers)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}
	var exec func(n *node)
	exec = func(n *node) {
		defer wg.Done()
		sem <- struct{}{}
		start := time.Now()
		err := claimAndRun(cctx, n, opts, sem)
		<-sem
		if err != nil {
			// Job errors are propagated as-is: keys are dedup
			// identities (often fingerprint blobs), not display
			// strings, so jobs must return self-describing errors.
			fail(err)
		}
		if opts.OnDone != nil {
			opts.OnDone(n.key, time.Since(start), err)
		}
		// Release dependents; the last dependency to finish launches
		// each one (even after a failure, so the DAG always drains —
		// released jobs then see the cancelled context and skip work).
		mu.Lock()
		var ready []*node
		for _, d := range n.dependents {
			d.pending--
			if d.pending == 0 {
				ready = append(ready, d)
			}
		}
		mu.Unlock()
		for _, d := range ready {
			wg.Add(1)
			go exec(d)
		}
	}
	mu.Lock()
	var roots []*node
	for _, n := range nodes {
		if n.pending == 0 {
			roots = append(roots, n)
		}
	}
	mu.Unlock()
	for _, n := range roots {
		wg.Add(1)
		go exec(n)
	}
	wg.Wait()

	mu.Lock()
	err = firstErr
	mu.Unlock()
	if err != nil {
		return err
	}
	return ctx.Err()
}

// runAttempts executes one job under the run's fault-containment
// policy: each attempt is panic-recovered and deadline-bounded, and
// transient failures retry with backoff up to Retry.MaxAttempts. The
// surrounding run's cancellation always ends the loop immediately.
func runAttempts(ctx context.Context, n *node, opts Options) error {
	attempts := opts.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	for attempt := 1; ; attempt++ {
		err := runOnce(ctx, n, opts.JobTimeout)
		if err == nil || attempt >= attempts || !IsTransient(err) || ctx.Err() != nil {
			return err
		}
		delay := opts.Retry.backoff(attempt)
		if opts.OnRetry != nil {
			opts.OnRetry(n.key, attempt, err, delay)
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return err
		}
	}
}

// runOnce is a single panic-contained, deadline-bounded job attempt. A
// panicking job fails with a *PanicError carrying its stack — the
// worker goroutine (and the process) survives. An attempt that exceeds
// timeout while the surrounding run is still live fails with a
// *DeadlineError instead of a bare context.DeadlineExceeded, so a slow
// job cannot impersonate a caller timeout.
func runOnce(ctx context.Context, n *node, timeout time.Duration) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Key: n.key, Value: r, Stack: debug.Stack()}
		}
	}()
	if err := ctx.Err(); err != nil {
		return err
	}
	if n.run == nil {
		return nil
	}
	jctx := ctx
	var cancel context.CancelFunc
	if timeout > 0 {
		jctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	err = n.run(jctx)
	if timeout > 0 && err != nil && errors.Is(err, context.DeadlineExceeded) &&
		jctx.Err() == context.DeadlineExceeded && ctx.Err() == nil {
		err = &DeadlineError{Key: n.key, Timeout: timeout}
	}
	return err
}

// build deduplicates jobs by Key, wires the dependency edges and
// rejects unknown dependencies and cycles.
func build(jobs []scenario.Job) ([]*node, error) {
	byKey := make(map[string]*node, len(jobs))
	deps := make(map[string][]string, len(jobs))
	var nodes []*node
	for _, j := range jobs {
		if j.Key == "" {
			return nil, fmt.Errorf("sched: job with empty key")
		}
		if _, ok := byKey[j.Key]; ok {
			continue // purity contract: identical key ⇒ identical work
		}
		n := &node{key: j.Key, run: j.Run, lease: j.Lease}
		byKey[j.Key] = n
		deps[j.Key] = j.Deps
		nodes = append(nodes, n)
	}
	for _, n := range nodes {
		seen := map[string]bool{}
		for _, dk := range deps[n.key] {
			if seen[dk] {
				continue
			}
			seen[dk] = true
			dep, ok := byKey[dk]
			if !ok {
				return nil, fmt.Errorf("sched: job %q depends on unknown job %q", n.key, dk)
			}
			if dep == n {
				return nil, fmt.Errorf("sched: job %q depends on itself", n.key)
			}
			dep.dependents = append(dep.dependents, n)
			n.pending++
		}
	}
	// Kahn's algorithm over a scratch copy of the indegrees: if not
	// every node is reachable from the roots, the remainder is cyclic.
	indeg := make(map[*node]int, len(nodes))
	var queue []*node
	for _, n := range nodes {
		indeg[n] = n.pending
		if n.pending == 0 {
			queue = append(queue, n)
		}
	}
	reached := 0
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		reached++
		for _, d := range n.dependents {
			if indeg[d]--; indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if reached != len(nodes) {
		for _, n := range nodes {
			if indeg[n] > 0 {
				return nil, fmt.Errorf("sched: dependency cycle involving job %q", n.key)
			}
		}
	}
	return nodes, nil
}
