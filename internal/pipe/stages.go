package pipe

import (
	"math/bits"

	"avfstress/internal/isa"
	"avfstress/internal/prog"
)

// commit retires up to CommitWidth completed instructions in order,
// releasing resources and folding their ACE intervals into the
// accumulators. Returns the number committed.
func (pl *Pipeline) commit() int {
	n := 0
	for n < pl.core.CommitWidth && pl.head < pl.tail {
		u := pl.at(pl.head)
		if u.state != sDone {
			break
		}
		if u.wrongPath {
			// Wrong-path uops never reach the ROB head: they are always
			// flushed when their branch resolves first. Defensive check.
			panic("pipe: wrong-path uop at commit")
		}
		if u.op() == isa.OpStore {
			// The architectural write happens at retire.
			pl.mem.Data(pl.now, u.addr, 8, true)
			pl.dropStore(u.addr>>3, false)
		}
		if u.oldPhys != noReg {
			if pl.inj != nil {
				pl.injRegRelease(u.oldPhys)
			}
			if pl.liveRec != nil {
				pl.liveRec.onRelease(u.oldPhys, pl.now)
			}
			pl.releaseReg(u.oldPhys)
		}
		pl.acct.onCommit(pl, u)
		if pl.digestOn {
			pl.digestCommit(u)
			if pl.inj != nil {
				pl.injMarkCommit(u)
			}
		}
		if u.inLQ {
			pl.lqUsed--
		}
		if u.inSQ {
			pl.sqUsed--
		}
		if u.inIQ {
			// Completed instructions have always left the IQ.
			panic("pipe: committed uop still in IQ")
		}
		pl.head++
		n++
		pl.countCommit(u)
	}
	return n
}

// countCommit advances the committed-instruction counters and flips the
// pipeline into measurement mode at the end of warmup.
func (pl *Pipeline) countCommit(u *uop) {
	if !pl.acct.measuring {
		pl.acct.warmupDone++
		if pl.acct.warmupDone >= pl.acct.warmupLeft {
			pl.startMeasurement()
		}
		return
	}
	pl.acct.committed++
	switch u.op() {
	case isa.OpLoad:
		pl.acct.loads++
	case isa.OpStore:
		pl.acct.stores++
	case isa.OpBranch:
		pl.acct.branches++
	case isa.OpMul:
		pl.acct.longArith++
	}
	if u.ace {
		pl.acct.aceCommitted++
	}
}

// complete moves finished executions to done and handles branch
// resolution (misprediction flush). Returns the number of completions.
//
// Completion events pop in (cycle, seq) order and the run loop never
// advances past a pending completion, so every live event popped here is
// due exactly now and the uops are visited oldest first — the same order
// as the seed core's head→tail scan.
func (pl *Pipeline) complete() int {
	if !pl.compW.hasDue(pl.now) {
		return 0
	}
	n := 0
	w := &pl.compW
	for {
		if w.dueIdx >= len(w.due) {
			if !w.beginNextBucket(pl.now) {
				break
			}
		}
		e := w.due[w.dueIdx]
		w.dueIdx++
		u, ok := pl.live(e.seq, e.gen)
		if !ok || u.state != sIssued {
			continue // flushed or superseded; discard
		}
		u.state = sDone
		n++
		if u.destPhys != noReg {
			// The result is ready exactly now: wake parked consumers.
			pl.broadcast(u.destPhys)
		}
		if u.opc == isa.OpStore {
			// Loads disambiguation-blocked on this store become issuable
			// exactly now: return the live ones to the ready set (stale
			// refs from flushed loads are dropped here).
			if i := e.seq & pl.robMask; len(pl.blockedOn[i]) > 0 {
				for _, ref := range pl.blockedOn[i] {
					if c, ok := pl.live(ref.seq, ref.gen); ok && c.state == sWaiting {
						pl.readyB.set(ref.seq & pl.robMask)
					}
				}
				pl.blockedOn[i] = pl.blockedOn[i][:0]
			}
		}
		if u.op() == isa.OpBranch && u.mispred && !u.wrongPath {
			pl.flushAfter(e.seq)
			pl.fetchStallUntil = pl.now + int64(pl.core.MispredictPenalty)
			pl.wrongPathMode = false
			return n // everything younger was squashed; their events die lazily
		}
	}
	return n
}

// flushAfter squashes every uop younger than seq, restoring the rename
// map from the branch's checkpoint, returning physical registers and
// clearing ready bits. Scheduled completion events, parked waiters and
// blocked-load refs of squashed uops are not removed here; they are
// discarded when popped, via the generation check.
func (pl *Pipeline) flushAfter(seq int64) {
	copy(pl.archMap, pl.ckpt[seq&pl.robMask])
	for s := pl.tail - 1; s > seq; s-- {
		u := pl.at(s)
		pl.readyB.clear(s & pl.robMask)
		if u.destPhys != noReg {
			// The squashed value is un-ACE; reset and return the register.
			pl.regs[u.destPhys] = physReg{readyCycle: farAway}
			pl.freeList = append(pl.freeList, u.destPhys)
		}
		if u.inIQ {
			pl.iqUsed--
		}
		if u.inLQ {
			pl.lqUsed--
		}
		if u.inSQ {
			pl.sqUsed--
			if !u.wrongPath {
				pl.dropStore(u.addr>>3, true)
			}
		}
		pl.acct.flushed++
	}
	pl.tail = seq + 1
	pl.havePending = false
}

// issue issues ready instructions, oldest first, bounded by the issue
// width, the memory-issue limit and functional-unit counts. Returns the
// number issued.
//
// Only uops whose operands have all become ready are examined: the
// ready bitmap is walked from the head slot in sequence order. Uops
// that lose a resource race (FU counts, memory ports, issue width) keep
// their ready bit for the next cycle, and loads blocked behind an older
// incomplete same-address store are parked on that store's ROB slot
// until its completion — both preserving the seed core's oldest-first
// selection exactly.
func (pl *Pipeline) issue() int {
	r := &pl.readyB
	if r.count == 0 {
		return 0
	}
	issued, memIssued, aluIssued, mulIssued := 0, 0, 0, 0
	mask := pl.robMask
	start := pl.head & mask
	nw := int64(len(r.words))
	wi := start >> 6
	w := r.words[wi] &^ (1<<uint(start&63) - 1)
	for k := int64(0); ; {
		for w != 0 {
			b := int64(bits.TrailingZeros64(w))
			w &= w - 1
			slot := wi<<6 + b
			u := &pl.rob[slot]
			if u.state != sWaiting {
				// Bits are cleared eagerly at issue/park/flush; defensive.
				r.clear(slot)
				continue
			}
			if issued >= pl.core.IssueWidth {
				return issued // remaining bits stay set for the next cycle
			}
			seq := pl.head + ((slot - start) & mask)
			op := u.opc
			switch op {
			case isa.OpAdd:
				if aluIssued >= pl.core.NumALUs {
					continue // bit stays set
				}
			case isa.OpMul:
				if mulIssued >= pl.core.NumMuls {
					continue
				}
			case isa.OpLoad, isa.OpStore:
				if memIssued >= pl.core.MemIssuePerCycle {
					continue
				}
			}
			if op == isa.OpLoad {
				blocked, blockSeq, fwd := pl.loadMemCheck(seq, u)
				if blocked {
					// Park on the blocking store's ROB slot instead of
					// staying ready: the store's completion re-readies the
					// load at the cycle it becomes issuable, so it is not
					// re-examined on every cycle of a (possibly hundreds of
					// cycles long) miss shadow.
					r.clear(slot)
					i := blockSeq & mask
					pl.blockedOn[i] = append(pl.blockedOn[i], readyRef{seq: seq, gen: u.gen})
					continue
				}
				u.forwarded = fwd
			}
			// Issue.
			r.clear(slot)
			u.state = sIssued
			u.issueCycle = pl.now
			if u.inIQ {
				u.inIQ = false
				pl.iqUsed--
			}
			issued++
			if pl.acct.measuring {
				switch op {
				case isa.OpAdd:
					pl.acct.issuedALU++
				case isa.OpMul:
					pl.acct.issuedMul++
				case isa.OpLoad, isa.OpStore:
					pl.acct.issuedMem++
				case isa.OpBranch:
					pl.acct.issuedBr++
				}
			}
			switch op {
			case isa.OpAdd:
				aluIssued++
				u.execLatency = int64(pl.core.ALULatency)
				u.doneCycle = pl.now + u.execLatency
			case isa.OpMul:
				mulIssued++
				u.execLatency = int64(pl.core.MulLatency)
				u.doneCycle = pl.now + u.execLatency
			case isa.OpBranch:
				u.execLatency = 1
				u.doneCycle = pl.now + 1
			case isa.OpLoad:
				memIssued++
				switch {
				case u.wrongPath:
					u.doneCycle = pl.now + int64(pl.cfg.Mem.DL1.HitLatency)
				case u.forwarded:
					u.doneCycle = pl.now + 1
				default:
					lat, _, _ := pl.mem.Data(pl.now, u.addr, 8, false)
					u.doneCycle = pl.now + int64(lat)
				}
				u.dataReady = u.doneCycle
			case isa.OpStore:
				memIssued++
				u.execLatency = 1
				u.doneCycle = pl.now + 1
			}
			pl.compW.push(event{cycle: u.doneCycle, seq: seq, gen: u.gen})
			// Operand reads extend the producers' ACE intervals.
			if u.ace {
				for si, s := range u.src {
					if s != noReg && pl.regs[s].lastRead < pl.now {
						pl.regs[s].lastRead = pl.now
						if pl.inj != nil && pl.inj.rfOpen > 0 {
							pl.injNoteRead(s, u, int8(si))
						}
					}
				}
			}
			// Result announcement: later-dispatched consumers see the known
			// ready cycle; already-parked waiters are woken by broadcast()
			// when the completion event fires at exactly that cycle.
			if u.destPhys != noReg {
				reg := &pl.regs[u.destPhys]
				reg.readyCycle = u.doneCycle
				reg.written = true
				reg.aceValue = u.ace
				reg.writeTime = u.doneCycle
				reg.lastRead = u.doneCycle
				if pl.liveRec != nil && !u.wrongPath {
					pl.liveRec.onWrite(u.destPhys, pl.now, u.static)
				}
			}
		}
		k++
		if k > nw {
			break
		}
		wi = (wi + 1) & (nw - 1)
		w = r.words[wi]
		if wi == start>>6 {
			// Wrapped back to the first word: only bits before start.
			w &= 1<<uint(start&63) - 1
		}
	}
	return issued
}

func (pl *Pipeline) ready(r int16) bool {
	return r == noReg || pl.regs[r].readyCycle <= pl.now
}

// loadMemCheck applies perfect memory disambiguation against older
// in-flight stores: a load is blocked while an older overlapping store
// has not yet captured its data (blockSeq names that store), and
// forwards from the youngest older completed overlapping store. The
// doubleword store index makes this one map lookup plus a scan of the
// (almost always single-entry) same-address list, instead of a walk over
// the whole ROB window.
func (pl *Pipeline) loadMemCheck(seq int64, u *uop) (blocked bool, blockSeq int64, forwarded bool) {
	if u.wrongPath {
		return false, 0, false
	}
	l := pl.dwStores.lookup(u.addr >> 3)
	for i := len(l) - 1; i >= 0; i-- {
		if l[i] < seq {
			if pl.at(l[i]).state != sDone {
				return true, l[i], false
			}
			return false, 0, true
		}
	}
	return false, 0, false
}

// dispatch fetches, renames and inserts up to MapWidth instructions.
// Returns the number dispatched.
func (pl *Pipeline) dispatch() int {
	for n := 0; n < pl.core.MapWidth; n++ {
		if pl.now < pl.fetchStallUntil {
			return n
		}
		it, ok := pl.nextFetch()
		if !ok {
			return n
		}
		u0 := &it.dyn
		op := u0.Static.Op
		// Structural checks; on failure push the instruction back.
		if pl.robCount() >= int(pl.robCap) ||
			(op != isa.OpNop && pl.iqUsed >= pl.core.IQEntries) ||
			(op == isa.OpLoad && pl.lqUsed >= pl.core.LQEntries) ||
			(op == isa.OpStore && pl.sqUsed >= pl.core.SQEntries) ||
			(isa.WritesDest(u0.Static) && len(pl.freeList) == 0) {
			pl.havePending = true
			return n
		}
		if !it.wrongPath {
			// Instruction fetch from the IL1 (wrong-path fetch does not
			// pollute the caches in this model).
			if extra := pl.mem.Fetch(pl.now, u0.PC); extra > 0 {
				pl.fetchStallUntil = pl.now + int64(extra)
				pl.havePending = true
				return n
			}
		}
		seq := pl.tail
		pl.tail++
		u := pl.at(seq)
		if l := pl.blockedOn[seq&pl.robMask]; len(l) > 0 {
			// Stale parked loads of a flushed previous occupant: anything
			// parked on a flushed store was younger and flushed with it.
			pl.blockedOn[seq&pl.robMask] = l[:0]
		}
		pl.readyB.clear(seq & pl.robMask) // defensive; flush already cleared it
		// Field-wise re-initialisation (every field is written) instead of
		// a composite-literal assignment: the struct is large enough that
		// the literal compiles to a temp plus a bulk copy.
		u.static = u0.Static
		u.addr = u0.Addr
		u.dynSeq = u0.Seq
		u.wrongPath = it.wrongPath
		u.opc = op
		u.ace = !it.wrongPath && !u0.Static.UnACE && op != isa.OpNop
		u.state = sWaiting
		u.gen++
		u.pendingSrcs = 0
		u.destPhys = noReg
		u.oldPhys = noReg
		u.src[0], u.src[1] = noReg, noReg
		u.inIQ, u.inLQ, u.inSQ = false, false, false
		u.dispatchCycle = pl.now
		u.issueCycle = 0
		u.doneCycle = farAway
		u.dataReady = 0
		u.execLatency = 0
		u.forwarded = false
		u.predTaken = false
		u.mispred = false
		pl.rename(seq, u)
		switch op {
		case isa.OpNop:
			u.state = sDone
			u.doneCycle = pl.now
		case isa.OpLoad:
			u.inIQ = true
			pl.iqUsed++
			u.inLQ = true
			pl.lqUsed++
		case isa.OpStore:
			u.inIQ = true
			pl.iqUsed++
			u.inSQ = true
			pl.sqUsed++
			if !it.wrongPath {
				pl.pushStore(u0.Addr>>3, seq)
			}
		default:
			u.inIQ = true
			pl.iqUsed++
		}
		if u.state == sWaiting && u.pendingSrcs == 0 {
			pl.readyB.set(seq & pl.robMask)
		}
		if op == isa.OpBranch && !it.wrongPath {
			pred := pl.bp.Predict(u0.PC)
			correct := pl.bp.Update(u0.PC, u0.Taken)
			u.predTaken = pred
			u.mispred = !correct
			copy(pl.ckpt[seq&pl.robMask], pl.archMap)
			if u.mispred {
				pl.wrongPathMode = true
				pl.wpIdx = pl.wpIndexAfter(u0)
				pl.acct.mispredicts++
			}
			pl.acct.branchesFetched++
		}
		if it.wrongPath {
			pl.acct.wrongPathFetched++
		}
		pl.acct.fetched++
	}
	return pl.core.MapWidth
}

// rename maps source registers, counts the not-yet-ready ones (parking
// the uop on each pending source's waiter list, resolved by broadcast at
// the producer's completion), and allocates a destination register. The
// source mapping is read before the destination allocation overwrites
// the rename map, so self-referencing instructions (the pointer chase)
// see the previous producer.
func (pl *Pipeline) rename(seq int64, u *uop) {
	in := u.static
	var srcs [2]isa.Reg
	ns := 0
	switch in.Op {
	case isa.OpAdd, isa.OpMul:
		srcs[ns] = in.Src1
		ns++
		if in.RegReg {
			srcs[ns] = in.Src2
			ns++
		}
	case isa.OpLoad, isa.OpBranch:
		srcs[ns] = in.Src1
		ns++
	case isa.OpStore:
		srcs[0], srcs[1] = in.Src1, in.Src2
		ns = 2
	}
	pending := uint8(0)
	for i := 0; i < ns; i++ {
		if srcs[i] == isa.RZero {
			continue
		}
		p := pl.archMap[srcs[i]]
		u.src[i] = p
		if pl.regs[p].readyCycle > pl.now {
			pending++
			pl.waiters[p] = append(pl.waiters[p], waiterRef{seq: seq, gen: u.gen})
		}
	}
	u.pendingSrcs = pending
	if isa.WritesDest(in) {
		p := pl.freeList[len(pl.freeList)-1]
		pl.freeList = pl.freeList[:len(pl.freeList)-1]
		u.oldPhys = pl.archMap[in.Dest]
		u.destPhys = p
		pl.archMap[in.Dest] = p
		// Only readyCycle and written need resetting: the remaining
		// physReg fields are read solely when written is true, and issue
		// rewrites them all before setting it.
		r := &pl.regs[p]
		r.readyCycle = farAway
		r.written = false
	}
}

// nextFetch stages the next instruction to dispatch in pl.pending — the
// pushed-back one, a synthetic wrong-path instruction, or the next
// real-stream one — and returns a pointer to it. The item stays staged
// until dispatch succeeds, so a structural-hazard pushback is just
// havePending = true with no copying.
func (pl *Pipeline) nextFetch() (*fetchItem, bool) {
	if pl.havePending {
		pl.havePending = false
		return &pl.pending, true
	}
	if pl.wrongPathMode {
		body := pl.p.Body
		in := &body[pl.wpIdx]
		d := &pl.pending.dyn
		d.Static = in
		d.Seq, d.Iter = -1, -1
		d.PC = prog.PCOf(pl.wpIdx)
		d.Addr, d.Taken = 0, false
		pl.pending.wrongPath = true
		pl.wpIdx++
		if pl.wpIdx == len(body) {
			pl.wpIdx = 0
		}
		return &pl.pending, true
	}
	if pl.streamDone {
		return nil, false
	}
	pl.pending.wrongPath = false
	if !pl.stream.NextInto(&pl.pending.dyn) {
		pl.streamDone = true
		return nil, false
	}
	return &pl.pending, true
}

// wpIndexAfter picks where wrong-path fetch starts: the body instruction
// following the mispredicted branch (the not-taken path of a taken
// backedge, or the fall-through clone for a reconvergent branch).
func (pl *Pipeline) wpIndexAfter(d *prog.Dyn) int {
	idx := int((d.PC - prog.BodyBase) / isa.InstrBytes)
	if idx < 0 || idx >= len(pl.p.Body) {
		return 0
	}
	if idx+1 == len(pl.p.Body) {
		return 0
	}
	return idx + 1
}

// releaseReg frees a physical register at commit of the overwriting
// instruction, folding its ACE interval into the RF accumulator. An
// armed register-file fate watch is resolved by the caller *before*
// this runs (injRegRelease) — hook-free so releaseReg stays inlinable
// in the commit loop.
func (pl *Pipeline) releaseReg(p int16) {
	pl.acct.closeReg(pl, &pl.regs[p])
	pl.regs[p] = physReg{readyCycle: farAway}
	pl.freeList = append(pl.freeList, p)
}
