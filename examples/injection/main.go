// Injection: validate the ACE-based AVF accounting with a Monte Carlo
// statistical fault-injection campaign — the cross-check the soft-error
// literature applies to every ACE analysis. The campaign samples random
// single-bit (structure, bit, cycle) targets from a golden simulation
// of the paper's published baseline stressmark, replays the run
// deterministically with each bit flipped, and compares the measured
// vulnerable fraction (with a 95% confidence interval) against the
// ACE-accounting AVF, per structure and in aggregate. See DESIGN.md §9
// for the sampling model and outcome taxonomy, and cmd/avfinject for
// the full CLI (multi-workload panel, RHC/EDR rates, cached trials).
//
// Run with: go run ./examples/injection
package main

import (
	"context"
	"fmt"
	"log"

	"avfstress"
	"avfstress/internal/codegen"
	"avfstress/internal/inject"
	"avfstress/internal/pipe"
)

func main() {
	// Scale the storage arrays down 32× so the campaign finishes in
	// seconds; the core is exactly the paper's Table I (DESIGN.md §4).
	cfg := avfstress.Scaled(avfstress.Baseline(), 32)

	// The paper's published Figure-5a knob settings generate the
	// baseline stressmark without a GA search.
	knobs := codegen.Knobs{LoopSize: 81, NumLoads: 29, NumStores: 28,
		NumIndepArith: 5, MissDependent: 7, AvgChainLength: 2.14,
		DepDistance: 6, FracLongLatency: 0.8, FracRegReg: 0.93, Seed: 42}
	program, _, err := codegen.Generate(cfg, knobs, 1<<40)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("running a 600-trial fault-injection campaign on", cfg.Name, "...")
	res, err := inject.Run(context.Background(), inject.Options{
		Config:  cfg,
		Program: program,
		Run:     pipe.RunConfig{MaxInstructions: 12_000, WarmupInstructions: 4_000},
		Trials:  600,
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%s\n", res)
	verdict := "validates"
	if !res.CI.Contains(res.ACEAVF) {
		verdict = "DOES NOT validate"
	}
	fmt.Printf("ACE-based AVF %.4f vs injection-measured %.4f [%.4f, %.4f] — the estimator %s.\n",
		res.ACEAVF, res.AVF, res.CI.Lo, res.CI.Hi, verdict)
	fmt.Println("\nEvery replay is deterministic: same seed, same report, byte for byte —")
	fmt.Println("pass a simcache store (inject.Options.Cache) to memoise trials across runs.")
}
