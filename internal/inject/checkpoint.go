package inject

// Checkpoint plumbing for the campaign engine: persistence of the
// golden run's replay facts (GoldenInfo), the checkpoint manifest
// (capture cycles + validity lead) and the per-index checkpoint blobs
// in the simcache blob tier, plus the lazy checkpoint source bucket
// jobs pull from. Checkpoints are pure replay accelerators: every code
// path here degrades to a from-cycle-zero replay on any miss or decode
// failure, never to a wrong outcome — which is why none of these keys
// participate in trial-outcome addressing or in the report.

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"avfstress/internal/pipe"
	"avfstress/internal/prog"
	"avfstress/internal/simcache"
)

// encodeGoldenInfo serialises the golden run's replay facts (a small
// versioned text blob; the report only uses fields replays also need,
// so caching this beside the result spares warm campaigns the golden
// re-run entirely).
func encodeGoldenInfo(gi pipe.GoldenInfo) []byte {
	return []byte(fmt.Sprintf("goldeninfo v1 %d %d %d", gi.WindowStart, gi.Cycles, gi.Digest))
}

func decodeGoldenInfo(b []byte) (pipe.GoldenInfo, error) {
	var gi pipe.GoldenInfo
	var ver string
	n, err := fmt.Sscanf(string(b), "goldeninfo %s %d %d %d", &ver, &gi.WindowStart, &gi.Cycles, &gi.Digest)
	if err != nil || n != 4 || ver != "v1" {
		return pipe.GoldenInfo{}, fmt.Errorf("inject: bad golden-info blob")
	}
	return gi, nil
}

// ckptManifest is the decoded checkpoint manifest: enough to bucket
// faults by nearest valid checkpoint without loading any checkpoint.
type ckptManifest struct {
	interval int64
	lead     int64
	cycles   []int64
}

func encodeManifest(cs *pipe.CheckpointSet) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "ckptmanifest v1 %d %d %d", cs.Interval, cs.Lead, len(cs.Checkpoints))
	for _, c := range cs.Cycles() {
		fmt.Fprintf(&b, " %d", c)
	}
	return []byte(b.String())
}

func decodeManifest(b []byte) (ckptManifest, error) {
	var m ckptManifest
	fields := strings.Fields(string(b))
	if len(fields) < 5 || fields[0] != "ckptmanifest" || fields[1] != "v1" {
		return m, fmt.Errorf("inject: bad checkpoint manifest")
	}
	vals := make([]int64, 0, len(fields)-2)
	for _, f := range fields[2:] {
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return m, fmt.Errorf("inject: bad checkpoint manifest: %w", err)
		}
		vals = append(vals, v)
	}
	m.interval, m.lead = vals[0], vals[1]
	n := vals[2]
	if n < 0 || int64(len(vals)-3) != n {
		return m, fmt.Errorf("inject: checkpoint manifest count mismatch")
	}
	m.cycles = vals[3:]
	return m, nil
}

// ckptSource hands out replay checkpoints by manifest index: from the
// fresh golden run's in-memory set when this process just captured it,
// otherwise lazily decoded from the blob tier (each index at most once,
// shared across buckets). A missing or corrupt blob yields nil and the
// bucket replays from cycle zero — slower, never wrong.
type ckptSource struct {
	set   *pipe.CheckpointSet
	cache *simcache.Store
	prog  *prog.Program
	keys  []simcache.Key

	mu      sync.Mutex
	decoded map[int]*pipe.Checkpoint
}

func (cs *ckptSource) checkpoint(i int) *pipe.Checkpoint {
	if cs == nil || i < 0 {
		return nil
	}
	if cs.set != nil {
		return cs.set.Checkpoints[i]
	}
	cs.mu.Lock()
	ck, ok := cs.decoded[i]
	cs.mu.Unlock()
	if ok {
		return ck
	}
	if b, found := cs.cache.GetBlob(cs.keys[i]); found {
		if dec, err := pipe.UnmarshalCheckpoint(b, cs.prog); err == nil {
			ck = dec
		}
	}
	cs.mu.Lock()
	cs.decoded[i] = ck // nil is cached too: one failed load per index
	cs.mu.Unlock()
	return ck
}
