package experiments

import (
	"context"
	"fmt"
	"strings"

	"avfstress/internal/scenario"
	"avfstress/internal/sched"
	"avfstress/internal/uarch"
)

// Names lists the runnable experiments: the paper figures/tables in
// paper order, then the harness extras (worst-case bound, power
// contrast, HVF bounds, root-cause attribution).
func Names() []string {
	return []string{"table1", "table2", "fig3", "fig4", "fig5", "fig6",
		"fig7", "fig8", "fig9", "table3", "worstcase", "powercontrast", "hvf",
		"rootcause"}
}

func unknownExperiment(name string) error {
	return fmt.Errorf("experiments: unknown experiment %q (have %s)",
		name, strings.Join(Names(), ", "))
}

// --- declared jobs -------------------------------------------------

// workloadsJob declares the 33-proxy suite simulation on cfg. The key is
// the configuration fingerprint, so every scenario needing the suite on
// one configuration shares a single job.
func (c *Context) workloadsJob(cfg uarch.Config) scenario.Job {
	return scenario.Job{
		Key: "wl\x00" + cfg.Fingerprint(),
		Run: func(ctx context.Context) error {
			_, err := c.Workloads(ctx, cfg)
			return err
		},
	}
}

// stressmarkJob declares one stressmark search (or reference
// evaluation), keyed exactly like the Stressmark memo so scenarios
// sharing a search share the job.
func (c *Context) stressmarkJob(key string, cfg uarch.Config, rates uarch.FaultRates) scenario.Job {
	return scenario.Job{
		Key: "sm\x00" + key + "\x00" + cfg.Fingerprint() + "\x00" + rates.Fingerprint(),
		Run: func(ctx context.Context) error {
			_, err := c.Stressmark(ctx, key, cfg, rates)
			return err
		},
	}
}

// powerVirusJob declares the §IV-B power-virus simulation.
func (c *Context) powerVirusJob() scenario.Job {
	return scenario.Job{
		Key: "pv\x00" + c.Baseline.Fingerprint(),
		Run: func(ctx context.Context) error {
			_, err := c.PowerVirus(ctx)
			return err
		},
	}
}

// --- the registry --------------------------------------------------

// Registry returns the scenario registry bound to this context: the 13
// paper experiments in paper order, each declaring the workload/search
// jobs it needs plus a render step (declared-jobs purity: rendering
// after the jobs have run triggers no further simulation).
func (c *Context) Registry() *scenario.Registry {
	c.regOnce.Do(func() { c.reg = c.buildRegistry() })
	return c.reg
}

func (c *Context) buildRegistry() *scenario.Registry {
	r := scenario.NewRegistry()
	uni := uarch.UniformRates(1)
	base := c.Baseline
	smBase := func() scenario.Job { return c.stressmarkJob("baseline", base, uni) }
	wlBase := func() scenario.Job { return c.workloadsJob(base) }
	none := func() []scenario.Job { return nil }
	static := func(render func() string) func(context.Context) (string, error) {
		return func(context.Context) (string, error) { return render(), nil }
	}

	r.MustRegister(scenario.Definition{
		Name: "table1", Title: "Table I — baseline configuration",
		Jobs:   none,
		Render: static(func() string { return "Table I — " + ConfigTable(c.Baseline) }),
	})
	r.MustRegister(scenario.Definition{
		Name: "table2", Title: "Table II — Configuration A",
		Jobs:   none,
		Render: static(func() string { return "Table II — " + ConfigTable(c.ConfigA) }),
	})
	r.MustRegister(scenario.Definition{
		Name: "fig3", Title: "Figure 3 — stressmark vs SPEC CPU2006 proxies",
		Jobs: func() []scenario.Job { return []scenario.Job{smBase(), wlBase()} },
		Render: func(ctx context.Context) (string, error) {
			r, err := c.Fig3(ctx)
			return render(r, err)
		},
	})
	r.MustRegister(scenario.Definition{
		Name: "fig4", Title: "Figure 4 — stressmark vs MiBench proxies",
		Jobs: func() []scenario.Job { return []scenario.Job{smBase(), wlBase()} },
		Render: func(ctx context.Context) (string, error) {
			r, err := c.Fig4(ctx)
			return render(r, err)
		},
	})
	r.MustRegister(scenario.Definition{
		Name: "fig5", Title: "Figure 5 — GA knobs and convergence",
		Jobs: func() []scenario.Job { return []scenario.Job{smBase()} },
		Render: func(ctx context.Context) (string, error) {
			r, err := c.Fig5(ctx)
			return render(r, err)
		},
	})
	r.MustRegister(scenario.Definition{
		Name: "fig6", Title: "Figure 6 — per-structure AVFs by suite",
		Jobs: func() []scenario.Job { return []scenario.Job{smBase(), wlBase()} },
		Render: func(ctx context.Context) (string, error) {
			r, err := c.Fig6(ctx)
			return render(r, err)
		},
	})
	r.MustRegister(scenario.Definition{
		Name: "fig7", Title: "Figure 7 — workloads under RHC/EDR rates",
		Jobs: func() []scenario.Job {
			return []scenario.Job{
				wlBase(),
				c.stressmarkJob("rhc", base, uarch.RHCRates()),
				c.stressmarkJob("edr", base, uarch.EDRRates()),
			}
		},
		Render: func(ctx context.Context) (string, error) {
			r, err := c.Fig7(ctx)
			return render(r, err)
		},
	})
	r.MustRegister(scenario.Definition{
		Name: "fig8", Title: "Figure 8 — fault-rate adaptation",
		Jobs: func() []scenario.Job {
			return []scenario.Job{
				smBase(),
				c.stressmarkJob("rhc", base, uarch.RHCRates()),
				c.stressmarkJob("edr", base, uarch.EDRRates()),
			}
		},
		Render: func(ctx context.Context) (string, error) {
			r, err := c.Fig8(ctx)
			return render(r, err)
		},
	})
	r.MustRegister(scenario.Definition{
		Name: "fig9", Title: "Figure 9 — Configuration A adaptation",
		Jobs: func() []scenario.Job {
			return []scenario.Job{smBase(), c.stressmarkJob("configA", c.ConfigA, uni)}
		},
		Render: func(ctx context.Context) (string, error) {
			r, err := c.Fig9(ctx)
			return render(r, err)
		},
	})
	r.MustRegister(scenario.Definition{
		Name: "table3", Title: "Table III — worst-case estimator comparison",
		Jobs: func() []scenario.Job {
			return []scenario.Job{
				wlBase(),
				smBase(),
				c.stressmarkJob("rhc", base, uarch.RHCRates()),
				c.stressmarkJob("edr", base, uarch.EDRRates()),
			}
		},
		Render: func(ctx context.Context) (string, error) {
			r, err := c.Table3(ctx)
			return render(r, err)
		},
	})
	r.MustRegister(scenario.Definition{
		Name: "worstcase", Title: "§VI — instantaneous bound vs sustained stressmark",
		Jobs: func() []scenario.Job { return []scenario.Job{smBase(), wlBase()} },
		Render: func(ctx context.Context) (string, error) {
			r, err := c.WorstCase(ctx)
			return render(r, err)
		},
	})
	r.MustRegister(scenario.Definition{
		Name: "powercontrast", Title: "§IV-B — power viruses are not AVF stressmarks",
		Jobs: func() []scenario.Job {
			return []scenario.Job{smBase(), wlBase(), c.powerVirusJob()}
		},
		Render: func(ctx context.Context) (string, error) {
			r, err := c.PowerContrast(ctx)
			return render(r, err)
		},
	})
	r.MustRegister(scenario.Definition{
		Name: "hvf", Title: "§VIII — HVF bounds vs measured AVF",
		Jobs: func() []scenario.Job { return []scenario.Job{smBase(), wlBase()} },
		Render: func(ctx context.Context) (string, error) {
			r, err := c.HVFStudy(ctx)
			return render(r, err)
		},
	})
	r.MustRegister(scenario.Definition{
		Name:  "rootcause",
		Title: "Root-cause instruction analysis — baseline under uniform rates",
		Jobs: func() []scenario.Job {
			// The default view of the parametric rootcause:<config>:
			// <rates>:<trials> form. It shares the faultinject study's
			// memoised campaigns, so running both scenarios costs one
			// set of replays.
			sm := smBase()
			return []scenario.Job{sm,
				c.faultInjectJob("baseline", "uniform", defaultInjectTrials, []string{sm.Key})}
		},
		Render: func(ctx context.Context) (string, error) {
			st, err := c.FaultInjection(ctx, "baseline", "uniform", defaultInjectTrials)
			if err != nil {
				return "", err
			}
			return st.RootCauseReport(), nil
		},
	})
	return r
}

// defaultInjectTrials sizes the default fault-injection campaigns (the
// registered rootcause experiment and the short parametric forms).
const defaultInjectTrials = 1000

// lookup resolves a scenario name: registered experiments first, then
// the parametric forms; unknown names keep the historical descriptive
// error.
func (c *Context) lookup(name string) (scenario.Definition, error) {
	if d, err := c.Registry().Lookup(name); err == nil {
		return d, nil
	}
	if d, ok := c.parametricScenario(name); ok {
		return d, nil
	}
	return scenario.Definition{}, unknownExperiment(name)
}

func render(r fmt.Stringer, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return r.String(), nil
}

// --- execution -----------------------------------------------------

// workers bounds concurrent scheduler jobs.
func (c *Context) workers() int {
	return c.Opts.Parallelism // 0 = GOMAXPROCS, resolved by sched
}

// runDefs schedules the combined job DAG of defs — shared jobs
// deduplicated by key, renders running as soon as their dependencies
// complete — and returns each definition's rendered report in input
// order.
func (c *Context) runDefs(ctx context.Context, defs []scenario.Definition) ([]string, error) {
	outs := make([]string, len(defs))
	var jobs []scenario.Job
	for i, d := range defs {
		var deps []string
		if d.Jobs != nil {
			for _, j := range d.Jobs() {
				jobs = append(jobs, j)
				deps = append(deps, j.Key)
			}
		}
		i, d := i, d
		jobs = append(jobs, scenario.Job{
			// The index suffix keeps render keys unique when one
			// scenario is requested twice.
			Key:  fmt.Sprintf("render\x00%d\x00%s", i, d.Name),
			Deps: deps,
			Run: func(ctx context.Context) error {
				s, err := d.Render(ctx)
				if err != nil {
					// The scenario name is the user-facing error
					// context (the historical "fig5: ..." shape);
					// declared-job errors are already
					// self-describing.
					return fmt.Errorf("%s: %w", d.Name, err)
				}
				outs[i] = s
				return nil
			},
		})
	}
	if err := sched.Run(ctx, jobs, sched.Options{
		Workers:    c.workers(),
		Retry:      c.Opts.Retry,
		OnRetry:    c.Opts.OnRetry,
		JobTimeout: c.Opts.JobTimeout,
		Executor:   c.Opts.Executor,
	}); err != nil {
		return nil, err
	}
	return outs, nil
}

// Run executes one named experiment and returns its rendered report.
func (c *Context) Run(ctx context.Context, name string) (string, error) {
	d, err := c.lookup(name)
	if err != nil {
		return "", err
	}
	outs, err := c.runDefs(ctx, []scenario.Definition{d})
	if err != nil {
		return "", err
	}
	return outs[0], nil
}

// RunScenarios resolves names, runs their combined job DAG concurrently
// and returns the combined report, assembled in input order — byte-
// identical to running the same names sequentially, whatever order the
// scheduler completed them in. On any error the combined report is
// empty.
func (c *Context) RunScenarios(ctx context.Context, names []string) (string, error) {
	defs := make([]scenario.Definition, len(names))
	for i, n := range names {
		d, err := c.lookup(n)
		if err != nil {
			return "", err
		}
		defs[i] = d
	}
	outs, err := c.runDefs(ctx, defs)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, s := range outs {
		fmt.Fprintf(&b, "%s\n%s\n%s\n\n", strings.Repeat("=", 72), s, strings.Repeat("=", 72))
	}
	return b.String(), nil
}

// RunAll executes every experiment and returns the combined report.
func (c *Context) RunAll(ctx context.Context) (string, error) {
	return c.RunScenarios(ctx, Names())
}
