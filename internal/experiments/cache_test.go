package experiments

import (
	"testing"

	"avfstress/internal/simcache"
	"avfstress/internal/uarch"
)

// smallOpts keeps the cache/aliasing tests cheap: short windows, paper
// knobs, no GA.
func smallOpts() Options {
	return Options{
		Scale: 32, Seed: 1, UseReferenceKnobs: true,
		WorkloadInstr: 40_000, WorkloadWarmup: 10_000,
	}
}

// TestWorkloadsNotAliasedByConfigName is the regression test for the
// PR 3 key fix: the wl/sm memos used to key on cfg.Name alone, so two
// differently-scaled configurations sharing a Name silently served each
// other's results. They now key on the configuration fingerprint.
func TestWorkloadsNotAliasedByConfigName(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite in -short mode")
	}
	ctx := NewContext(smallOpts())
	small := ctx.Baseline // Baseline/s32
	big := uarch.Scaled(uarch.Baseline(), 8)
	big.Name = small.Name // force the historical collision

	rsSmall, err := ctx.Workloads(bg, small)
	if err != nil {
		t.Fatal(err)
	}
	rsBig, err := ctx.Workloads(bg, big)
	if err != nil {
		t.Fatal(err)
	}
	// The geometries differ by 4x, so at least some workloads must see
	// different cache behaviour; aliasing would make every result
	// pointer-identical.
	distinct := false
	for i := range rsSmall {
		if rsSmall[i] != rsBig[i] {
			distinct = true
			break
		}
	}
	if !distinct {
		t.Fatal("two configs sharing a Name were served one cached suite")
	}
	differs := false
	for i := range rsSmall {
		if rsSmall[i].DL1MissRate != rsBig[i].DL1MissRate || rsSmall[i].Cycles != rsBig[i].Cycles {
			differs = true
			break
		}
	}
	if !differs {
		t.Error("4x-scaled geometries produced identical suites (suspicious)")
	}
}

// TestStressmarkNotAliasedByKey: the sm memo must distinguish the same
// search key evaluated on different configurations.
func TestStressmarkNotAliasedByKey(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite in -short mode")
	}
	ctx := NewContext(smallOpts())
	big := uarch.Scaled(uarch.Baseline(), 16)
	big.Name = ctx.Baseline.Name
	a, err := ctx.Stressmark(bg, "baseline", ctx.Baseline, uarch.UniformRates(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.Stressmark(bg, "baseline", big, uarch.UniformRates(1))
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("same search key on two configurations served one cached result")
	}
	if a.Result.Cycles == b.Result.Cycles && a.Result.AVF == b.Result.AVF {
		t.Error("2x-scaled geometries produced identical stressmark results (suspicious)")
	}
}

// TestRunByteIdenticalAcrossCacheStates is the tentpole's bit-identity
// lock: the rendered experiment output must be byte-equal with
// per-simulation caching disabled, with a cold disk tier, and in a
// fresh context warm-from-disk only.
func TestRunByteIdenticalAcrossCacheStates(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite in -short mode")
	}
	dir := t.TempDir()
	render := func(opts Options) string {
		ctx := NewContext(opts)
		out := ""
		for _, name := range []string{"fig3", "fig6", "worstcase"} {
			s, err := ctx.Run(bg, name)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			out += s
		}
		return out
	}

	off := smallOpts()
	off.DisableCache = true
	plain := render(off)

	cold := smallOpts()
	cold.CacheDir = dir
	first := render(cold)
	if first != plain {
		t.Fatal("cache-enabled output differs from cache-disabled output")
	}

	warm := smallOpts()
	warm.CacheDir = dir
	warmCtx := NewContext(warm)
	out := ""
	for _, name := range []string{"fig3", "fig6", "worstcase"} {
		s, err := warmCtx.Run(bg, name)
		if err != nil {
			t.Fatalf("warm %s: %v", name, err)
		}
		out += s
	}
	if out != plain {
		t.Fatal("warm-from-disk output differs from cache-disabled output")
	}
	st := warmCtx.CacheStats()
	if st.DiskHits == 0 {
		t.Errorf("warm run reports no disk hits: %+v", st)
	}
	if st.Simulated != 0 {
		t.Errorf("warm run still simulated %d times", st.Simulated)
	}
}

// TestSharedStoreDeduplicatesAcrossContexts: a store injected into two
// fresh contexts must make the second context's experiments pure memo
// hits — the cross-experiment, cross-process sharing the memo engine
// exists for.
func TestSharedStoreDeduplicatesAcrossContexts(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite in -short mode")
	}
	store := simcache.New(simcache.Options{})
	opts := smallOpts()
	opts.Cache = store
	if _, err := NewContext(opts).Fig3(bg); err != nil {
		t.Fatal(err)
	}
	simulated := store.Stats().Simulated
	if simulated == 0 {
		t.Fatal("first context did not populate the store")
	}
	if _, err := NewContext(opts).Fig3(bg); err != nil {
		t.Fatal(err)
	}
	st := store.Stats()
	if st.Simulated != simulated {
		t.Errorf("second context re-simulated: %d -> %d", simulated, st.Simulated)
	}
	if st.MemHits == 0 {
		t.Error("second context reports no memory hits")
	}
}
