package inject

// Static target pruning (DESIGN.md §12). The pruner intersects sampled
// fault targets with the statically proven dead subset of the bit-cycle
// space, built from two inputs:
//
//   - the liveness summary's occupancy caps and free-list depth bound
//     (pure static facts of the program and core geometry): queue and
//     functional-unit entries at or beyond a cap never hold an
//     occupant, and physical registers below the free-list watermark
//     are never written — faults there are masked at every cycle;
//
//   - the golden run's recorded register-file dead intervals
//     (GoldenInfo.RFDead): cycle ranges during which a physical slot
//     holds a value of a statically dead definition, whose fate watch
//     can only ever resolve masked.
//
// Pruned targets are classified masked analytically, with zero
// replays. The pruner also computes each structure's exact dead
// fraction of the bit-cycle space — integer counting, so warm and cold
// campaigns agree byte-for-byte — which scales the stratum estimator
// (replays sample the live subspace only) and tightens the static ACE
// upper bound to 1 minus the dead fraction.

import (
	"sort"

	"avfstress/internal/isa"
	"avfstress/internal/liveness"
	"avfstress/internal/pipe"
	"avfstress/internal/uarch"
)

// ivl is a half-open cycle interval [start, end).
type ivl struct{ start, end int64 }

type pruner struct {
	// enabled gates the target filter only; the static fractions and
	// bounds are computed (and reported) regardless, so a disabled
	// campaign still quotes the tightened bound while sampling the
	// full space.
	enabled bool

	entryBits [uarch.NumStructures]uint64
	entryCap  [uarch.NumStructures]int64 // first provably empty entry; -1 = none
	rfStatic  []bool                     // per physical slot: never written
	rfIv      [][]ivl                    // per slot: sorted recorded dead intervals

	// staticFrac is the exact dead fraction of each structure's
	// bit-cycle space; prunedBC/totalBC the integer counts behind it.
	staticFrac [uarch.NumStructures]float64
	prunedBC   [uarch.NumStructures]uint64
	totalBC    [uarch.NumStructures]uint64
}

func newPruner(enabled bool, cfg uarch.Config, sum *liveness.Summary, info pipe.GoldenInfo) *pruner {
	pr := &pruner{enabled: enabled}
	core := cfg.Core
	cycles := uint64(info.Cycles)
	for s := uarch.Structure(0); s < uarch.NumStructures; s++ {
		pr.entryCap[s] = -1
		pr.totalBC[s] = uarch.Bits(cfg, s) * cycles
	}
	capped := func(s uarch.Structure, entries, entryBits, cap int) {
		pr.entryBits[s] = uint64(entryBits)
		if cap < entries {
			pr.entryCap[s] = int64(cap)
			pr.prunedBC[s] = uint64(entries-cap) * uint64(entryBits) * cycles
		}
	}
	capped(uarch.IQ, core.IQEntries, core.IQEntryBits, sum.IQCap)
	capped(uarch.LQTag, core.LQEntries, core.LSQEntryBits/2, sum.LQCap)
	capped(uarch.LQData, core.LQEntries, core.LSQEntryBits/2, sum.LQCap)
	capped(uarch.SQTag, core.SQEntries, core.LSQEntryBits/2, sum.SQCap)
	capped(uarch.SQData, core.SQEntries, core.LSQEntryBits/2, sum.SQCap)
	capped(uarch.FU, core.NumALUs*core.ALULatency+core.NumMuls*core.MulLatency,
		core.RegBits, sum.FUCap)

	// Register file: the never-popped free-list bottom (power-on free
	// list holds physical 31..PhysRegs-1 ascending, popped LIFO from
	// the top, so the first FreeRFSlots above the architected range
	// are never reached)...
	pr.entryBits[uarch.RF] = uint64(core.RegBits)
	pr.rfStatic = make([]bool, core.PhysRegs)
	for i := 0; i < sum.FreeRFSlots; i++ {
		pr.rfStatic[isa.NumArchRegs-1+i] = true
	}
	rfBC := uint64(sum.FreeRFSlots) * uint64(core.RegBits) * cycles
	// ...plus the recorded dead occupancy intervals, clipped to the
	// sampled window. Per-slot interval order is chronological by
	// construction (occupancies of one slot are sequential), so the
	// lists are search-ready as recorded.
	pr.rfIv = make([][]ivl, core.PhysRegs)
	wStart, wEnd := info.WindowStart, info.WindowStart+info.Cycles
	for _, di := range info.RFDead {
		start, end := di.Start, di.End
		if end < 0 {
			end = wEnd // open at end of run: dead through the window
		}
		if start < wStart {
			start = wStart
		}
		if end > wEnd {
			end = wEnd
		}
		if start >= end || int(di.Slot) >= core.PhysRegs {
			continue
		}
		pr.rfIv[di.Slot] = append(pr.rfIv[di.Slot], ivl{start, end})
		rfBC += uint64(end-start) * uint64(core.RegBits)
	}
	pr.prunedBC[uarch.RF] = rfBC

	for s := range pr.staticFrac {
		if pr.totalBC[s] > 0 {
			pr.staticFrac[s] = float64(pr.prunedBC[s]) / float64(pr.totalBC[s])
		}
	}
	return pr
}

// frac returns the dead fraction the estimator must correct for: the
// static fraction when pruning is enabled, exactly zero otherwise (a
// disabled campaign samples the full space, so its estimator is the
// legacy one bit-for-bit).
func (pr *pruner) frac(s uarch.Structure) float64 {
	if !pr.enabled {
		return 0
	}
	return pr.staticFrac[s]
}

// bound returns the tightened static ACE upper bound for a structure:
// the all-bits-ACE bound 1.0 minus the statically proven dead
// fraction. Sound by construction: dead cells contribute zero to the
// ACE accounting (never-written slots are skipped by closeReg, dead
// values have empty write→last-read spans, capped entries never hold
// residency), so the dynamic AVF can never exceed it.
func (pr *pruner) bound(s uarch.Structure) float64 {
	return 1 - pr.staticFrac[s]
}

// pruned reports whether a fault target is statically proven masked.
func (pr *pruner) pruned(f pipe.Fault) bool {
	if !pr.enabled {
		return false
	}
	if f.Structure == uarch.RF {
		slot := f.Bit / pr.entryBits[uarch.RF]
		if pr.rfStatic[slot] {
			return true
		}
		ivs := pr.rfIv[slot]
		i := sort.Search(len(ivs), func(i int) bool { return ivs[i].start > f.Cycle }) - 1
		return i >= 0 && f.Cycle < ivs[i].end
	}
	if cap := pr.entryCap[f.Structure]; cap >= 0 {
		return int64(f.Bit/pr.entryBits[f.Structure]) >= cap
	}
	return false
}
