package rootcause

import (
	"strings"
	"testing"

	"avfstress/internal/isa"
	"avfstress/internal/pipe"
	"avfstress/internal/prog"
	"avfstress/internal/uarch"
)

// testProgram builds a program with a fully known def-use structure:
//
//	init0: addq r1 <- zero, #1
//	body0: addq r2 <- r1, #1
//	body1: mulq r3 <- r2, r1
//	body2: stq  r3, (r2)
//	body3: ldq  r4, (r2)
//	body4: br   r4
func testProgram() *prog.Program {
	return &prog.Program{
		Init: []isa.Instr{
			{Op: isa.OpAdd, Dest: 1, Src1: isa.RZero, Imm: 1},
		},
		Body: []isa.Instr{
			{Op: isa.OpAdd, Dest: 2, Src1: 1, Imm: 1},
			{Op: isa.OpMul, Dest: 3, Src1: 2, Src2: 1, RegReg: true},
			{Op: isa.OpStore, Dest: isa.RZero, Src1: 2, Src2: 3, AddrGen: 0},
			{Op: isa.OpLoad, Dest: 4, Src1: 2, AddrGen: 0},
			{Op: isa.OpBranch, Dest: isa.RZero, Src1: 4, BrGen: 0},
		},
	}
}

func div(p *prog.Program, bodyIdx int, slot int8) pipe.Diverge {
	in := &p.Body[bodyIdx]
	return pipe.Diverge{Seq: int64(bodyIdx), PC: prog.PCOf(bodyIdx), Op: in.Op, SrcSlot: slot}
}

func TestAttributeStructureMapping(t *testing.T) {
	p := testProgram()
	cases := []struct {
		name   string
		fault  pipe.Fault
		d      pipe.Diverge
		ok     bool
		wantPC uint64
		wantOp isa.Op
	}{
		// RF slot 0 of mul (reads r2) -> producer body0 add.
		{"rf-slot0", pipe.Fault{Structure: uarch.RF, Bit: 3}, div(p, 1, 0), true, prog.PCOf(0), isa.OpAdd},
		// RF slot 1 of mul (reads r1): no body writer after wrap -> init0.
		{"rf-slot1-init", pipe.Fault{Structure: uarch.RF, Bit: 3}, div(p, 1, 1), true, prog.InitBase, isa.OpAdd},
		// Queue structures attribute the occupant itself.
		{"iq-self", pipe.Fault{Structure: uarch.IQ}, div(p, 1, -1), true, prog.PCOf(1), isa.OpMul},
		{"rob-self", pipe.Fault{Structure: uarch.ROB}, div(p, 3, -1), true, prog.PCOf(3), isa.OpLoad},
		{"fu-self", pipe.Fault{Structure: uarch.FU}, div(p, 1, -1), true, prog.PCOf(1), isa.OpMul},
		{"lqdata-self", pipe.Fault{Structure: uarch.LQData}, div(p, 3, -1), true, prog.PCOf(3), isa.OpLoad},
		// LSQ tag/data halves walk the address/data operand producers.
		{"lqtag-base", pipe.Fault{Structure: uarch.LQTag}, div(p, 3, -1), true, prog.PCOf(0), isa.OpAdd},
		{"sqtag-base", pipe.Fault{Structure: uarch.SQTag}, div(p, 2, -1), true, prog.PCOf(0), isa.OpAdd},
		{"sqdata-data", pipe.Fault{Structure: uarch.SQData}, div(p, 2, -1), true, prog.PCOf(1), isa.OpMul},
		// Memory hierarchy and missing consumers are unattributable.
		{"dl1-none", pipe.Fault{Structure: uarch.DL1}, pipe.Diverge{Seq: -1, SrcSlot: -1}, false, 0, 0},
		{"l2-none", pipe.Fault{Structure: uarch.L2}, div(p, 1, -1), false, 0, 0},
		{"rf-no-slot", pipe.Fault{Structure: uarch.RF}, div(p, 1, -1), false, 0, 0},
	}
	for _, tc := range cases {
		c, ok := Attribute(p, tc.fault, tc.d)
		if ok != tc.ok {
			t.Errorf("%s: ok = %v, want %v", tc.name, ok, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		if c.PC != tc.wantPC || c.Op != tc.wantOp {
			t.Errorf("%s: attributed %05x %v, want %05x %v", tc.name, c.PC, c.Op, tc.wantPC, tc.wantOp)
		}
		if c.Instr == nil {
			t.Errorf("%s: nil Instr", tc.name)
		}
	}
}

func TestAttributeDemandMask(t *testing.T) {
	p := testProgram()
	// body4 branch consumes r4 with full demand: every bit demanded.
	c, ok := Attribute(p, pipe.Fault{Structure: uarch.RF, Bit: 63}, div(p, 4, 0))
	if !ok || !c.Demanded {
		t.Errorf("branch source bit 63: ok=%v demanded=%v, want attributed+demanded", ok, c.Demanded)
	}
	// Queue-structure self-attribution is always demanded.
	c, ok = Attribute(p, pipe.Fault{Structure: uarch.ROB, Bit: 5}, div(p, 1, -1))
	if !ok || !c.Demanded {
		t.Errorf("ROB self-attribution: ok=%v demanded=%v", ok, c.Demanded)
	}
}

func TestAggregateTables(t *testing.T) {
	p := testProgram()
	cfg := uarch.Baseline()
	trials := []Trial{
		{Fault: pipe.Fault{Structure: uarch.RF, Bit: 1}, Diverge: div(p, 1, 0)},                        // -> body0 add
		{Fault: pipe.Fault{Structure: uarch.RF, Bit: 2}, Diverge: div(p, 1, 0)},                        // -> body0 add
		{Fault: pipe.Fault{Structure: uarch.IQ, Bit: 9}, Diverge: div(p, 1, -1)},                       // -> body1 mul
		{Fault: pipe.Fault{Structure: uarch.SQData, Bit: 0}, Diverge: div(p, 2, -1)},                   // -> body1 mul
		{Fault: pipe.Fault{Structure: uarch.DL1, Bit: 7}, Diverge: pipe.Diverge{Seq: -1, SrcSlot: -1}}, // unattributed
		{Fault: pipe.Fault{Structure: uarch.ROB, Bit: 4}, Diverge: div(p, 3, -1), DUE: true},           // -> body3 load, DUE
	}
	sampled := map[uarch.Structure]int{
		uarch.RF: 10, uarch.IQ: 10, uarch.SQData: 10, uarch.DL1: 10, uarch.ROB: 10,
	}
	r := Aggregate(p, cfg, trials, sampled)
	if r.Corrupted != 6 || r.Attributed != 5 || r.Unattributed != 1 {
		t.Fatalf("counts: corrupted=%d attributed=%d unattributed=%d", r.Corrupted, r.Attributed, r.Unattributed)
	}
	if len(r.Instrs) != 3 {
		t.Fatalf("instr rows = %d, want 3:\n%s", len(r.Instrs), r.String())
	}
	// Ranked by attributed count desc, PC asc on ties: add(2) first, then
	// mul(2) — same count, higher PC — then load(1).
	if r.Instrs[0].PC != prog.PCOf(0) || r.Instrs[0].SDC != 2 {
		t.Errorf("row 0: pc=%05x sdc=%d, want body0 sdc=2", r.Instrs[0].PC, r.Instrs[0].SDC)
	}
	if r.Instrs[1].PC != prog.PCOf(1) || r.Instrs[1].SDC != 2 {
		t.Errorf("row 1: pc=%05x sdc=%d, want body1 sdc=2", r.Instrs[1].PC, r.Instrs[1].SDC)
	}
	if r.Instrs[2].PC != prog.PCOf(3) || r.Instrs[2].DUE != 1 || r.Instrs[2].SDC != 0 {
		t.Errorf("row 2: pc=%05x sdc=%d due=%d, want body3 due=1", r.Instrs[2].PC, r.Instrs[2].SDC, r.Instrs[2].DUE)
	}
	// Shares are normalised over the corrupted mass, so rows sum to the
	// attributed fraction of the mass (strictly below 1: one DL1 trial is
	// unattributed).
	var sum float64
	for _, row := range r.Instrs {
		sum += row.Share
		if row.Lo < 0 || row.Hi > 1 || row.Lo > row.Hi {
			t.Errorf("pc %05x: bad interval [%v, %v]", row.PC, row.Lo, row.Hi)
		}
	}
	if sum <= 0 || sum >= 1 {
		t.Errorf("attributed share sum = %v, want in (0, 1)", sum)
	}
	// SDCDensity counts attributed SDC rows over all corrupted trials.
	if got, want := r.SDCDensity(), 4.0/6.0; got != want {
		t.Errorf("SDCDensity = %v, want %v", got, want)
	}
	out := r.String()
	for _, frag := range []string{"Root-cause instructions", "Root-cause instruction classes",
		"6 corrupted, 5 attributed, 1 unattributed", "mulq"} {
		if !strings.Contains(out, frag) {
			t.Errorf("String() missing %q:\n%s", frag, out)
		}
	}
}

// TestAggregateDeterministic: identical inputs must render byte-identical
// tables regardless of map iteration order.
func TestAggregateDeterministic(t *testing.T) {
	p := testProgram()
	cfg := uarch.Baseline()
	var trials []Trial
	for i := 0; i < 40; i++ {
		s := uarch.CoreStructures[i%len(uarch.CoreStructures)]
		slot := int8(-1)
		if s == uarch.RF {
			slot = int8(i % 2)
		}
		trials = append(trials, Trial{
			Fault:   pipe.Fault{Structure: s, Bit: uint64(i)},
			Diverge: div(p, i%len(p.Body), slot),
			DUE:     i%5 == 0,
		})
	}
	sampled := map[uarch.Structure]int{}
	for _, s := range uarch.CoreStructures {
		sampled[s] = 8
	}
	want := Aggregate(p, cfg, trials, sampled).String()
	for i := 0; i < 10; i++ {
		if got := Aggregate(p, cfg, trials, sampled).String(); got != want {
			t.Fatalf("aggregation nondeterministic on round %d:\n--- want\n%s\n--- got\n%s", i, want, got)
		}
	}
}
