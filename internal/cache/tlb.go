package cache

import (
	"fmt"
	"math/bits"
)

// TLBConfig describes a fully associative data TLB.
type TLBConfig struct {
	Name      string
	Entries   int
	PageBytes int
	// EntryBits is the SER-relevant width of one entry (VPN tag + PPN +
	// permission bits). The baseline uses 80.
	EntryBits int
	// WalkLatency is the page-walk penalty on a miss, in cycles.
	WalkLatency int
	// HammingCAM enables the Biswas et al. refinement for CAM tag bits:
	// an entry's tag is only vulnerable while some other resident entry
	// sits at Hamming distance one from it.
	HammingCAM bool
}

// Fingerprint returns a canonical description of every field for
// internal/simcache keys.
func (c TLBConfig) Fingerprint() string {
	return fmt.Sprintf("cache.TLBConfig%+v", c)
}

// Validate reports configuration errors.
func (c TLBConfig) Validate() error {
	switch {
	case c.Entries <= 0:
		return fmt.Errorf("tlb %s: non-positive entry count %d", c.Name, c.Entries)
	case c.PageBytes <= 0 || c.PageBytes&(c.PageBytes-1) != 0:
		return fmt.Errorf("tlb %s: page size %d not a positive power of two", c.Name, c.PageBytes)
	case c.EntryBits <= 0:
		return fmt.Errorf("tlb %s: non-positive entry width %d", c.Name, c.EntryBits)
	}
	return nil
}

type tlbEntry struct {
	vpn      uint64
	valid    bool
	fillTime int64
	lastRead int64
	lru      int64
	// hd1Cycles accumulates cycles during which this entry had at least
	// one Hamming-distance-1 neighbour (only maintained with HammingCAM).
	hd1Cycles uint64
	hd1Since  int64
	hd1Count  int
}

// TLB is a fully associative, LRU translation buffer with lifetime ACE
// accounting: an entry is ACE from fill to its last read (read→evict is
// un-ACE, per the paper).
//
// Residency is indexed by a VPN map so the hit path — the overwhelmingly
// common case — is a single lookup instead of a scan of all entries;
// LRU victim selection scans only on the (rare) miss, and the HD-1
// exposure bookkeeping is maintained incrementally per fill (O(entries)
// instead of the previous O(entries²) recompute).
type TLB struct {
	cfg      TLBConfig
	entries  []tlbEntry
	byVPN    map[uint64]int32 // valid entries only
	pageBits uint
	small    bool // few entries: hit path scans instead of using the map

	// One-entry memo for Access: consecutive data accesses overwhelmingly
	// hit the same page, so the common case skips even the map lookup.
	// Fills keep it coherent (the filled entry becomes the memo);
	// Finalize and Reset clear it.
	memoVPN   uint64
	memoIdx   int32
	memoValid bool

	aceEntryCycles uint64 // entry-cycles (fill→last-read spans)
	hd1EntryCycles uint64
	windowStart    int64

	// watches holds the armed fault-injection fate watches (DESIGN.md
	// §9); nil on every normal simulation. Batched campaign replays arm
	// one watch per co-replayed trial.
	watches []*TLBWatch

	Accesses uint64
	Misses   uint64
}

// TLBWatch observes the fate of one TLB entry slot for the
// fault-injection engine: the entry residency covering the watched
// timestamp ends ACE iff its last read happened after that timestamp
// (fill→last-read is the entry's ACE span; read→evict is un-ACE).
// Watches are pure observers and never perturb TLB state.
type TLBWatch struct {
	idx      int
	cycle    int64
	resolved bool
	ace      bool
}

// Outcome reports the watch's state; unresolved after Finalize means the
// slot held no translation live at the watched timestamp (masked).
func (w *TLBWatch) Outcome() (resolved, ace bool) { return w.resolved, w.ace }

// NewTLB builds a TLB; the configuration must validate.
func NewTLB(cfg TLBConfig) (*TLB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &TLB{
		cfg:     cfg,
		entries: make([]tlbEntry, cfg.Entries),
		byVPN:   make(map[uint64]int32, cfg.Entries),
		small:   cfg.Entries <= 64,
	}
	for p := cfg.PageBytes; p > 1; p >>= 1 {
		t.pageBits++
	}
	return t, nil
}

// MustNewTLB is NewTLB for known-good configurations.
func MustNewTLB(cfg TLBConfig) *TLB {
	t, err := NewTLB(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the TLB configuration.
func (t *TLB) Config() TLBConfig { return t.cfg }

// VPN returns the virtual page number of addr.
func (t *TLB) VPN(addr uint64) uint64 { return addr >> t.pageBits }

// Probe reports whether addr's page is resident, without state changes.
func (t *TLB) Probe(addr uint64) bool {
	_, ok := t.byVPN[t.VPN(addr)]
	return ok
}

// Access translates addr at time now, returning the added latency (0 on
// a hit, WalkLatency on a miss, which also fills the entry).
func (t *TLB) Access(now int64, addr uint64) (latency int) {
	vpn := addr >> t.pageBits
	t.Accesses++
	if t.memoValid && vpn == t.memoVPN {
		e := &t.entries[t.memoIdx]
		e.lastRead = now
		e.lru = now
		return 0
	}
	if t.small {
		// Few entries: a scan beats the map lookup (the map is still
		// maintained for Probe and as the large-configuration path).
		for i := range t.entries {
			e := &t.entries[i]
			if e.valid && e.vpn == vpn {
				e.lastRead = now
				e.lru = now
				t.memoVPN, t.memoIdx, t.memoValid = vpn, int32(i), true
				return 0
			}
		}
	} else if i, ok := t.byVPN[vpn]; ok {
		e := &t.entries[i]
		e.lastRead = now
		e.lru = now
		t.memoVPN, t.memoIdx, t.memoValid = vpn, i, true
		return 0
	}
	t.Misses++
	// Evict LRU (or take an invalid slot).
	victim := &t.entries[0]
	victimIdx := int32(0)
	for i := 1; i < len(t.entries); i++ {
		e := &t.entries[i]
		if !e.valid {
			victim, victimIdx = e, int32(i)
			break
		}
		if victim.valid && e.lru < victim.lru {
			victim, victimIdx = e, int32(i)
		}
	}
	oldVPN, hadOld := victim.vpn, victim.valid
	if victim.valid {
		t.closeEntry(victim, now)
	}
	victim.valid = true
	victim.vpn = vpn
	victim.fillTime = now
	victim.lastRead = now // the filling access reads the translation
	victim.lru = now
	t.byVPN[vpn] = victimIdx
	t.memoVPN, t.memoIdx, t.memoValid = vpn, victimIdx, true
	if t.cfg.HammingCAM {
		t.updateHD1(now, victimIdx, vpn, oldVPN, hadOld)
	}
	return t.cfg.WalkLatency
}

func (t *TLB) closeEntry(e *tlbEntry, now int64) {
	for _, w := range t.watches {
		if !w.resolved && e == &t.entries[w.idx] &&
			w.cycle >= e.fillTime && w.cycle < now {
			w.resolved = true
			w.ace = e.lastRead > w.cycle
		}
	}
	t0 := e.fillTime
	if t0 < t.windowStart {
		t0 = t.windowStart
	}
	end := e.lastRead
	if end > t0 {
		t.aceEntryCycles += uint64(end - t0)
	}
	if t.cfg.HammingCAM {
		t.closeHD1(e, now)
	}
	e.valid = false
	delete(t.byVPN, e.vpn)
}

// closeHD1 folds the entry's open HD-1 exposure interval into its
// counter and then into the TLB-wide total.
func (t *TLB) closeHD1(e *tlbEntry, now int64) {
	if e.hd1Count > 0 && now > e.hd1Since {
		e.hd1Cycles += uint64(now - e.hd1Since)
	}
	t.hd1EntryCycles += e.hd1Cycles
	e.hd1Cycles = 0
	e.hd1Count = 0
}

// updateHD1 maintains, after a fill, which entries have a resident
// Hamming-distance-1 neighbour. Residency changed only by the departure
// of oldVPN (when hadOld) and the arrival of newVPN, so each surviving
// entry's neighbour count is adjusted by at most ±1 — O(entries) per
// fill instead of the previous full O(entries²) recompute — while
// producing exactly the same exposure intervals.
func (t *TLB) updateHD1(now int64, newIdx int32, newVPN, oldVPN uint64, hadOld bool) {
	newCount := 0
	for i := range t.entries {
		e := &t.entries[i]
		if !e.valid || int32(i) == newIdx {
			continue
		}
		d := e.hd1Count
		if hadOld && bits.OnesCount64(e.vpn^oldVPN) == 1 {
			d--
		}
		if bits.OnesCount64(e.vpn^newVPN) == 1 {
			d++
			newCount++
		}
		if d != e.hd1Count {
			if d > 0 && e.hd1Count == 0 {
				e.hd1Since = now
			}
			if d == 0 && e.hd1Count > 0 && now > e.hd1Since {
				e.hd1Cycles += uint64(now - e.hd1Since)
			}
			e.hd1Count = d
		}
	}
	ne := &t.entries[newIdx]
	if newCount > 0 {
		ne.hd1Since = now
	}
	ne.hd1Count = newCount
}

// AddWatch arms a fault-injection fate watch on entry slot idx with the
// given injection timestamp and returns its handle. Any number of
// watches may be armed at once; each resolves independently. Arm before
// the replay starts; Reset and ClearWatches disarm all watches. An entry
// under HammingCAM resolves by the plain lifetime rule (the HD-1 tag
// refinement is an AVF derating, not a fate change; internal/inject
// documents the resulting conservatism).
func (t *TLB) AddWatch(idx int, cycle int64) (*TLBWatch, error) {
	if idx < 0 || idx >= len(t.entries) {
		return nil, fmt.Errorf("tlb %s: watch entry %d out of range (%d entries)", t.cfg.Name, idx, len(t.entries))
	}
	w := &TLBWatch{idx: idx, cycle: cycle}
	t.watches = append(t.watches, w)
	return w, nil
}

// ClearWatches disarms all fate watches.
func (t *TLB) ClearWatches() { t.watches = nil }

// ArmWatch arms a single fate watch, replacing any previously armed
// ones. It is the one-trial-per-replay convenience over AddWatch.
func (t *TLB) ArmWatch(idx int, cycle int64) error {
	t.watches = nil
	_, err := t.AddWatch(idx, cycle)
	return err
}

// WatchOutcome reports the state of the watch armed by ArmWatch (the
// first armed watch); an unresolved watch after Finalize means the slot
// held no translation live at the watched timestamp (masked).
func (t *TLB) WatchOutcome() (resolved, ace bool) {
	if len(t.watches) == 0 {
		return false, false
	}
	return t.watches[0].Outcome()
}

// ClearWatch disarms all fate watches (kept as the single-watch
// counterpart of ArmWatch).
func (t *TLB) ClearWatch() { t.watches = nil }

// Finalize closes all resident entries at time now. Call once at the end
// of a measurement.
func (t *TLB) Finalize(now int64) {
	t.memoValid = false
	for i := range t.entries {
		if t.entries[i].valid {
			t.closeEntry(&t.entries[i], now)
		}
	}
}

// ResetACE restarts ACE measurement at now, keeping contents.
func (t *TLB) ResetACE(now int64) {
	t.aceEntryCycles, t.hd1EntryCycles = 0, 0
	t.windowStart = now
	for i := range t.entries {
		e := &t.entries[i]
		if !e.valid {
			continue
		}
		if e.fillTime < now {
			e.fillTime = now
		}
		if e.lastRead < now {
			e.lastRead = now
		}
		e.hd1Cycles = 0
		if e.hd1Count > 0 {
			e.hd1Since = now
		}
	}
}

// ResetStats clears access counters.
func (t *TLB) ResetStats() { t.Accesses, t.Misses = 0, 0 }

// Reset returns the TLB to its power-on state (all entries invalid, all
// accumulators zeroed) without reallocating the entry array.
func (t *TLB) Reset() {
	for i := range t.entries {
		t.entries[i] = tlbEntry{}
	}
	clear(t.byVPN)
	t.memoValid = false
	t.aceEntryCycles, t.hd1EntryCycles = 0, 0
	t.windowStart = 0
	t.watches = nil
	t.ResetStats()
}

// AVF returns the TLB AVF over a window of cycles cycles. With
// HammingCAM enabled, the tag share of each entry is scaled by its HD-1
// exposure.
func (t *TLB) AVF(cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	denom := float64(t.cfg.Entries) * float64(cycles)
	plain := float64(t.aceEntryCycles) / denom
	if !t.cfg.HammingCAM {
		return plain
	}
	// Split the entry into tag (VPN) and payload bits; payload uses the
	// lifetime result, tag additionally requires HD-1 exposure.
	tagBits := float64(52) // 64 - 13 (8kB pages) + asn bits, rounded
	entry := float64(t.cfg.EntryBits)
	if tagBits > entry {
		tagBits = entry / 2
	}
	payload := entry - tagBits
	hd1 := float64(t.hd1EntryCycles) / denom
	if hd1 > plain {
		hd1 = plain
	}
	return (plain*payload + hd1*tagBits) / entry
}

// Bits returns the total SER-relevant bit count.
func (t *TLB) Bits() uint64 { return uint64(t.cfg.Entries) * uint64(t.cfg.EntryBits) }

// MissRate returns misses/accesses.
func (t *TLB) MissRate() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.Misses) / float64(t.Accesses)
}
