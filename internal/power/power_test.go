package power

import (
	"testing"

	"avfstress/internal/avf"
)

func TestEnergyPerCycleMath(t *testing.T) {
	w := Weights{Fetch: 1, ALU: 2, Mul: 3, Mem: 4, Branch: 5,
		DL1Access: 6, L2Access: 7, Mispredict: 8, Idle: 9}
	a := Activity{
		Cycles: 10, Fetched: 10, IssuedALU: 5, IssuedMul: 2, IssuedMem: 3,
		IssuedBr: 1, DL1Accesses: 3, L2Accesses: 1, Mispredicts: 1,
	}
	// (10 + 10 + 6 + 12 + 5 + 18 + 7 + 8)/10 + 9 = 76/10 + 9
	want := 7.6 + 9
	if got := EnergyPerCycle(a, w); got != want {
		t.Errorf("energy/cycle = %f, want %f", got, want)
	}
}

func TestZeroCycles(t *testing.T) {
	if EnergyPerCycle(Activity{}, DefaultWeights()) != 0 {
		t.Error("zero-cycle activity should cost nothing")
	}
}

func TestIdleFloor(t *testing.T) {
	a := Activity{Cycles: 100}
	if got := EnergyPerCycle(a, DefaultWeights()); got != DefaultWeights().Idle {
		t.Errorf("idle machine burns %f, want the idle floor %f", got, DefaultWeights().Idle)
	}
}

func TestHigherActivityCostsMore(t *testing.T) {
	lo := Activity{Cycles: 100, IssuedALU: 50}
	hi := Activity{Cycles: 100, IssuedALU: 400, IssuedMul: 100, DL1Accesses: 200}
	w := DefaultWeights()
	if EnergyPerCycle(hi, w) <= EnergyPerCycle(lo, w) {
		t.Error("more activity must cost more energy per cycle")
	}
}

func TestFromResult(t *testing.T) {
	r := &avf.Result{Cycles: 42}
	r.Activity = avf.ActivityCounts{
		Fetched: 1, IssuedALU: 2, IssuedMul: 3, IssuedMem: 4, IssuedBr: 5,
		DL1Accesses: 6, L2Accesses: 7, Mispredicts: 8,
	}
	a := FromResult(r)
	if a.Cycles != 42 || a.Fetched != 1 || a.IssuedALU != 2 || a.IssuedMul != 3 ||
		a.IssuedMem != 4 || a.IssuedBr != 5 || a.DL1Accesses != 6 ||
		a.L2Accesses != 7 || a.Mispredicts != 8 {
		t.Errorf("activity lost in translation: %+v", a)
	}
	if Of(r) <= 0 {
		t.Error("Of() must be positive for non-trivial activity")
	}
}

// TestMultiplierDominatesALU: the weight ordering encodes that a
// multiplier issue costs more than an ALU issue, the physical basis of
// the §IV-B argument.
func TestMultiplierDominatesALU(t *testing.T) {
	w := DefaultWeights()
	if w.Mul <= w.ALU {
		t.Error("multiplier must out-cost the ALU")
	}
	if w.L2Access <= w.DL1Access {
		t.Error("L2 access must out-cost DL1")
	}
}
