package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "T", Headers: []string{"name", "value"}}
	tb.AddRow("alpha", 0.5)
	tb.AddRow("b", 42)
	s := tb.String()
	for _, want := range []string{"T\n", "name", "alpha", "0.500", "42", "----"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
	// Columns align: every row has the header's width.
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("table has %d lines, want 5", len(lines))
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Headers: []string{"a", "b"}}
	tb.AddRow(`x,"y`, 1)
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,""y"`) {
		t.Errorf("CSV escaping wrong:\n%s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("CSV header wrong:\n%s", csv)
	}
}

func TestBarChart(t *testing.T) {
	c := &BarChart{Title: "chart", Max: 1, Width: 10}
	c.Add("full", 1.0)
	c.Add("half", 0.5)
	c.Add("over", 1.5) // clamps to full width
	c.Add("neg", -0.1) // clamps to zero
	s := c.String()
	if !strings.Contains(s, "chart") {
		t.Error("title missing")
	}
	if !strings.Contains(s, strings.Repeat("█", 10)) {
		t.Error("full-scale bar missing")
	}
	if strings.Contains(s, strings.Repeat("█", 11)) {
		t.Error("over-scale bar not clamped")
	}
	if !strings.Contains(s, "0.500 |█████\n") {
		t.Errorf("half bar wrong:\n%s", s)
	}
}

func TestBarChartAutoScale(t *testing.T) {
	c := &BarChart{Width: 10}
	c.Add("a", 2)
	c.Add("b", 4)
	s := c.String()
	if !strings.Contains(s, strings.Repeat("█", 10)) {
		t.Error("auto-scaled max bar should be full width")
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Error("empty input should render empty")
	}
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Errorf("sparkline length %d, want 4", len([]rune(s)))
	}
	if []rune(s)[0] != '▁' || []rune(s)[3] != '█' {
		t.Errorf("sparkline extremes wrong: %q", s)
	}
	flat := Sparkline([]float64{5, 5, 5})
	if flat != "▁▁▁" {
		t.Errorf("flat series renders as %q", flat)
	}
}
