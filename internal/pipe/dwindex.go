package pipe

// dwIndex maps doubleword addresses of in-flight correct-path stores to
// their age-ordered sequence numbers. It replaces a Go map on the
// dispatch/commit/disambiguation hot path with a small open-addressing
// table: the live key count is bounded by the store-queue size, so a
// fixed low-load-factor table with tombstone deletion (rebuilt when
// tombstones accumulate) makes every operation a couple of cache probes.
type dwIndex struct {
	keys []uint64  // dw value, or dwEmpty / dwTombstone
	vals [][]int64 // age-ordered store seqs for the key
	free [][]int64 // recycled value slices
	// spareKeys/spareVals are the retained scratch arrays rebuild swaps
	// into, so periodic tombstone compaction allocates nothing.
	spareKeys []uint64
	spareVals [][]int64
	mask      uint64
	live      int // occupied slots
	used      int // occupied + tombstones
}

const (
	dwEmpty     = ^uint64(0)     // no key ever stored here
	dwTombstone = ^uint64(0) - 1 // deleted; probing continues past it
)

// initDW sizes the table for at most maxLive simultaneous keys.
func (d *dwIndex) initDW(maxLive int) {
	size := 64
	for size < 4*maxLive {
		size <<= 1
	}
	d.keys = make([]uint64, size)
	d.vals = make([][]int64, size)
	d.spareKeys = make([]uint64, size)
	d.spareVals = make([][]int64, size)
	d.mask = uint64(size - 1)
	d.clearDW()
}

func (d *dwIndex) clearDW() {
	for i := range d.keys {
		d.keys[i] = dwEmpty
		if v := d.vals[i]; v != nil {
			d.free = append(d.free, v[:0])
			d.vals[i] = nil
		}
	}
	d.live, d.used = 0, 0
}

func (d *dwIndex) slot(dw uint64) uint64 {
	return (dw * 0x9E3779B97F4A7C15) >> 32 & d.mask
}

// lookup returns the seq list for dw (nil if absent).
func (d *dwIndex) lookup(dw uint64) []int64 {
	for i := d.slot(dw); ; i = (i + 1) & d.mask {
		switch d.keys[i] {
		case dw:
			return d.vals[i]
		case dwEmpty:
			return nil
		}
	}
}

// push appends seq to dw's list (seqs arrive in increasing order).
func (d *dwIndex) push(dw uint64, seq int64) {
	first := -1
	for i := d.slot(dw); ; i = (i + 1) & d.mask {
		switch d.keys[i] {
		case dw:
			d.vals[i] = append(d.vals[i], seq)
			return
		case dwTombstone:
			if first < 0 {
				first = int(i)
			}
		case dwEmpty:
			at := int(i)
			if first >= 0 {
				at = first
			} else {
				d.used++
			}
			d.keys[at] = dw
			v := d.vals[at]
			if v == nil && len(d.free) > 0 {
				v = d.free[len(d.free)-1][:0]
				d.free = d.free[:len(d.free)-1]
			}
			d.vals[at] = append(v, seq)
			d.live++
			if d.used > len(d.keys)/2 {
				d.rebuild()
			}
			return
		}
	}
}

// drop removes one seq from dw's list: the oldest at commit, the
// youngest at flush. The key is tombstoned when its list empties.
func (d *dwIndex) drop(dw uint64, youngest bool) {
	for i := d.slot(dw); ; i = (i + 1) & d.mask {
		switch d.keys[i] {
		case dw:
			l := d.vals[i]
			if youngest {
				l = l[:len(l)-1]
			} else {
				copy(l, l[1:])
				l = l[:len(l)-1]
			}
			d.vals[i] = l
			if len(l) == 0 {
				d.keys[i] = dwTombstone
				d.free = append(d.free, l)
				d.vals[i] = nil
				d.live--
			}
			return
		case dwEmpty:
			return // absent; nothing to drop (callers only drop present keys)
		}
	}
}

// rebuild rehashes the live entries into the retained scratch arrays,
// clearing tombstones without allocating.
func (d *dwIndex) rebuild() {
	keys, vals := d.keys, d.vals
	d.keys, d.spareKeys = d.spareKeys, keys
	d.vals, d.spareVals = d.spareVals, vals
	for i := range d.keys {
		d.keys[i] = dwEmpty
		d.vals[i] = nil
	}
	d.live, d.used = 0, 0
	for i, k := range keys {
		if k != dwEmpty && k != dwTombstone {
			for j := d.slot(k); ; j = (j + 1) & d.mask {
				if d.keys[j] == dwEmpty {
					d.keys[j] = k
					d.vals[j] = vals[i]
					d.live++
					d.used++
					break
				}
			}
		}
	}
}
