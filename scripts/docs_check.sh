#!/bin/sh
# docs_check.sh — the docs job (make docs-check, CI):
#
#   1. gofmt -l must be empty (doc comments are code too);
#   2. go vet ./... must pass;
#   3. every example must build;
#   4. intra-repo paths referenced from README.md and DESIGN.md must
#      exist — renaming a package or deleting a file without sweeping
#      the docs is exactly how DESIGN sections go stale;
#   5. the reverse: every internal/ package must be referenced from
#      README.md or DESIGN.md, so a new subsystem (internal/liveness
#      being the latest) cannot land undocumented.
set -eu
cd "$(dirname "$0")/.."
fail=0

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "docs-check: gofmt needed on:"
	echo "$fmt"
	fail=1
fi

go vet ./...

go build ./examples/...
echo "docs-check: examples build"

# Collect referenced repo paths (internal/..., cmd/..., examples/...,
# scripts/... and *.md names), strip trailing punctuation, and verify
# each exists.
refs=$(grep -ohE '\b(internal|cmd|examples|scripts)/[A-Za-z0-9_./-]+|\b[A-Za-z0-9_-]+\.md\b' \
	README.md DESIGN.md | sed 's/[).,:]*$//' | sort -u)
for r in $refs; do
	if [ ! -e "$r" ]; then
		echo "docs-check: dead reference in README/DESIGN: $r"
		fail=1
	fi
done

for d in internal/*/; do
	pkg=${d%/}
	if ! grep -q "$pkg" README.md DESIGN.md; then
		echo "docs-check: package $pkg not referenced from README/DESIGN"
		fail=1
	fi
done

if [ "$fail" -eq 0 ]; then
	echo "docs-check OK"
fi
exit "$fail"
