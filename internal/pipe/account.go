package pipe

import (
	"avfstress/internal/avf"
	"avfstress/internal/isa"
	"avfstress/internal/prog"
	"avfstress/internal/uarch"
)

// accounting accumulates ACE residency per structure, in entry-cycles
// (FU in stage-cycles, RF in register-cycles). Intervals are clipped at
// the measurement-window start so warmup contributes nothing.
type accounting struct {
	measuring   bool
	windowStart int64
	warmupLeft  int64
	warmupDone  int64

	committed    int64
	aceCommitted int64
	loads        int64
	stores       int64
	branches     int64
	longArith    int64

	fetched          int64
	wrongPathFetched int64
	branchesFetched  int64
	mispredicts      int64
	flushed          int64

	// Activity counters for the power proxy (issue-stage events,
	// including wrong-path work: squashed instructions burn energy even
	// though they are un-ACE — the §IV-B asymmetry between power viruses
	// and AVF stressmarks).
	issuedALU int64
	issuedMul int64
	issuedMem int64
	issuedBr  int64

	iqAce     int64
	robAce    int64
	lqTagAce  int64
	lqDataAce int64
	sqTagAce  int64
	sqDataAce int64
	fuStage   int64
	rfRegCyc  int64

	occROB, occIQ, occLQ, occSQ int64
}

// iv returns the measured length of [start, end), clipped at the window
// start.
func (a *accounting) iv(start, end int64) int64 {
	if start < a.windowStart {
		start = a.windowStart
	}
	if end <= start {
		return 0
	}
	return end - start
}

// tickN accumulates occupancy diagnostics for n cycles of unchanged
// state (n > 1 when the run loop fast-forwards through a stall).
func (a *accounting) tickN(pl *Pipeline, n int64) {
	a.occROB += n * int64(pl.robCount())
	a.occIQ += n * int64(pl.iqUsed)
	a.occLQ += n * int64(pl.lqUsed)
	a.occSQ += n * int64(pl.sqUsed)
}

// onCommit folds a retiring instruction's ACE intervals into the
// accumulators.
func (a *accounting) onCommit(pl *Pipeline, u *uop) {
	if !a.measuring || !u.ace {
		return
	}
	now := pl.now
	a.robAce += a.iv(u.dispatchCycle, now)
	op := u.op()
	if op != isa.OpNop {
		a.iqAce += a.iv(u.dispatchCycle, u.issueCycle)
	}
	switch op {
	case isa.OpLoad:
		a.lqTagAce += a.iv(u.issueCycle, now)
		a.lqDataAce += a.iv(u.dataReady, now)
	case isa.OpStore:
		a.sqTagAce += a.iv(u.doneCycle, now)
		a.sqDataAce += a.iv(u.doneCycle, now)
	case isa.OpAdd, isa.OpMul:
		a.fuStage += a.iv(u.issueCycle, u.issueCycle+u.execLatency)
	}
}

// closeReg folds a physical register's production→last-consumption
// interval into the RF accumulator.
func (a *accounting) closeReg(pl *Pipeline, r *physReg) {
	if !a.measuring || !r.written || !r.aceValue {
		return
	}
	a.rfRegCyc += a.iv(r.writeTime, r.lastRead)
}

// startMeasurement ends warmup: all ACE and statistics counters restart
// at the current cycle while microarchitectural state is preserved.
func (pl *Pipeline) startMeasurement() {
	pl.acct.measuring = true
	pl.acct.windowStart = pl.now
	pl.acct.fetched = 0
	pl.acct.wrongPathFetched = 0
	pl.acct.branchesFetched = 0
	pl.acct.mispredicts = 0
	pl.acct.flushed = 0
	pl.mem.ResetACE(pl.now)
	pl.mem.ResetStats()
	pl.bp.ResetStats()
}

// finalize closes every open interval and assembles the Result.
func (pl *Pipeline) finalize() *avf.Result {
	a := &pl.acct
	now := pl.now

	// In-flight instructions contribute their partial intervals.
	for seq := pl.head; seq < pl.tail; seq++ {
		u := pl.at(seq)
		if !u.ace {
			continue
		}
		a.robAce += a.iv(u.dispatchCycle, now)
		op := u.op()
		if op != isa.OpNop {
			if u.state == sWaiting {
				a.iqAce += a.iv(u.dispatchCycle, now)
			} else {
				a.iqAce += a.iv(u.dispatchCycle, u.issueCycle)
			}
		}
		switch op {
		case isa.OpLoad:
			if u.state != sWaiting {
				a.lqTagAce += a.iv(u.issueCycle, now)
				if u.dataReady <= now {
					a.lqDataAce += a.iv(u.dataReady, now)
				}
			}
		case isa.OpStore:
			if u.state == sDone {
				a.sqTagAce += a.iv(u.doneCycle, now)
				a.sqDataAce += a.iv(u.doneCycle, now)
			}
		case isa.OpAdd, isa.OpMul:
			if u.state != sWaiting {
				end := u.issueCycle + u.execLatency
				if end > now {
					end = now
				}
				a.fuStage += a.iv(u.issueCycle, end)
			}
		}
	}
	// Live register values.
	for i := range pl.regs {
		a.closeReg(pl, &pl.regs[i])
	}
	pl.mem.Finalize(now)

	cycles := now - a.windowStart
	if cycles <= 0 {
		cycles = 1
	}
	core := pl.core
	fc := float64(cycles)
	res := &avf.Result{
		Config:       pl.cfg.Name,
		Workload:     pl.p.Name,
		Cycles:       cycles,
		Instructions: a.committed,
		IPC:          float64(a.committed) / fc,
	}
	res.AVF[uarch.IQ] = clamp01(float64(a.iqAce) / (float64(core.IQEntries) * fc))
	res.AVF[uarch.ROB] = clamp01(float64(a.robAce) / (float64(core.ROBEntries) * fc))
	res.AVF[uarch.LQTag] = clamp01(float64(a.lqTagAce) / (float64(core.LQEntries) * fc))
	res.AVF[uarch.LQData] = clamp01(float64(a.lqDataAce) / (float64(core.LQEntries) * fc))
	res.AVF[uarch.SQTag] = clamp01(float64(a.sqTagAce) / (float64(core.SQEntries) * fc))
	res.AVF[uarch.SQData] = clamp01(float64(a.sqDataAce) / (float64(core.SQEntries) * fc))
	totalStages := float64(core.NumALUs*core.ALULatency + core.NumMuls*core.MulLatency)
	res.AVF[uarch.FU] = clamp01(float64(a.fuStage) / (totalStages * fc))
	res.AVF[uarch.RF] = clamp01(float64(a.rfRegCyc) / (float64(core.PhysRegs) * fc))
	res.AVF[uarch.DL1] = clamp01(pl.mem.DL1.AVF(cycles))
	res.AVF[uarch.DTLB] = clamp01(pl.mem.DTLB.AVF(cycles))
	res.AVF[uarch.L2] = clamp01(pl.mem.L2.AVF(cycles))

	res.MispredictRate = pl.bp.MispredictRate()
	res.DL1MissRate = pl.mem.DL1.MissRate()
	// The reported L2 miss rate has always been misses over *all* L2
	// traffic, including DL1 writeback-apply accesses; the cache now
	// counts those separately (Cache.WritebackAccesses), so the
	// all-traffic ratio is requested explicitly to keep the result
	// bit-identical to the golden snapshots.
	res.L2MissRate = pl.mem.L2.TrafficMissRate()
	res.DTLBMissRate = pl.mem.DTLB.MissRate()
	res.OccupancyROB = float64(a.occROB) / (float64(core.ROBEntries) * fc)
	res.OccupancyIQ = float64(a.occIQ) / (float64(core.IQEntries) * fc)
	res.OccupancyLQ = float64(a.occLQ) / (float64(core.LQEntries) * fc)
	res.OccupancySQ = float64(a.occSQ) / (float64(core.SQEntries) * fc)
	if a.fetched > 0 {
		res.WrongPathFrac = float64(a.wrongPathFetched) / float64(a.fetched)
	}
	res.Activity = avf.ActivityCounts{
		Fetched:     a.fetched,
		IssuedALU:   a.issuedALU,
		IssuedMul:   a.issuedMul,
		IssuedMem:   a.issuedMem,
		IssuedBr:    a.issuedBr,
		DL1Accesses: int64(pl.mem.DL1.Accesses),
		L2Accesses:  int64(pl.mem.L2.Accesses + pl.mem.L2.WritebackAccesses),
		Mispredicts: a.mispredicts,
	}
	if a.committed > 0 {
		res.LoadFrac = float64(a.loads) / float64(a.committed)
		res.StoreFrac = float64(a.stores) / float64(a.committed)
		res.BranchFrac = float64(a.branches) / float64(a.committed)
		res.LongArithFrac = float64(a.longArith) / float64(a.committed)
		res.ACEInstrFrac = float64(a.aceCommitted) / float64(a.committed)
	}
	return res
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Simulate is the package's one-call entry point: build a pipeline for
// (cfg, p), run it under rc, and return the AVF result.
func Simulate(cfg uarch.Config, p *prog.Program, rc RunConfig) (*avf.Result, error) {
	pl, err := New(cfg, p)
	if err != nil {
		return nil, err
	}
	return pl.Run(rc)
}
