package persist

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"avfstress/internal/avf"
	"avfstress/internal/codegen"
	"avfstress/internal/uarch"
)

func TestStressmarkRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mark.json")
	in := SavedStressmark{
		Config: "Baseline",
		Rates:  "rhc",
		Knobs: codegen.Knobs{
			LoopSize: 81, NumLoads: 29, NumStores: 28, NumIndepArith: 5,
			MissDependent: 7, AvgChainLength: 2.14, DepDistance: 6,
			FracLongLatency: 0.8, FracRegReg: 0.93, Seed: 42, L2Hit: true,
		},
		Fitness: 0.62,
	}
	if err := SaveStressmark(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := LoadStressmark(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Knobs != in.Knobs || out.Config != in.Config || out.Fitness != in.Fitness {
		t.Errorf("round trip lost data:\nin  %+v\nout %+v", in, out)
	}
	// The loaded knobs regenerate the identical program.
	cfg := uarch.Baseline()
	p1, _, err := codegen.Generate(cfg, in.Knobs, 1000)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := codegen.Generate(cfg, out.Knobs, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Listing() != p2.Listing() {
		t.Error("persisted knobs regenerate a different program")
	}
}

func TestResultRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "result.json")
	in := &avf.Result{Config: "Baseline", Workload: "w", Cycles: 100, Instructions: 42, IPC: 0.42}
	in.AVF[uarch.ROB] = 0.9
	in.Activity.IssuedALU = 7
	if err := SaveResult(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := LoadResult(path)
	if err != nil {
		t.Fatal(err)
	}
	if *out != *in {
		t.Errorf("round trip lost data:\nin  %+v\nout %+v", in, out)
	}
}

// fillDistinct sets every field of a struct (recursively, including
// arrays) to a distinct non-zero value, so a lossy encode/decode cannot
// hide behind zero values or duplicates. It fails the test on any field
// JSON cannot carry (unexported) or any kind it does not know how to
// fill — forcing this test to be extended whenever avf.Result grows a
// new field shape.
func fillDistinct(t *testing.T, v reflect.Value, n *int) {
	t.Helper()
	switch v.Kind() {
	case reflect.Struct:
		tp := v.Type()
		for i := 0; i < v.NumField(); i++ {
			if tp.Field(i).PkgPath != "" {
				t.Fatalf("%s.%s is unexported: the disk tier cannot round-trip it",
					tp.Name(), tp.Field(i).Name)
			}
			fillDistinct(t, v.Field(i), n)
		}
	case reflect.Array, reflect.Slice:
		for i := 0; i < v.Len(); i++ {
			fillDistinct(t, v.Index(i), n)
		}
	case reflect.Float64:
		*n++
		// A value with a long shortest-representation exercises exact
		// float round-tripping.
		v.SetFloat(float64(*n) / 3)
	case reflect.Int64, reflect.Int:
		*n++
		v.SetInt(int64(*n))
	case reflect.String:
		*n++
		v.SetString(reflect.TypeOf(v.Interface()).Name() + string(rune('a'+*n%26)))
	case reflect.Bool:
		v.SetBool(true)
	default:
		t.Fatalf("fillDistinct: unhandled kind %v — extend the test", v.Kind())
	}
}

// TestResultRoundTripIsLossless is the differential test backing the
// simcache disk tier: every field of avf.Result — present and future —
// must survive a JSON encode/decode bit-exactly, or warm-from-disk runs
// would stop being byte-identical to fresh simulations.
func TestResultRoundTripIsLossless(t *testing.T) {
	in := &avf.Result{}
	n := 0
	fillDistinct(t, reflect.ValueOf(in).Elem(), &n)
	path := filepath.Join(t.TempDir(), "full.json")
	if err := SaveResult(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := LoadResult(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip lost data:\nin  %+v\nout %+v", in, out)
	}
	// And a second hop must be byte-stable (encode(decode(x)) == encode(x)).
	path2 := filepath.Join(t.TempDir(), "again.json")
	if err := SaveResult(path2, out); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Error("re-encoding a loaded result changed the bytes")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := LoadStressmark("/nonexistent/x.json"); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := SaveResult(bad, &avf.Result{}); err != nil {
		t.Fatal(err)
	}
	// Corrupt it.
	if err := writeFile(bad, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadResult(bad); err == nil {
		t.Error("corrupt file accepted")
	}
	if _, err := LoadStressmark(bad); err == nil {
		t.Error("corrupt stressmark accepted")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
