// Command avfinject runs a Monte Carlo statistical fault-injection
// campaign — the standard validation cross-check for the repository's
// ACE-based AVF accounting. It samples single-bit (structure, bit,
// cycle) targets from a golden simulation, replays the run
// deterministically with each bit flipped, classifies every trial as
// masked, SDC or detected, and reports injection-measured AVF beside
// ACE-based AVF with 95% confidence intervals (DESIGN.md §9).
//
// Usage:
//
//	avfinject [-config baseline|configA] [-rates uniform|rhc|edr]
//	          [-trials 1000] [-scale 32] [-seed 1] [-mode reference|search]
//	          [-checkpoint-interval N] [-prune-static N] [-root-cause]
//	          [-cache-dir DIR] [-v]
//
// avfinject is a thin client of the same scenario path avfstressd
// serves: the flags build a declarative scenario.Spec whose parametric
// faultinject scenario runs through the registry and scheduler, so the
// campaign shares the suite's stressmark search, per-trial memoisation
// and cancellation semantics with the daemon (POST /v1/jobs with
// {"scenarios": ["faultinject"], ...} runs the identical study).
// -root-cause appends the rootcause view of the same study — per-
// instruction and per-class attribution tables built from each SDC/DUE
// trial's first divergent commit (DESIGN.md §14) — at no extra replay
// cost. Ctrl-C cancels between replays.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"avfstress/internal/experiments"
	"avfstress/internal/scenario"
)

func main() {
	var (
		config    = flag.String("config", "baseline", "configuration: baseline or configA")
		rates     = flag.String("rates", "uniform", "fault rates: uniform, rhc or edr")
		trials    = flag.Int("trials", 1000, "Monte Carlo trials per campaign")
		scale     = flag.Int("scale", 32, "cache scale-down factor (1 = paper-exact)")
		seed      = flag.Int64("seed", 1, "sampling and search seed (campaigns are byte-deterministic per seed)")
		mode      = flag.String("mode", "reference", "stressmark provenance: reference (published knobs) or search (run the GA)")
		ckptIval  = flag.Int64("checkpoint-interval", 0, "golden-run checkpoint interval in cycles for fork-replay: 0 = auto, <0 = disabled (replay speed only; reports are byte-identical)")
		pruneSt   = flag.Int("prune-static", 0, "static liveness pruning of the injection space: 0 or >0 = enabled, <0 = disabled (pruned targets classify as masked analytically, freeing their replays for the live subspace)")
		rootCause = flag.Bool("root-cause", false, "also report root-cause attribution tables: the instructions whose values SDC/DUE trials corrupted, ranked (shares the campaign's replays)")
		cacheDir  = flag.String("cache-dir", "", "persist simulations and per-trial outcomes under this directory (shared across runs; results are bit-identical)")
		verbose   = flag.Bool("v", false, "stream per-campaign progress")
	)
	flag.Parse()

	scenarios := []string{"faultinject"}
	if *rootCause {
		// The rootcause view shares the faultinject study's memoised
		// campaigns — the second scenario costs zero extra replays.
		scenarios = append(scenarios, "rootcause")
	}
	spec := scenario.Spec{
		Scenarios:          scenarios,
		Config:             *config,
		Rates:              *rates,
		InjectTrials:       *trials,
		Mode:               *mode,
		Scale:              *scale,
		Seed:               *seed,
		CheckpointInterval: *ckptIval,
		PruneStatic:        *pruneSt,
	}
	base := experiments.Options{CacheDir: *cacheDir}
	if *verbose {
		base.Logf = func(f string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "# "+f+"\n", args...)
		}
	}
	ctx, names, err := experiments.NewSpecContext(spec, base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "avfinject:", err)
		os.Exit(1)
	}

	cctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(os.Stderr, "# injecting %s / %s rates, %d trials per campaign\n",
		*config, *rates, *trials)
	var out string
	if len(names) == 1 {
		out, err = ctx.Run(cctx, names[0])
	} else {
		out, err = ctx.RunScenarios(cctx, names)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "avfinject: interrupted")
		} else {
			fmt.Fprintln(os.Stderr, "avfinject:", err)
		}
		os.Exit(1)
	}
	if *cacheDir != "" {
		fmt.Fprintf(os.Stderr, "# cache: %s\n", ctx.CacheStats())
	}
	fmt.Print(out)
}
