package pipe

import (
	"avfstress/internal/isa"
	"avfstress/internal/prog"
)

// commit retires up to CommitWidth completed instructions in order,
// releasing resources and folding their ACE intervals into the
// accumulators. Returns the number committed.
func (pl *Pipeline) commit() int {
	n := 0
	for n < pl.core.CommitWidth && pl.head < pl.tail {
		u := pl.at(pl.head)
		if u.state != sDone {
			break
		}
		if u.wrongPath {
			// Wrong-path uops never reach the ROB head: they are always
			// flushed when their branch resolves first. Defensive check.
			panic("pipe: wrong-path uop at commit")
		}
		if u.op() == isa.OpStore {
			// The architectural write happens at retire.
			pl.mem.Data(pl.now, u.dyn.Addr, 8, true)
			pl.dropStore(u.dyn.Addr>>3, false)
		}
		if u.oldPhys != noReg {
			pl.releaseReg(u.oldPhys)
		}
		pl.acct.onCommit(pl, u)
		if u.inLQ {
			pl.lqUsed--
		}
		if u.inSQ {
			pl.sqUsed--
		}
		if u.inIQ {
			// Completed instructions have always left the IQ.
			panic("pipe: committed uop still in IQ")
		}
		pl.head++
		n++
		pl.countCommit(u)
	}
	return n
}

// countCommit advances the committed-instruction counters and flips the
// pipeline into measurement mode at the end of warmup.
func (pl *Pipeline) countCommit(u *uop) {
	if !pl.acct.measuring {
		pl.acct.warmupDone++
		if pl.acct.warmupDone >= pl.acct.warmupLeft {
			pl.startMeasurement()
		}
		return
	}
	pl.acct.committed++
	switch u.op() {
	case isa.OpLoad:
		pl.acct.loads++
	case isa.OpStore:
		pl.acct.stores++
	case isa.OpBranch:
		pl.acct.branches++
	case isa.OpMul:
		pl.acct.longArith++
	}
	if u.ace {
		pl.acct.aceCommitted++
	}
}

// complete moves finished executions to done and handles branch
// resolution (misprediction flush). Returns the number of completions.
//
// Completion events pop in (cycle, seq) order and the run loop never
// advances past a pending completion, so every live event popped here is
// due exactly now and the uops are visited oldest first — the same order
// as the seed core's head→tail scan.
func (pl *Pipeline) complete() int {
	n := 0
	for len(pl.compQ) > 0 && pl.compQ[0].cycle <= pl.now {
		e := pl.compQ.pop()
		u, ok := pl.live(e.seq, e.gen)
		if !ok || u.state != sIssued {
			continue // flushed or superseded; discard
		}
		u.state = sDone
		n++
		if u.op() == isa.OpBranch && u.mispred && !u.wrongPath {
			pl.flushAfter(e.seq)
			pl.fetchStallUntil = pl.now + int64(pl.core.MispredictPenalty)
			pl.wrongPathMode = false
			return n // everything younger was squashed; their events die lazily
		}
	}
	return n
}

// flushAfter squashes every uop younger than seq, restoring the rename
// map from the branch's checkpoint and returning physical registers.
// Scheduled events and ready-queue entries of squashed uops are not
// removed here; they are discarded when popped, via the generation check.
func (pl *Pipeline) flushAfter(seq int64) {
	copy(pl.archMap, pl.ckpt[seq&pl.robMask])
	for s := pl.tail - 1; s > seq; s-- {
		u := pl.at(s)
		if u.destPhys != noReg {
			// The squashed value is un-ACE; reset and return the register.
			pl.regs[u.destPhys] = physReg{readyCycle: farAway}
			pl.freeList = append(pl.freeList, u.destPhys)
		}
		if u.inIQ {
			pl.iqUsed--
		}
		if u.inLQ {
			pl.lqUsed--
		}
		if u.inSQ {
			pl.sqUsed--
			if !u.wrongPath {
				pl.dropStore(u.dyn.Addr>>3, true)
			}
		}
		pl.acct.flushed++
	}
	pl.tail = seq + 1
	pl.havePending = false
}

// issue wakes up and issues ready instructions, oldest first, bounded by
// the issue width, the memory-issue limit and functional-unit counts.
// Returns the number issued.
//
// Only uops whose operands have all become ready are examined: timed
// wakeups due this cycle are drained into the age-ordered ready queue,
// then the queue is walked in order. Entries that lose a resource race
// (FU counts, memory ports, issue width) or are blocked behind an older
// store stay queued for the next cycle, preserving the seed core's
// oldest-first selection exactly.
func (pl *Pipeline) issue() int {
	pl.drainWakeups()
	issued, memIssued, aluIssued, mulIssued := 0, 0, 0, 0
	q := pl.readyQ.q
	kept := q[:0]
	for i := 0; i < len(q); i++ {
		e := q[i]
		u, ok := pl.live(e.seq, e.gen)
		if !ok || u.state != sWaiting {
			continue // flushed or already issued; drop the entry
		}
		if issued >= pl.core.IssueWidth {
			kept = append(kept, e)
			continue
		}
		op := u.op()
		switch op {
		case isa.OpAdd:
			if aluIssued >= pl.core.NumALUs {
				kept = append(kept, e)
				continue
			}
		case isa.OpMul:
			if mulIssued >= pl.core.NumMuls {
				kept = append(kept, e)
				continue
			}
		case isa.OpLoad, isa.OpStore:
			if memIssued >= pl.core.MemIssuePerCycle {
				kept = append(kept, e)
				continue
			}
		}
		if op == isa.OpLoad {
			blocked, fwd := pl.loadMemCheck(e.seq, u)
			if blocked {
				kept = append(kept, e)
				continue
			}
			u.forwarded = fwd
		}
		// Issue.
		u.state = sIssued
		u.issueCycle = pl.now
		if u.inIQ {
			u.inIQ = false
			pl.iqUsed--
		}
		issued++
		if pl.acct.measuring {
			switch op {
			case isa.OpAdd:
				pl.acct.issuedALU++
			case isa.OpMul:
				pl.acct.issuedMul++
			case isa.OpLoad, isa.OpStore:
				pl.acct.issuedMem++
			case isa.OpBranch:
				pl.acct.issuedBr++
			}
		}
		switch op {
		case isa.OpAdd:
			aluIssued++
			u.execLatency = int64(pl.core.ALULatency)
			u.doneCycle = pl.now + u.execLatency
		case isa.OpMul:
			mulIssued++
			u.execLatency = int64(pl.core.MulLatency)
			u.doneCycle = pl.now + u.execLatency
		case isa.OpBranch:
			u.execLatency = 1
			u.doneCycle = pl.now + 1
		case isa.OpLoad:
			memIssued++
			switch {
			case u.wrongPath:
				u.doneCycle = pl.now + int64(pl.cfg.Mem.DL1.HitLatency)
			case u.forwarded:
				u.doneCycle = pl.now + 1
			default:
				lat, _, _ := pl.mem.Data(pl.now, u.dyn.Addr, 8, false)
				u.doneCycle = pl.now + int64(lat)
			}
			u.dataReady = u.doneCycle
		case isa.OpStore:
			memIssued++
			u.execLatency = 1
			u.doneCycle = pl.now + 1
		}
		pl.compQ.push(event{cycle: u.doneCycle, seq: e.seq, gen: u.gen})
		// Operand reads extend the producers' ACE intervals.
		if u.ace {
			for _, s := range u.src {
				if s != noReg && pl.regs[s].lastRead < pl.now {
					pl.regs[s].lastRead = pl.now
				}
			}
		}
		// Result broadcast: consumers parked on the destination register
		// learn the ready cycle now.
		if u.destPhys != noReg {
			r := &pl.regs[u.destPhys]
			r.readyCycle = u.doneCycle
			r.written = true
			r.aceValue = u.ace
			r.writeTime = u.doneCycle
			r.lastRead = u.doneCycle
			pl.broadcast(u.destPhys, u.doneCycle)
		}
	}
	pl.readyQ.q = kept
	return issued
}

func (pl *Pipeline) ready(r int16) bool {
	return r == noReg || pl.regs[r].readyCycle <= pl.now
}

// loadMemCheck applies perfect memory disambiguation against older
// in-flight stores: a load is blocked while an older overlapping store
// has not yet captured its data, and forwards from the youngest older
// completed overlapping store. The doubleword store index makes this one
// map lookup plus a scan of the (almost always single-entry) same-address
// list, instead of a walk over the whole ROB window.
func (pl *Pipeline) loadMemCheck(seq int64, u *uop) (blocked, forwarded bool) {
	if u.wrongPath {
		return false, false
	}
	l := pl.dwStores[u.dyn.Addr>>3]
	for i := len(l) - 1; i >= 0; i-- {
		if l[i] < seq {
			if pl.at(l[i]).state != sDone {
				return true, false
			}
			return false, true
		}
	}
	return false, false
}

// dispatch fetches, renames and inserts up to MapWidth instructions.
// Returns the number dispatched.
func (pl *Pipeline) dispatch() int {
	for n := 0; n < pl.core.MapWidth; n++ {
		if pl.now < pl.fetchStallUntil {
			return n
		}
		it, ok := pl.nextFetch()
		if !ok {
			return n
		}
		u0 := &it.dyn
		op := u0.Static.Op
		// Structural checks; on failure push the instruction back.
		if pl.robCount() >= int(pl.robCap) ||
			(op != isa.OpNop && pl.iqUsed >= pl.core.IQEntries) ||
			(op == isa.OpLoad && pl.lqUsed >= pl.core.LQEntries) ||
			(op == isa.OpStore && pl.sqUsed >= pl.core.SQEntries) ||
			(pl.needsDest(u0.Static) && len(pl.freeList) == 0) {
			pl.havePending = true
			return n
		}
		if !it.wrongPath {
			// Instruction fetch from the IL1 (wrong-path fetch does not
			// pollute the caches in this model).
			if extra := pl.mem.Fetch(pl.now, u0.PC); extra > 0 {
				pl.fetchStallUntil = pl.now + int64(extra)
				pl.havePending = true
				return n
			}
		}
		seq := pl.tail
		pl.tail++
		u := pl.at(seq)
		*u = uop{
			dyn:           it.dyn,
			wrongPath:     it.wrongPath,
			ace:           !it.wrongPath && !u0.Static.UnACE && op != isa.OpNop,
			state:         sWaiting,
			gen:           u.gen + 1,
			destPhys:      noReg,
			oldPhys:       noReg,
			src:           [2]int16{noReg, noReg},
			dispatchCycle: pl.now,
			doneCycle:     farAway,
		}
		pl.rename(u)
		switch op {
		case isa.OpNop:
			u.state = sDone
			u.doneCycle = pl.now
		case isa.OpLoad:
			u.inIQ = true
			pl.iqUsed++
			u.inLQ = true
			pl.lqUsed++
		case isa.OpStore:
			u.inIQ = true
			pl.iqUsed++
			u.inSQ = true
			pl.sqUsed++
			if !it.wrongPath {
				pl.pushStore(u0.Addr>>3, seq)
			}
		default:
			u.inIQ = true
			pl.iqUsed++
		}
		if u.state == sWaiting {
			pl.watchOperands(seq, u)
		}
		if op == isa.OpBranch && !it.wrongPath {
			pred := pl.bp.Predict(u0.PC)
			correct := pl.bp.Update(u0.PC, u0.Taken)
			u.predTaken = pred
			u.mispred = !correct
			copy(pl.ckpt[seq&pl.robMask], pl.archMap)
			if u.mispred {
				pl.wrongPathMode = true
				pl.wpIdx = pl.wpIndexAfter(u0)
				pl.acct.mispredicts++
			}
			pl.acct.branchesFetched++
		}
		if it.wrongPath {
			pl.acct.wrongPathFetched++
		}
		pl.acct.fetched++
	}
	return pl.core.MapWidth
}

// needsDest reports whether the instruction allocates a physical
// destination register.
func (pl *Pipeline) needsDest(in *isa.Instr) bool { return in.Writes() }

// rename maps source registers and allocates a destination register.
func (pl *Pipeline) rename(u *uop) {
	in := u.dyn.Static
	var srcs [2]isa.Reg
	ns := 0
	switch in.Op {
	case isa.OpAdd, isa.OpMul:
		srcs[ns] = in.Src1
		ns++
		if in.RegReg {
			srcs[ns] = in.Src2
			ns++
		}
	case isa.OpLoad, isa.OpBranch:
		srcs[ns] = in.Src1
		ns++
	case isa.OpStore:
		srcs[0], srcs[1] = in.Src1, in.Src2
		ns = 2
	}
	for i := 0; i < ns; i++ {
		if srcs[i] != isa.RZero {
			u.src[i] = pl.archMap[srcs[i]]
		}
	}
	if pl.needsDest(in) {
		p := pl.freeList[len(pl.freeList)-1]
		pl.freeList = pl.freeList[:len(pl.freeList)-1]
		u.oldPhys = pl.archMap[in.Dest]
		u.destPhys = p
		pl.archMap[in.Dest] = p
		pl.regs[p] = physReg{readyCycle: farAway}
	}
}

// nextFetch stages the next instruction to dispatch in pl.pending — the
// pushed-back one, a synthetic wrong-path instruction, or the next
// real-stream one — and returns a pointer to it. The item stays staged
// until dispatch succeeds, so a structural-hazard pushback is just
// havePending = true with no copying.
func (pl *Pipeline) nextFetch() (*fetchItem, bool) {
	if pl.havePending {
		pl.havePending = false
		return &pl.pending, true
	}
	if pl.wrongPathMode {
		body := pl.p.Body
		in := &body[pl.wpIdx]
		pl.pending = fetchItem{
			dyn:       prog.Dyn{Static: in, Seq: -1, Iter: -1, PC: prog.PCOf(pl.wpIdx)},
			wrongPath: true,
		}
		pl.wpIdx = (pl.wpIdx + 1) % len(body)
		return &pl.pending, true
	}
	if pl.streamDone {
		return nil, false
	}
	pl.pending.wrongPath = false
	if !pl.stream.NextInto(&pl.pending.dyn) {
		pl.streamDone = true
		return nil, false
	}
	return &pl.pending, true
}

// wpIndexAfter picks where wrong-path fetch starts: the body instruction
// following the mispredicted branch (the not-taken path of a taken
// backedge, or the fall-through clone for a reconvergent branch).
func (pl *Pipeline) wpIndexAfter(d *prog.Dyn) int {
	idx := int((d.PC - prog.BodyBase) / isa.InstrBytes)
	if idx < 0 || idx >= len(pl.p.Body) {
		return 0
	}
	return (idx + 1) % len(pl.p.Body)
}

// releaseReg frees a physical register at commit of the overwriting
// instruction, folding its ACE interval into the RF accumulator.
func (pl *Pipeline) releaseReg(p int16) {
	pl.acct.closeReg(pl, &pl.regs[p])
	pl.regs[p] = physReg{readyCycle: farAway}
	pl.freeList = append(pl.freeList, p)
}
