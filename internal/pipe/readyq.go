package pipe

// readyRef is one ready-queue entry. gen pairs the entry with a specific
// dispatch of the ROB slot (see events.go on lazy invalidation).
type readyRef struct {
	seq int64
	gen uint32
}

// readyQueue holds the operand-ready, not-yet-issued uops in ascending
// sequence order, so issue() preserves the oldest-first priority of the
// scan-based core while touching only woken uops. The queue is small (at
// most the issue-queue size plus a few stale entries), so ordered
// insertion by memmove beats a heap: iteration during issue is then a
// plain in-order walk with in-place compaction.
type readyQueue struct {
	q []readyRef
}

// insert places (seq, gen) after any existing entries with the same or
// older sequence number.
func (r *readyQueue) insert(seq int64, gen uint32) {
	q := r.q
	lo, hi := 0, len(q)
	for lo < hi {
		mid := (lo + hi) / 2
		if q[mid].seq <= seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	q = append(q, readyRef{})
	copy(q[lo+1:], q[lo:])
	q[lo] = readyRef{seq: seq, gen: gen}
	r.q = q
}

func (r *readyQueue) reset() { r.q = r.q[:0] }
