package codegen

import (
	"strings"
	"testing"
	"testing/quick"

	"avfstress/internal/isa"
	"avfstress/internal/uarch"
)

func baseKnobs() Knobs {
	return Knobs{
		LoopSize: 81, NumLoads: 29, NumStores: 28, NumIndepArith: 5,
		MissDependent: 7, AvgChainLength: 2.14, DepDistance: 6,
		FracLongLatency: 0.8, FracRegReg: 0.93, Seed: 42,
	}
}

func TestNormalizeIsFixedPoint(t *testing.T) {
	cfg := uarch.Baseline()
	k := baseKnobs().Normalize(cfg)
	if again := k.Normalize(cfg); again != k {
		t.Errorf("Normalize not idempotent:\n%+v\n%+v", k, again)
	}
}

func TestNormalizeCapsLoopSize(t *testing.T) {
	cfg := uarch.Baseline()
	k := baseKnobs()
	k.LoopSize = 500
	k = k.Normalize(cfg)
	if k.LoopSize != int(MaxLoopFactor*float64(cfg.Core.ROBEntries)) {
		t.Errorf("loop size %d, want 1.2×ROB = 96", k.LoopSize)
	}
}

func TestNormalizeRepairsOverfullBody(t *testing.T) {
	cfg := uarch.Baseline()
	k := Knobs{LoopSize: 10, NumLoads: 40, NumStores: 40, NumIndepArith: 20,
		MissDependent: 30, DepDistance: 3}
	k = k.Normalize(cfg)
	if err := k.Validate(cfg); err != nil {
		t.Fatalf("repaired knobs still invalid: %v", err)
	}
	if k.ChainArith() < k.foldsNeeded() {
		t.Errorf("chain arithmetic %d cannot cover %d folds", k.ChainArith(), k.foldsNeeded())
	}
	if _, _, err := Generate(cfg, k, 1000); err != nil {
		t.Errorf("repaired knobs fail to generate: %v", err)
	}
}

func TestNormalizeSingleStoreDropsIndep(t *testing.T) {
	cfg := uarch.Baseline()
	k := baseKnobs()
	k.NumStores = 1
	k = k.Normalize(cfg)
	if k.NumIndepArith != 0 {
		t.Error("independent arithmetic must be dropped with a single store")
	}
	if k.NumLoads != 1 {
		t.Error("sweep loads without load chains must be dropped")
	}
}

func TestGenerateBodyMatchesKnobs(t *testing.T) {
	cfg := uarch.Baseline()
	p, k, err := Generate(cfg, baseKnobs(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Body) != k.LoopSize {
		t.Fatalf("body length %d != loop size %d", len(p.Body), k.LoopSize)
	}
	var loads, stores, arith, branches int
	for _, in := range p.Body {
		switch in.Op {
		case isa.OpLoad:
			loads++
		case isa.OpStore:
			stores++
		case isa.OpAdd, isa.OpMul:
			arith++
		case isa.OpBranch:
			branches++
		case isa.OpNop:
			t.Error("stressmark must not contain NOPs")
		}
	}
	if loads != k.NumLoads {
		t.Errorf("loads = %d, want %d", loads, k.NumLoads)
	}
	if stores != k.NumStores {
		t.Errorf("stores = %d, want %d", stores, k.NumStores)
	}
	if branches != 1 {
		t.Errorf("branches = %d, want 1 (the backedge)", branches)
	}
	for _, in := range p.Body {
		if in.UnACE {
			t.Error("stressmark instructions must all be ACE")
		}
	}
	// The first instruction is the self-dependent chase.
	ch := p.Body[0]
	if ch.Op != isa.OpLoad || ch.Dest != regChase || ch.Src1 != regChase {
		t.Errorf("body[0] is not the chase load: %v", ch)
	}
	// The last is the backedge.
	if p.Body[len(p.Body)-1].Op != isa.OpBranch {
		t.Error("body must end with the loop branch")
	}
}

func TestGenerateLongLatencyFraction(t *testing.T) {
	cfg := uarch.Baseline()
	count := func(frac float64) (mul, add int) {
		k := baseKnobs()
		k.FracLongLatency = frac
		p, _, err := Generate(cfg, k, 1000)
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range p.Body {
			switch in.Op {
			case isa.OpMul:
				mul++
			case isa.OpAdd:
				add++
			}
		}
		return
	}
	mul0, _ := count(0)
	// The induction add is never a mul; chain arithmetic at frac 0 has no
	// muls at all.
	if mul0 != 0 {
		t.Errorf("frac 0 produced %d muls", mul0)
	}
	mul1, add1 := count(1)
	if add1 != 1 { // only the induction add remains
		t.Errorf("frac 1 left %d adds, want 1 (induction)", add1)
	}
	if mul1 == 0 {
		t.Error("frac 1 produced no muls")
	}
}

func TestGenerateMissVsHitRegions(t *testing.T) {
	cfg := uarch.Baseline()
	miss, _, err := Generate(cfg, baseKnobs(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	hk := baseKnobs()
	hk.L2Hit = true
	hit, _, err := Generate(cfg, hk, 1000)
	if err != nil {
		t.Fatal(err)
	}
	l2 := uint64(cfg.Mem.L2.SizeBytes)
	if miss.FootprintBytes < 2*l2 {
		t.Errorf("miss-mode region %d < 2×L2", miss.FootprintBytes)
	}
	// Paper: region covers page_size × DTLB entries.
	if want := uint64(cfg.Mem.DTLB.Entries * cfg.Mem.DTLB.PageBytes); miss.FootprintBytes < want {
		t.Errorf("miss-mode region %d does not cover the DTLB reach %d", miss.FootprintBytes, want)
	}
	if hit.FootprintBytes > l2 {
		t.Errorf("hit-mode region %d exceeds the L2", hit.FootprintBytes)
	}
	if hit.FootprintBytes <= uint64(cfg.Mem.DL1.SizeBytes) {
		t.Errorf("hit-mode region %d fits in DL1 (would not miss it)", hit.FootprintBytes)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := uarch.Baseline()
	a, _, err := Generate(cfg, baseKnobs(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Generate(cfg, baseKnobs(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Listing() != b.Listing() {
		t.Error("same knobs produced different programs")
	}
	k2 := baseKnobs()
	k2.Seed = 43
	c, _, err := Generate(cfg, k2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Listing() == c.Listing() {
		t.Error("different seeds produced identical placement")
	}
}

func TestACEClosureOnReferenceKnobs(t *testing.T) {
	cfg := uarch.Baseline()
	for _, k := range []Knobs{
		baseKnobs(),
		{LoopSize: 74, NumLoads: 20, NumStores: 20, NumIndepArith: 11, MissDependent: 4,
			AvgChainLength: 2.7, DepDistance: 1, FracLongLatency: 0.7, FracRegReg: 0.52, Seed: 1},
		{LoopSize: 54, NumLoads: 2, NumStores: 6, NumIndepArith: 5, MissDependent: 15,
			AvgChainLength: 6.5, DepDistance: 1, FracLongLatency: 0.9, FracRegReg: 0.4, Seed: 1, L2Hit: true},
	} {
		p, _, err := Generate(cfg, k, 1000)
		if err != nil {
			t.Fatalf("%+v: %v", k, err)
		}
		if err := CheckACEClosure(p); err != nil {
			t.Errorf("%+v: %v", k, err)
		}
	}
}

// Property: any knob vector, however wild, normalises to something that
// generates a valid program whose every value reaches program output.
func TestQuickGenerateAlwaysValidAndClosed(t *testing.T) {
	cfg := uarch.Baseline()
	f := func(loop, loads, stores, indep, missdep uint8, chain float64,
		depdist uint8, long, regreg float64, seed int64, l2hit bool) bool {
		k := Knobs{
			LoopSize: int(loop), NumLoads: int(loads), NumStores: int(stores),
			NumIndepArith: int(indep), MissDependent: int(missdep),
			AvgChainLength: chain, DepDistance: int(depdist),
			FracLongLatency: long, FracRegReg: regreg, Seed: seed, L2Hit: l2hit,
		}
		p, eff, err := Generate(cfg, k, 1000)
		if err != nil {
			return false
		}
		if len(p.Body) != eff.LoopSize {
			return false
		}
		if err := p.Validate(); err != nil {
			return false
		}
		return CheckACEClosure(p) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestGenerateErrorPaths(t *testing.T) {
	cfg := uarch.Baseline()
	if _, _, err := Generate(cfg, baseKnobs(), 0); err == nil {
		t.Error("zero iterations accepted")
	}
	bad := cfg
	bad.Core.ROBEntries = 0
	if _, _, err := Generate(bad, baseKnobs(), 1000); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestKnobsString(t *testing.T) {
	s := baseKnobs().String()
	for _, want := range []string{"Loop Size", "81", "No. of loads", "29",
		"L2 miss", "2.14", "0.93"} {
		if !strings.Contains(s, want) {
			t.Errorf("knob table missing %q:\n%s", want, s)
		}
	}
	h := baseKnobs()
	h.L2Hit = true
	if !strings.Contains(h.String(), "L2 hit") {
		t.Error("L2-hit variant not reflected in the knob table")
	}
}

func TestEffectiveChainLength(t *testing.T) {
	cfg := uarch.Baseline()
	k := baseKnobs().Normalize(cfg)
	got := k.EffectiveChainLength()
	if got < 0 || got > 16 {
		t.Errorf("effective chain length %f out of range", got)
	}
	if k.loadChains() == 0 {
		t.Fatal("baseline knobs must have load chains")
	}
}

func TestValidateDetectsUnnormalised(t *testing.T) {
	cfg := uarch.Baseline()
	k := baseKnobs()
	k.LoopSize = 1000
	if err := k.Validate(cfg); err == nil {
		t.Error("unnormalised knobs accepted")
	}
	if err := k.Normalize(cfg).Validate(cfg); err != nil {
		t.Errorf("normalised knobs rejected: %v", err)
	}
}

func TestCheckACEClosureCatchesDeadCode(t *testing.T) {
	cfg := uarch.Baseline()
	p, _, err := Generate(cfg, baseKnobs(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage: turn a store into an immediate add whose value nothing
	// consumes, orphaning its chain.
	for i, in := range p.Body {
		if in.Op == isa.OpStore {
			p.Body[i] = isa.Instr{Op: isa.OpAdd, Dest: 0, Src1: in.Src2, Imm: 1}
			break
		}
	}
	if err := CheckACEClosure(p); err == nil {
		t.Error("sabotaged program passed the ACE closure check")
	}
}

// TestDepDistanceSpacing verifies the scheduler's contract: with a
// dependency distance of D (and no seeded shuffling), consecutive ops of
// one chain sit ~D instructions apart in the body.
func TestDepDistanceSpacing(t *testing.T) {
	cfg := uarch.Baseline()
	measure := func(depDist int) float64 {
		k := baseKnobs()
		k.DepDistance = depDist
		k.Seed = 0 // deterministic lane order: no placement shuffling
		p, _, err := Generate(cfg, k, 1000)
		if err != nil {
			t.Fatal(err)
		}
		// Mean distance between each instruction and its nearest older
		// true-dependence producer within the body.
		lastWriter := map[isa.Reg]int{}
		var sum, n float64
		for i, in := range p.Body {
			var srcs []isa.Reg
			srcs = in.SrcRegs(srcs)
			for _, s := range srcs {
				if s == 1 || s == 2 { // chase/induction: loop-carried
					continue
				}
				if w, ok := lastWriter[s]; ok {
					sum += float64(i - w)
					n++
				}
			}
			if in.Writes() {
				lastWriter[in.Dest] = i
			}
		}
		if n == 0 {
			t.Fatal("no intra-body dependences found")
		}
		return sum / n
	}
	tight := measure(1)
	wide := measure(8)
	if tight >= wide {
		t.Errorf("mean dependence distance should grow with the knob: d1=%.1f d8=%.1f", tight, wide)
	}
	if wide < 3 {
		t.Errorf("dep distance 8 yields mean spacing %.1f, want ≥ 3", wide)
	}
}

// TestFingerprintIsLossless is the regression test for the simcache
// aliasing bug: Fingerprint once rendered the Stringer display table,
// which omits Seed and rounds the float knobs to two decimals, so
// candidates differing only in those fields shared one cache entry.
func TestFingerprintIsLossless(t *testing.T) {
	base := Knobs{LoopSize: 26, NumLoads: 12, NumStores: 12,
		AvgChainLength: 5.398623388174891, DepDistance: 11,
		FracLongLatency: 0.6073972426237857, FracRegReg: 0.8481767696821934,
		Seed: 105}
	mutants := []func(*Knobs){
		func(k *Knobs) { k.Seed = 820 },
		func(k *Knobs) { k.L2Hit = true },
		func(k *Knobs) { k.AvgChainLength += 1e-9 },
		func(k *Knobs) { k.FracLongLatency += 1e-12 },
		func(k *Knobs) { k.FracRegReg = 0.8481767696821935 },
	}
	for i, mutate := range mutants {
		m := base
		mutate(&m)
		if m == base {
			t.Fatalf("mutant %d equals base", i)
		}
		if m.Fingerprint() == base.Fingerprint() {
			t.Errorf("mutant %d aliases the base fingerprint: %s", i, m.Fingerprint())
		}
	}
	if !strings.Contains(base.Fingerprint(), "Seed:105") {
		t.Errorf("fingerprint does not carry the seed: %s", base.Fingerprint())
	}
}
