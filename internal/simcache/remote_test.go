package simcache

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"avfstress/internal/avf"
	"avfstress/internal/persist"
)

// fakeTier is an in-memory RemoteTier: a shared map of framed entries
// plus a claim table, standing in for the coordinator in store tests.
type fakeTier struct {
	mu      sync.Mutex
	entries map[string][]byte
	claimed map[string]bool
	done    map[string]bool
	gets    int
	puts    int
	// corrupt, when set, transforms every Get response (bit-flip
	// injection for the frame-on-receipt tests).
	corrupt func(framed []byte) []byte
}

func newFakeTier() *fakeTier {
	return &fakeTier{entries: map[string][]byte{}, claimed: map[string]bool{}, done: map[string]bool{}}
}

func (f *fakeTier) addr(kind string, key Key) string { return kind + "/" + key.Hex() }

func (f *fakeTier) Get(kind string, key Key) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.gets++
	framed, ok := f.entries[f.addr(kind, key)]
	if !ok {
		return nil, false
	}
	if f.corrupt != nil {
		framed = f.corrupt(framed)
	}
	return framed, true
}

func (f *fakeTier) Put(kind string, key Key, framed []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.puts++
	f.entries[f.addr(kind, key)] = append([]byte(nil), framed...)
}

func (f *fakeTier) Acquire(kind string, key Key) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	a := f.addr(kind, key)
	if f.done[a] || f.claimed[a] {
		return false
	}
	f.claimed[a] = true
	return true
}

func (f *fakeTier) Release(kind string, key Key, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	a := f.addr(kind, key)
	delete(f.claimed, a)
	if ok {
		f.done[a] = true
	}
}

// TestRemoteTierSharesResults checks the basic fabric flow: the first
// store computes and publishes, a second store with the same tier
// serves the entry remotely without simulating, and both attribute the
// traffic to the remote counters.
func TestRemoteTierSharesResults(t *testing.T) {
	tier := newFakeTier()
	a := New(Options{Remote: tier})
	key := a.Key("shared")
	want := sampleResult("shared")
	sims := 0
	if _, err := a.Do(key, func() (*avf.Result, error) { sims++; return want, nil }); err != nil {
		t.Fatal(err)
	}
	if sims != 1 {
		t.Fatalf("first store simulated %d times, want 1", sims)
	}
	if st := a.Stats(); st.RemoteMisses != 1 {
		t.Errorf("first store remote misses = %d, want 1 (it computed after a fabric miss)", st.RemoteMisses)
	}

	b := New(Options{Remote: tier})
	got, err := b.Do(key, func() (*avf.Result, error) { sims++; return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if sims != 1 {
		t.Fatalf("second store simulated (total %d), want a remote hit", sims)
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("remote result differs:\n%s\nvs\n%s", gotJSON, wantJSON)
	}
	if st := b.Stats(); st.RemoteHits != 1 || st.Simulated != 0 {
		t.Errorf("second store stats = %+v, want one remote hit and zero sims", st)
	}

	// Blob flow, same shape.
	bkey := a.Key("shared-blob")
	val := []byte("checkpoint bytes")
	if _, err := a.DoBlob(bkey, func() ([]byte, error) { return val, nil }); err != nil {
		t.Fatal(err)
	}
	v, err := b.DoBlob(bkey, func() ([]byte, error) { t.Error("second store recomputed the blob"); return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v, val) {
		t.Errorf("remote blob = %q, want %q", v, val)
	}
	if st := b.Stats(); st.BlobHits != 1 || st.RemoteHits != 2 {
		t.Errorf("second store stats after blob = %+v, want blob and remote hits counted", st)
	}
}

// TestRemoteAcquireDoneRechecksLocally covers the coordinator-shaped
// tier (Get is a no-op; a peer's publish lands in the local tiers via
// Import): when Acquire answers "a peer resolved it", the store must
// re-probe its own tiers before computing.
func TestRemoteAcquireDoneRechecksLocally(t *testing.T) {
	tier := newFakeTier()
	s := New(Options{Remote: tier})
	key := s.Key("peer-computed")
	want := sampleResult("peer")

	// Simulate the peer: claim resolved, entry imported locally, but the
	// tier itself serves nothing (coordinator Get is a no-op).
	tier.done[tier.addr(KindResult, key)] = true
	payload, _ := json.Marshal(want)
	if err := s.ImportResult(key, persist.EncodeFramed(payload)); err != nil {
		t.Fatal(err)
	}
	tier.entries = map[string][]byte{} // Get finds nothing

	// A view (fresh local counters) resolves the key without simulating:
	// memory tier was populated by the import. Use a view to keep the
	// import's counters separate.
	v := s.View()
	got, err := v.Do(key, func() (*avf.Result, error) {
		t.Error("simulated although a peer resolved the key")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Workload != want.Workload {
		t.Errorf("got workload %q, want %q", got.Workload, want.Workload)
	}
	if st := v.LocalStats(); st.MemHits != 1 {
		t.Errorf("view stats = %+v, want the imported entry served from memory", st)
	}
}

// TestRemoteResultBitFlipEveryOffset flips every bit position of the
// framed result entry the fabric serves, one Get at a time, and
// demands each corruption is rejected (quarantined, recomputed, never
// decoded into a wrong result) — the frame-on-receipt discipline of
// the disk tier (corrupt_test.go) applied to the wire.
func TestRemoteResultBitFlipEveryOffset(t *testing.T) {
	tier := newFakeTier()
	seed := New(Options{Remote: tier})
	key := seed.Key("flip-result")
	want := sampleResult("flip")
	if _, err := seed.Do(key, func() (*avf.Result, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}
	framed := tier.entries[tier.addr(KindResult, key)]
	if len(framed) == 0 {
		t.Fatal("seed store published no framed entry")
	}
	wantJSON, _ := json.Marshal(want)

	for off := 0; off < len(framed); off++ {
		off := off
		tier.corrupt = func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[off] ^= 0x10
			return c
		}
		// Each receiving store is cold and the claim table is reset so
		// the corrupt fetch is followed by a local recompute.
		tier.claimed, tier.done = map[string]bool{}, map[string]bool{}
		cold := New(Options{Remote: tier})
		sims := 0
		got, err := cold.Do(key, func() (*avf.Result, error) { sims++; return sampleResult("flip"), nil })
		if err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
		gotJSON, _ := json.Marshal(got)
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Fatalf("offset %d: corrupt entry decoded into a different result", off)
		}
		if sims != 1 {
			t.Fatalf("offset %d: simulated %d times, want 1 (corrupt fabric entry must be recomputed)", off, sims)
		}
		if q := cold.Stats().Quarantined; q != 1 {
			t.Fatalf("offset %d: quarantined = %d, want 1", off, q)
		}
	}
	// The recomputing stores heal the fabric copy with clean Puts: the
	// final published entry round-trips.
	tier.corrupt = nil
	if _, err := persist.DecodeFramed(tier.entries[tier.addr(KindResult, key)]); err != nil {
		t.Errorf("healed fabric entry does not validate: %v", err)
	}
}

// TestRemoteBlobBitFlipEveryOffset is the blob-tier half of the wire
// corruption contract.
func TestRemoteBlobBitFlipEveryOffset(t *testing.T) {
	tier := newFakeTier()
	seed := New(Options{Remote: tier})
	key := seed.Key("flip-blob")
	val := []byte("blob payload under test")
	if _, err := seed.DoBlob(key, func() ([]byte, error) { return val, nil }); err != nil {
		t.Fatal(err)
	}
	framed := tier.entries[tier.addr(KindBlob, key)]
	if len(framed) == 0 {
		t.Fatal("seed store published no framed blob")
	}

	for off := 0; off < len(framed); off++ {
		off := off
		tier.corrupt = func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[off] ^= 0x01
			return c
		}
		tier.claimed, tier.done = map[string]bool{}, map[string]bool{}
		cold := New(Options{Remote: tier})
		sims := 0
		got, err := cold.DoBlob(key, func() ([]byte, error) { sims++; return append([]byte(nil), val...), nil })
		if err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("offset %d: corrupt blob accepted", off)
		}
		if sims != 1 || cold.Stats().Quarantined != 1 {
			t.Fatalf("offset %d: sims=%d quarantined=%d, want 1 and 1", off, sims, cold.Stats().Quarantined)
		}
	}
}

// TestBlobStatsPerViewAttribution pins the per-handle blob/remote
// attribution contract: two views of one store see only their own
// blob-tier and fabric traffic in LocalStats, while store-wide Stats
// aggregates both.
func TestBlobStatsPerViewAttribution(t *testing.T) {
	tier := newFakeTier()
	s := New(Options{Remote: tier})
	busy, idle := s.View(), s.View()

	bkey := s.Key("attr-blob")
	if _, err := busy.DoBlob(bkey, func() ([]byte, error) { return []byte("v"), nil }); err != nil {
		t.Fatal(err)
	}
	if _, ok := busy.GetBlob(bkey); !ok { // memory hit
		t.Fatal("warm GetBlob missed")
	}
	if _, ok := busy.GetBlob(s.Key("absent")); ok { // miss through the fabric probe
		t.Fatal("absent key hit")
	}

	bs := busy.LocalStats()
	if bs.BlobHits != 1 || bs.BlobMisses != 1 {
		t.Errorf("busy view blob attribution = %d/%d, want 1/1 (stats %+v)", bs.BlobHits, bs.BlobMisses, bs)
	}
	// The cold DoBlob probed the fabric (miss), the absent GetBlob probe
	// did too.
	if bs.RemoteMisses != 2 {
		t.Errorf("busy view remote misses = %d, want 2", bs.RemoteMisses)
	}
	is := idle.LocalStats()
	if is != (Stats{}) {
		t.Errorf("idle view attributed traffic it never issued: %+v", is)
	}
	gs := s.Stats()
	if gs.BlobHits != bs.BlobHits || gs.BlobMisses != bs.BlobMisses || gs.RemoteMisses != bs.RemoteMisses {
		t.Errorf("store-wide stats %+v do not aggregate the busy view's %+v", gs, bs)
	}

	// A second view hitting the same blob attributes to itself only.
	if _, ok := idle.GetBlob(bkey); !ok {
		t.Fatal("second view missed the shared blob")
	}
	if is := idle.LocalStats(); is.BlobHits != 1 || is.MemHits != 1 {
		t.Errorf("second view stats = %+v, want its own mem+blob hit", is)
	}
	if bs2 := busy.LocalStats(); bs2.BlobHits != bs.BlobHits {
		t.Errorf("first view's counters moved (%d -> %d) on the second view's traffic", bs.BlobHits, bs2.BlobHits)
	}
}

// TestStatsStringKeepsAnchoredPrefix pins the CLI stats line: scripts
// grep the first four fields, so the fabric/blob fields must append,
// never reshape.
func TestStatsStringKeepsAnchoredPrefix(t *testing.T) {
	st := Stats{MemHits: 1, DiskHits: 2, Simulated: 3, Deduped: 4,
		Misses: 5, Evicted: 6, Quarantined: 7,
		BlobHits: 8, BlobMisses: 9, RemoteHits: 10, RemoteMisses: 11}
	want := "mem=1 disk=2 sim=3 dedup=4 miss=5 evict=6 quar=7 blob=8/9 remote=10/11"
	if got := st.String(); got != want {
		t.Errorf("Stats.String() = %q, want %q", got, want)
	}
}
