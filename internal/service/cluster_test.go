package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"avfstress/internal/avf"
	"avfstress/internal/scenario"
)

func specOf(t *testing.T, s string) scenario.Spec {
	t.Helper()
	var spec scenario.Spec
	if err := json.Unmarshal([]byte(s), &spec); err != nil {
		t.Fatal(err)
	}
	return spec
}

// clusterSpec is a small fault-injection campaign: the only scenario
// family with leased (shardable) jobs, kept cheap with reference knobs
// and tiny windows. Identical on every node by construction. The
// rootcause view rides along sharing the uniform campaign's memoised
// study — zero extra replays — which puts the attribution tables under
// the fabric's byte-identity contract too.
const clusterSpec = `{"scenarios":["faultinject:baseline:uniform:120","faultinject:baseline:rhc:120","rootcause:baseline:uniform:120"],"mode":"reference","scale":32,"seed":1,"workload_instr":30000,"workload_warmup":8000,"checkpoint_interval":-1}`

// clusterProcs widens GOMAXPROCS for the duration of a test. The
// in-process cluster tests run coordinator compute, runner compute and
// both sides' HTTP traffic in one process; at GOMAXPROCS=1 (the CI
// container has one CPU) the compute goroutines starve the HTTP
// handlers for hundreds of milliseconds at a stretch, so a runner can
// never win a claim race. Real deployments are separate processes the
// OS preempts fairly; widening the in-process scheduler restores that
// fairness without needing more hardware.
func clusterProcs(t *testing.T) {
	t.Helper()
	n := runtime.GOMAXPROCS(0)
	if n < 4 {
		n = 4
	}
	old := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// coordinator builds a cluster coordinator with a fast lease clock.
func coordinator(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Options{
		MaxJobs: 1, Parallelism: 1,
		HeartbeatInterval: 20 * time.Millisecond,
		LeaseTTL:          time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return srv, hs
}

// startRunner joins one in-process runner to url and returns its
// cancel. The runner uses a memory-only store (runners never share a
// disk tier).
func startRunner(t *testing.T, url, name string, client *http.Client) (*Runner, context.CancelFunc) {
	t.Helper()
	r := NewRunner(RunnerOptions{Coordinator: url, Name: name, Workers: 2, Client: client})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); r.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("runner did not stop")
		}
	})
	return r, cancel
}

// waitRunners polls until n runners are connected.
func waitRunners(t *testing.T, srv *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if srv.fabric.clusterHealth().ConnectedRunners >= n {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("%d runners never connected", n)
}

func reportText(t *testing.T, hs *httptest.Server, id string) string {
	t.Helper()
	resp, err := http.Get(hs.URL + "/v1/results/" + id + "?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results: %s: %s", resp.Status, body)
	}
	return string(body)
}

func runJob(t *testing.T, hs *httptest.Server, spec string) string {
	t.Helper()
	st := submit(t, hs, spec)
	end := waitTerminal(t, hs, st.ID)
	if end.Status != StatusDone {
		t.Fatalf("job %s ended %s: %s", st.ID, end.Status, end.Error)
	}
	return reportText(t, hs, st.ID)
}

// TestClusterByteIdentity is the fabric's core contract: a campaign
// sharded across a coordinator and two runners produces a report
// byte-identical to a single daemon's, runners demonstrably take
// leases, and a warm re-run through the same cluster matches too.
func TestClusterByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster campaigns in -short mode")
	}
	clusterProcs(t)
	// Single-node baseline: a plain daemon with no runners joined.
	_, solo := testServer(t)
	want := runJob(t, solo, clusterSpec)
	for _, s := range []string{"Root-cause instruction analysis", "Root-cause instructions", "Root-cause instruction classes"} {
		if !strings.Contains(want, s) {
			t.Fatalf("solo report missing %q — the rootcause scenario did not render", s)
		}
	}

	srv, hs := coordinator(t)
	startRunner(t, hs.URL, "r1", nil)
	startRunner(t, hs.URL, "r2", nil)
	waitRunners(t, srv, 2)

	got := runJob(t, hs, clusterSpec)
	if got != want {
		t.Errorf("3-node report differs from the single-daemon report:\n--- cluster\n%s\n--- solo\n%s", got, want)
	}
	h := srv.fabric.clusterHealth()
	if h.LeasedJobs == 0 {
		t.Error("no jobs were leased to runners — the campaign did not shard")
	}

	// Warm re-run through the same cluster: still byte-identical.
	if warm := runJob(t, hs, clusterSpec); warm != want {
		t.Error("warm cluster re-run differs from the single-daemon report")
	}

	// Satellite: /v1/healthz carries the cluster fields and stays "ok".
	resp, err := http.Get(hs.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health Health
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || health.Status != "ok" {
		t.Errorf("healthz = %s/%s, want 200/ok", resp.Status, health.Status)
	}
	switch {
	case health.Cluster == nil:
		t.Error("healthz has no cluster section")
	case health.Cluster.ConnectedRunners != 2:
		t.Errorf("healthz connected_runners = %d, want 2", health.Cluster.ConnectedRunners)
	case health.Cluster.LeasedJobs == 0:
		t.Error("healthz leased_jobs = 0, want > 0")
	case health.Cluster.RemoteGets > 0 && health.Cluster.RemoteHitRate <= 0:
		t.Errorf("healthz remote hit rate = %v with %d gets served", health.Cluster.RemoteHitRate, health.Cluster.RemoteGets)
	}
}

// cuttableTransport severs all requests when cut — the in-process
// equivalent of SIGKILLing a runner: heartbeats stop, releases are
// lost, and held claims can only move by lease-TTL stealing.
type cuttableTransport struct {
	cut atomic.Bool
	rt  http.RoundTripper
}

func (c *cuttableTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if c.cut.Load() {
		return nil, errors.New("transport cut (runner killed)")
	}
	return c.rt.RoundTrip(req)
}

// TestClusterRunnerLossStealsJobs kills a runner mid-campaign and
// demands the campaign still completes with a byte-identical report,
// with the dead runner's claims re-arbitrated by stealing.
func TestClusterRunnerLossStealsJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster campaigns in -short mode")
	}
	clusterProcs(t)
	_, solo := testServer(t)
	want := runJob(t, solo, clusterSpec)

	srv, hs := coordinator(t)
	ct := &cuttableTransport{rt: http.DefaultTransport}
	_, kill := startRunner(t, hs.URL, "victim", &http.Client{Transport: ct})
	waitRunners(t, srv, 1)

	st := submit(t, hs, clusterSpec)

	// Kill the runner the moment it holds a job lease: sever its
	// transport (no more heartbeats or releases) and stop its work.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if h := srv.fabric.clusterHealth(); h.ActiveLeases > 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	ct.cut.Store(true)
	kill()

	end := waitTerminal(t, hs, st.ID)
	if end.Status != StatusDone {
		t.Fatalf("job ended %s after runner loss: %s", end.Status, end.Error)
	}
	if got := reportText(t, hs, st.ID); got != want {
		t.Error("report after runner loss differs from the single-daemon report")
	}
	h := srv.fabric.clusterHealth()
	if h.StolenJobs == 0 {
		t.Error("no claims were stolen from the killed runner")
	}
	if h.ConnectedRunners != 0 {
		t.Errorf("killed runner still counted connected (%d)", h.ConnectedRunners)
	}
	// A lost runner is a capacity event, not a fault: health stays ok.
	resp, err := http.Get(hs.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health Health
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" {
		t.Errorf("health after runner loss = %q, want ok", health.Status)
	}
	if health.Cluster == nil || health.Cluster.StolenJobs == 0 {
		t.Errorf("healthz cluster = %+v, want stolen jobs surfaced", health.Cluster)
	}
}

// flippingProxy forwards to the coordinator but flips one bit — at a
// configurable offset — in every /v1/cache GET response body.
func flippingProxy(t *testing.T, srv *Server, offset *atomic.Int64) *httptest.Server {
	t.Helper()
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet || !strings.HasPrefix(r.URL.Path, "/v1/cache/") {
			srv.ServeHTTP(w, r)
			return
		}
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, r)
		body := rec.Body.Bytes()
		if rec.Code == http.StatusOK && len(body) > 0 {
			body[int(offset.Load())%len(body)] ^= 0x20
		}
		for k, vs := range rec.Header() {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(rec.Code)
		w.Write(body)
	}))
	t.Cleanup(proxy.Close)
	return proxy
}

// TestClusterCorruptFetchRejectedEveryOffset is the wire half of the
// corruption contract (satellite of DESIGN.md §11/§13): a runner
// receiving a framed cache entry bit-flipped at ANY offset must reject
// it, count a quarantine, and recompute — never decode a wrong result.
func TestClusterCorruptFetchRejectedEveryOffset(t *testing.T) {
	srv, _ := coordinator(t)

	// Seed the coordinator's store with one result entry.
	key := srv.Store().Key("wire-corruption-victim")
	want := &avf.Result{Config: "cfg", Workload: "victim", Cycles: 987, Instructions: 654, IPC: 1.5}
	if _, err := srv.Store().Do(key, func() (*avf.Result, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}
	framed, ok := srv.Store().ExportResult(key)
	if !ok {
		t.Fatal("seeded entry does not export")
	}

	var offset atomic.Int64
	proxy := flippingProxy(t, srv, &offset)

	for off := 0; off < len(framed); off++ {
		offset.Store(int64(off))
		// A fresh runner store per offset so each fetch is cold. The
		// runner is never joined: claim arbitration degrades to local
		// compute, which is exactly the recovery path under test.
		r := NewRunner(RunnerOptions{Coordinator: proxy.URL, Name: fmt.Sprintf("flip-%d", off)})
		sims := 0
		got, err := r.Store().Do(key, func() (*avf.Result, error) {
			sims++
			c := *want
			return &c, nil
		})
		if err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
		if got.Cycles != want.Cycles || got.Workload != want.Workload {
			t.Fatalf("offset %d: corrupt wire entry decoded into a different result", off)
		}
		if sims != 1 {
			t.Fatalf("offset %d: simulated %d times, want 1 (reject + recompute)", off, sims)
		}
		if q := r.Store().Stats().Quarantined; q == 0 {
			t.Fatalf("offset %d: corrupt wire entry not counted as quarantine", off)
		}
	}

	// Control: with the flip disabled (offset beyond a 204/404 path is
	// still a flip, so point the runner at the coordinator directly),
	// the fetch is a clean remote hit with no simulation.
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	r := NewRunner(RunnerOptions{Coordinator: hs.URL, Name: "clean"})
	got, err := r.Store().Do(key, func() (*avf.Result, error) {
		t.Error("clean wire entry was recomputed")
		return nil, nil
	})
	if err != nil || got.Cycles != want.Cycles {
		t.Fatalf("clean fetch = (%+v, %v)", got, err)
	}
	if st := r.Store().Stats(); st.RemoteHits != 1 || st.Quarantined != 0 {
		t.Errorf("clean fetch stats = %+v, want one remote hit, no quarantine", st)
	}
}

// TestClusterRunnersComeAndGo pins connection accounting: runners
// joining show up in healthz, and stopping them drops the count after
// the lease TTL with the daemon still "ok".
func TestClusterRunnersComeAndGo(t *testing.T) {
	srv, hs := coordinator(t)
	_, stop1 := startRunner(t, hs.URL, "a", nil)
	_, stop2 := startRunner(t, hs.URL, "b", nil)
	waitRunners(t, srv, 2)

	stop1()
	stop2()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if srv.fabric.clusterHealth().ConnectedRunners == 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := srv.fabric.clusterHealth().ConnectedRunners; got != 0 {
		t.Fatalf("connected runners after stop = %d, want 0", got)
	}
	resp, err := http.Get(hs.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health Health
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" {
		t.Errorf("health after runners left = %q, want ok", health.Status)
	}
}
