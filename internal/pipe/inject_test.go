package pipe_test

import (
	"reflect"
	"testing"

	"avfstress/internal/codegen"
	"avfstress/internal/pipe"
	"avfstress/internal/uarch"
)

// sameGoldenInfo compares replay facts structurally (GoldenInfo carries
// the recorded dead-interval slice, so == no longer applies).
func sameGoldenInfo(a, b pipe.GoldenInfo) bool {
	return reflect.DeepEqual(a, b)
}

func injectFixture(t *testing.T) (uarch.Config, *pipe.Pool, pipe.RunConfig) {
	t.Helper()
	cfg := uarch.Scaled(uarch.Baseline(), 32)
	pool, err := pipe.NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rc := pipe.RunConfig{MaxInstructions: 6_000, WarmupInstructions: 2_000}
	return cfg, pool, rc
}

// TestGoldenInfoDeterministic: the commit digest and window start of a
// golden run are reproducible, and unchanged when the pipeline is
// recycled through the pool.
func TestGoldenInfoDeterministic(t *testing.T) {
	cfg, pool, rc := injectFixture(t)
	k := codegen.Knobs{LoopSize: 81, NumLoads: 29, NumStores: 28,
		NumIndepArith: 5, MissDependent: 7, AvgChainLength: 2.14,
		DepDistance: 6, FracLongLatency: 0.8, FracRegReg: 0.93, Seed: 42}
	p, _, err := codegen.Generate(cfg, k, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	res1, info1, err := pool.SimulateGolden(p, rc)
	if err != nil {
		t.Fatal(err)
	}
	res2, info2, err := pool.SimulateGolden(p, rc)
	if err != nil {
		t.Fatal(err)
	}
	if !sameGoldenInfo(info1, info2) {
		t.Fatalf("golden info not reproducible: %+v vs %+v", info1, info2)
	}
	if info1.Digest == 0 {
		t.Fatal("golden digest is zero")
	}
	if info1.Cycles != res1.Cycles || res1.Cycles != res2.Cycles {
		t.Fatalf("cycle mismatch: info %d, results %d/%d", info1.Cycles, res1.Cycles, res2.Cycles)
	}
	if info1.WindowStart <= 0 {
		t.Fatalf("window start %d, want > 0 after a warmup run", info1.WindowStart)
	}
	// A normal pooled Simulate after golden runs must be unaffected by
	// the digest machinery.
	res3, err := pool.Simulate(p, rc)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Cycles != res1.Cycles || res3.AVF != res1.AVF {
		t.Fatal("pooled Simulate after SimulateGolden drifted")
	}
}

// lcg is a tiny deterministic generator for sampling fault targets.
type lcg uint64

func (l *lcg) next() uint64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint64(*l >> 1)
}

// TestFaultFullReplayMatchesEarly locks the equivalence of the two
// replay modes over every structure: the early-resolution fate (what
// campaigns run) must match the full replay's architectural-state diff
// against the golden digest — masked replays reproduce the golden
// digest bit-exactly, corrupting ones diverge.
func TestFaultFullReplayMatchesEarly(t *testing.T) {
	cfg, pool, rc := injectFixture(t)
	k := codegen.Knobs{LoopSize: 81, NumLoads: 29, NumStores: 28,
		NumIndepArith: 5, MissDependent: 7, AvgChainLength: 2.14,
		DepDistance: 6, FracLongLatency: 0.8, FracRegReg: 0.93, Seed: 42}
	p, _, err := codegen.Generate(cfg, k, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	_, info, err := pool.SimulateGolden(p, rc)
	if err != nil {
		t.Fatal(err)
	}
	rng := lcg(7)
	corrupted, masked := 0, 0
	for s := uarch.Structure(0); s < uarch.NumStructures; s++ {
		bits := uarch.Bits(cfg, s)
		for i := 0; i < 12; i++ {
			f := pipe.Fault{
				Structure: s,
				Bit:       rng.next() % bits,
				Cycle:     info.WindowStart + int64(rng.next()%uint64(info.Cycles)),
			}
			early, err := func() (pipe.FaultTrial, error) {
				pl, perr := pipe.New(cfg, p)
				if perr != nil {
					t.Fatal(perr)
				}
				return pl.RunFault(rc, f, false)
			}()
			if err != nil {
				t.Fatalf("%s early trial %d (%+v): %v", s, i, f, err)
			}
			pl, perr := pipe.New(cfg, p)
			if perr != nil {
				t.Fatal(perr)
			}
			full, err := pl.RunFault(rc, f, true)
			if err != nil {
				t.Fatalf("%s full trial %d (%+v): %v", s, i, f, err)
			}
			if early.Corrupted != full.Corrupted {
				t.Errorf("%s %+v: early says corrupted=%v, full replay says %v",
					s, f, early.Corrupted, full.Corrupted)
			}
			if diff := full.Digest != info.Digest; diff != full.Corrupted {
				t.Errorf("%s %+v: digest diff=%v but corrupted=%v", s, f, diff, full.Corrupted)
			}
			if full.Corrupted {
				corrupted++
			} else {
				masked++
			}
		}
	}
	if corrupted == 0 || masked == 0 {
		t.Errorf("degenerate trial mix: %d corrupted, %d masked — sampling covers nothing", corrupted, masked)
	}
}

// TestFaultValidation: malformed faults are rejected, and a fault cycle
// beyond the end of the run is an error rather than a silent masked.
func TestFaultValidation(t *testing.T) {
	cfg, pool, rc := injectFixture(t)
	k := codegen.Knobs{LoopSize: 20, NumLoads: 4, NumStores: 4,
		NumIndepArith: 4, MissDependent: 2, AvgChainLength: 2,
		DepDistance: 2, FracLongLatency: 0.5, FracRegReg: 0.5, Seed: 1}
	p, _, err := codegen.Generate(cfg, k, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := pool.SimulateGolden(p, rc); err != nil {
		t.Fatal(err)
	}
	pl, err := pipe.New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.RunFault(rc, pipe.Fault{Structure: uarch.NumStructures}, false); err == nil {
		t.Error("out-of-range structure accepted")
	}
	if _, err := pl.RunFault(rc, pipe.Fault{Structure: uarch.ROB, Bit: uarch.Bits(cfg, uarch.ROB)}, false); err == nil {
		t.Error("out-of-range bit accepted")
	}
	if _, err := pl.RunFault(rc, pipe.Fault{Structure: uarch.ROB, Cycle: -1}, false); err == nil {
		t.Error("negative cycle accepted")
	}
	if _, err := pl.RunFault(rc, pipe.Fault{Structure: uarch.ROB, Cycle: 1 << 40}, false); err == nil {
		t.Error("beyond-end-of-run cycle accepted")
	}
}
