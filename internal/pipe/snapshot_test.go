package pipe_test

import (
	"testing"

	"avfstress/internal/codegen"
	"avfstress/internal/pipe"
	"avfstress/internal/uarch"
)

func checkpointFixture(t *testing.T) (uarch.Config, *pipe.Pool, pipe.RunConfig, *codegen.Knobs) {
	t.Helper()
	cfg := uarch.Scaled(uarch.Baseline(), 32)
	pool, err := pipe.NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rc := pipe.RunConfig{MaxInstructions: 6_000, WarmupInstructions: 2_000}
	k := &codegen.Knobs{LoopSize: 81, NumLoads: 29, NumStores: 28,
		NumIndepArith: 5, MissDependent: 7, AvgChainLength: 2.14,
		DepDistance: 6, FracLongLatency: 0.8, FracRegReg: 0.93, Seed: 42}
	return cfg, pool, rc, k
}

// TestResumeGoldenMatchesUninterrupted is the core restore-equivalence
// differential: resuming from every checkpoint of a golden run must
// reproduce the uninterrupted run's result, window and commit digest
// bit-exactly. The digest folds every committed instruction's opcode,
// operands, address and branch outcome, and the result folds every ACE
// accumulator of every structure — so any drift in any restored
// structure (ROB, wheel, rename state, caches, TLB, predictor, stream
// cursor) shows up here.
func TestResumeGoldenMatchesUninterrupted(t *testing.T) {
	cfg, pool, rc, k := checkpointFixture(t)
	p, _, err := codegen.Generate(cfg, *k, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	want, wantInfo, err := pool.SimulateGolden(p, rc)
	if err != nil {
		t.Fatal(err)
	}
	res, info, cks, err := pool.SimulateGoldenCheckpointed(p, rc, 512)
	if err != nil {
		t.Fatal(err)
	}
	if *res != *want || !sameGoldenInfo(info, wantInfo) {
		t.Fatal("checkpointed golden run drifted from plain golden run")
	}
	if len(cks.Checkpoints) < 2 {
		t.Fatalf("only %d checkpoints captured; fixture too small to test", len(cks.Checkpoints))
	}
	if cks.Lead <= 0 {
		t.Fatalf("timestamp lead %d, want positive", cks.Lead)
	}
	prev := int64(-1)
	for i, ck := range cks.Checkpoints {
		if ck.Cycle() <= prev {
			t.Fatalf("checkpoint %d at cycle %d not after previous (%d)", i, ck.Cycle(), prev)
		}
		prev = ck.Cycle()
		got, gotInfo, err := pool.ResumeGolden(ck, rc)
		if err != nil {
			t.Fatalf("resume from checkpoint %d (cycle %d): %v", i, ck.Cycle(), err)
		}
		if *got != *want {
			t.Fatalf("resume from checkpoint %d (cycle %d): result drifted\n got %+v\nwant %+v",
				i, ck.Cycle(), got, want)
		}
		if !sameGoldenInfo(gotInfo, wantInfo) {
			t.Fatalf("resume from checkpoint %d (cycle %d): info drifted: %+v vs %+v",
				i, ck.Cycle(), gotInfo, wantInfo)
		}
	}
}

// TestCheckpointedGoldenDisabled: a negative interval degrades to plain
// SimulateGolden with no checkpoint set.
func TestCheckpointedGoldenDisabled(t *testing.T) {
	cfg, pool, rc, k := checkpointFixture(t)
	p, _, err := codegen.Generate(cfg, *k, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	want, wantInfo, err := pool.SimulateGolden(p, rc)
	if err != nil {
		t.Fatal(err)
	}
	res, info, cks, err := pool.SimulateGoldenCheckpointed(p, rc, -1)
	if err != nil {
		t.Fatal(err)
	}
	if cks != nil {
		t.Fatalf("disabled capture returned %d checkpoints", len(cks.Checkpoints))
	}
	if *res != *want || !sameGoldenInfo(info, wantInfo) {
		t.Fatal("disabled-capture golden run drifted")
	}
}

// TestFaultBatchMatchesSolo: a single replay carrying many armed faults
// resolves each exactly as a dedicated per-fault replay would — faults
// are pure observers. Samples every structure.
func TestFaultBatchMatchesSolo(t *testing.T) {
	cfg, pool, rc, k := checkpointFixture(t)
	p, _, err := codegen.Generate(cfg, *k, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	_, info, err := pool.SimulateGolden(p, rc)
	if err != nil {
		t.Fatal(err)
	}
	rng := lcg(11)
	var faults []pipe.Fault
	for s := uarch.Structure(0); s < uarch.NumStructures; s++ {
		bits := uarch.Bits(cfg, s)
		for i := 0; i < 8; i++ {
			faults = append(faults, pipe.Fault{
				Structure: s,
				Bit:       rng.next() % bits,
				Cycle:     info.WindowStart + int64(rng.next()%uint64(info.Cycles)),
			})
		}
	}
	batch, err := pool.SimulateFaultsFrom(p, rc, nil, faults)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	for i, f := range faults {
		solo, err := pool.SimulateFault(p, rc, f)
		if err != nil {
			t.Fatalf("solo replay %+v: %v", f, err)
		}
		if batch[i] != solo {
			t.Errorf("%s %+v: batch says corrupted=%v, solo says %v", f.Structure, f, batch[i], solo)
		}
		if solo {
			corrupted++
		}
	}
	if corrupted == 0 || corrupted == len(faults) {
		t.Errorf("degenerate outcome mix: %d/%d corrupted", corrupted, len(faults))
	}
}

// TestFaultForkMatchesCold: forking a fault replay from the nearest
// valid checkpoint yields the same classification as replaying from
// cycle zero, for every structure and for bucketed multi-fault batches
// — the property the campaign engine's speedup rests on.
func TestFaultForkMatchesCold(t *testing.T) {
	cfg, pool, rc, k := checkpointFixture(t)
	p, _, err := codegen.Generate(cfg, *k, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	_, info, cks, err := pool.SimulateGoldenCheckpointed(p, rc, 512)
	if err != nil {
		t.Fatal(err)
	}
	rng := lcg(23)
	var faults []pipe.Fault
	for s := uarch.Structure(0); s < uarch.NumStructures; s++ {
		bits := uarch.Bits(cfg, s)
		for i := 0; i < 8; i++ {
			faults = append(faults, pipe.Fault{
				Structure: s,
				Bit:       rng.next() % bits,
				Cycle:     info.WindowStart + int64(rng.next()%uint64(info.Cycles)),
			})
		}
	}
	// Bucket by nearest valid checkpoint, exactly as the campaign does.
	buckets := make(map[int][]pipe.Fault)
	for _, f := range faults {
		buckets[cks.Nearest(f.Cycle)] = append(buckets[cks.Nearest(f.Cycle)], f)
	}
	forked := 0
	for idx, bucket := range buckets {
		var ck *pipe.Checkpoint
		if idx >= 0 {
			ck = cks.Checkpoints[idx]
			forked += len(bucket)
			for _, f := range bucket {
				if ck.Cycle()+cks.Lead > f.Cycle {
					t.Fatalf("Nearest violated the lead margin: ck cycle %d + lead %d > fault cycle %d",
						ck.Cycle(), cks.Lead, f.Cycle)
				}
			}
		}
		got, err := pool.SimulateFaultsFrom(p, rc, ck, bucket)
		if err != nil {
			t.Fatalf("bucket %d: %v", idx, err)
		}
		for i, f := range bucket {
			cold, err := pool.SimulateFault(p, rc, f)
			if err != nil {
				t.Fatal(err)
			}
			if got[i] != cold {
				t.Errorf("%s %+v (ck %d): forked says corrupted=%v, cold says %v",
					f.Structure, f, idx, got[i], cold)
			}
		}
	}
	if forked == 0 {
		t.Fatal("no fault forked from a checkpoint; fixture exercises nothing")
	}
}

// TestCheckpointCodecRoundTrip: a checkpoint survives
// marshal→unmarshal, proven behaviourally — resuming the golden run
// from the decoded copy reproduces the uninterrupted result bit-exactly
// (a field-by-field compare would miss semantic drift; this cannot).
func TestCheckpointCodecRoundTrip(t *testing.T) {
	cfg, pool, rc, k := checkpointFixture(t)
	p, _, err := codegen.Generate(cfg, *k, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	want, wantInfo, cks, err := pool.SimulateGoldenCheckpointed(p, rc, 512)
	if err != nil {
		t.Fatal(err)
	}
	for i, ck := range cks.Checkpoints {
		blob, err := ck.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal checkpoint %d: %v", i, err)
		}
		dec, err := pipe.UnmarshalCheckpoint(blob, p)
		if err != nil {
			t.Fatalf("unmarshal checkpoint %d: %v", i, err)
		}
		if dec.Cycle() != ck.Cycle() {
			t.Fatalf("checkpoint %d cycle %d decoded as %d", i, ck.Cycle(), dec.Cycle())
		}
		got, gotInfo, err := pool.ResumeGolden(dec, rc)
		if err != nil {
			t.Fatalf("resume from decoded checkpoint %d: %v", i, err)
		}
		if *got != *want || !sameGoldenInfo(gotInfo, wantInfo) {
			t.Fatalf("decoded checkpoint %d: resumed run drifted", i)
		}
	}

	// Error paths: truncation, corruption of the magic, wrong program.
	blob, err := cks.Checkpoints[0].MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.UnmarshalCheckpoint(blob[:len(blob)/2], p); err == nil {
		t.Error("truncated blob accepted")
	}
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xff
	if _, err := pipe.UnmarshalCheckpoint(bad, p); err == nil {
		t.Error("corrupted magic accepted")
	}
	k2 := *k
	k2.Seed = 43
	p2, _, err := codegen.Generate(cfg, k2, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.UnmarshalCheckpoint(blob, p2); err == nil {
		t.Error("checkpoint bound to the wrong program accepted")
	}
}

// TestRestoreOntoDirtyPipeline: a pooled pipeline left dirty by a
// different program is a valid restore target — Restore overwrites
// every live field without an intervening Reset.
func TestRestoreOntoDirtyPipeline(t *testing.T) {
	cfg, pool, rc, k := checkpointFixture(t)
	p, _, err := codegen.Generate(cfg, *k, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	k2 := *k
	k2.Seed = 99
	k2.LoopSize = 40
	other, _, err := codegen.Generate(cfg, k2, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	want, wantInfo, cks, err := pool.SimulateGoldenCheckpointed(p, rc, 512)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the pool's pipeline with a different program mid-flight, then
	// resume p's checkpoint on it.
	if _, err := pool.Simulate(other, rc); err != nil {
		t.Fatal(err)
	}
	ck := cks.Checkpoints[len(cks.Checkpoints)/2]
	got, gotInfo, err := pool.ResumeGolden(ck, rc)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want || !sameGoldenInfo(gotInfo, wantInfo) {
		t.Fatal("resume on a pool dirtied by another program drifted")
	}
}

// TestNearestCheckpoint pins the bucketing rule: largest index whose
// cycle+lead ≤ fault cycle, -1 when none qualifies.
func TestNearestCheckpoint(t *testing.T) {
	cycles := []int64{100, 200, 300}
	const lead = 50
	cases := []struct {
		cycle int64
		want  int
	}{
		{0, -1}, {100, -1}, {149, -1},
		{150, 0}, {249, 0},
		{250, 1}, {349, 1},
		{350, 2}, {10_000, 2},
	}
	for _, c := range cases {
		if got := pipe.NearestCheckpoint(cycles, lead, c.cycle); got != c.want {
			t.Errorf("NearestCheckpoint(%d) = %d, want %d", c.cycle, got, c.want)
		}
	}
	if got := pipe.NearestCheckpoint(nil, lead, 1000); got != -1 {
		t.Errorf("empty manifest: got %d, want -1", got)
	}
}
