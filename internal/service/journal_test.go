package service

// Unit tests for the journal container itself: CRC framing, torn-tail
// tolerance, corrupt-line skipping and compaction (DESIGN.md §11).

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"avfstress/internal/scenario"
)

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "jobs.journal")
}

func submitRec(id string) journalRecord {
	return journalRecord{
		Op: journalOpSubmit, ID: id,
		Spec: &scenario.Spec{Scenarios: []string{"table1"}},
		Time: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
	}
}

func endRec(id string, st Status) journalRecord {
	return journalRecord{Op: journalOpEnd, ID: id, Status: st,
		Time: time.Date(2026, 8, 8, 12, 1, 0, 0, time.UTC)}
}

func TestJournalLineEveryByteFlipDetected(t *testing.T) {
	line, err := encodeJournalLine(submitRec("job-1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeJournalLine(strings.TrimSuffix(string(line), "\n")); err != nil {
		t.Fatalf("pristine line rejected: %v", err)
	}
	for i := 0; i < len(line)-1; i++ { // skip the trailing newline
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), line...)
			mut[i] ^= 1 << bit
			s := strings.TrimSuffix(string(mut), "\n")
			if _, err := decodeJournalLine(s); err == nil {
				t.Fatalf("flip byte %d bit %d accepted: %q", i, bit, s)
			}
		}
	}
}

func TestJournalTornTailAndCorruptMiddle(t *testing.T) {
	path := journalPath(t)
	l1, _ := encodeJournalLine(submitRec("job-1"))
	l2, _ := encodeJournalLine(endRec("job-1", StatusDone))
	l3, _ := encodeJournalLine(submitRec("job-2"))

	// Corrupt the middle line, tear the final one mid-write.
	bad := append([]byte(nil), l2...)
	bad[len(bad)/2] ^= 0x40
	var file []byte
	file = append(file, l1...)
	file = append(file, bad...)
	file = append(file, l3[:len(l3)-5]...)
	if err := os.WriteFile(path, file, 0o644); err != nil {
		t.Fatal(err)
	}

	jl, recs, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jl.close()
	if len(recs) != 1 || recs[0].ID != "job-1" || recs[0].Op != journalOpSubmit {
		t.Fatalf("surviving records %+v, want just job-1 submit", recs)
	}
	if _, corrupt, _ := jl.health(); corrupt != 2 {
		t.Errorf("corrupt lines %d, want 2", corrupt)
	}
}

func TestJournalAppendReloadCompact(t *testing.T) {
	path := journalPath(t)
	jl, recs, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal has %d records", len(recs))
	}
	for _, rec := range []journalRecord{
		submitRec("job-1"), submitRec("job-2"), endRec("job-1", StatusDone),
	} {
		if err := jl.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	jl.close()

	jl2, recs, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("reloaded %d records, want 3", len(recs))
	}
	if recs[0].ID != "job-1" || recs[1].ID != "job-2" || recs[2].Status != StatusDone {
		t.Errorf("records out of order or lossy: %+v", recs)
	}
	if recs[0].Spec == nil || len(recs[0].Spec.Scenarios) != 1 {
		t.Errorf("spec did not round-trip: %+v", recs[0].Spec)
	}

	// Compaction rewrites atomically and appends keep working after.
	if err := jl2.rewrite([]journalRecord{submitRec("job-2")}); err != nil {
		t.Fatal(err)
	}
	if err := jl2.append(endRec("job-2", StatusFailed)); err != nil {
		t.Fatal(err)
	}
	jl2.close()
	_, recs, err = openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].ID != "job-2" || recs[1].Status != StatusFailed {
		t.Errorf("post-compaction records %+v", recs)
	}
	// No temp files left behind by compaction.
	entries, _ := os.ReadDir(filepath.Dir(path))
	for _, e := range entries {
		if e.Name() != filepath.Base(path) {
			t.Errorf("stray file after compaction: %s", e.Name())
		}
	}
}

func TestJournalClosedAppendsAreNoOps(t *testing.T) {
	path := journalPath(t)
	jl, _, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	jl.close()
	if err := jl.append(submitRec("job-1")); err != nil {
		t.Fatalf("append after close errored: %v", err)
	}
	if data, _ := os.ReadFile(path); len(data) != 0 {
		t.Errorf("closed journal grew: %q", data)
	}
	// nil journal (journalling disabled) is inert too.
	var nilJl *journal
	if err := nilJl.append(submitRec("x")); err != nil {
		t.Errorf("nil journal append: %v", err)
	}
	nilJl.close()
}
