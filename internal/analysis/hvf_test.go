package analysis

import (
	"math"
	"testing"

	"avfstress/internal/avf"
	"avfstress/internal/uarch"
)

func TestHVFBoundsAVF(t *testing.T) {
	r := &avf.Result{Workload: "w"}
	r.OccupancyROB = 0.8
	r.OccupancyIQ = 0.5
	r.OccupancyLQ = 0.6
	r.OccupancySQ = 0.4
	r.AVF[uarch.ROB] = 0.7
	r.AVF[uarch.IQ] = 0.5
	r.AVF[uarch.LQTag] = 0.55
	h := HVFOf(r)
	if err := h.Check(r, 0); err != nil {
		t.Errorf("valid result rejected: %v", err)
	}
	if got := h.Gap(r, uarch.ROB); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("ROB gap %f, want 0.1", got)
	}
}

func TestHVFCatchesViolation(t *testing.T) {
	r := &avf.Result{Workload: "broken"}
	r.OccupancyROB = 0.3
	r.AVF[uarch.ROB] = 0.9 // ACE residency above total residency: a bug
	h := HVFOf(r)
	if err := h.Check(r, 0.01); err == nil {
		t.Error("AVF > HVF not detected")
	}
}

func TestHVFMapsLSQHalves(t *testing.T) {
	r := &avf.Result{}
	r.OccupancyLQ = 0.42
	h := HVFOf(r)
	if h.Value[uarch.LQTag] != 0.42 || h.Value[uarch.LQData] != 0.42 {
		t.Error("LQ halves must share the entry-occupancy bound")
	}
}
