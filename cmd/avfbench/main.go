// Command avfbench regenerates the paper's tables and figures.
//
// Usage:
//
//	avfbench [-run name[,name...]] [-scale N] [-seed N] [-pop N] [-gens N]
//	         [-ref] [-list] [-quiet]
//
// With no -run flag the complete suite (Tables I-III, Figures 3-9 and the
// §VI worst-case analysis) is produced, which is what EXPERIMENTS.md
// records. -ref skips the GA searches and evaluates the paper's published
// knob settings directly. -scale 1 uses the paper-exact cache geometry
// (needs much larger budgets; see DESIGN.md §4).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"avfstress/internal/experiments"
)

func main() {
	var (
		run   = flag.String("run", "", "comma-separated experiments to run (default: all)")
		scale = flag.Int("scale", 32, "cache scale-down factor (1 = paper-exact geometry)")
		seed  = flag.Int64("seed", 1, "random seed")
		pop   = flag.Int("pop", 14, "GA population size")
		gens  = flag.Int("gens", 12, "GA generations")
		ref   = flag.Bool("ref", false, "use the paper's published knobs instead of searching")
		list  = flag.Bool("list", false, "list experiment names and exit")
		quiet = flag.Bool("quiet", false, "suppress progress logging")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return
	}
	opts := experiments.Options{
		Scale: *scale, Seed: *seed, GAPop: *pop, GAGens: *gens,
		UseReferenceKnobs: *ref,
	}
	if !*quiet {
		opts.Logf = func(f string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "# "+f+"\n", args...)
		}
	}
	ctx := experiments.NewContext(opts)

	names := experiments.Names()
	if *run != "" {
		names = strings.Split(*run, ",")
	}
	for _, n := range names {
		out, err := ctx.Run(strings.TrimSpace(n))
		if err != nil {
			fmt.Fprintf(os.Stderr, "avfbench: %s: %v\n", n, err)
			os.Exit(1)
		}
		fmt.Printf("%s\n%s\n", strings.Repeat("=", 72), out)
	}
}
