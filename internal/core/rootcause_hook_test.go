package core

import (
	"context"
	"errors"
	"testing"

	"avfstress/internal/ga"
	"avfstress/internal/pipe"
	"avfstress/internal/prog"
	"avfstress/internal/rootcause"
)

// TestSearchRootCauseRank: the diagnostic hook runs exactly once, after
// the final evaluation, with the winning program, and its result lands
// on SearchResult.RootCause; a hook error fails the search.
func TestSearchRootCauseRank(t *testing.T) {
	if testing.Short() {
		t.Skip("GA search in -short mode")
	}
	cfg := testCfg()
	eval := pipe.RunConfig{MaxInstructions: 50_000, WarmupInstructions: 25_000}
	want := &rootcause.Result{Corrupted: 7, Attributed: 5, Unattributed: 2}
	calls := 0
	var seen *prog.Program
	spec := SearchSpec{
		Config: cfg,
		Eval:   eval,
		Final:  eval,
		GA:     ga.Config{PopSize: 4, Generations: 2, Seed: 3},
		RootCauseRank: func(ctx context.Context, p *prog.Program) (*rootcause.Result, error) {
			calls++
			seen = p
			return want, nil
		},
	}
	res, err := Search(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("hook ran %d times, want 1", calls)
	}
	if seen != res.Program {
		t.Error("hook saw a different program than the search returned")
	}
	if res.RootCause != want {
		t.Errorf("RootCause = %+v, want the hook's result", res.RootCause)
	}

	boom := errors.New("campaign exploded")
	spec.RootCauseRank = func(context.Context, *prog.Program) (*rootcause.Result, error) {
		return nil, boom
	}
	if _, err := Search(context.Background(), spec); !errors.Is(err, boom) {
		t.Errorf("hook error not propagated: %v", err)
	}
}

// TestSearchNoRootCauseRank: without the hook the field stays nil.
func TestSearchNoRootCauseRank(t *testing.T) {
	if testing.Short() {
		t.Skip("GA search in -short mode")
	}
	res, err := Search(context.Background(), SearchSpec{
		Config: testCfg(),
		Eval:   pipe.RunConfig{MaxInstructions: 50_000, WarmupInstructions: 25_000},
		Final:  pipe.RunConfig{MaxInstructions: 50_000, WarmupInstructions: 25_000},
		GA:     ga.Config{PopSize: 4, Generations: 2, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RootCause != nil {
		t.Error("RootCause set without a hook")
	}
}
