package simcache

// The campaign-fabric tier (DESIGN.md §13). A RemoteTier sits behind
// the local memory and disk tiers and makes the store cluster-aware:
// on a local miss the store first asks the fabric for the entry, then
// claims the right to compute it, so each content address is simulated
// once across all nodes. Entries cross the tier in the same CRC-framed
// wire form the disk tier uses, and are validated on receipt exactly
// like disk reads — a bit flipped in transit is counted as a
// quarantine and costs a recompute, never a wrong result.
//
// Two implementations exist in internal/service: the coordinator's
// (claims against its in-process table; Get/Put are no-ops because its
// store IS the authoritative tier, peers push entries into it via
// Import) and the runner's (claims and entries over HTTP).

import (
	"encoding/hex"
	"encoding/json"
	"fmt"

	"avfstress/internal/avf"
	"avfstress/internal/persist"
)

// Entry kinds on the fabric wire: result entries carry framed JSON
// (*avf.Result), blob entries framed opaque bytes — mirroring the
// ".json"/".bin" split of the disk tier.
const (
	KindResult = "result"
	KindBlob   = "blob"
)

// RemoteTier is the store's view of the campaign fabric.
// Implementations must be safe for concurrent use and entirely
// best-effort: any of these may fail silently (the store falls back to
// computing locally — duplicated work at worst, never a missing or
// wrong result).
type RemoteTier interface {
	// Get fetches the framed entry for key, if a node has published it.
	Get(kind string, key Key) (framed []byte, ok bool)
	// Put publishes a framed entry this node computed.
	Put(kind string, key Key, framed []byte)
	// Acquire claims the right to compute key. It may block while a
	// peer holds the claim; true means this node must compute (and then
	// Release), false that a peer resolved the key (re-Get it).
	Acquire(kind string, key Key) bool
	// Release resolves a claim this node holds; ok reports whether the
	// entry now exists.
	Release(kind string, key Key, ok bool)
}

// ParseKey parses the hex form produced by Key.Hex — the fabric wire
// format for content addresses.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(k) {
		return Key{}, fmt.Errorf("simcache: malformed key %q", s)
	}
	copy(k[:], b)
	return k, nil
}

// remoteAttempts bounds the Get→Acquire→wait loop. Each failed pass
// means a peer's claim resolved without the entry becoming visible
// (its publish was lost, or it died and the claim moved on); after the
// bound the store computes unclaimed rather than loop forever.
const remoteAttempts = 4

// countQuarantine records a rejected fabric entry — same counter as a
// corrupt disk entry, there is just no local file to move.
func (s *Store) countQuarantine() {
	s.st.glob.quarantined.Add(1)
	s.loc.quarantined.Add(1)
}

// decodeRemoteResult validates and decodes a framed result entry
// received from the fabric, counting a quarantine on rejection.
func (s *Store) decodeRemoteResult(framed []byte) (*avf.Result, bool) {
	payload, err := persist.DecodeFramed(framed)
	if err != nil {
		s.countQuarantine()
		return nil, false
	}
	r := &avf.Result{}
	if err := json.Unmarshal(payload, r); err != nil {
		s.countQuarantine()
		return nil, false
	}
	return r, true
}

// remoteResult resolves a result miss through the fabric: re-probe the
// local tiers (a peer's publish may have landed in them), fetch from
// the fabric, or claim the compute right and simulate. The caller
// holds the key's singleflight slot; the caller stores the returned
// result into the memory tier.
func (s *Store) remoteResult(key Key, simulate func() (*avf.Result, error)) (*avf.Result, error) {
	st := s.st
	for attempt := 0; attempt < remoteAttempts; attempt++ {
		if attempt > 0 {
			// A peer's claim resolved while we waited. On the
			// coordinator its publish landed directly in our tiers (the
			// fabric Get below is a no-op there); on runners the next
			// Get fetches it. Either way, check locally first.
			st.mu.Lock()
			r, ok := st.mem[key]
			st.mu.Unlock()
			if !ok {
				if dr := s.loadDisk(key); dr != nil {
					r, ok = dr, true
				}
			}
			if ok {
				st.glob.remoteHits.Add(1)
				s.loc.remoteHits.Add(1)
				return r, nil
			}
		}
		if framed, ok := st.remote.Get(KindResult, key); ok {
			if r, ok := s.decodeRemoteResult(framed); ok {
				st.glob.remoteHits.Add(1)
				s.loc.remoteHits.Add(1)
				if payload, err := json.Marshal(r); err == nil && st.dir != "" {
					s.writeEntry(s.path(key), payload)
				}
				return r, nil
			}
			// Rejected in transit: fall through and claim the compute —
			// our clean Put below heals the fabric copy.
		} else if attempt == 0 {
			st.glob.remoteMisses.Add(1)
			s.loc.remoteMisses.Add(1)
		}
		if st.remote.Acquire(KindResult, key) {
			r, err := s.simulateResult(key, simulate)
			st.remote.Release(KindResult, key, err == nil)
			return r, err
		}
	}
	// The fabric never produced a usable entry; compute unclaimed.
	return s.simulateResult(key, simulate)
}

// simulateResult runs the simulation, counts it, and publishes the
// entry to disk and the fabric.
func (s *Store) simulateResult(key Key, simulate func() (*avf.Result, error)) (*avf.Result, error) {
	st := s.st
	r, err := simulate()
	st.glob.sims.Add(1)
	s.loc.sims.Add(1)
	if err != nil {
		return r, err
	}
	s.saveDisk(key, r)
	if payload, merr := json.Marshal(r); merr == nil {
		st.remote.Put(KindResult, key, persist.EncodeFramed(payload))
	}
	return r, nil
}

// remoteBlob is remoteResult for the blob tier. The caller holds the
// key's blob singleflight slot and inserts the returned value into the
// memory tier.
func (s *Store) remoteBlob(key Key, compute func() ([]byte, error)) ([]byte, error) {
	st := s.st
	for attempt := 0; attempt < remoteAttempts; attempt++ {
		if attempt > 0 {
			st.mu.Lock()
			v, ok := st.blobMem[key]
			if ok {
				st.touchBlob(key)
			}
			st.mu.Unlock()
			if !ok {
				v, ok = s.loadBlob(key)
			}
			if ok {
				st.glob.remoteHits.Add(1)
				s.loc.remoteHits.Add(1)
				st.glob.blobHits.Add(1)
				s.loc.blobHits.Add(1)
				return v, nil
			}
		}
		if framed, ok := st.remote.Get(KindBlob, key); ok {
			if v, err := persist.DecodeFramed(framed); err == nil {
				st.glob.remoteHits.Add(1)
				s.loc.remoteHits.Add(1)
				st.glob.blobHits.Add(1)
				s.loc.blobHits.Add(1)
				s.saveBlob(key, v)
				return v, nil
			}
			s.countQuarantine()
		} else if attempt == 0 {
			st.glob.remoteMisses.Add(1)
			s.loc.remoteMisses.Add(1)
		}
		if st.remote.Acquire(KindBlob, key) {
			v, err := s.computeBlob(key, compute)
			st.remote.Release(KindBlob, key, err == nil)
			return v, err
		}
	}
	return s.computeBlob(key, compute)
}

// computeBlob runs the computation, counts it, and publishes the entry
// to disk and the fabric.
func (s *Store) computeBlob(key Key, compute func() ([]byte, error)) ([]byte, error) {
	st := s.st
	v, err := compute()
	st.glob.sims.Add(1)
	s.loc.sims.Add(1)
	if err != nil {
		return v, err
	}
	s.saveBlob(key, v)
	st.remote.Put(KindBlob, key, persist.EncodeFramed(v))
	return v, nil
}

// remoteProbeBlob is GetBlob's single non-blocking fabric probe: fetch
// and validate, never claim or wait. A hit is installed in the local
// tiers like a disk hit.
func (s *Store) remoteProbeBlob(key Key) ([]byte, bool) {
	st := s.st
	framed, ok := st.remote.Get(KindBlob, key)
	if !ok {
		st.glob.remoteMisses.Add(1)
		s.loc.remoteMisses.Add(1)
		return nil, false
	}
	v, err := persist.DecodeFramed(framed)
	if err != nil {
		s.countQuarantine()
		return nil, false
	}
	st.glob.remoteHits.Add(1)
	s.loc.remoteHits.Add(1)
	st.glob.blobHits.Add(1)
	s.loc.blobHits.Add(1)
	st.mu.Lock()
	st.insertBlob(key, v, &s.loc)
	st.mu.Unlock()
	s.saveBlob(key, v)
	return v, true
}

// ExportResult returns the framed wire form of the result entry for
// key, if present in the local tiers — the coordinator serves fabric
// cache fetches with it. Export traffic is not counted in Stats (it is
// a peer's hit, not this store's).
func (s *Store) ExportResult(key Key) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	st := s.st
	st.mu.Lock()
	r, ok := st.mem[key]
	st.mu.Unlock()
	if !ok {
		if r = s.loadDisk(key); r == nil {
			return nil, false
		}
	}
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, false
	}
	return persist.EncodeFramed(payload), true
}

// ExportBlob is ExportResult for the blob tier.
func (s *Store) ExportBlob(key Key) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	st := s.st
	st.mu.Lock()
	v, ok := st.blobMem[key]
	if ok {
		st.touchBlob(key)
	}
	st.mu.Unlock()
	if !ok {
		if v, ok = s.loadBlob(key); !ok {
			return nil, false
		}
	}
	return persist.EncodeFramed(v), true
}

// ImportResult installs a framed result entry a fabric peer pushed,
// after the same frame-on-receipt validation disk reads get: a corrupt
// frame or undecodable payload counts a quarantine and is rejected.
// No-op on a nil store.
func (s *Store) ImportResult(key Key, framed []byte) error {
	if s == nil {
		return nil
	}
	st := s.st
	payload, err := persist.DecodeFramed(framed)
	if err != nil {
		s.countQuarantine()
		return fmt.Errorf("simcache: import %s: %w", key.Hex(), err)
	}
	r := &avf.Result{}
	if err := json.Unmarshal(payload, r); err != nil {
		s.countQuarantine()
		return fmt.Errorf("simcache: import %s: undecodable payload: %w", key.Hex(), err)
	}
	st.mu.Lock()
	st.mem[key] = r
	st.mu.Unlock()
	if st.dir != "" {
		s.writeEntry(s.path(key), payload)
	}
	return nil
}

// ImportBlob is ImportResult for the blob tier.
func (s *Store) ImportBlob(key Key, framed []byte) error {
	if s == nil {
		return nil
	}
	st := s.st
	v, err := persist.DecodeFramed(framed)
	if err != nil {
		s.countQuarantine()
		return fmt.Errorf("simcache: import blob %s: %w", key.Hex(), err)
	}
	st.mu.Lock()
	st.insertBlob(key, v, &s.loc)
	st.mu.Unlock()
	s.saveBlob(key, v)
	return nil
}
