// Package cache models the memory hierarchy of the simulated processor
// (L1 instruction and data caches, unified L2, data TLB) and computes
// cache AVF using the lifetime analysis of Biswas et al. (ISCA'05), as
// used by the paper's SimSoda-based AVF simulator.
//
// Lifetime rules, applied per byte of a writeback cache:
//
//	fill→read, read→read, write→read   ACE
//	write→evict (dirty writeback)      ACE
//	fill→write, read→write, x→evict    un-ACE (x = fill or read)
//
// At the end of a simulation, dirty bytes are closed as ACE (their
// writeback is still architecturally required); clean bytes are closed
// un-ACE. The tag array is approximated per line as ACE from fill to the
// end of the line's last ACE byte interval.
//
// The engine tracks lifetimes at chunk granularity (Config.ChunkBytes):
// because the pipeline only issues aligned fixed-size accesses, every
// byte inside an access granule always carries the same (state, time)
// pair, so per-chunk state is a lossless compression of the per-byte
// state machine and all ACE totals are bit-identical to byte-granular
// tracking (DESIGN.md §5). ChunkBytes = 1 recovers the fully general
// byte-granular engine.
package cache

import (
	"fmt"
	"math/bits"
)

// Chunk lifetime states.
const (
	stInvalid uint8 = iota
	stFill          // filled, not yet accessed
	stRead          // last access was a read
	stWrite         // last access was a write (dirty)
)

// debugChecks enables the residency/alignment invariant checks on the
// hierarchy fast path (Access, FillTouch, ReadLine, WriteMask). The
// checks catch caller bugs — double fills, touches of non-resident
// lines, line-crossing accesses, partial-chunk masks — at the cost of an
// extra associative walk per operation, so they are off by default and
// enabled by tests via SetDebugChecks.
var debugChecks = false

// SetDebugChecks toggles the fast-path invariant checks and returns the
// previous setting. Not safe for concurrent use with running simulations.
func SetDebugChecks(on bool) bool {
	prev := debugChecks
	debugChecks = on
	return prev
}

// Config describes one cache.
type Config struct {
	Name       string
	SizeBytes  int
	LineBytes  int // at most 64 (dirty masks are 64-bit)
	Ways       int // 1 = direct mapped
	HitLatency int // cycles

	// ChunkBytes is the lifetime-tracking granule: the GCD of every
	// access size the cache will observe (8 for a DL1/L2 fed 8-byte
	// loads/stores, 4 for an IL1 fed 4-byte fetches). Must be a power of
	// two dividing LineBytes; 0 means 1 (byte-granular). All accesses
	// must be ChunkBytes-aligned multiples of ChunkBytes — the engine
	// panics otherwise.
	ChunkBytes int
}

// Fingerprint returns a canonical description of every field, used by
// internal/simcache to key cached simulation results. It must change
// whenever any field that can influence simulation output changes, so
// it simply renders the whole struct; adding a field therefore
// invalidates old cache entries, which is the safe direction.
func (c Config) Fingerprint() string {
	return fmt.Sprintf("cache.Config%+v", c)
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0:
		return fmt.Errorf("cache %s: non-positive size %d", c.Name, c.SizeBytes)
	case c.LineBytes <= 0 || c.LineBytes > 64:
		return fmt.Errorf("cache %s: line size %d out of range (1..64)", c.Name, c.LineBytes)
	case c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineBytes)
	case c.Ways <= 0:
		return fmt.Errorf("cache %s: non-positive associativity %d", c.Name, c.Ways)
	case c.SizeBytes%(c.LineBytes*c.Ways) != 0:
		return fmt.Errorf("cache %s: size %d not divisible by line*ways", c.Name, c.SizeBytes)
	case c.ChunkBytes < 0:
		return fmt.Errorf("cache %s: negative chunk size %d", c.Name, c.ChunkBytes)
	case c.ChunkBytes > 0 && (c.ChunkBytes&(c.ChunkBytes-1) != 0 || c.ChunkBytes > c.LineBytes):
		return fmt.Errorf("cache %s: chunk size %d not a power of two dividing line size %d",
			c.Name, c.ChunkBytes, c.LineBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// EffectiveChunkBytes returns the lifetime granule (ChunkBytes, or 1
// when unset).
func (c Config) EffectiveChunkBytes() int {
	if c.ChunkBytes <= 0 {
		return 1
	}
	return c.ChunkBytes
}

// NumSets returns the set count of this geometry.
func (c Config) NumSets() int { return c.SizeBytes / (c.LineBytes * c.Ways) }

// NumLines returns the line count of this geometry.
func (c Config) NumLines() int { return c.SizeBytes / c.LineBytes }

// DataBits returns the data-array size in bits.
func (c Config) DataBits() uint64 { return uint64(c.SizeBytes) * 8 }

// TagBitsPerLine returns the width of one tag entry (tag + valid + dirty)
// assuming 44-bit physical addresses.
func (c Config) TagBitsPerLine() uint64 {
	idx := log2(c.NumSets())
	off := log2(c.LineBytes)
	const physBits = 44
	tag := physBits - idx - off
	if tag < 1 {
		tag = 1
	}
	return uint64(tag) + 2
}

// TagBits returns the tag-array size in bits.
func (c Config) TagBits() uint64 { return c.TagBitsPerLine() * uint64(c.NumLines()) }

// Bits returns data + tag bits for this geometry.
func (c Config) Bits() uint64 { return c.DataBits() + c.TagBits() }

// Writeback describes a dirty line leaving a cache.
type Writeback struct {
	Addr      uint64 // line-aligned address
	DirtyMask uint64 // bit i set = byte i of the line is dirty
}

type line struct {
	tag   uint64
	valid bool
	lru   int64 // last-use time

	fillTime   int64
	lastAceEnd int64

	// dirty has bit ci set when chunk ci is in stWrite — evictions of
	// clean lines skip the chunk walk, dirty ones visit only set bits.
	dirty uint64

	chunkState []uint8
	chunkTime  []int64
}

// Watch observes the microarchitectural fate of one bit for the
// fault-injection engine (internal/inject, DESIGN.md §9): armed before a
// replay starts, it waits for the first lifetime transition on its target
// whose interval contains the injection timestamp and records whether
// that interval closed ACE (the flipped bit would have reached
// architectural state) or un-ACE (the flip was masked by an overwrite or
// a clean eviction). Exactly the Biswas rule the ACE accounting applies,
// observed for a single (line, chunk) or tag entry. Watches are pure
// observers — they never mutate cache state — so any number can ride one
// replay and each resolves exactly as it would alone.
type Watch struct {
	ln    *line // geometric slot identity (stable across fills)
	ci    int   // chunk index for data watches; unused for tag watches
	tag   bool
	cycle int64 // injection timestamp

	resolved bool
	ace      bool
}

// Outcome reports the watch's state: resolved is true once the fate of
// the watched bit is known, and ace then tells whether the flip would
// reach architectural state. Unresolved after Finalize means the watched
// bit was never live at the watched timestamp — callers treat that as
// masked.
func (w *Watch) Outcome() (resolved, ace bool) { return w.resolved, w.ace }

// Cache is a set-associative writeback cache with LRU replacement and
// chunk-granular lifetime ACE accounting. Not safe for concurrent use.
type Cache struct {
	cfg        Config
	sets       int
	ways       int
	lineBits   uint
	setShift   uint // log2(sets)
	setMask    uint64
	chunkBytes int
	chunkBits  uint
	cpl        int    // chunks per line
	chunkUnit  uint64 // low chunkBytes bits set (byte mask of one chunk)
	lines      []line // sets*ways, way-major within a set

	aceChunkCycles uint64 // data-array ACE, in chunk-cycles
	tagAceCycles   uint64 // tag-array ACE, in line-cycles
	windowStart    int64

	// One-line MRU memo for Access: loops touch the same line many times
	// in a row (sequential fetch, the stressmark's line sweep), so
	// remembering the last hit line skips the associative walk. epoch is
	// bumped by every fill and eviction, invalidating the memo whenever
	// residency changes anywhere in the cache.
	epoch     uint64
	memoLine  *line
	memoAddr  uint64
	memoEpoch uint64

	// watches holds the armed fault-injection fate watches; nil on every
	// normal simulation, so the lifetime hot paths pay a single
	// predictable nil-check branch. Batched campaign replays arm one
	// watch per co-replayed trial.
	watches []*Watch

	// Stats since the last ResetStats. Accesses/Misses count demand
	// traffic (reads and writes issued to this cache); WritebackAccesses
	// and WritebackMisses count dirty-victim masks applied from an upper
	// level and the write-allocate fills they trigger, which are not
	// demand traffic and therefore excluded from MissRate.
	Accesses          uint64
	Misses            uint64
	Writebacks        uint64
	WritebackAccesses uint64
	WritebackMisses   uint64
}

// New builds a cache; the configuration must validate.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	cb := cfg.EffectiveChunkBytes()
	c := &Cache{
		cfg:        cfg,
		sets:       sets,
		ways:       cfg.Ways,
		setShift:   uint(log2(sets)),
		setMask:    uint64(sets - 1),
		chunkBytes: cb,
		chunkBits:  uint(log2(cb)),
		cpl:        cfg.LineBytes / cb,
		lines:      make([]line, sets*cfg.Ways),
	}
	if cb >= 64 {
		c.chunkUnit = ^uint64(0)
	} else {
		c.chunkUnit = (uint64(1) << uint(cb)) - 1
	}
	for b := cfg.LineBytes; b > 1; b >>= 1 {
		c.lineBits++
	}
	// One backing allocation for all per-chunk arrays.
	states := make([]uint8, sets*cfg.Ways*c.cpl)
	times := make([]int64, sets*cfg.Ways*c.cpl)
	for i := range c.lines {
		c.lines[i].chunkState = states[i*c.cpl : (i+1)*c.cpl]
		c.lines[i].chunkTime = times[i*c.cpl : (i+1)*c.cpl]
	}
	return c, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Lines returns the total number of lines.
func (c *Cache) Lines() int { return c.sets * c.cfg.Ways }

// DataBits returns the size of the data array in bits.
func (c *Cache) DataBits() uint64 { return c.cfg.DataBits() }

// TagBits returns the size of the whole tag array in bits.
func (c *Cache) TagBits() uint64 { return c.cfg.TagBits() }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	l := addr >> c.lineBits
	return int(l & c.setMask), l >> c.setShift
}

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ uint64(c.cfg.LineBytes-1)
}

// aceBytes returns the accumulated data-array ACE in byte-cycles. Every
// byte of a chunk shares its (state, time), so the per-chunk total
// scales exactly.
func (c *Cache) aceBytes() uint64 { return c.aceChunkCycles * uint64(c.chunkBytes) }

// Probe reports whether addr currently hits, without touching any state.
func (c *Cache) Probe(addr uint64) bool {
	return c.find(addr) != nil
}

func (c *Cache) find(addr uint64) *line {
	set, tag := c.index(addr)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == tag {
			return ln
		}
	}
	return nil
}

// selectVictim picks the way to fill in set: the first invalid way found
// by the scan, else the LRU way. The scan order reproduces the original
// engine exactly (it starts from way 0 but tests ways 1.. for
// invalidity first), which keeps fill placement — and therefore every
// downstream eviction — bit-identical.
func (c *Cache) selectVictim(set int) *line {
	base := set * c.ways
	victim := &c.lines[base]
	for w := 1; w < c.ways; w++ {
		ln := &c.lines[base+w]
		if !ln.valid {
			return ln
		}
		if victim.valid && ln.lru < victim.lru {
			victim = ln
		}
	}
	return victim
}

// chunkSpan converts a byte (offset, size) access into a chunk index and
// count, panicking unless both are chunk-aligned — the contract that
// makes chunk tracking lossless. The panic is outlined so the check
// inlines into the access fast paths.
func (c *Cache) chunkSpan(addr uint64, size int) (ci, n int) {
	if (addr|uint64(size))&uint64(c.chunkBytes-1) != 0 {
		c.alignPanic(addr, size)
	}
	return int(addr&uint64(c.cfg.LineBytes-1)) >> c.chunkBits, size >> c.chunkBits
}

func (c *Cache) alignPanic(addr uint64, size int) {
	panic(fmt.Sprintf("cache %s: access %#x size %d not aligned to %d-byte chunks",
		c.cfg.Name, addr, size, c.chunkBytes))
}

// Touch applies a read or write of size bytes at addr to a resident
// line, updating LRU state and chunk lifetimes. The access must not
// cross a line boundary and the line must be resident (callers
// Probe/Fill first); violations return an error so invariant tests can
// catch them. The hierarchy fast path uses Access instead.
func (c *Cache) Touch(now int64, addr uint64, size int, write bool) error {
	hit, err := c.TouchHit(now, addr, size, write)
	if err == nil && !hit {
		return fmt.Errorf("cache %s: touch of non-resident address %#x", c.cfg.Name, addr)
	}
	return err
}

// TouchHit applies a read or write of size bytes at addr when the line
// is resident and reports whether it was; on a miss no state changes.
func (c *Cache) TouchHit(now int64, addr uint64, size int, write bool) (bool, error) {
	ln := c.find(addr)
	if ln == nil {
		return false, nil
	}
	off := int(addr & uint64(c.cfg.LineBytes-1))
	if off+size > c.cfg.LineBytes {
		return false, fmt.Errorf("cache %s: access %#x size %d crosses line boundary", c.cfg.Name, addr, size)
	}
	ci, n := c.chunkSpan(addr, size)
	if c.watches != nil {
		c.watchSpan(ln, ci, n, now, write)
	}
	ln.lru = now
	c.Accesses++
	for k := 0; k < n; k++ {
		c.closeChunk(ln, ci+k, now, write)
	}
	return true, nil
}

// Access is the demand-access fast path: one associative walk; on a hit
// the chunk lifetimes are updated at time now and true is returned, on a
// miss nothing changes. With SetDebugChecks the line-crossing invariant
// is verified.
func (c *Cache) Access(now int64, addr uint64, size int, write bool) bool {
	la := addr &^ uint64(c.cfg.LineBytes-1)
	var ln *line
	if c.memoEpoch == c.epoch && c.memoAddr == la && c.memoLine != nil {
		ln = c.memoLine
	} else {
		ln = c.find(addr)
		if ln == nil {
			return false
		}
		c.memoLine = ln
		c.memoAddr = la
		c.memoEpoch = c.epoch
	}
	if debugChecks {
		if off := int(addr & uint64(c.cfg.LineBytes-1)); off+size > c.cfg.LineBytes {
			panic(fmt.Sprintf("cache %s: access %#x size %d crosses line boundary", c.cfg.Name, addr, size))
		}
	}
	ci, n := c.chunkSpan(addr, size)
	if c.watches != nil {
		c.watchSpan(ln, ci, n, now, write)
	}
	ln.lru = now
	c.Accesses++
	if write {
		for k := 0; k < n; k++ {
			c.closeChunkWrite(ln, ci+k, now)
		}
	} else {
		for k := 0; k < n; k++ {
			c.closeChunkRead(ln, ci+k, now)
		}
	}
	return true
}

// TouchMask applies a writeback mask from an upper-level cache: a write
// to the bytes selected by mask (bit i = byte i of the line containing
// addr). Counted as WritebackAccesses, not demand Accesses. The mask
// must cover whole chunks.
func (c *Cache) TouchMask(now int64, addr uint64, mask uint64) error {
	ln := c.find(addr)
	if ln == nil {
		return fmt.Errorf("cache %s: masked touch of non-resident address %#x", c.cfg.Name, addr)
	}
	if err := c.applyMask(ln, now, mask); err != nil {
		return err
	}
	ln.lru = now
	c.WritebackAccesses++
	return nil
}

// applyMask marks the chunks covered by the byte mask as written at now.
func (c *Cache) applyMask(ln *line, now int64, mask uint64) error {
	for ci := 0; ci < c.cpl; ci++ {
		sub := (mask >> uint(ci<<c.chunkBits)) & c.chunkUnit
		if sub == 0 {
			continue
		}
		if sub != c.chunkUnit {
			return fmt.Errorf("cache %s: writeback mask %#x covers a partial %d-byte chunk",
				c.cfg.Name, mask, c.chunkBytes)
		}
		if c.watches != nil {
			c.watchSpan(ln, ci, 1, now, true)
		}
		c.closeChunkWrite(ln, ci, now)
	}
	return nil
}

// closeChunk ends the chunk's current lifetime interval at time now and
// begins the next one; split into read/write specialisations so both
// stay inlinable on the access fast paths.
func (c *Cache) closeChunk(ln *line, ci int, now int64, write bool) {
	if write {
		c.closeChunkWrite(ln, ci, now)
	} else {
		c.closeChunkRead(ln, ci, now)
	}
}

// closeChunkRead: fill→read, read→read and write→read are all ACE.
//
// The chunk-transition helpers carry no fate-watch hooks: they are
// inlined into every access fast path, and even a nil-check call here
// blows the inlining budget (measured +65% on the baseline simulation).
// Watches instead resolve in the outer access functions, which call
// watchSpan *before* the transition loop runs.
func (c *Cache) closeChunkRead(ln *line, ci int, now int64) {
	st := ln.chunkState[ci]
	if st != stInvalid {
		c.addAce(ln, ln.chunkTime[ci], now)
	}
	ln.chunkState[ci] = stRead
	if st == stWrite {
		ln.dirty &^= 1 << uint(ci)
	}
	ln.chunkTime[ci] = now
}

// closeChunkWrite: any transition into a write is un-ACE for the closed
// interval.
func (c *Cache) closeChunkWrite(ln *line, ci int, now int64) {
	ln.chunkState[ci] = stWrite
	ln.dirty |= 1 << uint(ci)
	ln.chunkTime[ci] = now
}

// watchSpan resolves armed fate watches when an access is about to
// close the chunk intervals [ci, ci+n) of ln at time now: closing by a
// read is ACE (the flipped bits were consumed), closing by a write is
// un-ACE (they were overwritten). Callers invoke it before their
// transition loop, while the interval starts are still the pre-access
// chunk times, and only behind a c.watches nil check.
func (c *Cache) watchSpan(ln *line, ci, n int, now int64, write bool) {
	for _, w := range c.watches {
		if w.resolved || w.tag || w.ln != ln || w.ci < ci || w.ci >= ci+n {
			continue
		}
		// The closing interval is [chunkTime, now) of the current
		// residency; the flip participates only if it lies inside.
		if w.cycle < ln.chunkTime[w.ci] || w.cycle >= now {
			continue
		}
		w.resolved = true
		w.ace = !write
	}
}

// watchEvict resolves armed fate watches at an eviction of the watched
// line: a dirty watched chunk ends ACE (its writeback is architecturally
// required), a clean one un-ACE; a tag watch ends ACE iff the line's last
// ACE interval extends past the watched timestamp. Called after the
// dirty-chunk walk (which can advance lastAceEnd) and before the dirty
// mask is cleared.
func (c *Cache) watchEvict(ln *line, now int64) {
	for _, w := range c.watches {
		if w.resolved || w.ln != ln {
			continue
		}
		if w.tag {
			if w.cycle >= ln.fillTime && w.cycle < now {
				w.resolved = true
				w.ace = ln.lastAceEnd > w.cycle
			}
			continue
		}
		if w.cycle < ln.chunkTime[w.ci] || w.cycle >= now {
			continue
		}
		w.resolved = true
		w.ace = ln.dirty>>uint(w.ci)&1 == 1
	}
}

// AddWatch arms a fault-injection fate watch on one bit of this cache —
// bits below DataBits address the data array (line-major, byte-major
// within the line), the rest the tag array (one tag entry per line) —
// with the given injection timestamp, and returns its handle. Any number
// of watches may be armed at once; each resolves independently. Arm
// before the replay starts (accesses carry timestamps ahead of the
// pipeline's wall clock, so the covering lifetime interval may be closed
// by an access executed before the injection cycle is reached). Reset
// and ClearWatches disarm all watches; handles stay readable.
func (c *Cache) AddWatch(bit uint64, cycle int64) (*Watch, error) {
	if bit >= c.cfg.Bits() {
		return nil, fmt.Errorf("cache %s: watch bit %d out of range (%d bits)", c.cfg.Name, bit, c.cfg.Bits())
	}
	var w *Watch
	if bit < c.cfg.DataBits() {
		byteIdx := int(bit >> 3)
		w = &Watch{
			ln:    &c.lines[byteIdx/c.cfg.LineBytes],
			ci:    (byteIdx % c.cfg.LineBytes) >> c.chunkBits,
			cycle: cycle,
		}
	} else {
		lineIdx := int((bit - c.cfg.DataBits()) / c.cfg.TagBitsPerLine())
		w = &Watch{ln: &c.lines[lineIdx], tag: true, cycle: cycle}
	}
	c.watches = append(c.watches, w)
	return w, nil
}

// ClearWatches disarms all fate watches.
func (c *Cache) ClearWatches() { c.watches = nil }

// ArmWatch arms a single fate watch, replacing any previously armed
// ones. It is the one-trial-per-replay convenience over AddWatch.
func (c *Cache) ArmWatch(bit uint64, cycle int64) error {
	c.watches = nil
	_, err := c.AddWatch(bit, cycle)
	return err
}

// WatchOutcome reports the state of the watch armed by ArmWatch (the
// first armed watch): resolved is true once the fate of the watched bit
// is known, and ace then tells whether the flip would reach
// architectural state. An unresolved watch after Finalize means the
// watched bit was never live at the watched timestamp — callers treat
// that as masked.
func (c *Cache) WatchOutcome() (resolved, ace bool) {
	if len(c.watches) == 0 {
		return false, false
	}
	return c.watches[0].Outcome()
}

// ClearWatch disarms all fate watches (kept as the single-watch
// counterpart of ArmWatch).
func (c *Cache) ClearWatch() { c.watches = nil }

func (c *Cache) addAce(ln *line, t0, t1 int64) {
	if t0 < c.windowStart {
		t0 = c.windowStart
	}
	if t1 > t0 {
		c.aceChunkCycles += uint64(t1 - t0)
		if t1 > ln.lastAceEnd {
			ln.lastAceEnd = t1
		}
	}
}

// Fill allocates the line containing addr (whole-line fill at time now),
// evicting the LRU way if necessary. It returns the writeback for a
// dirty victim. Filling an already-resident line is an error. The
// hierarchy fast path uses FillTouch/ReadLine instead.
func (c *Cache) Fill(now int64, addr uint64) (wb Writeback, dirty bool, err error) {
	if c.find(addr) != nil {
		return Writeback{}, false, fmt.Errorf("cache %s: double fill of %#x", c.cfg.Name, addr)
	}
	set, tag := c.index(addr)
	victim := c.selectVictim(set)
	if victim.valid {
		wb, dirty = c.evictLine(victim, now, set)
	}
	c.Misses++
	c.fillLine(victim, tag, now)
	return wb, dirty, nil
}

// fillLine initialises victim as a freshly filled line at time now.
func (c *Cache) fillLine(victim *line, tag uint64, now int64) {
	c.epoch++
	victim.valid = true
	victim.tag = tag
	victim.lru = now
	victim.fillTime = now
	victim.lastAceEnd = now
	victim.dirty = 0
	for ci := 0; ci < c.cpl; ci++ {
		victim.chunkState[ci] = stFill
		victim.chunkTime[ci] = now
	}
}

// FillTouch is the L1 miss fast path: allocate the line containing addr
// (whole-line fill at fillT, evicting the LRU way) and immediately apply
// the demand access of size bytes at touchT. Equivalent to Fill followed
// by Touch, in one victim selection and no residency re-walk.
func (c *Cache) FillTouch(fillT, touchT int64, addr uint64, size int, write bool) (wb Writeback, dirty bool) {
	if debugChecks {
		if c.find(addr) != nil {
			panic(fmt.Sprintf("cache %s: double fill of %#x", c.cfg.Name, addr))
		}
		if off := int(addr & uint64(c.cfg.LineBytes-1)); off+size > c.cfg.LineBytes {
			panic(fmt.Sprintf("cache %s: access %#x size %d crosses line boundary", c.cfg.Name, addr, size))
		}
	}
	set, tag := c.index(addr)
	victim := c.selectVictim(set)
	if victim.valid {
		wb, dirty = c.evictLine(victim, fillT, set)
	}
	c.Misses++
	c.fillLine(victim, tag, fillT)
	ci, n := c.chunkSpan(addr, size)
	if c.watches != nil {
		c.watchSpan(victim, ci, n, touchT, write)
	}
	victim.lru = touchT
	c.Accesses++
	if write {
		for k := 0; k < n; k++ {
			c.closeChunkWrite(victim, ci+k, touchT)
		}
	} else {
		for k := 0; k < n; k++ {
			c.closeChunkRead(victim, ci+k, touchT)
		}
	}
	return wb, dirty
}

// ReadLine is the L2 fast path for an L1 miss: one associative walk that
// reads the whole line containing addr — at tHit when resident, or at
// tMiss after evicting a victim and filling (the fill→read transition at
// equal times contributes no ACE, so the fill is folded into the read).
// Reports whether the line was resident. A dirty victim's writeback
// drains to memory and is not returned.
func (c *Cache) ReadLine(tHit, tMiss int64, addr uint64) (hit bool) {
	set, tag := c.index(addr)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == tag {
			if c.watches != nil {
				c.watchSpan(ln, 0, c.cpl, tHit, false)
			}
			ln.lru = tHit
			c.Accesses++
			for ci := 0; ci < c.cpl; ci++ {
				c.closeChunkRead(ln, ci, tHit)
			}
			return true
		}
	}
	victim := c.selectVictim(set)
	if victim.valid {
		c.evictLine(victim, tMiss, set)
	}
	c.epoch++
	c.Misses++
	c.Accesses++
	victim.valid = true
	victim.tag = tag
	victim.lru = tMiss
	victim.fillTime = tMiss
	victim.lastAceEnd = tMiss
	victim.dirty = 0
	for ci := 0; ci < c.cpl; ci++ {
		victim.chunkState[ci] = stRead
		victim.chunkTime[ci] = tMiss
	}
	return false
}

// WriteMask is the writeback-apply fast path: one associative walk that
// applies an upper-level dirty mask at time now, write-allocating the
// line first when it is not resident (the fill→write transition at
// equal times is un-ACE, so the fill folds into the mask application).
func (c *Cache) WriteMask(now int64, addr uint64, mask uint64) {
	set, tag := c.index(addr)
	ln := c.find(addr)
	if ln == nil {
		ln = c.selectVictim(set)
		if ln.valid {
			c.evictLine(ln, now, set)
		}
		c.WritebackMisses++
		c.fillLine(ln, tag, now)
	}
	ln.lru = now
	c.WritebackAccesses++
	if err := c.applyMask(ln, now, mask); err != nil {
		panic(err)
	}
}

// evictLine closes all chunk lifetimes and the tag lifetime of ln.
func (c *Cache) evictLine(ln *line, now int64, set int) (wb Writeback, dirty bool) {
	c.epoch++
	var mask uint64
	// Only dirty chunks contribute at eviction (write→evict ACE); clean
	// lines skip the walk. Chunk states are not reset: an invalid line's
	// states are never read, and every fill rewrites all of them.
	for d := ln.dirty; d != 0; d &= d - 1 {
		ci := bits.TrailingZeros64(d)
		// write→evict: writeback data is ACE.
		c.addAce(ln, ln.chunkTime[ci], now)
		mask |= c.chunkUnit << uint(ci<<c.chunkBits)
	}
	if c.watches != nil {
		c.watchEvict(ln, now)
	}
	ln.dirty = 0
	// Tag approximation: ACE from fill to last ACE byte-interval end.
	t0 := ln.fillTime
	if t0 < c.windowStart {
		t0 = c.windowStart
	}
	if ln.lastAceEnd > t0 {
		c.tagAceCycles += uint64(ln.lastAceEnd - t0)
	}
	ln.valid = false
	if mask != 0 {
		c.Writebacks++
		lineAddr := (ln.tag<<c.setShift | uint64(set)) << c.lineBits
		return Writeback{Addr: lineAddr, DirtyMask: mask}, true
	}
	return Writeback{}, false
}

// Finalize closes every resident line at time now, as if evicted: dirty
// chunks end ACE (their writeback remains architecturally required),
// clean chunks end un-ACE. Call exactly once, at the end of a
// measurement.
func (c *Cache) Finalize(now int64) {
	for set := 0; set < c.sets; set++ {
		for w := 0; w < c.cfg.Ways; w++ {
			ln := &c.lines[set*c.cfg.Ways+w]
			if ln.valid {
				c.evictLine(ln, now, set)
			}
		}
	}
}

// ResetACE restarts ACE measurement at time now without disturbing cache
// contents: used at the end of a warmup window. Open chunk intervals are
// clipped at now.
func (c *Cache) ResetACE(now int64) {
	c.aceChunkCycles, c.tagAceCycles = 0, 0
	c.windowStart = now
	for i := range c.lines {
		ln := &c.lines[i]
		if !ln.valid {
			continue
		}
		if ln.fillTime < now {
			ln.fillTime = now
		}
		if ln.lastAceEnd < now {
			ln.lastAceEnd = now
		}
		// Chunk interval starts are left alone deliberately: an interval
		// spanning the boundary is clipped in addAce via windowStart.
	}
}

// ResetStats clears hit/miss counters.
func (c *Cache) ResetStats() {
	c.Accesses, c.Misses, c.Writebacks = 0, 0, 0
	c.WritebackAccesses, c.WritebackMisses = 0, 0
}

// Reset returns the cache to its power-on state — all lines invalid, ACE
// accumulators and statistics zeroed — without reallocating the line or
// per-chunk arrays. A Reset cache behaves identically to a fresh New one
// (fills rewrite every per-chunk field before it is read).
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i].valid = false
	}
	c.aceChunkCycles, c.tagAceCycles = 0, 0
	c.windowStart = 0
	c.memoLine = nil
	c.memoEpoch, c.memoAddr = 0, 0
	c.epoch++
	c.watches = nil
	c.ResetStats()
}

// DataAVF returns the data-array AVF over a window of cycles cycles.
func (c *Cache) DataAVF(cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	return float64(c.aceBytes()) / (float64(c.cfg.SizeBytes) * float64(cycles))
}

// TagAVF returns the (approximated) tag-array AVF.
func (c *Cache) TagAVF(cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	return float64(c.tagAceCycles) / (float64(c.Lines()) * float64(cycles))
}

// AVF returns the bit-weighted AVF over data and tag arrays.
func (c *Cache) AVF(cycles int64) float64 {
	db, tb := float64(c.DataBits()), float64(c.TagBits())
	return (c.DataAVF(cycles)*db + c.TagAVF(cycles)*tb) / (db + tb)
}

// TotalBits returns data + tag bits.
func (c *Cache) TotalBits() uint64 { return c.DataBits() + c.TagBits() }

// MissRate returns misses over demand accesses. Fills count as misses;
// demand touches count as accesses. Writeback-apply traffic from an
// upper level (WritebackAccesses) is excluded — see TrafficMissRate for
// the all-traffic ratio.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// TrafficMissRate returns all misses (demand and write-allocate) over
// all traffic including writeback-apply accesses from an upper level.
// This is the quantity the pipeline has historically reported as the L2
// miss rate (locked by the golden tests); MissRate reports the
// demand-only ratio.
func (c *Cache) TrafficMissRate() float64 {
	total := c.Accesses + c.WritebackAccesses
	if total == 0 {
		return 0
	}
	return float64(c.Misses+c.WritebackMisses) / float64(total)
}

func log2(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}
