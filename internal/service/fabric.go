package service

// The federated campaign fabric, coordinator side (DESIGN.md §13).
//
// The fabric never ships closures: every node — the coordinator and
// each joined runner — derives the same job DAG from the same spec and
// runs it. What the coordinator arbitrates is *claims*: exactly one
// live node wins the right to execute each leased sched job (fault
// buckets, trials) and each simcache compute (golden runs, workload
// simulations, GA evaluations), publishes the outcome through the
// coordinator's content-addressed store, and releases the claim; the
// losers wait and then proceed warm. Work stealing falls out of
// liveness: a runner that misses heartbeats for the lease TTL is
// declared dead, its claims are freed, and the next waiter's
// re-acquire wins them. Byte-determinism is by construction — the
// coordinator's report is rendered by its own DAG execution over
// content-addressed results, so sharding, stealing and runner loss can
// only change *where* a result was computed, never its bytes.
//
// Wire protocol (all request/response bodies are CRC-framed JSON via
// internal/persist; cache entry bodies are the raw framed entries the
// disk tier uses):
//
//	POST /v1/fabric/join       {name, workers} → {runner, heartbeat_ms, lease_ttl_ms, scale, parallelism}
//	POST /v1/fabric/heartbeat  {runner}        → {runs: [{id, spec}]}     (410: rejoin)
//	POST /v1/fabric/claim      {runner, kind, key, wait_ms} → {state}     (granted | wait | done)
//	POST /v1/fabric/release    {runner, kind, key, ok}      → {}
//	GET  /v1/cache/{kind}/{key}  → framed entry (404: miss)
//	PUT  /v1/cache/{kind}/{key}  ← framed entry (validated on receipt)

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"avfstress/internal/persist"
	"avfstress/internal/scenario"
	"avfstress/internal/sched"
	"avfstress/internal/simcache"
)

// Fabric defaults: runners heartbeat at heartbeatDefault and a runner
// silent for leaseTTLDefault forfeits its claims.
const (
	heartbeatDefault = 500 * time.Millisecond
	leaseTTLDefault  = 5 * time.Second
	// doneKeyCap bounds the completed-claim memory (FIFO eviction). An
	// evicted key can be claimed again; the new owner then finds every
	// underlying entry warm, so eviction costs a warm re-assembly at
	// worst.
	doneKeyCap = 8192
	// claimPollMax caps one server-side claim long-poll; clients loop.
	claimPollMax = 25 * time.Second
)

// Claim states on the wire.
const (
	claimGranted = "granted"
	claimWait    = "wait"
	claimDone    = "done"
)

// Claim kinds: job claims arbitrate leased sched jobs, result/blob
// claims arbitrate simcache computes (simcache.KindResult/KindBlob).
const kindJob = "job"

// errUnknownRunner means the caller's runner id is not registered (or
// was declared dead); the HTTP layer maps it to 410 Gone and the
// runner rejoins.
var errUnknownRunner = errors.New("service: unknown or expired runner")

// fabricRunner is one joined runner daemon.
type fabricRunner struct {
	id       string
	name     string
	workers  int
	lastSeen time.Time
	dead     bool
}

// fabricClaim is one live claim. ch closes when the claim resolves
// (released by its owner, or freed by its owner's death).
type fabricClaim struct {
	key   string
	kind  string
	owner string // runner id; "" is the coordinator itself
	ch    chan struct{}
}

// runAnnouncement tells runners which specs to execute.
type runAnnouncement struct {
	ID   string        `json:"id"`
	Spec scenario.Spec `json:"spec"`
}

// fabric is the coordinator's cluster state: runner registry, claim
// table, run announcements and counters.
type fabric struct {
	hb   time.Duration
	ttl  time.Duration
	logf func(format string, args ...interface{})
	// journalAppend, when set, durably records job-lease grants and
	// steals (it is called outside the fabric mutex — appends fsync).
	journalAppend func(rec journalRecord)

	mu       sync.Mutex
	seq      int
	runners  map[string]*fabricRunner
	claims   map[string]*fabricClaim
	done     map[string]struct{}
	doneFIFO []string
	runs     map[string]scenario.Spec
	runOrder []string

	leased      int64 // job claims granted to runners (cumulative)
	stolen      int64 // job claims freed by runner death
	remoteGets  int64 // cache fetches served to runners
	remoteHits  int64
	priorLeases int // lease grants journalled by a previous process life
}

func newFabric(hb, ttl time.Duration, logf func(string, ...interface{})) *fabric {
	if hb <= 0 {
		hb = heartbeatDefault
	}
	if ttl <= 0 {
		ttl = leaseTTLDefault
	}
	if ttl < 2*hb {
		ttl = 2 * hb // a single delayed beat must not look like death
	}
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	return &fabric{
		hb: hb, ttl: ttl, logf: logf,
		runners: map[string]*fabricRunner{},
		claims:  map[string]*fabricClaim{},
		done:    map[string]struct{}{},
		runs:    map[string]scenario.Spec{},
	}
}

// claimKey namespaces claims by kind so a job key can never collide
// with a cache address.
func claimKey(kind, key string) string { return kind + "\x00" + key }

// shortKey renders a claim key for logs and journal records (raw keys
// embed fingerprint blobs).
func shortKey(key string) string { return fmt.Sprintf("%.16x", sha256.Sum256([]byte(key))) }

// sweepLocked declares runners dead after ttl of silence and frees
// their claims — the work-stealing half of the protocol. It returns
// the journal records to append once the lock is dropped.
func (f *fabric) sweepLocked(now time.Time) []journalRecord {
	var recs []journalRecord
	for id, r := range f.runners {
		if r.dead || now.Sub(r.lastSeen) <= f.ttl {
			continue
		}
		r.dead = true
		freed := 0
		for key, c := range f.claims {
			if c.owner != id {
				continue
			}
			delete(f.claims, key)
			close(c.ch)
			freed++
			if c.kind == kindJob {
				f.stolen++
				recs = append(recs, journalRecord{
					Op: journalOpSteal, ID: id, Key: shortKey(c.key), Time: now,
				})
			}
		}
		f.logf("fabric: runner %s (%s) lost after %v silence; %d claims freed for stealing",
			id, r.name, f.ttl, freed)
	}
	return recs
}

func (f *fabric) appendAll(recs []journalRecord) {
	if f.journalAppend == nil {
		return
	}
	for _, rec := range recs {
		f.journalAppend(rec)
	}
}

// join registers a runner and returns its id.
func (f *fabric) join(name string, workers int) string {
	f.mu.Lock()
	f.seq++
	id := fmt.Sprintf("runner-%d", f.seq)
	f.runners[id] = &fabricRunner{id: id, name: name, workers: workers, lastSeen: time.Now()}
	f.mu.Unlock()
	f.logf("fabric: runner %s (%s, %d workers) joined", id, name, workers)
	return id
}

// heartbeat refreshes a runner's liveness and returns the active runs.
func (f *fabric) heartbeat(id string) ([]runAnnouncement, error) {
	now := time.Now()
	f.mu.Lock()
	recs := f.sweepLocked(now)
	r := f.runners[id]
	if r == nil || r.dead {
		f.mu.Unlock()
		f.appendAll(recs)
		return nil, errUnknownRunner
	}
	r.lastSeen = now
	runs := make([]runAnnouncement, 0, len(f.runOrder))
	for _, rid := range f.runOrder {
		runs = append(runs, runAnnouncement{ID: rid, Spec: f.runs[rid]})
	}
	f.mu.Unlock()
	f.appendAll(recs)
	return runs, nil
}

// announce publishes a job's spec to the runners for the duration of
// its execution; withdraw removes it (runners cancel on the next
// heartbeat).
func (f *fabric) announce(id string, spec scenario.Spec) {
	f.mu.Lock()
	if _, ok := f.runs[id]; !ok {
		f.runOrder = append(f.runOrder, id)
	}
	f.runs[id] = spec
	f.mu.Unlock()
}

func (f *fabric) withdraw(id string) {
	f.mu.Lock()
	delete(f.runs, id)
	for i, rid := range f.runOrder {
		if rid == id {
			f.runOrder = append(f.runOrder[:i], f.runOrder[i+1:]...)
			break
		}
	}
	f.mu.Unlock()
}

// tryAcquire attempts to claim (kind, key) for owner ("" = the
// coordinator). It returns the wire state and, for claimWait, the
// channel that closes when the blocking claim resolves.
func (f *fabric) tryAcquire(owner, kind, key string) (string, <-chan struct{}, error) {
	ck := claimKey(kind, key)
	now := time.Now()
	f.mu.Lock()
	recs := f.sweepLocked(now)
	if owner != "" {
		r := f.runners[owner]
		if r == nil || r.dead {
			f.mu.Unlock()
			f.appendAll(recs)
			return "", nil, errUnknownRunner
		}
		r.lastSeen = now
	}
	if _, ok := f.done[ck]; ok {
		f.mu.Unlock()
		f.appendAll(recs)
		return claimDone, nil, nil
	}
	if c := f.claims[ck]; c != nil {
		if c.owner == owner {
			// Idempotent re-claim (a retried request whose response was
			// lost still owns its claim).
			f.mu.Unlock()
			f.appendAll(recs)
			return claimGranted, nil, nil
		}
		ch := c.ch
		f.mu.Unlock()
		f.appendAll(recs)
		return claimWait, ch, nil
	}
	f.claims[ck] = &fabricClaim{key: ck, kind: kind, owner: owner, ch: make(chan struct{})}
	if owner != "" && kind == kindJob {
		f.leased++
		recs = append(recs, journalRecord{
			Op: journalOpLease, ID: owner, Key: shortKey(ck), Time: now,
		})
	}
	f.mu.Unlock()
	f.appendAll(recs)
	return claimGranted, nil, nil
}

// markDoneLocked records a completed claim, FIFO-bounded.
func (f *fabric) markDoneLocked(ck string) {
	if _, ok := f.done[ck]; ok {
		return
	}
	f.done[ck] = struct{}{}
	f.doneFIFO = append(f.doneFIFO, ck)
	if len(f.doneFIFO) > doneKeyCap {
		delete(f.done, f.doneFIFO[0])
		f.doneFIFO = f.doneFIFO[1:]
	}
}

// release resolves a claim owner holds. ok records completion so later
// claimers see claimDone; a failed release just frees the claim for
// the next taker. A release for a claim owner no longer holds (stolen
// meanwhile) is a no-op.
func (f *fabric) release(owner, kind, key string, ok bool) {
	ck := claimKey(kind, key)
	f.mu.Lock()
	c := f.claims[ck]
	if c == nil || c.owner != owner {
		f.mu.Unlock()
		return
	}
	delete(f.claims, ck)
	if ok {
		f.markDoneLocked(ck)
	}
	close(c.ch)
	f.mu.Unlock()
}

// await blocks until the claim on (kind, key) resolves or timeout
// elapses, then re-attempts acquisition — the taking-over half of work
// stealing. It returns claimWait on timeout (the caller loops). Waits
// wake at lease-TTL granularity even if the claim channel never
// resolves: sweeping only happens inside tryAcquire, and a dead
// owner's channel closes only when a sweep frees its claims.
func (f *fabric) await(ctx context.Context, owner, kind, key string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for {
		st, ch, err := f.tryAcquire(owner, kind, key)
		if err != nil || st != claimWait {
			return st, err
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return claimWait, nil
		}
		wake := remain
		if wake > f.ttl {
			wake = f.ttl
		}
		t := time.NewTimer(wake)
		select {
		case <-ch:
			t.Stop() // resolved or stolen: re-check
		case <-t.C:
			// TTL tick: loop so the re-acquire sweeps dead owners.
		case <-ctx.Done():
			t.Stop()
			return claimWait, ctx.Err()
		}
	}
}

// ClusterHealth is the cluster section of GET /v1/healthz.
type ClusterHealth struct {
	// ConnectedRunners counts runners inside their lease TTL.
	ConnectedRunners int `json:"connected_runners"`
	// LeasedJobs is the cumulative count of job claims granted to
	// runners; ActiveLeases of those currently held; StolenJobs of
	// claims freed by a runner missing heartbeats.
	LeasedJobs   int64 `json:"leased_jobs"`
	ActiveLeases int   `json:"active_leases"`
	StolenJobs   int64 `json:"stolen_jobs"`
	// RunnerLeases maps each live runner's name to the job leases it
	// holds right now — the per-runner view that tells an operator (or
	// the cluster smoke) whether a specific runner is mid-job.
	RunnerLeases map[string]int `json:"runner_leases,omitempty"`
	// RemoteGets/RemoteHits count cache fetches runners issued against
	// the coordinator store and how many were served; RemoteHitRate is
	// their ratio (0 when no fetches yet).
	RemoteGets    int64   `json:"remote_gets"`
	RemoteHits    int64   `json:"remote_hits"`
	RemoteHitRate float64 `json:"remote_hit_rate"`
	// InterruptedLeases counts job-lease grants journalled by a
	// previous process life; their outcomes are unknown, and recovered
	// jobs re-arbitrate the work (results already published survive in
	// the cache).
	InterruptedLeases int `json:"interrupted_leases,omitempty"`
}

// clusterHealth snapshots the fabric for /v1/healthz. Cluster state
// never degrades the daemon's health status: a lost runner is a
// capacity event, not a fault — its work is re-arbitrated.
func (f *fabric) clusterHealth() *ClusterHealth {
	f.mu.Lock()
	recs := f.sweepLocked(time.Now())
	h := &ClusterHealth{
		LeasedJobs:        f.leased,
		StolenJobs:        f.stolen,
		RemoteGets:        f.remoteGets,
		RemoteHits:        f.remoteHits,
		InterruptedLeases: f.priorLeases,
	}
	names := make(map[string]string, len(f.runners))
	for id, r := range f.runners {
		if !r.dead {
			h.ConnectedRunners++
			names[id] = r.name
		}
	}
	if len(names) > 0 {
		h.RunnerLeases = make(map[string]int, len(names))
		for _, n := range names {
			if _, ok := h.RunnerLeases[n]; !ok {
				h.RunnerLeases[n] = 0
			}
		}
	}
	for _, c := range f.claims {
		if c.kind == kindJob && c.owner != "" {
			h.ActiveLeases++
			if n, ok := names[c.owner]; ok {
				h.RunnerLeases[n]++
			}
		}
	}
	f.mu.Unlock()
	f.appendAll(recs)
	if h.RemoteGets > 0 {
		h.RemoteHitRate = float64(h.RemoteHits) / float64(h.RemoteGets)
	}
	return h
}

// --- coordinator-side adapters -----------------------------------------

// coordExecutor adapts the claim table to sched.Executor for the
// coordinator's own scheduler runs.
type coordExecutor struct{ f *fabric }

func stateOf(st string) sched.ClaimState {
	switch st {
	case claimDone:
		return sched.ClaimDone
	case claimWait:
		return sched.ClaimWait
	default:
		return sched.ClaimOwn
	}
}

func (e coordExecutor) TryAcquire(key string) (sched.ClaimState, error) {
	st, _, err := e.f.tryAcquire("", kindJob, key)
	return stateOf(st), err
}

func (e coordExecutor) Await(ctx context.Context, key string) (sched.ClaimState, error) {
	for {
		// Bounded waits so the periodic re-acquire sweeps dead runners
		// even when nothing else touches the fabric.
		st, err := e.f.await(ctx, "", kindJob, key, e.f.ttl)
		if err != nil {
			return sched.ClaimWait, err
		}
		if st != claimWait {
			return stateOf(st), nil
		}
		if err := ctx.Err(); err != nil {
			return sched.ClaimWait, err
		}
	}
}

func (e coordExecutor) Release(key string, err error) {
	e.f.release("", kindJob, key, err == nil)
}

// coordRemote adapts the claim table to simcache.RemoteTier for the
// coordinator's store. Get and Put are no-ops: the coordinator's store
// IS the authoritative tier (runners push entries into it over HTTP),
// so only the claim arbitration crosses this adapter.
type coordRemote struct{ f *fabric }

func (t coordRemote) Get(kind string, key simcache.Key) ([]byte, bool) { return nil, false }
func (t coordRemote) Put(kind string, key simcache.Key, framed []byte) {}

func (t coordRemote) Acquire(kind string, key simcache.Key) bool {
	for {
		st, ch, err := t.f.tryAcquire("", kind, key.Hex())
		if err != nil {
			return true // arbitration unavailable: compute locally
		}
		switch st {
		case claimGranted:
			return true
		case claimDone:
			return false
		}
		select {
		case <-ch:
		case <-time.After(t.f.ttl):
			// Re-check: the owner may be a dead runner whose claims only
			// a sweep can free.
		}
	}
}

func (t coordRemote) Release(kind string, key simcache.Key, ok bool) {
	t.f.release("", kind, key.Hex(), ok)
}

// --- HTTP surface -------------------------------------------------------

// Wire bodies. All fabric endpoints exchange CRC-framed JSON.
type joinRequest struct {
	Name    string `json:"name"`
	Workers int    `json:"workers"`
}

type joinResponse struct {
	Runner      string `json:"runner"`
	HeartbeatMS int64  `json:"heartbeat_ms"`
	LeaseTTLMS  int64  `json:"lease_ttl_ms"`
	Scale       int    `json:"scale"`
	Parallelism int    `json:"parallelism"`
}

type heartbeatRequest struct {
	Runner string `json:"runner"`
}

type heartbeatResponse struct {
	Runs []runAnnouncement `json:"runs"`
}

type claimRequest struct {
	Runner string `json:"runner"`
	Kind   string `json:"kind"`
	Key    string `json:"key"`
	WaitMS int64  `json:"wait_ms"`
}

type claimResponse struct {
	State string `json:"state"`
}

type releaseRequest struct {
	Runner string `json:"runner"`
	Kind   string `json:"kind"`
	Key    string `json:"key"`
	OK     bool   `json:"ok"`
}

// readFramedJSON decodes a CRC-framed JSON request body; a frame or
// decode failure is the caller's 400.
func readFramedJSON(r *http.Request, v interface{}) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, 4<<20))
	if err != nil {
		return err
	}
	payload, err := persist.DecodeFramed(body)
	if err != nil {
		return err
	}
	return json.Unmarshal(payload, v)
}

func writeFramedJSON(w http.ResponseWriter, code int, v interface{}) {
	payload, err := json.Marshal(v)
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(code)
	w.Write(persist.EncodeFramed(payload))
}

func validClaimKind(kind string) bool {
	return kind == kindJob || kind == simcache.KindResult || kind == simcache.KindBlob
}

func (s *Server) handleFabricJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if err := readFramedJSON(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, "bad join body: %v", err)
		return
	}
	id := s.fabric.join(req.Name, req.Workers)
	writeFramedJSON(w, http.StatusOK, joinResponse{
		Runner:      id,
		HeartbeatMS: s.fabric.hb.Milliseconds(),
		LeaseTTLMS:  s.fabric.ttl.Milliseconds(),
		Scale:       s.opts.Scale,
		Parallelism: s.opts.Parallelism,
	})
}

func (s *Server) handleFabricHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if err := readFramedJSON(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, "bad heartbeat body: %v", err)
		return
	}
	runs, err := s.fabric.heartbeat(req.Runner)
	if err != nil {
		httpError(w, http.StatusGone, "%v", err)
		return
	}
	writeFramedJSON(w, http.StatusOK, heartbeatResponse{Runs: runs})
}

func (s *Server) handleFabricClaim(w http.ResponseWriter, r *http.Request) {
	var req claimRequest
	if err := readFramedJSON(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, "bad claim body: %v", err)
		return
	}
	if req.Runner == "" || req.Key == "" || !validClaimKind(req.Kind) {
		httpError(w, http.StatusBadRequest, "claim needs runner, key and a valid kind")
		return
	}
	var (
		st  string
		err error
	)
	if wait := time.Duration(req.WaitMS) * time.Millisecond; wait > 0 {
		if wait > claimPollMax {
			wait = claimPollMax
		}
		st, err = s.fabric.await(r.Context(), req.Runner, req.Kind, req.Key, wait)
	} else {
		st, _, err = s.fabric.tryAcquire(req.Runner, req.Kind, req.Key)
	}
	switch {
	case errors.Is(err, errUnknownRunner):
		httpError(w, http.StatusGone, "%v", err)
	case err != nil:
		// Client went away mid-poll; nothing useful to write.
		httpError(w, http.StatusBadRequest, "%v", err)
	default:
		writeFramedJSON(w, http.StatusOK, claimResponse{State: st})
	}
}

func (s *Server) handleFabricRelease(w http.ResponseWriter, r *http.Request) {
	var req releaseRequest
	if err := readFramedJSON(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, "bad release body: %v", err)
		return
	}
	if !validClaimKind(req.Kind) {
		httpError(w, http.StatusBadRequest, "invalid release kind %q", req.Kind)
		return
	}
	s.fabric.release(req.Runner, req.Kind, req.Key, req.OK)
	writeFramedJSON(w, http.StatusOK, struct{}{})
}

// handleCacheGet serves one framed entry from the coordinator store.
// The response body is exactly the wire form the disk tier uses, so
// the receiving runner applies the same frame-on-receipt validation.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	kind := r.PathValue("kind")
	key, err := simcache.ParseKey(r.PathValue("key"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var framed []byte
	var ok bool
	switch kind {
	case simcache.KindResult:
		framed, ok = s.store.ExportResult(key)
	case simcache.KindBlob:
		framed, ok = s.store.ExportBlob(key)
	default:
		httpError(w, http.StatusBadRequest, "unknown cache kind %q", kind)
		return
	}
	s.fabric.mu.Lock()
	s.fabric.remoteGets++
	if ok {
		s.fabric.remoteHits++
	}
	s.fabric.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no %s entry %s", kind, key.Hex())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(framed)
}

// handleCachePut ingests one framed entry a runner computed. Import
// validates the frame on receipt — a corrupt body is rejected (and
// counted as a quarantine in the store), never installed.
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	kind := r.PathValue("kind")
	key, err := simcache.ParseKey(r.PathValue("key"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 256<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	switch kind {
	case simcache.KindResult:
		err = s.store.ImportResult(key, body)
	case simcache.KindBlob:
		err = s.store.ImportBlob(key, body)
	default:
		httpError(w, http.StatusBadRequest, "unknown cache kind %q", kind)
		return
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
