package codegen

import (
	"fmt"
	"math/rand"

	"avfstress/internal/isa"
	"avfstress/internal/prog"
	"avfstress/internal/uarch"
)

// Fixed register roles.
const (
	regChase     isa.Reg = 1 // rP: the self-dependent chase pointer
	regInduction isa.Reg = 2 // rI: the loop induction variable
)

// chain op kinds.
const (
	cLoad uint8 = iota
	cFoldLoad
	cArith
	cStore
)

type chainOp struct{ kind uint8 }

// laneState is the scheduler's per-lane cursor into a chain.
type laneState struct {
	ch      *chain
	pos     int
	cur     isa.Reg // register holding the chain's running value
	fold    isa.Reg // pending fold-load register
	hasFold bool
}

// chain is one dependence chain: an optional root load, fold-load pairs,
// arithmetic, and a terminal store.
type chain struct {
	root isa.Reg // regChase, regInduction, or 0 when rooted at a load
	ops  []chainOp
}

// Generate builds the stressmark program for the given configuration and
// knobs. The knobs are normalised first; the effective (normalised) set
// is returned alongside the program. iterations bounds the loop trip
// count (use a large value and let the simulator's instruction budget cut
// the run).
func Generate(cfg uarch.Config, k Knobs, iterations int64) (*prog.Program, Knobs, error) {
	if err := cfg.Validate(); err != nil {
		return nil, k, err
	}
	if iterations <= 0 {
		return nil, k, fmt.Errorf("codegen: non-positive iterations %d", iterations)
	}
	k = k.Normalize(cfg)
	g := &generator{cfg: cfg, k: k, rng: rand.New(rand.NewSource(k.Seed))}
	p, err := g.build(iterations)
	if err != nil {
		return nil, k, err
	}
	if err := p.Validate(); err != nil {
		return nil, k, fmt.Errorf("codegen: generated program invalid: %w", err)
	}
	if len(p.Body) != k.LoopSize {
		return nil, k, fmt.Errorf("codegen: body has %d instructions, want %d", len(p.Body), k.LoopSize)
	}
	return p, k, nil
}

type generator struct {
	cfg uarch.Config
	k   Knobs
	rng *rand.Rand

	freeRegs  []isa.Reg
	loadSlot  int
	storeSlot int
	gens      []prog.AddrGen
	genBySlot map[int]int

	// persistent registers are written once in the init block and only
	// read in the loop: every reg-reg read keeps their architected values
	// ACE for the whole run, which is how the paper's register-usage knob
	// "determines the number of register values that are ACE".
	persistent []isa.Reg
	persistIdx int

	base   uint64
	region uint64
	stride uint64
}

func (g *generator) build(iterations int64) (*prog.Program, error) {
	k := g.k
	mem := g.cfg.Mem

	g.stride = uint64(mem.L2.LineBytes)
	g.base = 0x4000_0000
	if k.L2Hit {
		// Fit comfortably in L2 but overflow DL1: the chase misses DL1
		// and hits L2, the paper's "L2 miss-free" generator.
		r := uint64(mem.L2.SizeBytes) / 2
		if min := uint64(2 * mem.DL1.SizeBytes); r < min {
			r = min
		}
		g.region = r
	} else {
		// Cover every DTLB entry (page_size × entries, per Figure 2) and
		// at least twice the L2 so the chase always misses.
		r := uint64(mem.DTLB.Entries) * uint64(mem.DTLB.PageBytes)
		if min := uint64(2 * mem.L2.SizeBytes); r < min {
			r = min
		}
		g.region = r
	}
	g.region -= g.region % g.stride

	// Split the general registers (r0, r3..r30) into a rotating value
	// pool for the chains — two live values per scheduler lane plus
	// slack — and a persistent set whose init-written values stay ACE
	// through reg-reg reads.
	all := []isa.Reg{0}
	for r := isa.Reg(3); r < isa.NumArchRegs-1; r++ {
		all = append(all, r)
	}
	poolSize := 2*k.DepDistance + 4
	if poolSize > len(all) {
		poolSize = len(all)
	}
	g.freeRegs = append(g.freeRegs, all[:poolSize]...)
	g.persistent = all[poolSize:]
	g.genBySlot = map[int]int{}
	// Generator 0 is always the chase.
	g.gens = append(g.gens, prog.PointerChase{Base: g.base, Stride: g.stride, Region: g.region})

	chains := g.buildChains()
	body, err := g.schedule(chains, iterations)
	if err != nil {
		return nil, err
	}
	p := &prog.Program{
		Name:           g.name(),
		Init:           g.initBlock(),
		Body:           body,
		AddrGens:       g.gens,
		BrGens:         []prog.BranchGen{prog.LoopBranch{Iterations: iterations}},
		Iterations:     iterations,
		FootprintBytes: g.region,
	}
	return p, nil
}

func (g *generator) name() string {
	mode := "l2miss"
	if g.k.L2Hit {
		mode = "l2hit"
	}
	return fmt.Sprintf("stressmark-%s-loop%d-seed%d", mode, g.k.LoopSize, g.k.Seed)
}

// initBlock defines every architected register so no value is read
// before being written.
func (g *generator) initBlock() []isa.Instr {
	var ins []isa.Instr
	for r := isa.Reg(0); r < isa.NumArchRegs-1; r++ {
		ins = append(ins, isa.Instr{
			Op: isa.OpAdd, Dest: r, Src1: isa.RZero, Imm: int16(r),
			Label: "init",
		})
	}
	return ins
}

// buildChains lays out the dependence chains: the rP chain (miss-
// dependent instructions closing into a dedicated store), the optional
// independent-arithmetic chain, and the load-rooted chains carrying the
// remaining arithmetic.
func (g *generator) buildChains() []chain {
	k := g.k
	var chains []chain

	// rP chain: MissDependent arithmetic ops rooted at the chase
	// register, closed by a store. With zero ops the store consumes rP
	// directly, keeping the chase value ACE.
	rp := chain{root: regChase}
	for i := 0; i < k.MissDependent; i++ {
		rp.ops = append(rp.ops, chainOp{kind: cArith})
	}
	rp.ops = append(rp.ops, chainOp{kind: cStore})
	chains = append(chains, rp)

	if k.NumIndepArith > 0 {
		ind := chain{root: regInduction}
		for i := 0; i < k.NumIndepArith; i++ {
			ind.ops = append(ind.ops, chainOp{kind: cArith})
		}
		ind.ops = append(ind.ops, chainOp{kind: cStore})
		chains = append(chains, ind)
	}

	lc := k.loadChains()
	sweep := k.NumLoads - 1
	folds := k.foldsNeeded()
	arith := k.ChainArith() - folds
	if lc == 0 {
		return chains
	}
	// Distribute chain arithmetic: aim at AvgChainLength per chain, then
	// spread the remainder round-robin.
	lengths := make([]int, lc)
	target := int(k.AvgChainLength + 0.5)
	left := arith
	for i := range lengths {
		n := target
		if n > left {
			n = left
		}
		lengths[i] = n
		left -= n
	}
	for i := 0; left > 0; i = (i + 1) % lc {
		lengths[i]++
		left--
	}
	// Distribute loads: one root per chain while they last, extras fold.
	rootLoads := sweep
	if rootLoads > lc {
		rootLoads = lc
	}
	extraPer := make([]int, lc)
	for i := 0; i < folds; i++ {
		extraPer[i%lc]++
	}
	for c := 0; c < lc; c++ {
		ch := chain{}
		if c < rootLoads {
			ch.ops = append(ch.ops, chainOp{kind: cLoad})
		} else {
			ch.root = regInduction
		}
		for i := 0; i < extraPer[c]; i++ {
			ch.ops = append(ch.ops, chainOp{kind: cFoldLoad}, chainOp{kind: cArith})
		}
		for i := 0; i < lengths[c]; i++ {
			ch.ops = append(ch.ops, chainOp{kind: cArith})
		}
		ch.ops = append(ch.ops, chainOp{kind: cStore})
		chains = append(chains, ch)
	}
	return chains
}

// schedule interleaves the chains across DepDistance lanes in round-robin
// order (so consecutive ops of one chain sit ~DepDistance instructions
// apart), with seeded lane shuffling for placement exploration.
func (g *generator) schedule(chains []chain, iterations int64) ([]isa.Instr, error) {
	k := g.k
	body := make([]isa.Instr, 0, k.LoopSize)
	// Slot 0: the chase load (generator 0); slot 1: induction.
	body = append(body, isa.Instr{
		Op: isa.OpLoad, Dest: regChase, Src1: regChase, AddrGen: 0, Label: "chase",
	})
	body = append(body, isa.Instr{
		Op: isa.OpAdd, Dest: regInduction, Src1: regInduction,
		Imm: int16(g.stride), Label: "induction",
	})

	lanes := k.DepDistance
	if lanes > len(chains) {
		lanes = len(chains)
	}
	if lanes < 1 {
		lanes = 1
	}
	states := make([]*laneState, lanes)
	next := 0
	takeChain := func(ls *laneState) bool {
		if next >= len(chains) {
			ls.ch = nil
			return false
		}
		ls.ch = &chains[next]
		next++
		ls.pos = 0
		ls.cur = ls.ch.root
		ls.hasFold = false
		return true
	}
	for i := range states {
		states[i] = &laneState{}
		takeChain(states[i])
	}

	order := make([]int, lanes)
	for i := range order {
		order[i] = i
	}
	for len(body) < k.LoopSize-1 {
		emitted := false
		if k.Seed != 0 {
			g.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		for _, li := range order {
			ls := states[li]
			if ls.ch == nil || ls.pos >= len(ls.ch.ops) {
				if !takeChain(ls) {
					continue
				}
			}
			if len(body) >= k.LoopSize-1 {
				break
			}
			op := ls.ch.ops[ls.pos]
			ls.pos++
			switch op.kind {
			case cLoad:
				r := g.alloc()
				ls.cur = r
				body = append(body, g.sweepLoad(r))
			case cFoldLoad:
				r := g.alloc()
				ls.fold = r
				ls.hasFold = true
				body = append(body, g.sweepLoad(r))
			case cArith:
				body = append(body, g.arith(ls))
			case cStore:
				body = append(body, g.sweepStore(ls.cur))
				g.release(ls.cur)
				ls.cur = 0
			}
			emitted = true
		}
		if !emitted {
			return nil, fmt.Errorf("codegen: scheduler stalled at %d/%d instructions", len(body), k.LoopSize)
		}
	}
	body = append(body, isa.Instr{
		Op: isa.OpBranch, Dest: isa.RZero, Src1: regInduction, BrGen: 0, Label: "backedge",
	})
	return body, nil
}

// arith emits one chain-arithmetic instruction for the lane, consuming a
// pending fold load if present.
func (g *generator) arith(ls *laneState) isa.Instr {
	k := g.k
	op := isa.OpAdd
	if g.rng.Float64() < k.FracLongLatency {
		op = isa.OpMul
	}
	src1 := ls.cur
	in := isa.Instr{Op: op, Src1: src1}
	switch {
	case ls.hasFold:
		in.RegReg = true
		in.Src2 = ls.fold
		g.release(ls.fold)
		ls.hasFold = false
	case g.rng.Float64() < k.FracRegReg:
		in.RegReg = true
		in.Src2 = g.nextSecondSource()
	default:
		in.Imm = int16(g.rng.Intn(255) + 1)
	}
	// Consume the running value and produce the next one.
	g.release(src1)
	dest := g.alloc()
	in.Dest = dest
	ls.cur = dest
	return in
}

// sweepLoad reads the next 8-byte slot of the previously chased line.
func (g *generator) sweepLoad(dest isa.Reg) isa.Instr {
	slot := g.loadSlot % (g.cfg.Mem.DL1.LineBytes / 8)
	g.loadSlot++
	return isa.Instr{
		Op: isa.OpLoad, Dest: dest, Src1: regInduction,
		AddrGen: g.slotGen(slot), Label: "sweep",
	}
}

// sweepStore writes the next 8-byte slot of the previously chased line.
func (g *generator) sweepStore(data isa.Reg) isa.Instr {
	slot := g.storeSlot % (g.cfg.Mem.DL1.LineBytes / 8)
	g.storeSlot++
	return isa.Instr{
		Op: isa.OpStore, Dest: isa.RZero, Src1: regInduction, Src2: data,
		AddrGen: g.slotGen(slot), Label: "sweep",
	}
}

// slotGen returns (creating on demand) the address generator for one
// 8-byte slot of the lag-1 sweep.
func (g *generator) slotGen(slot int) int {
	if idx, ok := g.genBySlot[slot]; ok {
		return idx
	}
	idx := len(g.gens)
	g.gens = append(g.gens, prog.LineSweep{
		Base: g.base, Stride: g.stride, Region: g.region,
		Offset: uint64(slot * 8), Lag: 1,
	})
	g.genBySlot[slot] = idx
	return idx
}

// alloc takes a value register from the pool.
func (g *generator) alloc() isa.Reg {
	if len(g.freeRegs) == 0 {
		// Cannot happen with MaxDepDistance lanes ≤ 12 and ≤2 live values
		// per lane against a 29-register pool; defensive.
		panic("codegen: register pool exhausted")
	}
	r := g.freeRegs[0]
	g.freeRegs = g.freeRegs[1:]
	return r
}

// release returns a register to the pool. The reserved chase/induction
// registers are never pooled.
func (g *generator) release(r isa.Reg) {
	if r == regChase || r == regInduction {
		return
	}
	g.freeRegs = append(g.freeRegs, r)
}

// nextSecondSource picks a second source for reg-reg arithmetic: the
// persistent registers round-robin, so each reg-reg instruction keeps one
// more init-written architected value ACE (the paper: the generated code
// "utilizes every architected register ... by utilizing the appropriate
// number of reg-reg instructions"). Falls back to the induction register
// when no persistent registers exist.
func (g *generator) nextSecondSource() isa.Reg {
	if len(g.persistent) == 0 {
		return regInduction
	}
	r := g.persistent[g.persistIdx%len(g.persistent)]
	g.persistIdx++
	return r
}
