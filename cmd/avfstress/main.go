// Command avfstress runs the full automated methodology of the paper's
// Figure 2: a genetic-algorithm search over the code-generator knob space
// that produces an AVF stressmark for a microarchitecture and fault-rate
// set, then reports the final knobs, convergence history, per-structure
// AVFs and class SERs.
//
// Usage:
//
//	avfstress [-config baseline|configA] [-rates uniform|rhc|edr]
//	          [-scale 32] [-pop 20] [-gens 16] [-seed 1] [-listing] [-v]
//
// avfstress is a thin client of the same scenario path avfstressd
// serves: the flags build a declarative scenario.Spec whose parametric
// "stressmark" scenario runs through the registry and scheduler, so the
// search shares its weighting, memoisation and cancellation semantics
// with the daemon and the experiment suite (the RHC/EDR studies use the
// paper's core-only fitness). Ctrl-C cancels the search between
// simulations; -v streams per-generation GA convergence.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"avfstress/internal/experiments"
	"avfstress/internal/persist"
	"avfstress/internal/scenario"
)

func main() {
	var (
		config   = flag.String("config", "baseline", "configuration: baseline or configA")
		rates    = flag.String("rates", "uniform", "fault rates: uniform, rhc or edr")
		scale    = flag.Int("scale", 32, "cache scale-down factor (1 = paper-exact)")
		pop      = flag.Int("pop", 20, "GA population size (paper: 50)")
		gens     = flag.Int("gens", 16, "GA generations (paper: 50)")
		seed     = flag.Int64("seed", 1, "GA seed")
		listing  = flag.Bool("listing", false, "print the generated stressmark listing")
		save     = flag.String("save", "", "write the final knobs and result to a JSON file")
		cacheDir = flag.String("cache-dir", "", "persist candidate simulations under this directory (shared across runs and processes; results are bit-identical)")
		verbose  = flag.Bool("v", false, "stream search progress (per-generation best/avg fitness)")
	)
	flag.Parse()

	spec := scenario.Spec{
		Scenarios: []string{"stressmark"},
		Config:    *config,
		Rates:     *rates,
		Mode:      "search",
		Scale:     *scale,
		Seed:      *seed,
		GAPop:     *pop,
		GAGens:    *gens,
	}
	base := experiments.Options{CacheDir: *cacheDir}
	if *verbose {
		base.Logf = func(f string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "# "+f+"\n", args...)
		}
	}
	ctx, names, err := experiments.NewSpecContext(spec, base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "avfstress:", err)
		os.Exit(1)
	}

	cctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(os.Stderr, "# searching %s / %s rates, %d generations × %d individuals\n",
		*config, *rates, *gens, *pop)
	out, err := ctx.Run(cctx, names[0])
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "avfstress: interrupted")
		} else {
			fmt.Fprintln(os.Stderr, "avfstress:", err)
		}
		os.Exit(1)
	}
	if *cacheDir != "" {
		fmt.Fprintf(os.Stderr, "# cache: %s\n", ctx.CacheStats())
	}
	fmt.Print(out)

	if *listing || *save != "" {
		// The search is memoised: fetching the result re-runs nothing.
		cfg, err := experiments.ResolveConfig(*config, *scale)
		fatal(err)
		fr, err := experiments.ResolveRates(*rates)
		fatal(err)
		res, err := ctx.Stressmark(cctx, experiments.SearchKeyFor(*config, *rates), cfg, fr)
		fatal(err)
		if *listing {
			fmt.Printf("\n%s\n", res.Program.Listing())
		}
		if *save != "" {
			err := persist.SaveStressmark(*save, persist.SavedStressmark{
				Config: cfg.Name, Rates: *rates, Knobs: res.Knobs,
				Fitness: res.Fitness, Result: res.Result,
			})
			fatal(err)
			fmt.Fprintf(os.Stderr, "# saved to %s\n", *save)
		}
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "avfstress:", err)
		os.Exit(1)
	}
}
