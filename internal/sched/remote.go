package sched

// Remote execution support for the federated campaign fabric
// (DESIGN.md §13). The scheduler stays a local worker pool; an Executor
// is a claim arbiter layered on top of it. Every fabric node derives
// the same DAG from the same spec and runs it; for jobs marked
// scenario.Job.Lease the executor decides which node runs the closure
// cold. The losers park (off the worker pool) until the winner's claim
// resolves, then run the closure anyway — by the declared-jobs purity
// contract all of its work is memoised in the shared content-addressed
// store, so the re-run is a warm assembly pass that populates local
// in-process state without redoing simulation.

import "context"

// ClaimState is an Executor's verdict on a job claim.
type ClaimState int

const (
	// ClaimOwn: this node holds the claim and must run the job cold,
	// then Release it.
	ClaimOwn ClaimState = iota
	// ClaimWait: another live node holds the claim; Await its outcome.
	ClaimWait
	// ClaimDone: a node already completed the job; run the closure
	// warm (no Release — the caller never held the claim).
	ClaimDone
)

// Executor arbitrates leased jobs across fabric nodes. Implementations
// must be safe for concurrent use, and Release must be a no-op for a
// key the caller does not currently own (a claim may have been stolen
// while the job ran).
//
// Executor failures are never fatal to a run: on any error the
// scheduler falls back to running the job locally, unarbitrated —
// duplicated work at worst, never a missing result.
type Executor interface {
	// TryAcquire attempts to claim key without blocking.
	TryAcquire(key string) (ClaimState, error)
	// Await blocks until the current claim on key resolves and then
	// re-attempts acquisition, so a claim forfeited by a dead node
	// transfers to a waiter (work stealing): ClaimOwn means this node
	// took the claim over and must run the job cold.
	Await(ctx context.Context, key string) (ClaimState, error)
	// Release resolves a claim this node holds; err reports whether the
	// job succeeded (nil) so waiters know whether its results exist.
	Release(key string, err error)
}

// claimAndRun wraps runAttempts with the executor protocol for leased
// nodes. sem is the run's worker semaphore, held by the caller: a node
// waiting on a peer's claim parks off the pool (releasing its slot) so
// remote waits never starve local jobs of workers, and re-acquires a
// slot before running.
func claimAndRun(ctx context.Context, n *node, opts Options, sem chan struct{}) error {
	ex := opts.Executor
	if ex == nil || !n.lease {
		return runAttempts(ctx, n, opts)
	}
	st, err := ex.TryAcquire(n.key)
	if err != nil {
		return runAttempts(ctx, n, opts) // fabric unreachable: run local
	}
	if st == ClaimWait {
		<-sem
		st, err = ex.Await(ctx, n.key)
		// Unconditionally re-acquire so the caller's release stays
		// balanced; on cancellation running jobs drain and free slots,
		// so this always terminates.
		sem <- struct{}{}
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			// Await failed but the fabric may still think a peer holds
			// the claim; running locally is safe (duplicated at worst).
			return runAttempts(ctx, n, opts)
		}
	}
	if st == ClaimOwn {
		rerr := runAttempts(ctx, n, opts)
		ex.Release(n.key, rerr)
		return rerr
	}
	// ClaimDone: a peer ran the job cold; run it warm to assemble this
	// node's in-process state from the shared store.
	return runAttempts(ctx, n, opts)
}
