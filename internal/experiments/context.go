// Package experiments regenerates every table and figure of the paper's
// evaluation (Figures 3-9, Tables I-III, and the §VI instantaneous
// worst-case analysis). Each experiment is a method on Context, which
// caches workload simulations and stressmark searches so the full suite
// shares work, and returns a typed result whose String method renders the
// paper-style table or ASCII chart.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"avfstress/internal/avf"
	"avfstress/internal/codegen"
	"avfstress/internal/core"
	"avfstress/internal/ga"
	"avfstress/internal/pipe"
	"avfstress/internal/prog"
	"avfstress/internal/scenario"
	"avfstress/internal/sched"
	"avfstress/internal/simcache"
	"avfstress/internal/uarch"
	"avfstress/internal/workloads"
)

// Options scopes an experiment run.
type Options struct {
	// Scale divides all cache/TLB capacities (uarch.Scaled); the core
	// stays paper-exact. 1 reproduces the full Table I geometry and
	// needs paper-scale instruction budgets; the default 32 reaches
	// lifetime steady state within a few hundred thousand instructions.
	Scale int
	// Seed drives every stochastic component.
	Seed int64
	// GAPop and GAGens size the stressmark searches (paper: 50×50).
	GAPop, GAGens int
	// UseReferenceKnobs skips the GA searches and evaluates the paper's
	// published final knob settings directly (fast path for benchmarks).
	UseReferenceKnobs bool
	// WorkloadInstr/WorkloadWarmup budget each workload simulation;
	// zero derives them from the scaled configuration.
	WorkloadInstr, WorkloadWarmup int64
	// CheckpointInterval tunes fault-injection fork-replay (see
	// inject.Options.CheckpointInterval): 0 = automatic, >0 = a fixed
	// cycle interval, <0 = disabled. Replay speed only; results are
	// identical at any setting.
	CheckpointInterval int64
	// PruneStatic toggles static liveness pruning of fault-injection
	// campaigns (see inject.Options.PruneStatic): ≥0 = enabled (0 is
	// the default), <0 = disabled.
	PruneStatic int
	// Parallelism bounds each concurrency layer independently: the
	// scheduler's concurrent scenario jobs, a workload suite's
	// concurrent simulations and a GA search's concurrent evaluations
	// (0 = GOMAXPROCS each). Layers compose, so transient peaks can
	// exceed it; actual CPU parallelism stays capped by GOMAXPROCS.
	Parallelism int
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...interface{})

	// Retry bounds scheduler retries of transiently failing jobs
	// (sched.IsTransient; zero value: no retries). Retries and
	// deadlines never change results — every job is deterministic and
	// memoised — only whether and when a run fails.
	Retry sched.RetryPolicy
	// OnRetry, when set, observes every scheduler retry decision.
	OnRetry func(key string, attempt int, err error, backoff time.Duration)
	// JobTimeout deadlines each scheduled job attempt (0 = none).
	JobTimeout time.Duration
	// Executor, when set, arbitrates leased jobs across campaign-fabric
	// nodes (DESIGN.md §13). It is threaded into every scheduler run
	// this context starts, including fault-injection campaign fan-outs.
	// Nil (the default) runs everything locally.
	Executor sched.Executor

	// Cache supplies the content-addressed simulation store shared by
	// every experiment (nil: the context builds its own, with a disk
	// tier under CacheDir when set). Cached results are bit-identical to
	// fresh simulations, so experiment output does not depend on cache
	// state. DisableCache turns per-simulation memoisation off entirely
	// (differential tests).
	Cache        *simcache.Store
	CacheDir     string
	DisableCache bool
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 32
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.GAPop <= 0 {
		o.GAPop = 14
	}
	if o.GAGens <= 0 {
		o.GAGens = 12
	}
	return o
}

// flight memoises keyed computations with singleflight semantics:
// concurrent callers of one key share a single computation, successful
// values are memoised forever, and errors (including cancellations) are
// handed to every waiter but never memoised — a later call retries.
type flight[T any] struct {
	mu       sync.Mutex
	done     map[string]T
	inflight map[string]*flightCall[T]
}

type flightCall[T any] struct {
	ch  chan struct{}
	val T
	err error
}

func (f *flight[T]) do(key string, compute func() (T, error)) (T, error) {
	f.mu.Lock()
	if f.done == nil {
		f.done = map[string]T{}
		f.inflight = map[string]*flightCall[T]{}
	}
	if v, ok := f.done[key]; ok {
		f.mu.Unlock()
		return v, nil
	}
	if c, ok := f.inflight[key]; ok {
		f.mu.Unlock()
		<-c.ch
		return c.val, c.err
	}
	c := &flightCall[T]{ch: make(chan struct{})}
	f.inflight[key] = c
	f.mu.Unlock()

	c.val, c.err = compute()
	f.mu.Lock()
	delete(f.inflight, key)
	if c.err == nil {
		f.done[key] = c.val
	}
	f.mu.Unlock()
	close(c.ch)
	return c.val, c.err
}

// Context caches shared work across experiments at two levels: the
// wl/sm flights memoise whole workload suites and stressmark searches
// (keyed by configuration fingerprint, so configurations sharing a
// Name can never alias; concurrent scenario jobs requesting one suite
// share a single computation), and every individual simulation
// underneath is routed through a content-addressed simcache.Store,
// which also deduplicates work across contexts and — with a disk tier —
// processes.
type Context struct {
	Opts     Options
	Baseline uarch.Config
	ConfigA  uarch.Config

	cache *simcache.Store

	wl flight[[]*avf.Result]
	sm flight[*core.SearchResult]
	pv flight[*avf.Result]
	fi flight[*InjectionStudy]

	regOnce sync.Once
	reg     *scenario.Registry
}

// NewContext prepares a context for the given options.
func NewContext(opts Options) *Context {
	opts = opts.withDefaults()
	cache := opts.Cache
	if opts.DisableCache {
		cache = nil // wins over an injected store: "off entirely"
	} else if cache == nil {
		cache = simcache.New(simcache.Options{Dir: opts.CacheDir})
	}
	return &Context{
		Opts:     opts,
		Baseline: uarch.Scaled(uarch.Baseline(), opts.Scale),
		ConfigA:  uarch.Scaled(uarch.ConfigA(), opts.Scale),
		cache:    cache,
	}
}

// Cache returns the context's simulation store (nil when disabled).
func (c *Context) Cache() *simcache.Store { return c.cache }

// CacheStats reports the store's traffic counters (zero when disabled).
func (c *Context) CacheStats() simcache.Stats { return c.cache.Stats() }

func (c *Context) logf(format string, args ...interface{}) {
	if c.Opts.Logf != nil {
		c.Opts.Logf(format, args...)
	}
}

// workloadBudget sizes proxy simulations: warmup past the cold start,
// then roughly two L2 traversals' worth of instructions.
func (c *Context) workloadBudget() pipe.RunConfig {
	rc := pipe.RunConfig{
		MaxInstructions:    c.Opts.WorkloadInstr,
		WarmupInstructions: c.Opts.WorkloadWarmup,
	}
	if rc.MaxInstructions == 0 {
		rc.MaxInstructions = 160_000
		rc.WarmupInstructions = 60_000
	}
	return rc
}

// Workloads simulates (once, cached) the 33-proxy suite on cfg. The
// suite is keyed by the configuration fingerprint — never by Name alone,
// which two differently-scaled configurations could share — and each
// individual simulation is content-addressed in the simcache store, so
// other experiments, contexts and processes re-using a workload result
// pay for it once. Concurrent callers (scenario jobs) share one
// computation; cancelling ctx stops the suite between simulations.
func (c *Context) Workloads(ctx context.Context, cfg uarch.Config) ([]*avf.Result, error) {
	cfgFP := cfg.Fingerprint()
	return c.wl.do(cfgFP, func() ([]*avf.Result, error) {
		profiles := workloads.Profiles()
		results := make([]*avf.Result, len(profiles))
		errs := make([]error, len(profiles))
		par := c.Opts.Parallelism
		if par <= 0 {
			par = runtime.GOMAXPROCS(0)
		}
		pool, err := pipe.NewPool(cfg)
		if err != nil {
			return nil, err
		}
		sem := make(chan struct{}, par)
		var wg sync.WaitGroup
		rc := c.workloadBudget()
		rcFP := rc.Fingerprint()
		for i, pf := range profiles {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, pf workloads.Profile) {
				defer wg.Done()
				defer func() { <-sem }()
				if err := ctx.Err(); err != nil {
					errs[i] = err
					return
				}
				p, err := pf.Build(cfg, c.Opts.Seed)
				if err != nil {
					errs[i] = err
					return
				}
				key := c.cache.Key(cfgFP, "prog:"+p.Fingerprint(), rcFP)
				results[i], errs[i] = c.cache.Do(key, func() (*avf.Result, error) {
					return pool.Simulate(p, rc)
				})
			}(i, pf)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("experiments: workload %s: %w", profiles[i].Name, err)
			}
		}
		c.logf("simulated %d workload proxies on %s", len(results), cfg.Name)
		return results, nil
	})
}

// WorkloadsBySuite splits cached baseline results by suite.
func (c *Context) WorkloadsBySuite(ctx context.Context, cfg uarch.Config, s workloads.Suite) ([]*avf.Result, error) {
	all, err := c.Workloads(ctx, cfg)
	if err != nil {
		return nil, err
	}
	var out []*avf.Result
	for i, pf := range workloads.Profiles() {
		if pf.Suite == s {
			out = append(out, all[i])
		}
	}
	return out, nil
}

// ReferenceKnobs returns the paper's published final GA knob settings for
// the named search (Figures 5a, 8c, 8d and 9b), used as the no-GA fast
// path and as regression anchors in tests.
func ReferenceKnobs(key string) (codegen.Knobs, error) {
	switch key {
	case "baseline":
		return codegen.Knobs{LoopSize: 81, NumLoads: 29, NumStores: 28,
			NumIndepArith: 5, MissDependent: 7, AvgChainLength: 2.14,
			DepDistance: 6, FracLongLatency: 0.8, FracRegReg: 0.93, Seed: 42}, nil
	case "rhc":
		return codegen.Knobs{LoopSize: 74, NumLoads: 20, NumStores: 20,
			NumIndepArith: 11, MissDependent: 4, AvgChainLength: 2.7,
			DepDistance: 1, FracLongLatency: 0.7, FracRegReg: 0.52, Seed: 42}, nil
	case "edr":
		return codegen.Knobs{LoopSize: 54, NumLoads: 2, NumStores: 6,
			NumIndepArith: 5, MissDependent: 15, AvgChainLength: 6.5,
			DepDistance: 1, FracLongLatency: 0.9, FracRegReg: 0.4, Seed: 42,
			L2Hit: true}, nil
	case "configA":
		return codegen.Knobs{LoopSize: 91, NumLoads: 29, NumStores: 29,
			NumIndepArith: 5, MissDependent: 14, AvgChainLength: 2.14,
			DepDistance: 1, FracLongLatency: 0.6, FracRegReg: 0.96, Seed: 42}, nil
	}
	return codegen.Knobs{}, fmt.Errorf("experiments: no reference knobs for %q", key)
}

// Stressmark runs (once, cached) the stressmark search for (key, cfg,
// rates). With UseReferenceKnobs it evaluates the paper's published knobs
// instead of searching. The memo key covers the configuration
// fingerprint and the rate vector, not just the search key, so the same
// key name against two configurations (or rate sets) never aliases.
// Concurrent callers share one search; cancelling ctx stops the GA
// within one generation and nothing partial is memoised.
func (c *Context) Stressmark(ctx context.Context, key string, cfg uarch.Config, rates uarch.FaultRates) (*core.SearchResult, error) {
	smKey := key + "\x00" + cfg.Fingerprint() + "\x00" + rates.Fingerprint()
	return c.sm.do(smKey, func() (*core.SearchResult, error) {
		var (
			res *core.SearchResult
			err error
		)
		if c.Opts.UseReferenceKnobs {
			res, err = c.evaluateReference(ctx, key, cfg, rates)
		} else {
			c.logf("GA search %q on %s (%d×%d)...", key, cfg.Name, c.Opts.GAGens, c.Opts.GAPop)
			spec := core.SearchSpec{
				Config:  cfg,
				Rates:   rates,
				Weights: searchWeights(key),
				GA: ga.Config{
					PopSize:     c.Opts.GAPop,
					Generations: c.Opts.GAGens,
					Seed:        c.Opts.Seed,
					Parallelism: c.Opts.Parallelism,
				},
				Cache: c.cache,
			}
			if c.Opts.Logf != nil {
				spec.Logf = func(f string, args ...interface{}) {
					c.logf("search %q: "+f, append([]interface{}{key}, args...)...)
				}
			}
			res, err = core.Search(ctx, spec)
		}
		if err != nil {
			return nil, fmt.Errorf("experiments: stressmark %q: %w", key, err)
		}
		c.logf("stressmark %q: fitness %.3f, knobs: loop=%d loads=%d stores=%d l2hit=%v",
			key, res.Fitness, res.Knobs.LoopSize, res.Knobs.NumLoads, res.Knobs.NumStores, res.Knobs.L2Hit)
		return res, nil
	})
}

// searchWeights selects the fitness weighting per study. The RHC/EDR
// protection studies are evaluated on core SER in the paper (Figure 7
// presents QS and QS+RF only, and the published EDR knobs carry just two
// loads — clearly not optimised for cache coverage), so those searches
// use a core-only fitness; with it, the EDR search flips to the L2-hit
// generator exactly as §VI-A reports. The baseline and Configuration A
// searches use the balanced default.
func searchWeights(key string) avf.Weights {
	if key == "rhc" || key == "edr" {
		return avf.Weights{Core: 1}
	}
	return avf.DefaultWeights()
}

// evaluateReference builds a SearchResult from published knobs without a
// search.
func (c *Context) evaluateReference(ctx context.Context, key string, cfg uarch.Config, rates uarch.FaultRates) (*core.SearchResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	k, err := ReferenceKnobs(key)
	if err != nil {
		return nil, err
	}
	p, k, err := codegen.Generate(cfg, k, 1<<40)
	if err != nil {
		return nil, err
	}
	rc := core.DefaultEvalBudget(cfg)
	rc.MaxInstructions *= 2
	cacheKey := c.cache.Key(cfg.Fingerprint(), "knobs:"+k.Fingerprint(), rc.Fingerprint())
	res, err := c.cache.Do(cacheKey, func() (*avf.Result, error) {
		return pipe.Simulate(cfg, p, rc)
	})
	if err != nil {
		return nil, err
	}
	f := res.Fitness(cfg, rates, avf.DefaultWeights())
	return &core.SearchResult{
		Knobs: k, Program: p, Result: res, Fitness: f,
		History: []ga.GenStats{{Generation: 0, Best: f, Avg: f, Worst: f}},
	}, nil
}

// StressmarkProgram is a convenience for examples/tools: the generated
// best program for a key.
func (c *Context) StressmarkProgram(ctx context.Context, key string, cfg uarch.Config, rates uarch.FaultRates) (*prog.Program, error) {
	r, err := c.Stressmark(ctx, key, cfg, rates)
	if err != nil {
		return nil, err
	}
	return r.Program, nil
}

// PowerVirus simulates (once, cached) the §IV-B maximum-activity loop
// on the baseline configuration.
func (c *Context) PowerVirus(ctx context.Context) (*avf.Result, error) {
	cfg := c.Baseline
	return c.pv.do("pv\x00"+cfg.Fingerprint(), func() (*avf.Result, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pv, err := powerVirus(cfg)
		if err != nil {
			return nil, err
		}
		rc := c.workloadBudget()
		key := c.cache.Key(cfg.Fingerprint(), "prog:"+pv.Fingerprint(), rc.Fingerprint())
		return c.cache.Do(key, func() (*avf.Result, error) {
			return pipe.Simulate(cfg, pv, rc)
		})
	})
}

// sortedByClass returns indices of results ordered by descending class
// SER (presentation order for charts).
func sortedByClass(results []*avf.Result, cfg uarch.Config, rates uarch.FaultRates, cl avf.Class) []int {
	idx := make([]int, len(results))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return results[idx[a]].SER(cfg, rates, cl) > results[idx[b]].SER(cfg, rates, cl)
	})
	return idx
}
