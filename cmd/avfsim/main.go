// Command avfsim simulates a single program — a named workload proxy or
// a stressmark from knobs — and prints the per-structure AVF report and
// class-normalised SERs.
//
// Usage:
//
//	avfsim -workload 403.gcc [-config baseline] [-scale 32]
//	avfsim -stressmark baseline [-rates rhc]
//	avfsim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"avfstress/internal/avf"
	"avfstress/internal/codegen"
	"avfstress/internal/experiments"
	"avfstress/internal/persist"
	"avfstress/internal/pipe"
	"avfstress/internal/prog"
	"avfstress/internal/uarch"
	"avfstress/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "", "workload proxy name (see -list)")
		stress   = flag.String("stressmark", "", "reference stressmark: baseline, rhc, edr or configA")
		knobFile = flag.String("knobs", "", "JSON stressmark file written by avfstress -save")
		config   = flag.String("config", "baseline", "configuration: baseline or configA")
		scale    = flag.Int("scale", 32, "cache scale-down factor")
		rates    = flag.String("rates", "uniform", "fault rates: uniform, rhc or edr")
		instrs   = flag.Int64("instrs", 200_000, "committed-instruction budget")
		warmup   = flag.Int64("warmup", 80_000, "warmup instructions")
		seed     = flag.Int64("seed", 1, "workload synthesis seed")
		list     = flag.Bool("list", false, "list workload proxies and exit")
	)
	flag.Parse()

	if *list {
		for _, pf := range workloads.Profiles() {
			fmt.Printf("%-16s (%s)\n", pf.Name, pf.Suite)
		}
		return
	}
	cfg := uarch.Baseline()
	if *config == "configA" {
		cfg = uarch.ConfigA()
	}
	cfg = uarch.Scaled(cfg, *scale)

	var fr uarch.FaultRates
	switch *rates {
	case "uniform":
		fr = uarch.UniformRates(1)
	case "rhc":
		fr = uarch.RHCRates()
	case "edr":
		fr = uarch.EDRRates()
	default:
		fmt.Fprintf(os.Stderr, "avfsim: unknown rates %q\n", *rates)
		os.Exit(1)
	}

	var p *prog.Program
	switch {
	case *knobFile != "":
		saved, err := persist.LoadStressmark(*knobFile)
		fatal(err)
		p, _, err = codegen.Generate(cfg, saved.Knobs, 1<<40)
		fatal(err)
	case *workload != "":
		pf, err := workloads.ByName(*workload)
		fatal(err)
		p, err = pf.Build(cfg, *seed)
		fatal(err)
	case *stress != "":
		k, err := experiments.ReferenceKnobs(*stress)
		fatal(err)
		p, _, err = codegen.Generate(cfg, k, 1<<40)
		fatal(err)
	default:
		fmt.Fprintln(os.Stderr, "avfsim: need -workload, -stressmark or -knobs (or -list)")
		os.Exit(2)
	}

	res, err := pipe.Simulate(cfg, p, pipe.RunConfig{
		MaxInstructions: *instrs, WarmupInstructions: *warmup,
	})
	fatal(err)

	fmt.Print(res)
	fmt.Printf("\nIPC %.3f  mispredict %.3f  DL1 miss %.3f  L2 miss %.3f  DTLB miss %.4f\n",
		res.IPC, res.MispredictRate, res.DL1MissRate, res.L2MissRate, res.DTLBMissRate)
	fmt.Printf("occupancy: ROB %.2f IQ %.2f LQ %.2f SQ %.2f  wrong-path %.3f  ACE instrs %.3f\n",
		res.OccupancyROB, res.OccupancyIQ, res.OccupancyLQ, res.OccupancySQ,
		res.WrongPathFrac, res.ACEInstrFrac)
	fmt.Printf("\nSER (units/bit, %s rates):\n", *rates)
	for _, cl := range avf.AllClasses() {
		fmt.Printf("  %-10s %.3f\n", cl, res.SER(cfg, fr, cl))
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "avfsim:", err)
		os.Exit(1)
	}
}
