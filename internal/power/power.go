// Package power is a deliberately simple activity-based dynamic-power
// proxy for the simulated core, used to reproduce the paper's §IV-B
// argument that power viruses and AVF stressmarks are different animals:
//
//	"There is no correlation between power and state resident in the
//	core. For example, long latency stalls increase AVF, but provide
//	opportunities to reduce core power using clock and/or power gating.
//	Power dissipation is typically maximized when the processor is able
//	to issue multiple arithmetic instructions at full bandwidth, but
//	this typically implies that the occupancy of other queues are less
//	than 100%. Furthermore, un-ACE instructions consume power but do
//	not contribute to AVF."
//
// The proxy charges per-event energies (fetch, issue by unit class,
// cache access, misprediction recovery) plus a leakage/clock floor, and
// reports average energy per cycle in arbitrary units — only relative
// magnitudes matter, exactly as with the paper's SER units.
package power

import "avfstress/internal/avf"

// Weights are per-event energy charges in arbitrary units. The defaults
// order units by typical CMOS activity cost (multiplier > ALU > cache
// access > fetch); their precise values only shift the proxy's scale.
type Weights struct {
	Fetch      float64 // per fetched instruction (wrong path included)
	ALU        float64 // per ALU issue
	Mul        float64 // per multiplier issue
	Mem        float64 // per load/store issue (AGU + LSQ CAM)
	Branch     float64 // per branch issue
	DL1Access  float64
	L2Access   float64
	Mispredict float64 // recovery energy
	Idle       float64 // per-cycle clock/leakage floor
}

// DefaultWeights returns the documented default charges.
func DefaultWeights() Weights {
	return Weights{
		Fetch:      0.5,
		ALU:        1.0,
		Mul:        3.0,
		Mem:        1.5,
		Branch:     0.8,
		DL1Access:  1.2,
		L2Access:   4.0,
		Mispredict: 6.0,
		Idle:       1.0,
	}
}

// Activity is the event record the pipeline exports for the proxy.
type Activity struct {
	Cycles      int64
	Fetched     int64
	IssuedALU   int64
	IssuedMul   int64
	IssuedMem   int64
	IssuedBr    int64
	DL1Accesses int64
	L2Accesses  int64
	Mispredicts int64
}

// EnergyPerCycle evaluates the proxy: average energy per cycle in
// arbitrary units.
func EnergyPerCycle(a Activity, w Weights) float64 {
	if a.Cycles <= 0 {
		return 0
	}
	e := w.Fetch*float64(a.Fetched) +
		w.ALU*float64(a.IssuedALU) +
		w.Mul*float64(a.IssuedMul) +
		w.Mem*float64(a.IssuedMem) +
		w.Branch*float64(a.IssuedBr) +
		w.DL1Access*float64(a.DL1Accesses) +
		w.L2Access*float64(a.L2Accesses) +
		w.Mispredict*float64(a.Mispredicts)
	return e/float64(a.Cycles) + w.Idle
}

// FromResult derives the proxy input from a simulation result.
func FromResult(r *avf.Result) Activity {
	return Activity{
		Cycles:      r.Cycles,
		Fetched:     r.Activity.Fetched,
		IssuedALU:   r.Activity.IssuedALU,
		IssuedMul:   r.Activity.IssuedMul,
		IssuedMem:   r.Activity.IssuedMem,
		IssuedBr:    r.Activity.IssuedBr,
		DL1Accesses: r.Activity.DL1Accesses,
		L2Accesses:  r.Activity.L2Accesses,
		Mispredicts: r.Activity.Mispredicts,
	}
}

// Of is the one-call convenience: proxy power of a result under the
// default weights.
func Of(r *avf.Result) float64 {
	return EnergyPerCycle(FromResult(r), DefaultWeights())
}
