package prog

import "fmt"

// AddrGen produces the effective address of a memory instruction as a
// pure function of the loop iteration. Purity (no internal state) is what
// keeps wrong-path fetch and replay consistent.
type AddrGen interface {
	// Addr returns the effective address for the given iteration.
	// Init-block instructions pass iter == -1.
	Addr(iter int64) uint64
	fmt.Stringer
}

// BranchGen produces branch outcomes as a pure function of the iteration.
type BranchGen interface {
	Taken(iter int64) bool
	fmt.Stringer
}

// PointerChase walks a region with a fixed stride, wrapping at the region
// boundary. With Stride = line size and Region larger than the L2 it
// reproduces the paper's self-dependent strided load that misses in L2
// with no memory-level parallelism (the dependence itself is expressed
// through the chase register in the generated code).
type PointerChase struct {
	Base   uint64
	Stride uint64
	Region uint64 // bytes; must be a multiple of Stride
}

// Addr implements AddrGen.
func (g PointerChase) Addr(iter int64) uint64 {
	if iter < 0 {
		return g.Base
	}
	return g.Base + wrap(uint64(iter)*g.Stride, g.Region)
}

// String renders the PointerChase for display.
func (g PointerChase) String() string {
	return fmt.Sprintf("chase base=%#x stride=%d region=%d", g.Base, g.Stride, g.Region)
}

// LineSweep addresses a word inside the line touched Lag iterations ago
// by a companion PointerChase. The paper's generator uses this for the
// "load and store operations (hits) to cover every location in the
// previous cache line", which is what drives every byte of DL1 and the
// DTLB to 100% ACE.
type LineSweep struct {
	Base   uint64
	Stride uint64
	Region uint64
	Offset uint64 // byte offset within the line
	Lag    int64  // how many iterations behind the chase
}

// Addr implements AddrGen.
func (g LineSweep) Addr(iter int64) uint64 {
	i := iter - g.Lag
	if i < 0 {
		i = 0
	}
	return g.Base + wrap(uint64(i)*g.Stride, g.Region) + g.Offset
}

// String renders the LineSweep for display.
func (g LineSweep) String() string {
	return fmt.Sprintf("sweep base=%#x stride=%d region=%d off=%d lag=%d",
		g.Base, g.Stride, g.Region, g.Offset, g.Lag)
}

// Fixed always returns the same address (scratch/spill slots).
type Fixed struct{ Address uint64 }

// Addr implements AddrGen.
func (g Fixed) Addr(int64) uint64 { return g.Address }

// String renders the Fixed for display.
func (g Fixed) String() string { return fmt.Sprintf("fixed %#x", g.Address) }

// RandomWalk produces pseudo-random word-aligned addresses within a
// region. The workload synthesiser uses it to model irregular pointer
// traffic (mcf, omnetpp, ...). Deterministic in (Seed, iter).
type RandomWalk struct {
	Base   uint64
	Region uint64
	Seed   uint64
	Align  uint64 // alignment in bytes; 0 means 8
}

// Addr implements AddrGen.
func (g RandomWalk) Addr(iter int64) uint64 {
	align := g.Align
	if align == 0 {
		align = 8
	}
	h := mix(g.Seed, uint64(iter)+1)
	off := (h % (g.Region / align)) * align
	return g.Base + off
}

// String renders the RandomWalk for display.
func (g RandomWalk) String() string {
	return fmt.Sprintf("rand base=%#x region=%d seed=%d", g.Base, g.Region, g.Seed)
}

// StridedBlock walks a region with a stride like PointerChase but offset
// by a per-generator phase, so several independent streams can coexist
// (array codes in the FP proxies).
type StridedBlock struct {
	Base   uint64
	Stride uint64
	Region uint64
	Phase  uint64
}

// Addr implements AddrGen.
func (g StridedBlock) Addr(iter int64) uint64 {
	if iter < 0 {
		iter = 0
	}
	return g.Base + wrap(g.Phase+uint64(iter)*g.Stride, g.Region)
}

// String renders the StridedBlock for display.
func (g StridedBlock) String() string {
	return fmt.Sprintf("stride base=%#x stride=%d region=%d phase=%d",
		g.Base, g.Stride, g.Region, g.Phase)
}

// LoopBranch is the loop backedge: taken on every iteration except the
// last, which exits the loop.
type LoopBranch struct{ Iterations int64 }

// Taken implements BranchGen.
func (g LoopBranch) Taken(iter int64) bool { return iter < g.Iterations-1 }

// String renders the LoopBranch for display.
func (g LoopBranch) String() string { return fmt.Sprintf("loop n=%d", g.Iterations) }

// Bernoulli is a data-dependent branch taken with probability P,
// deterministic in (Seed, iter). Both paths of such a branch reconverge
// immediately in the synthetic programs, so mispredictions cost a flush
// and redirect without changing the committed instruction sequence —
// exactly the AVF-reducing effect the paper describes for front-end
// misses.
type Bernoulli struct {
	Seed uint64
	P    float64
}

// Taken implements BranchGen.
func (g Bernoulli) Taken(iter int64) bool {
	h := mix(g.Seed, uint64(iter)+0x9e37)
	return float64(h%1_000_000) < g.P*1_000_000
}

// String renders the Bernoulli for display.
func (g Bernoulli) String() string { return fmt.Sprintf("bernoulli p=%.3f seed=%d", g.P, g.Seed) }

// Periodic is a branch taken on iterations where (iter+Phase)%Period <
// Duty. It is highly predictable by the local-history predictor,
// modelling well-structured inner loops. Branches sharing one (Period,
// Duty) pattern at different phases alias constructively in a
// history-indexed second-level table, as their history windows come from
// the same cyclic sequence.
type Periodic struct {
	Period int64
	Duty   int64
	Phase  int64
}

// Taken implements BranchGen.
func (g Periodic) Taken(iter int64) bool {
	if g.Period <= 0 {
		return true
	}
	v := iter + g.Phase
	if v >= 0 && g.Period&(g.Period-1) == 0 {
		// Power-of-two period: mask instead of a 64-bit divide.
		return v&(g.Period-1) < g.Duty
	}
	m := v % g.Period
	if m < 0 {
		m += g.Period
	}
	return m < g.Duty
}

// String renders the Periodic for display.
func (g Periodic) String() string {
	return fmt.Sprintf("periodic %d/%d+%d", g.Duty, g.Period, g.Phase)
}

// wrap reduces v modulo region, using a mask when the region is a power
// of two (the usual case: regions derive from cache/TLB geometries) —
// a 64-bit divide costs tens of cycles on the simulator's per-access
// hot path.
func wrap(v, region uint64) uint64 {
	if region&(region-1) == 0 {
		return v & (region - 1)
	}
	return v % region
}

// mix is a 64-bit stateless hash (splitmix64 finaliser) used by the pure
// pseudo-random generators.
func mix(a, b uint64) uint64 {
	z := a ^ (b * 0x9e3779b97f4a7c15)
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
