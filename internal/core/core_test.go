package core

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"avfstress/internal/avf"
	"avfstress/internal/codegen"
	"avfstress/internal/ga"
	"avfstress/internal/pipe"
	"avfstress/internal/simcache"
	"avfstress/internal/uarch"
)

func testCfg() uarch.Config { return uarch.Scaled(uarch.Baseline(), 32) }

func TestGenesCoverAllKnobs(t *testing.T) {
	gs := Genes(uarch.Baseline())
	if len(gs) != numGenes {
		t.Fatalf("gene count %d, want %d", len(gs), numGenes)
	}
	// Gene ranges adapt to the microarchitecture.
	if gs[gLoopSize].Max != 96 {
		t.Errorf("loop gene max %f, want 1.2×80", gs[gLoopSize].Max)
	}
	if gs[gMissDependent].Max != 20 {
		t.Errorf("miss-dependent gene max %f, want IQ size", gs[gMissDependent].Max)
	}
	ca := Genes(uarch.ConfigA())
	if ca[gLoopSize].Max <= gs[gLoopSize].Max {
		t.Error("Config A loop range should grow with its ROB")
	}
	if ca[gMissDependent].Max != 32 {
		t.Errorf("Config A miss-dependent max %f, want 32", ca[gMissDependent].Max)
	}
}

func TestKnobsGenomeRoundTrip(t *testing.T) {
	k := codegen.Knobs{
		LoopSize: 81, NumLoads: 29, NumStores: 28, NumIndepArith: 5,
		MissDependent: 7, AvgChainLength: 2.14, DepDistance: 6,
		FracLongLatency: 0.8, FracRegReg: 0.93, Seed: 42, L2Hit: true,
	}
	got := KnobsFromGenome(GenomeFromKnobs(k))
	if got != k {
		t.Errorf("round trip lost information:\nin  %+v\nout %+v", k, got)
	}
}

// Property: any genome within the gene ranges decodes to knobs that
// normalise and generate successfully.
func TestQuickGenomeAlwaysFeasible(t *testing.T) {
	cfg := testCfg()
	gs := Genes(cfg)
	f := func(vals [numGenes]uint16) bool {
		g := make(ga.Genome, numGenes)
		for i, gene := range gs {
			g[i] = gene.Min + float64(vals[i])/65535*(gene.Max-gene.Min)
		}
		k := KnobsFromGenome(g).Normalize(cfg)
		_, _, err := codegen.Generate(cfg, k, 1000)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestEvaluateKnobs(t *testing.T) {
	cfg := testCfg()
	k, _ := referenceBaseline()
	f, err := EvaluateKnobs(context.Background(), cfg, uarch.UniformRates(1), avf.DefaultWeights(), k,
		pipe.RunConfig{MaxInstructions: 40_000, WarmupInstructions: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if f <= 0.3 || f > 1 {
		t.Errorf("baseline-knob fitness %f outside the expected (0.3, 1] band", f)
	}
	bad := cfg
	bad.Core.ROBEntries = 0
	if _, err := EvaluateKnobs(context.Background(), bad, uarch.UniformRates(1), avf.DefaultWeights(), k,
		pipe.RunConfig{MaxInstructions: 1000}); err == nil {
		t.Error("invalid config accepted")
	}
}

func referenceBaseline() (codegen.Knobs, error) {
	return codegen.Knobs{
		LoopSize: 81, NumLoads: 29, NumStores: 28, NumIndepArith: 5,
		MissDependent: 7, AvgChainLength: 2.14, DepDistance: 6,
		FracLongLatency: 0.8, FracRegReg: 0.93, Seed: 42,
	}, nil
}

// TestSearchTiny runs a miniature but complete search (the paper's
// Figure 2 loop) and checks its invariants: the search finishes, the
// best knobs are normalised, the final program passes the ACE-closure
// check, and the reported fitness matches a re-evaluation.
func TestSearchTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("GA search in -short mode")
	}
	cfg := testCfg()
	eval := pipe.RunConfig{MaxInstructions: 50_000, WarmupInstructions: 25_000}
	res, err := Search(context.Background(), SearchSpec{
		Config: cfg,
		Eval:   eval,
		Final:  eval,
		GA:     ga.Config{PopSize: 6, Generations: 4, Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Knobs.Validate(cfg); err != nil {
		t.Errorf("best knobs not normalised: %v", err)
	}
	if err := codegen.CheckACEClosure(res.Program); err != nil {
		t.Errorf("best program: %v", err)
	}
	if res.Fitness <= 0 {
		t.Errorf("fitness %f", res.Fitness)
	}
	if len(res.History) != 4 {
		t.Errorf("history has %d generations, want 4", len(res.History))
	}
	if res.Evaluations <= 0 || res.Evaluations > 6*4 {
		t.Errorf("evaluations = %d outside (0, 24]", res.Evaluations)
	}
	if res.Result.ACEInstrFrac < 0.999 {
		t.Errorf("stressmark ACE fraction %.4f, must be 1", res.Result.ACEInstrFrac)
	}
}

// TestSearchSeededBeatsOrMatchesSeed: seeding the population with the
// reference knobs guarantees the search never returns anything worse.
func TestSearchSeededBeatsOrMatchesSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("GA search in -short mode")
	}
	cfg := testCfg()
	eval := pipe.RunConfig{MaxInstructions: 50_000, WarmupInstructions: 25_000}
	k, _ := referenceBaseline()
	seedFit, err := EvaluateKnobs(context.Background(), cfg, uarch.UniformRates(1), avf.DefaultWeights(), k, eval)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Search(context.Background(), SearchSpec{
		Config:    cfg,
		Eval:      eval,
		Final:     eval,
		GA:        ga.Config{PopSize: 6, Generations: 3, Seed: 1},
		SeedKnobs: []codegen.Knobs{k},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The GA's best-ever tracking can only improve on an evaluated seed.
	// Allow the small re-evaluation noise of the final (longer) run.
	if res.Fitness < seedFit*0.93 {
		t.Errorf("seeded search returned %f, seed alone scores %f", res.Fitness, seedFit)
	}
}

// TestSearchSharesSimulationsThroughCache: an identical search against a
// warm store must return the identical result without running a single
// simulation — the cross-process/GA-restart reuse the memo engine is for.
func TestSearchSharesSimulationsThroughCache(t *testing.T) {
	if testing.Short() {
		t.Skip("GA search in -short mode")
	}
	store := simcache.New(simcache.Options{})
	spec := SearchSpec{
		Config: testCfg(),
		Eval:   pipe.RunConfig{MaxInstructions: 40_000, WarmupInstructions: 20_000},
		Final:  pipe.RunConfig{MaxInstructions: 40_000, WarmupInstructions: 20_000},
		GA:     ga.Config{PopSize: 6, Generations: 3, Seed: 4},
		Cache:  store,
	}
	cold, err := Search(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	simulated := store.Stats().Simulated
	if simulated == 0 {
		t.Fatal("cold search did not populate the store")
	}
	warm, err := Search(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Simulated != simulated {
		t.Errorf("warm search re-simulated: %d -> %d", simulated, st.Simulated)
	}
	// Byte-identity of the search outcome across cache states, including
	// the evaluation count (which deliberately counts candidates, not
	// simulations).
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("warm search result differs:\ncold %+v\nwarm %+v", cold, warm)
	}
}

func TestDefaultEvalBudgetScalesWithConfig(t *testing.T) {
	small := DefaultEvalBudget(uarch.Scaled(uarch.Baseline(), 32))
	big := DefaultEvalBudget(uarch.Scaled(uarch.Baseline(), 8))
	if small.MaxInstructions >= big.MaxInstructions {
		t.Error("budget must grow with the L2")
	}
	if small.WarmupInstructions == 0 {
		t.Error("warmup must cover the L2 fill")
	}
	if small.WarmupInstructions >= small.MaxInstructions {
		t.Error("warmup must leave a measurement window")
	}
}

func TestSearchRejectsInvalidConfig(t *testing.T) {
	bad := testCfg()
	bad.Core.IQEntries = 0
	if _, err := Search(context.Background(), SearchSpec{Config: bad}); err == nil {
		t.Error("invalid config accepted")
	}
}

// TestSearchCancellation: cancelling mid-search propagates
// context.Canceled and leaves the shared store uncorrupted — an
// identical search afterwards completes and matches a virgin-store run
// exactly (partial entries are content-addressed and bit-identical, so
// resuming from them changes nothing).
func TestSearchCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("GA search in -short mode")
	}
	store := simcache.New(simcache.Options{})
	spec := SearchSpec{
		Config: testCfg(),
		Eval:   pipe.RunConfig{MaxInstructions: 40_000, WarmupInstructions: 20_000},
		Final:  pipe.RunConfig{MaxInstructions: 40_000, WarmupInstructions: 20_000},
		GA:     ga.Config{PopSize: 6, Generations: 4, Seed: 4, Parallelism: 1},
		Cache:  store,
	}
	ctx, cancel := context.WithCancel(context.Background())
	gens := 0
	cancelSpec := spec
	cancelSpec.Logf = func(string, ...interface{}) {
		if gens++; gens == 1 {
			cancel() // after the first generation's summary line
		}
	}
	if _, err := Search(ctx, cancelSpec); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	partial := store.Stats().Simulated
	resumed, err := Search(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Simulated <= partial {
		t.Logf("note: resume re-simulated nothing beyond the partial %d", partial)
	}
	virgin, err := Search(context.Background(), SearchSpec{
		Config: spec.Config, Eval: spec.Eval, Final: spec.Final, GA: spec.GA,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Fitness != virgin.Fitness || resumed.Knobs != virgin.Knobs ||
		resumed.Evaluations != virgin.Evaluations {
		t.Errorf("search resumed from a cancelled store diverged:\nresumed %+v\nvirgin  %+v",
			resumed.Knobs, virgin.Knobs)
	}
	for i := range virgin.History {
		if resumed.History[i] != virgin.History[i] {
			t.Fatalf("generation %d stats diverge after cancellation", i)
		}
	}
}

// TestSearchCacheDoesNotAlterTrajectory is the system-level regression
// test for the fingerprint-aliasing bug: a search with a content-
// addressed store must return exactly the result of the same search
// with caching disabled (the store may only deduplicate identical
// inputs, never distinct candidates that happen to render alike).
func TestSearchCacheDoesNotAlterTrajectory(t *testing.T) {
	if testing.Short() {
		t.Skip("GA search in -short mode")
	}
	spec := SearchSpec{
		Config: testCfg(),
		Eval:   pipe.RunConfig{MaxInstructions: 40_000, WarmupInstructions: 20_000},
		Final:  pipe.RunConfig{MaxInstructions: 40_000, WarmupInstructions: 20_000},
		GA:     ga.Config{PopSize: 6, Generations: 4, Seed: 4, Parallelism: 1},
	}
	plain, err := Search(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	cached := spec
	cached.Cache = simcache.New(simcache.Options{})
	stored, err := Search(context.Background(), cached)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, stored) {
		t.Errorf("cache changed the search outcome:\nplain  %+v f=%v evals=%d\nstored %+v f=%v evals=%d",
			plain.Knobs, plain.Fitness, plain.Evaluations,
			stored.Knobs, stored.Fitness, stored.Evaluations)
	}
}
