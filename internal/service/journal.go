package service

// The durable job journal (DESIGN.md §11): an append-only file of
// CRC-framed JSON lines recording every accepted submission and every
// terminal outcome. On startup the daemon replays the journal, restores
// terminal jobs as history and resubmits every job that never reached a
// terminal state — and because all simulation work is memoised
// content-addressed in the simcache, a resubmitted job re-runs only the
// work that never completed; its recovered report is byte-identical to
// an uninterrupted run.
//
// Line format: 8 lowercase hex digits of CRC-32C over the JSON bytes, a
// space, the JSON record, '\n'. Appends are fsynced — a job submission
// is durable by the time the client sees 202. Readers skip lines that
// fail the checksum or do not parse (counted, surfaced in /v1/healthz);
// a torn final line from a crash mid-append is therefore tolerated by
// construction. On startup the journal is compacted through the same
// atomic temp+rename discipline as every other durable artefact
// (internal/persist), so it stays bounded by the daemon's job history
// rather than its total lifetime.

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"avfstress/internal/persist"
	"avfstress/internal/scenario"
)

// Journal operations.
const (
	journalOpSubmit = "submit" // a job was accepted
	journalOpEnd    = "end"    // a job reached a terminal state
	journalOpLease  = "lease"  // a fabric job claim was granted to a runner
	journalOpSteal  = "steal"  // a dead runner's job claims were freed
)

// journalRecord is one journal line. Lease/steal records carry the
// runner id in ID and the (hashed) claim key in Key; only job-level
// claims are journalled — cache-compute claims resolve far too often
// to fsync each one, and their outcomes are already durable in the
// content-addressed store.
type journalRecord struct {
	Op string `json:"op"`
	ID string `json:"id"`
	// Submit fields.
	Spec    *scenario.Spec `json:"spec,omitempty"`
	IdemKey string         `json:"idem_key,omitempty"`
	// End fields.
	Status Status `json:"status,omitempty"`
	Error  string `json:"error,omitempty"`
	// Lease/steal fields.
	Key string `json:"key,omitempty"`

	Time time.Time `json:"time"`
}

var journalCRC = crc32.MakeTable(crc32.Castagnoli)

// encodeJournalLine renders one framed journal line.
func encodeJournalLine(rec journalRecord) ([]byte, error) {
	data, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("service: journal encode: %w", err)
	}
	return []byte(fmt.Sprintf("%08x %s\n", crc32.Checksum(data, journalCRC), data)), nil
}

// decodeJournalLine parses one line; any validation failure returns an
// error (the caller skips and counts the line).
func decodeJournalLine(line string) (journalRecord, error) {
	var rec journalRecord
	crcHex, data, ok := strings.Cut(line, " ")
	if !ok || len(crcHex) != 8 {
		return rec, fmt.Errorf("service: journal line has no checksum")
	}
	var want uint32
	if _, err := fmt.Sscanf(crcHex, "%08x", &want); err != nil {
		return rec, fmt.Errorf("service: journal checksum: %w", err)
	}
	if fmt.Sprintf("%08x", want) != crcHex {
		return rec, fmt.Errorf("service: journal checksum %q not canonical", crcHex)
	}
	if got := crc32.Checksum([]byte(data), journalCRC); got != want {
		return rec, fmt.Errorf("service: journal checksum %08x, want %08x", got, want)
	}
	if err := json.Unmarshal([]byte(data), &rec); err != nil {
		return rec, fmt.Errorf("service: journal decode: %w", err)
	}
	switch rec.Op {
	case journalOpSubmit, journalOpEnd, journalOpLease, journalOpSteal:
	default:
		return rec, fmt.Errorf("service: journal op %q unknown", rec.Op)
	}
	if rec.ID == "" {
		return rec, fmt.Errorf("service: journal record has no job id")
	}
	return rec, nil
}

// journal is the open append handle plus its health counters.
type journal struct {
	mu         sync.Mutex
	path       string
	f          *os.File
	disabled   bool // closed, or crash-simulated by tests
	records    int64
	corrupt    int64
	appendErrs int64
}

// openJournal reads (tolerantly) and opens the journal at path,
// returning the surviving records in file order.
func openJournal(path string) (*journal, []journalRecord, error) {
	jl := &journal{path: path}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("service: journal: %w", err)
	}
	var recs []journalRecord
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		rec, derr := decodeJournalLine(line)
		if derr != nil {
			jl.corrupt++
			continue
		}
		recs = append(recs, rec)
	}
	jl.records = int64(len(recs))
	if err := jl.openFile(); err != nil {
		return nil, nil, err
	}
	return jl, recs, nil
}

func (jl *journal) openFile() error {
	if dir := filepath.Dir(jl.path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("service: journal: %w", err)
		}
	}
	f, err := os.OpenFile(jl.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("service: journal: %w", err)
	}
	jl.f = f
	return nil
}

// append durably writes one record (write + fsync under the lock, so
// records never interleave). Failures are counted, not fatal: the
// daemon prefers serving with a degraded journal over refusing work,
// and /v1/healthz surfaces the degradation.
func (jl *journal) append(rec journalRecord) error {
	if jl == nil {
		return nil
	}
	line, err := encodeJournalLine(rec)
	if err != nil {
		return err
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.disabled || jl.f == nil {
		return nil
	}
	if _, err := jl.f.Write(line); err != nil {
		jl.appendErrs++
		return fmt.Errorf("service: journal append: %w", err)
	}
	if err := jl.f.Sync(); err != nil {
		jl.appendErrs++
		return fmt.Errorf("service: journal sync: %w", err)
	}
	jl.records++
	return nil
}

// rewrite atomically replaces the journal with recs (startup
// compaction): temp + rename, then a fresh append handle.
func (jl *journal) rewrite(recs []journalRecord) error {
	if jl == nil {
		return nil
	}
	var b strings.Builder
	for _, rec := range recs {
		line, err := encodeJournalLine(rec)
		if err != nil {
			return err
		}
		b.Write(line)
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.disabled {
		return nil
	}
	if jl.f != nil {
		jl.f.Close()
		jl.f = nil
	}
	if err := persist.WriteFileAtomic(jl.path, []byte(b.String())); err != nil {
		return fmt.Errorf("service: journal compact: %w", err)
	}
	jl.records = int64(len(recs))
	return jl.openFile()
}

// close flushes and closes the journal; later appends are no-ops.
func (jl *journal) close() {
	if jl == nil {
		return
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	jl.disabled = true
	if jl.f != nil {
		jl.f.Sync()
		jl.f.Close()
		jl.f = nil
	}
}

// health snapshots the journal counters for /v1/healthz.
func (jl *journal) health() (records, corrupt, appendErrs int64) {
	if jl == nil {
		return 0, 0, 0
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.records, jl.corrupt, jl.appendErrs
}
