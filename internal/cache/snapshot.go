package cache

import "fmt"

// This file implements deep snapshot/restore for the memory hierarchy,
// the cache-side half of pipe checkpointing (DESIGN.md §10). A snapshot
// captures every field Reset would otherwise clear — line residency, LRU
// ordering, per-chunk lifetime state, open ACE interval starts, the
// accumulated ACE totals and the traffic statistics — so a restored
// cache continues bit-identically to the run the snapshot was taken
// from. Snapshots use structure-of-arrays layouts (one flat slice per
// field) so the pipe checkpoint codec can serialise them with plain
// bulk copies.

// CacheState is a deep snapshot of one Cache. All slices are indexed by
// line (geometric order, way-major within a set); ChunkState/ChunkTime
// are flattened line-major with chunks-per-line stride.
type CacheState struct {
	Tag        []uint64
	Valid      []bool
	LRU        []int64
	FillTime   []int64
	LastAceEnd []int64
	Dirty      []uint64
	ChunkState []uint8
	ChunkTime  []int64

	AceChunkCycles uint64
	TagAceCycles   uint64
	WindowStart    int64

	Accesses          uint64
	Misses            uint64
	Writebacks        uint64
	WritebackAccesses uint64
	WritebackMisses   uint64
}

// grow returns s resized to n, reusing capacity.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// Snapshot copies the cache's full state into dst (reusing dst's slices
// when possible) and returns dst. A nil dst allocates a fresh state.
func (c *Cache) Snapshot(dst *CacheState) *CacheState {
	if dst == nil {
		dst = &CacheState{}
	}
	n := len(c.lines)
	dst.Tag = grow(dst.Tag, n)
	dst.Valid = grow(dst.Valid, n)
	dst.LRU = grow(dst.LRU, n)
	dst.FillTime = grow(dst.FillTime, n)
	dst.LastAceEnd = grow(dst.LastAceEnd, n)
	dst.Dirty = grow(dst.Dirty, n)
	dst.ChunkState = grow(dst.ChunkState, n*c.cpl)
	dst.ChunkTime = grow(dst.ChunkTime, n*c.cpl)
	for i := range c.lines {
		ln := &c.lines[i]
		dst.Tag[i] = ln.tag
		dst.Valid[i] = ln.valid
		dst.LRU[i] = ln.lru
		dst.FillTime[i] = ln.fillTime
		dst.LastAceEnd[i] = ln.lastAceEnd
		dst.Dirty[i] = ln.dirty
		copy(dst.ChunkState[i*c.cpl:(i+1)*c.cpl], ln.chunkState)
		copy(dst.ChunkTime[i*c.cpl:(i+1)*c.cpl], ln.chunkTime)
	}
	dst.AceChunkCycles = c.aceChunkCycles
	dst.TagAceCycles = c.tagAceCycles
	dst.WindowStart = c.windowStart
	dst.Accesses = c.Accesses
	dst.Misses = c.Misses
	dst.Writebacks = c.Writebacks
	dst.WritebackAccesses = c.WritebackAccesses
	dst.WritebackMisses = c.WritebackMisses
	return dst
}

// Restore overwrites the cache's state with a snapshot taken from a
// cache of identical geometry. Like Reset it disarms all fate watches
// and invalidates the MRU memo; everything else is reinstated exactly.
func (c *Cache) Restore(st *CacheState) error {
	n := len(c.lines)
	if len(st.Tag) != n || len(st.ChunkState) != n*c.cpl {
		return fmt.Errorf("cache %s: snapshot geometry mismatch (%d lines × %d chunks vs %d/%d)",
			c.cfg.Name, len(st.Tag), len(st.ChunkState), n, n*c.cpl)
	}
	for i := range c.lines {
		ln := &c.lines[i]
		ln.tag = st.Tag[i]
		ln.valid = st.Valid[i]
		ln.lru = st.LRU[i]
		ln.fillTime = st.FillTime[i]
		ln.lastAceEnd = st.LastAceEnd[i]
		ln.dirty = st.Dirty[i]
		copy(ln.chunkState, st.ChunkState[i*c.cpl:(i+1)*c.cpl])
		copy(ln.chunkTime, st.ChunkTime[i*c.cpl:(i+1)*c.cpl])
	}
	c.aceChunkCycles = st.AceChunkCycles
	c.tagAceCycles = st.TagAceCycles
	c.windowStart = st.WindowStart
	c.Accesses = st.Accesses
	c.Misses = st.Misses
	c.Writebacks = st.Writebacks
	c.WritebackAccesses = st.WritebackAccesses
	c.WritebackMisses = st.WritebackMisses
	c.memoLine = nil
	c.memoEpoch, c.memoAddr = 0, 0
	c.epoch++
	c.watches = nil
	return nil
}

// TLBState is a deep snapshot of one TLB, indexed by entry slot.
type TLBState struct {
	VPN       []uint64
	Valid     []bool
	FillTime  []int64
	LastRead  []int64
	LRU       []int64
	HD1Cycles []uint64
	HD1Since  []int64
	HD1Count  []int32

	AceEntryCycles uint64
	HD1EntryCycles uint64
	WindowStart    int64

	Accesses uint64
	Misses   uint64
}

// Snapshot copies the TLB's full state into dst (reusing dst's slices
// when possible) and returns dst. A nil dst allocates a fresh state.
func (t *TLB) Snapshot(dst *TLBState) *TLBState {
	if dst == nil {
		dst = &TLBState{}
	}
	n := len(t.entries)
	dst.VPN = grow(dst.VPN, n)
	dst.Valid = grow(dst.Valid, n)
	dst.FillTime = grow(dst.FillTime, n)
	dst.LastRead = grow(dst.LastRead, n)
	dst.LRU = grow(dst.LRU, n)
	dst.HD1Cycles = grow(dst.HD1Cycles, n)
	dst.HD1Since = grow(dst.HD1Since, n)
	dst.HD1Count = grow(dst.HD1Count, n)
	for i := range t.entries {
		e := &t.entries[i]
		dst.VPN[i] = e.vpn
		dst.Valid[i] = e.valid
		dst.FillTime[i] = e.fillTime
		dst.LastRead[i] = e.lastRead
		dst.LRU[i] = e.lru
		dst.HD1Cycles[i] = e.hd1Cycles
		dst.HD1Since[i] = e.hd1Since
		dst.HD1Count[i] = int32(e.hd1Count)
	}
	dst.AceEntryCycles = t.aceEntryCycles
	dst.HD1EntryCycles = t.hd1EntryCycles
	dst.WindowStart = t.windowStart
	dst.Accesses = t.Accesses
	dst.Misses = t.Misses
	return dst
}

// Restore overwrites the TLB's state with a snapshot taken from a TLB of
// identical geometry, rebuilding the VPN lookup map and disarming any
// fate watches.
func (t *TLB) Restore(st *TLBState) error {
	if len(st.VPN) != len(t.entries) {
		return fmt.Errorf("tlb %s: snapshot geometry mismatch (%d entries vs %d)",
			t.cfg.Name, len(st.VPN), len(t.entries))
	}
	clear(t.byVPN)
	for i := range t.entries {
		e := &t.entries[i]
		e.vpn = st.VPN[i]
		e.valid = st.Valid[i]
		e.fillTime = st.FillTime[i]
		e.lastRead = st.LastRead[i]
		e.lru = st.LRU[i]
		e.hd1Cycles = st.HD1Cycles[i]
		e.hd1Since = st.HD1Since[i]
		e.hd1Count = int(st.HD1Count[i])
		if e.valid && !t.small {
			t.byVPN[e.vpn] = int32(i)
		}
	}
	t.aceEntryCycles = st.AceEntryCycles
	t.hd1EntryCycles = st.HD1EntryCycles
	t.windowStart = st.WindowStart
	t.Accesses = st.Accesses
	t.Misses = st.Misses
	t.memoValid = false
	t.memoVPN, t.memoIdx = 0, 0
	t.watches = nil
	return nil
}

// HierarchyState is a deep snapshot of a full Hierarchy.
type HierarchyState struct {
	IL1  CacheState
	DL1  CacheState
	L2   CacheState
	DTLB TLBState
}

// Snapshot copies the hierarchy's full state into dst (reusing dst's
// buffers when possible) and returns dst. A nil dst allocates.
func (h *Hierarchy) Snapshot(dst *HierarchyState) *HierarchyState {
	if dst == nil {
		dst = &HierarchyState{}
	}
	h.IL1.Snapshot(&dst.IL1)
	h.DL1.Snapshot(&dst.DL1)
	h.L2.Snapshot(&dst.L2)
	h.DTLB.Snapshot(&dst.DTLB)
	return dst
}

// Restore overwrites the hierarchy's state with a snapshot taken from a
// hierarchy of identical configuration.
func (h *Hierarchy) Restore(st *HierarchyState) error {
	if err := h.IL1.Restore(&st.IL1); err != nil {
		return err
	}
	if err := h.DL1.Restore(&st.DL1); err != nil {
		return err
	}
	if err := h.L2.Restore(&st.L2); err != nil {
		return err
	}
	return h.DTLB.Restore(&st.DTLB)
}

// TimestampLead returns the maximum number of cycles any access
// timestamp issued by this hierarchy can run ahead of the pipeline wall
// clock that issued it (the deepest Data path: TLB walk, then an L2 miss
// to memory, then the DL1 fill-touch). Checkpointed fork-replay uses it
// as the validity margin: a checkpoint at cycle C can serve a fault at
// cycle F only when C+lead ≤ F, which guarantees every lifetime
// transition whose interval could contain F executes wall-after C and is
// therefore observed by watches armed at restore time.
func (h *Hierarchy) TimestampLead() int64 {
	lead := int64(h.cfg.DTLB.WalkLatency)
	if h.memLat > h.l2Hit {
		lead += h.memLat
	} else {
		lead += h.l2Hit
	}
	return lead + h.dl1Hit
}
