package service

// The federated campaign fabric, runner side (DESIGN.md §13). A runner
// joins a coordinator (`avfstressd -join <url>`), heartbeats for
// liveness and work discovery, and executes every announced run: it
// derives the same deterministic job DAG from the same spec as the
// coordinator and every sibling runner, and races them claim-by-claim
// through the coordinator's claim table — leased sched jobs via the
// sched.Executor adapter, individual simulation computes via the
// simcache.RemoteTier adapter. Results it computes are pushed to the
// coordinator's content-addressed store as CRC-framed entries; results
// a sibling computed first are pulled the same way and frame-validated
// on receipt (a corrupt body is quarantined, never installed — the
// runner recomputes instead). The runner's own rendered report is
// discarded: the coordinator's report is the deliverable, and it is
// byte-identical no matter how the work was sharded.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"avfstress/internal/experiments"
	"avfstress/internal/persist"
	"avfstress/internal/scenario"
	"avfstress/internal/sched"
	"avfstress/internal/simcache"
)

// RunnerOptions configures a fabric runner.
type RunnerOptions struct {
	// Coordinator is the coordinator daemon's base URL.
	Coordinator string
	// Name labels this runner in coordinator logs and health output.
	Name string
	// Workers bounds the runner's concurrent jobs/simulations
	// (0 = GOMAXPROCS). Sharding changes wall-clock only, never bytes.
	Workers int
	// CacheDir enables the runner's local disk tier ("" = memory only).
	// Runners must not share a cache directory with the coordinator or
	// each other; the shared tier is the coordinator's store over HTTP.
	CacheDir string
	// Client overrides the HTTP client (tests). The default keeps
	// enough idle connections for claim long-polls and cache traffic.
	Client *http.Client
	// Logf, when set, receives runner-side log lines.
	Logf func(format string, args ...interface{})
}

var errGone = errors.New("service: runner registration expired")

// Runner executes announced runs against a coordinator's fabric.
type Runner struct {
	opts  RunnerOptions
	base  string
	hc    *http.Client
	store *simcache.Store

	mu    sync.Mutex
	id    string
	scale int
	hb    time.Duration
	execs map[string]*runnerExec
	wg    sync.WaitGroup
}

// runnerExec tracks one announced run's execution goroutine.
type runnerExec struct {
	cancel context.CancelFunc
	done   chan struct{}
}

// NewRunner builds a runner. Call Run to join and serve.
func NewRunner(opts RunnerOptions) *Runner {
	if opts.Name == "" {
		opts.Name = "runner"
	}
	hc := opts.Client
	if hc == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = 64
		hc = &http.Client{Transport: tr}
	}
	r := &Runner{
		opts:  opts,
		base:  strings.TrimRight(opts.Coordinator, "/"),
		hc:    hc,
		hb:    heartbeatDefault,
		execs: map[string]*runnerExec{},
	}
	r.store = simcache.New(simcache.Options{Dir: opts.CacheDir, Remote: runnerRemote{r}})
	return r
}

// Store exposes the runner's local store (tests, stats).
func (r *Runner) Store() *simcache.Store { return r.store }

func (r *Runner) logf(format string, args ...interface{}) {
	if r.opts.Logf != nil {
		r.opts.Logf(format, args...)
	}
}

// Run joins the coordinator and serves until ctx is cancelled,
// rejoining on 410 (coordinator restart, missed heartbeats) and
// retrying on transport errors. It returns ctx.Err().
func (r *Runner) Run(ctx context.Context) error {
	defer r.stopAll()
	for {
		if err := r.join(ctx); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			r.logf("fabric: join %s: %v; retrying", r.base, err)
			if !sleepCtx(ctx, time.Second) {
				return ctx.Err()
			}
			continue
		}
		err := r.heartbeatLoop(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		r.logf("fabric: %v; rejoining", err)
	}
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// join performs the handshake and adopts the coordinator's heartbeat
// cadence and cache scale (the scale must match or fingerprints — and
// with them every cache key — would diverge).
func (r *Runner) join(ctx context.Context) error {
	var resp joinResponse
	err := r.postFramed(ctx, "/v1/fabric/join",
		joinRequest{Name: r.opts.Name, Workers: r.opts.Workers}, &resp)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.id = resp.Runner
	r.scale = resp.Scale
	if resp.HeartbeatMS > 0 {
		r.hb = time.Duration(resp.HeartbeatMS) * time.Millisecond
	}
	r.mu.Unlock()
	r.logf("fabric: joined %s as %s (scale %d, heartbeat %v)", r.base, resp.Runner, resp.Scale, r.hb)
	return nil
}

// heartbeatLoop beats until ctx ends or the coordinator answers 410.
// Each beat doubles as work discovery: the response lists the active
// runs, and reconcile starts executions for new ones and cancels
// executions whose run was withdrawn.
func (r *Runner) heartbeatLoop(ctx context.Context) error {
	r.mu.Lock()
	hb := r.hb
	r.mu.Unlock()
	tick := time.NewTicker(hb)
	defer tick.Stop()
	for {
		var resp heartbeatResponse
		err := r.postFramed(ctx, "/v1/fabric/heartbeat", heartbeatRequest{Runner: r.runnerID()}, &resp)
		switch {
		case errors.Is(err, errGone):
			return err
		case err != nil:
			// Transient coordinator trouble: keep beating until the
			// coordinator forgets us (410) or ctx ends.
			if ctx.Err() != nil {
				return ctx.Err()
			}
		default:
			r.reconcile(ctx, resp.Runs)
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func (r *Runner) runnerID() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.id
}

// reconcile aligns local executions with the announced runs.
func (r *Runner) reconcile(ctx context.Context, runs []runAnnouncement) {
	active := map[string]bool{}
	r.mu.Lock()
	scale := r.scale
	for _, run := range runs {
		active[run.ID] = true
		if _, ok := r.execs[run.ID]; ok {
			continue
		}
		cctx, cancel := context.WithCancel(ctx)
		ex := &runnerExec{cancel: cancel, done: make(chan struct{})}
		r.execs[run.ID] = ex
		r.wg.Add(1)
		go func(id string, spec scenario.Spec) {
			defer r.wg.Done()
			defer close(ex.done)
			r.execute(cctx, id, spec, scale)
		}(run.ID, run.Spec)
	}
	for id, ex := range r.execs {
		if !active[id] {
			ex.cancel()
			delete(r.execs, id)
		}
	}
	r.mu.Unlock()
}

func (r *Runner) stopAll() {
	r.mu.Lock()
	for id, ex := range r.execs {
		ex.cancel()
		delete(r.execs, id)
	}
	r.mu.Unlock()
	r.wg.Wait()
}

// execute runs one announced spec to completion. The experiment options
// mirror the coordinator's result-affecting settings exactly — Scale
// from the handshake, everything else from the spec — so the runner's
// DAG, fingerprints and cache keys are identical to every other
// node's. Only wall-clock knobs (Workers, retries) are local.
func (r *Runner) execute(ctx context.Context, id string, spec scenario.Spec, scale int) {
	r.logf("fabric: executing %s: %v", id, spec.Scenarios)
	base := experiments.Options{
		Scale:       scale,
		Parallelism: r.opts.Workers,
		Cache:       r.store.View(),
		Logf:        func(format string, args ...interface{}) { r.logf("%s: "+format, append([]interface{}{id}, args...)...) },
		Retry:       sched.RetryPolicy{MaxAttempts: 3, BaseDelay: 100 * time.Millisecond, MaxDelay: 2 * time.Second},
		Executor:    runnerExecutor{r},
	}
	c, names, err := experiments.NewSpecContext(spec, base)
	if err != nil {
		r.logf("fabric: %s does not resolve here: %v", id, err)
		return
	}
	// The report is discarded: the runner's contribution is the claims
	// it won and the results it pushed, not the rendering.
	if _, err := c.RunScenarios(ctx, names); err != nil && ctx.Err() == nil {
		r.logf("fabric: %s: %v", id, err)
		return
	}
	if ctx.Err() == nil {
		r.logf("fabric: %s complete", id)
	}
}

// --- wire helpers -------------------------------------------------------

// postFramed exchanges CRC-framed JSON with a fabric endpoint.
func (r *Runner) postFramed(ctx context.Context, path string, reqBody, respBody interface{}) error {
	payload, err := json.Marshal(reqBody)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+path,
		bytes.NewReader(persist.EncodeFramed(payload)))
	if err != nil {
		return err
	}
	res, err := r.hc.Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	body, err := io.ReadAll(io.LimitReader(res.Body, 4<<20))
	if err != nil {
		return err
	}
	switch {
	case res.StatusCode == http.StatusGone:
		return errGone
	case res.StatusCode != http.StatusOK:
		return fmt.Errorf("service: %s: %s: %s", path, res.Status, strings.TrimSpace(string(body)))
	}
	data, err := persist.DecodeFramed(body)
	if err != nil {
		return fmt.Errorf("service: %s response frame: %w", path, err)
	}
	return json.Unmarshal(data, respBody)
}

// claim asks the coordinator for (kind, key), long-polling waitMS.
func (r *Runner) claim(ctx context.Context, kind, key string, wait time.Duration) (string, error) {
	cctx, cancel := context.WithTimeout(ctx, wait+10*time.Second)
	defer cancel()
	var resp claimResponse
	err := r.postFramed(cctx, "/v1/fabric/claim", claimRequest{
		Runner: r.runnerID(), Kind: kind, Key: key, WaitMS: wait.Milliseconds(),
	}, &resp)
	if err != nil {
		return "", err
	}
	return resp.State, nil
}

// releaseClaim resolves a claim this runner holds. It runs on a short
// background context so graceful cancellation still releases.
func (r *Runner) releaseClaim(kind, key string, ok bool) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var resp struct{}
	if err := r.postFramed(ctx, "/v1/fabric/release", releaseRequest{
		Runner: r.runnerID(), Kind: kind, Key: key, OK: ok,
	}, &resp); err != nil {
		// The coordinator's lease TTL reclaims the claim anyway.
		r.logf("fabric: release %s: %v", kind, err)
	}
}

// runnerExecutor adapts the claim protocol to sched.Executor.
type runnerExecutor struct{ r *Runner }

func (e runnerExecutor) TryAcquire(key string) (sched.ClaimState, error) {
	st, err := e.r.claim(context.Background(), kindJob, key, 0)
	if err != nil {
		return sched.ClaimWait, err
	}
	return stateOf(st), nil
}

func (e runnerExecutor) Await(ctx context.Context, key string) (sched.ClaimState, error) {
	for {
		st, err := e.r.claim(ctx, kindJob, key, 5*time.Second)
		if err != nil {
			return sched.ClaimWait, err
		}
		if st != claimWait {
			return stateOf(st), nil
		}
		if err := ctx.Err(); err != nil {
			return sched.ClaimWait, err
		}
	}
}

func (e runnerExecutor) Release(key string, err error) {
	e.r.releaseClaim(kindJob, key, err == nil)
}

// runnerRemote adapts the coordinator's cache and claim endpoints to
// simcache.RemoteTier.
type runnerRemote struct{ r *Runner }

func (t runnerRemote) url(kind string, key simcache.Key) string {
	return fmt.Sprintf("%s/v1/cache/%s/%s", t.r.base, kind, key.Hex())
}

// Get fetches one framed entry; the store validates the frame on
// receipt, so a body corrupted anywhere in flight is rejected there.
func (t runnerRemote) Get(kind string, key simcache.Key) ([]byte, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.url(kind, key), nil)
	if err != nil {
		return nil, false
	}
	res, err := t.r.hc.Do(req)
	if err != nil {
		return nil, false
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(res.Body, 4<<10))
		return nil, false
	}
	framed, err := io.ReadAll(io.LimitReader(res.Body, 256<<20))
	if err != nil {
		return nil, false
	}
	return framed, true
}

// Put pushes one framed entry; failures are tolerated (the entry stays
// in the runner's local tiers and any node can recompute).
func (t runnerRemote) Put(kind string, key simcache.Key, framed []byte) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, t.url(kind, key), bytes.NewReader(framed))
	if err != nil {
		return
	}
	res, err := t.r.hc.Do(req)
	if err != nil {
		t.r.logf("fabric: cache put %s/%s: %v", kind, key.Hex(), err)
		return
	}
	defer res.Body.Close()
	io.Copy(io.Discard, io.LimitReader(res.Body, 4<<10))
	if res.StatusCode != http.StatusNoContent && res.StatusCode != http.StatusOK {
		t.r.logf("fabric: cache put %s/%s: %s", kind, key.Hex(), res.Status)
	}
}

// Acquire claims the compute for (kind, key), parking while another
// node owns it. True means this node computes; false means a sibling
// finished (the store re-probes the shared tier). Arbitration failures
// fall back to computing locally — duplicated at worst, never wrong.
func (t runnerRemote) Acquire(kind string, key simcache.Key) bool {
	for {
		st, err := t.r.claim(context.Background(), kind, key.Hex(), 2*time.Second)
		if err != nil {
			return true
		}
		switch st {
		case claimGranted:
			return true
		case claimDone:
			return false
		}
	}
}

func (t runnerRemote) Release(kind string, key simcache.Key, ok bool) {
	t.r.releaseClaim(kind, key.Hex(), ok)
}
