GO ?= go

.PHONY: all build vet test check bench bench-compare bench-smoke

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

check: vet build test

# bench runs the whole benchmark suite once and records a machine-readable
# snapshot, so the perf trajectory can be tracked across PRs (see
# DESIGN.md §5).
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x . | $(GO) run ./cmd/benchjson > BENCH_latest.json
	@echo wrote BENCH_latest.json

# bench-smoke is the CI variant: one iteration of every benchmark, output
# discarded — it only proves the experiment drivers still run end-to-end.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# bench-compare produces the 5-run samples of the two headline benchmarks
# used for before/after comparisons (feed the two files to benchstat).
bench-compare:
	$(GO) test -run '^$$' -bench 'BenchmarkTableI_BaselineSim|BenchmarkFig5_GASearchBaseline' -benchmem -count 5 .
