// Command avfstress runs the full automated methodology of the paper's
// Figure 2: a genetic-algorithm search over the code-generator knob space
// that produces an AVF stressmark for a microarchitecture and fault-rate
// set, then reports the final knobs, convergence history, per-structure
// AVFs and class SERs.
//
// Usage:
//
//	avfstress [-config baseline|configA] [-rates uniform|rhc|edr]
//	          [-scale 32] [-pop 20] [-gens 16] [-seed 1] [-listing]
package main

import (
	"flag"
	"fmt"
	"os"

	"avfstress/internal/avf"
	"avfstress/internal/core"
	"avfstress/internal/ga"
	"avfstress/internal/persist"
	"avfstress/internal/report"
	"avfstress/internal/simcache"
	"avfstress/internal/uarch"
)

func main() {
	var (
		config   = flag.String("config", "baseline", "configuration: baseline or configA")
		rates    = flag.String("rates", "uniform", "fault rates: uniform, rhc or edr")
		scale    = flag.Int("scale", 32, "cache scale-down factor (1 = paper-exact)")
		pop      = flag.Int("pop", 20, "GA population size (paper: 50)")
		gens     = flag.Int("gens", 16, "GA generations (paper: 50)")
		seed     = flag.Int64("seed", 1, "GA seed")
		listing  = flag.Bool("listing", false, "print the generated stressmark listing")
		save     = flag.String("save", "", "write the final knobs and result to a JSON file")
		cacheDir = flag.String("cache-dir", "", "persist candidate simulations under this directory (shared across runs and processes; results are bit-identical)")
	)
	flag.Parse()

	cfg := uarch.Baseline()
	if *config == "configA" {
		cfg = uarch.ConfigA()
	}
	cfg = uarch.Scaled(cfg, *scale)

	var fr uarch.FaultRates
	switch *rates {
	case "uniform":
		fr = uarch.UniformRates(1)
	case "rhc":
		fr = uarch.RHCRates()
	case "edr":
		fr = uarch.EDRRates()
	default:
		fmt.Fprintf(os.Stderr, "avfstress: unknown rates %q\n", *rates)
		os.Exit(1)
	}

	var cache *simcache.Store
	if *cacheDir != "" {
		cache = simcache.New(simcache.Options{Dir: *cacheDir})
	}

	fmt.Fprintf(os.Stderr, "# searching %s / %s rates, %d generations × %d individuals\n",
		cfg.Name, *rates, *gens, *pop)
	res, err := core.Search(core.SearchSpec{
		Config: cfg,
		Rates:  fr,
		GA:     ga.Config{PopSize: *pop, Generations: *gens, Seed: *seed},
		Cache:  cache,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "avfstress:", err)
		os.Exit(1)
	}
	if cache != nil {
		fmt.Fprintf(os.Stderr, "# cache: %s\n", cache.Stats())
	}

	fmt.Printf("final GA solution (%d evaluations, %d cataclysms, %d failed candidates):\n\n%s\n",
		res.Evaluations, res.Cataclysms, res.FailedEvals, res.Knobs)
	avgs := make([]float64, len(res.History))
	for i, h := range res.History {
		avgs[i] = h.Avg
	}
	fmt.Printf("convergence (avg fitness/gen): %s\n\n", report.Sparkline(avgs))
	fmt.Print(res.Result)
	fmt.Printf("\nSER (units/bit, %s rates):\n", *rates)
	for _, cl := range avf.AllClasses() {
		fmt.Printf("  %-10s %.3f\n", cl, res.Result.SER(cfg, fr, cl))
	}
	fmt.Printf("fitness: %.4f\n", res.Fitness)
	if *listing {
		fmt.Printf("\n%s\n", res.Program.Listing())
	}
	if *save != "" {
		err := persist.SaveStressmark(*save, persist.SavedStressmark{
			Config: cfg.Name, Rates: *rates, Knobs: res.Knobs,
			Fitness: res.Fitness, Result: res.Result,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "avfstress:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "# saved to %s\n", *save)
	}
}
