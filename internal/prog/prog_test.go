package prog

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"avfstress/internal/isa"
)

func twoInstrLoop(iters int64) *Program {
	return &Program{
		Name: "test",
		Init: []isa.Instr{
			{Op: isa.OpAdd, Dest: 1, Src1: isa.RZero, Imm: 1},
		},
		Body: []isa.Instr{
			{Op: isa.OpLoad, Dest: 2, Src1: 1, AddrGen: 0},
			{Op: isa.OpBranch, Dest: isa.RZero, Src1: 1, BrGen: 0},
		},
		AddrGens:   []AddrGen{PointerChase{Base: 0x1000, Stride: 64, Region: 1024}},
		BrGens:     []BranchGen{LoopBranch{Iterations: iters}},
		Iterations: iters,
	}
}

func TestStreamOrderAndTermination(t *testing.T) {
	p := twoInstrLoop(3)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	s := NewStream(p)
	var seen []Dyn
	for {
		d, ok := s.Next()
		if !ok {
			break
		}
		seen = append(seen, d)
	}
	want := 1 + 3*2 // init + 3 iterations of 2
	if len(seen) != want {
		t.Fatalf("stream yielded %d instructions, want %d", len(seen), want)
	}
	if seen[0].Iter != -1 {
		t.Errorf("init instruction has iter %d, want -1", seen[0].Iter)
	}
	if seen[1].PC != BodyBase {
		t.Errorf("first body PC %#x, want %#x", seen[1].PC, BodyBase)
	}
	if seen[2].PC != BodyBase+isa.InstrBytes {
		t.Errorf("second body PC %#x", seen[2].PC)
	}
	// Sequence numbers are dense and increasing.
	for i, d := range seen {
		if d.Seq != int64(i) {
			t.Fatalf("instruction %d has seq %d", i, d.Seq)
		}
	}
	// Backedge taken on all but the last iteration.
	if !seen[2].Taken || !seen[4].Taken {
		t.Error("backedge should be taken on early iterations")
	}
	if seen[6].Taken {
		t.Error("final backedge should fall through")
	}
}

func TestStreamReset(t *testing.T) {
	p := twoInstrLoop(2)
	s := NewStream(p)
	first, _ := s.Next()
	for {
		if _, ok := s.Next(); !ok {
			break
		}
	}
	s.Reset()
	again, ok := s.Next()
	if !ok || again.PC != first.PC || again.Seq != 0 {
		t.Errorf("reset stream starts at %+v, want %+v", again, first)
	}
}

func TestValidateCatchesBadReferences(t *testing.T) {
	p := twoInstrLoop(2)
	p.Body[0].AddrGen = 5
	if err := p.Validate(); err == nil {
		t.Error("out-of-range address generator accepted")
	}
	p = twoInstrLoop(2)
	p.Body[1].BrGen = 2
	if err := p.Validate(); err == nil {
		t.Error("out-of-range branch generator accepted")
	}
	p = twoInstrLoop(0)
	if err := p.Validate(); err == nil {
		t.Error("zero iterations accepted")
	}
	p = twoInstrLoop(2)
	p.Body = nil
	if err := p.Validate(); err == nil {
		t.Error("empty body accepted")
	}
}

func TestPointerChaseWraps(t *testing.T) {
	g := PointerChase{Base: 0x1000, Stride: 64, Region: 256}
	if g.Addr(0) != 0x1000 {
		t.Errorf("iteration 0 at %#x", g.Addr(0))
	}
	if g.Addr(3) != 0x10c0 {
		t.Errorf("iteration 3 at %#x", g.Addr(3))
	}
	if g.Addr(4) != 0x1000 {
		t.Errorf("iteration 4 should wrap to base, got %#x", g.Addr(4))
	}
	if g.Addr(-1) != 0x1000 {
		t.Errorf("init access should hit the base")
	}
}

func TestLineSweepLagsAndClamps(t *testing.T) {
	g := LineSweep{Base: 0, Stride: 64, Region: 1024, Offset: 8, Lag: 1}
	if g.Addr(0) != 8 {
		t.Errorf("lag clamps at iteration 0: got %#x", g.Addr(0))
	}
	if g.Addr(5) != 4*64+8 {
		t.Errorf("iteration 5 sweeps line 4: got %#x", g.Addr(5))
	}
}

func TestRandomWalkDeterministicAligned(t *testing.T) {
	g := RandomWalk{Base: 0x2000, Region: 4096, Seed: 9}
	for i := int64(0); i < 100; i++ {
		a, b := g.Addr(i), g.Addr(i)
		if a != b {
			t.Fatalf("RandomWalk not deterministic at %d", i)
		}
		if a < 0x2000 || a >= 0x2000+4096 {
			t.Fatalf("address %#x outside region", a)
		}
		if a%8 != 0 {
			t.Fatalf("address %#x not 8-byte aligned", a)
		}
	}
}

func TestStridedBlockPhase(t *testing.T) {
	g := StridedBlock{Base: 0, Stride: 64, Region: 256, Phase: 128}
	if g.Addr(0) != 128 {
		t.Errorf("phase ignored: %#x", g.Addr(0))
	}
	if g.Addr(2) != 0 {
		t.Errorf("wrap with phase: %#x", g.Addr(2))
	}
}

func TestBranchGenerators(t *testing.T) {
	lb := LoopBranch{Iterations: 3}
	if !lb.Taken(0) || !lb.Taken(1) || lb.Taken(2) {
		t.Error("loop branch direction wrong")
	}
	p := Periodic{Period: 8, Duty: 4, Phase: 0}
	for i := int64(0); i < 4; i++ {
		if !p.Taken(i) {
			t.Errorf("periodic should be taken at %d", i)
		}
		if p.Taken(i + 4) {
			t.Errorf("periodic should fall through at %d", i+4)
		}
	}
	// A phase shift rotates the pattern.
	p2 := Periodic{Period: 8, Duty: 4, Phase: 4}
	if p2.Taken(0) {
		t.Error("phase shift not applied")
	}
	// Bernoulli respects its probability within sampling noise.
	b := Bernoulli{Seed: 17, P: 0.2}
	taken := 0
	const n = 20000
	for i := int64(0); i < n; i++ {
		if b.Taken(i) {
			taken++
		}
	}
	f := float64(taken) / n
	if f < 0.17 || f > 0.23 {
		t.Errorf("bernoulli(0.2) fired at rate %.3f", f)
	}
}

// Property: all address generators are pure (stateless) and stay within
// [Base, Base+Region).
func TestQuickGeneratorsPureAndBounded(t *testing.T) {
	f := func(seed uint64, iter int64) bool {
		gens := []AddrGen{
			PointerChase{Base: 0x1000, Stride: 64, Region: 4096},
			LineSweep{Base: 0x1000, Stride: 64, Region: 4096, Offset: uint64(seed % 64), Lag: 2},
			RandomWalk{Base: 0x1000, Region: 4096, Seed: seed},
			StridedBlock{Base: 0x1000, Stride: 8, Region: 4096, Phase: seed % 4096},
		}
		if iter < 0 {
			iter = -iter
		}
		for _, g := range gens {
			a1, a2 := g.Addr(iter), g.Addr(iter)
			if a1 != a2 {
				return false
			}
			if a1 < 0x1000 || a1 >= 0x1000+4096+64 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestListingContainsStructure(t *testing.T) {
	p := twoInstrLoop(2)
	l := p.Listing()
	for _, want := range []string{"init:", "loop:", "ldq", "br", "chase base"} {
		if !strings.Contains(l, want) {
			t.Errorf("listing missing %q:\n%s", want, l)
		}
	}
	if p.StaticLen() != 3 {
		t.Errorf("static length %d, want 3", p.StaticLen())
	}
}

// TestProgramFingerprint locks the content-address contract for
// programs: simulation-relevant differences (instructions, generator
// state, iteration count) change the fingerprint; cosmetic labels do
// not.
func TestProgramFingerprint(t *testing.T) {
	build := func() *Program {
		return &Program{
			Name: "p",
			Init: []isa.Instr{{Op: isa.OpAdd, Dest: 1, Src1: isa.RZero, Imm: 1}},
			Body: []isa.Instr{
				{Op: isa.OpLoad, Dest: 2, Src1: 1, AddrGen: 0},
				{Op: isa.OpBranch, Dest: isa.RZero, Src1: 2, BrGen: 0},
			},
			AddrGens:   []AddrGen{PointerChase{Base: 0x1000, Stride: 64, Region: 1 << 20}},
			BrGens:     []BranchGen{LoopBranch{Iterations: 100}},
			Iterations: 100,
		}
	}
	a, b := build(), build()
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical programs fingerprint differently")
	}
	b.Body[0].Src1 = 3
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("instruction change not reflected")
	}
	c := build()
	c.AddrGens[0] = PointerChase{Base: 0x1000, Stride: 64, Region: 1 << 21}
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("address-generator state change not reflected")
	}
	d := build()
	d.Iterations = 101
	if a.Fingerprint() == d.Fingerprint() {
		t.Error("iteration count change not reflected")
	}
	e := build()
	e.Body[0].Label = "decorative"
	if a.Fingerprint() != e.Fingerprint() {
		t.Error("listing label changed the fingerprint")
	}
	// Generators of different types with coincidentally equal fields must
	// not collide (%T participates).
	f := build()
	f.AddrGens[0] = StridedBlock{Base: 0x1000, Stride: 64, Region: 1 << 20}
	g := build()
	g.AddrGens[0] = PointerChase{Base: 0x1000, Stride: 64, Region: 1 << 20}
	if f.Fingerprint() == g.Fingerprint() {
		t.Error("generator type does not participate in the fingerprint")
	}
}

// TestProgramFingerprintCoversEveryInstrField mutates each isa.Instr
// field reflectively and asserts the program fingerprint reacts — the
// serialisation lists instruction fields by hand, so this fails if
// isa.Instr grows a field the fingerprint silently omits. Label is the
// one documented exception (listing decoration only).
func TestProgramFingerprintCoversEveryInstrField(t *testing.T) {
	p := &Program{
		Name:       "p",
		Body:       []isa.Instr{{Op: isa.OpAdd, Dest: 1, Src1: 2, Src2: 3, Imm: 4, RegReg: true}},
		Iterations: 1,
	}
	base := p.Fingerprint()
	v := reflect.ValueOf(&p.Body[0]).Elem()
	tp := v.Type()
	for i := 0; i < tp.NumField(); i++ {
		f := v.Field(i)
		name := tp.Field(i).Name
		var restore func()
		switch f.Kind() {
		case reflect.Uint8:
			old := f.Uint()
			f.SetUint(old + 1)
			restore = func() { f.SetUint(old) }
		case reflect.Int16, reflect.Int:
			old := f.Int()
			f.SetInt(old + 1)
			restore = func() { f.SetInt(old) }
		case reflect.Bool:
			old := f.Bool()
			f.SetBool(!old)
			restore = func() { f.SetBool(old) }
		case reflect.String:
			old := f.String()
			f.SetString(old + "'")
			restore = func() { f.SetString(old) }
		default:
			t.Fatalf("isa.Instr.%s: unhandled kind %v — extend the test", name, f.Kind())
		}
		changed := p.Fingerprint() != base
		restore()
		if name == "Label" {
			if changed {
				t.Error("Label participates in the fingerprint; it must not")
			}
			continue
		}
		if !changed {
			t.Errorf("mutating isa.Instr.%s does not change the fingerprint", name)
		}
	}
}

// TestProgramFingerprintKnowsEveryField pins Program's field set: the
// fingerprint serialises fields by hand, so anyone adding a field must
// come here, teach Fingerprint about it (or document an exclusion) and
// extend this list.
func TestProgramFingerprintKnowsEveryField(t *testing.T) {
	known := map[string]bool{
		"Name": true, "Init": true, "Body": true, "AddrGens": true,
		"BrGens": true, "Iterations": true, "FootprintBytes": true,
	}
	tp := reflect.TypeOf(Program{})
	if tp.NumField() != len(known) {
		t.Errorf("Program has %d fields, fingerprint test knows %d", tp.NumField(), len(known))
	}
	for i := 0; i < tp.NumField(); i++ {
		if !known[tp.Field(i).Name] {
			t.Errorf("Program.%s is unknown to the fingerprint — serialise it in Fingerprint and add it here",
				tp.Field(i).Name)
		}
	}
}

// TestFingerprintDistinguishesGeneratorPrecision is the regression test
// for hashing generators through their lossy Stringer output (Bernoulli
// rounds P to three decimals): programs differing only in fine-grained
// generator parameters must not alias.
func TestFingerprintDistinguishesGeneratorPrecision(t *testing.T) {
	build := func(p float64, seed uint64) *Program {
		return &Program{
			Name: "fp",
			Body: []isa.Instr{
				{Op: isa.OpAdd, Dest: 3, Src1: 3, Imm: 1},
				{Op: isa.OpBranch, Dest: isa.RZero, Src1: 2, BrGen: 0},
			},
			BrGens:     []BranchGen{Bernoulli{Seed: seed, P: p}},
			Iterations: 100,
		}
	}
	a := build(0.1234, 1)
	if fp := build(0.12341, 1).Fingerprint(); fp == a.Fingerprint() {
		t.Error("programs differing in Bernoulli P beyond 3 decimals alias")
	}
	if fp := build(0.1234, 2).Fingerprint(); fp == a.Fingerprint() {
		t.Error("programs differing in Bernoulli seed alias")
	}
	if fp := build(0.1234, 1).Fingerprint(); fp != a.Fingerprint() {
		t.Error("identical programs fingerprint differently")
	}
}
