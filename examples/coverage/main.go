// Workload-suite SER coverage (the paper's Figure 1 discussion and §VII
// "Utilizing the Stressmark Methodology"): run the 33 SPEC CPU2006 /
// MiBench proxies, establish the worst case with the stressmark, and
// report how much safety margin a designer relying on the suite alone
// would have needed — the paper's argument for why a stressmark is
// required to validate margins.
//
// Run with: go run ./examples/coverage
package main

import (
	"context"
	"fmt"
	"log"

	"avfstress"
	"avfstress/internal/analysis"
	"avfstress/internal/experiments"
	"avfstress/internal/pipe"
	"avfstress/internal/uarch"
)

func main() {
	ctx := experiments.NewContext(experiments.Options{
		Scale: 32, Seed: 1, UseReferenceKnobs: true,
	})
	cfg := ctx.Baseline
	rates := uarch.UniformRates(1)

	fmt.Printf("simulating the 33-proxy workload suite on %s...\n", cfg.Name)
	results, err := ctx.Workloads(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	sm, err := ctx.Stressmark(context.Background(), "baseline", cfg, rates)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nSER coverage per class (arrows of Figure 1):")
	for _, cl := range []avfstress.Class{
		avfstress.ClassQS, avfstress.ClassQSRF,
		avfstress.ClassDL1DTLB, avfstress.ClassL2,
	} {
		cov := analysis.SuiteCoverage(results, cfg, rates, cl,
			sm.Result.SER(cfg, rates, cl))
		fmt.Print(cov)
	}

	// The paper's two design objectives: design for the highest
	// workload-induced SER, or for the average (§I, Figure 1).
	cov := analysis.SuiteCoverage(results, cfg, rates, avfstress.ClassQSRF,
		sm.Result.SER(cfg, rates, avfstress.ClassQSRF))
	fmt.Printf("\ndesign-point analysis (core, QS+RF):\n")
	fmt.Printf("  designing for the max workload (%.3f) needs a %+.0f%% margin to cover the worst case\n",
		cov.Max, cov.Gap()*100)
	fmt.Printf("  designing for the average (%.3f) needs a %+.0f%% margin\n",
		cov.Mean, (cov.WorstCase/cov.Mean-1)*100)
	fmt.Println("  without the stressmark, neither margin can be validated.")

	// Re-checking a single suspect program is one Simulate call:
	pf := avfstress.Workloads()[2] // 403.gcc
	p, err := pf.Build(cfg, 1)
	if err != nil {
		log.Fatal(err)
	}
	r, err := avfstress.Simulate(cfg, p, pipe.RunConfig{
		MaxInstructions: 200_000, WarmupInstructions: 80_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nspot check %s: core SER %.3f, IPC %.2f, mispredict %.1f%%\n",
		pf.Name, r.SER(cfg, rates, avfstress.ClassQSRF), r.IPC, r.MispredictRate*100)
}
