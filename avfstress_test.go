package avfstress_test

import (
	"context"
	"testing"

	"avfstress"
	"avfstress/internal/pipe"
)

// TestFacadeEndToEnd exercises the public API surface the README
// advertises: configurations, knob-driven generation, simulation and the
// workload list.
func TestFacadeEndToEnd(t *testing.T) {
	cfg := avfstress.Scaled(avfstress.Baseline(), 32)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	k := avfstress.Knobs{
		LoopSize: 60, NumLoads: 20, NumStores: 20, MissDependent: 5,
		AvgChainLength: 2, DepDistance: 4, FracLongLatency: 0.5,
		FracRegReg: 0.8, Seed: 7,
	}
	p, eff, err := avfstress.Generate(cfg, k, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if eff.LoopSize != 60 {
		t.Errorf("effective loop size %d", eff.LoopSize)
	}
	res, err := avfstress.Simulate(cfg, p, avfstress.RunConfig{
		MaxInstructions: 60_000, WarmupInstructions: 20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	rates := avfstress.UniformRates(1)
	core := res.SER(cfg, rates, avfstress.ClassQSRF)
	if core <= 0 || core > 1 {
		t.Errorf("core SER %f out of range", core)
	}
	if n := len(avfstress.Workloads()); n != 33 {
		t.Errorf("workload count %d", n)
	}
	if n := len(avfstress.ExperimentNames()); n != 14 {
		t.Errorf("experiment count %d", n)
	}
}

// TestFacadeConfigA checks the second published configuration through
// the facade.
func TestFacadeConfigA(t *testing.T) {
	a := avfstress.ConfigA()
	if a.Core.ROBEntries != 96 {
		t.Errorf("ConfigA ROB %d", a.Core.ROBEntries)
	}
	if avfstress.RHCRates()[0] != 1 { // IQ stays at 1 under RHC
		t.Error("RHC rates wrong through facade")
	}
}

// TestFacadeExperiments runs the cheapest experiment through the facade
// harness type.
func TestFacadeExperiments(t *testing.T) {
	ctx := avfstress.NewExperiments(avfstress.ExperimentOptions{
		Scale: 32, UseReferenceKnobs: true,
	})
	out, err := ctx.Run(context.Background(), "table1")
	if err != nil || out == "" {
		t.Fatalf("table1: %v", err)
	}
	// One small simulation through the facade's pipe re-export.
	var _ = pipe.RunConfig{}
}
