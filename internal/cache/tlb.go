package cache

import (
	"fmt"
	"math/bits"
)

// TLBConfig describes a fully associative data TLB.
type TLBConfig struct {
	Name      string
	Entries   int
	PageBytes int
	// EntryBits is the SER-relevant width of one entry (VPN tag + PPN +
	// permission bits). The baseline uses 80.
	EntryBits int
	// WalkLatency is the page-walk penalty on a miss, in cycles.
	WalkLatency int
	// HammingCAM enables the Biswas et al. refinement for CAM tag bits:
	// an entry's tag is only vulnerable while some other resident entry
	// sits at Hamming distance one from it.
	HammingCAM bool
}

// Validate reports configuration errors.
func (c TLBConfig) Validate() error {
	switch {
	case c.Entries <= 0:
		return fmt.Errorf("tlb %s: non-positive entry count %d", c.Name, c.Entries)
	case c.PageBytes <= 0 || c.PageBytes&(c.PageBytes-1) != 0:
		return fmt.Errorf("tlb %s: page size %d not a positive power of two", c.Name, c.PageBytes)
	case c.EntryBits <= 0:
		return fmt.Errorf("tlb %s: non-positive entry width %d", c.Name, c.EntryBits)
	}
	return nil
}

type tlbEntry struct {
	vpn      uint64
	valid    bool
	fillTime int64
	lastRead int64
	lru      int64
	// hd1Cycles accumulates cycles during which this entry had at least
	// one Hamming-distance-1 neighbour (only maintained with HammingCAM).
	hd1Cycles uint64
	hd1Since  int64
	hd1Count  int
}

// TLB is a fully associative, LRU translation buffer with lifetime ACE
// accounting: an entry is ACE from fill to its last read (read→evict is
// un-ACE, per the paper).
type TLB struct {
	cfg      TLBConfig
	entries  []tlbEntry
	pageBits uint

	aceEntryCycles uint64 // entry-cycles (fill→last-read spans)
	hd1EntryCycles uint64
	windowStart    int64

	Accesses uint64
	Misses   uint64
}

// NewTLB builds a TLB; the configuration must validate.
func NewTLB(cfg TLBConfig) (*TLB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &TLB{cfg: cfg, entries: make([]tlbEntry, cfg.Entries)}
	for p := cfg.PageBytes; p > 1; p >>= 1 {
		t.pageBits++
	}
	return t, nil
}

// MustNewTLB is NewTLB for known-good configurations.
func MustNewTLB(cfg TLBConfig) *TLB {
	t, err := NewTLB(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the TLB configuration.
func (t *TLB) Config() TLBConfig { return t.cfg }

// VPN returns the virtual page number of addr.
func (t *TLB) VPN(addr uint64) uint64 { return addr >> t.pageBits }

// Probe reports whether addr's page is resident, without state changes.
func (t *TLB) Probe(addr uint64) bool {
	vpn := t.VPN(addr)
	for i := range t.entries {
		if t.entries[i].valid && t.entries[i].vpn == vpn {
			return true
		}
	}
	return false
}

// Access translates addr at time now, returning the added latency (0 on
// a hit, WalkLatency on a miss, which also fills the entry).
func (t *TLB) Access(now int64, addr uint64) (latency int) {
	vpn := t.VPN(addr)
	t.Accesses++
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.vpn == vpn {
			e.lastRead = now
			e.lru = now
			return 0
		}
	}
	t.Misses++
	// Evict LRU (or take an invalid slot).
	victim := &t.entries[0]
	for i := 1; i < len(t.entries); i++ {
		e := &t.entries[i]
		if !e.valid {
			victim = e
			break
		}
		if victim.valid && e.lru < victim.lru {
			victim = e
		}
	}
	if victim.valid {
		t.closeEntry(victim, now)
	}
	victim.valid = true
	victim.vpn = vpn
	victim.fillTime = now
	victim.lastRead = now // the filling access reads the translation
	victim.lru = now
	if t.cfg.HammingCAM {
		t.recomputeHD1(now)
	}
	return t.cfg.WalkLatency
}

func (t *TLB) closeEntry(e *tlbEntry, now int64) {
	t0 := e.fillTime
	if t0 < t.windowStart {
		t0 = t.windowStart
	}
	end := e.lastRead
	if end > t0 {
		t.aceEntryCycles += uint64(end - t0)
	}
	if t.cfg.HammingCAM {
		t.closeHD1(e, now)
	}
	e.valid = false
}

// closeHD1 folds the entry's open HD-1 exposure interval into its
// counter and then into the TLB-wide total.
func (t *TLB) closeHD1(e *tlbEntry, now int64) {
	if e.hd1Count > 0 && now > e.hd1Since {
		e.hd1Cycles += uint64(now - e.hd1Since)
	}
	t.hd1EntryCycles += e.hd1Cycles
	e.hd1Cycles = 0
	e.hd1Count = 0
}

// recomputeHD1 refreshes, after a fill, which entries have a resident
// Hamming-distance-1 neighbour. TLB fills are rare enough that the
// O(entries²) pass is negligible.
func (t *TLB) recomputeHD1(now int64) {
	for i := range t.entries {
		e := &t.entries[i]
		if !e.valid {
			continue
		}
		n := 0
		for j := range t.entries {
			if i == j || !t.entries[j].valid {
				continue
			}
			if bits.OnesCount64(e.vpn^t.entries[j].vpn) == 1 {
				n++
			}
		}
		if n > 0 && e.hd1Count == 0 {
			e.hd1Since = now
		}
		if n == 0 && e.hd1Count > 0 && now > e.hd1Since {
			e.hd1Cycles += uint64(now - e.hd1Since)
		}
		e.hd1Count = n
	}
}

// Finalize closes all resident entries at time now. Call once at the end
// of a measurement.
func (t *TLB) Finalize(now int64) {
	for i := range t.entries {
		if t.entries[i].valid {
			t.closeEntry(&t.entries[i], now)
		}
	}
}

// ResetACE restarts ACE measurement at now, keeping contents.
func (t *TLB) ResetACE(now int64) {
	t.aceEntryCycles, t.hd1EntryCycles = 0, 0
	t.windowStart = now
	for i := range t.entries {
		e := &t.entries[i]
		if !e.valid {
			continue
		}
		if e.fillTime < now {
			e.fillTime = now
		}
		if e.lastRead < now {
			e.lastRead = now
		}
		e.hd1Cycles = 0
		if e.hd1Count > 0 {
			e.hd1Since = now
		}
	}
}

// ResetStats clears access counters.
func (t *TLB) ResetStats() { t.Accesses, t.Misses = 0, 0 }

// Reset returns the TLB to its power-on state (all entries invalid, all
// accumulators zeroed) without reallocating the entry array.
func (t *TLB) Reset() {
	for i := range t.entries {
		t.entries[i] = tlbEntry{}
	}
	t.aceEntryCycles, t.hd1EntryCycles = 0, 0
	t.windowStart = 0
	t.ResetStats()
}

// AVF returns the TLB AVF over a window of cycles cycles. With
// HammingCAM enabled, the tag share of each entry is scaled by its HD-1
// exposure.
func (t *TLB) AVF(cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	denom := float64(t.cfg.Entries) * float64(cycles)
	plain := float64(t.aceEntryCycles) / denom
	if !t.cfg.HammingCAM {
		return plain
	}
	// Split the entry into tag (VPN) and payload bits; payload uses the
	// lifetime result, tag additionally requires HD-1 exposure.
	tagBits := float64(52) // 64 - 13 (8kB pages) + asn bits, rounded
	entry := float64(t.cfg.EntryBits)
	if tagBits > entry {
		tagBits = entry / 2
	}
	payload := entry - tagBits
	hd1 := float64(t.hd1EntryCycles) / denom
	if hd1 > plain {
		hd1 = plain
	}
	return (plain*payload + hd1*tagBits) / entry
}

// Bits returns the total SER-relevant bit count.
func (t *TLB) Bits() uint64 { return uint64(t.cfg.Entries) * uint64(t.cfg.EntryBits) }

// MissRate returns misses/accesses.
func (t *TLB) MissRate() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.Misses) / float64(t.Accesses)
}
