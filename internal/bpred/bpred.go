// Package bpred implements the Alpha 21264 hybrid (tournament) branch
// predictor used by the baseline configuration of the paper: a 4K-entry
// global predictor indexed by a 12-bit global history, a two-level local
// predictor (1K 10-bit local histories selecting 1K 3-bit counters), and
// a 4K-entry choice predictor that arbitrates between them.
package bpred

import "errors"

// errGeometry reports a Restore against a predictor whose table sizes do
// not match the snapshot's.
var errGeometry = errors.New("bpred: snapshot geometry mismatch")

// Config sizes the predictor tables. The zero value is not useful;
// call DefaultConfig for the paper's baseline ("Hybrid, 4K global,
// 2 level 1K local, 4K choice").
type Config struct {
	GlobalEntries  int // counters in the global table (power of two)
	LocalHistories int // entries in the level-1 local history table
	LocalEntries   int // counters in the level-2 local table
	ChoiceEntries  int // counters in the choice table
	LocalHistBits  int // bits of local history kept per branch
	GlobalHistBits int // bits of global history
}

// DefaultConfig returns the 21264 baseline predictor geometry.
func DefaultConfig() Config {
	return Config{
		GlobalEntries:  4096,
		LocalHistories: 1024,
		LocalEntries:   1024,
		ChoiceEntries:  4096,
		LocalHistBits:  10,
		GlobalHistBits: 12,
	}
}

// Predictor is a tournament branch predictor. It is not safe for
// concurrent use; each simulated core owns one.
type Predictor struct {
	cfg Config

	global []uint8 // 2-bit counters
	choice []uint8 // 2-bit counters; taken means "use global"
	localH []uint16
	localC []uint8 // 3-bit counters

	ghist uint64

	// Stats
	Lookups     uint64
	Mispredicts uint64
}

// New constructs a predictor, validating and normalising the geometry
// (table sizes are rounded up to powers of two).
func New(cfg Config) *Predictor {
	norm := func(n, def int) int {
		if n <= 0 {
			n = def
		}
		p := 1
		for p < n {
			p <<= 1
		}
		return p
	}
	d := DefaultConfig()
	cfg.GlobalEntries = norm(cfg.GlobalEntries, d.GlobalEntries)
	cfg.LocalHistories = norm(cfg.LocalHistories, d.LocalHistories)
	cfg.LocalEntries = norm(cfg.LocalEntries, d.LocalEntries)
	cfg.ChoiceEntries = norm(cfg.ChoiceEntries, d.ChoiceEntries)
	if cfg.LocalHistBits <= 0 {
		cfg.LocalHistBits = d.LocalHistBits
	}
	if cfg.GlobalHistBits <= 0 {
		cfg.GlobalHistBits = d.GlobalHistBits
	}
	p := &Predictor{
		cfg:    cfg,
		global: make([]uint8, cfg.GlobalEntries),
		choice: make([]uint8, cfg.ChoiceEntries),
		localH: make([]uint16, cfg.LocalHistories),
		localC: make([]uint8, cfg.LocalEntries),
	}
	// Weakly taken everywhere: loops predict well immediately, matching
	// the stressmark's assumption of no cold-start mispredictions on the
	// backedge after warmup.
	for i := range p.global {
		p.global[i] = 2
	}
	for i := range p.choice {
		p.choice[i] = 2
	}
	for i := range p.localC {
		p.localC[i] = 4
	}
	return p
}

// Config returns the normalised geometry.
func (p *Predictor) Config() Config { return p.cfg }

// Predict returns the predicted direction for the branch at pc.
// It performs no state update; pair with Update.
func (p *Predictor) Predict(pc uint64) bool {
	gi := p.globalIndex()
	li := p.localIndex(pc)
	ci := p.choiceIndex()
	useGlobal := p.choice[ci] >= 2
	if useGlobal {
		return p.global[gi] >= 2
	}
	return p.localC[li] >= 4
}

// Update trains the predictor with the actual outcome of the branch at
// pc and returns whether the pre-update prediction was correct. In the
// pipeline model Update is called at fetch (immediate-update idealism, a
// standard fast-model simplification; redirect latency is modelled in the
// pipeline, not here).
func (p *Predictor) Update(pc uint64, taken bool) (correct bool) {
	gi := p.globalIndex()
	li := p.localIndex(pc)
	ci := p.choiceIndex()

	gPred := p.global[gi] >= 2
	lPred := p.localC[li] >= 4
	useGlobal := p.choice[ci] >= 2
	pred := lPred
	if useGlobal {
		pred = gPred
	}
	correct = pred == taken
	p.Lookups++
	if !correct {
		p.Mispredicts++
	}

	// Choice trains toward the component that was right, only when they
	// disagree.
	if gPred != lPred {
		if gPred == taken {
			p.choice[ci] = sat2Inc(p.choice[ci])
		} else {
			p.choice[ci] = sat2Dec(p.choice[ci])
		}
	}
	if taken {
		p.global[gi] = sat2Inc(p.global[gi])
		p.localC[li] = sat3Inc(p.localC[li])
	} else {
		p.global[gi] = sat2Dec(p.global[gi])
		p.localC[li] = sat3Dec(p.localC[li])
	}

	// Histories.
	hIdx := (pc >> 2) & uint64(p.cfg.LocalHistories-1)
	h := p.localH[hIdx] << 1
	if taken {
		h |= 1
	}
	p.localH[hIdx] = h & uint16((1<<p.cfg.LocalHistBits)-1)
	p.ghist <<= 1
	if taken {
		p.ghist |= 1
	}
	p.ghist &= (1 << p.cfg.GlobalHistBits) - 1
	return correct
}

// MispredictRate returns the fraction of mispredicted lookups.
func (p *Predictor) MispredictRate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Mispredicts) / float64(p.Lookups)
}

// ResetStats clears the lookup/misprediction counters, keeping the
// trained state (used when a warmup window ends).
func (p *Predictor) ResetStats() { p.Lookups, p.Mispredicts = 0, 0 }

// Reset discards all trained state and statistics, returning the
// predictor to the weakly-taken power-on state New produces. Used when a
// pooled pipeline is re-armed for a new program.
func (p *Predictor) Reset() {
	for i := range p.global {
		p.global[i] = 2
	}
	for i := range p.choice {
		p.choice[i] = 2
	}
	for i := range p.localC {
		p.localC[i] = 4
	}
	for i := range p.localH {
		p.localH[i] = 0
	}
	p.ghist = 0
	p.ResetStats()
}

// State is a deep copy of a predictor's trained tables, history and
// statistics, captured by Snapshot and reinstated by Restore. It exists
// so pipe checkpoints can include the predictor bit-exactly.
type State struct {
	Global []uint8
	Choice []uint8
	LocalH []uint16
	LocalC []uint8

	GHist       uint64
	Lookups     uint64
	Mispredicts uint64
}

// Snapshot copies the predictor's full state into dst (reusing dst's
// slices when they have the right length) and returns dst. A nil dst
// allocates a fresh State.
func (p *Predictor) Snapshot(dst *State) *State {
	if dst == nil {
		dst = &State{}
	}
	dst.Global = append(dst.Global[:0], p.global...)
	dst.Choice = append(dst.Choice[:0], p.choice...)
	dst.LocalH = append(dst.LocalH[:0], p.localH...)
	dst.LocalC = append(dst.LocalC[:0], p.localC...)
	dst.GHist = p.ghist
	dst.Lookups = p.Lookups
	dst.Mispredicts = p.Mispredicts
	return dst
}

// Restore overwrites the predictor's state with a snapshot taken from a
// predictor of identical geometry.
func (p *Predictor) Restore(st *State) error {
	if len(st.Global) != len(p.global) || len(st.Choice) != len(p.choice) ||
		len(st.LocalH) != len(p.localH) || len(st.LocalC) != len(p.localC) {
		return errGeometry
	}
	copy(p.global, st.Global)
	copy(p.choice, st.Choice)
	copy(p.localH, st.LocalH)
	copy(p.localC, st.LocalC)
	p.ghist = st.GHist
	p.Lookups = st.Lookups
	p.Mispredicts = st.Mispredicts
	return nil
}

func (p *Predictor) globalIndex() uint64 {
	return p.ghist & uint64(p.cfg.GlobalEntries-1)
}

func (p *Predictor) localIndex(pc uint64) uint64 {
	hIdx := (pc >> 2) & uint64(p.cfg.LocalHistories-1)
	return uint64(p.localH[hIdx]) & uint64(p.cfg.LocalEntries-1)
}

func (p *Predictor) choiceIndex() uint64 {
	return p.ghist & uint64(p.cfg.ChoiceEntries-1)
}

func sat2Inc(c uint8) uint8 {
	if c < 3 {
		return c + 1
	}
	return c
}

func sat2Dec(c uint8) uint8 {
	if c > 0 {
		return c - 1
	}
	return c
}

func sat3Inc(c uint8) uint8 {
	if c < 7 {
		return c + 1
	}
	return c
}

func sat3Dec(c uint8) uint8 {
	if c > 0 {
		return c - 1
	}
	return c
}
