package uarch

import "fmt"

// Structure identifies an SER-tracked hardware structure. The LQ and SQ
// are split into tag (address) and data halves because the paper's RHC
// and EDR studies assign them separate circuit-level fault rates.
type Structure int

// SER-tracked structures.
const (
	IQ Structure = iota
	ROB
	FU
	RF
	LQTag
	LQData
	SQTag
	SQData
	DL1
	DTLB
	L2
	NumStructures
)

var structureNames = [NumStructures]string{
	"IQ", "ROB", "FU", "RF", "LQ.tag", "LQ.data", "SQ.tag", "SQ.data",
	"DL1", "DTLB", "L2",
}

// String renders the structure name ("IQ", "LQ.tag", ...).
func (s Structure) String() string {
	if s >= 0 && s < NumStructures {
		return structureNames[s]
	}
	return fmt.Sprintf("structure(%d)", int(s))
}

// CoreStructures lists the queueing structures plus the register file.
var CoreStructures = []Structure{IQ, ROB, FU, RF, LQTag, LQData, SQTag, SQData}

// QueueStructures lists the paper's "Queuing Structures (QS)" class.
var QueueStructures = []Structure{IQ, ROB, FU, LQTag, LQData, SQTag, SQData}

// FaultRates gives the raw circuit-level fault rate of every structure in
// the paper's arbitrary "units per bit".
type FaultRates [NumStructures]float64

// Fingerprint returns a canonical description of the rate vector.
// Rates never enter simulation-result cache keys (a Result is
// rate-independent; rates only weight it afterwards), but search-level
// caches use this to key search outcomes.
func (r FaultRates) Fingerprint() string {
	return fmt.Sprintf("uarch.FaultRates%v", [NumStructures]float64(r))
}

// UniformRates returns rate u for every structure (the paper's default is
// 1 unit/bit everywhere).
func UniformRates(u float64) FaultRates {
	var r FaultRates
	for i := range r {
		r[i] = u
	}
	return r
}

// RHCRates returns the Figure 8a rates for the configuration whose ROB,
// LQ and SQ are built from Radiation-Hardened Circuitry. Cache rates are
// unchanged (the paper assumes unchanged fault rates in DL1, DTLB, L2).
func RHCRates() FaultRates {
	r := UniformRates(1)
	r[ROB] = 0.25
	r[LQTag] = 0.4
	r[LQData] = 0.4
	r[SQTag] = 0.35
	r[SQData] = 0.35
	return r
}

// EDRRates returns the Figure 8a rates for the configuration whose ROB,
// LQ and SQ are protected by Error Detection and Recovery (observable
// rate zero).
func EDRRates() FaultRates {
	r := UniformRates(1)
	r[ROB] = 0
	r[LQTag] = 0
	r[LQData] = 0
	r[SQTag] = 0
	r[SQData] = 0
	return r
}

// Bits returns the SER-relevant bit count of structure s under config c.
func Bits(c Config, s Structure) uint64 {
	core := c.Core
	switch s {
	case IQ:
		return uint64(core.IQEntries) * uint64(core.IQEntryBits)
	case ROB:
		return uint64(core.ROBEntries) * uint64(core.ROBEntryBits)
	case FU:
		return core.FUBits()
	case RF:
		return uint64(core.PhysRegs) * uint64(core.RegBits)
	case LQTag, LQData:
		return uint64(core.LQEntries) * uint64(core.LSQEntryBits) / 2
	case SQTag, SQData:
		return uint64(core.SQEntries) * uint64(core.LSQEntryBits) / 2
	case DL1:
		return c.Mem.DL1.Bits()
	case L2:
		return c.Mem.L2.Bits()
	case DTLB:
		return uint64(c.Mem.DTLB.Entries) * uint64(c.Mem.DTLB.EntryBits)
	}
	return 0
}
