package pipe

import (
	"sync"

	"avfstress/internal/avf"
	"avfstress/internal/prog"
	"avfstress/internal/uarch"
)

// Pool reuses Pipelines — ROB ring, checkpoint matrix, register file,
// event heaps and the whole cache hierarchy — across many simulations of
// one configuration. GA fitness evaluation simulates thousands of short
// candidate programs on a fixed microarchitecture; building a fresh
// Pipeline per candidate allocates all of that every time, and the pool
// removes it from the hot path. Safe for concurrent use; each Simulate
// call holds a pipeline exclusively.
type Pool struct {
	cfg  uarch.Config
	pool sync.Pool
}

// NewPool validates the configuration once and returns an empty pool.
func NewPool(cfg uarch.Config) (*Pool, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Pool{cfg: cfg}, nil
}

// Config returns the pool's configuration.
func (pp *Pool) Config() uarch.Config { return pp.cfg }

// get returns a pooled pipeline reset to program p (or a fresh one when
// the pool is empty). The caller runs it and Puts it back.
func (pp *Pool) get(p *prog.Program) (*Pipeline, error) {
	if v := pp.pool.Get(); v != nil {
		pl := v.(*Pipeline)
		if err := pl.Reset(p); err != nil {
			pp.pool.Put(pl)
			return nil, err
		}
		return pl, nil
	}
	return New(pp.cfg, p)
}

// Simulate runs program p under rc on a pooled pipeline, returning the
// pipeline for reuse afterwards. Results are bit-identical to
// Simulate(cfg, p, rc) on a fresh pipeline.
func (pp *Pool) Simulate(p *prog.Program, rc RunConfig) (*avf.Result, error) {
	pl, err := pp.get(p)
	if err != nil {
		return nil, err
	}
	res, err := pl.Run(rc)
	pp.pool.Put(pl)
	return res, err
}
