package inject

import (
	"testing"

	"avfstress/internal/simcache"
)

// TestRootCauseByteDeterministic: the root-cause tables are part of the
// rendered report, so they inherit the campaign's byte-determinism
// contract — identical across worker counts, cache states (off, cold,
// warm) and checkpoint intervals (disabled, automatic, dense). The
// checkpoint axis is the sharp one: with checkpointing disabled trials
// replay one-by-one in early-resolution mode, with it enabled they
// batch through fork-replay in full mode, and the first-divergent-
// commit records must come out identical on both paths.
func TestRootCauseByteDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in -short mode")
	}
	o := testOptions(t, 200)
	o.RootCause = true
	o.CheckpointInterval = -1
	o.Parallelism = 1
	base, err := Run(bg, o)
	if err != nil {
		t.Fatal(err)
	}
	if base.RootCause == nil {
		t.Fatal("RootCause campaign returned no attribution tables")
	}
	if base.RootCause.Corrupted == 0 || base.RootCause.Attributed == 0 {
		t.Fatalf("degenerate attribution: %+v", base.RootCause)
	}
	if len(base.RootCause.Instrs) == 0 || len(base.RootCause.Classes) == 0 {
		t.Fatal("attribution produced empty tables")
	}
	want := base.String()

	dir := t.TempDir()
	for _, tc := range []struct {
		name     string
		workers  int
		interval int64
		cache    bool
	}{
		{"ckpt0-w4", 4, 0, false},
		{"ckpt1024-w2", 2, 1024, false},
		{"cold-cache-w1", 1, 0, true},
		{"warm-cache-w4", 4, 0, true},
		{"warm-cache-nockpt", 4, -1, true},
	} {
		o.Parallelism = tc.workers
		o.CheckpointInterval = tc.interval
		o.Cache = nil
		if tc.cache {
			o.Cache = simcache.New(simcache.Options{Dir: dir})
		}
		got, err := Run(bg, o)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got.String() != want {
			t.Errorf("%s: report differs from baseline:\n--- want\n%s\n--- got\n%s", tc.name, want, got)
		}
	}
}

// TestRootCauseOffByDefault: campaigns without the knob carry no
// attribution tables and render the legacy report.
func TestRootCauseOffByDefault(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in -short mode")
	}
	o := testOptions(t, 40)
	res, err := Run(bg, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.RootCause != nil {
		t.Error("RootCause tables attached without Options.RootCause")
	}
}
