package isa

// Per-opcode bit-transfer functions for static backward bit-liveness
// (internal/liveness, DESIGN.md §12). For each instruction class the
// table answers: given a demand mask over the destination value's bits,
// which bits of each register source can influence the demanded bits?
// The rules are deliberately conservative in the "more bits demanded"
// direction — over-approximating demand only ever keeps more bits live,
// which is the sound side for pruning.

// DownClose returns the downward closure of a bit mask: every position
// at or below the mask's highest set bit. Ripple carries (addition) and
// partial products (multiplication) propagate influence strictly
// upward, so bit i of a sum or product depends on bits 0..i of both
// operands — the transfer of a demanded bit set is the closure below
// its top bit.
func DownClose(m uint64) uint64 {
	if m == 0 {
		return 0
	}
	// Smear the top set bit downward.
	m |= m >> 1
	m |= m >> 2
	m |= m >> 4
	m |= m >> 8
	m |= m >> 16
	m |= m >> 32
	return m
}

// AllBits is the full 64-bit register demand mask.
const AllBits = ^uint64(0)

// SrcDemand returns the bit-level demand each register source of in
// inherits from a demand of destDemand on its destination value
// (src1 maps to Src1, src2 to Src2; zero for sources the instruction
// does not read). Root consumers that leave the register file — the
// store's address and data, the branch's compare operand, the load's
// address generation — demand full words: their consumption is
// architectural (or decides control flow), not a bit-sliced dataflow
// edge. An UnACE instruction's result is discarded by definition, so it
// propagates no demand at all.
func SrcDemand(in *Instr, destDemand uint64) (src1, src2 uint64) {
	if in.UnACE {
		return 0, 0
	}
	switch in.Op {
	case OpAdd, OpMul:
		d := DownClose(destDemand)
		src1 = d
		if in.RegReg {
			src2 = d
		}
	case OpLoad:
		// The base register feeds address generation; any demanded
		// result bit makes the whole address relevant.
		if destDemand != 0 {
			src1 = AllBits
		}
	case OpStore:
		// Address and data both reach memory at retire.
		src1, src2 = AllBits, AllBits
	case OpBranch:
		// The compare operand decides the direction; all bits count.
		src1 = AllBits
	}
	return src1, src2
}
