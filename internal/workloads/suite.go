package workloads

import (
	"fmt"

	"avfstress/internal/prog"
	"avfstress/internal/uarch"
)

// Profiles returns the full 33-program reference suite in presentation
// order: 11 SPECint2006, 10 SPECfp2006, 12 MiBench proxies (the counts
// the paper evaluates). Characteristic values are first-order published
// behaviours: mcf/omnetpp/astar pointer-chasing and memory-bound,
// libquantum/GemsFDTD/bwaves streaming, gobmk/sjeng mispredict-heavy,
// hmmer/h264ref compute-dense, MiBench kernels small-footprint and
// predictable.
func Profiles() []Profile {
	return []Profile{
		// --- SPEC CPU2006 integer ---
		{Name: "400.perlbench", Suite: SPECInt, LoadFrac: 0.25, StoreFrac: 0.12, BranchFrac: 0.18,
			HardBranchFrac: 0.5, MispredP: 0.05, LongArithFrac: 0.05, Lanes: 4, ChainLen: 3,
			WorkingSetL2x: 0.35, ChaseFrac: 0.15, RandomFrac: 0.35, UnACEFrac: 0.08, BodySize: 180},
		{Name: "401.bzip2", Suite: SPECInt, LoadFrac: 0.26, StoreFrac: 0.09, BranchFrac: 0.14,
			HardBranchFrac: 0.6, MispredP: 0.08, LongArithFrac: 0.04, Lanes: 4, ChainLen: 4,
			WorkingSetL2x: 1.6, ChaseFrac: 0.05, RandomFrac: 0.5, UnACEFrac: 0.06, BodySize: 140},
		{Name: "403.gcc", Suite: SPECInt, LoadFrac: 0.27, StoreFrac: 0.14, BranchFrac: 0.16,
			HardBranchFrac: 0.35, MispredP: 0.04, LongArithFrac: 0.03, Lanes: 4, ChainLen: 3,
			WorkingSetL2x: 2.2, ChaseFrac: 0.25, RandomFrac: 0.45, UnACEFrac: 0.09, BodySize: 260},
		{Name: "429.mcf", Suite: SPECInt, LoadFrac: 0.31, StoreFrac: 0.09, BranchFrac: 0.17,
			HardBranchFrac: 0.55, MispredP: 0.08, LongArithFrac: 0.02, Lanes: 2, ChainLen: 2,
			WorkingSetL2x: 4.0, ChaseFrac: 0.6, RandomFrac: 0.3, UnACEFrac: 0.05, BodySize: 90},
		{Name: "445.gobmk", Suite: SPECInt, LoadFrac: 0.24, StoreFrac: 0.12, BranchFrac: 0.19,
			HardBranchFrac: 0.75, MispredP: 0.11, LongArithFrac: 0.04, Lanes: 4, ChainLen: 3,
			WorkingSetL2x: 0.35, ChaseFrac: 0.1, RandomFrac: 0.4, UnACEFrac: 0.08, BodySize: 200},
		{Name: "456.hmmer", Suite: SPECInt, LoadFrac: 0.4, StoreFrac: 0.16, BranchFrac: 0.07,
			HardBranchFrac: 0.2, MispredP: 0.02, LongArithFrac: 0.08, Lanes: 6, ChainLen: 4,
			WorkingSetL2x: 0.3, ChaseFrac: 0, RandomFrac: 0.1, UnACEFrac: 0.04, BodySize: 150},
		{Name: "458.sjeng", Suite: SPECInt, LoadFrac: 0.22, StoreFrac: 0.08, BranchFrac: 0.19,
			HardBranchFrac: 0.8, MispredP: 0.12, LongArithFrac: 0.05, Lanes: 4, ChainLen: 3,
			WorkingSetL2x: 0.4, ChaseFrac: 0.15, RandomFrac: 0.45, UnACEFrac: 0.07, BodySize: 170},
		{Name: "462.libquantum", Suite: SPECInt, LoadFrac: 0.25, StoreFrac: 0.06, BranchFrac: 0.22,
			HardBranchFrac: 0.1, MispredP: 0.01, LongArithFrac: 0.1, Lanes: 4, ChainLen: 2,
			WorkingSetL2x: 3.0, ChaseFrac: 0, RandomFrac: 0.05, UnACEFrac: 0.04, BodySize: 80},
		{Name: "464.h264ref", Suite: SPECInt, LoadFrac: 0.35, StoreFrac: 0.14, BranchFrac: 0.08,
			HardBranchFrac: 0.35, MispredP: 0.05, LongArithFrac: 0.12, Lanes: 5, ChainLen: 4,
			WorkingSetL2x: 0.45, ChaseFrac: 0.05, RandomFrac: 0.2, UnACEFrac: 0.05, BodySize: 220},
		{Name: "471.omnetpp", Suite: SPECInt, LoadFrac: 0.33, StoreFrac: 0.19, BranchFrac: 0.17,
			HardBranchFrac: 0.5, MispredP: 0.07, LongArithFrac: 0.03, Lanes: 3, ChainLen: 2,
			WorkingSetL2x: 2.6, ChaseFrac: 0.4, RandomFrac: 0.45, UnACEFrac: 0.06, BodySize: 190},
		{Name: "473.astar", Suite: SPECInt, LoadFrac: 0.28, StoreFrac: 0.05, BranchFrac: 0.16,
			HardBranchFrac: 0.6, MispredP: 0.1, LongArithFrac: 0.03, Lanes: 3, ChainLen: 3,
			WorkingSetL2x: 1.9, ChaseFrac: 0.5, RandomFrac: 0.35, UnACEFrac: 0.05, BodySize: 120},

		// --- SPEC CPU2006 floating point (high-ILP integer proxies) ---
		{Name: "410.bwaves", Suite: SPECFP, LoadFrac: 0.4, StoreFrac: 0.1, BranchFrac: 0.03,
			HardBranchFrac: 0.05, MispredP: 0.01, LongArithFrac: 0.4, Lanes: 7, ChainLen: 5,
			WorkingSetL2x: 3.2, ChaseFrac: 0, RandomFrac: 0.05, UnACEFrac: 0.03, BodySize: 240},
		{Name: "433.milc", Suite: SPECFP, LoadFrac: 0.37, StoreFrac: 0.15, BranchFrac: 0.03,
			HardBranchFrac: 0.1, MispredP: 0.02, LongArithFrac: 0.38, Lanes: 6, ChainLen: 4,
			WorkingSetL2x: 2.8, ChaseFrac: 0, RandomFrac: 0.15, UnACEFrac: 0.04, BodySize: 200},
		{Name: "434.zeusmp", Suite: SPECFP, LoadFrac: 0.29, StoreFrac: 0.11, BranchFrac: 0.04,
			HardBranchFrac: 0.1, MispredP: 0.02, LongArithFrac: 0.45, Lanes: 7, ChainLen: 5,
			WorkingSetL2x: 2.4, ChaseFrac: 0, RandomFrac: 0.1, UnACEFrac: 0.04, BodySize: 260},
		{Name: "435.gromacs", Suite: SPECFP, LoadFrac: 0.3, StoreFrac: 0.13, BranchFrac: 0.06,
			HardBranchFrac: 0.2, MispredP: 0.03, LongArithFrac: 0.42, Lanes: 6, ChainLen: 5,
			WorkingSetL2x: 0.4, ChaseFrac: 0, RandomFrac: 0.2, UnACEFrac: 0.04, BodySize: 220},
		{Name: "436.cactusADM", Suite: SPECFP, LoadFrac: 0.36, StoreFrac: 0.12, BranchFrac: 0.01,
			HardBranchFrac: 0.05, MispredP: 0.01, LongArithFrac: 0.5, Lanes: 6, ChainLen: 6,
			WorkingSetL2x: 2.0, ChaseFrac: 0, RandomFrac: 0.05, UnACEFrac: 0.03, BodySize: 300},
		{Name: "437.leslie3d", Suite: SPECFP, LoadFrac: 0.38, StoreFrac: 0.12, BranchFrac: 0.03,
			HardBranchFrac: 0.05, MispredP: 0.01, LongArithFrac: 0.42, Lanes: 7, ChainLen: 5,
			WorkingSetL2x: 2.6, ChaseFrac: 0, RandomFrac: 0.05, UnACEFrac: 0.03, BodySize: 240},
		{Name: "444.namd", Suite: SPECFP, LoadFrac: 0.32, StoreFrac: 0.09, BranchFrac: 0.05,
			HardBranchFrac: 0.15, MispredP: 0.02, LongArithFrac: 0.48, Lanes: 7, ChainLen: 6,
			WorkingSetL2x: 0.3, ChaseFrac: 0, RandomFrac: 0.15, UnACEFrac: 0.03, BodySize: 260},
		{Name: "447.dealII", Suite: SPECFP, LoadFrac: 0.37, StoreFrac: 0.13, BranchFrac: 0.06,
			HardBranchFrac: 0.2, MispredP: 0.02, LongArithFrac: 0.35, Lanes: 6, ChainLen: 5,
			WorkingSetL2x: 1.8, ChaseFrac: 0.1, RandomFrac: 0.25, UnACEFrac: 0.03, BodySize: 230},
		{Name: "450.soplex", Suite: SPECFP, LoadFrac: 0.36, StoreFrac: 0.08, BranchFrac: 0.12,
			HardBranchFrac: 0.4, MispredP: 0.05, LongArithFrac: 0.3, Lanes: 5, ChainLen: 4,
			WorkingSetL2x: 2.2, ChaseFrac: 0.15, RandomFrac: 0.3, UnACEFrac: 0.04, BodySize: 190},
		{Name: "459.GemsFDTD", Suite: SPECFP, LoadFrac: 0.41, StoreFrac: 0.14, BranchFrac: 0.02,
			HardBranchFrac: 0.05, MispredP: 0.01, LongArithFrac: 0.45, Lanes: 7, ChainLen: 5,
			WorkingSetL2x: 3.0, ChaseFrac: 0, RandomFrac: 0.05, UnACEFrac: 0.03, BodySize: 280},

		// --- MiBench ---
		{Name: "basicmath", Suite: MiBench, LoadFrac: 0.2, StoreFrac: 0.08, BranchFrac: 0.12,
			HardBranchFrac: 0.15, MispredP: 0.02, LongArithFrac: 0.35, Lanes: 3, ChainLen: 5,
			WorkingSetL2x: 0.15, ChaseFrac: 0, RandomFrac: 0.4, UnACEFrac: 0.08, BodySize: 90},
		{Name: "bitcount", Suite: MiBench, LoadFrac: 0.12, StoreFrac: 0.04, BranchFrac: 0.2,
			HardBranchFrac: 0.3, MispredP: 0.04, LongArithFrac: 0.02, Lanes: 4, ChainLen: 4,
			WorkingSetL2x: 0.13, ChaseFrac: 0, RandomFrac: 0.4, UnACEFrac: 0.1, BodySize: 60},
		{Name: "qsort", Suite: MiBench, LoadFrac: 0.3, StoreFrac: 0.15, BranchFrac: 0.18,
			HardBranchFrac: 0.7, MispredP: 0.09, LongArithFrac: 0.02, Lanes: 3, ChainLen: 2,
			WorkingSetL2x: 0.3, ChaseFrac: 0.1, RandomFrac: 0.5, UnACEFrac: 0.06, BodySize: 80},
		{Name: "susan", Suite: MiBench, LoadFrac: 0.31, StoreFrac: 0.1, BranchFrac: 0.09,
			HardBranchFrac: 0.2, MispredP: 0.02, LongArithFrac: 0.25, Lanes: 5, ChainLen: 4,
			WorkingSetL2x: 0.2, ChaseFrac: 0, RandomFrac: 0.1, UnACEFrac: 0.05, BodySize: 130},
		{Name: "jpeg", Suite: MiBench, LoadFrac: 0.28, StoreFrac: 0.12, BranchFrac: 0.1,
			HardBranchFrac: 0.3, MispredP: 0.04, LongArithFrac: 0.2, Lanes: 4, ChainLen: 4,
			WorkingSetL2x: 0.15, ChaseFrac: 0, RandomFrac: 0.2, UnACEFrac: 0.07, BodySize: 140},
		{Name: "dijkstra", Suite: MiBench, LoadFrac: 0.3, StoreFrac: 0.1, BranchFrac: 0.16,
			HardBranchFrac: 0.5, MispredP: 0.06, LongArithFrac: 0.03, Lanes: 3, ChainLen: 2,
			WorkingSetL2x: 0.25, ChaseFrac: 0.2, RandomFrac: 0.4, UnACEFrac: 0.06, BodySize: 70},
		{Name: "patricia", Suite: MiBench, LoadFrac: 0.32, StoreFrac: 0.1, BranchFrac: 0.17,
			HardBranchFrac: 0.55, MispredP: 0.07, LongArithFrac: 0.02, Lanes: 2, ChainLen: 2,
			WorkingSetL2x: 0.35, ChaseFrac: 0.35, RandomFrac: 0.45, UnACEFrac: 0.05, BodySize: 80},
		{Name: "stringsearch", Suite: MiBench, LoadFrac: 0.3, StoreFrac: 0.05, BranchFrac: 0.2,
			HardBranchFrac: 0.4, MispredP: 0.05, LongArithFrac: 0.01, Lanes: 3, ChainLen: 2,
			WorkingSetL2x: 0.14, ChaseFrac: 0, RandomFrac: 0.15, UnACEFrac: 0.08, BodySize: 60},
		{Name: "blowfish", Suite: MiBench, LoadFrac: 0.25, StoreFrac: 0.1, BranchFrac: 0.06,
			HardBranchFrac: 0.1, MispredP: 0.02, LongArithFrac: 0.05, Lanes: 4, ChainLen: 5,
			WorkingSetL2x: 0.18, ChaseFrac: 0, RandomFrac: 0.3, UnACEFrac: 0.05, BodySize: 110},
		{Name: "sha", Suite: MiBench, LoadFrac: 0.2, StoreFrac: 0.08, BranchFrac: 0.05,
			HardBranchFrac: 0.1, MispredP: 0.01, LongArithFrac: 0.08, Lanes: 4, ChainLen: 6,
			WorkingSetL2x: 0.16, ChaseFrac: 0, RandomFrac: 0.35, UnACEFrac: 0.06, BodySize: 120},
		{Name: "crc32", Suite: MiBench, LoadFrac: 0.28, StoreFrac: 0.04, BranchFrac: 0.18,
			HardBranchFrac: 0.05, MispredP: 0.005, LongArithFrac: 0.01, Lanes: 3, ChainLen: 3,
			WorkingSetL2x: 0.15, ChaseFrac: 0, RandomFrac: 0.5, UnACEFrac: 0.07, BodySize: 50},
		{Name: "fft", Suite: MiBench, LoadFrac: 0.3, StoreFrac: 0.13, BranchFrac: 0.07,
			HardBranchFrac: 0.15, MispredP: 0.02, LongArithFrac: 0.4, Lanes: 5, ChainLen: 5,
			WorkingSetL2x: 0.4, ChaseFrac: 0, RandomFrac: 0.1, UnACEFrac: 0.04, BodySize: 150},
	}
}

// BySuite returns the profiles of one suite, in order.
func BySuite(s Suite) []Profile {
	var out []Profile
	for _, p := range Profiles() {
		if p.Suite == s {
			out = append(out, p)
		}
	}
	return out
}

// ByName returns the named profile.
func ByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workloads: unknown workload %q", name)
}

// BuildAll synthesises every profile for cfg with a fixed seed,
// returning programs in suite order.
func BuildAll(cfg uarch.Config, seed int64) ([]*prog.Program, error) {
	var out []*prog.Program
	for _, pf := range Profiles() {
		p, err := pf.Build(cfg, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
