package scenario

import (
	"context"
	"strings"
	"testing"
)

func render(s string) func(context.Context) (string, error) {
	return func(context.Context) (string, error) { return s, nil }
}

func TestRegistryOrderAndLookup(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"b", "a", "c"} {
		if err := r.Register(Definition{Name: n, Render: render(n)}); err != nil {
			t.Fatal(err)
		}
	}
	names := r.Names()
	if strings.Join(names, ",") != "b,a,c" {
		t.Errorf("registration order lost: %v", names)
	}
	d, err := r.Lookup("a")
	if err != nil || d.Name != "a" {
		t.Errorf("lookup a: %v %v", d, err)
	}
	// Names must return a copy the caller cannot corrupt.
	names[0] = "zzz"
	if r.Names()[0] != "b" {
		t.Error("Names leaked internal order slice")
	}
}

func TestRegistryRejects(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(Definition{Render: render("")}); err == nil {
		t.Error("nameless definition accepted")
	}
	if err := r.Register(Definition{Name: "x"}); err == nil {
		t.Error("render-less definition accepted")
	}
	if err := r.Register(Definition{Name: "x", Render: render("x")}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(Definition{Name: "x", Render: render("x")}); err == nil {
		t.Error("duplicate registration accepted")
	}
	if _, err := r.Lookup("nope"); err == nil ||
		!strings.Contains(err.Error(), "unknown scenario") || !strings.Contains(err.Error(), "x") {
		t.Errorf("unknown-name error not descriptive: %v", err)
	}
}

func TestSpecValidate(t *testing.T) {
	good := []Spec{
		{},
		{Config: "configA", Rates: "edr", Suite: "mibench", Mode: "reference"},
		{Scenarios: []string{"fig3", "stressmark:baseline:rhc"}, Scale: 8, GAPop: 4},
	}
	for i, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("spec %d rejected: %v", i, err)
		}
	}
	bad := []Spec{
		{Config: "pentium"},
		{Rates: "cosmic"},
		{Suite: "spec2017"},
		{Mode: "guess"},
		{Scale: -1},
		{GAPop: -2},
		{WorkloadInstr: -5},
		{Parallelism: -1},
		{TimeoutSec: -1},
		{Scenarios: []string{"fig3", " "}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
}
