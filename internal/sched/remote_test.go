package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"avfstress/internal/scenario"
)

// scriptedExec is a fake Executor with per-key scripted behaviour and
// a call log.
type scriptedExec struct {
	mu       sync.Mutex
	try      map[string]ClaimState // TryAcquire answer (default ClaimOwn)
	await    map[string]ClaimState // Await answer after a ClaimWait
	tryErr   error
	awaitErr error
	released map[string]error
	awaits   int
}

func newScriptedExec() *scriptedExec {
	return &scriptedExec{
		try:      map[string]ClaimState{},
		await:    map[string]ClaimState{},
		released: map[string]error{},
	}
}

func (e *scriptedExec) TryAcquire(key string) (ClaimState, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.tryErr != nil {
		return ClaimWait, e.tryErr
	}
	if st, ok := e.try[key]; ok {
		return st, nil
	}
	return ClaimOwn, nil
}

func (e *scriptedExec) Await(ctx context.Context, key string) (ClaimState, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.awaits++
	if e.awaitErr != nil {
		return ClaimWait, e.awaitErr
	}
	if st, ok := e.await[key]; ok {
		return st, nil
	}
	return ClaimDone, nil
}

func (e *scriptedExec) Release(key string, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.released[key] = err
}

func (e *scriptedExec) releasedWith(key string) (error, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	err, ok := e.released[key]
	return err, ok
}

func leasedJob(key string, runs *int32, mu *sync.Mutex) scenario.Job {
	return scenario.Job{
		Key:   key,
		Lease: true,
		Run: func(context.Context) error {
			mu.Lock()
			*runs++
			mu.Unlock()
			return nil
		},
	}
}

// TestExecutorGrantRunsAndReleases: a granted claim runs the job and
// releases with its outcome.
func TestExecutorGrantRunsAndReleases(t *testing.T) {
	ex := newScriptedExec()
	var mu sync.Mutex
	var runs int32
	if err := Run(context.Background(), []scenario.Job{leasedJob("a", &runs, &mu)}, Options{Executor: ex}); err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Errorf("job ran %d times, want 1", runs)
	}
	if err, ok := ex.releasedWith("a"); !ok || err != nil {
		t.Errorf("released(a) = (%v, %v), want a nil-error release", err, ok)
	}
}

// TestExecutorFailureReleasesError: a failing owned job releases the
// claim with its error so peers re-arbitrate instead of waiting on a
// completion that never happened.
func TestExecutorFailureReleasesError(t *testing.T) {
	ex := newScriptedExec()
	boom := errors.New("boom")
	jobs := []scenario.Job{{Key: "f", Lease: true, Run: func(context.Context) error { return boom }}}
	if err := Run(context.Background(), jobs, Options{Executor: ex}); !errors.Is(err, boom) {
		t.Fatalf("Run = %v, want the job error", err)
	}
	if rerr, ok := ex.releasedWith("f"); !ok || !errors.Is(rerr, boom) {
		t.Errorf("released(f) = (%v, %v), want the job error", rerr, ok)
	}
}

// TestExecutorDoneStillRunsWarm: when a peer already completed the
// job, the closure still runs locally (warm assembly populates the
// in-process memo state) but nothing is released.
func TestExecutorDoneStillRunsWarm(t *testing.T) {
	ex := newScriptedExec()
	ex.try["w"] = ClaimDone
	var mu sync.Mutex
	var runs int32
	if err := Run(context.Background(), []scenario.Job{leasedJob("w", &runs, &mu)}, Options{Executor: ex}); err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Errorf("warm job ran %d times, want 1", runs)
	}
	if _, ok := ex.releasedWith("w"); ok {
		t.Error("released a claim this node never owned")
	}
}

// TestExecutorWaitThenTakeover: a parked waiter whose Await answers
// ClaimOwn (the owner died; the claim was stolen) runs the job cold
// and releases it.
func TestExecutorWaitThenTakeover(t *testing.T) {
	ex := newScriptedExec()
	ex.try["s"] = ClaimWait
	ex.await["s"] = ClaimOwn
	var mu sync.Mutex
	var runs int32
	if err := Run(context.Background(), []scenario.Job{leasedJob("s", &runs, &mu)}, Options{Executor: ex}); err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Errorf("stolen job ran %d times, want 1", runs)
	}
	if err, ok := ex.releasedWith("s"); !ok || err != nil {
		t.Errorf("released(s) = (%v, %v), want a nil-error release after takeover", err, ok)
	}
}

// TestExecutorErrorFallsBackLocal: arbitration failures never fail the
// run — the job executes locally, unarbitrated.
func TestExecutorErrorFallsBackLocal(t *testing.T) {
	for name, setup := range map[string]func(*scriptedExec){
		"try-error":   func(e *scriptedExec) { e.tryErr = errors.New("fabric down") },
		"await-error": func(e *scriptedExec) { e.try["l"] = ClaimWait; e.awaitErr = errors.New("fabric down") },
	} {
		ex := newScriptedExec()
		setup(ex)
		var mu sync.Mutex
		var runs int32
		if err := Run(context.Background(), []scenario.Job{leasedJob("l", &runs, &mu)}, Options{Executor: ex}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if runs != 1 {
			t.Errorf("%s: job ran %d times, want a local fallback run", name, runs)
		}
		if _, ok := ex.releasedWith("l"); ok {
			t.Errorf("%s: released a claim the executor never granted", name)
		}
	}
}

// TestExecutorIgnoresUnleasedJobs: only Lease jobs are arbitrated.
func TestExecutorIgnoresUnleasedJobs(t *testing.T) {
	ex := newScriptedExec()
	ex.try["u"] = ClaimWait // would park if consulted
	jobs := []scenario.Job{{Key: "u", Run: func(context.Context) error { return nil }}}
	done := make(chan error, 1)
	go func() { done <- Run(context.Background(), jobs, Options{Executor: ex}) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("unleased job consulted the executor and parked")
	}
	if ex.awaits != 0 {
		t.Errorf("executor Await called %d times for an unleased job", ex.awaits)
	}
}

// TestExecutorParkedWaitersKeepSemaphoreBalanced floods a 2-worker run
// with leased jobs that all park before resolving warm: if a parked
// waiter failed to re-acquire its worker slot the pool would deadlock
// or over-admit; completion within the timeout with every job run once
// pins the balance.
func TestExecutorParkedWaitersKeepSemaphoreBalanced(t *testing.T) {
	ex := newScriptedExec()
	var mu sync.Mutex
	var runs int32
	var jobs []scenario.Job
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("park-%d", i)
		ex.try[key] = ClaimWait // every job parks, Await answers ClaimDone
		jobs = append(jobs, leasedJob(key, &runs, &mu))
	}
	done := make(chan error, 1)
	go func() { done <- Run(context.Background(), jobs, Options{Workers: 2, Executor: ex}) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run deadlocked: parked waiters corrupted the worker semaphore")
	}
	if runs != 50 {
		t.Errorf("ran %d jobs, want 50", runs)
	}
}
