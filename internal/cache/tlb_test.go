package cache

import "testing"

func tinyTLB() *TLB {
	return MustNewTLB(TLBConfig{
		Name: "t", Entries: 4, PageBytes: 8 << 10, EntryBits: 80, WalkLatency: 30,
	})
}

func TestTLBConfigValidation(t *testing.T) {
	bad := []TLBConfig{
		{Entries: 0, PageBytes: 8192, EntryBits: 80},
		{Entries: 4, PageBytes: 1000, EntryBits: 80}, // not pow2
		{Entries: 4, PageBytes: 8192, EntryBits: 0},
	}
	for _, c := range bad {
		if _, err := NewTLB(c); err == nil {
			t.Errorf("accepted %+v", c)
		}
	}
}

func TestTLBHitMissWalk(t *testing.T) {
	tl := tinyTLB()
	if lat := tl.Access(0, 0); lat != 30 {
		t.Errorf("cold access latency %d, want walk latency 30", lat)
	}
	if lat := tl.Access(1, 4096); lat != 0 {
		t.Errorf("same-page access latency %d, want 0", lat)
	}
	if !tl.Probe(0) {
		t.Error("probe after fill missed")
	}
	if tl.MissRate() != 0.5 {
		t.Errorf("miss rate %f, want 0.5", tl.MissRate())
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tl := tinyTLB()
	page := func(i int) uint64 { return uint64(i) * 8192 }
	for i := 0; i < 4; i++ {
		tl.Access(int64(i), page(i))
	}
	tl.Access(10, page(0)) // page 0 now MRU
	tl.Access(11, page(4)) // evicts page 1 (LRU)
	if tl.Probe(page(1)) {
		t.Error("LRU page survived")
	}
	if !tl.Probe(page(0)) || !tl.Probe(page(4)) {
		t.Error("wrong page evicted")
	}
}

func TestTLBLifetimeFillToLastRead(t *testing.T) {
	// An entry is ACE from fill to its last read; read→evict is un-ACE
	// (the paper uses exactly this to require DTLB coverage *without*
	// evictions).
	tl := tinyTLB()
	tl.Access(0, 0)  // fill at 0
	tl.Access(40, 0) // last read at 40
	tl.Finalize(100) // tail 40..100 un-ACE
	if tl.aceEntryCycles != 40 {
		t.Errorf("ACE entry-cycles = %d, want 40", tl.aceEntryCycles)
	}
	if avf := tl.AVF(100); avf != 40.0/400.0 {
		t.Errorf("AVF = %f, want 0.1", avf)
	}
}

func TestTLBResetACE(t *testing.T) {
	tl := tinyTLB()
	tl.Access(0, 0)
	tl.Access(50, 0)
	tl.ResetACE(100)
	if tl.aceEntryCycles != 0 {
		t.Error("counters survived reset")
	}
	tl.Access(150, 0)
	tl.Finalize(200)
	if tl.aceEntryCycles != 50 {
		t.Errorf("clipped span = %d entry-cycles, want 50 (100..150)", tl.aceEntryCycles)
	}
}

func TestTLBBits(t *testing.T) {
	tl := tinyTLB()
	if tl.Bits() != 4*80 {
		t.Errorf("bits = %d, want 320", tl.Bits())
	}
}

func TestTLBHammingCAM(t *testing.T) {
	tl := MustNewTLB(TLBConfig{
		Name: "h", Entries: 4, PageBytes: 8 << 10, EntryBits: 80,
		WalkLatency: 30, HammingCAM: true,
	})
	// VPNs 0 and 1 differ in exactly one bit: both become HD-1 exposed.
	tl.Access(0, 0*8192)
	tl.Access(10, 1*8192)
	tl.Access(90, 0*8192)
	tl.Access(90, 1*8192)
	tl.Finalize(100)
	if tl.hd1EntryCycles == 0 {
		t.Error("Hamming-distance-1 exposure not recorded for adjacent VPNs")
	}
	plainAVF := tl.AVF(100)
	if plainAVF <= 0 || plainAVF > 1 {
		t.Errorf("CAM-refined AVF %f out of range", plainAVF)
	}

	// VPNs 0 and 3 differ in two bits: no exposure.
	tl2 := MustNewTLB(TLBConfig{
		Name: "h2", Entries: 4, PageBytes: 8 << 10, EntryBits: 80,
		WalkLatency: 30, HammingCAM: true,
	})
	tl2.Access(0, 0*8192)
	tl2.Access(10, 3*8192)
	tl2.Finalize(100)
	if tl2.hd1EntryCycles != 0 {
		t.Errorf("HD-2 pair recorded %d exposure cycles", tl2.hd1EntryCycles)
	}
}

func TestTLBCAMRefinementLowersAVF(t *testing.T) {
	mk := func(ham bool) *TLB {
		tl := MustNewTLB(TLBConfig{
			Name: "c", Entries: 8, PageBytes: 8 << 10, EntryBits: 80,
			WalkLatency: 30, HammingCAM: ham,
		})
		// Pages 0 and 5 (HD 2 apart): tags never HD-1 exposed.
		tl.Access(0, 0)
		tl.Access(0, 5*8192)
		tl.Access(100, 0)
		tl.Access(100, 5*8192)
		tl.Finalize(100)
		return tl
	}
	plain, refined := mk(false).AVF(100), mk(true).AVF(100)
	if refined >= plain {
		t.Errorf("CAM refinement should lower AVF when no HD-1 pairs exist: plain %f refined %f",
			plain, refined)
	}
}
