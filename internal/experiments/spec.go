package experiments

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"avfstress/internal/avf"
	"avfstress/internal/core"
	"avfstress/internal/report"
	"avfstress/internal/scenario"
	"avfstress/internal/uarch"
	"avfstress/internal/workloads"
)

// ResolveConfig returns the named configuration ("baseline" or
// "configA", "" defaulting to baseline), scaled by scale (≤0: the
// harness default).
func ResolveConfig(name string, scale int) (uarch.Config, error) {
	if scale <= 0 {
		scale = Options{}.withDefaults().Scale
	}
	switch name {
	case "", "baseline":
		return uarch.Scaled(uarch.Baseline(), scale), nil
	case "configA":
		return uarch.Scaled(uarch.ConfigA(), scale), nil
	}
	return uarch.Config{}, fmt.Errorf("experiments: unknown configuration %q (have baseline, configA)", name)
}

// ResolveRates returns the named fault-rate set ("uniform", "rhc" or
// "edr"; "" defaults to uniform).
func ResolveRates(name string) (uarch.FaultRates, error) {
	switch name {
	case "", "uniform":
		return uarch.UniformRates(1), nil
	case "rhc":
		return uarch.RHCRates(), nil
	case "edr":
		return uarch.EDRRates(), nil
	}
	return uarch.FaultRates{}, fmt.Errorf("experiments: unknown fault rates %q (have uniform, rhc, edr)", name)
}

// resolveSuites maps a suite name to the workload suites it covers
// ("all" or "" means every suite).
func resolveSuites(name string) ([]workloads.Suite, error) {
	switch name {
	case "", "all":
		return []workloads.Suite{workloads.SPECInt, workloads.SPECFP, workloads.MiBench}, nil
	case "specint":
		return []workloads.Suite{workloads.SPECInt}, nil
	case "specfp":
		return []workloads.Suite{workloads.SPECFP}, nil
	case "mibench":
		return []workloads.Suite{workloads.MiBench}, nil
	}
	return nil, fmt.Errorf("experiments: unknown suite %q (have specint, specfp, mibench, all)", name)
}

// SearchKeyFor maps a (config, rates) pair onto the search key the
// registered experiments use, so parametric stressmark scenarios share
// the suite's fitness weighting (core-only for the RHC/EDR mitigation
// studies, balanced otherwise), its reference-knob fast path and its
// memoised search results.
func SearchKeyFor(config, rates string) string {
	switch rates {
	case "rhc", "edr":
		return rates
	}
	if config == "configA" {
		return "configA"
	}
	return "baseline"
}

// ResolveSpec validates sp and returns the canonical scenario names it
// runs: registered names pass through, the parametric short forms
// ("stressmark", "workloads") are expanded with the spec's
// config/rates/suite fields, and an empty list means the full suite in
// paper order. It is pure — no simulation state is touched — so
// services can reject bad submissions before scheduling anything.
func ResolveSpec(sp scenario.Spec) ([]string, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	names := sp.Scenarios
	if len(names) == 0 {
		names = Names()
	}
	known := map[string]bool{}
	for _, n := range Names() {
		known[n] = true
	}
	out := make([]string, len(names))
	for i, n := range names {
		n = strings.TrimSpace(n)
		switch n {
		case "stressmark":
			n = "stressmark:" + orDefault(sp.Config, "baseline") + ":" + orDefault(sp.Rates, "uniform")
		case "workloads":
			n = "workloads:" + orDefault(sp.Config, "baseline") + ":" + orDefault(sp.Suite, "all")
		case "faultinject", "rootcause":
			// "rootcause" is also a registered experiment (the default
			// view); the bare name only expands when the spec actually
			// parameterises it, so an empty spec still resolves to the
			// registered suite verbatim.
			if n == "rootcause" && sp.Config == "" && sp.Rates == "" && sp.InjectTrials <= 0 {
				break
			}
			trials := sp.InjectTrials
			if trials <= 0 {
				trials = defaultInjectTrials
			}
			n = fmt.Sprintf("%s:%s:%s:%d",
				n, orDefault(sp.Config, "baseline"), orDefault(sp.Rates, "uniform"), trials)
		}
		if !known[n] {
			if _, _, err := parseParametric(n, 0); err != nil {
				return nil, unknownExperiment(n)
			}
		}
		out[i] = n
	}
	return out, nil
}

func orDefault(v, d string) string {
	if v == "" {
		return d
	}
	return v
}

// parseParametric recognises the parametric scenario name forms and
// validates their arguments. kind is "stressmark", "workloads",
// "faultinject" or "rootcause".
func parseParametric(name string, scale int) (kind string, args []string, err error) {
	parts := strings.Split(name, ":")
	switch {
	case len(parts) == 3 && parts[0] == "stressmark":
		if _, err := ResolveConfig(parts[1], scale); err != nil {
			return "", nil, err
		}
		if _, err := ResolveRates(parts[2]); err != nil {
			return "", nil, err
		}
	case len(parts) == 3 && parts[0] == "workloads":
		if _, err := ResolveConfig(parts[1], scale); err != nil {
			return "", nil, err
		}
		if _, err := resolveSuites(parts[2]); err != nil {
			return "", nil, err
		}
	case len(parts) == 4 && (parts[0] == "faultinject" || parts[0] == "rootcause"):
		if _, err := ResolveConfig(parts[1], scale); err != nil {
			return "", nil, err
		}
		if _, err := ResolveRates(parts[2]); err != nil {
			return "", nil, err
		}
		if n, err := strconv.Atoi(parts[3]); err != nil || n <= 0 {
			return "", nil, fmt.Errorf("experiments: %s trial count %q must be a positive integer", parts[0], parts[3])
		}
	default:
		return "", nil, fmt.Errorf("experiments: %q is not a parametric scenario", name)
	}
	return parts[0], parts[1:], nil
}

// NewSpecContext builds a Context for sp layered over base options (the
// caller injects infrastructure: cache store or directory, progress
// sink, parallelism defaults) and returns it with the resolved scenario
// names. Spec fields, when set, win over base.
func NewSpecContext(sp scenario.Spec, base Options) (*Context, []string, error) {
	names, err := ResolveSpec(sp)
	if err != nil {
		return nil, nil, err
	}
	opts := base
	if sp.Scale > 0 {
		opts.Scale = sp.Scale
	}
	if sp.Seed != 0 {
		opts.Seed = sp.Seed
	}
	if sp.GAPop > 0 {
		opts.GAPop = sp.GAPop
	}
	if sp.GAGens > 0 {
		opts.GAGens = sp.GAGens
	}
	if sp.WorkloadInstr > 0 {
		opts.WorkloadInstr = sp.WorkloadInstr
	}
	if sp.WorkloadWarmup > 0 {
		opts.WorkloadWarmup = sp.WorkloadWarmup
	}
	if sp.Parallelism > 0 {
		opts.Parallelism = sp.Parallelism
	}
	if sp.CheckpointInterval != 0 {
		opts.CheckpointInterval = sp.CheckpointInterval
	}
	if sp.PruneStatic != 0 {
		opts.PruneStatic = sp.PruneStatic
	}
	if sp.Mode != "" {
		opts.UseReferenceKnobs = sp.Mode == "reference"
	}
	return NewContext(opts), names, nil
}

// parametricScenario builds the on-the-fly definition for a parametric
// name ("stressmark:<config>:<rates>" or "workloads:<config>:<suite>").
func (c *Context) parametricScenario(name string) (scenario.Definition, bool) {
	kind, args, err := parseParametric(name, c.Opts.Scale)
	if err != nil {
		return scenario.Definition{}, false
	}
	switch kind {
	case "stressmark":
		cfg, _ := ResolveConfig(args[0], c.Opts.Scale)
		rates, _ := ResolveRates(args[1])
		key := SearchKeyFor(args[0], args[1])
		return scenario.Definition{
			Name:  name,
			Title: fmt.Sprintf("Stressmark study — %s under %s rates", cfg.Name, orDefault(args[1], "uniform")),
			Jobs: func() []scenario.Job {
				return []scenario.Job{c.stressmarkJob(key, cfg, rates)}
			},
			Render: func(ctx context.Context) (string, error) {
				sm, err := c.Stressmark(ctx, key, cfg, rates)
				if err != nil {
					return "", err
				}
				return renderStressmark(sm, cfg, rates, orDefault(args[1], "uniform")), nil
			},
		}, true
	case "workloads":
		cfg, _ := ResolveConfig(args[0], c.Opts.Scale)
		suites, _ := resolveSuites(args[1])
		return scenario.Definition{
			Name:  name,
			Title: fmt.Sprintf("Workload evaluation — %s on %s", orDefault(args[1], "all"), cfg.Name),
			Jobs: func() []scenario.Job {
				return []scenario.Job{c.workloadsJob(cfg)}
			},
			Render: func(ctx context.Context) (string, error) {
				return c.renderWorkloads(ctx, cfg, suites, orDefault(args[1], "all"))
			},
		}, true
	case "faultinject", "rootcause":
		cfg, _ := ResolveConfig(args[0], c.Opts.Scale)
		rates, _ := ResolveRates(args[1])
		trials, _ := strconv.Atoi(args[2])
		smKey := SearchKeyFor(args[0], args[1])
		title := fmt.Sprintf("Fault-injection validation — %s under %s rates, %d trials",
			cfg.Name, orDefault(args[1], "uniform"), trials)
		if kind == "rootcause" {
			title = fmt.Sprintf("Root-cause instruction analysis — %s under %s rates, %d trials",
				cfg.Name, orDefault(args[1], "uniform"), trials)
		}
		return scenario.Definition{
			Name:  name,
			Title: title,
			Jobs: func() []scenario.Job {
				// Both views replay against the suite's shared stressmark
				// search, so the campaign job depends on the search job.
				// The rootcause scenario shares the faultinject study's
				// memoised campaigns — requesting both runs one study.
				sm := c.stressmarkJob(smKey, cfg, rates)
				return []scenario.Job{sm, c.faultInjectJob(args[0], args[1], trials, []string{sm.Key})}
			},
			Render: func(ctx context.Context) (string, error) {
				st, err := c.FaultInjection(ctx, args[0], args[1], trials)
				if err != nil {
					return "", err
				}
				if kind == "rootcause" {
					return st.RootCauseReport(), nil
				}
				return st.String(), nil
			},
		}, true
	}
	return scenario.Definition{}, false
}

// renderStressmark reports one stressmark study: final knobs,
// convergence, per-structure result and class SERs.
func renderStressmark(sm *core.SearchResult, cfg uarch.Config, rates uarch.FaultRates, ratesName string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Stressmark — %s under %s rates\n\n", cfg.Name, ratesName)
	fmt.Fprintf(&b, "final solution (%d evaluations, %d cataclysms, %d failed candidates):\n\n%s\n",
		sm.Evaluations, sm.Cataclysms, sm.FailedEvals, sm.Knobs)
	avgs := make([]float64, len(sm.History))
	for i, h := range sm.History {
		avgs[i] = h.Avg
	}
	fmt.Fprintf(&b, "convergence (avg fitness/gen): %s\n\n", report.Sparkline(avgs))
	b.WriteString(sm.Result.String())
	fmt.Fprintf(&b, "\nSER (units/bit, %s rates):\n", ratesName)
	for _, cl := range avf.AllClasses() {
		fmt.Fprintf(&b, "  %-10s %.3f\n", cl, sm.Result.SER(cfg, rates, cl))
	}
	fmt.Fprintf(&b, "fitness: %.4f\n", sm.Fitness)
	return b.String()
}

// renderWorkloads reports per-suite class SERs and IPC for the proxies.
func (c *Context) renderWorkloads(ctx context.Context, cfg uarch.Config, suites []workloads.Suite, suiteName string) (string, error) {
	rates := uarch.UniformRates(1)
	var b strings.Builder
	fmt.Fprintf(&b, "Workload suite %s — SER (units/bit, uniform rates) on %s\n\n", suiteName, cfg.Name)
	t := &report.Table{Headers: []string{"program", "IPC", "QS", "QS+RF", "DL1+DTLB", "L2"}}
	for _, s := range suites {
		rs, err := c.WorkloadsBySuite(ctx, cfg, s)
		if err != nil {
			return "", err
		}
		for _, r := range rs {
			row := serRow(r.Workload, r, cfg, rates)
			t.AddRow(row.Name, fmt.Sprintf("%.2f", r.IPC),
				row.SER[avf.ClassQS], row.SER[avf.ClassQSRF],
				row.SER[avf.ClassDL1DTLB], row.SER[avf.ClassL2])
		}
	}
	b.WriteString(t.String())
	return b.String(), nil
}
