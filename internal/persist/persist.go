// Package persist serialises the artefacts a user wants to keep from a
// stressmark search — the knob settings (a complete, reproducible
// description of a candidate: the generator is deterministic in them)
// and simulation results — as JSON files for the command-line tools.
package persist

import (
	"encoding/json"
	"fmt"
	"os"

	"avfstress/internal/avf"
	"avfstress/internal/codegen"
)

// SavedStressmark is the on-disk record of a search outcome.
type SavedStressmark struct {
	// Config names the target configuration (informational).
	Config string `json:"config"`
	// Rates names the fault-rate set used for the fitness.
	Rates string `json:"rates"`
	// Knobs fully determine the generated program.
	Knobs codegen.Knobs `json:"knobs"`
	// Fitness is the final evaluation's fitness value.
	Fitness float64 `json:"fitness,omitempty"`
	// Result optionally embeds the final evaluation.
	Result *avf.Result `json:"result,omitempty"`
}

// SaveStressmark writes the record to path (pretty-printed JSON).
func SaveStressmark(path string, s SavedStressmark) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("persist: encode: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}

// LoadStressmark reads a record written by SaveStressmark.
func LoadStressmark(path string) (SavedStressmark, error) {
	var s SavedStressmark
	data, err := os.ReadFile(path)
	if err != nil {
		return s, fmt.Errorf("persist: %w", err)
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("persist: decode %s: %w", path, err)
	}
	return s, nil
}

// SaveResult writes a bare simulation result to path.
func SaveResult(path string, r *avf.Result) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("persist: encode: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}

// LoadResult reads a result written by SaveResult.
func LoadResult(path string) (*avf.Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	r := &avf.Result{}
	if err := json.Unmarshal(data, r); err != nil {
		return nil, fmt.Errorf("persist: decode %s: %w", path, err)
	}
	return r, nil
}
