package service

import (
	"context"
	"sync"
	"testing"
	"time"
)

// testFabric returns a fabric with a fast lease clock and a captured
// journal stream.
func testFabric(hb, ttl time.Duration) (*fabric, *capturedJournal) {
	cj := &capturedJournal{}
	f := newFabric(hb, ttl, nil)
	f.journalAppend = cj.append
	return f, cj
}

type capturedJournal struct {
	mu   sync.Mutex
	recs []journalRecord
}

func (c *capturedJournal) append(rec journalRecord) {
	c.mu.Lock()
	c.recs = append(c.recs, rec)
	c.mu.Unlock()
}

func (c *capturedJournal) count(op string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, r := range c.recs {
		if r.Op == op {
			n++
		}
	}
	return n
}

func TestFabricClaimLifecycle(t *testing.T) {
	f, cj := testFabric(10*time.Millisecond, time.Second)
	r1 := f.join("one", 1)
	r2 := f.join("two", 1)

	st, _, err := f.tryAcquire(r1, kindJob, "job-x")
	if err != nil || st != claimGranted {
		t.Fatalf("first claim = (%s, %v), want granted", st, err)
	}
	// Idempotent re-claim by the owner.
	if st, _, _ := f.tryAcquire(r1, kindJob, "job-x"); st != claimGranted {
		t.Fatalf("owner re-claim = %s, want granted", st)
	}
	// A peer waits.
	st, ch, _ := f.tryAcquire(r2, kindJob, "job-x")
	if st != claimWait || ch == nil {
		t.Fatalf("peer claim = %s, want wait with a channel", st)
	}
	// Successful release resolves the waiter as done.
	f.release(r1, kindJob, "job-x", true)
	select {
	case <-ch:
	default:
		t.Fatal("release did not resolve the wait channel")
	}
	if st, _, _ := f.tryAcquire(r2, kindJob, "job-x"); st != claimDone {
		t.Fatalf("post-release claim = %s, want done", st)
	}
	// Exactly the one grant was journalled; a completed claim is not a
	// steal.
	if got := cj.count(journalOpLease); got != 1 {
		t.Errorf("lease records = %d, want 1", got)
	}
	if got := cj.count(journalOpSteal); got != 0 {
		t.Errorf("steal records = %d, want 0", got)
	}
}

func TestFabricFailedReleaseFreesClaim(t *testing.T) {
	f, _ := testFabric(10*time.Millisecond, time.Second)
	r1 := f.join("one", 1)
	r2 := f.join("two", 1)
	if st, _, _ := f.tryAcquire(r1, kindJob, "k"); st != claimGranted {
		t.Fatal("first claim not granted")
	}
	f.release(r1, kindJob, "k", false)
	// The next claimer is granted (not done): the work never happened.
	if st, _, _ := f.tryAcquire(r2, kindJob, "k"); st != claimGranted {
		t.Fatal("claim after a failed release should be granted to the next taker")
	}
}

func TestFabricDoneAppliesToCacheKinds(t *testing.T) {
	f, cj := testFabric(10*time.Millisecond, time.Second)
	r1 := f.join("one", 1)
	if st, _, _ := f.tryAcquire(r1, "result", "aabbcc"); st != claimGranted {
		t.Fatal("cache claim not granted")
	}
	f.release(r1, "result", "aabbcc", true)
	if st, _, _ := f.tryAcquire("", "result", "aabbcc"); st != claimDone {
		t.Fatal("resolved cache claim must answer done, or waiters would recompute")
	}
	// Cache-kind claims are never journalled (fsync volume).
	if got := cj.count(journalOpLease); got != 0 {
		t.Errorf("cache claim journalled %d lease records", got)
	}
}

func TestFabricStealsClaimsOfSilentRunner(t *testing.T) {
	// ttl floors at 2*hb.
	f, cj := testFabric(5*time.Millisecond, time.Millisecond)
	victim := f.join("victim", 1)
	if st, _, _ := f.tryAcquire(victim, kindJob, "stolen-job"); st != claimGranted {
		t.Fatal("victim claim not granted")
	}
	if st, _, _ := f.tryAcquire(victim, "blob", "ddeeff"); st != claimGranted {
		t.Fatal("victim cache claim not granted")
	}
	time.Sleep(3 * f.ttl)

	// The coordinator's own next acquire sweeps the dead runner and wins
	// both claims.
	if st, _, _ := f.tryAcquire("", kindJob, "stolen-job"); st != claimGranted {
		t.Fatal("stolen job claim was not re-granted")
	}
	if st, _, _ := f.tryAcquire("", "blob", "ddeeff"); st != claimGranted {
		t.Fatal("stolen cache claim was not re-granted")
	}
	h := f.clusterHealth()
	if h.StolenJobs != 1 {
		t.Errorf("stolen jobs = %d, want 1 (cache claims are freed but not counted as job steals)", h.StolenJobs)
	}
	if h.ConnectedRunners != 0 {
		t.Errorf("connected runners = %d, want 0", h.ConnectedRunners)
	}
	// Only the job claim produced a steal record.
	if got := cj.count(journalOpSteal); got != 1 {
		t.Errorf("steal records = %d, want 1", got)
	}
	// The dead runner's late release must not disturb the new owner.
	f.release(victim, kindJob, "stolen-job", true)
	if st, _, _ := f.tryAcquire("", kindJob, "stolen-job"); st != claimGranted {
		t.Error("a dead runner's late release disturbed the re-granted claim")
	}
	// And its heartbeat answers unknown — the runner rejoins.
	if _, err := f.heartbeat(victim); err == nil {
		t.Error("dead runner heartbeat should be rejected")
	}
}

func TestFabricAwaitTakesOverAfterOwnerDeath(t *testing.T) {
	f, _ := testFabric(5*time.Millisecond, time.Millisecond)
	victim := f.join("victim", 1)
	if st, _, _ := f.tryAcquire(victim, kindJob, "j"); st != claimGranted {
		t.Fatal("victim claim not granted")
	}
	// The coordinator parks on the claim; the victim never heartbeats,
	// so within a few TTLs await re-acquires and is granted — takeover.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	st, err := f.await(ctx, "", kindJob, "j", 2*time.Second)
	if err != nil || st != claimGranted {
		t.Fatalf("await after owner death = (%s, %v), want granted", st, err)
	}
}

func TestFabricHeartbeatListsAnnouncedRuns(t *testing.T) {
	f, _ := testFabric(10*time.Millisecond, time.Second)
	r1 := f.join("one", 2)
	f.announce("job-1", specOf(t, `{"scenarios":["table1"]}`))
	runs, err := f.heartbeat(r1)
	if err != nil || len(runs) != 1 || runs[0].ID != "job-1" {
		t.Fatalf("heartbeat = (%v, %v), want the announced run", runs, err)
	}
	f.withdraw("job-1")
	runs, err = f.heartbeat(r1)
	if err != nil || len(runs) != 0 {
		t.Fatalf("heartbeat after withdraw = (%v, %v), want no runs", runs, err)
	}
	if _, err := f.heartbeat("runner-999"); err == nil {
		t.Error("unknown runner heartbeat should be rejected")
	}
}
