package pipe

// Fault-injection replay support (DESIGN.md §9). A Fault names one
// single-bit target — a structure, a bit index inside the structure's
// SER-relevant bit space, and an injection cycle — and RunFault replays
// a program deterministically with that fault applied, classifying
// whether the flipped bit would have reached committed architectural
// state. The model is value-free, so a flip's visibility is decided by
// the microarchitectural fate of the entity occupying the flipped bit:
// the replay observes that fate directly (commit vs flush for queue
// entries, future reads for register values, the Biswas lifetime
// transition for cache chunks) and applies exactly the visibility rules
// the ACE accounting integrates — which is what makes a Monte Carlo
// campaign over uniform (bit, cycle) targets an unbiased estimator of
// the ACE-based AVF (internal/inject).

import (
	"fmt"
	"sort"

	"avfstress/internal/avf"
	"avfstress/internal/cache"
	"avfstress/internal/isa"
	"avfstress/internal/prog"
	"avfstress/internal/uarch"
)

// Fault is one single-bit fault target.
type Fault struct {
	// Structure is the SER-tracked structure the bit belongs to.
	Structure uarch.Structure
	// Bit indexes the structure's bit space [0, uarch.Bits(cfg, s)).
	// Entry association is canonical: queue structures map bit/entryBits
	// to the k-th oldest occupant, the register file and DTLB map to the
	// physical slot, caches map data bits line-major/byte-major and the
	// remainder to one tag entry per line.
	Bit uint64
	// Cycle is the absolute injection cycle. It must lie inside the
	// measured window of the golden run ([window start, window start +
	// cycles)).
	Cycle int64
}

// Fingerprint returns a canonical description of the fault target for
// internal/simcache trial keys.
func (f Fault) Fingerprint() string {
	return fmt.Sprintf("pipe.Fault{%d %d %d}", int(f.Structure), f.Bit, f.Cycle)
}

// FaultTrial is the outcome of one injection replay.
type FaultTrial struct {
	// Corrupted reports whether the flipped bit reaches committed
	// architectural state (an SDC before any detection derating);
	// otherwise the fault was masked.
	Corrupted bool
	// Digest is the committed-state digest of the replay with the
	// fault's corruption folded in, when the replay ran in full mode
	// (RunFault full=true); zero otherwise. A masked full replay's
	// digest equals the golden digest bit-exactly; a corrupted one's
	// differs.
	Digest uint64
	// Diverge identifies the first divergent commit of a corrupted
	// replay (Seq -1 when the trial was masked or the corruption has no
	// consuming instruction — the cache/TLB fate watches track lifetime
	// transitions, not instruction identity).
	Diverge Diverge
}

// Diverge names the first divergent commit of a corrupted replay: the
// earliest-committing instruction whose architectural effect consumed
// the flipped bit. In full mode the corruption marker is folded into
// exactly this instruction's commit digest, so the replay's digest
// stream deviates from the golden stream first at this commit; the
// identity recorded here is what internal/rootcause walks back from.
type Diverge struct {
	// Seq is the consuming instruction's dynamic stream sequence number
	// (prog.Dyn.Seq), or -1 when there is no consuming instruction.
	Seq int64
	// PC is the consuming instruction's static program counter.
	PC uint64
	// Op is the consuming instruction's opcode.
	Op isa.Op
	// SrcSlot is the physical source-operand slot through which the
	// flipped register value reached the consumer (register-file faults
	// only; -1 when the flipped bit is part of the consumer's own
	// in-flight state and the operand is structure-implied).
	SrcSlot int8
}

// GoldenInfo carries the replay-relevant facts of a golden (fault-free)
// run beyond its avf.Result.
type GoldenInfo struct {
	// WindowStart is the cycle measurement began (end of warmup).
	WindowStart int64
	// Cycles is the measured window length (== Result.Cycles).
	Cycles int64
	// Digest is the committed-state digest over the whole run.
	Digest uint64
	// RFDead is the register-file dead-occupancy interval set recorded
	// by SimulateGoldenRecorded (nil for unrecorded golden runs): the
	// dynamic footprint of the statically dead definitions, which the
	// campaign's target pruner intersects fault targets against.
	RFDead []RFDeadInterval
}

// injTrial tracks one fault riding a replay. Faults are pure observers
// — they never mutate simulator state — so any number of trials can
// share one replay and each resolves exactly as it would alone
// (TestFaultBatchMatchesSolo locks that in).
type injTrial struct {
	fault Fault
	idx   int // caller-order index (trials are cycle-sorted internally)

	applied   bool // the fault has been applied (or armed, for mem watches)
	memWatch  bool // fault targets DL1/L2/DTLB (fate watch in internal/cache)
	resolved  bool
	corrupted bool
	marked    bool            // corruption marker folded into the digest
	watchReg  int16           // armed register-file watch (noReg = none)
	cw        *cache.Watch    // armed DL1/L2 fate watch
	tw        *cache.TLBWatch // armed DTLB fate watch

	// First-divergent-commit capture: the consuming instruction of a
	// corrupting flip. Queue-structure trials record their occupant at
	// fault application; register-file trials track the minimum-sequence
	// ACE reader past the injection cycle (in-order commit makes the
	// min-seq reader the first divergent commit). consStatic is only
	// ever set once the trial's corruption is certain.
	consStatic *isa.Instr
	consSeq    int64
	consSlot   int8
}

// injState tracks the in-flight fault trials of one replay during
// runCycles, sorted by injection cycle.
type injState struct {
	trials  []injTrial
	next    int  // apply cursor over the cycle-sorted trials
	open    int  // trials not yet resolved
	memOpen int  // unresolved mem-watch trials (gates per-cycle polling)
	rfOpen  int  // armed unresolved register watches (gates the read hook)
	full    bool // run to completion and fold corruption into the digest
}

// FNV-1a constants for the commit digest, plus the marker folded into a
// full replay's digest at the point a fault's corruption is resolved to
// reach architectural state.
const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
	injMark     = 0x9e3779b97f4a7c15
)

func mix64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// digestCommit folds one retiring instruction's architectural effect —
// opcode, register operands, effective address and branch outcome —
// into the running commit digest. Only called with digestOn.
func (pl *Pipeline) digestCommit(u *uop) {
	w := uint64(u.opc) | uint64(u.static.Dest)<<8 |
		uint64(u.static.Src1)<<16 | uint64(u.static.Src2)<<24
	if u.predTaken {
		w |= 1 << 32
	}
	if u.mispred {
		w |= 1 << 33
	}
	pl.digest = mix64(mix64(pl.digest, w), u.addr)
}

// injResolve records one trial's outcome; in full mode a corrupting
// fault additionally folds the corruption marker into the digest, so the
// architectural-state diff against the golden run is what classifies the
// trial. A trial with a recorded consuming instruction defers the fold
// to that instruction's commit (injMarkCommit), which is by construction
// the first commit whose digest contribution deviates from the golden
// stream; only consumer-less corruption (the cache/TLB fate watches)
// folds the marker here, between commits.
func (pl *Pipeline) injResolve(t *injTrial, corrupt bool) {
	if t.resolved {
		return
	}
	t.resolved = true
	t.corrupted = corrupt
	pl.inj.open--
	if t.memWatch {
		pl.inj.memOpen--
	}
	if t.watchReg != noReg {
		t.watchReg = noReg
		pl.inj.rfOpen--
	}
	if corrupt && pl.digestOn && t.consStatic == nil && !t.marked {
		t.marked = true
		pl.digest = mix64(pl.digest, injMark)
	}
}

// injNoteRead records an ACE read of a watched physical register past a
// trial's injection cycle: the reading instruction consumed the flipped
// value, so the trial is certain to resolve corrupted and its first
// divergent commit is the minimum-sequence such reader (commit is in
// order, so once the current minimum commits no smaller reader can
// appear). Called from issue for every lastRead-advancing operand read
// while any register watch is armed.
func (pl *Pipeline) injNoteRead(p int16, u *uop, slot int8) {
	inj := pl.inj
	for i := range inj.trials {
		t := &inj.trials[i]
		if t.resolved || t.watchReg != p || pl.now <= t.fault.Cycle {
			continue
		}
		if t.consStatic == nil || u.dynSeq < t.consSeq {
			t.consStatic, t.consSeq, t.consSlot = u.static, u.dynSeq, slot
		}
	}
}

// injMarkCommit folds the corruption marker of any trial whose consuming
// instruction is retiring right now, making this commit the first whose
// digest contribution differs from the golden run's. Called from commit
// after digestCommit while a replay is armed in full mode.
func (pl *Pipeline) injMarkCommit(u *uop) {
	inj := pl.inj
	for i := range inj.trials {
		t := &inj.trials[i]
		if t.consStatic != nil && !t.marked && t.consSeq == u.dynSeq && t.consStatic == u.static {
			t.marked = true
			pl.digest = mix64(pl.digest, injMark)
		}
	}
}

// injPoll checks the armed cache/TLB fate watches for resolution. Called
// once per simulated cycle while any mem-watch trial is unresolved.
func (pl *Pipeline) injPoll() {
	inj := pl.inj
	for i := range inj.trials {
		t := &inj.trials[i]
		if !t.memWatch || t.resolved {
			continue
		}
		var resolved, ace bool
		if t.cw != nil {
			resolved, ace = t.cw.Outcome()
		} else {
			resolved, ace = t.tw.Outcome()
		}
		if resolved {
			pl.injResolve(t, ace)
		}
	}
}

// injRegRelease resolves armed register-file watches when the watched
// physical register is released at the overwriting instruction's commit:
// the flipped value was consumed iff an ACE instruction read it after
// the injection cycle — the same fill→last-read span the RF accounting
// integrates.
func (pl *Pipeline) injRegRelease(p int16) {
	inj := pl.inj
	for i := range inj.trials {
		t := &inj.trials[i]
		if t.resolved || t.watchReg != p {
			continue
		}
		pl.injResolve(t, pl.regs[p].lastRead > t.fault.Cycle)
	}
}

// uop occupancy predicates for entry association (oldest-first).
func occIQ(u *uop) bool { return u.inIQ }
func occLQ(u *uop) bool { return u.inLQ }
func occSQ(u *uop) bool { return u.inSQ }
func occFU(u *uop) bool { return (u.opc == isa.OpAdd || u.opc == isa.OpMul) && u.state == sIssued }

// nthOccupant returns the k-th oldest in-flight uop satisfying pred, or
// nil when fewer than k+1 occupants exist (the sampled entry is empty).
func (pl *Pipeline) nthOccupant(k int, pred func(*uop) bool) *uop {
	for seq := pl.head; seq < pl.tail; seq++ {
		u := pl.at(seq)
		if pred(u) {
			if k == 0 {
				return u
			}
			k--
		}
	}
	return nil
}

// injResolveOccupant resolves a queue-structure trial whose fate is its
// occupant's ACEness, recording the occupant as the consuming
// instruction of a corrupting flip: the flipped bit is part of the
// occupant's own in-flight state, so the occupant's commit is the first
// divergent one.
func (pl *Pipeline) injResolveOccupant(t *injTrial, corrupt bool, u *uop) {
	if corrupt {
		t.consStatic, t.consSeq, t.consSlot = u.static, u.dynSeq, -1
	}
	pl.injResolve(t, corrupt)
}

// applyFault applies one armed fault at its injection cycle: it locates
// the occupant of the flipped bit and either resolves the trial
// immediately (queue structures, whose fate is their occupant's ACEness)
// or arms a register watch. Empty slots, wrong-path and un-ACE occupants
// and not-yet-live values resolve masked — exactly the states the ACE
// accounting excludes.
func (pl *Pipeline) applyFault(t *injTrial) {
	t.applied = true
	f := t.fault
	core := pl.core
	switch f.Structure {
	case uarch.IQ:
		// Issue-queue entries are vulnerable from dispatch to issue
		// (entries free at issue, 21264-style).
		if u := pl.nthOccupant(int(f.Bit/uint64(core.IQEntryBits)), occIQ); u != nil {
			pl.injResolveOccupant(t, u.ace, u)
			return
		}
	case uarch.ROB:
		if k := int64(f.Bit / uint64(core.ROBEntryBits)); k < pl.tail-pl.head {
			u := pl.at(pl.head + k)
			pl.injResolveOccupant(t, u.ace, u)
			return
		}
	case uarch.FU:
		// One stage slot per executing arithmetic operation; an in-flight
		// result is corrupted iff the operation is ACE (squashed wrong-path
		// work burns the stage but carries no architectural value).
		if u := pl.nthOccupant(int(f.Bit/uint64(core.RegBits)), occFU); u != nil {
			pl.injResolveOccupant(t, u.ace, u)
			return
		}
	case uarch.RF:
		p := int16(f.Bit / uint64(core.RegBits))
		r := &pl.regs[p]
		if r.written && r.aceValue && r.writeTime <= f.Cycle {
			// Live ACE value: vulnerable until its last future read.
			t.watchReg = p
			pl.inj.rfOpen++
			return
		}
	case uarch.LQTag:
		// The address is consumed at issue (which regenerates it from the
		// register operands); the queued tag serves disambiguation until
		// retire — vulnerable from issue to commit.
		if u := pl.nthOccupant(int(f.Bit/uint64(core.LSQEntryBits/2)), occLQ); u != nil {
			pl.injResolveOccupant(t, u.ace && u.state != sWaiting, u)
			return
		}
	case uarch.LQData:
		if u := pl.nthOccupant(int(f.Bit/uint64(core.LSQEntryBits/2)), occLQ); u != nil {
			pl.injResolveOccupant(t, u.ace && u.state != sWaiting && u.dataReady <= f.Cycle, u)
			return
		}
	case uarch.SQTag, uarch.SQData:
		// Store address and data are captured at completion and consumed
		// by the architectural write at retire.
		if u := pl.nthOccupant(int(f.Bit/uint64(core.LSQEntryBits/2)), occSQ); u != nil {
			pl.injResolveOccupant(t, u.ace && u.state == sDone, u)
			return
		}
	}
	pl.injResolve(t, false)
}

// finishTrials resolves trials still open at the natural end of the run:
// partially elapsed intervals of still-live state are ACE, exactly as
// finalize() counts them, and cache/TLB watches resolve through the
// hierarchy's end-of-run eviction sweep (run at most once). A trial
// whose injection cycle was never reached is an error — it indicates a
// target sampled against a different golden run.
func (pl *Pipeline) finishTrials() error {
	inj := pl.inj
	for i := range inj.trials {
		if t := &inj.trials[i]; !t.applied {
			return fmt.Errorf("pipe: fault cycle %d beyond end of run (cycle %d)", t.fault.Cycle, pl.now)
		}
	}
	if inj.memOpen > 0 {
		pl.mem.Finalize(pl.now)
		pl.injPoll()
	}
	for i := range inj.trials {
		t := &inj.trials[i]
		if t.resolved {
			continue
		}
		if t.watchReg != noReg {
			pl.injResolve(t, pl.regs[t.watchReg].lastRead > t.fault.Cycle)
			continue
		}
		// The flipped bit held no live state at the injection cycle.
		pl.injResolve(t, false)
	}
	if pl.digestOn {
		// A corrupting trial whose consuming instruction never committed
		// (the run budget ended with it in flight) still folds its marker
		// exactly once, preserving digest≠golden ⟺ corrupted.
		for i := range inj.trials {
			t := &inj.trials[i]
			if t.corrupted && !t.marked {
				t.marked = true
				pl.digest = mix64(pl.digest, injMark)
			}
		}
	}
	return nil
}

// staticPC maps a static-instruction pointer back to its program
// counter. Linear in program size; called once per corrupted trial at
// the end of a replay, never on a stage hot path.
func (pl *Pipeline) staticPC(in *isa.Instr) uint64 {
	p := pl.p
	for i := range p.Init {
		if in == &p.Init[i] {
			return prog.InitBase + uint64(i)*isa.InstrBytes
		}
	}
	for i := range p.Body {
		if in == &p.Body[i] {
			return prog.PCOf(i)
		}
	}
	return 0
}

// trialDiverge extracts the first-divergent-commit record of one trial.
func (pl *Pipeline) trialDiverge(t *injTrial) Diverge {
	if !t.corrupted || t.consStatic == nil {
		return Diverge{Seq: -1, SrcSlot: -1}
	}
	return Diverge{
		Seq:     t.consSeq,
		PC:      pl.staticPC(t.consStatic),
		Op:      t.consStatic.Op,
		SrcSlot: t.consSlot,
	}
}

// armTrials validates the fault targets, builds the cycle-sorted trial
// state and arms the cache/TLB fate watches. Cache and TLB targets are
// watched from the start of the replay: hierarchy accesses carry
// timestamps ahead of the pipeline's wall clock, so the lifetime
// interval containing the injection cycle can be closed by an access
// executed wall-earlier.
func (pl *Pipeline) armTrials(faults []Fault, full bool) (*injState, error) {
	inj := &injState{trials: make([]injTrial, len(faults)), full: full}
	for i, f := range faults {
		if f.Structure < 0 || f.Structure >= uarch.NumStructures {
			return nil, fmt.Errorf("pipe: fault structure %d out of range", int(f.Structure))
		}
		if max := uarch.Bits(pl.cfg, f.Structure); f.Bit >= max {
			return nil, fmt.Errorf("pipe: fault bit %d out of range for %s (%d bits)",
				f.Bit, f.Structure, max)
		}
		if f.Cycle < 0 {
			return nil, fmt.Errorf("pipe: negative fault cycle %d", f.Cycle)
		}
		inj.trials[i] = injTrial{fault: f, idx: i, watchReg: noReg, consSeq: -1, consSlot: -1}
	}
	sort.SliceStable(inj.trials, func(a, b int) bool {
		return inj.trials[a].fault.Cycle < inj.trials[b].fault.Cycle
	})
	inj.open = len(inj.trials)
	for i := range inj.trials {
		t := &inj.trials[i]
		f := t.fault
		var err error
		switch f.Structure {
		case uarch.DL1:
			t.cw, err = pl.mem.DL1.AddWatch(f.Bit, f.Cycle)
		case uarch.L2:
			t.cw, err = pl.mem.L2.AddWatch(f.Bit, f.Cycle)
		case uarch.DTLB:
			idx := int(f.Bit / uint64(pl.cfg.Mem.DTLB.EntryBits))
			t.tw, err = pl.mem.DTLB.AddWatch(idx, f.Cycle)
		default:
			continue
		}
		if err != nil {
			pl.clearInj()
			return nil, err
		}
		t.memWatch, t.applied = true, true
		inj.memOpen++
	}
	return inj, nil
}

// clearInj tears down injection state after a replay.
func (pl *Pipeline) clearInj() {
	pl.inj = nil
	pl.digestOn = false
	pl.mem.DL1.ClearWatches()
	pl.mem.L2.ClearWatches()
	pl.mem.DTLB.ClearWatches()
}

// RunFault replays the program under rc with fault f injected and
// returns the trial outcome. Call once per New or Reset, like Run. With
// full=false the replay stops as soon as the fault's fate is resolved;
// with full=true it always runs to completion, computing the commit
// digest with the corruption folded in so the outcome is equivalently
// readable as an architectural-state diff against the golden digest
// (TestFaultFullReplayMatchesEarly locks the equivalence).
//
// f.Cycle must lie inside the run: a cycle beyond the program's end is
// an error (it indicates a target sampled against a different golden
// run).
func (pl *Pipeline) RunFault(rc RunConfig, f Fault, full bool) (FaultTrial, error) {
	inj, err := pl.armTrials([]Fault{f}, full)
	if err != nil {
		return FaultTrial{}, err
	}
	pl.inj = inj
	pl.digestOn = full
	pl.digest = fnvOffset64
	defer pl.clearInj()
	if err := pl.runLoop(rc); err != nil {
		return FaultTrial{}, err
	}
	if err := pl.finishTrials(); err != nil {
		return FaultTrial{}, err
	}
	t := &inj.trials[0]
	return FaultTrial{Corrupted: t.corrupted, Digest: pl.digest, Diverge: pl.trialDiverge(t)}, nil
}

// RunFaults replays the program under rc once with every fault in
// faults armed as an independent observer (early-resolution mode) and
// returns per-fault corruption outcomes in caller order. When ck is
// non-nil the replay forks from the checkpoint instead of cycle zero;
// every fault must then satisfy ck.Cycle()+lead ≤ fault.Cycle for the
// hierarchy's timestamp lead (CheckpointSet.Nearest enforces this), so
// every lifetime transition that can resolve a watch happens after the
// fork point. Call once per New, Reset or Restore.
func (pl *Pipeline) RunFaults(rc RunConfig, faults []Fault) ([]bool, error) {
	trials, err := pl.runFaults(rc, faults, false)
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(trials))
	for i := range trials {
		out[i] = trials[i].Corrupted
	}
	return out, nil
}

func (pl *Pipeline) runFaults(rc RunConfig, faults []Fault, resume bool) ([]FaultTrial, error) {
	if len(faults) == 0 {
		return nil, nil
	}
	inj, err := pl.armTrials(faults, false)
	if err != nil {
		return nil, err
	}
	pl.inj = inj
	defer pl.clearInj()
	if resume {
		err = pl.resumeLoop(rc)
	} else {
		err = pl.runLoop(rc)
	}
	if err != nil {
		return nil, err
	}
	if err := pl.finishTrials(); err != nil {
		return nil, err
	}
	out := make([]FaultTrial, len(faults))
	for i := range inj.trials {
		t := &inj.trials[i]
		out[t.idx] = FaultTrial{Corrupted: t.corrupted, Diverge: pl.trialDiverge(t)}
	}
	return out, nil
}

// SimulateGolden runs program p under rc on a pooled pipeline like
// Simulate, additionally returning the golden-run facts fault-injection
// campaigns replay against: measurement-window start, window length and
// the committed-state digest.
func (pp *Pool) SimulateGolden(p *prog.Program, rc RunConfig) (*avf.Result, GoldenInfo, error) {
	pl, err := pp.get(p)
	if err != nil {
		return nil, GoldenInfo{}, err
	}
	pl.digestOn = true
	pl.digest = fnvOffset64
	res, err := pl.Run(rc)
	info := GoldenInfo{Digest: pl.digest}
	pl.digestOn = false
	if err == nil {
		info.WindowStart = pl.acct.windowStart
		info.Cycles = res.Cycles
	}
	pp.pool.Put(pl)
	if err != nil {
		return nil, GoldenInfo{}, err
	}
	return res, info, nil
}

// SimulateFault replays program p under rc on a pooled pipeline with
// fault f injected (early-resolution mode) and reports whether the fault
// corrupts committed architectural state.
func (pp *Pool) SimulateFault(p *prog.Program, rc RunConfig, f Fault) (bool, error) {
	trial, err := pp.SimulateFaultDetail(p, rc, f)
	if err != nil {
		return false, err
	}
	return trial.Corrupted, nil
}

// SimulateFaultDetail is SimulateFault returning the full trial record,
// including the first-divergent-commit identity of a corrupting fault
// (internal/rootcause attributes from it). Early-resolution mode: the
// consuming instruction is identified at or before resolution, so the
// replay still stops as soon as the fate is known.
func (pp *Pool) SimulateFaultDetail(p *prog.Program, rc RunConfig, f Fault) (FaultTrial, error) {
	pl, err := pp.get(p)
	if err != nil {
		return FaultTrial{}, err
	}
	trial, err := pl.RunFault(rc, f, false)
	pp.pool.Put(pl)
	if err != nil {
		return FaultTrial{}, err
	}
	return trial, nil
}
