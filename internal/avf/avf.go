// Package avf turns per-structure Architectural Vulnerability Factors
// into Soft Error Rates, following the paper's presentation: per-class
// SER is the AVF-derated sum of circuit-level fault rates, normalised by
// the total bit count of the class ("units/bit"), so that with a uniform
// 1 unit/bit fault rate the number is the bit-weighted average AVF.
package avf

import (
	"fmt"
	"strings"

	"avfstress/internal/uarch"
)

// Result is the outcome of simulating one program on one configuration.
type Result struct {
	Config   string
	Workload string

	Cycles       int64
	Instructions int64 // committed, measured window only

	AVF [uarch.NumStructures]float64

	// Utilisation diagnostics (measured window).
	IPC            float64
	MispredictRate float64
	DL1MissRate    float64
	L2MissRate     float64
	DTLBMissRate   float64
	OccupancyROB   float64 // mean fraction of entries holding any instruction
	OccupancyIQ    float64
	OccupancyLQ    float64
	OccupancySQ    float64
	WrongPathFrac  float64 // fetched instructions that were wrong-path
	LoadFrac       float64 // committed instruction mix
	StoreFrac      float64
	BranchFrac     float64
	LongArithFrac  float64
	ACEInstrFrac   float64 // committed instructions that are ACE

	// Activity carries raw event counts for downstream models, e.g. the
	// power proxy (internal/power).
	Activity ActivityCounts
}

// ActivityCounts are raw pipeline event counts over the measured window.
type ActivityCounts struct {
	Fetched     int64
	IssuedALU   int64
	IssuedMul   int64
	IssuedMem   int64
	IssuedBr    int64
	DL1Accesses int64
	L2Accesses  int64
	Mispredicts int64
}

// Class is a group of structures normalised together, as in Figures 3-4.
type Class int

// Presentation classes from the paper.
const (
	ClassQS   Class = iota // queueing structures: IQ, ROB, FU, LQ, SQ
	ClassQSRF              // queueing structures + register file ("core")
	ClassDL1DTLB
	ClassL2
	NumClasses
)

var classNames = [NumClasses]string{"QS", "QS+RF", "DL1+DTLB", "L2"}

// String renders the class label ("QS", "QS+RF", ...).
func (c Class) String() string {
	if c >= 0 && c < NumClasses {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Structures returns the member structures of the class.
func (c Class) Structures() []uarch.Structure {
	switch c {
	case ClassQS:
		return uarch.QueueStructures
	case ClassQSRF:
		return uarch.CoreStructures
	case ClassDL1DTLB:
		return []uarch.Structure{uarch.DL1, uarch.DTLB}
	case ClassL2:
		return []uarch.Structure{uarch.L2}
	}
	return nil
}

// AllClasses lists the presentation classes in paper order.
func AllClasses() []Class {
	return []Class{ClassQS, ClassQSRF, ClassDL1DTLB, ClassL2}
}

// StructureSER returns the un-normalised SER contribution of structure s:
// AVF × bits × rate.
func (r *Result) StructureSER(cfg uarch.Config, rates uarch.FaultRates, s uarch.Structure) float64 {
	return r.AVF[s] * float64(uarch.Bits(cfg, s)) * rates[s]
}

// SER returns the class-normalised SER in units/bit: the summed derated
// fault rates of the class members divided by the class's total bits.
func (r *Result) SER(cfg uarch.Config, rates uarch.FaultRates, c Class) float64 {
	var num, bits float64
	for _, s := range c.Structures() {
		num += r.StructureSER(cfg, rates, s)
		bits += float64(uarch.Bits(cfg, s))
	}
	if bits == 0 {
		return 0
	}
	return num / bits
}

// RawSER returns the un-normalised SER summed over the given structures.
func (r *Result) RawSER(cfg uarch.Config, rates uarch.FaultRates, structs []uarch.Structure) float64 {
	var num float64
	for _, s := range structs {
		num += r.StructureSER(cfg, rates, s)
	}
	return num
}

// Fitness is the GA objective: the mean of the class-normalised SERs over
// the core (QS+RF), DL1+DTLB and L2 classes. Class normalisation keeps
// the ~20k-bit core relevant against the multi-megabit caches, matching
// the paper's per-class presentation, and automatically adapts when the
// fault-rate set changes (the RHC/EDR studies).
func (r *Result) Fitness(cfg uarch.Config, rates uarch.FaultRates, w Weights) float64 {
	return w.Core*r.SER(cfg, rates, ClassQSRF) +
		w.L1*r.SER(cfg, rates, ClassDL1DTLB) +
		w.L2*r.SER(cfg, rates, ClassL2)
}

// Weights weight the fitness classes; see DefaultWeights.
type Weights struct{ Core, L1, L2 float64 }

// DefaultWeights returns the equal-weight fitness used throughout the
// reproduction.
func DefaultWeights() Weights { return Weights{Core: 1.0 / 3, L1: 1.0 / 3, L2: 1.0 / 3} }

// String renders a compact per-structure report.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s: %d instrs, %d cycles, IPC %.2f\n",
		r.Workload, r.Config, r.Instructions, r.Cycles, r.IPC)
	for s := uarch.Structure(0); s < uarch.NumStructures; s++ {
		fmt.Fprintf(&b, "  AVF %-8s %6.2f%%\n", s, r.AVF[s]*100)
	}
	return b.String()
}
