package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func tiny() *Cache {
	// 4 sets × 2 ways × 64B lines = 512B.
	return MustNew(Config{Name: "t", SizeBytes: 512, LineBytes: 64, Ways: 2, HitLatency: 1})
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Name: "a", SizeBytes: 0, LineBytes: 64, Ways: 1},
		{Name: "b", SizeBytes: 1024, LineBytes: 0, Ways: 1},
		{Name: "c", SizeBytes: 1024, LineBytes: 48, Ways: 1},  // not pow2
		{Name: "d", SizeBytes: 1024, LineBytes: 128, Ways: 1}, // > 64
		{Name: "e", SizeBytes: 1024, LineBytes: 64, Ways: 0},
		{Name: "f", SizeBytes: 1000, LineBytes: 64, Ways: 2},   // not divisible
		{Name: "g", SizeBytes: 64 * 3, LineBytes: 64, Ways: 1}, // sets not pow2
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v accepted", c)
		}
		if _, err := New(c); err == nil {
			t.Errorf("New accepted %+v", c)
		}
	}
}

func TestGeometry(t *testing.T) {
	c := Config{Name: "dl1", SizeBytes: 64 << 10, LineBytes: 64, Ways: 2, HitLatency: 3}
	if c.NumSets() != 512 {
		t.Errorf("sets = %d, want 512", c.NumSets())
	}
	if c.NumLines() != 1024 {
		t.Errorf("lines = %d, want 1024", c.NumLines())
	}
	if c.DataBits() != 64*1024*8 {
		t.Errorf("data bits = %d", c.DataBits())
	}
	// 44-bit physical, 9 index bits, 6 offset bits → 29-bit tag + 2.
	if c.TagBitsPerLine() != 31 {
		t.Errorf("tag bits/line = %d, want 31", c.TagBitsPerLine())
	}
	if c.Bits() != c.DataBits()+c.TagBits() {
		t.Error("Bits() is not data+tag")
	}
}

func TestHitMissAndLRU(t *testing.T) {
	c := tiny()
	// Three lines mapping to the same set (stride = sets*line = 256).
	a0, a1, a2 := uint64(0), uint64(256), uint64(512)
	for _, a := range []uint64{a0, a1} {
		if c.Probe(a) {
			t.Fatalf("cold probe of %#x hit", a)
		}
		if _, _, err := c.Fill(0, a); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Probe(a0) || !c.Probe(a1) {
		t.Fatal("filled lines must hit")
	}
	// Touch a0 so a1 is LRU, then fill a2: a1 must be evicted.
	if err := c.Touch(1, a0, 8, false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Fill(2, a2); err != nil {
		t.Fatal(err)
	}
	if c.Probe(a1) {
		t.Error("LRU line a1 survived eviction")
	}
	if !c.Probe(a0) || !c.Probe(a2) {
		t.Error("MRU line or new line missing")
	}
}

func TestDoubleFillRejected(t *testing.T) {
	c := tiny()
	if _, _, err := c.Fill(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Fill(1, 0); err == nil {
		t.Error("double fill accepted")
	}
}

func TestTouchNonResidentRejected(t *testing.T) {
	c := tiny()
	if err := c.Touch(0, 0x40, 8, false); err == nil {
		t.Error("touch of non-resident line accepted")
	}
	if err := c.TouchMask(0, 0x40, 1); err == nil {
		t.Error("masked touch of non-resident line accepted")
	}
}

func TestLineCrossingRejected(t *testing.T) {
	c := tiny()
	if _, _, err := c.Fill(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Touch(0, 60, 8, false); err == nil {
		t.Error("line-crossing access accepted")
	}
}

// Lifetime rules, byte-granular. Each sub-test drives one transition and
// checks the ACE contribution in data byte-cycles.
func TestLifetimeRules(t *testing.T) {
	ace := func(ops func(c *Cache)) uint64 {
		c := tiny()
		ops(c)
		return c.aceBytes()
	}
	fill := func(c *Cache, at int64) {
		if _, _, err := c.Fill(at, 0); err != nil {
			t.Fatal(err)
		}
	}
	t.Run("fill→read is ACE", func(t *testing.T) {
		got := ace(func(c *Cache) {
			fill(c, 0)
			c.Touch(10, 0, 8, false)
		})
		if got != 8*10 {
			t.Errorf("ACE byte-cycles = %d, want 80", got)
		}
	})
	t.Run("read→read is ACE", func(t *testing.T) {
		got := ace(func(c *Cache) {
			fill(c, 0)
			c.Touch(10, 0, 8, false)
			c.Touch(30, 0, 8, false)
		})
		if got != 8*10+8*20 {
			t.Errorf("ACE byte-cycles = %d, want 240", got)
		}
	})
	t.Run("fill→write is un-ACE", func(t *testing.T) {
		got := ace(func(c *Cache) {
			fill(c, 0)
			c.Touch(10, 0, 8, true)
		})
		if got != 0 {
			t.Errorf("ACE byte-cycles = %d, want 0", got)
		}
	})
	t.Run("write→read is ACE", func(t *testing.T) {
		got := ace(func(c *Cache) {
			fill(c, 0)
			c.Touch(10, 0, 8, true)
			c.Touch(25, 0, 8, false)
		})
		if got != 8*15 {
			t.Errorf("ACE byte-cycles = %d, want 120", got)
		}
	})
	t.Run("read→write is un-ACE for the gap", func(t *testing.T) {
		got := ace(func(c *Cache) {
			fill(c, 0)
			c.Touch(10, 0, 8, false) // fill→read ACE: 80
			c.Touch(30, 0, 8, true)  // read→write: gap un-ACE
		})
		if got != 80 {
			t.Errorf("ACE byte-cycles = %d, want 80", got)
		}
	})
	t.Run("write→evict is ACE (writeback)", func(t *testing.T) {
		got := ace(func(c *Cache) {
			fill(c, 0)
			c.Touch(10, 0, 8, true)
			c.Finalize(50) // dirty close = evict
		})
		if got != 8*40 {
			t.Errorf("ACE byte-cycles = %d, want 320", got)
		}
	})
	t.Run("read→evict is un-ACE", func(t *testing.T) {
		got := ace(func(c *Cache) {
			fill(c, 0)
			c.Touch(10, 0, 8, false)
			c.Finalize(50)
		})
		if got != 80 {
			t.Errorf("ACE byte-cycles = %d, want 80 (only fill→read)", got)
		}
	})
	t.Run("fill→evict is un-ACE", func(t *testing.T) {
		got := ace(func(c *Cache) {
			fill(c, 0)
			c.Finalize(50)
		})
		if got != 0 {
			t.Errorf("ACE byte-cycles = %d, want 0", got)
		}
	})
	t.Run("untouched bytes of a read line are un-ACE", func(t *testing.T) {
		got := ace(func(c *Cache) {
			fill(c, 0)
			c.Touch(10, 0, 4, false) // only 4 of 64 bytes read
		})
		if got != 4*10 {
			t.Errorf("ACE byte-cycles = %d, want 40", got)
		}
	})
}

func TestWritebackMask(t *testing.T) {
	c := tiny()
	if _, _, err := c.Fill(0, 0); err != nil {
		t.Fatal(err)
	}
	c.Touch(1, 8, 8, true)  // dirty bytes 8..15
	c.Touch(2, 32, 8, true) // dirty bytes 32..39
	// Force eviction: fill two more lines in set 0.
	c.Fill(3, 256)
	wb, dirty, err := c.Fill(4, 512)
	if err != nil {
		t.Fatal(err)
	}
	if !dirty {
		t.Fatal("dirty line evicted without writeback")
	}
	if wb.Addr != 0 {
		t.Errorf("writeback address %#x, want 0", wb.Addr)
	}
	wantMask := uint64(0xff)<<8 | uint64(0xff)<<32
	if wb.DirtyMask != wantMask {
		t.Errorf("dirty mask %#x, want %#x", wb.DirtyMask, wantMask)
	}
	if c.Writebacks != 1 {
		t.Errorf("writeback count %d", c.Writebacks)
	}
}

func TestResetACEClipsOpenIntervals(t *testing.T) {
	c := tiny()
	c.Fill(0, 0)
	c.Touch(10, 0, 8, false) // ACE 80 before the reset
	c.ResetACE(100)
	if c.aceBytes() != 0 {
		t.Fatal("counters survived reset")
	}
	c.Touch(150, 0, 8, false) // read→read spanning the reset: clipped at 100
	if c.aceBytes() != 8*50 {
		t.Errorf("clipped interval contributed %d byte-cycles, want 400", c.aceBytes())
	}
}

func TestAVFBounds(t *testing.T) {
	c := tiny()
	c.Fill(0, 0)
	for i := int64(1); i <= 100; i++ {
		c.Touch(i, 0, 64, false)
	}
	c.Finalize(100)
	if avf := c.DataAVF(100); avf < 0 || avf > 1 {
		t.Errorf("data AVF %f out of bounds", avf)
	}
	if avf := c.AVF(100); avf < 0 || avf > 1 {
		t.Errorf("combined AVF %f out of bounds", avf)
	}
	if c.DataAVF(0) != 0 {
		t.Error("zero-cycle AVF should be 0")
	}
}

func TestMissRate(t *testing.T) {
	c := tiny()
	c.Fill(0, 0)
	c.Touch(0, 0, 8, false)
	c.Touch(1, 0, 8, false)
	if got := c.MissRate(); got != 0.5 {
		t.Errorf("miss rate %f, want 0.5 (1 fill / 2 touches)", got)
	}
	c.ResetStats()
	if c.MissRate() != 0 {
		t.Error("stats not reset")
	}
}

// TestWritebackAccessesCountedSeparately locks the satellite fix:
// writeback-apply traffic from an upper level must not inflate the
// demand-access count (and therefore the miss rate), but remains
// visible in WritebackAccesses and TrafficMissRate.
func TestWritebackAccessesCountedSeparately(t *testing.T) {
	c := tiny()
	if _, _, err := c.Fill(0, 0); err != nil {
		t.Fatal(err)
	}
	c.Touch(1, 0, 8, false) // 1 demand access, 1 miss
	if err := c.TouchMask(2, 0, 0xff); err != nil {
		t.Fatal(err)
	}
	if c.Accesses != 1 || c.WritebackAccesses != 1 {
		t.Fatalf("accesses=%d writebackAccesses=%d, want 1/1", c.Accesses, c.WritebackAccesses)
	}
	if got := c.MissRate(); got != 1.0 {
		t.Errorf("demand miss rate %f, want 1.0 (1 miss / 1 demand access)", got)
	}
	if got := c.TrafficMissRate(); got != 0.5 {
		t.Errorf("traffic miss rate %f, want 0.5 (1 miss / 2 total)", got)
	}
	// The fast-path WriteMask counts the same way, including its
	// write-allocate miss.
	c2 := tiny()
	c2.WriteMask(0, 0, 0xff)
	if c2.Accesses != 0 || c2.WritebackAccesses != 1 || c2.Misses != 0 || c2.WritebackMisses != 1 {
		t.Errorf("WriteMask: accesses=%d wb=%d misses=%d wbMisses=%d, want 0/1/0/1",
			c2.Accesses, c2.WritebackAccesses, c2.Misses, c2.WritebackMisses)
	}
	if c2.MissRate() != 0 {
		t.Errorf("demand miss rate with no demand accesses = %f, want 0", c2.MissRate())
	}
	if c2.TrafficMissRate() != 1.0 {
		t.Errorf("traffic miss rate = %f, want 1.0 (allocate miss / 1 writeback access)", c2.TrafficMissRate())
	}
}

// TestChunkConfigValidation covers the ChunkBytes rules.
func TestChunkConfigValidation(t *testing.T) {
	base := Config{Name: "c", SizeBytes: 1024, LineBytes: 64, Ways: 1}
	for _, cb := range []int{0, 1, 2, 4, 8, 16, 32, 64} {
		cfg := base
		cfg.ChunkBytes = cb
		if err := cfg.Validate(); err != nil {
			t.Errorf("chunk %d rejected: %v", cb, err)
		}
	}
	for _, cb := range []int{-1, 3, 6, 12, 128} {
		cfg := base
		cfg.ChunkBytes = cb
		if err := cfg.Validate(); err == nil {
			t.Errorf("chunk %d accepted", cb)
		}
	}
	if got := base.EffectiveChunkBytes(); got != 1 {
		t.Errorf("effective chunk of unset config = %d, want 1", got)
	}
}

// TestChunkAlignmentPanics: the engine must reject accesses that are not
// chunk-aligned multiples of the chunk size, in any build.
func TestChunkAlignmentPanics(t *testing.T) {
	c := MustNew(Config{Name: "a", SizeBytes: 512, LineBytes: 64, Ways: 2, HitLatency: 1, ChunkBytes: 8})
	c.FillTouch(0, 0, 0, 8, false)
	for _, bad := range []struct {
		addr uint64
		size int
	}{{4, 8}, {0, 4}, {3, 8}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("misaligned access %#x size %d accepted", bad.addr, bad.size)
				}
			}()
			c.Access(1, bad.addr, bad.size, false)
		}()
	}
}

// TestDebugChecks verifies the fast-path invariant checks that
// SetDebugChecks enables: double fills, line-crossing accesses and
// partial-chunk writeback masks all panic instead of silently
// corrupting state.
func TestDebugChecks(t *testing.T) {
	prev := SetDebugChecks(true)
	defer SetDebugChecks(prev)
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic under debug checks", name)
			}
		}()
		f()
	}
	mk := func() *Cache {
		c := MustNew(Config{Name: "d", SizeBytes: 512, LineBytes: 64, Ways: 2, HitLatency: 1, ChunkBytes: 8})
		c.FillTouch(0, 0, 0, 8, false)
		return c
	}
	expectPanic("double fill", func() { mk().FillTouch(1, 1, 0, 8, false) })
	expectPanic("line-crossing access", func() { mk().Access(1, 56, 16, false) })
	expectPanic("line-crossing fill touch", func() { mk().FillTouch(1, 1, 64+56, 16, false) })
	expectPanic("partial-chunk mask", func() { mk().WriteMask(1, 0, 0x3) })
	// And the checked paths still accept legal traffic.
	c := mk()
	if !c.Access(1, 8, 8, true) {
		t.Error("legal access rejected under debug checks")
	}
	c.WriteMask(2, 0, 0xff00)
}

// Property: for arbitrary access sequences, ACE byte-cycles never exceed
// bytes × elapsed time, and replaying the sequence is deterministic.
func TestQuickLifetimeInvariants(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		run := func() (*Cache, int64) {
			c := tiny()
			rng := rand.New(rand.NewSource(seed))
			now := int64(0)
			for i := 0; i < int(n)+1; i++ {
				now += int64(rng.Intn(10) + 1)
				addr := uint64(rng.Intn(16)) * 64
				off := uint64(rng.Intn(8)) * 8
				if !c.Probe(addr) {
					if _, _, err := c.Fill(now, addr); err != nil {
						return nil, 0
					}
				}
				if err := c.Touch(now, addr+off, 8, rng.Intn(2) == 0); err != nil {
					return nil, 0
				}
			}
			c.Finalize(now + 1)
			return c, now + 1
		}
		c1, end := run()
		c2, _ := run()
		if c1 == nil || c2 == nil {
			return false
		}
		if c1.aceBytes() != c2.aceBytes() || c1.tagAceCycles != c2.tagAceCycles {
			return false // non-deterministic
		}
		if c1.aceBytes() > uint64(c1.cfg.SizeBytes)*uint64(end) {
			return false // more ACE than physically possible
		}
		return c1.DataAVF(end) <= 1 && c1.TagAVF(end) <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
