package pipe

import (
	"math"
	"strings"
	"testing"

	"avfstress/internal/avf"
	"avfstress/internal/isa"
	"avfstress/internal/prog"
	"avfstress/internal/uarch"
)

// testCfg is a scaled baseline used by the behavioural tests.
func testCfg() uarch.Config { return uarch.Scaled(uarch.Baseline(), 32) }

// initAll writes every architected register once.
func initAll() []isa.Instr {
	var ins []isa.Instr
	for r := isa.Reg(0); r < isa.NumArchRegs-1; r++ {
		ins = append(ins, isa.Instr{Op: isa.OpAdd, Dest: r, Src1: isa.RZero, Imm: int16(r)})
	}
	return ins
}

// loopOf wraps a body with the standard backedge.
func loopOf(body []isa.Instr, gens []prog.AddrGen) *prog.Program {
	body = append(body, isa.Instr{Op: isa.OpBranch, Dest: isa.RZero, Src1: 2, BrGen: 0})
	return &prog.Program{
		Name:       "unit",
		Init:       initAll(),
		Body:       body,
		AddrGens:   gens,
		BrGens:     []prog.BranchGen{prog.LoopBranch{Iterations: 1 << 40}},
		Iterations: 1 << 40,
	}
}

func mustRun(t *testing.T, cfg uarch.Config, p *prog.Program, rc RunConfig) *avf.Result {
	t.Helper()
	res, err := Simulate(cfg, p, rc)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestIndependentAddsReachIssueWidth: a body of independent adds should
// sustain an IPC near the 4-wide issue/commit limit.
func TestIndependentAddsReachIssueWidth(t *testing.T) {
	var body []isa.Instr
	for i := 0; i < 16; i++ {
		body = append(body, isa.Instr{Op: isa.OpAdd, Dest: isa.Reg(3 + i), Src1: 2, Imm: 1})
	}
	res := mustRun(t, testCfg(), loopOf(body, nil), RunConfig{MaxInstructions: 40_000})
	if res.IPC < 3.0 {
		t.Errorf("independent adds IPC = %.2f, want near 4", res.IPC)
	}
}

// TestSerialChainLimitsIPC: a fully serial add chain cannot exceed 1 IPC
// (plus the backedge), demonstrating dependence-controlled ILP.
func TestSerialChainLimitsIPC(t *testing.T) {
	var body []isa.Instr
	for i := 0; i < 16; i++ {
		body = append(body, isa.Instr{Op: isa.OpAdd, Dest: 3, Src1: 3, Imm: 1})
	}
	res := mustRun(t, testCfg(), loopOf(body, nil), RunConfig{MaxInstructions: 40_000})
	if res.IPC > 1.3 {
		t.Errorf("serial chain IPC = %.2f, should be near 1", res.IPC)
	}
}

// TestMultiplierStructuralHazard: serial-independent MULs through the
// single 7-cycle multiplier sustain at most 1 mul/cycle; with a 7-cycle
// latency chain they crawl.
func TestMultiplierStructuralHazard(t *testing.T) {
	var body []isa.Instr
	for i := 0; i < 8; i++ {
		body = append(body, isa.Instr{Op: isa.OpMul, Dest: isa.Reg(3 + i), Src1: 2, Imm: 1})
	}
	res := mustRun(t, testCfg(), loopOf(body, nil), RunConfig{MaxInstructions: 20_000})
	// 8 independent muls + branch per iteration, 1 mul issue/cycle →
	// IPC caps near 9/8.
	if res.IPC > 1.4 {
		t.Errorf("mul-bound IPC = %.2f, want ≤ ~1.1", res.IPC)
	}
}

// TestMemIssueLimit: independent DL1-hitting loads are capped at 2
// memory issues per cycle (the 21264 restriction the paper leans on).
func TestMemIssueLimit(t *testing.T) {
	gens := []prog.AddrGen{prog.Fixed{Address: 0x4000_0000}}
	var body []isa.Instr
	for i := 0; i < 12; i++ {
		body = append(body, isa.Instr{Op: isa.OpLoad, Dest: isa.Reg(3 + i), Src1: 2, AddrGen: 0})
	}
	res := mustRun(t, testCfg(), loopOf(body, gens), RunConfig{MaxInstructions: 26_000})
	// 13 instructions per iteration, ≥6 cycles of load issue → IPC ≤ ~2.2.
	if res.IPC > 2.4 {
		t.Errorf("load-bound IPC = %.2f exceeds the 2-mem/cycle limit", res.IPC)
	}
}

// TestROBFillsInMissShadow: a self-dependent chasing load pins the ROB
// near full occupancy — the paper's central mechanism.
func TestROBFillsInMissShadow(t *testing.T) {
	cfg := testCfg()
	region := uint64(4 * cfg.Mem.L2.SizeBytes)
	gens := []prog.AddrGen{prog.PointerChase{Base: 0x4000_0000, Stride: 64, Region: region}}
	body := []isa.Instr{{Op: isa.OpLoad, Dest: 1, Src1: 1, AddrGen: 0}}
	// Balance register writers against the ~49 free rename registers
	// (§III: rename registers bound in-flight occupancy — the very reason
	// the paper's GA picks store-heavy loops): 25 adds + 25 stores.
	for i := 0; i < 25; i++ {
		body = append(body, isa.Instr{Op: isa.OpAdd, Dest: 3, Src1: 2, Imm: 1})
		body = append(body, isa.Instr{Op: isa.OpStore, Dest: isa.RZero, Src1: 2, Src2: 3, AddrGen: 0})
	}
	body = append(body, isa.Instr{Op: isa.OpStore, Dest: isa.RZero, Src1: 2, Src2: 1, AddrGen: 0})
	res := mustRun(t, cfg, loopOf(body, gens), RunConfig{
		MaxInstructions: 60_000, WarmupInstructions: 10_000,
	})
	if res.OccupancyROB < 0.7 {
		t.Errorf("ROB occupancy %.2f in permanent miss shadow, want ≥ 0.7", res.OccupancyROB)
	}
	// The chase misses L2 every iteration; dirty writebacks into L2 count
	// as (hit) accesses, diluting the measured rate below 1.
	if res.L2MissRate < 0.3 {
		t.Errorf("chase L2 miss rate %.2f, want ≥ 0.3", res.L2MissRate)
	}
	if res.IPC > 1 {
		t.Errorf("memory-bound IPC %.2f suspiciously high", res.IPC)
	}
}

// TestMispredictionsReduceAVF: adding hard-to-predict branches must
// produce wrong-path fetch and reduce core AVF versus the same program
// with predictable branches (§IV-A.4).
func TestMispredictionsReduceAVF(t *testing.T) {
	cfg := testCfg()
	mk := func(hard bool) *avf.Result {
		var brs []prog.BranchGen
		brs = append(brs, prog.LoopBranch{Iterations: 1 << 40})
		// One independent generator per branch: a shared sequence would
		// correlate the branches through global history and the predictor
		// would (correctly!) learn them.
		var body []isa.Instr
		for i := 0; i < 6; i++ {
			if hard {
				brs = append(brs, prog.Bernoulli{Seed: uint64(11 + i*7), P: 0.5})
			} else {
				brs = append(brs, prog.Periodic{Period: 8, Duty: 4, Phase: int64(i)})
			}
			body = append(body, isa.Instr{Op: isa.OpMul, Dest: 3, Src1: 3, Imm: 1})
			body = append(body, isa.Instr{Op: isa.OpBranch, Dest: isa.RZero, Src1: 3, BrGen: i + 1})
		}
		body = append(body, isa.Instr{Op: isa.OpStore, Dest: isa.RZero, Src1: 2, Src2: 3, AddrGen: 0})
		body = append(body, isa.Instr{Op: isa.OpBranch, Dest: isa.RZero, Src1: 2, BrGen: 0})
		p := &prog.Program{
			Name: "br", Init: initAll(), Body: body,
			AddrGens:   []prog.AddrGen{prog.Fixed{Address: 0x4000_0000}},
			BrGens:     brs,
			Iterations: 1 << 40,
		}
		res, err := Simulate(cfg, p, RunConfig{MaxInstructions: 40_000, WarmupInstructions: 5_000})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	easy, hard := mk(false), mk(true)
	if hard.MispredictRate < 0.1 {
		t.Fatalf("bernoulli(0.5) branches mispredict at only %.3f", hard.MispredictRate)
	}
	if easy.MispredictRate > 0.05 {
		t.Fatalf("periodic branches mispredict at %.3f", easy.MispredictRate)
	}
	if hard.WrongPathFrac == 0 {
		t.Error("mispredictions produced no wrong-path fetch")
	}
	if hard.AVF[uarch.ROB] >= easy.AVF[uarch.ROB] {
		t.Errorf("mispredictions should reduce ROB AVF: easy %.3f hard %.3f",
			easy.AVF[uarch.ROB], hard.AVF[uarch.ROB])
	}
}

// TestStoreLoadForwarding: a load of a just-stored double-word gets its
// data without a cache round trip, and is blocked until the store
// executes.
func TestStoreLoadForwarding(t *testing.T) {
	gens := []prog.AddrGen{prog.Fixed{Address: 0x4000_0040}}
	body := []isa.Instr{
		{Op: isa.OpMul, Dest: 3, Src1: 3, Imm: 1}, // slow producer
		{Op: isa.OpStore, Dest: isa.RZero, Src1: 2, Src2: 3, AddrGen: 0},
		{Op: isa.OpLoad, Dest: 4, Src1: 2, AddrGen: 0},
		{Op: isa.OpStore, Dest: isa.RZero, Src1: 2, Src2: 4, AddrGen: 0},
	}
	res := mustRun(t, testCfg(), loopOf(body, gens), RunConfig{MaxInstructions: 20_000})
	// Forwarding works if the loop sustains steady progress (no deadlock)
	// and the load's data shows up: DL1 read traffic comes only from the
	// loads that were *not* forwarded; with same-dword forwarding every
	// iteration, DL1 sees only store commits.
	if res.IPC <= 0 {
		t.Fatal("no progress")
	}
	if res.DL1MissRate > 0.01 {
		t.Errorf("forwarded loop misses DL1 at %.3f", res.DL1MissRate)
	}
}

// TestNopsAreUnACE: a NOP-heavy loop commits NOPs but accrues almost no
// core ACE (paper: NOPs are un-ACE by definition).
func TestNopsAreUnACE(t *testing.T) {
	var body []isa.Instr
	for i := 0; i < 20; i++ {
		body = append(body, isa.Instr{Op: isa.OpNop, Dest: isa.RZero})
	}
	res := mustRun(t, testCfg(), loopOf(body, nil), RunConfig{MaxInstructions: 30_000})
	if res.ACEInstrFrac > 0.1 {
		t.Errorf("NOP loop ACE fraction %.3f", res.ACEInstrFrac)
	}
	if res.AVF[uarch.ROB] > 0.05 {
		t.Errorf("NOP loop ROB AVF %.3f, want ~0", res.AVF[uarch.ROB])
	}
	if res.OccupancyROB < 0.1 {
		t.Errorf("NOPs still occupy the ROB; occupancy %.3f", res.OccupancyROB)
	}
}

// TestUnACEMarkedInstructionsExcluded: statically dead instructions
// occupy resources but contribute no ACE.
func TestUnACEMarkedInstructionsExcluded(t *testing.T) {
	mk := func(dead bool) *avf.Result {
		var body []isa.Instr
		for i := 0; i < 16; i++ {
			body = append(body, isa.Instr{
				Op: isa.OpAdd, Dest: isa.Reg(3 + i%8), Src1: 2, Imm: 1, UnACE: dead,
			})
		}
		return mustRun(t, testCfg(), loopOf(body, nil), RunConfig{MaxInstructions: 30_000})
	}
	live, dead := mk(false), mk(true)
	if dead.AVF[uarch.ROB] >= live.AVF[uarch.ROB]/2 {
		t.Errorf("dead code ROB AVF %.3f vs live %.3f", dead.AVF[uarch.ROB], live.AVF[uarch.ROB])
	}
	if math.Abs(dead.OccupancyROB-live.OccupancyROB) > 0.1 {
		t.Errorf("occupancy should match: dead %.3f live %.3f", dead.OccupancyROB, live.OccupancyROB)
	}
}

// TestPersistentRegisterACE: a register written once and read every
// iteration stays ACE, raising RF AVF (the register-usage mechanism).
func TestPersistentRegisterACE(t *testing.T) {
	mk := func(readPersistent bool) *avf.Result {
		src2 := isa.Reg(10) // written only in init
		if !readPersistent {
			src2 = 3 // rewritten constantly
		}
		var body []isa.Instr
		for i := 0; i < 8; i++ {
			body = append(body, isa.Instr{Op: isa.OpAdd, Dest: 3, Src1: 2, Src2: src2, RegReg: true})
		}
		body = append(body, isa.Instr{Op: isa.OpStore, Dest: isa.RZero, Src1: 2, Src2: 3, AddrGen: 0})
		return mustRun(t, testCfg(), loopOf(body, []prog.AddrGen{prog.Fixed{Address: 0x4000_0000}}),
			RunConfig{MaxInstructions: 30_000, WarmupInstructions: 5_000})
	}
	with, without := mk(true), mk(false)
	if with.AVF[uarch.RF] <= without.AVF[uarch.RF] {
		t.Errorf("persistent-register reads should raise RF AVF: with %.4f without %.4f",
			with.AVF[uarch.RF], without.AVF[uarch.RF])
	}
}

// TestDeterminism: identical runs produce identical results.
func TestDeterminism(t *testing.T) {
	mk := func() *avf.Result {
		gens := []prog.AddrGen{prog.RandomWalk{Base: 0x4000_0000, Region: 1 << 16, Seed: 3}}
		body := []isa.Instr{
			{Op: isa.OpLoad, Dest: 3, Src1: 2, AddrGen: 0},
			{Op: isa.OpAdd, Dest: 4, Src1: 3, Imm: 1},
			{Op: isa.OpStore, Dest: isa.RZero, Src1: 2, Src2: 4, AddrGen: 0},
		}
		return mustRun(t, testCfg(), loopOf(body, gens), RunConfig{MaxInstructions: 30_000})
	}
	a, b := mk(), mk()
	if *a != *b {
		t.Errorf("two identical runs diverged:\n%v\n%v", a, b)
	}
}

// TestWindowInsensitivity: for a steady-state loop, doubling the
// measured window moves class SERs only marginally — the property that
// justifies sub-100M-instruction runs (DESIGN.md §4).
func TestWindowInsensitivity(t *testing.T) {
	cfg := testCfg()
	gens := []prog.AddrGen{
		prog.PointerChase{Base: 0x4000_0000, Stride: 64, Region: uint64(2 * cfg.Mem.L2.SizeBytes)},
	}
	body := []isa.Instr{
		{Op: isa.OpLoad, Dest: 1, Src1: 1, AddrGen: 0},
		{Op: isa.OpLoad, Dest: 3, Src1: 2, AddrGen: 0},
		{Op: isa.OpAdd, Dest: 4, Src1: 3, Imm: 1},
		{Op: isa.OpStore, Dest: isa.RZero, Src1: 2, Src2: 4, AddrGen: 0},
		{Op: isa.OpStore, Dest: isa.RZero, Src1: 2, Src2: 1, AddrGen: 0},
	}
	short := mustRun(t, cfg, loopOf(body, gens), RunConfig{MaxInstructions: 120_000, WarmupInstructions: 60_000})
	long := mustRun(t, cfg, loopOf(body, gens), RunConfig{MaxInstructions: 180_000, WarmupInstructions: 60_000})
	rates := uarch.UniformRates(1)
	for _, cl := range avf.AllClasses() {
		s, l := short.SER(cfg, rates, cl), long.SER(cfg, rates, cl)
		if math.Abs(s-l) > 0.08 {
			t.Errorf("%v SER moved from %.3f to %.3f when doubling the window", cl, s, l)
		}
	}
}

// TestErrorPaths covers the run-budget failure modes.
func TestErrorPaths(t *testing.T) {
	body := []isa.Instr{{Op: isa.OpAdd, Dest: 3, Src1: 2, Imm: 1}}
	p := loopOf(body, nil)

	if _, err := Simulate(testCfg(), p, RunConfig{MaxInstructions: 100, WarmupInstructions: 100}); err == nil {
		t.Error("warmup ≥ budget accepted")
	}
	if _, err := Simulate(testCfg(), p, RunConfig{MaxInstructions: 10_000, MaxCycles: 50}); err == nil {
		t.Error("cycle budget exhaustion not reported")
	} else if !strings.Contains(err.Error(), "cycle budget") {
		t.Errorf("wrong error: %v", err)
	}

	bad := testCfg()
	bad.Core.IQEntries = 0
	if _, err := Simulate(bad, p, RunConfig{MaxInstructions: 1000}); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := Simulate(testCfg(), &prog.Program{Name: "empty"}, RunConfig{}); err == nil {
		t.Error("invalid program accepted")
	}
}

// TestProgramRunsToCompletion: a finite program ends cleanly before the
// budget and reports only its committed instructions.
func TestProgramRunsToCompletion(t *testing.T) {
	body := []isa.Instr{
		{Op: isa.OpAdd, Dest: 3, Src1: 2, Imm: 1},
		{Op: isa.OpBranch, Dest: isa.RZero, Src1: 2, BrGen: 0},
	}
	p := &prog.Program{
		Name: "finite", Init: initAll(), Body: body,
		BrGens:     []prog.BranchGen{prog.LoopBranch{Iterations: 50}},
		Iterations: 50,
	}
	res := mustRun(t, testCfg(), p, RunConfig{MaxInstructions: 100_000})
	want := int64(len(initAll()) + 50*2)
	if res.Instructions != want {
		t.Errorf("committed %d instructions, want %d", res.Instructions, want)
	}
}

// TestAVFsWithinBounds: every reported AVF lies in [0, 1] for a mixed
// program.
func TestAVFsWithinBounds(t *testing.T) {
	cfg := testCfg()
	gens := []prog.AddrGen{
		prog.PointerChase{Base: 0x4000_0000, Stride: 64, Region: uint64(2 * cfg.Mem.L2.SizeBytes)},
		prog.RandomWalk{Base: 0x4000_0000, Region: 1 << 16, Seed: 5},
	}
	body := []isa.Instr{
		{Op: isa.OpLoad, Dest: 1, Src1: 1, AddrGen: 0},
		{Op: isa.OpLoad, Dest: 3, Src1: 2, AddrGen: 1},
		{Op: isa.OpMul, Dest: 4, Src1: 3, Imm: 3},
		{Op: isa.OpAdd, Dest: 5, Src1: 4, Src2: 10, RegReg: true},
		{Op: isa.OpStore, Dest: isa.RZero, Src1: 2, Src2: 5, AddrGen: 1},
		{Op: isa.OpStore, Dest: isa.RZero, Src1: 2, Src2: 1, AddrGen: 1},
	}
	res := mustRun(t, cfg, loopOf(body, gens), RunConfig{MaxInstructions: 50_000, WarmupInstructions: 10_000})
	for s := uarch.Structure(0); s < uarch.NumStructures; s++ {
		if res.AVF[s] < 0 || res.AVF[s] > 1 {
			t.Errorf("AVF[%v] = %f out of bounds", s, res.AVF[s])
		}
	}
	if res.IPC <= 0 {
		t.Error("IPC must be positive")
	}
}

// TestIQFreedAtIssue: issue-queue entries are released at issue
// (21264-style), so in a miss shadow the IQ occupancy stays well below
// the ROB occupancy — the property that lets the paper treat IQ and ROB
// occupancy as separately controllable.
func TestIQFreedAtIssue(t *testing.T) {
	cfg := testCfg()
	region := uint64(4 * cfg.Mem.L2.SizeBytes)
	gens := []prog.AddrGen{prog.PointerChase{Base: 0x4000_0000, Stride: 64, Region: region}}
	body := []isa.Instr{{Op: isa.OpLoad, Dest: 1, Src1: 1, AddrGen: 0}}
	for i := 0; i < 20; i++ {
		body = append(body, isa.Instr{Op: isa.OpAdd, Dest: 3, Src1: 2, Imm: 1})
		body = append(body, isa.Instr{Op: isa.OpStore, Dest: isa.RZero, Src1: 2, Src2: 3, AddrGen: 0})
	}
	res := mustRun(t, cfg, loopOf(body, gens), RunConfig{
		MaxInstructions: 50_000, WarmupInstructions: 10_000,
	})
	// The independent adds/stores issue promptly and leave the IQ; the
	// ROB keeps them until the blocking chase commits.
	if res.OccupancyIQ >= res.OccupancyROB {
		t.Errorf("IQ occupancy %.2f should sit below ROB occupancy %.2f",
			res.OccupancyIQ, res.OccupancyROB)
	}
}

// TestLoadWaitsForStoreData: a load aliasing an older store cannot
// complete before the store's data is ready (perfect disambiguation
// blocks it); the same loop without aliasing runs faster.
func TestLoadWaitsForStoreData(t *testing.T) {
	mk := func(alias bool) float64 {
		loadGen := 1
		if alias {
			loadGen = 0
		}
		gens := []prog.AddrGen{
			prog.Fixed{Address: 0x4000_0000},
			prog.Fixed{Address: 0x4000_1000},
		}
		body := []isa.Instr{
			// Slow chain producing the store data.
			{Op: isa.OpMul, Dest: 3, Src1: 3, Imm: 1},
			{Op: isa.OpMul, Dest: 4, Src1: 3, Imm: 1},
			{Op: isa.OpStore, Dest: isa.RZero, Src1: 2, Src2: 4, AddrGen: 0},
			// The probe load: aliases the store or not.
			{Op: isa.OpLoad, Dest: 5, Src1: 2, AddrGen: loadGen},
			{Op: isa.OpStore, Dest: isa.RZero, Src1: 2, Src2: 5, AddrGen: 1},
		}
		res := mustRun(t, testCfg(), loopOf(body, gens), RunConfig{MaxInstructions: 20_000})
		return res.IPC
	}
	aliased, free := mk(true), mk(false)
	// Both loops are bound by the serial MUL chain, so the penalty is
	// small; the guarantee is that aliasing never *helps* beyond noise.
	if aliased > free*1.05 {
		t.Errorf("aliased loop (%.3f IPC) outruns the alias-free loop (%.3f IPC)",
			aliased, free)
	}
}

// TestCommitWidthBoundsIPC: no program exceeds the 4-wide commit.
func TestCommitWidthBoundsIPC(t *testing.T) {
	var body []isa.Instr
	for i := 0; i < 12; i++ {
		body = append(body, isa.Instr{Op: isa.OpNop, Dest: isa.RZero})
	}
	res := mustRun(t, testCfg(), loopOf(body, nil), RunConfig{MaxInstructions: 40_000})
	if res.IPC > 4.0+1e-9 {
		t.Errorf("IPC %.3f exceeds the commit width", res.IPC)
	}
}
