package pipe

// readyRef pairs a sequence number with the ROB slot generation that was
// current when the reference was created (used by the waiter lists and
// the disambiguation-blocked parking lists; see events.go on lazy
// invalidation).
type readyRef struct {
	seq int64
	gen uint32
}

// readyBits marks the operand-ready, not-yet-issued uops with one bit
// per ROB ring slot. Because the in-flight window never exceeds the ring
// size, walking the set bits starting at head's slot (with wrap) visits
// uops in ascending sequence order — the oldest-first priority of the
// scan-based core — while insertion and removal are single bit
// operations instead of the previous sorted-slice memmove. Bits always
// refer to the slot's current occupant: they are set only for live
// waiting uops and cleared at issue, at disambiguation-park and at
// flush, so no generation check is needed when walking (issue does a
// defensive state check).
type readyBits struct {
	words []uint64
	count int
}

func (r *readyBits) init(ring int64) {
	r.words = make([]uint64, (ring+63)>>6)
	r.count = 0
}

func (r *readyBits) set(slot int64) {
	w, b := slot>>6, uint(slot&63)
	if r.words[w]&(1<<b) == 0 {
		r.words[w] |= 1 << b
		r.count++
	}
}

func (r *readyBits) clear(slot int64) {
	w, b := slot>>6, uint(slot&63)
	if r.words[w]&(1<<b) != 0 {
		r.words[w] &^= 1 << b
		r.count--
	}
}

func (r *readyBits) reset() {
	for i := range r.words {
		r.words[i] = 0
	}
	r.count = 0
}
