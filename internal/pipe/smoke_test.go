package pipe_test

import (
	"testing"

	"avfstress/internal/avf"
	"avfstress/internal/codegen"
	"avfstress/internal/pipe"
	"avfstress/internal/uarch"
)

// paperBaselineKnobs are the final GA knob settings the paper reports for
// the Baseline configuration (Figure 5a).
func paperBaselineKnobs() codegen.Knobs {
	return codegen.Knobs{
		LoopSize: 81, NumLoads: 29, NumStores: 28,
		NumIndepArith: 5, MissDependent: 7,
		AvgChainLength: 2.14, DepDistance: 6,
		FracLongLatency: 0.8, FracRegReg: 0.93,
		Seed: 42,
	}
}

// TestSmokeStressmark runs the paper's reported baseline knobs through
// the generator and simulator on a scaled configuration, checking that
// the headline mechanisms appear: high ROB/LQ/SQ occupancy in the miss
// shadow, near-total DL1/DTLB liveness, and a mostly-ACE L2.
func TestSmokeStressmark(t *testing.T) {
	cfg := uarch.Scaled(uarch.Baseline(), 32)
	p, k, err := codegen.Generate(cfg, paperBaselineKnobs(), 1<<40)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if k.LoopSize != 81 {
		t.Fatalf("normalisation changed loop size: %d", k.LoopSize)
	}
	if err := codegen.CheckACEClosure(p); err != nil {
		t.Fatalf("ACE closure: %v", err)
	}
	res, err := pipe.Simulate(cfg, p, pipe.RunConfig{
		MaxInstructions:    220_000,
		WarmupInstructions: 100_000,
	})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	t.Logf("\n%s", res)
	t.Logf("IPC=%.3f occROB=%.2f occIQ=%.2f occLQ=%.2f occSQ=%.2f dl1miss=%.3f l2miss=%.3f wrongpath=%.3f",
		res.IPC, res.OccupancyROB, res.OccupancyIQ, res.OccupancyLQ, res.OccupancySQ,
		res.DL1MissRate, res.L2MissRate, res.WrongPathFrac)
	t.Logf("SER QS=%.3f QS+RF=%.3f DL1+DTLB=%.3f L2=%.3f",
		res.SER(cfg, uarch.UniformRates(1), avf.ClassQS),
		res.SER(cfg, uarch.UniformRates(1), avf.ClassQSRF),
		res.SER(cfg, uarch.UniformRates(1), avf.ClassDL1DTLB),
		res.SER(cfg, uarch.UniformRates(1), avf.ClassL2))

	if res.ACEInstrFrac < 0.999 {
		t.Errorf("stressmark must be 100%% ACE, got %.4f", res.ACEInstrFrac)
	}
	if res.AVF[uarch.ROB] < 0.5 {
		t.Errorf("ROB AVF %.3f too low for a miss-shadow stressmark", res.AVF[uarch.ROB])
	}
	if res.AVF[uarch.DL1] < 0.5 {
		t.Errorf("DL1 AVF %.3f too low for full line coverage", res.AVF[uarch.DL1])
	}
	if res.AVF[uarch.DTLB] < 0.5 {
		t.Errorf("DTLB AVF %.3f too low for full TLB coverage", res.AVF[uarch.DTLB])
	}
	if res.AVF[uarch.L2] < 0.4 {
		t.Errorf("L2 AVF %.3f too low for dirty-resident lines", res.AVF[uarch.L2])
	}
}
