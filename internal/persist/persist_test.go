package persist

import (
	"os"
	"path/filepath"
	"testing"

	"avfstress/internal/avf"
	"avfstress/internal/codegen"
	"avfstress/internal/uarch"
)

func TestStressmarkRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mark.json")
	in := SavedStressmark{
		Config: "Baseline",
		Rates:  "rhc",
		Knobs: codegen.Knobs{
			LoopSize: 81, NumLoads: 29, NumStores: 28, NumIndepArith: 5,
			MissDependent: 7, AvgChainLength: 2.14, DepDistance: 6,
			FracLongLatency: 0.8, FracRegReg: 0.93, Seed: 42, L2Hit: true,
		},
		Fitness: 0.62,
	}
	if err := SaveStressmark(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := LoadStressmark(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Knobs != in.Knobs || out.Config != in.Config || out.Fitness != in.Fitness {
		t.Errorf("round trip lost data:\nin  %+v\nout %+v", in, out)
	}
	// The loaded knobs regenerate the identical program.
	cfg := uarch.Baseline()
	p1, _, err := codegen.Generate(cfg, in.Knobs, 1000)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := codegen.Generate(cfg, out.Knobs, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Listing() != p2.Listing() {
		t.Error("persisted knobs regenerate a different program")
	}
}

func TestResultRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "result.json")
	in := &avf.Result{Config: "Baseline", Workload: "w", Cycles: 100, Instructions: 42, IPC: 0.42}
	in.AVF[uarch.ROB] = 0.9
	in.Activity.IssuedALU = 7
	if err := SaveResult(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := LoadResult(path)
	if err != nil {
		t.Fatal(err)
	}
	if *out != *in {
		t.Errorf("round trip lost data:\nin  %+v\nout %+v", in, out)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := LoadStressmark("/nonexistent/x.json"); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := SaveResult(bad, &avf.Result{}); err != nil {
		t.Fatal(err)
	}
	// Corrupt it.
	if err := writeFile(bad, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadResult(bad); err == nil {
		t.Error("corrupt file accepted")
	}
	if _, err := LoadStressmark(bad); err == nil {
		t.Error("corrupt stressmark accepted")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
