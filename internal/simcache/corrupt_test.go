package simcache

// Corruption-quarantine tests (DESIGN.md §11): flipping arbitrary bits
// in any on-disk cache entry — result or blob tier — must yield a
// quarantined entry and a miss, observable in Stats, and never a crash
// or a wrong value handed to a caller.

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"avfstress/internal/avf"
	"avfstress/internal/persist"
)

// writeValidFrameInvalidJSON replaces path with an entry whose frame
// validates but whose payload is not JSON.
func writeValidFrameInvalidJSON(t *testing.T, path string) {
	t.Helper()
	if err := os.WriteFile(path, persist.EncodeFramed([]byte("not json")), 0o644); err != nil {
		t.Fatal(err)
	}
}

// diskEntry locates the single live disk entry with the given extension.
func diskEntry(t *testing.T, dir, ext string) string {
	t.Helper()
	var matches []string
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ext {
			matches = append(matches, filepath.Join(dir, e.Name()))
		}
	}
	if len(matches) != 1 {
		t.Fatalf("want exactly one %s entry in %s, have %d", ext, dir, len(matches))
	}
	return matches[0]
}

func quarantineCount(t *testing.T, versionDir string) int {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(versionDir, QuarantineDirName))
	if os.IsNotExist(err) {
		return 0
	}
	if err != nil {
		t.Fatal(err)
	}
	return len(ents)
}

// TestResultBitFlipQuarantinesEveryOffset: for a flipped bit at every
// byte offset of a result entry, a cold store must re-simulate (miss),
// quarantine the corrupt file, and return the canonical result — the
// report can never diff.
func TestResultBitFlipQuarantinesEveryOffset(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{Dir: dir})
	key := s.Key("corrupt-result")
	want := sampleResult("victim")
	if _, err := s.Do(key, func() (*avf.Result, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}
	versionDir := filepath.Join(dir, EngineVersion)
	path := diskEntry(t, versionDir, ".json")
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	quarantined := 0
	for off := 0; off < len(good); off++ {
		mut := append([]byte(nil), good...)
		mut[off] ^= 1 << (off % 8)
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		cold := New(Options{Dir: dir}) // fresh memory tier: forces a disk read
		sims := 0
		got, err := cold.Do(key, func() (*avf.Result, error) { sims++; return sampleResult("victim"), nil })
		if err != nil {
			t.Fatalf("offset %d: corrupt entry surfaced as an error: %v", off, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("offset %d: corrupt entry produced a different result", off)
		}
		if sims != 1 {
			t.Fatalf("offset %d: corrupt entry served as a hit (sims=%d)", off, sims)
		}
		if st := cold.Stats(); st.Quarantined != 1 {
			t.Fatalf("offset %d: stats %+v, want Quarantined=1", off, st)
		}
		quarantined++
		// The re-simulation rewrote a clean entry; confirm before the
		// next round mutates it again.
		if rewritten, err := os.ReadFile(path); err != nil || !bytes.Equal(rewritten, good) {
			t.Fatalf("offset %d: entry not healed after quarantine (err=%v)", off, err)
		}
	}
	if got := quarantineCount(t, versionDir); got == 0 {
		t.Error("quarantine directory is empty after corruption")
	}
}

// TestBlobBitFlipQuarantinesEveryOffset: same property for the blob
// tier. The 1-byte trial-outcome blobs are the sharpest case — without
// the CRC frame a payload bit flip would silently invert a trial
// outcome.
func TestBlobBitFlipQuarantinesEveryOffset(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{Dir: dir})
	key := s.Key("corrupt-blob")
	s.PutBlob(key, []byte{1})
	versionDir := filepath.Join(dir, EngineVersion)
	path := diskEntry(t, versionDir, ".bin")
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(good); off++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), good...)
			mut[off] ^= 1 << bit
			if err := os.WriteFile(path, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			cold := New(Options{Dir: dir})
			if v, ok := cold.GetBlob(key); ok {
				t.Fatalf("offset %d bit %d: corrupt blob served as a hit (%v)", off, bit, v)
			}
			st := cold.Stats()
			if st.Quarantined != 1 || st.Misses != 1 {
				t.Fatalf("offset %d bit %d: stats %+v, want Quarantined=1 Misses=1", off, bit, st)
			}
			// Restore the good entry for the next mutation.
			if err := os.WriteFile(path, good, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestTruncatedAndLegacyEntriesAreMisses: short files (torn writes cut
// mid-entry) and pre-frame legacy files (plain payload bytes, no frame)
// quarantine as misses on every read path.
func TestTruncatedAndLegacyEntriesAreMisses(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{Dir: dir})
	rkey, bkey := s.Key("res"), s.Key("blob")
	if _, err := s.Do(rkey, func() (*avf.Result, error) { return sampleResult("legacy"), nil }); err != nil {
		t.Fatal(err)
	}
	s.PutBlob(bkey, []byte{0, 1, 2, 3})
	versionDir := filepath.Join(dir, EngineVersion)
	rpath := diskEntry(t, versionDir, ".json")
	bpath := diskEntry(t, versionDir, ".bin")

	for _, tc := range []struct {
		name    string
		mutate  func() error
		expectQ int
	}{
		{"truncated result", func() error { return os.Truncate(rpath, 7) }, 1},
		{"empty blob file", func() error { return os.Truncate(bpath, 0) }, 1},
		{"legacy unframed result", func() error {
			return os.WriteFile(rpath, []byte(`{"Config":"legacy"}`), 0o644)
		}, 1},
		{"legacy unframed blob", func() error { return os.WriteFile(bpath, []byte{1}, 0o644) }, 1},
	} {
		if err := tc.mutate(); err != nil {
			t.Fatal(err)
		}
		cold := New(Options{Dir: dir})
		sims := 0
		if _, err := cold.Do(rkey, func() (*avf.Result, error) { sims++; return sampleResult("legacy"), nil }); err != nil {
			t.Fatalf("%s: result read errored: %v", tc.name, err)
		}
		if _, ok := cold.GetBlob(bkey); ok && sims == 0 {
			t.Fatalf("%s: nothing was treated as a miss", tc.name)
		}
		if st := cold.Stats(); st.Quarantined < int64(tc.expectQ) {
			t.Fatalf("%s: stats %+v, want Quarantined>=%d", tc.name, st, tc.expectQ)
		}
		// Heal both entries for the next case.
		s2 := New(Options{Dir: dir})
		if _, err := s2.Do(rkey, func() (*avf.Result, error) { return sampleResult("legacy"), nil }); err != nil {
			t.Fatal(err)
		}
		s2.PutBlob(bkey, []byte{0, 1, 2, 3})
	}
}

// TestFramedPayloadDecodeFailureQuarantines: a frame-valid entry whose
// JSON payload does not decode (writer-side bug, divergent build) is
// also quarantined, not an error.
func TestFramedPayloadDecodeFailureQuarantines(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{Dir: dir})
	key := s.Key("bad-payload")
	if _, err := s.Do(key, func() (*avf.Result, error) { return sampleResult("x"), nil }); err != nil {
		t.Fatal(err)
	}
	versionDir := filepath.Join(dir, EngineVersion)
	path := diskEntry(t, versionDir, ".json")
	// Valid frame, invalid JSON.
	writeValidFrameInvalidJSON(t, path)
	cold := New(Options{Dir: dir})
	sims := 0
	if _, err := cold.Do(key, func() (*avf.Result, error) { sims++; return sampleResult("x"), nil }); err != nil {
		t.Fatal(err)
	}
	if sims != 1 {
		t.Fatalf("frame-valid garbage served as a hit (sims=%d)", sims)
	}
	if st := cold.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats %+v, want Quarantined=1", st)
	}
}

// TestDiscardBlobQuarantines: DiscardBlob drops the memory entry and
// quarantines the disk entry, so the next probe is a clean miss.
func TestDiscardBlobQuarantines(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{Dir: dir})
	key := s.Key("discard")
	s.PutBlob(key, []byte("decoder rejected me"))
	if _, ok := s.GetBlob(key); !ok {
		t.Fatal("blob not stored")
	}
	s.DiscardBlob(key)
	if _, ok := s.GetBlob(key); ok {
		t.Error("discarded blob still served")
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Errorf("stats %+v, want Quarantined=1", st)
	}
	if got := quarantineCount(t, filepath.Join(dir, EngineVersion)); got != 1 {
		t.Errorf("quarantine dir holds %d entries, want 1", got)
	}
	// Discarding again (or on a nil store) is a harmless no-op.
	s.DiscardBlob(key)
	var nils *Store
	nils.DiscardBlob(key)
}
