// Package service is the avfstressd job server: an HTTP surface over
// the scenario registry and the concurrent DAG scheduler. Clients
// submit declarative scenario.Specs (POST /v1/jobs), follow progress
// (GET /v1/jobs/{id}, optionally streamed), fetch rendered reports and
// results (GET /v1/results/{id}) and cancel running work (DELETE
// /v1/jobs/{id}).
//
// All jobs share one content-addressed simulation store (optionally
// disk-backed), so concurrent clients requesting overlapping scenarios
// each pay only the marginal simulations; every job runs against its
// own store view, so per-job cache-effectiveness stats are exact even
// under concurrency. Job execution is bounded by MaxJobs; each job's
// context is cancelled by DELETE or its spec's timeout, and
// cancellation propagates through the scheduler, the experiment
// harness and the GA (DESIGN.md §8).
//
// The server is built to survive failure (DESIGN.md §11): submissions
// and terminal outcomes are journalled durably (JournalPath), so a
// crashed or killed daemon resubmits every unfinished job on restart —
// and because all simulation results are memoised content-addressed,
// the recovered report is byte-identical to an uninterrupted run.
// Panicking jobs fail alone (the status carries the stack; the daemon
// keeps serving), transient job errors retry with exponential backoff,
// admission is bounded (429 when the queue is full, 503 while
// draining), duplicate submissions dedup via Idempotency-Key, and
// GET /v1/healthz reports journal/queue/cache health.
//
// Besides the registered paper experiments, specs may request the
// parametric scenarios — stressmark, workloads, faultinject (the
// Monte Carlo fault-injection validation, sized by the spec's
// inject_trials field; DESIGN.md §9) and rootcause (the same study's
// per-instruction attribution view; DESIGN.md §14). Fault-injection
// trials memoise in the shared store like every other result, so
// repeated campaigns across jobs replay only the marginal trials, and
// faultinject/rootcause with equal parameters share one study.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"avfstress/internal/experiments"
	"avfstress/internal/scenario"
	"avfstress/internal/sched"
	"avfstress/internal/simcache"
)

// Options configures a Server.
type Options struct {
	// CacheDir enables the shared store's disk tier ("" = memory only).
	CacheDir string
	// Scale is the default cache scale-down factor for jobs that do not
	// set one (0 = the experiments default).
	Scale int
	// Parallelism bounds each job's concurrent jobs/simulations
	// (0 = GOMAXPROCS).
	Parallelism int
	// MaxJobs bounds concurrently *running* jobs; excess submissions
	// queue in order (0 = GOMAXPROCS).
	MaxJobs int
	// MaxHistory bounds retained jobs: when a submission would exceed
	// it, the oldest *terminal* jobs (and their reports) are evicted —
	// a long-running daemon's memory stays bounded, at the cost of old
	// job ids turning 404 (0 = 512).
	MaxHistory int
	// MaxQueue bounds *admitted* (non-terminal) jobs; submissions beyond
	// it are refused with 429 until work drains (0 = 1024).
	MaxQueue int
	// JournalPath enables the durable job journal ("" = no journal): an
	// append-only file of submissions and terminal outcomes. On startup
	// the journal is replayed — terminal jobs come back as history,
	// unfinished jobs are resubmitted — then compacted in place.
	JournalPath string
	// Retry is the per-job retry policy for transient failures. The
	// zero value means the server default (3 attempts, exponential
	// backoff); set MaxAttempts to 1 to disable retries.
	Retry sched.RetryPolicy
	// JobTimeout bounds each scheduler job (one simulation / search /
	// render) inside every submitted job; a deadline is transient and
	// retried under Retry, and exhaustion fails the job rather than
	// cancelling it (0 = no per-job deadline).
	JobTimeout time.Duration
	// HeartbeatInterval is the fabric runner heartbeat period
	// (0 = 500ms) and LeaseTTL how long a silent runner keeps its
	// claims before they are freed for stealing (0 = 5s, floored at
	// twice the heartbeat).
	HeartbeatInterval time.Duration
	LeaseTTL          time.Duration
	// Logf, when set, receives server-side log lines.
	Logf func(format string, args ...interface{})
}

// Server implements http.Handler. Construct with New.
type Server struct {
	opts    Options
	store   *simcache.Store
	slots   chan struct{}
	mux     *http.ServeMux
	journal *journal
	fabric  *fabric
	started time.Time

	mu        sync.Mutex
	jobs      map[string]*job
	idem      map[string]string // Idempotency-Key -> job id
	seq       int
	draining  bool
	recovered int // unfinished jobs resubmitted from the journal
}

// Status is a job's lifecycle state.
type Status string

// Job lifecycle states.
const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// Terminal reports whether the state is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// job is one submitted request.
type job struct {
	id        string
	spec      scenario.Spec
	scenarios []string
	idemKey   string
	recovered bool // restored or resubmitted from the journal
	cancel    context.CancelFunc
	done      chan struct{}

	mu          sync.Mutex
	status      Status
	lines       []string
	report      string
	reportLost  bool // finished before a restart; report not retained
	errMsg      string
	retries     int
	interrupted bool // daemon stopping: skip the terminal journal record
	stats       simcache.Stats
	created     time.Time
	started     time.Time
	finished    time.Time
}

func (j *job) logf(format string, args ...interface{}) {
	j.mu.Lock()
	j.lines = append(j.lines, fmt.Sprintf(format, args...))
	j.mu.Unlock()
}

// JobStatus is the wire form of a job's state.
type JobStatus struct {
	ID        string         `json:"id"`
	Status    Status         `json:"status"`
	Scenarios []string       `json:"scenarios"`
	Spec      scenario.Spec  `json:"spec"`
	Progress  []string       `json:"progress,omitempty"`
	Error     string         `json:"error,omitempty"`
	Retries   int            `json:"retries,omitempty"`
	Recovered bool           `json:"recovered,omitempty"`
	Stats     simcache.Stats `json:"stats"`
	CreatedAt time.Time      `json:"created_at"`
	StartedAt *time.Time     `json:"started_at,omitempty"`
	EndedAt   *time.Time     `json:"ended_at,omitempty"`
}

func (j *job) snapshot(progress bool) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.id, Status: j.status, Scenarios: j.scenarios, Spec: j.spec,
		Error: j.errMsg, Retries: j.retries, Recovered: j.recovered,
		Stats: j.stats, CreatedAt: j.created,
	}
	if progress {
		st.Progress = append([]string(nil), j.lines...)
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.EndedAt = &t
	}
	return st
}

// New builds a server with its shared simulation store, replaying the
// job journal (if configured) before accepting traffic.
func New(opts Options) (*Server, error) {
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = runtime.GOMAXPROCS(0)
	}
	if opts.MaxHistory <= 0 {
		opts.MaxHistory = 512
	}
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = 1024
	}
	if opts.Retry == (sched.RetryPolicy{}) {
		opts.Retry = sched.RetryPolicy{MaxAttempts: 3, BaseDelay: 100 * time.Millisecond, MaxDelay: 2 * time.Second}
	}
	s := &Server{
		opts:    opts,
		slots:   make(chan struct{}, opts.MaxJobs),
		jobs:    map[string]*job{},
		idem:    map[string]string{},
		started: time.Now(),
	}
	s.fabric = newFabric(opts.HeartbeatInterval, opts.LeaseTTL, opts.Logf)
	// The journal field is nil until recover(); the closure reads it at
	// call time, and append is nil-safe.
	s.fabric.journalAppend = func(rec journalRecord) {
		if err := s.journal.append(rec); err != nil {
			s.logf("journal: %v", err)
		}
	}
	// The coordinator's store is the fabric's authoritative cache tier:
	// its remote adapter carries only claim arbitration (runners push
	// and pull entries over /v1/cache).
	s.store = simcache.New(simcache.Options{Dir: opts.CacheDir, Remote: coordRemote{s.fabric}})
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/results/{id}", s.handleResults)
	mux.HandleFunc("POST /v1/fabric/join", s.handleFabricJoin)
	mux.HandleFunc("POST /v1/fabric/heartbeat", s.handleFabricHeartbeat)
	mux.HandleFunc("POST /v1/fabric/claim", s.handleFabricClaim)
	mux.HandleFunc("POST /v1/fabric/release", s.handleFabricRelease)
	mux.HandleFunc("GET /v1/cache/{kind}/{key}", s.handleCacheGet)
	mux.HandleFunc("PUT /v1/cache/{kind}/{key}", s.handleCachePut)
	s.mux = mux
	if opts.JournalPath != "" {
		if err := s.recover(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// recover replays the journal: terminal jobs are restored as history
// (their reports were not retained — /v1/results answers 410 Gone),
// unfinished jobs are resubmitted with their original ids. The journal
// is then compacted to exactly the retained history before the resumed
// jobs start running.
func (s *Server) recover() error {
	jl, recs, err := openJournal(s.opts.JournalPath)
	if err != nil {
		return err
	}
	s.journal = jl

	type replay struct {
		spec             scenario.Spec
		idem             string
		status           Status
		errMsg           string
		subTime, endTime time.Time
	}
	var order []string
	state := map[string]*replay{}
	for _, rec := range recs {
		switch rec.Op {
		case journalOpLease:
			// A lease grant from a previous process life: its outcome is
			// unknown, but the resubmitted jobs re-arbitrate the work and
			// anything the runner published survives in the cache.
			s.fabric.priorLeases++
			continue
		case journalOpSteal:
			continue
		case journalOpSubmit:
			if rec.Spec == nil {
				continue
			}
			if _, ok := state[rec.ID]; !ok {
				order = append(order, rec.ID)
			}
			state[rec.ID] = &replay{spec: *rec.Spec, idem: rec.IdemKey, subTime: rec.Time}
		case journalOpEnd:
			if st, ok := state[rec.ID]; ok && rec.Status.Terminal() {
				st.status, st.errMsg, st.endTime = rec.Status, rec.Error, rec.Time
			}
		}
	}

	type resume struct {
		ctx context.Context
		j   *job
	}
	var resumes []resume
	closed := make(chan struct{})
	close(closed)
	for _, id := range order {
		n, ok := jobSeq(id)
		if !ok {
			continue
		}
		if n > s.seq {
			s.seq = n
		}
		st := state[id]
		names, rerr := experiments.ResolveSpec(st.spec)
		j := &job{
			id: id, spec: st.spec, scenarios: names, idemKey: st.idem,
			recovered: true, created: st.subTime,
		}
		switch {
		case st.status.Terminal():
			j.status = st.status
			j.errMsg = st.errMsg
			j.finished = st.endTime
			j.reportLost = st.status == StatusDone
			j.cancel = func() {}
			j.done = closed
		case rerr != nil:
			// The journalled spec no longer resolves (registry drift):
			// terminal failure, not a crash loop.
			j.status = StatusFailed
			j.errMsg = rerr.Error()
			j.finished = time.Now()
			j.cancel = func() {}
			j.done = closed
		default:
			ctx, cancel := jobContext(st.spec)
			j.status = StatusQueued
			j.cancel = cancel
			j.done = make(chan struct{})
			resumes = append(resumes, resume{ctx, j})
			s.recovered++
		}
		s.jobs[id] = j
		if st.idem != "" {
			s.idem[st.idem] = id
		}
	}
	s.evictLocked()
	if err := s.journal.rewrite(s.compactRecordsLocked()); err != nil {
		return err
	}
	for _, r := range resumes {
		s.logf("resubmitting %s from the journal: %v", r.j.id, r.j.scenarios)
		go s.run(r.ctx, r.j)
	}
	return nil
}

// compactRecordsLocked renders the retained job history as journal
// records. Non-terminal jobs get only their submit record, so a crash
// before they finish resubmits them again.
func (s *Server) compactRecordsLocked() []journalRecord {
	var recs []journalRecord
	for i := 1; i <= s.seq; i++ {
		j, ok := s.jobs[fmt.Sprintf("job-%d", i)]
		if !ok {
			continue
		}
		j.mu.Lock()
		status, errMsg, finished := j.status, j.errMsg, j.finished
		j.mu.Unlock()
		spec := j.spec
		recs = append(recs, journalRecord{
			Op: journalOpSubmit, ID: j.id, Spec: &spec, IdemKey: j.idemKey, Time: j.created,
		})
		if status.Terminal() {
			recs = append(recs, journalRecord{
				Op: journalOpEnd, ID: j.id, Status: status, Error: errMsg, Time: finished,
			})
		}
	}
	return recs
}

// jobSeq parses a canonical job id ("job-N").
func jobSeq(id string) (int, bool) {
	var n int
	if _, err := fmt.Sscanf(id, "job-%d", &n); err != nil || n < 1 || fmt.Sprintf("job-%d", n) != id {
		return 0, false
	}
	return n, true
}

// jobContext derives a job's root context from its spec.
func jobContext(spec scenario.Spec) (context.Context, context.CancelFunc) {
	if spec.TimeoutSec > 0 {
		return context.WithTimeout(context.Background(), time.Duration(spec.TimeoutSec)*time.Second)
	}
	return context.WithCancel(context.Background())
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Store exposes the shared simulation store (server-wide stats).
func (s *Server) Store() *simcache.Store { return s.store }

// Recovered reports how many unfinished jobs the journal resubmitted.
func (s *Server) Recovered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered
}

// Drain gracefully stops the server: new submissions are refused with
// 503, running jobs keep going until they finish or ctx expires, and
// any job still running at the deadline is cancelled *without* a
// terminal journal record — a restarted daemon resubmits it. The
// journal is closed either way.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	var pending []*job
	for _, j := range s.jobs {
		if !func() bool { j.mu.Lock(); defer j.mu.Unlock(); return j.status.Terminal() }() {
			pending = append(pending, j)
		}
	}
	s.mu.Unlock()
	defer s.journal.close()

	var interrupted []*job
	for _, j := range pending {
		select {
		case <-j.done:
		case <-ctx.Done():
			interrupted = append(interrupted, j)
		}
	}
	if len(interrupted) == 0 {
		return nil
	}
	for _, j := range interrupted {
		j.mu.Lock()
		j.interrupted = true
		j.mu.Unlock()
		j.cancel()
	}
	// Cancellation propagates through the scheduler promptly; the grace
	// timer only guards against a wedged job.
	grace := time.After(10 * time.Second)
	for _, j := range interrupted {
		select {
		case <-j.done:
		case <-grace:
			return fmt.Errorf("service: %s did not stop within the drain grace period", j.id)
		}
	}
	return ctx.Err()
}

// Shutdown stops the server immediately: every non-terminal job is
// cancelled and waited for (bounded by ctx), without journalling
// terminal states — like a crash, a restarted daemon resubmits them.
// Use Drain for a graceful stop that lets running jobs finish.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	var pending []*job
	for _, j := range s.jobs {
		pending = append(pending, j)
	}
	s.mu.Unlock()
	defer s.journal.close()
	for _, j := range pending {
		j.mu.Lock()
		j.interrupted = true
		j.mu.Unlock()
		j.cancel()
	}
	for _, j := range pending {
		select {
		case <-j.done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// handleSubmit validates the spec, registers the job and starts it in
// the background (queueing behind MaxJobs running jobs). An
// Idempotency-Key header dedups retried submissions: a key already
// bound to a retained job returns that job (200) instead of a new one.
// Admission is bounded: 503 while draining, 429 when MaxQueue jobs are
// already admitted and unfinished.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec scenario.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	if r.Context().Err() != nil {
		return // client gone; nothing to admit
	}
	names, err := experiments.ResolveSpec(spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	idemKey := r.Header.Get("Idempotency-Key")
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		w.Header().Set("Retry-After", "5")
		httpError(w, http.StatusServiceUnavailable, "server is draining; resubmit to its successor")
		return
	}
	if idemKey != "" {
		if j, ok := s.jobs[s.idem[idemKey]]; ok {
			s.mu.Unlock()
			w.Header().Set("Idempotency-Replayed", "true")
			writeJSON(w, http.StatusOK, j.snapshot(false))
			return
		}
	}
	if pending := s.pendingLocked(); pending >= s.opts.MaxQueue {
		s.mu.Unlock()
		w.Header().Set("Retry-After", "5")
		httpError(w, http.StatusTooManyRequests,
			"queue full: %d unfinished jobs (max %d); retry once work drains", pending, s.opts.MaxQueue)
		return
	}
	ctx, cancel := jobContext(spec)
	s.seq++
	j := &job{
		id: fmt.Sprintf("job-%d", s.seq), spec: spec, scenarios: names, idemKey: idemKey,
		cancel: cancel, done: make(chan struct{}),
		status: StatusQueued, created: time.Now(),
	}
	s.jobs[j.id] = j
	if idemKey != "" {
		s.idem[idemKey] = j.id
	}
	s.evictLocked()
	s.mu.Unlock()
	if err := s.journal.append(journalRecord{
		Op: journalOpSubmit, ID: j.id, Spec: &spec, IdemKey: idemKey, Time: j.created,
	}); err != nil {
		s.logf("journal: %v", err)
	}
	s.logf("submitted %s: %v", j.id, names)
	go s.run(ctx, j)
	writeJSON(w, http.StatusAccepted, j.snapshot(false))
}

// pendingLocked counts admitted, unfinished jobs. Caller holds s.mu.
func (s *Server) pendingLocked() int {
	n := 0
	for _, j := range s.jobs {
		j.mu.Lock()
		if !j.status.Terminal() {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// evictLocked drops the oldest terminal jobs until at most MaxHistory
// remain, keeping the daemon's memory bounded. Non-terminal jobs are
// never evicted. Caller holds s.mu.
func (s *Server) evictLocked() {
	excess := len(s.jobs) - s.opts.MaxHistory
	for i := 1; excess > 0 && i <= s.seq; i++ {
		id := fmt.Sprintf("job-%d", i)
		if j, ok := s.jobs[id]; ok && func() bool {
			j.mu.Lock()
			defer j.mu.Unlock()
			return j.status.Terminal()
		}() {
			delete(s.jobs, id)
			if j.idemKey != "" && s.idem[j.idemKey] == id {
				delete(s.idem, j.idemKey)
			}
			excess--
		}
	}
}

// testRunJob, when non-nil, replaces a job's experiment execution —
// the test seam for injecting panicking or transiently failing work.
var testRunJob func(ctx context.Context, j *job) (string, error)

// run executes one job against a fresh experiments context sharing the
// server's store through a per-job view. A panic anywhere in the job
// (contained per scheduler job by internal/sched) fails only this job.
func (s *Server) run(ctx context.Context, j *job) {
	defer close(j.done)
	defer j.cancel()

	// Take a run slot; a cancellation while queued resolves immediately.
	select {
	case s.slots <- struct{}{}:
		defer func() { <-s.slots }()
	case <-ctx.Done():
		s.finishJob(j, "", ctx.Err(), simcache.Stats{})
		return
	}

	j.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	j.mu.Unlock()

	// Announce the run to joined runners for the duration of its
	// execution: every runner derives the same DAG from the same spec
	// and races this daemon claim-by-claim for its leased jobs.
	s.fabric.announce(j.id, j.spec)
	defer s.fabric.withdraw(j.id)

	view := s.store.View()
	base := experiments.Options{
		Scale:       s.opts.Scale,
		Parallelism: s.opts.Parallelism,
		Cache:       view,
		Logf:        j.logf,
		Retry:       s.opts.Retry,
		JobTimeout:  s.opts.JobTimeout,
		Executor:    coordExecutor{s.fabric},
		OnRetry: func(key string, attempt int, err error, backoff time.Duration) {
			j.mu.Lock()
			j.retries++
			j.mu.Unlock()
			j.logf("retrying %q (attempt %d failed: %v; backing off %v)", key, attempt, err, backoff)
		},
	}
	var report string
	var err error
	if testRunJob != nil {
		report, err = testRunJob(ctx, j)
	} else {
		var c *experiments.Context
		var names []string
		c, names, err = experiments.NewSpecContext(j.spec, base)
		if err == nil {
			report, err = c.RunScenarios(ctx, names)
		}
	}
	s.finishJob(j, report, err, view.LocalStats())
	s.logf("%s finished: %s (cache %s)", j.id, j.snapshot(false).Status, view.LocalStats())
}

// finishJob records the terminal state and journals it — unless the
// daemon itself is stopping the job (drain deadline, shutdown), in
// which case the journal keeps only the submission so a restarted
// daemon resubmits the job.
func (s *Server) finishJob(j *job, report string, err error, stats simcache.Stats) {
	j.finish(report, err, stats)
	j.mu.Lock()
	interrupted, status, errMsg, finished := j.interrupted, j.status, j.errMsg, j.finished
	j.mu.Unlock()
	if interrupted {
		return
	}
	if jerr := s.journal.append(journalRecord{
		Op: journalOpEnd, ID: j.id, Status: status, Error: errMsg, Time: finished,
	}); jerr != nil {
		s.logf("journal: %v", jerr)
	}
}

func (j *job) finish(report string, err error, stats simcache.Stats) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	j.stats = stats
	switch {
	case err == nil:
		j.status = StatusDone
		j.report = report
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		j.status = StatusCanceled
		j.errMsg = err.Error()
	default:
		j.status = StatusFailed
		j.errMsg = err.Error()
	}
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
	}
	return j
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ordered := make([]*job, 0, len(s.jobs))
	for i := 1; i <= s.seq; i++ {
		if j, ok := s.jobs[fmt.Sprintf("job-%d", i)]; ok {
			ordered = append(ordered, j)
		}
	}
	s.mu.Unlock()
	jobs := make([]JobStatus, len(ordered))
	for i, j := range ordered {
		jobs[i] = j.snapshot(false)
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"jobs":  jobs,
		"stats": s.store.Stats(),
	})
}

// Health is the GET /v1/healthz payload.
type Health struct {
	Status    string         `json:"status"` // "ok" | "degraded" | "draining"
	UptimeSec int64          `json:"uptime_sec"`
	Jobs      map[Status]int `json:"jobs"`
	Queue     QueueHealth    `json:"queue"`
	Journal   *JournalHealth `json:"journal,omitempty"`
	Cache     simcache.Stats `json:"cache"`
	// Cluster reports the campaign fabric: connected runners, leased
	// and stolen job counts, remote cache traffic. Cluster events never
	// degrade Status — a lost runner is re-arbitrated, not a fault.
	Cluster *ClusterHealth `json:"cluster,omitempty"`
}

// QueueHealth reports admission-bound occupancy.
type QueueHealth struct {
	Pending  int `json:"pending"` // admitted, unfinished jobs
	Capacity int `json:"capacity"`
}

// JournalHealth reports the durable journal's counters. AppendErrors
// or CorruptLines above zero mean the daemon is serving with reduced
// durability ("degraded").
type JournalHealth struct {
	Path         string `json:"path"`
	Records      int64  `json:"records"`
	CorruptLines int64  `json:"corrupt_lines"`
	AppendErrors int64  `json:"append_errors"`
	Recovered    int    `json:"recovered_jobs"`
}

// handleHealthz reports liveness plus journal/queue/cache health. It
// answers 200 whenever the daemon can serve — job failures (panics
// included) never poison it; degraded durability shows in the body.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	h := Health{
		Status:    "ok",
		UptimeSec: int64(time.Since(s.started).Seconds()),
		Jobs:      map[Status]int{},
		Queue:     QueueHealth{Pending: s.pendingLocked(), Capacity: s.opts.MaxQueue},
	}
	for _, j := range s.jobs {
		j.mu.Lock()
		h.Jobs[j.status]++
		j.mu.Unlock()
	}
	if s.draining {
		h.Status = "draining"
	}
	recoveredJobs := s.recovered
	s.mu.Unlock()
	if s.journal != nil {
		records, corrupt, appendErrs := s.journal.health()
		h.Journal = &JournalHealth{
			Path: s.opts.JournalPath, Records: records,
			CorruptLines: corrupt, AppendErrors: appendErrs,
			Recovered: recoveredJobs,
		}
		if h.Status == "ok" && (corrupt > 0 || appendErrs > 0) {
			h.Status = "degraded"
		}
	}
	h.Cache = s.store.Stats()
	h.Cluster = s.fabric.clusterHealth()
	writeJSON(w, http.StatusOK, h)
}

// handleStatus reports a job; with ?stream=1 it streams progress lines
// as plain text until the job reaches a terminal state.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	if r.URL.Query().Get("stream") == "" {
		writeJSON(w, http.StatusOK, j.snapshot(true))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	sent := 0
	for {
		j.mu.Lock()
		lines := j.lines[sent:]
		sent = len(j.lines)
		status := j.status
		errMsg := j.errMsg
		j.mu.Unlock()
		for _, l := range lines {
			fmt.Fprintln(w, l)
		}
		if len(lines) > 0 && flusher != nil {
			flusher.Flush()
		}
		if status.Terminal() {
			fmt.Fprintf(w, "status: %s", status)
			if errMsg != "" {
				fmt.Fprintf(w, " (%s)", errMsg)
			}
			fmt.Fprintln(w)
			return
		}
		select {
		case <-j.done:
			// Loop once more to drain the final lines.
		case <-r.Context().Done():
			return
		case <-time.After(150 * time.Millisecond):
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.cancel()
	writeJSON(w, http.StatusAccepted, j.snapshot(false))
}

// handleResults returns the rendered report and result stats of a
// finished job: JSON by default, the raw report text with ?format=text.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	status, report, reportLost := j.status, j.report, j.reportLost
	j.mu.Unlock()
	if !status.Terminal() {
		httpError(w, http.StatusConflict, "job %s is %s; results are available once it finishes", j.id, status)
		return
	}
	if status == StatusDone && reportLost {
		httpError(w, http.StatusGone,
			"job %s finished before a daemon restart and its report was not retained; resubmit the spec — results are memoised, so the re-run is warm", j.id)
		return
	}
	if status != StatusDone {
		st := j.snapshot(false)
		httpError(w, http.StatusGone, "job %s %s: %s", j.id, st.Status, st.Error)
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, report)
		return
	}
	st := j.snapshot(false)
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"id":       j.id,
		"status":   st.Status,
		"stats":    st.Stats,
		"report":   report,
		"ended_at": st.EndedAt,
	})
}
