package workloads

import (
	"math"
	"testing"

	"avfstress/internal/isa"
	"avfstress/internal/uarch"
)

func TestSuiteCountsMatchPaper(t *testing.T) {
	// The paper evaluates 11 SPECint, 10 SPECfp and 12 MiBench programs.
	if n := len(BySuite(SPECInt)); n != 11 {
		t.Errorf("SPECint proxies = %d, want 11", n)
	}
	if n := len(BySuite(SPECFP)); n != 10 {
		t.Errorf("SPECfp proxies = %d, want 10", n)
	}
	if n := len(BySuite(MiBench)); n != 12 {
		t.Errorf("MiBench proxies = %d, want 12", n)
	}
	if n := len(Profiles()); n != 33 {
		t.Errorf("total proxies = %d, want 33", n)
	}
}

func TestAllProfilesValidateAndBuild(t *testing.T) {
	cfg := uarch.Scaled(uarch.Baseline(), 32)
	for _, pf := range Profiles() {
		if err := pf.Validate(); err != nil {
			t.Errorf("%s: %v", pf.Name, err)
			continue
		}
		p, err := pf.Build(cfg, 1)
		if err != nil {
			t.Errorf("%s: %v", pf.Name, err)
			continue
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: generated program invalid: %v", pf.Name, err)
		}
		if p.Name != pf.Name {
			t.Errorf("program named %q, want %q", p.Name, pf.Name)
		}
	}
}

func TestByName(t *testing.T) {
	pf, err := ByName("429.mcf")
	if err != nil {
		t.Fatal(err)
	}
	if pf.Suite != SPECInt || pf.ChaseFrac < 0.5 {
		t.Errorf("mcf profile unexpected: %+v", pf)
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestBuildDeterministic(t *testing.T) {
	cfg := uarch.Scaled(uarch.Baseline(), 32)
	pf, _ := ByName("403.gcc")
	a, err := pf.Build(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pf.Build(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Listing() != b.Listing() {
		t.Error("same seed produced different programs")
	}
	c, err := pf.Build(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	if a.Listing() == c.Listing() {
		t.Error("different seeds produced identical programs")
	}
}

func TestMixApproximatesProfile(t *testing.T) {
	cfg := uarch.Scaled(uarch.Baseline(), 32)
	for _, name := range []string{"403.gcc", "459.GemsFDTD", "susan"} {
		pf, _ := ByName(name)
		p, err := pf.Build(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		var loads, stores, branches, nops int
		for _, in := range p.Body {
			switch in.Op {
			case isa.OpLoad:
				loads++
			case isa.OpStore:
				stores++
			case isa.OpBranch:
				branches++
			case isa.OpNop:
				nops++
			}
		}
		n := float64(len(p.Body))
		if got := float64(loads) / n; math.Abs(got-pf.LoadFrac) > 0.05 {
			t.Errorf("%s: load fraction %.3f, profile %.3f", name, got, pf.LoadFrac)
		}
		if got := float64(stores) / n; math.Abs(got-pf.StoreFrac) > 0.05 {
			t.Errorf("%s: store fraction %.3f, profile %.3f", name, got, pf.StoreFrac)
		}
		// +1 for the backedge.
		if got := float64(branches) / n; math.Abs(got-pf.BranchFrac) > 0.06 {
			t.Errorf("%s: branch fraction %.3f, profile %.3f", name, got, pf.BranchFrac)
		}
		if pf.UnACEFrac > 0.05 && nops == 0 {
			t.Errorf("%s: no NOPs despite un-ACE fraction %.2f", name, pf.UnACEFrac)
		}
	}
}

func TestWorkingSetScalesWithL2(t *testing.T) {
	small := uarch.Scaled(uarch.Baseline(), 32)
	big := uarch.Scaled(uarch.Baseline(), 8)
	pf, _ := ByName("429.mcf")
	ps, err := pf.Build(small, 1)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := pf.Build(big, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ps.FootprintBytes*4 != pb.FootprintBytes {
		t.Errorf("footprints %d and %d do not scale with L2 (4x)", ps.FootprintBytes, pb.FootprintBytes)
	}
}

func TestInvalidProfilesRejected(t *testing.T) {
	bad := []Profile{
		{Name: "sum>1", LoadFrac: 0.5, StoreFrac: 0.4, BranchFrac: 0.2,
			Lanes: 2, ChainLen: 1, WorkingSetL2x: 1, BodySize: 50},
		{Name: "neg", LoadFrac: -0.1, Lanes: 2, ChainLen: 1, WorkingSetL2x: 1, BodySize: 50},
		{Name: "tiny-body", LoadFrac: 0.1, Lanes: 2, ChainLen: 1, WorkingSetL2x: 1, BodySize: 2},
		{Name: "no-ws", LoadFrac: 0.1, Lanes: 2, ChainLen: 1, BodySize: 50},
		{Name: "no-lanes", LoadFrac: 0.1, Lanes: 0, ChainLen: 1, WorkingSetL2x: 1, BodySize: 50},
	}
	for _, pf := range bad {
		if err := pf.Validate(); err == nil {
			t.Errorf("profile %s accepted", pf.Name)
		}
	}
}

func TestMemoryBoundProfilesChaseAcrossL2(t *testing.T) {
	// mcf/omnetpp/astar must have super-L2 working sets and chase loads,
	// the paper's canonical memory-bound behaviours.
	for _, name := range []string{"429.mcf", "471.omnetpp", "473.astar"} {
		pf, _ := ByName(name)
		if pf.WorkingSetL2x <= 1.5 {
			t.Errorf("%s working set %.1f×L2, want > 1.5", name, pf.WorkingSetL2x)
		}
		if pf.ChaseFrac < 0.3 {
			t.Errorf("%s chase fraction %.2f, want ≥ 0.3", name, pf.ChaseFrac)
		}
	}
	// MiBench kernels stay small.
	for _, name := range []string{"crc32", "bitcount", "sha"} {
		pf, _ := ByName(name)
		if pf.WorkingSetL2x > 0.5 {
			t.Errorf("%s working set %.2f×L2, want small", name, pf.WorkingSetL2x)
		}
	}
}
