package pipe

// Checkpointed fork-replay (DESIGN.md §10). A Checkpoint is a deep copy
// of the complete simulator state at the top of one cycle — everything
// Reset would otherwise rebuild: the ROB ring with its per-slot
// generation counters, the rename-map checkpoint matrix, the register
// file and free list, the completion wheel (buckets, due buffer and push
// floor), the ready bitmap, the waiter/parked lists, the doubleword
// store index, the program-stream cursor, the branch-predictor tables,
// the ACE accounting accumulators, the commit digest and a full
// cache.HierarchyState. Restore overwrites a pipeline with that state,
// after which runCycles continues bit-identically to the run the
// snapshot was taken from — the differential tests in snapshot_test.go
// lock that in.
//
// The point is fault injection: a campaign of N trials replays the
// program N times, and almost all of that work re-simulates the prefix
// before each injection cycle. SimulateGoldenCheckpointed captures
// checkpoints during the (already mandatory) golden run, and
// SimulateFaultsFrom forks a replay from the nearest checkpoint that is
// safely before the fault instead of from cycle zero.
//
// Safety margin: hierarchy accesses carry timestamps that run ahead of
// the pipeline wall clock (a load issued at wall cycle W stamps its L2
// fill at W+latencies), so a lifetime interval containing fault cycle F
// can be closed by an access executed wall-earlier than F. A checkpoint
// at cycle C is therefore valid for F only when C + lead ≤ F, with lead
// = cache.Hierarchy.TimestampLead(): every transition that could
// resolve a fate watch for F then executes wall-after C and is observed
// by watches armed at restore time. CheckpointSet.Nearest enforces the
// margin.

import (
	"errors"
	"fmt"

	"avfstress/internal/avf"
	"avfstress/internal/bpred"
	"avfstress/internal/cache"
	"avfstress/internal/isa"
	"avfstress/internal/prog"
)

// ckptRef is a serialisable (seq, generation) reference; waiterRef and
// readyRef both convert to and from it.
type ckptRef struct {
	seq int64
	gen uint32
}

// ckptRefList is one non-empty waiter or parked list, keyed by the
// physical register (waiters) or ROB slot (blockedOn) it hangs off.
type ckptRefList struct {
	idx  int32
	refs []ckptRef
}

// Checkpoint is a deep, self-contained snapshot of a Pipeline mid-run.
// It is immutable once taken, so any number of replays (on any pipelines
// of the same configuration) can fork from it concurrently.
type Checkpoint struct {
	cfgFP  string
	progFP string
	prog   *prog.Program // not serialised; rebound by UnmarshalCheckpoint

	cycle int64

	head, tail             int64
	iqUsed, lqUsed, sqUsed int
	fetchStallUntil        int64
	wrongPathMode          bool
	wpIdx                  int
	pending                fetchItem
	havePending            bool
	streamDone             bool
	lastCommit             int64
	digest                 uint64

	acct accounting

	rob  []uop   // full ring copy (dead slots keep their generation counters)
	ckpt []int16 // rename-map checkpoints, flattened ring-major

	archMap  []int16
	freeList []int16
	regs     []physReg

	wheelHead   int64
	wheelEvents []event // bucketed events in slot order (per-bucket order preserved)
	wheelDue    []event // unconsumed tail of the due buffer

	readyWords []uint64
	readyCount int

	waiters []ckptRefList
	blocked []ckptRefList

	dwKeys         []uint64
	dwVals         [][]int64
	dwLive, dwUsed int

	stream prog.StreamState
	bp     bpred.State
	mem    cache.HierarchyState
}

// Cycle returns the wall-clock cycle the checkpoint was captured at.
func (ck *Checkpoint) Cycle() int64 { return ck.cycle }

// Snapshot captures the pipeline's complete state. The copy is deep:
// the pipeline and the checkpoint share no mutable memory (static
// instruction pointers alias the immutable program, which is by
// design — Restore rebinds the target pipeline to the same program).
func (pl *Pipeline) Snapshot() *Checkpoint {
	ck := &Checkpoint{
		cfgFP:           pl.cfg.Fingerprint(),
		progFP:          pl.p.Fingerprint(),
		prog:            pl.p,
		cycle:           pl.now,
		head:            pl.head,
		tail:            pl.tail,
		iqUsed:          pl.iqUsed,
		lqUsed:          pl.lqUsed,
		sqUsed:          pl.sqUsed,
		fetchStallUntil: pl.fetchStallUntil,
		wrongPathMode:   pl.wrongPathMode,
		wpIdx:           pl.wpIdx,
		pending:         pl.pending,
		havePending:     pl.havePending,
		streamDone:      pl.streamDone,
		lastCommit:      pl.lastCommit,
		digest:          pl.digest,
		acct:            pl.acct,
		stream:          pl.stream.State(),
	}
	ck.rob = append([]uop(nil), pl.rob...)
	ck.ckpt = make([]int16, len(pl.ckpt)*isa.NumArchRegs)
	for i, row := range pl.ckpt {
		copy(ck.ckpt[i*isa.NumArchRegs:(i+1)*isa.NumArchRegs], row)
	}
	ck.archMap = append([]int16(nil), pl.archMap...)
	ck.freeList = append([]int16(nil), pl.freeList...)
	ck.regs = append([]physReg(nil), pl.regs...)

	w := &pl.compW
	ck.wheelHead = w.head
	if w.pending > 0 {
		ck.wheelEvents = make([]event, 0, w.pending)
		for i := range w.slots {
			ck.wheelEvents = append(ck.wheelEvents, w.slots[i]...)
		}
	}
	ck.wheelDue = append([]event(nil), w.due[w.dueIdx:]...)

	ck.readyWords = append([]uint64(nil), pl.readyB.words...)
	ck.readyCount = pl.readyB.count
	for i, refs := range pl.waiters {
		if len(refs) > 0 {
			l := ckptRefList{idx: int32(i), refs: make([]ckptRef, len(refs))}
			for j, r := range refs {
				l.refs[j] = ckptRef{seq: r.seq, gen: r.gen}
			}
			ck.waiters = append(ck.waiters, l)
		}
	}
	for i, refs := range pl.blockedOn {
		if len(refs) > 0 {
			l := ckptRefList{idx: int32(i), refs: make([]ckptRef, len(refs))}
			for j, r := range refs {
				l.refs[j] = ckptRef{seq: r.seq, gen: r.gen}
			}
			ck.blocked = append(ck.blocked, l)
		}
	}

	dw := &pl.dwStores
	ck.dwKeys = append([]uint64(nil), dw.keys...)
	ck.dwVals = make([][]int64, len(dw.vals))
	for i, v := range dw.vals {
		if len(v) > 0 {
			ck.dwVals[i] = append([]int64(nil), v...)
		}
	}
	ck.dwLive, ck.dwUsed = dw.live, dw.used

	pl.bp.Snapshot(&ck.bp)
	pl.mem.Snapshot(&ck.mem)
	return ck
}

// Restore overwrites the pipeline's state with the checkpoint's. The
// pipeline must have the same configuration the checkpoint was captured
// on (enforced by fingerprint); it need not be Reset first — every live
// field is overwritten, which is why Pool.raw skips the reset pass.
// Injection state and the checkpoint recorder are cleared; the caller
// arms them after restoring. A failed Restore leaves the pipeline in an
// undefined state: Reset it before reuse.
func (pl *Pipeline) Restore(ck *Checkpoint) error {
	if ck.prog == nil {
		return errors.New("pipe: checkpoint has no program bound")
	}
	if fp := pl.cfg.Fingerprint(); fp != ck.cfgFP {
		return fmt.Errorf("pipe: checkpoint configuration mismatch (%s vs %s)", ck.cfgFP, fp)
	}
	if len(ck.rob) != len(pl.rob) || len(ck.ckpt) != len(pl.ckpt)*isa.NumArchRegs ||
		len(ck.archMap) != len(pl.archMap) || len(ck.regs) != len(pl.regs) ||
		len(ck.readyWords) != len(pl.readyB.words) {
		return errors.New("pipe: checkpoint geometry mismatch")
	}

	pl.p = ck.prog
	pl.stream.ResetTo(ck.prog)
	pl.stream.SetState(ck.stream)

	pl.now = ck.cycle
	pl.head, pl.tail = ck.head, ck.tail
	pl.iqUsed, pl.lqUsed, pl.sqUsed = ck.iqUsed, ck.lqUsed, ck.sqUsed
	pl.fetchStallUntil = ck.fetchStallUntil
	pl.wrongPathMode = ck.wrongPathMode
	pl.wpIdx = ck.wpIdx
	pl.pending = ck.pending
	pl.havePending = ck.havePending
	pl.streamDone = ck.streamDone
	pl.lastCommit = ck.lastCommit
	pl.acct = ck.acct

	copy(pl.rob, ck.rob)
	for i := range pl.ckpt {
		copy(pl.ckpt[i], ck.ckpt[i*isa.NumArchRegs:(i+1)*isa.NumArchRegs])
	}
	copy(pl.archMap, ck.archMap)
	pl.freeList = append(pl.freeList[:0], ck.freeList...)
	copy(pl.regs, ck.regs)

	// Rebuild the wheel: pushing the saved bucket events re-derives the
	// occupancy bitmap, pending count and nextDue; bucket membership is a
	// pure function of the cycle, and per-bucket insertion order is
	// preserved by the slot-order capture (drain order is additionally
	// seq-sorted, so it is reproduced exactly). Every bucketed event has
	// cycle ≥ head — the wheel's push-floor invariant — so push never
	// panics here. The partially consumed due buffer bypasses push: its
	// bucket was already drained, so its events may lie below head.
	w := &pl.compW
	w.reset()
	w.head = ck.wheelHead
	for _, e := range ck.wheelEvents {
		w.push(e)
	}
	w.due = append(w.due[:0], ck.wheelDue...)
	w.dueIdx = 0

	copy(pl.readyB.words, ck.readyWords)
	pl.readyB.count = ck.readyCount

	for i := range pl.waiters {
		pl.waiters[i] = pl.waiters[i][:0]
	}
	for _, l := range ck.waiters {
		if int(l.idx) >= len(pl.waiters) {
			return fmt.Errorf("pipe: checkpoint waiter register %d out of range", l.idx)
		}
		refs := pl.waiters[l.idx][:0]
		for _, r := range l.refs {
			refs = append(refs, waiterRef{seq: r.seq, gen: r.gen})
		}
		pl.waiters[l.idx] = refs
	}
	for i := range pl.blockedOn {
		pl.blockedOn[i] = pl.blockedOn[i][:0]
	}
	for _, l := range ck.blocked {
		if int(l.idx) >= len(pl.blockedOn) {
			return fmt.Errorf("pipe: checkpoint parked slot %d out of range", l.idx)
		}
		refs := pl.blockedOn[l.idx][:0]
		for _, r := range l.refs {
			refs = append(refs, readyRef{seq: r.seq, gen: r.gen})
		}
		pl.blockedOn[l.idx] = refs
	}

	if err := pl.dwStores.restore(ck.dwKeys, ck.dwVals, ck.dwLive, ck.dwUsed); err != nil {
		return err
	}
	if err := pl.bp.Restore(&ck.bp); err != nil {
		return err
	}
	if err := pl.mem.Restore(&ck.mem); err != nil {
		return err
	}

	pl.inj = nil
	pl.digestOn = false
	pl.digest = ck.digest
	pl.ckptRec = nil
	pl.liveRec = nil
	return nil
}

// restore overwrites the index from a snapshot of identical table size,
// recycling value slices through the free list.
func (d *dwIndex) restore(keys []uint64, vals [][]int64, live, used int) error {
	if len(keys) != len(d.keys) || len(vals) != len(d.vals) {
		return fmt.Errorf("pipe: store-index snapshot size %d vs %d", len(keys), len(d.keys))
	}
	for i := range d.keys {
		d.keys[i] = keys[i]
		sv := vals[i]
		cur := d.vals[i]
		if len(sv) == 0 {
			if cur != nil {
				d.free = append(d.free, cur[:0])
				d.vals[i] = nil
			}
			continue
		}
		if cur == nil {
			if n := len(d.free); n > 0 {
				cur = d.free[n-1][:0]
				d.free = d.free[:n-1]
			}
		} else {
			cur = cur[:0]
		}
		d.vals[i] = append(cur, sv...)
	}
	d.live, d.used = live, used
	return nil
}

const (
	// autoCheckpointInterval is the initial capture spacing when the
	// caller requests automatic interval selection (interval 0).
	autoCheckpointInterval = 1024
	// maxCheckpoints bounds a recorder's retained set: past it, every
	// other checkpoint is dropped and the interval doubles, so memory is
	// O(maxCheckpoints) regardless of run length while spacing degrades
	// gracefully (geometric thinning, like reservoir halving).
	maxCheckpoints = 64
)

// ckptRecorder captures checkpoints during a golden run at the top of
// the cycle loop (runCycles), starting at the measurement-window start.
type ckptRecorder struct {
	interval int64
	nextAt   int64 // zero-valued recorder fires at the first measured cycle
	cks      []*Checkpoint
}

func (rec *ckptRecorder) take(pl *Pipeline) {
	rec.cks = append(rec.cks, pl.Snapshot())
	if len(rec.cks) > maxCheckpoints {
		kept := 0
		for i := 0; i < len(rec.cks); i += 2 {
			rec.cks[kept] = rec.cks[i]
			kept++
		}
		for i := kept; i < len(rec.cks); i++ {
			rec.cks[i] = nil
		}
		rec.cks = rec.cks[:kept]
		rec.interval *= 2
	}
	rec.nextAt = pl.now + rec.interval
}

// CheckpointSet is the ordered (by cycle) checkpoint collection of one
// checkpointed golden run, plus the validity margin replays must respect.
type CheckpointSet struct {
	// Interval is the effective capture spacing after thinning.
	Interval int64
	// Lead is the hierarchy timestamp lead (cache.Hierarchy.TimestampLead)
	// of the configuration: checkpoint i may serve fault cycle F only
	// when Checkpoints[i].Cycle()+Lead ≤ F.
	Lead int64
	// Checkpoints in strictly increasing capture-cycle order.
	Checkpoints []*Checkpoint
}

// Cycles returns the capture cycles of the set's checkpoints — the
// manifest a cache layer persists so warm campaigns can bucket faults
// without loading any checkpoint blob.
func (cs *CheckpointSet) Cycles() []int64 {
	out := make([]int64, len(cs.Checkpoints))
	for i, ck := range cs.Checkpoints {
		out[i] = ck.cycle
	}
	return out
}

// Nearest returns the index of the latest checkpoint valid for a fault
// at the given cycle (-1 when none is: the replay must start from cycle
// zero).
func (cs *CheckpointSet) Nearest(cycle int64) int {
	if cs == nil {
		return -1
	}
	return NearestCheckpoint(cs.Cycles(), cs.Lead, cycle)
}

// NearestCheckpoint is Nearest over a bare capture-cycle manifest:
// the largest i with cycles[i]+lead ≤ cycle, or -1. cycles must be
// sorted ascending.
func NearestCheckpoint(cycles []int64, lead, cycle int64) int {
	lo, hi := 0, len(cycles)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cycles[mid]+lead <= cycle {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// raw returns a pooled pipeline without resetting it, for callers that
// immediately Restore a checkpoint (which overwrites every live field,
// making the reset pass pure waste).
func (pp *Pool) raw(p *prog.Program) (*Pipeline, error) {
	if v := pp.pool.Get(); v != nil {
		return v.(*Pipeline), nil
	}
	return New(pp.cfg, p)
}

// SimulateGoldenCheckpointed is SimulateGolden plus checkpoint capture:
// the golden run snapshots its full state every `interval` cycles of the
// measured window (0 selects the automatic interval; negative disables
// capture and returns a nil set). The result, info and digest are
// bit-identical to SimulateGolden — capture is a pure observer.
func (pp *Pool) SimulateGoldenCheckpointed(p *prog.Program, rc RunConfig, interval int64) (*avf.Result, GoldenInfo, *CheckpointSet, error) {
	if interval < 0 {
		res, info, err := pp.SimulateGolden(p, rc)
		return res, info, nil, err
	}
	if interval == 0 {
		interval = autoCheckpointInterval
	}
	pl, err := pp.get(p)
	if err != nil {
		return nil, GoldenInfo{}, nil, err
	}
	rec := &ckptRecorder{interval: interval}
	pl.ckptRec = rec
	pl.digestOn = true
	pl.digest = fnvOffset64
	res, runErr := pl.Run(rc)
	info := GoldenInfo{Digest: pl.digest}
	lead := pl.mem.TimestampLead()
	pl.digestOn = false
	pl.ckptRec = nil
	if runErr == nil {
		info.WindowStart = pl.acct.windowStart
		info.Cycles = res.Cycles
	}
	pp.pool.Put(pl)
	if runErr != nil {
		return nil, GoldenInfo{}, nil, runErr
	}
	return res, info, &CheckpointSet{Interval: rec.interval, Lead: lead, Checkpoints: rec.cks}, nil
}

// SimulateFaultsFrom replays program p under rc once on a pooled
// pipeline with every fault armed as an independent observer, forking
// from checkpoint ck (nil: from cycle zero), and returns per-fault
// corruption outcomes in caller order. Outcomes are bit-identical to
// per-fault SimulateFault replays from cycle zero provided every fault
// cycle respects ck's validity margin (CheckpointSet.Nearest).
func (pp *Pool) SimulateFaultsFrom(p *prog.Program, rc RunConfig, ck *Checkpoint, faults []Fault) ([]bool, error) {
	trials, err := pp.SimulateFaultsDetailFrom(p, rc, ck, faults)
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(trials))
	for i := range trials {
		out[i] = trials[i].Corrupted
	}
	return out, nil
}

// SimulateFaultsDetailFrom is SimulateFaultsFrom returning the full
// per-fault trial records, including each corrupting fault's
// first-divergent-commit identity. Consumer capture is resolved from
// pipeline state alone, so records are bit-identical across fork points
// exactly like the corruption outcomes.
func (pp *Pool) SimulateFaultsDetailFrom(p *prog.Program, rc RunConfig, ck *Checkpoint, faults []Fault) ([]FaultTrial, error) {
	if ck == nil {
		pl, err := pp.get(p)
		if err != nil {
			return nil, err
		}
		out, err := pl.runFaults(rc, faults, false)
		pp.pool.Put(pl)
		return out, err
	}
	if ck.prog != p && ck.progFP != p.Fingerprint() {
		return nil, errors.New("pipe: checkpoint program mismatch")
	}
	pl, err := pp.raw(p)
	if err != nil {
		return nil, err
	}
	if err := pl.Restore(ck); err != nil {
		pp.pool.Put(pl) // Pool.get Resets before reuse, recovering the pipeline
		return nil, err
	}
	out, err := pl.runFaults(rc, faults, true)
	pp.pool.Put(pl)
	return out, err
}

// ResumeGolden continues a checkpointed golden run from ck to completion
// under the same RunConfig, recomputing the result, info and digest from
// the fork point. A correct restore makes these bit-identical to the
// uninterrupted golden run's — the restore-equivalence differential
// tests are built on this.
func (pp *Pool) ResumeGolden(ck *Checkpoint, rc RunConfig) (*avf.Result, GoldenInfo, error) {
	pl, err := pp.raw(ck.prog)
	if err != nil {
		return nil, GoldenInfo{}, err
	}
	if err := pl.Restore(ck); err != nil {
		pp.pool.Put(pl)
		return nil, GoldenInfo{}, err
	}
	pl.digestOn = true
	runErr := pl.resumeLoop(rc)
	var res *avf.Result
	var info GoldenInfo
	if runErr == nil && !pl.acct.measuring {
		runErr = errors.New("pipe: program ended inside warmup window")
	}
	if runErr == nil {
		res = pl.finalize()
		info = GoldenInfo{WindowStart: pl.acct.windowStart, Cycles: res.Cycles, Digest: pl.digest}
	}
	pl.digestOn = false
	pp.pool.Put(pl)
	if runErr != nil {
		return nil, GoldenInfo{}, runErr
	}
	return res, info, nil
}
