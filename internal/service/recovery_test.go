package service

// Service-level robustness tests (DESIGN.md §11): crash recovery with
// byte-identical warm reports, restored history, idempotent
// submission, queue backpressure, graceful drain and panic isolation.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"avfstress/internal/scenario"
	"avfstress/internal/sched"
)

// durableServer builds a journalled server over the given state dir.
func durableServer(t *testing.T, dir string, mutate func(*Options)) (*Server, *httptest.Server) {
	t.Helper()
	opts := Options{
		MaxJobs:     1,
		Parallelism: 1,
		CacheDir:    filepath.Join(dir, "cache"),
		JournalPath: filepath.Join(dir, "jobs.journal"),
	}
	if mutate != nil {
		mutate(&opts)
	}
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return srv, hs
}

func fetchReport(t *testing.T, hs *httptest.Server, id string) string {
	t.Helper()
	resp, err := http.Get(hs.URL + "/v1/results/" + id + "?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results %s: %s: %s", id, resp.Status, body)
	}
	return string(body)
}

// TestCrashRecoveryByteIdenticalReport is the tentpole invariant in
// miniature: kill a daemon mid-campaign (no terminal journal record,
// like SIGKILL), restart it on the same journal and cache, and the
// resubmitted job's report is byte-identical to an uninterrupted run —
// warm, because completed simulations were already memoised on disk.
func TestCrashRecoveryByteIdenticalReport(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite in -short mode")
	}
	spec := `{"scenarios":["fig3"],` + fastSpecTail + `}`

	// Baseline: an uninterrupted run on pristine state.
	_, baseHS := durableServer(t, t.TempDir(), nil)
	baseJob := waitTerminal(t, baseHS, submit(t, baseHS, spec).ID)
	if baseJob.Status != StatusDone {
		t.Fatalf("baseline ended %s: %s", baseJob.Status, baseJob.Error)
	}
	want := fetchReport(t, baseHS, baseJob.ID)

	// Chaos: same spec on fresh state, interrupted mid-run.
	dir := t.TempDir()
	srv, hs := durableServer(t, dir, nil)
	st := submit(t, hs, spec)
	// Wait until at least one simulation result is durably cached, so
	// the post-crash run is provably warm.
	cacheDir := filepath.Join(dir, "cache")
	deadline := time.Now().Add(60 * time.Second)
	for {
		if cur := getStatus(t, hs, st.ID); cur.Status.Terminal() {
			t.Fatalf("job finished before it could be interrupted: %s", cur.Status)
		}
		if hasDiskEntry(cacheDir) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no simulation result reached the disk cache")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Shutdown abandons the job without a terminal journal record —
	// from the journal's point of view, indistinguishable from SIGKILL.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	hs.Close()

	// Restart on the same journal + cache: the job comes back under its
	// original id, runs to completion, and the report matches
	// byte-for-byte.
	srv2, hs2 := durableServer(t, dir, nil)
	if srv2.Recovered() != 1 {
		t.Fatalf("recovered %d jobs, want 1", srv2.Recovered())
	}
	got := waitTerminal(t, hs2, st.ID)
	if got.Status != StatusDone {
		t.Fatalf("recovered job ended %s: %s", got.Status, got.Error)
	}
	if !got.Recovered {
		t.Error("recovered job not flagged recovered")
	}
	if report := fetchReport(t, hs2, st.ID); report != want {
		t.Errorf("recovered report differs from uninterrupted run:\n--- want ---\n%s\n--- got ---\n%s", want, report)
	}
	if got.Stats.Hits() == 0 {
		t.Errorf("recovery was cold: %+v", got.Stats)
	}
}

func hasDiskEntry(dir string) bool {
	found := false
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".json") {
			found = true
		}
		return nil
	})
	return found
}

// TestRestartRestoresHistory: terminal jobs survive a restart as
// history — status, error and idempotency mapping intact — but their
// reports are not retained: /v1/results answers 410 Gone, and fresh
// submissions continue the id sequence.
func TestRestartRestoresHistory(t *testing.T) {
	dir := t.TempDir()
	srv, hs := durableServer(t, dir, nil)
	req, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/jobs",
		strings.NewReader(`{"scenarios":["table1"]}`))
	req.Header.Set("Idempotency-Key", "alpha")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	done := waitTerminal(t, hs, st.ID)
	if done.Status != StatusDone {
		t.Fatalf("job ended %s: %s", done.Status, done.Error)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	hs.Close()

	srv2, hs2 := durableServer(t, dir, nil)
	if srv2.Recovered() != 0 {
		t.Fatalf("terminal job resubmitted: recovered=%d", srv2.Recovered())
	}
	got := getStatus(t, hs2, st.ID)
	if got.Status != StatusDone || !got.Recovered {
		t.Fatalf("restored history: %+v", got)
	}
	// The report itself was not retained: 410 with a resubmission hint.
	rresp, err := http.Get(hs2.URL + "/v1/results/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(rresp.Body)
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusGone || !bytes.Contains(body, []byte("memoised")) {
		t.Errorf("results of a restored job: %s %s, want 410 + resubmission hint", rresp.Status, body)
	}
	// The idempotency mapping survived: the same key replays, not reruns.
	req2, _ := http.NewRequest(http.MethodPost, hs2.URL+"/v1/jobs",
		strings.NewReader(`{"scenarios":["table1"]}`))
	req2.Header.Set("Idempotency-Key", "alpha")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	var replay JobStatus
	json.NewDecoder(resp2.Body).Decode(&replay)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || replay.ID != st.ID {
		t.Errorf("idempotent replay after restart: %s id=%s, want 200 id=%s", resp2.Status, replay.ID, st.ID)
	}
	// Fresh submissions continue the sequence instead of colliding.
	st2 := submit(t, hs2, `{"scenarios":["table2"]}`)
	if st2.ID == st.ID {
		t.Errorf("restarted daemon reissued id %s", st2.ID)
	}
	waitTerminal(t, hs2, st2.ID)
}

// TestIdempotencyKeyDedups: submitting the same Idempotency-Key twice
// returns the original job with a replay marker instead of a new job.
func TestIdempotencyKeyDedups(t *testing.T) {
	_, hs := testServer(t)
	send := func() (*http.Response, JobStatus) {
		req, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/jobs",
			strings.NewReader(`{"scenarios":["table1"]}`))
		req.Header.Set("Idempotency-Key", "retry-42")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st JobStatus
		json.NewDecoder(resp.Body).Decode(&st)
		return resp, st
	}
	r1, st1 := send()
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %s", r1.Status)
	}
	r2, st2 := send()
	if r2.StatusCode != http.StatusOK || st2.ID != st1.ID {
		t.Fatalf("duplicate submit: %s id=%s, want 200 id=%s", r2.Status, st2.ID, st1.ID)
	}
	if r2.Header.Get("Idempotency-Replayed") != "true" {
		t.Error("replay marker header missing")
	}
	// A different key is a different job.
	req, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/jobs",
		strings.NewReader(`{"scenarios":["table1"]}`))
	req.Header.Set("Idempotency-Key", "other")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st3 JobStatus
	json.NewDecoder(resp.Body).Decode(&st3)
	resp.Body.Close()
	if st3.ID == st1.ID {
		t.Error("distinct keys collapsed to one job")
	}
	waitTerminal(t, hs, st1.ID)
	waitTerminal(t, hs, st3.ID)
}

// TestQueueBackpressure: MaxQueue bounds admitted unfinished jobs with
// 429 + Retry-After; capacity frees as work drains.
func TestQueueBackpressure(t *testing.T) {
	block := make(chan struct{})
	testRunJob = func(ctx context.Context, j *job) (string, error) {
		select {
		case <-block:
			return "held report", nil
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
	defer func() { testRunJob = nil }()

	srv, err := New(Options{MaxJobs: 1, MaxQueue: 2})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	a := submit(t, hs, `{"scenarios":["table1"]}`)
	b := submit(t, hs, `{"scenarios":["table1"]}`)
	resp, err := http.Post(hs.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"scenarios":["table1"]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: %s %s, want 429", resp.Status, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	close(block)
	waitTerminal(t, hs, a.ID)
	waitTerminal(t, hs, b.ID)
	// Capacity freed: the next submission is admitted again.
	c := submit(t, hs, `{"scenarios":["table1"]}`)
	waitTerminal(t, hs, c.ID)
}

// TestPanicFailsOnlyThatJob: a panic inside a job's scheduled work is
// contained by the scheduler — the job fails with the stack in its
// status, the daemon keeps serving (healthz 200/ok) and later jobs
// succeed.
func TestPanicFailsOnlyThatJob(t *testing.T) {
	calls := 0
	testRunJob = func(ctx context.Context, j *job) (string, error) {
		calls++
		if calls == 1 {
			// Run the panic through the real scheduler containment path.
			err := sched.Run(ctx, []scenario.Job{
				{Key: "boom", Run: func(context.Context) error { panic("injected wreckage") }},
			}, sched.Options{})
			return "", err
		}
		return "healthy report", nil
	}
	defer func() { testRunJob = nil }()

	_, hs := testServer(t)
	bad := waitTerminal(t, hs, submit(t, hs, `{"scenarios":["table1"]}`).ID)
	if bad.Status != StatusFailed {
		t.Fatalf("panicking job ended %s, want failed", bad.Status)
	}
	if !strings.Contains(bad.Error, "injected wreckage") || !strings.Contains(bad.Error, "goroutine") {
		t.Errorf("status does not carry the panic stack: %q", bad.Error)
	}
	// The daemon is still healthy and still does work.
	resp, err := http.Get(hs.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Errorf("healthz after a panic: %d %q, want 200 ok", resp.StatusCode, h.Status)
	}
	good := waitTerminal(t, hs, submit(t, hs, `{"scenarios":["table1"]}`).ID)
	if good.Status != StatusDone {
		t.Errorf("job after a panic ended %s: %s", good.Status, good.Error)
	}
}

// TestRetriesSurfaceInStatus: transient failures heal via the retry
// policy and the attempt count lands in the job status.
func TestRetriesSurfaceInStatus(t *testing.T) {
	testRunJob = func(ctx context.Context, j *job) (string, error) {
		attempts := 0
		err := sched.Run(ctx, []scenario.Job{
			{Key: "flaky", Run: func(context.Context) error {
				attempts++
				if attempts < 3 {
					return sched.Transient(errors.New("spurious"))
				}
				return nil
			}},
		}, sched.Options{
			Retry: sched.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond},
			OnRetry: func(key string, attempt int, err error, backoff time.Duration) {
				j.mu.Lock()
				j.retries++
				j.mu.Unlock()
			},
		})
		return "flaky report", err
	}
	defer func() { testRunJob = nil }()

	_, hs := testServer(t)
	st := waitTerminal(t, hs, submit(t, hs, `{"scenarios":["table1"]}`).ID)
	if st.Status != StatusDone {
		t.Fatalf("flaky job ended %s: %s", st.Status, st.Error)
	}
	if st.Retries != 2 {
		t.Errorf("status retries %d, want 2", st.Retries)
	}
}

// TestDrainRefusesAndResumes: draining refuses new work with 503; a
// job still running at the drain deadline is suspended without a
// terminal journal record and resubmitted by the next daemon.
func TestDrainRefusesAndResumes(t *testing.T) {
	block := make(chan struct{})
	testRunJob = func(ctx context.Context, j *job) (string, error) {
		select {
		case <-block:
			return "report", nil
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
	defer func() { testRunJob = nil }()

	dir := t.TempDir()
	srv, hs := durableServer(t, dir, nil)
	st := submit(t, hs, `{"scenarios":["table1"]}`)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	drainErr := make(chan error, 1)
	go func() { drainErr <- srv.Drain(ctx) }()

	// While draining, submissions are refused.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Post(hs.URL+"/v1/jobs", "application/json",
			strings.NewReader(`{"scenarios":["table1"]}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("draining server still admits jobs: %s", resp.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := <-drainErr; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain past its deadline returned %v", err)
	}
	got := getStatus(t, hs, st.ID)
	if got.Status != StatusCanceled {
		t.Fatalf("suspended job is %s, want canceled", got.Status)
	}
	hs.Close()

	// The journal kept only the submission: the next daemon resumes it.
	srv2, hs2 := durableServer(t, dir, nil)
	if srv2.Recovered() != 1 {
		t.Fatalf("recovered %d jobs, want 1", srv2.Recovered())
	}
	close(block)
	resumed := waitTerminal(t, hs2, st.ID)
	if resumed.Status != StatusDone {
		t.Fatalf("resumed job ended %s: %s", resumed.Status, resumed.Error)
	}
	if report := fetchReport(t, hs2, st.ID); report != "report" {
		t.Errorf("resumed report %q", report)
	}
}

// TestHealthzReportsJournalDamage: corrupt journal lines surface in
// /v1/healthz as a degraded (but still 200) daemon.
func TestHealthzReportsJournalDamage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.journal")
	if err := os.WriteFile(path, []byte("deadbeef not a valid journal line\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, hs := durableServer(t, dir, nil)
	resp, err := http.Get(hs.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", resp.Status)
	}
	if h.Status != "degraded" || h.Journal == nil || h.Journal.CorruptLines != 1 {
		t.Errorf("health %+v, want degraded with 1 corrupt line", h)
	}
	if h.Queue.Capacity == 0 {
		t.Errorf("queue capacity unreported: %+v", h.Queue)
	}
}

// TestUnresolvableJournalledSpecFailsCleanly: a journalled spec that no
// longer resolves becomes a failed job on restart, not a crash loop.
func TestUnresolvableJournalledSpecFailsCleanly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.journal")
	jl, _, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := jl.append(journalRecord{
		Op: journalOpSubmit, ID: "job-1",
		Spec: &scenario.Spec{Scenarios: []string{"no-such-scenario"}},
		Time: time.Now(),
	}); err != nil {
		t.Fatal(err)
	}
	jl.close()

	srv, hs := durableServer(t, dir, nil)
	if srv.Recovered() != 0 {
		t.Errorf("unresolvable spec counted as recovered")
	}
	st := getStatus(t, hs, "job-1")
	if st.Status != StatusFailed || !strings.Contains(st.Error, "no-such-scenario") {
		t.Errorf("unresolvable journalled job: %+v", st)
	}
}
