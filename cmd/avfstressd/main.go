// Command avfstressd serves the experiment portfolio over HTTP: clients
// submit declarative scenario specs, the daemon schedules their
// combined job DAG on a bounded worker pool, and every job shares one
// content-addressed simulation store — concurrent clients requesting
// overlapping scenarios each pay only the marginal simulations.
//
// Usage:
//
//	avfstressd [-addr :8080] [-cache-dir DIR] [-scale N]
//	           [-parallelism N] [-max-jobs N] [-quiet]
//
// API:
//
//	POST   /v1/jobs          submit a scenario.Spec (JSON); returns the job
//	GET    /v1/jobs          list jobs + server-wide cache stats
//	GET    /v1/jobs/{id}     job status (+ ?stream=1: progress stream)
//	DELETE /v1/jobs/{id}     cancel a queued or running job
//	GET    /v1/results/{id}  rendered report + stats (+ ?format=text)
//	GET    /healthz          liveness
//
// The README documents every route with an example curl session.
// Specs may request registered experiments or the parametric
// stressmark / workloads / faultinject scenarios (the latter runs the
// Monte Carlo fault-injection validation, DESIGN.md §9).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"avfstress/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		cacheDir = flag.String("cache-dir", "", "persist simulation results under this directory (shared across jobs, runs and processes)")
		scale    = flag.Int("scale", 0, "default cache scale-down factor for jobs that set none (0 = harness default)")
		par      = flag.Int("parallelism", 0, "per-job concurrency bound (0 = all cores)")
		maxJobs  = flag.Int("max-jobs", 0, "concurrently running jobs; excess queue in order (0 = all cores)")
		quiet    = flag.Bool("quiet", false, "suppress server logging")
	)
	flag.Parse()

	opts := service.Options{
		CacheDir:    *cacheDir,
		Scale:       *scale,
		Parallelism: *par,
		MaxJobs:     *maxJobs,
	}
	if !*quiet {
		opts.Logf = func(f string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "avfstressd: "+f+"\n", args...)
		}
	}
	srv := service.New(opts)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "avfstressd:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "avfstressd: listening on http://%s\n", ln.Addr())
	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "avfstressd:", err)
		os.Exit(1)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "avfstressd: %v — draining\n", s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "avfstressd: shutdown:", err)
	}
	hs.Shutdown(ctx)
}
