#!/bin/sh
# serve_smoke boots avfstressd, submits two concurrent overlapping
# scenario jobs (the second a strict superset of the first) and asserts
# the cache-sharing contract: the second job completes with >0 cache
# hits and fewer fresh simulations than the first — concurrent clients
# pay only the marginal simulations.
#
# -max-jobs 1 keeps the per-job attribution deterministic: both jobs are
# in the daemon concurrently (the second queues while the first runs),
# and the overlap resolves as cache hits instead of racing singleflights.
set -eu

DIR=${SERVE_SMOKE_DIR:-$PWD/.serve-smoke}
ADDR=${SERVE_SMOKE_ADDR:-127.0.0.1:18734}
BASE="http://$ADDR"

rm -rf "$DIR"
mkdir -p "$DIR"
go build -o "$DIR/avfstressd" ./cmd/avfstressd
"$DIR/avfstressd" -addr "$ADDR" -cache-dir "$DIR/cache" -max-jobs 1 \
    >"$DIR/daemon.log" 2>&1 &
PID=$!
cleanup() { kill "$PID" 2>/dev/null || true; }
trap cleanup EXIT

i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "serve-smoke: daemon never became healthy" >&2
        cat "$DIR/daemon.log" >&2
        exit 1
    fi
    sleep 0.1
done

SPEC1='{"scenarios":["fig3","fig4"],"mode":"reference","workload_instr":40000,"workload_warmup":10000}'
SPEC2='{"scenarios":["fig3","fig4","fig7"],"mode":"reference","workload_instr":40000,"workload_warmup":10000}'

job_id() { grep -o '"id": *"job-[0-9]*"' | head -1 | grep -o 'job-[0-9]*'; }

# Submit both immediately: the jobs coexist in the daemon.
id1=$(curl -fsS -X POST -d "$SPEC1" "$BASE/v1/jobs" | job_id)
id2=$(curl -fsS -X POST -d "$SPEC2" "$BASE/v1/jobs" | job_id)
echo "serve-smoke: submitted $id1 (fig3,fig4) and $id2 (fig3,fig4,fig7)"

wait_done() {
    i=0
    while :; do
        st=$(curl -fsS "$BASE/v1/jobs/$1" | grep -o '"status": *"[a-z]*"' | head -1 | cut -d'"' -f4)
        case "$st" in
        done) return 0 ;;
        failed | canceled)
            echo "serve-smoke: job $1 ended $st" >&2
            curl -fsS "$BASE/v1/jobs/$1" >&2 || true
            exit 1
            ;;
        esac
        i=$((i + 1))
        if [ "$i" -ge 1200 ]; then
            echo "serve-smoke: job $1 never finished" >&2
            exit 1
        fi
        sleep 0.2
    done
}
wait_done "$id1"
wait_done "$id2"

field() { curl -fsS "$BASE/v1/results/$1" | grep -o "\"$2\": *[0-9]*" | head -1 | grep -o '[0-9]*$'; }
sims1=$(field "$id1" simulated)
sims2=$(field "$id2" simulated)
mem2=$(field "$id2" mem_hits)
disk2=$(field "$id2" disk_hits)
dedup2=$(field "$id2" deduped)
hits2=$((mem2 + disk2 + dedup2))
echo "serve-smoke: $id1 simulated=$sims1; $id2 simulated=$sims2 hits=$hits2 (mem=$mem2 disk=$disk2 dedup=$dedup2)"

if [ "$hits2" -le 0 ]; then
    echo "serve-smoke: second job saw no cache hits" >&2
    exit 1
fi
if [ "$sims2" -ge "$sims1" ]; then
    echo "serve-smoke: second job simulated $sims2 >= first's $sims1 — overlap not shared" >&2
    exit 1
fi
if [ "$hits2" -le "$sims2" ]; then
    echo "serve-smoke: second job not served mostly from cache ($hits2 hits vs $sims2 sims)" >&2
    exit 1
fi
echo "serve-smoke OK: second job served mostly from cache ($hits2 hits, $sims2 fresh sims vs $sims1)"
rm -rf "$DIR"
