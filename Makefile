GO ?= go

# Benchmark packages: the experiment suite (repo root) plus the cache
# lifetime-engine microbenchmarks.
BENCH_PKGS = . ./internal/cache

.PHONY: all build vet test race rootcause-diff check bench bench-compare bench-smoke cache-smoke serve-smoke chaos-smoke cluster-smoke docs-check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the concurrency-heavy tiers (DAG scheduler with its
# retry/panic-containment paths, job service with journal replay,
# experiment orchestration, injection campaigns, root-cause
# attribution, the simcache/persist quarantine paths, and the
# pipeline/cache snapshot-restore paths that fork-replay shares across
# workers) under the race detector.
race:
	$(GO) test -race ./internal/sched ./internal/service ./internal/scenario ./internal/experiments ./internal/inject ./internal/rootcause ./internal/liveness ./internal/simcache ./internal/persist ./internal/pipe ./internal/cache

# rootcause-diff runs the attribution differential suite twice over
# (DESIGN.md §14): the replay-vs-static soundness sweep plus the
# byte-determinism matrix, -count=2 so any map-order nondeterminism in
# the aggregation tables shows up as a report diff between the runs.
rootcause-diff:
	$(GO) test ./internal/inject -run 'TestRootCause' -count=2
	$(GO) test ./internal/rootcause -count=2

check: vet build test

# bench runs the whole benchmark suite once and records a machine-readable
# snapshot, plus a timestamped archive copy so the perf trajectory is
# preserved across PRs (see DESIGN.md §6).
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x $(BENCH_PKGS) | $(GO) run ./cmd/benchjson > BENCH_latest.json
	cp BENCH_latest.json BENCH_$$(date +%Y-%m-%d).json
	@echo wrote BENCH_latest.json and BENCH_$$(date +%Y-%m-%d).json

# bench-smoke is the CI variant: one iteration of every benchmark,
# compared against the committed snapshot — it proves the experiment
# drivers still run end-to-end and gates >20% ns/op regressions. The
# intermediate file keeps go test's own exit status observable (a plain
# pipe would report only benchjson's).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x $(BENCH_PKGS) > bench-smoke.out || { cat bench-smoke.out; rm -f bench-smoke.out; exit 1; }
	@status=0; $(GO) run ./cmd/benchjson -check BENCH_latest.json -tolerance 0.20 -min-ns 100000000 < bench-smoke.out > /dev/null || status=1; \
	rm -f bench-smoke.out; exit $$status

# bench-compare produces the 5-run samples of the two headline benchmarks
# used for before/after comparisons (feed the two files to benchstat).
bench-compare:
	$(GO) test -run '^$$' -bench 'BenchmarkTableI_BaselineSim|BenchmarkFig5_GASearchBaseline' -benchmem -count 5 .

# cache-smoke proves the simcache determinism contract end-to-end: the
# full experiment suite must render byte-identically with the cache
# disabled, with a cold disk tier, and warm-from-disk — and the warm run
# must actually be served from disk (>0 disk hits in the stats line).
CACHE_SMOKE_DIR ?= $(CURDIR)/.cache-smoke
cache-smoke:
	rm -rf $(CACHE_SMOKE_DIR)
	mkdir -p $(CACHE_SMOKE_DIR)
	$(GO) build -o $(CACHE_SMOKE_DIR)/avfbench ./cmd/avfbench
	$(CACHE_SMOKE_DIR)/avfbench -ref -quiet > $(CACHE_SMOKE_DIR)/off.out
	$(CACHE_SMOKE_DIR)/avfbench -ref -quiet -cache-dir $(CACHE_SMOKE_DIR)/cache > $(CACHE_SMOKE_DIR)/cold.out 2> $(CACHE_SMOKE_DIR)/cold.err
	$(CACHE_SMOKE_DIR)/avfbench -ref -quiet -cache-dir $(CACHE_SMOKE_DIR)/cache > $(CACHE_SMOKE_DIR)/warm.out 2> $(CACHE_SMOKE_DIR)/warm.err
	cmp $(CACHE_SMOKE_DIR)/off.out $(CACHE_SMOKE_DIR)/cold.out
	cmp $(CACHE_SMOKE_DIR)/cold.out $(CACHE_SMOKE_DIR)/warm.out
	grep -E '^# cache: mem=[0-9]+ disk=[1-9][0-9]* sim=0 ' $(CACHE_SMOKE_DIR)/warm.err
	@echo cache-smoke OK: outputs byte-identical, warm run served from disk
	rm -rf $(CACHE_SMOKE_DIR)

# serve-smoke boots avfstressd, submits two concurrent overlapping
# scenario jobs and asserts the second is served mostly from cache hits
# (fewer fresh simulations than the first) — the daemon's shared-store
# contract, end to end over real HTTP.
serve-smoke:
	sh scripts/serve_smoke.sh

# chaos-smoke proves the crash-safety contract over a real SIGKILL:
# a daemon killed mid-campaign and restarted on the same journal+cache
# resubmits the interrupted job and reproduces its report
# byte-identically (warm); a flipped byte in a cached entry is
# quarantined and re-simulated, never a crash or a changed report.
chaos-smoke:
	sh scripts/chaos_smoke.sh

# cluster-smoke proves the campaign-fabric contract over real
# processes: a coordinator plus two runner daemons shard one campaign,
# one runner is SIGKILLed while holding job leases, and the final
# report must still match a solo daemon's byte-for-byte, with the dead
# runner's leases stolen. Speedup is asserted only on hosts with
# enough cores to shard across (see DESIGN.md §13).
cluster-smoke:
	sh scripts/cluster_smoke.sh

# docs-check keeps the documentation honest: gofmt, vet, every example
# builds, and no README/DESIGN reference points at a repo path that no
# longer exists.
docs-check:
	sh scripts/docs_check.sh
