package cache

import "testing"

// Microbenchmarks for the lifetime engine, independent of the pipeline,
// so the cost of the cache layer is tracked on its own in BENCH_*.json
// (wired into `make bench`). All use the Table I DL1/L2 geometries with
// the production 8-byte chunk granule.

func dl1Cfg() Config {
	return Config{Name: "DL1", SizeBytes: 64 << 10, LineBytes: 64, Ways: 2, HitLatency: 3, ChunkBytes: 8}
}

// BenchmarkCacheHit measures the demand-hit fast path (one lookup plus
// one chunk close), the single most frequent cache operation.
func BenchmarkCacheHit(b *testing.B) {
	c := MustNew(dl1Cfg())
	c.FillTouch(0, 1, 0x1000, 8, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(int64(i)+2, 0x1000, 8, false)
	}
}

// BenchmarkCacheMissFill measures the miss path: victim eviction,
// whole-line fill and the demand touch, via a line sweep that misses on
// every access.
func BenchmarkCacheMissFill(b *testing.B) {
	c := MustNew(dl1Cfg())
	stride := uint64(c.Config().LineBytes)
	lines := uint64(c.Lines() * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := (uint64(i) % lines) * stride
		now := int64(i) * 2
		if !c.Access(now, addr, 8, false) {
			c.FillTouch(now, now+1, addr, 8, false)
		}
	}
}

// BenchmarkCacheWriteback measures the dirty-line path: every access
// writes, so every eviction produces a writeback mask, applied to an L2
// via WriteMask.
func BenchmarkCacheWriteback(b *testing.B) {
	c := MustNew(dl1Cfg())
	l2 := MustNew(Config{Name: "L2", SizeBytes: 1 << 20, LineBytes: 64, Ways: 1, HitLatency: 7, ChunkBytes: 8})
	stride := uint64(c.Config().LineBytes)
	lines := uint64(c.Lines() * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := (uint64(i) % lines) * stride
		now := int64(i) * 2
		if !c.Access(now, addr, 8, true) {
			wb, dirty := c.FillTouch(now, now+1, addr, 8, true)
			if dirty {
				l2.WriteMask(now, wb.Addr, wb.DirtyMask)
			}
		}
	}
}

// BenchmarkCacheFinalize measures closing every resident line of a fully
// populated, half-dirty cache (the end-of-measurement path, also the
// cost profile of a capacity-sized eviction storm).
func BenchmarkCacheFinalize(b *testing.B) {
	c := MustNew(dl1Cfg())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c.Reset()
		stride := uint64(c.Config().LineBytes)
		for l := 0; l < c.Lines(); l++ {
			addr := uint64(l) * stride
			c.FillTouch(0, 1, addr, 8, l%2 == 0)
		}
		b.StartTimer()
		c.Finalize(100)
	}
}

// BenchmarkTLBHit measures the translation hit path at the full 256
// entries (map-indexed) and at the scaled 8 entries (scan-indexed).
func BenchmarkTLBHit(b *testing.B) {
	for _, entries := range []int{256, 8} {
		name := "entries256"
		if entries == 8 {
			name = "entries8"
		}
		b.Run(name, func(b *testing.B) {
			tl := MustNewTLB(TLBConfig{Name: "t", Entries: entries, PageBytes: 8 << 10,
				EntryBits: 80, WalkLatency: 30})
			for p := 0; p < entries; p++ {
				tl.Access(0, uint64(p)*8192)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Alternate pages to defeat the one-entry memo.
				tl.Access(int64(i), uint64(i%2)*8192)
			}
		})
	}
}
