package sched

// Error classification (DESIGN.md §11): every job failure is either
// transient — worth retrying under the run's RetryPolicy — or
// permanent. The default is permanent: simulations in this repository
// are deterministic pure functions, so an unclassified failure would
// fail identically on every retry. Code that hits genuinely transient
// conditions (disk I/O, a blob a decoder rejected and discarded, an
// exceeded per-job deadline) marks the error with Transient, and the
// scheduler's retry loop consults IsTransient.

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// transientError marks a failure as retryable.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient marks err as retryable under the scheduler's RetryPolicy.
// A nil err stays nil. Context cancellation is never retryable, even
// wrapped: cancellation means the run is over.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is marked retryable anywhere in its
// chain. Cancellation of the surrounding run always wins: an error
// carrying context.Canceled or context.DeadlineExceeded is not
// transient regardless of marks.
func IsTransient(err error) bool {
	if err == nil || isCancellation(err) {
		return false
	}
	var te *transientError
	if errors.As(err, &te) {
		return true
	}
	var de *DeadlineError
	return errors.As(err, &de)
}

// PanicError is a panic captured inside a scheduled job: the job fails
// with the panic value and stack, the process — and every other job —
// keeps running. Panics are permanent: a deterministic job panics
// identically on every retry.
type PanicError struct {
	// Key identifies the job (possibly elided; keys are dedup
	// identities and can be fingerprint blobs).
	Key string
	// Value is the recovered panic value.
	Value interface{}
	// Stack is the goroutine stack at recovery time.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sched: job %s panicked: %v\n%s", elideKey(e.Key), e.Value, e.Stack)
}

// DeadlineError reports a job that exceeded the run's per-job deadline
// (Options.JobTimeout). It is deliberately distinct from
// context.DeadlineExceeded — a job deadline fails that job (and is
// transient: slow I/O may clear), it does not mean the caller's request
// timed out.
type DeadlineError struct {
	Key     string
	Timeout time.Duration
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("sched: job %s exceeded its %v deadline", elideKey(e.Key), e.Timeout)
}

// isCancellation reports whether err carries the surrounding context's
// cancellation.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// elideKey trims job keys for error messages: keys are dedup
// identities, often containing NUL-separated fingerprint blobs, not
// display strings.
func elideKey(key string) string {
	clean := make([]rune, 0, len(key))
	for _, r := range key {
		if r == 0 {
			r = '·'
		}
		clean = append(clean, r)
	}
	const max = 48
	if len(clean) > max {
		return fmt.Sprintf("%q…", string(clean[:max]))
	}
	return fmt.Sprintf("%q", string(clean))
}
