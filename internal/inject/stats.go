package inject

import "math"

// z95 is the two-sided 95% normal quantile.
const z95 = 1.959963984540054

// wilson returns the Wilson score 95% confidence interval for k
// successes in n Bernoulli trials. Unlike the normal approximation it
// behaves at the boundaries (k = 0 or k = n never yield a degenerate
// zero-width interval), which matters for heavily masked or fully ACE
// strata.
func wilson(k, n int) Interval {
	if n <= 0 {
		return Interval{}
	}
	p := float64(k) / float64(n)
	nn := float64(n)
	z2 := z95 * z95
	denom := 1 + z2/nn
	center := (p + z2/(2*nn)) / denom
	half := z95 * math.Sqrt(p*(1-p)/nn+z2/(4*nn*nn)) / denom
	return Interval{Lo: clamp01(center - half), Hi: clamp01(center + half)}
}

// normalCI returns the normal-approximation 95% interval around est
// with variance v (the stratified aggregate, where the Wilson form has
// no closed analogue).
func normalCI(est, v float64) Interval {
	if v <= 0 {
		return Interval{Lo: clamp01(est), Hi: clamp01(est)}
	}
	half := z95 * math.Sqrt(v)
	return Interval{Lo: clamp01(est - half), Hi: clamp01(est + half)}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
