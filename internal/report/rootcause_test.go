package report

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRootCauseTableGolden locks the rendered root-cause ranking against
// testdata/rootcause_golden.txt, the same contract as the injection
// table: the attribution tables are part of the campaign report's
// byte-determinism, so their rendering must not drift silently.
// Regenerate deliberately with: go test -run RootCause -update.
func TestRootCauseTableGolden(t *testing.T) {
	rows := []RootCauseRow{
		{Name: "10004  mulq r6, r2, r7", SDC: 41, DUE: 0, Share: 0.3122,
			Lo: 0.2401, Hi: 0.3943, Demanded: 38},
		{Name: "10000  addq r2, #3, r6", SDC: 23, DUE: 5, Share: 0.2210,
			Lo: 0.1581, Hi: 0.3002, Demanded: 28},
		{Name: "10008  ldq r8, (r6)[ag0]", SDC: 9, DUE: 0, Share: 0.0712,
			Lo: 0.0375, Hi: 0.1312, Demanded: 9},
		{Name: "01000  addq zero, #2, r2", SDC: 2, DUE: 0, Share: 0.0148,
			Lo: 0.0041, Hi: 0.0524, Demanded: 1},
	}
	got := RootCauseTable("Root-cause instructions — Baseline/s32 on 403.gcc (seed 1)", rows)

	path := filepath.Join("testdata", "rootcause_golden.txt")
	if *updateInjectionGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("root-cause table drifted from golden:\n got:\n%s\n want:\n%s", got, want)
	}
}
