// Package report renders experiment results as text tables, ASCII bar
// charts (standing in for the paper's figures) and CSV.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple left-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row, stringifying each cell with %v (floats get %.3f).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Bar is one bar of a chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders horizontal ASCII bars, the reproduction's rendering of
// the paper's bar figures. Max sets the full-scale value (0 = max bar).
type BarChart struct {
	Title string
	Max   float64
	Width int // characters at full scale (default 50)
	Bars  []Bar
}

// Add appends one bar.
func (c *BarChart) Add(label string, value float64) {
	c.Bars = append(c.Bars, Bar{Label: label, Value: value})
}

// String renders the chart.
func (c *BarChart) String() string {
	width := c.Width
	if width <= 0 {
		width = 50
	}
	max := c.Max
	if max <= 0 {
		for _, b := range c.Bars {
			if b.Value > max {
				max = b.Value
			}
		}
	}
	if max == 0 {
		max = 1
	}
	lw := 0
	for _, b := range c.Bars {
		if len(b.Label) > lw {
			lw = len(b.Label)
		}
	}
	var sb strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&sb, "%s\n", c.Title)
	}
	for _, b := range c.Bars {
		n := int(b.Value / max * float64(width))
		if n < 0 {
			n = 0
		}
		if n > width {
			n = width
		}
		fmt.Fprintf(&sb, "  %-*s %6.3f |%s\n", lw, b.Label, b.Value, strings.Repeat("█", n))
	}
	return sb.String()
}

// InjectionRow is one row of a fault-injection campaign table: the
// outcome counts of a Monte Carlo campaign stratum (one structure, or
// one whole campaign) beside the ACE-based AVF it validates.
type InjectionRow struct {
	Label    string
	Bits     uint64 // SER-relevant bit count of the stratum
	Trials   int
	SDC      int // silent data corruptions
	Detected int // corruptions on detection-protected structures (DUE)
	Masked   int
	Pruned   int     // targets proven masked statically (no replay)
	AVF      float64 // injection-measured, scaled to the sampled live subspace
	Lo, Hi   float64 // 95% confidence interval on AVF
	ACE      float64 // the ACE-accounting AVF being validated
}

// InjectionTable renders campaign rows in the repo's table style: the
// injection-measured AVF with its 95% confidence interval beside the
// ACE-based AVF, flagging rows whose ACE value escapes the interval.
// Zero-trial rows render with an empty interval and no flag.
func InjectionTable(title string, rows []InjectionRow) string {
	t := &Table{Title: title, Headers: []string{
		"target", "bits", "trials", "sdc", "due", "masked", "pruned",
		"AVF(inj)", "95% CI", "AVF(ace)", "in CI"}}
	for _, r := range rows {
		ci, in := "-", "-"
		if r.Trials > 0 {
			ci = fmt.Sprintf("[%.4f, %.4f]", r.Lo, r.Hi)
			if r.ACE >= r.Lo && r.ACE <= r.Hi {
				in = "yes"
			} else {
				in = "NO"
			}
		}
		t.AddRow(r.Label, r.Bits, r.Trials, r.SDC, r.Detected, r.Masked, r.Pruned,
			fmt.Sprintf("%.4f", r.AVF), ci, fmt.Sprintf("%.4f", r.ACE), in)
	}
	return t.String()
}

// RootCauseRow is one line of a root-cause vulnerability ranking: a
// program instruction (or instruction class) with the SDC/DUE trials
// attributed to it, its bit-cycle-normalised share of the campaign's
// corruption mass, and the Wilson 95% interval on its raw attributed
// fraction.
type RootCauseRow struct {
	Name     string // "0x10004 addq r7 <- r6, r2" or a class mnemonic
	SDC      int
	DUE      int
	Share    float64 // bit-cycle-normalised corruption share
	Lo, Hi   float64 // Wilson 95% CI on attributed fraction of corrupted trials
	Demanded int     // trials whose flipped bit lies in the consumer's demand mask
}

// RootCauseTable renders a root-cause ranking in the repo's table
// style. Rows arrive pre-sorted (most vulnerable first) — rendering
// never reorders, so callers own the determinism of the ranking.
func RootCauseTable(title string, rows []RootCauseRow) string {
	t := &Table{Title: title, Headers: []string{
		"cause", "sdc", "due", "share", "95% CI", "demanded"}}
	for _, r := range rows {
		t.AddRow(r.Name, r.SDC, r.DUE,
			fmt.Sprintf("%.4f", r.Share),
			fmt.Sprintf("[%.4f, %.4f]", r.Lo, r.Hi),
			r.Demanded)
	}
	return t.String()
}

// Sparkline renders a sequence of values as a one-line unicode spark
// chart, used for the GA convergence trace (Figure 5b).
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	ticks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	var b strings.Builder
	for _, v := range values {
		i := 0
		if span > 0 {
			i = int((v - lo) / span * float64(len(ticks)-1))
		}
		b.WriteRune(ticks[i])
	}
	return b.String()
}
