package experiments

import (
	"context"
	"fmt"
	"strings"

	"avfstress/internal/avf"
	"avfstress/internal/codegen"
	"avfstress/internal/ga"
	"avfstress/internal/report"
	"avfstress/internal/uarch"
	"avfstress/internal/workloads"
)

// SERRow is one program's class-normalised SER vector.
type SERRow struct {
	Name string
	SER  [avf.NumClasses]float64
}

func serRow(name string, r *avf.Result, cfg uarch.Config, rates uarch.FaultRates) SERRow {
	row := SERRow{Name: name}
	for _, cl := range avf.AllClasses() {
		row.SER[cl] = r.SER(cfg, rates, cl)
	}
	return row
}

// SERComparison is the shared shape of Figures 3 and 4: the stressmark's
// class-normalised SER against a workload population's.
type SERComparison struct {
	Figure     string
	Config     string
	Stressmark SERRow
	Workloads  []SERRow
}

// BestWorkload returns the highest workload SER in a class.
func (f *SERComparison) BestWorkload(cl avf.Class) SERRow {
	best := f.Workloads[0]
	for _, w := range f.Workloads {
		if w.SER[cl] > best.SER[cl] {
			best = w
		}
	}
	return best
}

// Advantage returns stressmark/best-workload for a class (the paper's
// 1.4×/2.5×/1.5× headline ratios).
func (f *SERComparison) Advantage(cl avf.Class) float64 {
	b := f.BestWorkload(cl).SER[cl]
	if b == 0 {
		return 0
	}
	return f.Stressmark.SER[cl] / b
}

// String renders the SERComparison as its paper-style report.
func (f *SERComparison) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — overall SER (units/bit, normalised per class) on %s\n\n", f.Figure, f.Config)
	t := &report.Table{Headers: []string{"program", "QS", "QS+RF", "DL1+DTLB", "L2"}}
	t.AddRow(f.Stressmark.Name, f.Stressmark.SER[avf.ClassQS], f.Stressmark.SER[avf.ClassQSRF],
		f.Stressmark.SER[avf.ClassDL1DTLB], f.Stressmark.SER[avf.ClassL2])
	for _, w := range f.Workloads {
		t.AddRow(w.Name, w.SER[avf.ClassQS], w.SER[avf.ClassQSRF], w.SER[avf.ClassDL1DTLB], w.SER[avf.ClassL2])
	}
	b.WriteString(t.String())
	for _, cl := range avf.AllClasses() {
		ch := &report.BarChart{Title: fmt.Sprintf("\n%s (stressmark advantage %.2fx)", cl, f.Advantage(cl)), Max: 1}
		ch.Add(f.Stressmark.Name, f.Stressmark.SER[cl])
		best := f.BestWorkload(cl)
		ch.Add("best: "+best.Name, best.SER[cl])
		b.WriteString(ch.String())
	}
	return b.String()
}

// Fig3 compares the stressmark with the SPEC CPU2006 proxies on the
// baseline configuration (paper Figure 3).
func (c *Context) Fig3(ctx context.Context) (*SERComparison, error) {
	return c.serComparison(ctx, "Figure 3", []workloads.Suite{workloads.SPECInt, workloads.SPECFP})
}

// Fig4 compares the stressmark with the MiBench proxies (paper Figure 4).
func (c *Context) Fig4(ctx context.Context) (*SERComparison, error) {
	return c.serComparison(ctx, "Figure 4", []workloads.Suite{workloads.MiBench})
}

func (c *Context) serComparison(ctx context.Context, fig string, suites []workloads.Suite) (*SERComparison, error) {
	cfg := c.Baseline
	rates := uarch.UniformRates(1)
	sm, err := c.Stressmark(ctx, "baseline", cfg, rates)
	if err != nil {
		return nil, err
	}
	out := &SERComparison{Figure: fig, Config: cfg.Name,
		Stressmark: serRow("stressmark", sm.Result, cfg, rates)}
	for _, s := range suites {
		rs, err := c.WorkloadsBySuite(ctx, cfg, s)
		if err != nil {
			return nil, err
		}
		for _, r := range rs {
			out.Workloads = append(out.Workloads, serRow(r.Workload, r, cfg, rates))
		}
	}
	return out, nil
}

// Fig5Result is the paper's Figure 5: the GA's final knob settings (a)
// and its convergence trace (b).
type Fig5Result struct {
	Config  string
	Knobs   codegen.Knobs
	History []ga.GenStats
	// Evaluations and Cataclysms summarise the search.
	Evaluations int64
	Cataclysms  int
	Fitness     float64
}

// String renders the Fig5Result as its paper-style report.
func (f *Fig5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5(a) — knob settings of the final GA solution (%s)\n\n%s\n", f.Config, f.Knobs)
	fmt.Fprintf(&b, "Figure 5(b) — convergence of the GA (%d evaluations, %d cataclysm(s), final fitness %.3f)\n\n",
		f.Evaluations, f.Cataclysms, f.Fitness)
	avgs := make([]float64, len(f.History))
	t := &report.Table{Headers: []string{"generation", "avg fitness", "best fitness", "event"}}
	for i, h := range f.History {
		avgs[i] = h.Avg
		ev := ""
		if h.Cataclysm {
			ev = "cataclysm"
		}
		t.AddRow(h.Generation, h.Avg, h.Best, ev)
	}
	fmt.Fprintf(&b, "  avg fitness/generation: %s\n\n", report.Sparkline(avgs))
	b.WriteString(t.String())
	return b.String()
}

// Fig5 runs the baseline GA search and reports knobs and convergence.
func (c *Context) Fig5(ctx context.Context) (*Fig5Result, error) {
	cfg := c.Baseline
	sm, err := c.Stressmark(ctx, "baseline", cfg, uarch.UniformRates(1))
	if err != nil {
		return nil, err
	}
	return &Fig5Result{
		Config: cfg.Name, Knobs: sm.Knobs, History: sm.History,
		Evaluations: sm.Evaluations, Cataclysms: sm.Cataclysms, Fitness: sm.Fitness,
	}, nil
}

// AVFRow is one program's per-structure AVF vector (percent).
type AVFRow struct {
	Name string
	AVF  [uarch.NumStructures]float64
}

// Fig6Result is the paper's Figure 6: per-structure AVF of every
// workload, by suite, against the stressmark.
type Fig6Result struct {
	Config     string
	Stressmark AVFRow
	Suites     []string
	Rows       [][]AVFRow // parallel to Suites
}

var fig6Structs = []uarch.Structure{
	uarch.IQ, uarch.ROB, uarch.FU, uarch.RF,
	uarch.LQTag, uarch.LQData, uarch.SQTag, uarch.SQData,
	uarch.DL1, uarch.DTLB, uarch.L2,
}

// String renders the Fig6Result as its paper-style report.
func (f *Fig6Result) String() string {
	var b strings.Builder
	headers := []string{"program"}
	for _, s := range fig6Structs {
		headers = append(headers, s.String())
	}
	for i, suite := range f.Suites {
		fmt.Fprintf(&b, "Figure 6(%c) — AVF (%%) on %s: %s\n\n", 'a'+i, f.Config, suite)
		t := &report.Table{Headers: headers}
		addRow := func(r AVFRow) {
			cells := []interface{}{r.Name}
			for _, s := range fig6Structs {
				cells = append(cells, fmt.Sprintf("%.1f", r.AVF[s]*100))
			}
			t.AddRow(cells...)
		}
		addRow(f.Stressmark)
		for _, r := range f.Rows[i] {
			addRow(r)
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig6 reports per-structure AVFs for all three suites plus the
// stressmark (paper Figure 6a/b/c).
func (c *Context) Fig6(ctx context.Context) (*Fig6Result, error) {
	cfg := c.Baseline
	sm, err := c.Stressmark(ctx, "baseline", cfg, uarch.UniformRates(1))
	if err != nil {
		return nil, err
	}
	out := &Fig6Result{Config: cfg.Name, Stressmark: avfRow("stressmark", sm.Result)}
	for _, s := range []workloads.Suite{workloads.SPECInt, workloads.SPECFP, workloads.MiBench} {
		rs, err := c.WorkloadsBySuite(ctx, cfg, s)
		if err != nil {
			return nil, err
		}
		var rows []AVFRow
		for _, r := range rs {
			rows = append(rows, avfRow(r.Workload, r))
		}
		out.Suites = append(out.Suites, s.String())
		out.Rows = append(out.Rows, rows)
	}
	return out, nil
}

func avfRow(name string, r *avf.Result) AVFRow {
	row := AVFRow{Name: name}
	copy(row.AVF[:], r.AVF[:])
	return row
}

// Fig7Result is the paper's Figure 7: core SER of the workloads under
// the RHC (a) and EDR (b) fault-rate sets, against the stressmark
// generated for each set.
type Fig7Result struct {
	Config string
	Parts  []Fig7Part
}

// Fig7Part is one sub-figure.
type Fig7Part struct {
	Rates      string
	Stressmark SERRow
	Workloads  []SERRow
}

// String renders the Fig7Result as its paper-style report.
func (f *Fig7Result) String() string {
	var b strings.Builder
	for i, p := range f.Parts {
		fmt.Fprintf(&b, "Figure 7(%c) — core SER (units/bit) under %s rates on %s\n\n", 'a'+i, p.Rates, f.Config)
		t := &report.Table{Headers: []string{"program", "QS", "QS+RF"}}
		t.AddRow(p.Stressmark.Name, p.Stressmark.SER[avf.ClassQS], p.Stressmark.SER[avf.ClassQSRF])
		best := SERRow{}
		for _, w := range p.Workloads {
			t.AddRow(w.Name, w.SER[avf.ClassQS], w.SER[avf.ClassQSRF])
			if w.SER[avf.ClassQSRF] > best.SER[avf.ClassQSRF] {
				best = w
			}
		}
		b.WriteString(t.String())
		ch := &report.BarChart{Title: fmt.Sprintf("\nQS+RF under %s", p.Rates)}
		ch.Add(p.Stressmark.Name, p.Stressmark.SER[avf.ClassQSRF])
		ch.Add("best: "+best.Name, best.SER[avf.ClassQSRF])
		b.WriteString(ch.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig7 evaluates all workloads and per-rate-set stressmarks under the
// RHC and EDR fault rates.
func (c *Context) Fig7(ctx context.Context) (*Fig7Result, error) {
	cfg := c.Baseline
	all, err := c.Workloads(ctx, cfg)
	if err != nil {
		return nil, err
	}
	out := &Fig7Result{Config: cfg.Name}
	for _, rs := range []struct {
		key   string
		rates uarch.FaultRates
	}{
		{"rhc", uarch.RHCRates()},
		{"edr", uarch.EDRRates()},
	} {
		sm, err := c.Stressmark(ctx, rs.key, cfg, rs.rates)
		if err != nil {
			return nil, err
		}
		part := Fig7Part{Rates: strings.ToUpper(rs.key),
			Stressmark: serRow("stressmark:"+strings.ToUpper(rs.key), sm.Result, cfg, rs.rates)}
		for _, r := range all {
			part.Workloads = append(part.Workloads, serRow(r.Workload, r, cfg, rs.rates))
		}
		out.Parts = append(out.Parts, part)
	}
	return out, nil
}

// Fig8Result is the paper's Figure 8: the fault-rate table (a), the
// queueing-structure AVFs of the stressmarks generated for the Baseline,
// RHC and EDR rate sets (b), and the final knobs for RHC (c) and EDR (d).
type Fig8Result struct {
	Config             string
	Rates              map[string]uarch.FaultRates
	Marks              []AVFRow // stressmark:Baseline, stressmark:RHC, stressmark:EDR
	KnobsRHC, KnobsEDR codegen.Knobs
}

// String renders the Fig8Result as its paper-style report.
func (f *Fig8Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 8(a) — circuit-level fault rates (units/bit)\n\n")
	t := &report.Table{Headers: []string{"structure", "RHC", "EDR"}}
	rhc, edr := f.Rates["RHC"], f.Rates["EDR"]
	for _, s := range []uarch.Structure{uarch.ROB, uarch.IQ, uarch.FU, uarch.RF,
		uarch.LQTag, uarch.LQData, uarch.SQTag, uarch.SQData} {
		t.AddRow(s.String(), rhc[s], edr[s])
	}
	b.WriteString(t.String())

	b.WriteString("\nFigure 8(b) — AVF (%) of queueing structures, per-rate-set stressmarks\n\n")
	qs := []uarch.Structure{uarch.IQ, uarch.ROB, uarch.FU, uarch.RF,
		uarch.LQTag, uarch.LQData, uarch.SQTag, uarch.SQData}
	headers := []string{"stressmark"}
	for _, s := range qs {
		headers = append(headers, s.String())
	}
	t2 := &report.Table{Headers: headers}
	for _, m := range f.Marks {
		cells := []interface{}{m.Name}
		for _, s := range qs {
			cells = append(cells, fmt.Sprintf("%.1f", m.AVF[s]*100))
		}
		t2.AddRow(cells...)
	}
	b.WriteString(t2.String())
	fmt.Fprintf(&b, "\nFigure 8(c) — knobs for Config RHC\n\n%s", f.KnobsRHC)
	fmt.Fprintf(&b, "\nFigure 8(d) — knobs for Config EDR\n\n%s", f.KnobsEDR)
	return b.String()
}

// Fig8 runs the three rate-set searches and assembles Figure 8.
func (c *Context) Fig8(ctx context.Context) (*Fig8Result, error) {
	cfg := c.Baseline
	base, err := c.Stressmark(ctx, "baseline", cfg, uarch.UniformRates(1))
	if err != nil {
		return nil, err
	}
	rhc, err := c.Stressmark(ctx, "rhc", cfg, uarch.RHCRates())
	if err != nil {
		return nil, err
	}
	edr, err := c.Stressmark(ctx, "edr", cfg, uarch.EDRRates())
	if err != nil {
		return nil, err
	}
	return &Fig8Result{
		Config: cfg.Name,
		Rates:  map[string]uarch.FaultRates{"RHC": uarch.RHCRates(), "EDR": uarch.EDRRates()},
		Marks: []AVFRow{
			avfRow("stressmark:Baseline", base.Result),
			avfRow("stressmark:RHC", rhc.Result),
			avfRow("stressmark:EDR", edr.Result),
		},
		KnobsRHC: rhc.Knobs,
		KnobsEDR: edr.Knobs,
	}, nil
}

// Fig9Result is the paper's Figure 9: the stressmark re-generated for
// Configuration A, compared per structure with the baseline stressmark.
type Fig9Result struct {
	Marks []AVFRow // stressmark:Baseline, stressmark:ConfigA
	Knobs codegen.Knobs
}

// String renders the Fig9Result as its paper-style report.
func (f *Fig9Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 9(a) — AVF (%) of queueing and storage structures\n\n")
	headers := []string{"stressmark"}
	for _, s := range fig6Structs {
		headers = append(headers, s.String())
	}
	t := &report.Table{Headers: headers}
	for _, m := range f.Marks {
		cells := []interface{}{m.Name}
		for _, s := range fig6Structs {
			cells = append(cells, fmt.Sprintf("%.1f", m.AVF[s]*100))
		}
		t.AddRow(cells...)
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nFigure 9(b) — knobs for the final GA solution (Configuration A)\n\n%s", f.Knobs)
	return b.String()
}

// Fig9 searches on Configuration A and compares with the baseline
// stressmark.
func (c *Context) Fig9(ctx context.Context) (*Fig9Result, error) {
	base, err := c.Stressmark(ctx, "baseline", c.Baseline, uarch.UniformRates(1))
	if err != nil {
		return nil, err
	}
	ca, err := c.Stressmark(ctx, "configA", c.ConfigA, uarch.UniformRates(1))
	if err != nil {
		return nil, err
	}
	return &Fig9Result{
		Marks: []AVFRow{
			avfRow("stressmark:Baseline", base.Result),
			avfRow("stressmark:ConfigA", ca.Result),
		},
		Knobs: ca.Knobs,
	}, nil
}
