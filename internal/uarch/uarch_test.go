package uarch

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestBaselineMatchesTableI(t *testing.T) {
	c := Baseline()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	core := c.Core
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"ALUs", core.NumALUs, 4},
		{"ALU latency", core.ALULatency, 1},
		{"multipliers", core.NumMuls, 1},
		{"multiplier latency", core.MulLatency, 7},
		{"issue width", core.IssueWidth, 4},
		{"IQ entries", core.IQEntries, 20},
		{"IQ entry bits", core.IQEntryBits, 32},
		{"ROB entries", core.ROBEntries, 80},
		{"ROB entry bits", core.ROBEntryBits, 76},
		{"physical registers", core.PhysRegs, 80},
		{"register bits", core.RegBits, 64},
		{"LQ entries", core.LQEntries, 32},
		{"SQ entries", core.SQEntries, 32},
		{"LSQ entry bits", core.LSQEntryBits, 128},
		{"mispredict penalty", core.MispredictPenalty, 7},
		{"memory issues/cycle", core.MemIssuePerCycle, 2},
		{"DL1 size", c.Mem.DL1.SizeBytes, 64 << 10},
		{"DL1 ways", c.Mem.DL1.Ways, 2},
		{"DL1 latency", c.Mem.DL1.HitLatency, 3},
		{"L2 size", c.Mem.L2.SizeBytes, 1 << 20},
		{"L2 ways", c.Mem.L2.Ways, 1},
		{"L2 latency", c.Mem.L2.HitLatency, 7},
		{"DTLB entries", c.Mem.DTLB.Entries, 256},
		{"DTLB page", c.Mem.DTLB.PageBytes, 8 << 10},
	}
	for _, ch := range checks {
		if ch.got != ch.want {
			t.Errorf("%s = %d, want %d", ch.name, ch.got, ch.want)
		}
	}
}

func TestConfigAMatchesTableII(t *testing.T) {
	c := ConfigA()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Core.IQEntries != 32 || c.Core.ROBEntries != 96 || c.Core.PhysRegs != 96 {
		t.Errorf("core sizes: IQ %d ROB %d RF %d", c.Core.IQEntries, c.Core.ROBEntries, c.Core.PhysRegs)
	}
	if c.Core.NumMuls != 4 {
		t.Errorf("multipliers = %d, want 4", c.Core.NumMuls)
	}
	if c.Mem.DL1.Ways != 4 || c.Mem.DTLB.Entries != 512 {
		t.Errorf("DL1 ways %d, DTLB %d", c.Mem.DL1.Ways, c.Mem.DTLB.Entries)
	}
	if c.Mem.L2.SizeBytes != 2<<20 || c.Mem.L2.Ways != 8 || c.Mem.L2.HitLatency != 12 {
		t.Errorf("L2 %d/%d-way/%d-cycle", c.Mem.L2.SizeBytes, c.Mem.L2.Ways, c.Mem.L2.HitLatency)
	}
}

func TestStructureBits(t *testing.T) {
	c := Baseline()
	cases := []struct {
		s    Structure
		want uint64
	}{
		{IQ, 20 * 32},
		{ROB, 80 * 76},
		{RF, 80 * 64},
		{LQTag, 32 * 64},
		{LQData, 32 * 64},
		{SQTag, 32 * 64},
		{SQData, 32 * 64},
		{FU, (4*1 + 1*7) * 64},
		{DTLB, 256 * 80},
	}
	for _, cs := range cases {
		if got := Bits(c, cs.s); got != cs.want {
			t.Errorf("Bits(%v) = %d, want %d", cs.s, got, cs.want)
		}
	}
	if Bits(c, DL1) <= c.Mem.DL1.DataBits() {
		t.Error("DL1 bits must include tags")
	}
	if Bits(c, L2) <= c.Mem.L2.DataBits() {
		t.Error("L2 bits must include tags")
	}
}

func TestFaultRateSets(t *testing.T) {
	u := UniformRates(1)
	for s := Structure(0); s < NumStructures; s++ {
		if u[s] != 1 {
			t.Errorf("uniform rate for %v = %f", s, u[s])
		}
	}
	r := RHCRates()
	if r[ROB] != 0.25 || r[LQTag] != 0.4 || r[LQData] != 0.4 || r[SQTag] != 0.35 || r[SQData] != 0.35 {
		t.Errorf("RHC rates wrong: %+v", r)
	}
	if r[IQ] != 1 || r[FU] != 1 || r[RF] != 1 || r[DL1] != 1 {
		t.Error("RHC must leave IQ/FU/RF/caches at 1")
	}
	e := EDRRates()
	for _, s := range []Structure{ROB, LQTag, LQData, SQTag, SQData} {
		if e[s] != 0 {
			t.Errorf("EDR rate for %v = %f, want 0", s, e[s])
		}
	}
}

func TestScaled(t *testing.T) {
	c := Scaled(Baseline(), 32)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Core != Baseline().Core {
		t.Error("scaling must not touch the core")
	}
	if c.Mem.L2.SizeBytes != (1<<20)/32 {
		t.Errorf("scaled L2 = %d", c.Mem.L2.SizeBytes)
	}
	if c.Mem.DTLB.Entries != 8 {
		t.Errorf("scaled DTLB = %d", c.Mem.DTLB.Entries)
	}
	if Scaled(Baseline(), 1).Name != "Baseline" {
		t.Error("factor 1 must be the identity")
	}
	// Extreme factors clamp rather than producing invalid configs.
	huge := Scaled(Baseline(), 1<<20)
	if err := huge.Validate(); err != nil {
		t.Errorf("extreme scaling produced invalid config: %v", err)
	}
}

// Property: any scaling factor yields a valid configuration with the
// core untouched.
func TestQuickScaledAlwaysValid(t *testing.T) {
	f := func(factor uint8) bool {
		c := Scaled(Baseline(), int(factor))
		return c.Validate() == nil && c.Core == Baseline().Core
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoreValidation(t *testing.T) {
	c := Baseline()
	c.Core.IQEntries = 0
	if err := c.Validate(); err == nil {
		t.Error("zero IQ accepted")
	}
	c = Baseline()
	c.Core.PhysRegs = 20 // fewer than architected registers
	if err := c.Validate(); err == nil {
		t.Error("too-small register file accepted")
	}
	c = Baseline()
	c.Core.LSQEntryBits = 127 // odd: can't split addr/data
	if err := c.Validate(); err == nil {
		t.Error("odd LSQ entry width accepted")
	}
}

func TestStructureNames(t *testing.T) {
	seen := map[string]bool{}
	for s := Structure(0); s < NumStructures; s++ {
		n := s.String()
		if n == "" || seen[n] {
			t.Errorf("structure %d has empty or duplicate name %q", s, n)
		}
		seen[n] = true
	}
	if len(QueueStructures) != 7 || len(CoreStructures) != 8 {
		t.Errorf("class sizes: QS %d core %d", len(QueueStructures), len(CoreStructures))
	}
}

// TestChunkGranules locks the lifetime-engine granules of the evaluated
// configurations: the GCD of each cache's access stream (8-byte data,
// 4-byte fetch; see DESIGN.md §5). Scaled must preserve them.
func TestChunkGranules(t *testing.T) {
	for _, cfg := range []Config{Baseline(), ConfigA()} {
		if got := cfg.Mem.IL1.EffectiveChunkBytes(); got != 4 {
			t.Errorf("%s IL1 chunk = %d, want 4", cfg.Name, got)
		}
		if got := cfg.Mem.DL1.EffectiveChunkBytes(); got != 8 {
			t.Errorf("%s DL1 chunk = %d, want 8", cfg.Name, got)
		}
		if got := cfg.Mem.L2.EffectiveChunkBytes(); got != 8 {
			t.Errorf("%s L2 chunk = %d, want 8", cfg.Name, got)
		}
		s := Scaled(cfg, 32)
		if s.Mem.DL1.ChunkBytes != cfg.Mem.DL1.ChunkBytes ||
			s.Mem.IL1.ChunkBytes != cfg.Mem.IL1.ChunkBytes ||
			s.Mem.L2.ChunkBytes != cfg.Mem.L2.ChunkBytes {
			t.Errorf("%s: Scaled changed chunk sizes", cfg.Name)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s scaled config invalid: %v", cfg.Name, err)
		}
	}
}

// TestFingerprintDistinguishesConfigurations locks the content-address
// contract: every simulation-relevant difference — including ones hidden
// behind a shared Name — must change the fingerprint, and identical
// configurations must agree (internal/simcache keys depend on both).
func TestFingerprintDistinguishesConfigurations(t *testing.T) {
	base := Baseline()
	if base.Fingerprint() != Baseline().Fingerprint() {
		t.Error("identical configurations fingerprint differently")
	}
	if base.Fingerprint() == ConfigA().Fingerprint() {
		t.Error("Baseline and ConfigA share a fingerprint")
	}
	// The PR 3 aliasing regression: two differently-scaled configurations
	// forced to share a Name must not share a fingerprint.
	a := Scaled(Baseline(), 8)
	b := Scaled(Baseline(), 32)
	b.Name = a.Name
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("configurations sharing a Name alias despite different geometries")
	}
	// Single-field sensitivity across the layers the fingerprint composes.
	mut := Baseline()
	mut.Core.ROBEntries++
	if mut.Fingerprint() == base.Fingerprint() {
		t.Error("core sizing change not reflected")
	}
	mut = Baseline()
	mut.Core.Bpred.GlobalHistBits++
	if mut.Fingerprint() == base.Fingerprint() {
		t.Error("branch-predictor change not reflected")
	}
	mut = Baseline()
	mut.Mem.L2.Ways *= 2
	if mut.Fingerprint() == base.Fingerprint() {
		t.Error("cache geometry change not reflected")
	}
	mut = Baseline()
	mut.Mem.DTLB.Entries *= 2
	if mut.Fingerprint() == base.Fingerprint() {
		t.Error("TLB change not reflected")
	}
	mut = Baseline()
	mut.Mem.MemLatency++
	if mut.Fingerprint() == base.Fingerprint() {
		t.Error("memory latency change not reflected")
	}
}

func TestFaultRatesFingerprint(t *testing.T) {
	if UniformRates(1).Fingerprint() != UniformRates(1).Fingerprint() {
		t.Error("identical rates fingerprint differently")
	}
	set := map[string]bool{}
	for _, r := range []FaultRates{UniformRates(1), RHCRates(), EDRRates()} {
		set[r.Fingerprint()] = true
	}
	if len(set) != 3 {
		t.Errorf("rate sets collapse to %d fingerprints, want 3", len(set))
	}
}

// TestFingerprintCoversEveryField walks the whole Config struct tree
// reflectively, mutating one leaf field at a time and asserting the
// fingerprint changes. The Fingerprint methods compose hand-written
// pieces (Config, HierarchyConfig), so this is what guarantees the
// DESIGN.md §7 property that a future simulation-relevant field cannot
// be silently omitted from cache keys: adding any field — at any depth,
// including bpred.Config and the cache/TLB geometries — that the
// fingerprints miss fails here.
func TestFingerprintCoversEveryField(t *testing.T) {
	cfg := Baseline()
	base := cfg.Fingerprint()
	var walk func(v reflect.Value, path string)
	check := func(path string) {
		if cfg.Fingerprint() == base {
			t.Errorf("mutating %s does not change the fingerprint", path)
		}
	}
	walk = func(v reflect.Value, path string) {
		switch v.Kind() {
		case reflect.Struct:
			tp := v.Type()
			for i := 0; i < v.NumField(); i++ {
				if tp.Field(i).PkgPath != "" {
					t.Fatalf("%s.%s is unexported: %%+v cannot render it — restructure or extend the fingerprint",
						path, tp.Field(i).Name)
				}
				walk(v.Field(i), path+"."+tp.Field(i).Name)
			}
		case reflect.Int:
			old := v.Int()
			v.SetInt(old + 1)
			check(path)
			v.SetInt(old)
		case reflect.String:
			old := v.String()
			v.SetString(old + "'")
			check(path)
			v.SetString(old)
		case reflect.Bool:
			old := v.Bool()
			v.SetBool(!old)
			check(path)
			v.SetBool(old)
		case reflect.Float64:
			old := v.Float()
			v.SetFloat(old + 1)
			check(path)
			v.SetFloat(old)
		default:
			t.Fatalf("%s: unhandled kind %v — extend the test", path, v.Kind())
		}
	}
	walk(reflect.ValueOf(&cfg).Elem(), "Config")
	if cfg.Fingerprint() != base {
		t.Fatal("walk did not restore the configuration")
	}
}
