package pipe_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"avfstress/internal/avf"
	"avfstress/internal/codegen"
	"avfstress/internal/pipe"
	"avfstress/internal/uarch"
	"avfstress/internal/workloads"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden simulator-equivalence file")

// goldenCase is one (config, program, budget) triple whose full avf.Result
// is locked in testdata/golden.json. The matrix spans both configurations,
// both generator variants (L2-miss chase and L2-hit), heavy wrong-path
// workload proxies, warmup and no-warmup budgets, and two cache scales, so
// any behavioural drift in the pipeline core shows up as a bit-level diff.
type goldenCase struct {
	name  string
	cfg   uarch.Config
	knobs *codegen.Knobs // exclusive with workload
	wl    string
	rc    pipe.RunConfig
}

func goldenCases(t *testing.T) []goldenCase {
	t.Helper()
	base := uarch.Scaled(uarch.Baseline(), 32)
	base64 := uarch.Scaled(uarch.Baseline(), 64)
	confA := uarch.Scaled(uarch.ConfigA(), 32)
	kBaseline := codegen.Knobs{LoopSize: 81, NumLoads: 29, NumStores: 28,
		NumIndepArith: 5, MissDependent: 7, AvgChainLength: 2.14,
		DepDistance: 6, FracLongLatency: 0.8, FracRegReg: 0.93, Seed: 42}
	kHit := kBaseline
	kHit.L2Hit = true
	kEDR := codegen.Knobs{LoopSize: 54, NumLoads: 2, NumStores: 6,
		NumIndepArith: 5, MissDependent: 15, AvgChainLength: 6.5,
		DepDistance: 1, FracLongLatency: 0.9, FracRegReg: 0.4, Seed: 42,
		L2Hit: true}
	kConfA := codegen.Knobs{LoopSize: 91, NumLoads: 29, NumStores: 29,
		NumIndepArith: 5, MissDependent: 14, AvgChainLength: 2.14,
		DepDistance: 1, FracLongLatency: 0.6, FracRegReg: 0.96, Seed: 42}
	warm := pipe.RunConfig{MaxInstructions: 30_000, WarmupInstructions: 10_000}
	cold := pipe.RunConfig{MaxInstructions: 20_000}
	return []goldenCase{
		{name: "baseline-chase", cfg: base, knobs: &kBaseline, rc: warm},
		{name: "baseline-chase-cold", cfg: base, knobs: &kBaseline, rc: cold},
		{name: "baseline-l2hit", cfg: base, knobs: &kHit, rc: warm},
		{name: "edr-knobs", cfg: base, knobs: &kEDR, rc: warm},
		{name: "configA-chase", cfg: confA, knobs: &kConfA, rc: warm},
		{name: "baseline-scale64", cfg: base64, knobs: &kBaseline, rc: warm},
		{name: "wl-403.gcc", cfg: base, wl: "403.gcc", rc: warm},
		{name: "wl-429.mcf", cfg: base, wl: "429.mcf", rc: warm},
		{name: "wl-458.sjeng", cfg: base, wl: "458.sjeng", rc: warm},
		{name: "wl-462.libquantum", cfg: confA, wl: "462.libquantum", rc: warm},
	}
}

func runGoldenCase(t *testing.T, gc goldenCase) *avf.Result {
	t.Helper()
	if gc.knobs != nil {
		prog, _, err := codegen.Generate(gc.cfg, *gc.knobs, 1<<40)
		if err != nil {
			t.Fatalf("%s: generate: %v", gc.name, err)
		}
		res, err := pipe.Simulate(gc.cfg, prog, gc.rc)
		if err != nil {
			t.Fatalf("%s: simulate: %v", gc.name, err)
		}
		return res
	}
	pf, err := workloads.ByName(gc.wl)
	if err != nil {
		t.Fatalf("%s: workload: %v", gc.name, err)
	}
	prog, err := pf.Build(gc.cfg, 1)
	if err != nil {
		t.Fatalf("%s: build: %v", gc.name, err)
	}
	res, err := pipe.Simulate(gc.cfg, prog, gc.rc)
	if err != nil {
		t.Fatalf("%s: simulate: %v", gc.name, err)
	}
	return res
}

// TestPoolMatchesFresh proves that a pooled, Reset pipeline is
// bit-identical to a freshly constructed one: every golden case is run
// twice through one Pool per configuration (so the second pass always
// hits a reused pipeline, usually one that last ran a different program)
// and compared against pipe.Simulate on a fresh pipeline.
func TestPoolMatchesFresh(t *testing.T) {
	pools := map[string]*pipe.Pool{}
	poolFor := func(cfg uarch.Config) *pipe.Pool {
		if p, ok := pools[cfg.Name]; ok {
			return p
		}
		p, err := pipe.NewPool(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pools[cfg.Name] = p
		return p
	}
	cases := goldenCases(t)
	for pass := 0; pass < 2; pass++ {
		for _, gc := range cases {
			fresh := runGoldenCase(t, gc)
			var pooled *avf.Result
			var err error
			if gc.knobs != nil {
				prog, _, gerr := codegen.Generate(gc.cfg, *gc.knobs, 1<<40)
				if gerr != nil {
					t.Fatal(gerr)
				}
				pooled, err = poolFor(gc.cfg).Simulate(prog, gc.rc)
			} else {
				pf, werr := workloads.ByName(gc.wl)
				if werr != nil {
					t.Fatal(werr)
				}
				prog, berr := pf.Build(gc.cfg, 1)
				if berr != nil {
					t.Fatal(berr)
				}
				pooled, err = poolFor(gc.cfg).Simulate(prog, gc.rc)
			}
			if err != nil {
				t.Fatalf("pass %d %s: pooled simulate: %v", pass, gc.name, err)
			}
			fj, _ := json.Marshal(fresh)
			pj, _ := json.Marshal(pooled)
			if string(fj) != string(pj) {
				t.Errorf("pass %d %s: pooled result differs from fresh:\n fresh  %s\n pooled %s",
					pass, gc.name, fj, pj)
			}
		}
	}
}

// TestGoldenEquivalence locks the simulator's observable output — every
// per-structure AVF, cycle count, commit count, occupancy and activity
// counter — against testdata/golden.json, captured from the pre-event-queue
// scan-based core. Any refactor of internal/pipe must reproduce these
// bit-identically (floats compared exactly via their shortest round-trip
// JSON encoding). Regenerate deliberately with: go test -run Golden -update.
func TestGoldenEquivalence(t *testing.T) {
	type entry struct {
		Name   string
		Result *avf.Result
	}
	cases := goldenCases(t)
	got := make([]entry, 0, len(cases))
	for _, gc := range cases {
		got = append(got, entry{Name: gc.name, Result: runGoldenCase(t, gc)})
	}
	gotJSON, err := json.MarshalIndent(got, "", "\t")
	if err != nil {
		t.Fatal(err)
	}
	gotJSON = append(gotJSON, '\n')
	path := filepath.Join("testdata", "golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, gotJSON, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d cases)", path, len(got))
		return
	}
	wantJSON, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if string(gotJSON) == string(wantJSON) {
		return
	}
	// Mismatch: report per-case, per-field diffs instead of a JSON dump.
	var want []entry
	if err := json.Unmarshal(wantJSON, &want); err != nil {
		t.Fatalf("parsing golden file: %v", err)
	}
	wantBy := map[string]*avf.Result{}
	for _, e := range want {
		wantBy[e.Name] = e.Result
	}
	for _, e := range got {
		w, ok := wantBy[e.Name]
		if !ok {
			t.Errorf("%s: no golden entry (regenerate with -update)", e.Name)
			continue
		}
		gj, _ := json.Marshal(e.Result)
		wj, _ := json.Marshal(w)
		if string(gj) != string(wj) {
			t.Errorf("%s: result drifted from golden:\n got  %s\n want %s", e.Name, gj, wj)
		}
	}
	if len(got) != len(want) {
		t.Errorf("case count changed: got %d, golden has %d (regenerate with -update)", len(got), len(want))
	}
}
