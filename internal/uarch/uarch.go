// Package uarch holds the microarchitecture configurations evaluated in
// the paper: the Baseline Alpha-21264-like core (Table I), the scaled-up
// Configuration A (Table II), and the circuit-level fault-rate sets for
// the RHC and EDR protection studies (Figure 8a).
package uarch

import (
	"fmt"

	"avfstress/internal/bpred"
	"avfstress/internal/cache"
)

// CoreConfig sizes the out-of-order core.
type CoreConfig struct {
	FetchWidth  int
	MapWidth    int // slot/map (dispatch) width
	IssueWidth  int
	CommitWidth int
	// MemIssuePerCycle caps load+store issues per cycle (2 on the 21264,
	// which the paper calls out as a limiter on LQ/SQ fill rate).
	MemIssuePerCycle int

	IQEntries    int
	IQEntryBits  int
	ROBEntries   int
	ROBEntryBits int
	LQEntries    int
	SQEntries    int
	// LSQEntryBits is the SER-relevant width of one LQ/SQ entry,
	// split evenly between the address/tag part and the data part.
	LSQEntryBits int
	PhysRegs     int
	RegBits      int

	NumALUs    int
	ALULatency int
	NumMuls    int
	MulLatency int

	MispredictPenalty int

	Bpred bpred.Config
}

// Validate reports the first sizing error.
func (c CoreConfig) Validate() error {
	pos := func(name string, v int) error {
		if v <= 0 {
			return fmt.Errorf("uarch: %s must be positive, got %d", name, v)
		}
		return nil
	}
	checks := []struct {
		name string
		v    int
	}{
		{"FetchWidth", c.FetchWidth}, {"MapWidth", c.MapWidth},
		{"IssueWidth", c.IssueWidth}, {"CommitWidth", c.CommitWidth},
		{"MemIssuePerCycle", c.MemIssuePerCycle},
		{"IQEntries", c.IQEntries}, {"IQEntryBits", c.IQEntryBits},
		{"ROBEntries", c.ROBEntries}, {"ROBEntryBits", c.ROBEntryBits},
		{"LQEntries", c.LQEntries}, {"SQEntries", c.SQEntries},
		{"LSQEntryBits", c.LSQEntryBits},
		{"PhysRegs", c.PhysRegs}, {"RegBits", c.RegBits},
		{"NumALUs", c.NumALUs}, {"ALULatency", c.ALULatency},
		{"NumMuls", c.NumMuls}, {"MulLatency", c.MulLatency},
		{"MispredictPenalty", c.MispredictPenalty},
	}
	for _, ch := range checks {
		if err := pos(ch.name, ch.v); err != nil {
			return err
		}
	}
	if c.PhysRegs < 34 {
		return fmt.Errorf("uarch: PhysRegs %d too small: need 31 architected + headroom", c.PhysRegs)
	}
	if c.LSQEntryBits%2 != 0 {
		return fmt.Errorf("uarch: LSQEntryBits %d must be even (addr/data split)", c.LSQEntryBits)
	}
	return nil
}

// FUBits returns the SER-relevant bit count of the functional units: each
// ALU contributes width×latency (pipeline-stage) bits, as does each
// multiplier.
func (c CoreConfig) FUBits() uint64 {
	return uint64(c.NumALUs*c.ALULatency+c.NumMuls*c.MulLatency) * uint64(c.RegBits)
}

// Config is a complete processor configuration.
type Config struct {
	Name string
	Core CoreConfig
	Mem  cache.HierarchyConfig
}

// Fingerprint returns a canonical, collision-resistant description of
// everything that can influence a simulation on this configuration:
// the name (which reaches avf.Result.Config and hence rendered output),
// every core sizing field including the branch-predictor geometry, and
// the full memory hierarchy. internal/simcache hashes it into cache
// keys, so two configurations that merely share a Name — e.g. the same
// config at two cache scales — can never alias. %+v renders every
// struct field in declaration order; adding a field changes the
// fingerprint and thereby invalidates stale cache entries, which is the
// safe direction (DESIGN.md §7).
func (c Config) Fingerprint() string {
	return fmt.Sprintf("uarch.Config{Name:%q Core:%+v Mem:%s}",
		c.Name, c.Core, c.Mem.Fingerprint())
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	if err := c.Core.Validate(); err != nil {
		return fmt.Errorf("%s: %w", c.Name, err)
	}
	if err := c.Mem.Validate(); err != nil {
		return fmt.Errorf("%s: %w", c.Name, err)
	}
	return nil
}

// Baseline returns the paper's Table I configuration (Alpha 21264-like).
// Main-memory latency is not given in the table; 200 cycles is used,
// which is in line with SimAlpha's DRAM model.
func Baseline() Config {
	return Config{
		Name: "Baseline",
		Core: CoreConfig{
			FetchWidth: 4, MapWidth: 4, IssueWidth: 4, CommitWidth: 4,
			MemIssuePerCycle: 2,
			IQEntries:        20, IQEntryBits: 32,
			ROBEntries: 80, ROBEntryBits: 76,
			LQEntries: 32, SQEntries: 32, LSQEntryBits: 128,
			PhysRegs: 80, RegBits: 64,
			NumALUs: 4, ALULatency: 1,
			NumMuls: 1, MulLatency: 7,
			MispredictPenalty: 7,
			Bpred:             bpred.DefaultConfig(),
		},
		Mem: cache.HierarchyConfig{
			// Chunk sizes are the GCD of each cache's access stream — the
			// pipeline issues 8-byte data accesses and 4-byte fetches, and
			// refills/writebacks move whole lines — so chunk-granular
			// lifetime tracking is lossless (DESIGN.md §5).
			IL1: cache.Config{Name: "IL1", SizeBytes: 64 << 10, LineBytes: 64, Ways: 2, HitLatency: 1, ChunkBytes: 4},
			DL1: cache.Config{Name: "DL1", SizeBytes: 64 << 10, LineBytes: 64, Ways: 2, HitLatency: 3, ChunkBytes: 8},
			L2:  cache.Config{Name: "L2", SizeBytes: 1 << 20, LineBytes: 64, Ways: 1, HitLatency: 7, ChunkBytes: 8},
			DTLB: cache.TLBConfig{
				Name: "DTLB", Entries: 256, PageBytes: 8 << 10,
				EntryBits: 80, WalkLatency: 30,
			},
			MemLatency: 200,
		},
	}
}

// Scaled returns cfg with every cache and the DTLB shrunk by factor
// (which must be a positive power of two), leaving the core — the
// subject of the paper's Table I/II — untouched. The paper simulates
// 100M-instruction SimPoints on full-size memories; scaling the storage
// arrays preserves every AVF mechanism (miss-shadow occupancy, lifetime
// coverage, eviction behaviour) while letting runs of a few hundred
// thousand instructions traverse the arrays several times, which is what
// the lifetime analysis needs to reach steady state. DESIGN.md §4
// documents this substitution; pass factor 1 for the paper-exact
// geometry.
func Scaled(cfg Config, factor int) Config {
	// Round down to a power of two so the scaled geometries stay valid.
	f := 1
	for f*2 <= factor {
		f *= 2
	}
	factor = f
	if factor <= 1 {
		return cfg
	}
	cfg.Name = fmt.Sprintf("%s/s%d", cfg.Name, factor)
	shrink := func(c *cache.Config) {
		c.SizeBytes /= factor
		if min := c.LineBytes * c.Ways; c.SizeBytes < min {
			c.SizeBytes = min
		}
	}
	shrink(&cfg.Mem.IL1)
	shrink(&cfg.Mem.DL1)
	shrink(&cfg.Mem.L2)
	cfg.Mem.DTLB.Entries /= factor
	if cfg.Mem.DTLB.Entries < 4 {
		cfg.Mem.DTLB.Entries = 4
	}
	return cfg
}

// ConfigA returns the paper's Table II configuration: same pipeline
// widths, larger IQ/ROB/rename file, four multipliers, a 4-way DL1, a
// 512-entry DTLB and a 2MB 8-way L2 with 12-cycle latency.
func ConfigA() Config {
	c := Baseline()
	c.Name = "ConfigA"
	c.Core.IQEntries = 32
	c.Core.ROBEntries = 96
	c.Core.PhysRegs = 96
	c.Core.NumMuls = 4
	c.Mem.DL1.Ways = 4
	c.Mem.DTLB.Entries = 512
	c.Mem.L2 = cache.Config{Name: "L2", SizeBytes: 2 << 20, LineBytes: 64, Ways: 8, HitLatency: 12, ChunkBytes: 8}
	return c
}
