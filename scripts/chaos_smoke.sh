#!/bin/sh
# chaos_smoke proves the daemon's crash-safety contract end to end
# (DESIGN.md §11), across three daemon lives on one journal + cache:
#
#  1. Baseline: an uninterrupted run of the spec; its report is the
#     byte-exact reference.
#  2. Crash: the same spec on fresh state, SIGKILLed mid-campaign once
#     at least one result is durably cached. The restarted daemon must
#     resubmit the journalled job and reproduce the baseline report
#     byte-identically — warm, with cache hits from the first life.
#  3. Corruption: a byte of a cached result is flipped on disk. The
#     next run must quarantine the damaged entry, re-simulate, and
#     still render the baseline report byte-identically.
set -eu

DIR=${CHAOS_SMOKE_DIR:-$PWD/.chaos-smoke}
ADDR=${CHAOS_SMOKE_ADDR:-127.0.0.1:18735}
BASE="http://$ADDR"
SPEC='{"scenarios":["fig3"],"mode":"reference","workload_instr":100000,"workload_warmup":20000}'

rm -rf "$DIR"
mkdir -p "$DIR"
go build -o "$DIR/avfstressd" ./cmd/avfstressd

PID=
start_daemon() { # $1 = state dir, $2 = log tag
    "$DIR/avfstressd" -addr "$ADDR" -cache-dir "$1/cache" -journal "$1/jobs.journal" \
        -max-jobs 1 >>"$DIR/$2.log" 2>&1 &
    PID=$!
    i=0
    until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 100 ]; then
            echo "chaos-smoke: daemon ($2) never became healthy" >&2
            cat "$DIR/$2.log" >&2
            exit 1
        fi
        sleep 0.1
    done
}
stop_daemon() { # graceful
    kill "$PID" 2>/dev/null || true
    wait "$PID" 2>/dev/null || true
    PID=
}
cleanup() { [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true; }
trap cleanup EXIT

submit() { curl -fsS -X POST -d "$SPEC" "$BASE/v1/jobs" | grep -o '"id": *"job-[0-9]*"' | head -1 | grep -o 'job-[0-9]*'; }
job_status() { curl -fsS "$BASE/v1/jobs/$1" | grep -o '"status": *"[a-z]*"' | head -1 | cut -d'"' -f4; }
field() { curl -fsS "$BASE/v1/results/$1" | grep -o "\"$2\": *[0-9]*" | head -1 | grep -o '[0-9]*$'; }

wait_done() {
    i=0
    while :; do
        st=$(job_status "$1")
        case "$st" in
        done) return 0 ;;
        failed | canceled)
            echo "chaos-smoke: job $1 ended $st" >&2
            curl -fsS "$BASE/v1/jobs/$1" >&2 || true
            exit 1
            ;;
        esac
        i=$((i + 1))
        if [ "$i" -ge 1200 ]; then
            echo "chaos-smoke: job $1 never finished" >&2
            exit 1
        fi
        sleep 0.2
    done
}

# --- Life 0: the uninterrupted baseline -----------------------------
start_daemon "$DIR/base" base
idb=$(submit)
wait_done "$idb"
curl -fsS "$BASE/v1/results/$idb?format=text" >"$DIR/base_report.txt"
stop_daemon
echo "chaos-smoke: baseline $idb done ($(wc -c <"$DIR/base_report.txt") report bytes)"

# --- Life 1: SIGKILL mid-campaign -----------------------------------
start_daemon "$DIR/chaos" chaos
idc=$(submit)
# Wait until at least one simulation result is durably cached, so the
# recovered run is provably warm — then kill without warning.
i=0
until find "$DIR/chaos/cache" -name '*.json' -type f 2>/dev/null | grep -q .; do
    if [ "$(job_status "$idc")" = done ]; then
        echo "chaos-smoke: job finished before it could be killed (spec too small)" >&2
        exit 1
    fi
    i=$((i + 1))
    if [ "$i" -ge 600 ]; then
        echo "chaos-smoke: no result ever reached the disk cache" >&2
        exit 1
    fi
    sleep 0.05
done
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=
echo "chaos-smoke: killed the daemon mid-campaign ($idc running)"

# --- Life 2: restart, recover, compare ------------------------------
start_daemon "$DIR/chaos" chaos2
if ! grep -q 'resubmitted 1 unfinished' "$DIR/chaos2.log"; then
    echo "chaos-smoke: restarted daemon did not resubmit the journalled job" >&2
    cat "$DIR/chaos2.log" >&2
    exit 1
fi
wait_done "$idc"
curl -fsS "$BASE/v1/results/$idc?format=text" >"$DIR/recovered_report.txt"
cmp "$DIR/base_report.txt" "$DIR/recovered_report.txt"
mem=$(field "$idc" mem_hits)
disk=$(field "$idc" disk_hits)
dedup=$(field "$idc" deduped)
hits=$((${mem:-0} + ${disk:-0} + ${dedup:-0}))
if [ "$hits" -le 0 ]; then
    echo "chaos-smoke: recovery was cold (no cache hits)" >&2
    exit 1
fi
echo "chaos-smoke: $idc recovered byte-identical with $hits cache hits"

# --- Life 3: flip a cached byte, expect quarantine not corruption ----
victim=$(find "$DIR/chaos/cache" -name '*.json' -type f | head -1)
printf '\377' | dd of="$victim" bs=1 seek=24 count=1 conv=notrunc 2>/dev/null
stop_daemon
start_daemon "$DIR/chaos" chaos3
idq=$(submit)
wait_done "$idq"
curl -fsS "$BASE/v1/results/$idq?format=text" >"$DIR/quarantine_report.txt"
cmp "$DIR/base_report.txt" "$DIR/quarantine_report.txt"
if ! find "$DIR/chaos/cache" -path '*/quarantine/*' -type f | grep -q .; then
    echo "chaos-smoke: corrupted entry was not quarantined" >&2
    exit 1
fi
quar=$(field "$idq" quarantined)
if [ "${quar:-0}" -le 0 ]; then
    echo "chaos-smoke: job stats carry no quarantine count" >&2
    exit 1
fi
curl -fsS "$BASE/v1/healthz" | grep -q '"status": "ok"' || {
    echo "chaos-smoke: daemon unhealthy after quarantine" >&2
    exit 1
}
echo "chaos-smoke OK: recovery byte-identical and warm; corruption quarantined (${quar:-0} entries), report unchanged"
stop_daemon
rm -rf "$DIR"
