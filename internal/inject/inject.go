// Package inject is the Monte Carlo statistical fault-injection
// campaign engine (DESIGN.md §9): the standard cross-check for an
// ACE-based AVF estimator. A campaign samples single-bit fault targets
// (structure, bit, cycle) uniformly over the bit-cycle space of a
// golden (fault-free) simulation, replays the run deterministically
// with each fault injected (internal/pipe.RunFault), classifies every
// trial as masked, SDC or detected, and aggregates per-structure and
// derated AVF estimates with 95% binomial confidence intervals — which
// the ACE-based AVF must fall inside for the estimator to validate.
//
// Campaigns are deterministic end to end: targets derive from a
// splitmix64 stream seeded by (Seed, structure, trial index), replays
// are pure functions of (config, program, budget, fault), and the
// rendered report is byte-identical across runs, worker counts and
// cache states. Trials fan out as deduplicated jobs through
// internal/sched and memoise their outcomes in internal/simcache keyed
// by (golden fingerprint, target), so overlapping campaigns and warm
// re-runs replay only the marginal trials.
package inject

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"avfstress/internal/avf"
	"avfstress/internal/pipe"
	"avfstress/internal/prog"
	"avfstress/internal/report"
	"avfstress/internal/scenario"
	"avfstress/internal/sched"
	"avfstress/internal/simcache"
	"avfstress/internal/uarch"
)

// Options parameterises one campaign.
type Options struct {
	// Config is the microarchitecture under injection.
	Config uarch.Config
	// Program is the workload whose golden run defines the sampling
	// space.
	Program *prog.Program
	// Run budgets the golden run and every replay.
	Run pipe.RunConfig
	// Rates weight the derated aggregate and define the outcome
	// taxonomy: a structure with rate zero is detection-protected (EDR),
	// so its corrupting trials classify as detected (DUE), not SDC. The
	// zero value means uniform 1 unit/bit.
	Rates uarch.FaultRates
	// Trials is the total trial budget, allocated to structures in
	// proportion to their bit counts (default 1000).
	Trials int
	// MinPerStructure floors each structure's allocation so small
	// structures still get a usable stratum (default 16; the aggregate
	// estimator is stratified, so allocation affects variance only, not
	// bias).
	MinPerStructure int
	// Seed drives target sampling (default 1).
	Seed int64
	// Structures restricts the campaign (default: every SER-tracked
	// structure).
	Structures []uarch.Structure
	// Parallelism bounds concurrent trial replays (0 = GOMAXPROCS).
	Parallelism int
	// Cache, when set, memoises per-trial outcomes content-addressed by
	// (golden fingerprint, target); nil replays every trial.
	Cache *simcache.Store
}

func (o Options) withDefaults() Options {
	var zero uarch.FaultRates
	if o.Rates == zero {
		o.Rates = uarch.UniformRates(1)
	}
	if o.Trials <= 0 {
		o.Trials = 1000
	}
	if o.MinPerStructure <= 0 {
		o.MinPerStructure = 16
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Structures) == 0 {
		o.Structures = make([]uarch.Structure, uarch.NumStructures)
		for s := range o.Structures {
			o.Structures[s] = uarch.Structure(s)
		}
	}
	return o
}

// Interval is a confidence interval.
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether x lies inside the interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// StructureResult is one campaign stratum.
type StructureResult struct {
	Structure uarch.Structure
	Bits      uint64
	Trials    int
	SDC       int
	Detected  int
	Masked    int
	// AVF is the injection-measured vulnerability (SDC+Detected)/Trials
	// — detection changes the outcome class, not the underlying
	// vulnerability — with its Wilson 95% confidence interval and the
	// golden run's ACE-based AVF beside it.
	AVF float64
	CI  Interval
	ACE float64
}

// Result is the outcome of one campaign.
type Result struct {
	Config   string
	Workload string
	Seed     int64
	Trials   int // trials actually run (≥ Options.Trials after flooring)

	// Golden is the fault-free run the campaign validates, GoldenDigest
	// its committed-state digest (the reference of every replay's
	// architectural-state diff) and WindowStart/WindowCycles the sampled
	// cycle space.
	Golden       *avf.Result
	GoldenDigest uint64
	WindowStart  int64
	WindowCycles int64

	Structures []StructureResult

	// AVF is the bit-weighted injection-measured AVF over the campaign's
	// structures with its stratified 95% confidence interval; ACEAVF is
	// the bit-weighted ACE counterpart. Derated* repeat the comparison
	// under the fault-rate weighting (rate×bits per structure).
	AVF        float64
	CI         Interval
	ACEAVF     float64
	DeratedAVF float64
	DeratedCI  Interval
	DeratedACE float64

	SDC, Detected, Masked int
}

// rng is a splitmix64 stream: a fixed, documented generator so
// campaigns are reproducible across platforms and Go versions
// (math/rand's stream is not part of its compatibility promise).
// The full sequential construction — golden-gamma counter plus
// finalizer — is used rather than ad-hoc finalizer hashing of trial
// indices: the finalizer alone over near-identical inputs leaves
// measurable structure in the low bits that the modulo reductions
// consume, enough to push a thousand-trial stratum several sigma off
// its mean.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// stratumRNG returns the sampling stream of one structure's stratum,
// decorrelated from the seed and the structure index by one finalizer
// round each.
func stratumRNG(seed int64, s uarch.Structure) rng {
	r := rng{state: uint64(seed)}
	a := r.next()
	r.state = a ^ (uint64(s)+1)*0xbf58476d1ce4e5b9
	b := r.next()
	return rng{state: a ^ b}
}

// allocate splits the trial budget across structures proportionally to
// weight (largest-remainder rounding, ties broken in structure order),
// then floors every stratum at min. Deterministic.
func allocate(total, min int, weights []float64) []int {
	n := make([]int, len(weights))
	rem := make([]float64, len(weights))
	allocated := 0
	for i, w := range weights {
		exact := float64(total) * w
		n[i] = int(exact)
		rem[i] = exact - float64(n[i])
		allocated += n[i]
	}
	for allocated < total {
		best := -1
		for i := range rem {
			if best < 0 || rem[i] > rem[best] {
				best = i
			}
		}
		n[best]++
		rem[best] = -1
		allocated++
	}
	for i := range n {
		if n[i] < min {
			n[i] = min
		}
	}
	return n
}

// Run executes the campaign: one golden simulation, then Trials fault
// replays fanned out as deduplicated jobs on internal/sched. The
// context cancels between replays.
func Run(ctx context.Context, o Options) (*Result, error) {
	o = o.withDefaults()
	if err := o.Config.Validate(); err != nil {
		return nil, err
	}
	if o.Program == nil {
		return nil, fmt.Errorf("inject: no program")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pool, err := pipe.NewPool(o.Config)
	if err != nil {
		return nil, err
	}
	golden, info, err := pool.SimulateGolden(o.Program, o.Run)
	if err != nil {
		return nil, fmt.Errorf("inject: golden run: %w", err)
	}
	if info.Cycles <= 0 {
		return nil, fmt.Errorf("inject: golden run measured no cycles")
	}

	// Sample every target up front (deterministic), deduplicating
	// repeated targets into one replay feeding every trial slot.
	weights := make([]float64, len(o.Structures))
	var totalBits float64
	bits := make([]uint64, len(o.Structures))
	for i, s := range o.Structures {
		bits[i] = uarch.Bits(o.Config, s)
		totalBits += float64(bits[i])
	}
	if totalBits == 0 {
		return nil, fmt.Errorf("inject: campaign structures have no bits")
	}
	for i := range weights {
		weights[i] = float64(bits[i]) / totalBits
	}
	alloc := allocate(o.Trials, o.MinPerStructure, weights)

	type slot struct{ stratum, idx int }
	outcomes := make([][]bool, len(o.Structures)) // corrupted per trial
	targets := map[pipe.Fault][]slot{}
	var order []pipe.Fault // deterministic job order
	for i, s := range o.Structures {
		outcomes[i] = make([]bool, alloc[i])
		r := stratumRNG(o.Seed, s)
		for t := 0; t < alloc[i]; t++ {
			f := pipe.Fault{
				Structure: s,
				Bit:       r.next() % bits[i],
				Cycle:     info.WindowStart + int64(r.next()%uint64(info.Cycles)),
			}
			if _, ok := targets[f]; !ok {
				order = append(order, f)
			}
			targets[f] = append(targets[f], slot{i, t})
		}
	}

	cfgFP := o.Config.Fingerprint()
	progFP := "prog:" + o.Program.Fingerprint()
	rcFP := o.Run.Fingerprint()
	var mu sync.Mutex
	jobs := make([]scenario.Job, 0, len(order))
	for _, f := range order {
		f, slots := f, targets[f]
		jobs = append(jobs, scenario.Job{
			Key: "injtrial\x00" + cfgFP + "\x00" + progFP + "\x00" + rcFP + "\x00" + f.Fingerprint(),
			Run: func(ctx context.Context) error {
				if err := ctx.Err(); err != nil {
					return err
				}
				key := o.Cache.Key(cfgFP, progFP, rcFP, "injtrial:"+f.Fingerprint())
				b, err := o.Cache.DoBlob(key, func() ([]byte, error) {
					corrupted, err := pool.SimulateFault(o.Program, o.Run, f)
					if err != nil {
						return nil, fmt.Errorf("inject: trial %s: %w", f.Fingerprint(), err)
					}
					if corrupted {
						return []byte{1}, nil
					}
					return []byte{0}, nil
				})
				if err != nil {
					return err
				}
				corrupted := len(b) == 1 && b[0] == 1
				mu.Lock()
				for _, sl := range slots {
					outcomes[sl.stratum][sl.idx] = corrupted
				}
				mu.Unlock()
				return nil
			},
		})
	}
	if err := sched.Run(ctx, jobs, sched.Options{Workers: o.Parallelism}); err != nil {
		return nil, err
	}

	// Aggregate.
	res := &Result{
		Config:       golden.Config,
		Workload:     golden.Workload,
		Seed:         o.Seed,
		Golden:       golden,
		GoldenDigest: info.Digest,
		WindowStart:  info.WindowStart,
		WindowCycles: info.Cycles,
	}
	for i, s := range o.Structures {
		sr := StructureResult{Structure: s, Bits: bits[i], Trials: alloc[i], ACE: golden.AVF[s]}
		protected := o.Rates[s] == 0
		for _, corrupted := range outcomes[i] {
			switch {
			case !corrupted:
				sr.Masked++
			case protected:
				sr.Detected++
			default:
				sr.SDC++
			}
		}
		vuln := sr.SDC + sr.Detected
		if sr.Trials > 0 {
			sr.AVF = float64(vuln) / float64(sr.Trials)
		}
		sr.CI = wilson(vuln, sr.Trials)
		res.Structures = append(res.Structures, sr)
		res.Trials += sr.Trials
		res.SDC += sr.SDC
		res.Detected += sr.Detected
		res.Masked += sr.Masked
	}
	res.AVF, res.CI, res.ACEAVF = res.aggregate(func(sr StructureResult) float64 {
		return float64(sr.Bits)
	})
	res.DeratedAVF, res.DeratedCI, res.DeratedACE = res.aggregate(func(sr StructureResult) float64 {
		return o.Rates[sr.Structure] * float64(sr.Bits)
	})
	return res, nil
}

// aggregate combines the strata under the given weighting into the
// weighted AVF estimate, its stratified 95% confidence interval, and
// the weighted ACE counterpart.
func (r *Result) aggregate(weight func(StructureResult) float64) (est float64, ci Interval, ace float64) {
	var totalW float64
	for _, sr := range r.Structures {
		totalW += weight(sr)
	}
	if totalW == 0 {
		return 0, Interval{}, 0
	}
	var v float64 // variance of the stratified estimator
	for _, sr := range r.Structures {
		w := weight(sr) / totalW
		est += w * sr.AVF
		ace += w * sr.ACE
		if sr.Trials > 0 {
			v += w * w * sr.AVF * (1 - sr.AVF) / float64(sr.Trials)
		}
	}
	return est, normalCI(est, v), ace
}

// TotalBits returns the campaign's sampled bit count.
func (r *Result) TotalBits() uint64 {
	var total uint64
	for _, sr := range r.Structures {
		total += sr.Bits
	}
	return total
}

// Rows renders the campaign as injection-table rows: one per structure
// (campaign order) plus the bit-weighted "overall" aggregate, whose
// outcome counts reconcile exactly with its AVF column. The
// rate-derated aggregate reweights the same trials per structure, so
// its value cannot be recomputed from pooled counts — String reports
// it as a separate line instead of a row with contradictory columns.
func (r *Result) Rows() []report.InjectionRow {
	rows := make([]report.InjectionRow, 0, len(r.Structures)+1)
	for _, sr := range r.Structures {
		rows = append(rows, report.InjectionRow{
			Label: sr.Structure.String(), Bits: sr.Bits, Trials: sr.Trials,
			SDC: sr.SDC, Detected: sr.Detected, Masked: sr.Masked,
			AVF: sr.AVF, Lo: sr.CI.Lo, Hi: sr.CI.Hi, ACE: sr.ACE,
		})
	}
	rows = append(rows, report.InjectionRow{
		Label: "overall", Bits: r.TotalBits(), Trials: r.Trials,
		SDC: r.SDC, Detected: r.Detected, Masked: r.Masked,
		AVF: r.AVF, Lo: r.CI.Lo, Hi: r.CI.Hi, ACE: r.ACEAVF,
	})
	return rows
}

// DeratedLine renders the rate-weighted comparison as one line.
func (r *Result) DeratedLine() string {
	return fmt.Sprintf("derated (rate-weighted): AVF %.4f [%.4f, %.4f] vs ACE %.4f",
		r.DeratedAVF, r.DeratedCI.Lo, r.DeratedCI.Hi, r.DeratedACE)
}

// String renders the campaign report.
func (r *Result) String() string {
	var b strings.Builder
	title := fmt.Sprintf("Injection campaign — %s on %s (%d trials, seed %d)",
		r.Config, r.Workload, r.Trials, r.Seed)
	b.WriteString(report.InjectionTable(title, r.Rows()))
	fmt.Fprintf(&b, "%s\ngolden: %d instrs, %d cycles, digest %016x\n",
		r.DeratedLine(), r.Golden.Instructions, r.WindowCycles, r.GoldenDigest)
	return b.String()
}
