package cache

import (
	"math/rand"
	"testing"
)

// refCache is the retained byte-granular reference implementation of the
// Biswas lifetime engine: a direct port of the pre-chunk per-byte state
// machine with the original Probe → Fill → Touch composite walks. The
// differential tests replay identical access streams through it and the
// chunk engine and require bit-identical accounting.
type refCache struct {
	cfg      Config
	sets     int
	lineBits uint
	setMask  uint64

	tag        []uint64
	valid      []bool
	lru        []int64
	fillTime   []int64
	lastAceEnd []int64
	byteState  [][]uint8
	byteTime   [][]int64

	aceByteCycles uint64
	tagAceCycles  uint64
	windowStart   int64

	accesses          uint64
	misses            uint64
	writebacks        uint64
	writebackAccesses uint64
	writebackMisses   uint64
}

func newRefCache(cfg Config) *refCache {
	sets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	n := sets * cfg.Ways
	r := &refCache{
		cfg:        cfg,
		sets:       sets,
		setMask:    uint64(sets - 1),
		tag:        make([]uint64, n),
		valid:      make([]bool, n),
		lru:        make([]int64, n),
		fillTime:   make([]int64, n),
		lastAceEnd: make([]int64, n),
		byteState:  make([][]uint8, n),
		byteTime:   make([][]int64, n),
	}
	for b := cfg.LineBytes; b > 1; b >>= 1 {
		r.lineBits++
	}
	for i := 0; i < n; i++ {
		r.byteState[i] = make([]uint8, cfg.LineBytes)
		r.byteTime[i] = make([]int64, cfg.LineBytes)
	}
	return r
}

func (r *refCache) index(addr uint64) (set int, tag uint64) {
	l := addr >> r.lineBits
	return int(l & r.setMask), l >> uint(log2(r.sets))
}

func (r *refCache) find(addr uint64) int {
	set, tag := r.index(addr)
	for w := 0; w < r.cfg.Ways; w++ {
		i := set*r.cfg.Ways + w
		if r.valid[i] && r.tag[i] == tag {
			return i
		}
	}
	return -1
}

func (r *refCache) probe(addr uint64) bool { return r.find(addr) >= 0 }

func (r *refCache) addAce(i int, t0, t1 int64) {
	if t0 < r.windowStart {
		t0 = r.windowStart
	}
	if t1 > t0 {
		r.aceByteCycles += uint64(t1 - t0)
		if t1 > r.lastAceEnd[i] {
			r.lastAceEnd[i] = t1
		}
	}
}

func (r *refCache) closeByte(i, b int, now int64, write bool) {
	st := r.byteState[i][b]
	t0 := r.byteTime[i][b]
	if st != stInvalid && !write {
		r.addAce(i, t0, now)
	}
	if write {
		r.byteState[i][b] = stWrite
	} else {
		r.byteState[i][b] = stRead
	}
	r.byteTime[i][b] = now
}

func (r *refCache) touch(t *testing.T, now int64, addr uint64, size int, write bool) {
	t.Helper()
	i := r.find(addr)
	if i < 0 {
		t.Fatalf("ref: touch of non-resident %#x", addr)
	}
	off := int(addr & uint64(r.cfg.LineBytes-1))
	r.lru[i] = now
	r.accesses++
	for b := off; b < off+size; b++ {
		r.closeByte(i, b, now, write)
	}
}

func (r *refCache) touchMask(t *testing.T, now int64, addr uint64, mask uint64) {
	t.Helper()
	i := r.find(addr)
	if i < 0 {
		t.Fatalf("ref: masked touch of non-resident %#x", addr)
	}
	r.lru[i] = now
	r.writebackAccesses++
	for b := 0; b < r.cfg.LineBytes; b++ {
		if mask&(1<<uint(b)) != 0 {
			r.closeByte(i, b, now, true)
		}
	}
}

func (r *refCache) fill(t *testing.T, now int64, addr uint64) (wb Writeback, dirty bool) {
	t.Helper()
	if r.find(addr) >= 0 {
		t.Fatalf("ref: double fill of %#x", addr)
	}
	set, tag := r.index(addr)
	victim := set * r.cfg.Ways
	for w := 1; w < r.cfg.Ways; w++ {
		i := set*r.cfg.Ways + w
		if !r.valid[i] {
			victim = i
			break
		}
		if r.valid[victim] && r.lru[i] < r.lru[victim] {
			victim = i
		}
	}
	if r.valid[victim] {
		wb, dirty = r.evict(victim, now, set)
	}
	r.misses++
	r.valid[victim] = true
	r.tag[victim] = tag
	r.lru[victim] = now
	r.fillTime[victim] = now
	r.lastAceEnd[victim] = now
	for b := 0; b < r.cfg.LineBytes; b++ {
		r.byteState[victim][b] = stFill
		r.byteTime[victim][b] = now
	}
	return wb, dirty
}

func (r *refCache) evict(i int, now int64, set int) (wb Writeback, dirty bool) {
	var mask uint64
	for b := 0; b < r.cfg.LineBytes; b++ {
		if r.byteState[i][b] == stWrite {
			r.addAce(i, r.byteTime[i][b], now)
			mask |= 1 << uint(b)
		}
		r.byteState[i][b] = stInvalid
	}
	t0 := r.fillTime[i]
	if t0 < r.windowStart {
		t0 = r.windowStart
	}
	if r.lastAceEnd[i] > t0 {
		r.tagAceCycles += uint64(r.lastAceEnd[i] - t0)
	}
	r.valid[i] = false
	if mask != 0 {
		r.writebacks++
		la := (r.tag[i]<<uint(log2(r.sets)) | uint64(set)) << r.lineBits
		return Writeback{Addr: la, DirtyMask: mask}, true
	}
	return Writeback{}, false
}

func (r *refCache) finalize(now int64) {
	for set := 0; set < r.sets; set++ {
		for w := 0; w < r.cfg.Ways; w++ {
			i := set*r.cfg.Ways + w
			if r.valid[i] {
				r.evict(i, now, set)
			}
		}
	}
}

// diffOp is one access of a replayable aligned stream.
type diffOp struct {
	now   int64
	addr  uint64
	size  int
	write bool
	// whole-line read through ReadLine (L1-miss path) when lineRead;
	// writeback-mask apply when mask != 0.
	lineRead bool
	mask     uint64
}

// genStream builds a random chunk-aligned access stream over a small
// address space, mixing demand reads/writes, whole-line reads and
// writeback-mask applications.
func genStream(rng *rand.Rand, n, lineBytes, chunkBytes int) []diffOp {
	ops := make([]diffOp, 0, n)
	now := int64(0)
	cpl := lineBytes / chunkBytes
	for i := 0; i < n; i++ {
		now += int64(rng.Intn(7) + 1)
		line := uint64(rng.Intn(24)) * uint64(lineBytes)
		switch rng.Intn(10) {
		case 0: // whole-line read (the L2 path)
			ops = append(ops, diffOp{now: now, addr: line, lineRead: true})
		case 1: // writeback mask covering 1..cpl random chunks
			var mask uint64
			unit := uint64(1)<<uint(chunkBytes) - 1
			for c := 0; c < cpl; c++ {
				if rng.Intn(2) == 0 {
					mask |= unit << uint(c*chunkBytes)
				}
			}
			if mask == 0 {
				mask = unit
			}
			ops = append(ops, diffOp{now: now, addr: line, mask: mask})
		default: // chunk-aligned demand access
			nChunks := 1 + rng.Intn(2)
			maxStart := cpl - nChunks
			off := uint64(rng.Intn(maxStart+1) * chunkBytes)
			ops = append(ops, diffOp{
				now: now, addr: line + off, size: nChunks * chunkBytes,
				write: rng.Intn(3) == 0,
			})
		}
	}
	return ops
}

// TestDifferentialChunkVsByteReference replays random aligned access
// streams through the chunk engine (at several granularities) and the
// retained byte-granular reference, requiring identical ACE totals
// (data and tag), miss/access/writeback counts and writeback masks.
func TestDifferentialChunkVsByteReference(t *testing.T) {
	const lineBytes = 64
	for _, chunk := range []int{1, 4, 8, 16} {
		for seed := int64(1); seed <= 12; seed++ {
			rng := rand.New(rand.NewSource(seed))
			ops := genStream(rng, 300, lineBytes, chunk)

			cfg := Config{Name: "diff", SizeBytes: 8 * lineBytes * 2,
				LineBytes: lineBytes, Ways: 2, HitLatency: 1, ChunkBytes: chunk}
			c := MustNew(cfg)
			ref := newRefCache(cfg)

			var cWBs, rWBs []Writeback
			for _, op := range ops {
				switch {
				case op.lineRead:
					// Chunk engine: single-walk ReadLine. Reference: the
					// original Probe+Fill+Touch composite.
					c.ReadLine(op.now, op.now, op.addr)
					if ref.find(op.addr) < 0 {
						ref.fill(t, op.now, op.addr)
					}
					ref.accesses++
					i := ref.find(op.addr)
					ref.lru[i] = op.now
					for b := 0; b < lineBytes; b++ {
						ref.closeByte(i, b, op.now, false)
					}
				case op.mask != 0:
					c.WriteMask(op.now, op.addr, op.mask)
					if ref.find(op.addr) < 0 {
						// Write-allocate: counted as a writeback miss, not a
						// demand miss.
						ref.fill(t, op.now, op.addr)
						ref.misses--
						ref.writebackMisses++
					}
					ref.touchMask(t, op.now, op.addr, op.mask)
				default:
					if c.Access(op.now, op.addr, op.size, op.write) {
						if ref.find(op.addr) < 0 {
							t.Fatalf("chunk=%d seed=%d: residency diverged at %#x", chunk, seed, op.addr)
						}
						ref.touch(t, op.now, op.addr, op.size, op.write)
					} else {
						wb, dirty := c.FillTouch(op.now, op.now+1, op.addr, op.size, op.write)
						if dirty {
							cWBs = append(cWBs, wb)
						}
						rwb, rdirty := ref.fill(t, op.now, op.addr)
						if rdirty {
							rWBs = append(rWBs, rwb)
						}
						ref.touch(t, op.now+1, op.addr, op.size, op.write)
					}
				}
			}

			end := ops[len(ops)-1].now + 10
			c.Finalize(end)
			ref.finalize(end)

			if got, want := c.aceBytes(), ref.aceByteCycles; got != want {
				t.Fatalf("chunk=%d seed=%d: data ACE %d byte-cycles, reference %d", chunk, seed, got, want)
			}
			if got, want := c.tagAceCycles, ref.tagAceCycles; got != want {
				t.Fatalf("chunk=%d seed=%d: tag ACE %d, reference %d", chunk, seed, got, want)
			}
			if c.Misses != ref.misses || c.WritebackMisses != ref.writebackMisses || c.Writebacks != ref.writebacks {
				t.Fatalf("chunk=%d seed=%d: misses/wbMisses/writebacks %d/%d/%d, reference %d/%d/%d",
					chunk, seed, c.Misses, c.WritebackMisses, c.Writebacks,
					ref.misses, ref.writebackMisses, ref.writebacks)
			}
			if c.Accesses != ref.accesses || c.WritebackAccesses != ref.writebackAccesses {
				t.Fatalf("chunk=%d seed=%d: accesses %d/%d, reference %d/%d",
					chunk, seed, c.Accesses, c.WritebackAccesses, ref.accesses, ref.writebackAccesses)
			}
			if len(cWBs) != len(rWBs) {
				t.Fatalf("chunk=%d seed=%d: %d writebacks vs reference %d", chunk, seed, len(cWBs), len(rWBs))
			}
			for i := range cWBs {
				if cWBs[i] != rWBs[i] {
					t.Fatalf("chunk=%d seed=%d: writeback %d = %+v, reference %+v",
						chunk, seed, i, cWBs[i], rWBs[i])
				}
			}
		}
	}
}

// TestDifferentialHierarchy drives two complete hierarchies — one with
// the production chunk granules (IL1 4B, DL1/L2 8B), one byte-granular —
// through an identical random stream of 8-byte-aligned data accesses and
// 4-byte-aligned fetches, and requires identical latencies, ACE
// accounting, AVFs and statistics at every level.
func TestDifferentialHierarchy(t *testing.T) {
	mk := func(chunked bool) *Hierarchy {
		il1, dl1, l2 := 0, 0, 0
		if chunked {
			il1, dl1, l2 = 4, 8, 8
		}
		h, err := NewHierarchy(HierarchyConfig{
			IL1:        Config{Name: "il1", SizeBytes: 2 << 10, LineBytes: 64, Ways: 2, HitLatency: 1, ChunkBytes: il1},
			DL1:        Config{Name: "dl1", SizeBytes: 2 << 10, LineBytes: 64, Ways: 2, HitLatency: 3, ChunkBytes: dl1},
			L2:         Config{Name: "l2", SizeBytes: 16 << 10, LineBytes: 64, Ways: 4, HitLatency: 7, ChunkBytes: l2},
			DTLB:       TLBConfig{Name: "tlb", Entries: 4, PageBytes: 8 << 10, EntryBits: 80, WalkLatency: 30},
			MemLatency: 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	for seed := int64(1); seed <= 6; seed++ {
		a, b := mk(true), mk(false)
		rng := rand.New(rand.NewSource(seed))
		now := int64(0)
		warmed := false
		for i := 0; i < 6000; i++ {
			now += int64(rng.Intn(5) + 1)
			if i == 2000 {
				a.ResetACE(now)
				a.ResetStats()
				b.ResetACE(now)
				b.ResetStats()
				warmed = true
			}
			if rng.Intn(4) == 0 {
				pc := 0x10000 + uint64(rng.Intn(256))*4
				if ea, eb := a.Fetch(now, pc), b.Fetch(now, pc); ea != eb {
					t.Fatalf("seed %d: fetch latency %d vs %d", seed, ea, eb)
				}
				continue
			}
			addr := 0x4000_0000 + uint64(rng.Intn(2048))*8
			write := rng.Intn(3) == 0
			la, d1a, l2a := a.Data(now, addr, 8, write)
			lb, d1b, l2b := b.Data(now, addr, 8, write)
			if la != lb || d1a != d1b || l2a != l2b {
				t.Fatalf("seed %d: data access diverged: (%d,%v,%v) vs (%d,%v,%v)",
					seed, la, d1a, l2a, lb, d1b, l2b)
			}
		}
		if !warmed {
			t.Fatal("stream too short for the warmup reset")
		}
		end := now + 50
		a.Finalize(end)
		b.Finalize(end)
		caches := []struct {
			name string
			x, y *Cache
		}{{"IL1", a.IL1, b.IL1}, {"DL1", a.DL1, b.DL1}, {"L2", a.L2, b.L2}}
		for _, c := range caches {
			if c.x.aceBytes() != c.y.aceBytes() || c.x.tagAceCycles != c.y.tagAceCycles {
				t.Errorf("seed %d %s: ACE %d/%d vs byte-granular %d/%d",
					seed, c.name, c.x.aceBytes(), c.x.tagAceCycles, c.y.aceBytes(), c.y.tagAceCycles)
			}
			if c.x.Accesses != c.y.Accesses || c.x.Misses != c.y.Misses ||
				c.x.Writebacks != c.y.Writebacks || c.x.WritebackAccesses != c.y.WritebackAccesses ||
				c.x.WritebackMisses != c.y.WritebackMisses {
				t.Errorf("seed %d %s: stats (%d,%d,%d,%d) vs (%d,%d,%d,%d)", seed, c.name,
					c.x.Accesses, c.x.Misses, c.x.Writebacks, c.x.WritebackAccesses,
					c.y.Accesses, c.y.Misses, c.y.Writebacks, c.y.WritebackAccesses)
			}
			if c.x.AVF(end) != c.y.AVF(end) {
				t.Errorf("seed %d %s: AVF %v vs %v", seed, c.name, c.x.AVF(end), c.y.AVF(end))
			}
		}
	}
}
