// Package liveness is the static backward def-use bit-liveness pass
// over synthetic programs (DESIGN.md §12). Generated programs are
// small, fully known, and loop forever from the simulator's point of
// view, which makes them the ideal case for BEC-style bit-level
// liveness: the pass fixpoints per-instruction live-in register bit
// masks over the program's init·body^ω structure using the ISA's
// per-opcode bit-transfer functions (isa.SrcDemand), and derives from
// the same walk three families of facts the fault-injection campaign
// can exploit without any simulation:
//
//   - DeadDefs: static register definitions whose value is provably
//     never consumed by an ACE reader before redefinition. A fault in a
//     register-file slot holding such a value is masked by
//     construction: the replay's fate watch resolves on "read after the
//     injection cycle by an ACE instruction", and a dead definition has
//     no such reads at any cycle. Deadness here is deliberately
//     one-level, not transitive — an ACE reader whose own result is
//     dead still performs the read the replay observes — so the prune
//     verdict matches the replay's fault model exactly.
//
//   - Occupancy caps: every dynamic dispatch sequence is a contiguous
//     window of the init·body^ω fetch order (wrong-path fetch walks the
//     body cyclically from the mispredicted branch's successor, which
//     is the same successor the correct path takes), so sliding-window
//     maxima over that order bound how many issue-queue, load/store
//     queue and functional-unit slots can ever be simultaneously
//     occupied. Entries at or beyond a cap are empty at every cycle;
//     faults in them are masked analytically.
//
//   - A free-list depth bound: renaming pops physical registers
//     LIFO-style, so the bottom of the power-on free list deeper than
//     the maximum number of in-flight writers is never popped; those
//     physical registers are never written and every fault in them is
//     masked.
//
// The bit masks themselves (LiveIn) tighten the reporting-side static
// ACE bound and document which bits of which values matter; the prune
// filter in internal/inject only ever uses whole-value facts (DeadDefs
// and the caps), because the pipeline's fault model is value-level.
package liveness

import (
	"fmt"
	"strings"

	"avfstress/internal/isa"
	"avfstress/internal/prog"
	"avfstress/internal/uarch"
)

// RegMasks is one live-in snapshot: a live-bit mask per architected
// register at a program point.
type RegMasks [isa.NumArchRegs]uint64

// Summary is the result of one static liveness analysis.
type Summary struct {
	// DeadDefs marks static instructions (by identity, pointing into
	// the program's Init/Body slices) whose destination value is never
	// read by an ACE instruction before redefinition, or whose own
	// result is UnACE. The pipeline's golden-run recorder uses this set
	// to map dead definitions onto physical-register occupancy
	// intervals.
	DeadDefs map[*isa.Instr]bool

	// LiveIn holds, for every static instruction (Init first, then
	// Body), the fixpointed live-in bit mask per architected register.
	LiveIn []RegMasks

	// Sliding-window maxima over the init·body^ω dispatch order, window
	// size ROBEntries: no dynamic snapshot of the ROB can contain more
	// instructions of each class than these.
	MaxWriters, MaxNonNop, MaxLoads, MaxStores, MaxAdds, MaxMuls int

	// Occupancy caps (entries that can ever be simultaneously live).
	IQCap, LQCap, SQCap, FUCap int

	// FreeRFSlots is the free-list depth bound: physical registers at
	// the bottom of the power-on free list that renaming can never pop.
	FreeRFSlots int

	deadDefCount int
	defCount     int
}

// reads reports whether in reads architected register r as a source.
func reads(in *isa.Instr, r isa.Reg) bool {
	switch in.Op {
	case isa.OpAdd, isa.OpMul:
		return in.Src1 == r || (in.RegReg && in.Src2 == r)
	case isa.OpLoad, isa.OpBranch:
		return in.Src1 == r
	case isa.OpStore:
		return in.Src1 == r || in.Src2 == r
	}
	return false
}

// Analyze runs the static pass for program p on core geometry core.
func Analyze(p *prog.Program, core uarch.CoreConfig) *Summary {
	s := &Summary{DeadDefs: map[*isa.Instr]bool{}}
	if len(p.Body) == 0 {
		// Degenerate program: the simulator rejects it before any prune
		// fact could be consulted, so report no-cap conservative facts
		// rather than zero caps (which would prune everything).
		s.IQCap, s.LQCap, s.SQCap = core.IQEntries, core.LQEntries, core.SQEntries
		s.FUCap = core.NumALUs*core.ALULatency + core.NumMuls*core.MulLatency
		return s
	}
	s.analyzeDeadDefs(p)
	s.analyzeWindows(p, core)
	s.analyzeBitMasks(p)
	return s
}

// analyzeDeadDefs computes the one-level dead definition set: a def is
// dead iff its own result is UnACE (the replay masks faults in un-ACE
// values immediately), or no non-UnACE instruction reads the defined
// register between the def and its next redefinition along the
// init·body^ω execution order. The redefining instruction's own source
// reads happen before its write (rename reads the map before
// allocating), so they count as readers of the current def.
func (s *Summary) analyzeDeadDefs(p *prog.Program) {
	// succ walks execution order: init in sequence, then body
	// cyclically forever.
	deadAfter := func(sec []isa.Instr, idx int) bool {
		in := &sec[idx]
		r := in.Dest
		// Scan at most the rest of init plus one full body cycle past
		// the def: after that the walk revisits only body positions
		// already examined.
		var path []*isa.Instr
		if len(p.Init) > 0 && &sec[0] == &p.Init[0] {
			for i := idx + 1; i < len(p.Init); i++ {
				path = append(path, &p.Init[i])
			}
			for i := range p.Body {
				path = append(path, &p.Body[i])
			}
		} else {
			n := len(p.Body)
			for k := 1; k <= n; k++ {
				path = append(path, &p.Body[(idx+k)%n])
			}
		}
		for _, nxt := range path {
			if reads(nxt, r) && !nxt.UnACE && nxt.Op != isa.OpNop {
				return false
			}
			if isa.WritesDest(nxt) && nxt.Dest == r {
				return true // redefined with no ACE reader in between
			}
		}
		// No redefinition found. For a body def that means the def
		// itself redefines next iteration and the full cycle had no
		// reader; for an init def it means the body never touches the
		// register at all. Either way: dead.
		return true
	}
	scan := func(sec []isa.Instr) {
		for i := range sec {
			in := &sec[i]
			if !isa.WritesDest(in) {
				continue
			}
			s.defCount++
			if in.UnACE || deadAfter(sec, i) {
				s.DeadDefs[in] = true
				s.deadDefCount++
			}
		}
	}
	if len(p.Init) > 0 {
		scan(p.Init)
	}
	scan(p.Body)
}

// analyzeWindows computes sliding-window class maxima over the
// init·body^ω dispatch order with window size ROBEntries, and derives
// the occupancy caps and the free-list depth bound.
func (s *Summary) analyzeWindows(p *prog.Program, core uarch.CoreConfig) {
	// Materialise init plus enough body repeats that every cyclic
	// window phase appears.
	reps := core.ROBEntries/len(p.Body) + 2
	ext := make([]*isa.Instr, 0, len(p.Init)+reps*len(p.Body))
	for i := range p.Init {
		ext = append(ext, &p.Init[i])
	}
	for k := 0; k < reps; k++ {
		for i := range p.Body {
			ext = append(ext, &p.Body[i])
		}
	}
	win := core.ROBEntries
	if win > len(ext) {
		win = len(ext)
	}
	var writers, nonNop, loads, stores, adds, muls int
	count := func(in *isa.Instr, d int) {
		if isa.WritesDest(in) {
			writers += d
		}
		if in.Op != isa.OpNop {
			nonNop += d
		}
		switch in.Op {
		case isa.OpLoad:
			loads += d
		case isa.OpStore:
			stores += d
		case isa.OpAdd:
			adds += d
		case isa.OpMul:
			muls += d
		}
	}
	for i := 0; i < len(ext); i++ {
		count(ext[i], +1)
		if i >= win {
			count(ext[i-win], -1)
		}
		if i >= win-1 {
			s.MaxWriters = max(s.MaxWriters, writers)
			s.MaxNonNop = max(s.MaxNonNop, nonNop)
			s.MaxLoads = max(s.MaxLoads, loads)
			s.MaxStores = max(s.MaxStores, stores)
			s.MaxAdds = max(s.MaxAdds, adds)
			s.MaxMuls = max(s.MaxMuls, muls)
		}
	}
	s.IQCap = min(core.IQEntries, s.MaxNonNop)
	s.LQCap = min(core.LQEntries, s.MaxLoads)
	s.SQCap = min(core.SQEntries, s.MaxStores)
	// Concurrent executing arithmetic is bounded both by the window
	// class count and by issue bandwidth times latency per unit class.
	capAdd := min(core.NumALUs*core.ALULatency, s.MaxAdds)
	capMul := min(core.NumMuls*core.MulLatency, s.MaxMuls)
	s.FUCap = capAdd + capMul
	// Renaming pops the free list LIFO; the maximum pop depth is the
	// maximum number of simultaneously in-flight writers, itself
	// bounded by the ROB-window writer count. Anything deeper in the
	// power-on free list is never popped, hence never written.
	if free := core.PhysRegs - (isa.NumArchRegs - 1); free > s.MaxWriters {
		s.FreeRFSlots = free - s.MaxWriters
	}
}

// analyzeBitMasks fixpoints backward bit-liveness over the loop: the
// body's live-in masks are iterated (backward sweeps feeding the loop
// backedge) until stable — masks only ever grow and have 64×32 bits,
// so convergence is fast — then init is swept once against the loop
// head's fixpoint.
func (s *Summary) analyzeBitMasks(p *prog.Program) {
	s.LiveIn = make([]RegMasks, len(p.Init)+len(p.Body))
	bodyIn := s.LiveIn[len(p.Init):]

	transfer := func(in *isa.Instr, live *RegMasks) {
		var destDemand uint64
		if isa.WritesDest(in) {
			destDemand = live[in.Dest]
			live[in.Dest] = 0
		}
		s1, s2 := isa.SrcDemand(in, destDemand)
		if in.Src1 != isa.RZero {
			live[in.Src1] |= s1
		}
		if in.Src2 != isa.RZero {
			live[in.Src2] |= s2
		}
	}

	var head RegMasks // live-in of body[0] (the loop head)
	for iter := 0; iter < 2*64*isa.NumArchRegs; iter++ {
		cur := head // live-out of body[len-1] is the loop head's live-in
		for i := len(p.Body) - 1; i >= 0; i-- {
			transfer(&p.Body[i], &cur)
			bodyIn[i] = cur
		}
		if cur == head {
			break
		}
		// Masks are monotone under union with the previous head.
		for r := range head {
			head[r] |= cur[r]
		}
	}
	cur := head
	for i := len(p.Init) - 1; i >= 0; i-- {
		transfer(&p.Init[i], &cur)
		s.LiveIn[i] = cur
	}
}

// DeadDefFrac returns the fraction of register-writing static
// instructions proven dead.
func (s *Summary) DeadDefFrac() float64 {
	if s.defCount == 0 {
		return 0
	}
	return float64(s.deadDefCount) / float64(s.defCount)
}

// LiveBitFrac returns the fraction of live bits across all live-in
// masks — the bit-level tightening the reporting side quotes.
func (s *Summary) LiveBitFrac() float64 {
	if len(s.LiveIn) == 0 {
		return 0
	}
	var live, total uint64
	for i := range s.LiveIn {
		for r := 0; r < isa.NumArchRegs-1; r++ { // r31 is hardwired zero
			live += uint64(popcount(s.LiveIn[i][r]))
			total += 64
		}
	}
	if total == 0 {
		return 0
	}
	return float64(live) / float64(total)
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// String renders the summary's prune-relevant facts on one line.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "liveness: deaddefs=%d/%d caps iq=%d lq=%d sq=%d fu=%d rf-free=%d livebits=%.3f",
		s.deadDefCount, s.defCount, s.IQCap, s.LQCap, s.SQCap, s.FUCap, s.FreeRFSlots, s.LiveBitFrac())
	return b.String()
}

// LastWriter returns the static instruction whose definition of
// register r is visible on entry to instruction position idx of p
// (inBody selects Body vs Init indexing) under the program's
// init·body^ω execution order, walking the static def-use chain
// backward: first the earlier body instructions of the current
// iteration, then the previous iteration's tail (including idx itself —
// self-redefining chains like the pointer chase read their own previous
// definition), and only then Init. When the body redefines r at all,
// the cyclic body writer is the visible one at every iteration past the
// first — the steady state every measurement window samples. Returns
// false for RZero (hardwired, no producer) and for registers no
// instruction defines.
func LastWriter(p *prog.Program, inBody bool, idx int, r isa.Reg) (*isa.Instr, bool) {
	if r == isa.RZero {
		return nil, false
	}
	writes := func(in *isa.Instr) bool { return isa.WritesDest(in) && in.Dest == r }
	if inBody {
		for i := idx - 1; i >= 0; i-- {
			if writes(&p.Body[i]) {
				return &p.Body[i], true
			}
		}
		for i := len(p.Body) - 1; i >= idx; i-- {
			if writes(&p.Body[i]) {
				return &p.Body[i], true
			}
		}
		idx = len(p.Init)
	}
	for i := idx - 1; i >= 0 && i < len(p.Init); i-- {
		if writes(&p.Init[i]) {
			return &p.Init[i], true
		}
	}
	return nil, false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
