package inject

// Checkpoint plumbing for the campaign engine: persistence of the
// golden run's replay facts (GoldenInfo), the checkpoint manifest
// (capture cycles + validity lead) and the per-index checkpoint blobs
// in the simcache blob tier, plus the lazy checkpoint source bucket
// jobs pull from. Checkpoints are pure replay accelerators: every code
// path here degrades to a from-cycle-zero replay on any miss or decode
// failure, never to a wrong outcome — which is why none of these keys
// participate in trial-outcome addressing or in the report.

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"avfstress/internal/pipe"
	"avfstress/internal/prog"
	"avfstress/internal/simcache"
)

// encodeGoldenInfo serialises the golden run's replay facts (a small
// versioned text blob; the report only uses fields replays also need,
// so caching this beside the result spares warm campaigns the golden
// re-run entirely). v2 appends the recorded register-file dead
// intervals, which the target pruner needs; v1 blobs from older runs
// fail decode and ride the existing discard-and-rebuild path. The
// intervals are always recorded and always encoded — blob content is
// independent of the producing campaign's PruneStatic setting, so warm
// and cold campaigns see identical prune inputs.
func encodeGoldenInfo(gi pipe.GoldenInfo) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "goldeninfo v2 %d %d %d %d", gi.WindowStart, gi.Cycles, gi.Digest, len(gi.RFDead))
	for _, iv := range gi.RFDead {
		fmt.Fprintf(&b, " %d %d %d", iv.Slot, iv.Start, iv.End)
	}
	return []byte(b.String())
}

func decodeGoldenInfo(b []byte) (pipe.GoldenInfo, error) {
	var gi pipe.GoldenInfo
	fields := strings.Fields(string(b))
	if len(fields) < 6 || fields[0] != "goldeninfo" || fields[1] != "v2" {
		return pipe.GoldenInfo{}, fmt.Errorf("inject: bad golden-info blob")
	}
	vals := make([]int64, 0, len(fields)-2)
	for _, f := range fields[2:] {
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			// Digest is unsigned and may exceed int64.
			u, uerr := strconv.ParseUint(f, 10, 64)
			if uerr != nil {
				return pipe.GoldenInfo{}, fmt.Errorf("inject: bad golden-info blob: %w", err)
			}
			v = int64(u)
		}
		vals = append(vals, v)
	}
	gi.WindowStart, gi.Cycles, gi.Digest = vals[0], vals[1], uint64(vals[2])
	n := vals[3]
	if n < 0 || int64(len(vals)-4) != 3*n {
		return pipe.GoldenInfo{}, fmt.Errorf("inject: golden-info interval count mismatch")
	}
	if n > 0 {
		gi.RFDead = make([]pipe.RFDeadInterval, n)
		for i := int64(0); i < n; i++ {
			gi.RFDead[i] = pipe.RFDeadInterval{
				Slot:  int16(vals[4+3*i]),
				Start: vals[4+3*i+1],
				End:   vals[4+3*i+2],
			}
		}
	}
	return gi, nil
}

// ckptManifest is the decoded checkpoint manifest: enough to bucket
// faults by nearest valid checkpoint without loading any checkpoint.
type ckptManifest struct {
	interval int64
	lead     int64
	cycles   []int64
}

func encodeManifest(cs *pipe.CheckpointSet) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "ckptmanifest v1 %d %d %d", cs.Interval, cs.Lead, len(cs.Checkpoints))
	for _, c := range cs.Cycles() {
		fmt.Fprintf(&b, " %d", c)
	}
	return []byte(b.String())
}

func decodeManifest(b []byte) (ckptManifest, error) {
	var m ckptManifest
	fields := strings.Fields(string(b))
	if len(fields) < 5 || fields[0] != "ckptmanifest" || fields[1] != "v1" {
		return m, fmt.Errorf("inject: bad checkpoint manifest")
	}
	vals := make([]int64, 0, len(fields)-2)
	for _, f := range fields[2:] {
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return m, fmt.Errorf("inject: bad checkpoint manifest: %w", err)
		}
		vals = append(vals, v)
	}
	m.interval, m.lead = vals[0], vals[1]
	n := vals[2]
	if n < 0 || int64(len(vals)-3) != n {
		return m, fmt.Errorf("inject: checkpoint manifest count mismatch")
	}
	m.cycles = vals[3:]
	return m, nil
}

// ckptSource hands out replay checkpoints by manifest index: from the
// fresh golden run's in-memory set when this process just captured it,
// otherwise lazily decoded from the blob tier (each index at most once,
// shared across buckets). A missing or corrupt blob yields nil and the
// bucket replays from cycle zero — slower, never wrong.
type ckptSource struct {
	set   *pipe.CheckpointSet
	cache *simcache.Store
	prog  *prog.Program
	keys  []simcache.Key

	mu      sync.Mutex
	decoded map[int]*pipe.Checkpoint
}

func (cs *ckptSource) checkpoint(i int) *pipe.Checkpoint {
	if cs == nil || i < 0 {
		return nil
	}
	if cs.set != nil {
		return cs.set.Checkpoints[i]
	}
	cs.mu.Lock()
	ck, ok := cs.decoded[i]
	cs.mu.Unlock()
	if ok {
		return ck
	}
	if b, found := cs.cache.GetBlob(cs.keys[i]); found {
		if dec, err := pipe.UnmarshalCheckpoint(b, cs.prog); err == nil {
			ck = dec
		}
	}
	cs.mu.Lock()
	cs.decoded[i] = ck // nil is cached too: one failed load per index
	cs.mu.Unlock()
	return ck
}
