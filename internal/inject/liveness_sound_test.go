package inject

import (
	"fmt"
	"testing"

	"avfstress/internal/codegen"
	"avfstress/internal/isa"
	"avfstress/internal/liveness"
	"avfstress/internal/pipe"
	"avfstress/internal/prog"
	"avfstress/internal/uarch"
	"avfstress/internal/workloads"
)

// prunerFixture builds the campaign's static filter exactly as Run
// does: liveness pass, recorded golden run, pruner.
func prunerFixture(t *testing.T, cfg uarch.Config, p *prog.Program, rc pipe.RunConfig) (*pipe.Pool, pipe.GoldenInfo, *pruner) {
	t.Helper()
	pool, err := pipe.NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	live := liveness.Analyze(p, cfg.Core)
	_, info, _, err := pool.SimulateGoldenRecorded(p, rc, -1, live.DeadDefs)
	if err != nil {
		t.Fatal(err)
	}
	return pool, info, newPruner(true, cfg, live, info)
}

// enumeratePruned walks the pruner's dead set directly — every capped
// entry, every never-popped register slot and every recorded dead
// interval — and returns up to perStructure targets per structure,
// strided over bit offsets and cycles. Every returned target is
// re-checked against pruned() so the enumeration cannot drift from the
// filter the campaign actually applies.
func enumeratePruned(t *testing.T, pr *pruner, cfg uarch.Config, info pipe.GoldenInfo, perStructure int) []pipe.Fault {
	t.Helper()
	var out []pipe.Fault
	wStart, wEnd := info.WindowStart, info.WindowStart+info.Cycles
	cycles := []int64{wStart, wStart + info.Cycles/3, wStart + 2*info.Cycles/3, wEnd - 1}
	add := func(f pipe.Fault, n *int) {
		if *n >= perStructure {
			return
		}
		if !pr.pruned(f) {
			t.Fatalf("enumerated target %+v not classified pruned", f)
		}
		out = append(out, f)
		*n++
	}
	for s := uarch.Structure(0); s < uarch.NumStructures; s++ {
		n := 0
		if s == uarch.RF {
			eb := pr.entryBits[uarch.RF]
			for slot, static := range pr.rfStatic {
				if !static {
					continue
				}
				for _, c := range cycles {
					for _, off := range []uint64{0, eb - 1} {
						add(pipe.Fault{Structure: s, Bit: uint64(slot)*eb + off, Cycle: c}, &n)
					}
				}
			}
			for slot, ivs := range pr.rfIv {
				for _, iv := range ivs {
					for _, c := range []int64{iv.start, (iv.start + iv.end) / 2, iv.end - 1} {
						for _, off := range []uint64{0, eb - 1} {
							add(pipe.Fault{Structure: s, Bit: uint64(slot)*eb + off, Cycle: c}, &n)
						}
					}
				}
			}
			continue
		}
		cap := pr.entryCap[s]
		if cap < 0 {
			continue
		}
		eb := pr.entryBits[s]
		entries := int64(uarch.Bits(cfg, s) / eb)
		for e := cap; e < entries; e++ {
			for _, c := range cycles {
				for _, off := range []uint64{0, eb - 1} {
					add(pipe.Fault{Structure: s, Bit: uint64(e)*eb + off, Cycle: c}, &n)
				}
			}
		}
	}
	return out
}

// replayAllMasked replays every target and fails on any non-masked
// outcome: a statically pruned target that corrupts architectural state
// is an unsoundness in the liveness pass, the recording, or the pruner.
func replayAllMasked(t *testing.T, pool *pipe.Pool, p *prog.Program, rc pipe.RunConfig, faults []pipe.Fault) {
	t.Helper()
	for _, f := range faults {
		corrupted, err := pool.SimulateFault(p, rc, f)
		if err != nil {
			t.Fatalf("replaying pruned target %+v: %v", f, err)
		}
		if corrupted {
			t.Errorf("statically pruned target %+v corrupted the run (unsound prune)", f)
		}
	}
}

// TestStaticLivenessSoundAgainstReplay is the differential soundness
// contract of DESIGN.md §12: every target the static filter prunes
// must classify masked under the replay fault model. Part one
// enumerates the dead set of a small hand-built program with a known
// dead definition and a queue-free body (so whole queues are capped)
// and replays it densely; part two fuzzes generated programs across
// seeds, replaying a bounded sample of each one's pruned set.
func TestStaticLivenessSoundAgainstReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("replay sweep in -short mode")
	}
	cfg := uarch.Scaled(uarch.Baseline(), 32)

	// Hand-built: r5 is written every iteration and never read (its
	// redefinition reads only r1), so its physical slots carry recorded
	// dead intervals; no loads or stores, so both LSQ halves are capped
	// at zero occupants and every LSQ bit-cycle is statically dead.
	var init []isa.Instr
	for r := isa.Reg(0); r < isa.NumArchRegs-1; r++ {
		init = append(init, isa.Instr{Op: isa.OpAdd, Dest: r, Src1: isa.RZero, Imm: int16(r)})
	}
	body := []isa.Instr{
		{Op: isa.OpAdd, Dest: 5, Src1: 1, Imm: 1},
		{Op: isa.OpAdd, Dest: 6, Src1: 2, Imm: 3},
		{Op: isa.OpMul, Dest: 7, Src1: 6, Src2: 2, RegReg: true},
		{Op: isa.OpAdd, Dest: 8, Src1: 7, Imm: 1},
		{Op: isa.OpBranch, Dest: isa.RZero, Src1: 2, BrGen: 0},
	}
	small := &prog.Program{
		Name: "deaddef", Init: init, Body: body,
		BrGens:     []prog.BranchGen{prog.LoopBranch{Iterations: 1 << 40}},
		Iterations: 1 << 40,
	}
	rc := pipe.RunConfig{MaxInstructions: 2_000, WarmupInstructions: 500}
	pool, info, pr := prunerFixture(t, cfg, small, rc)
	if pr.prunedBC[uarch.RF] == 0 {
		t.Fatal("dead-definition program recorded no RF dead interval")
	}
	if pr.entryCap[uarch.LQTag] != 0 || pr.entryCap[uarch.SQData] != 0 {
		t.Fatalf("load/store-free body not capped at zero LSQ occupants (LQ.tag cap %d, SQ.data cap %d)",
			pr.entryCap[uarch.LQTag], pr.entryCap[uarch.SQData])
	}
	replayAllMasked(t, pool, small, rc, enumeratePruned(t, pr, cfg, info, 64))

	// Fuzz: generated programs across seeds. Each seed's pruner is
	// rebuilt from scratch; its pruned set is sampled through the same
	// splitmix64 stream the campaign uses, so the sweep sees the exact
	// target distribution campaigns prune.
	for _, seed := range []int64{1, 2, 3, 4, 5, 77} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			k := codegen.Knobs{LoopSize: 81, NumLoads: 29, NumStores: 28,
				NumIndepArith: 5, MissDependent: 7, AvgChainLength: 2.14,
				DepDistance: 6, FracLongLatency: 0.8, FracRegReg: 0.93, Seed: seed}
			p, _, err := codegen.Generate(cfg, k, 1<<40)
			if err != nil {
				t.Fatal(err)
			}
			frc := pipe.RunConfig{MaxInstructions: 3_000, WarmupInstructions: 1_000}
			pool, info, pr := prunerFixture(t, cfg, p, frc)
			var sample []pipe.Fault
			for s := uarch.Structure(0); s < uarch.NumStructures; s++ {
				r := stratumRNG(seed, s)
				bits := uarch.Bits(cfg, s)
				found := 0
				for att := 0; att < 4_000 && found < 8; att++ {
					f := pipe.Fault{
						Structure: s,
						Bit:       r.next() % bits,
						Cycle:     info.WindowStart + int64(r.next()%uint64(info.Cycles)),
					}
					if pr.pruned(f) {
						sample = append(sample, f)
						found++
					}
				}
			}
			if len(sample) == 0 {
				t.Fatalf("seed %d: sampling found no pruned targets", seed)
			}
			replayAllMasked(t, pool, p, frc, sample)
		})
	}
}

// TestCampaignPrunesRFTargets is the acceptance yield check: on the
// 403.gcc proxy — whose profile initialises the full architected
// register pool but reads only a fraction of it per loop — the static
// pass must prune at least 10% of the register-file bit-cycle space,
// and every structure's tightened static bound must sit between its
// dynamic ACE estimate and the trivial all-bits bound.
func TestCampaignPrunesRFTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in -short mode")
	}
	cfg := uarch.Scaled(uarch.Baseline(), 32)
	pf, err := workloads.ByName("403.gcc")
	if err != nil {
		t.Fatal(err)
	}
	p, err := pf.Build(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(bg, Options{
		Config: cfg, Program: p,
		Run:    pipe.RunConfig{MaxInstructions: 6_000, WarmupInstructions: 2_000},
		Trials: 400, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range res.Structures {
		if sr.StaticBound > 1+1e-12 || sr.StaticBound < 0 {
			t.Errorf("%s: static bound %.6f outside [0, 1]", sr.Structure, sr.StaticBound)
		}
		if sr.StaticBound < sr.ACE-1e-9 {
			t.Errorf("%s: static bound %.6f below dynamic ACE %.6f (bound unsound)",
				sr.Structure, sr.StaticBound, sr.ACE)
		}
		if sr.Structure == uarch.RF {
			if sr.PruneFrac < 0.10 {
				t.Errorf("RF prune fraction %.4f, want >= 0.10 on the 403.gcc proxy", sr.PruneFrac)
			}
			if sr.Pruned == 0 {
				t.Error("RF stratum pruned no sampled targets")
			}
		}
	}
	if res.StaticBound >= 1 {
		t.Errorf("bit-weighted static bound %.6f not tightened below 1", res.StaticBound)
	}
}

// TestCampaignPrunedByteDeterministic: a pruned campaign renders
// byte-identically across worker counts and across equivalent positive
// knob values (every PruneStatic ≥ 0 is the same filter).
func TestCampaignPrunedByteDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in -short mode")
	}
	o := testOptions(t, 200)
	o.PruneStatic = 0
	o.Parallelism = 1
	base, err := Run(bg, o)
	if err != nil {
		t.Fatal(err)
	}
	if base.Pruned == 0 {
		t.Fatal("pruned campaign pruned no targets (nothing exercised)")
	}
	o.PruneStatic = 5
	o.Parallelism = 8
	got, err := Run(bg, o)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != base.String() {
		t.Errorf("pruned campaign differs across workers/knob values:\n%s\nvs\n%s", got, base)
	}
}
