package analysis

import (
	"fmt"

	"avfstress/internal/avf"
	"avfstress/internal/uarch"
)

// HVF computes a Hardware Vulnerability Factor-style occupancy bound for
// the queueing structures, after Sridharan & Kaeli (ISCA'10), which the
// paper discusses in §VIII: HVF is the microarchitecture-side vulnerable
// residency (any valid state, ACE or not), so for each structure
// AVF ≤ HVF, with the gap being the program-side masking (un-ACE
// instructions, wrong-path work). The paper's point — that HVF still
// cannot establish the *worst case* because it remains
// workload-dependent — is exactly what Experiments' HVFGap lets one see.
type HVF struct {
	// Occupancy-derived HVF per structure (only queueing structures have
	// an occupancy-based bound; others are left zero).
	Value [uarch.NumStructures]float64
}

// HVFOf derives the occupancy-based HVF bound from a simulation result.
// For the LQ/SQ, the tag and data halves share the entry-occupancy
// bound; for the ROB/IQ the entry occupancy is the bound directly.
func HVFOf(r *avf.Result) HVF {
	var h HVF
	h.Value[uarch.ROB] = r.OccupancyROB
	h.Value[uarch.IQ] = r.OccupancyIQ
	h.Value[uarch.LQTag] = r.OccupancyLQ
	h.Value[uarch.LQData] = r.OccupancyLQ
	h.Value[uarch.SQTag] = r.OccupancySQ
	h.Value[uarch.SQData] = r.OccupancySQ
	return h
}

// Check verifies AVF ≤ HVF (+eps) for every bounded structure and
// returns the first violation, if any. A violation would indicate an
// accounting bug: ACE residency exceeding total residency.
func (h HVF) Check(r *avf.Result, eps float64) error {
	for _, s := range []uarch.Structure{
		uarch.ROB, uarch.IQ, uarch.LQTag, uarch.LQData, uarch.SQTag, uarch.SQData,
	} {
		if r.AVF[s] > h.Value[s]+eps {
			return fmt.Errorf("analysis: AVF[%v]=%.4f exceeds HVF bound %.4f for %s",
				s, r.AVF[s], h.Value[s], r.Workload)
		}
	}
	return nil
}

// Gap returns HVF − AVF for a structure: the program-side masking that
// pure hardware-occupancy analysis cannot see.
func (h HVF) Gap(r *avf.Result, s uarch.Structure) float64 {
	return h.Value[s] - r.AVF[s]
}
