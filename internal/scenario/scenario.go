// Package scenario is the declarative vocabulary of the orchestration
// tier. A Definition describes one runnable scenario — a paper figure,
// a table, or a parametric study — as the set of Jobs it needs plus a
// Render step that assembles the report once those jobs are complete.
// Definitions live in a Registry; internal/sched executes the combined
// job DAG of any number of scenarios concurrently, deduplicating jobs
// that scenarios share by Key.
//
// The contract between the layers (DESIGN.md §8) is declared-jobs
// purity: Render must need no work beyond the declared Jobs — after the
// jobs have run, rendering is pure assembly and triggers no further
// simulation. Two jobs with the same Key must describe identical work,
// so executing either one satisfies both declarations.
package scenario

import (
	"context"
	"fmt"
	"strings"
	"sync"
)

// Job is one unit of schedulable work a scenario declares: typically a
// workload-suite simulation or a stressmark search. Key is the
// content-derived dedup identity (scenarios sharing a Key share the
// work); Deps lists Keys that must complete first; Run performs the
// work and must honour ctx cancellation. A nil Run is a no-op
// (pure grouping node).
type Job struct {
	Key  string
	Deps []string
	Run  func(ctx context.Context) error
	// Lease marks the job as shardable across campaign-fabric nodes:
	// under a sched.Executor exactly one node runs it cold while the
	// others wait for its completion and then run the closure against
	// the (now warm) shared store. Only jobs whose entire effect is
	// published through the content-addressed cache may set it —
	// fault-injection buckets and trials do; container jobs (whose
	// inner simulations shard individually) and renders must not.
	Lease bool
}

// Definition declares one scenario: its identity, the jobs it needs and
// the render step producing its report.
type Definition struct {
	// Name is the registry identity ("fig3", "table1", ...).
	Name string
	// Title is an optional human-readable description.
	Title string
	// Jobs returns the declared work. It must be cheap and side-effect
	// free — declaring is not running. Nil means the scenario needs no
	// jobs (static tables).
	Jobs func() []Job
	// Render assembles the report from the completed jobs' results.
	Render func(ctx context.Context) (string, error)
}

// Registry is an ordered collection of scenario definitions. The zero
// value is not usable; construct with NewRegistry. Safe for concurrent
// lookups; registration is expected at construction time but is also
// concurrency-safe.
type Registry struct {
	mu    sync.RWMutex
	order []string
	defs  map[string]Definition
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{defs: map[string]Definition{}}
}

// Register adds d to the registry, preserving registration order.
func (r *Registry) Register(d Definition) error {
	if d.Name == "" {
		return fmt.Errorf("scenario: definition has no name")
	}
	if d.Render == nil {
		return fmt.Errorf("scenario: %q has no render step", d.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.defs[d.Name]; ok {
		return fmt.Errorf("scenario: %q registered twice", d.Name)
	}
	r.defs[d.Name] = d
	r.order = append(r.order, d.Name)
	return nil
}

// MustRegister is Register for static tables; it panics on error.
func (r *Registry) MustRegister(d Definition) {
	if err := r.Register(d); err != nil {
		panic(err)
	}
}

// Names returns the registered scenario names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// Lookup returns the definition registered under name.
func (r *Registry) Lookup(name string) (Definition, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.defs[name]
	if !ok {
		return Definition{}, fmt.Errorf("scenario: unknown scenario %q (have %s)",
			name, strings.Join(r.order, ", "))
	}
	return d, nil
}
