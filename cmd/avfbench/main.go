// Command avfbench regenerates the paper's tables and figures.
//
// Usage:
//
//	avfbench [-run name[,name...]] [-scale N] [-seed N] [-pop N] [-gens N]
//	         [-ref] [-list] [-quiet] [-cpuprofile f] [-memprofile f]
//
// With no -run flag the complete suite (Tables I-III, Figures 3-9 and the
// §VI worst-case analysis) is produced. -ref skips the GA searches and evaluates the paper's published
// knob settings directly. -scale 1 uses the paper-exact cache geometry
// (needs much larger budgets; see DESIGN.md §4). -cpuprofile and
// -memprofile write pprof profiles of the run, so hot-path hunts don't
// need ad-hoc harnesses.
//
// avfbench is a thin client of the scenario registry and the concurrent
// DAG scheduler (the same path avfstressd serves): the requested
// scenarios' jobs run concurrently, deduplicated across scenarios, and
// the combined report is assembled in request order — byte-identical to
// a sequential run. Ctrl-C cancels cleanly between simulations.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"avfstress/internal/experiments"
)

func main() {
	var (
		run        = flag.String("run", "", "comma-separated experiments to run (default: all)")
		scale      = flag.Int("scale", 32, "cache scale-down factor (1 = paper-exact geometry)")
		seed       = flag.Int64("seed", 1, "random seed")
		pop        = flag.Int("pop", 14, "GA population size")
		gens       = flag.Int("gens", 12, "GA generations")
		ref        = flag.Bool("ref", false, "use the paper's published knobs instead of searching")
		list       = flag.Bool("list", false, "list experiment names and exit")
		quiet      = flag.Bool("quiet", false, "suppress progress logging")
		cacheDir   = flag.String("cache-dir", "", "persist simulation results under this directory (shared across runs; results are bit-identical)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file at exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return
	}
	profiling := *cpuprofile != ""
	if profiling {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "avfbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "avfbench: start cpu profile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	// fail flushes the CPU profile before exiting (os.Exit skips defers),
	// so a profile of a failing run is still readable.
	fail := func(format string, args ...interface{}) {
		if profiling {
			pprof.StopCPUProfile()
		}
		fmt.Fprintf(os.Stderr, format, args...)
		os.Exit(1)
	}
	opts := experiments.Options{
		Scale: *scale, Seed: *seed, GAPop: *pop, GAGens: *gens,
		UseReferenceKnobs: *ref, CacheDir: *cacheDir,
	}
	if !*quiet {
		opts.Logf = func(f string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "# "+f+"\n", args...)
		}
	}
	ctx := experiments.NewContext(opts)

	cctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	names := experiments.Names()
	if *run != "" {
		names = strings.Split(*run, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
	}
	out, err := ctx.RunScenarios(cctx, names)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fail("avfbench: interrupted\n")
		}
		fail("avfbench: %v\n", err)
	}
	fmt.Print(out)
	if *cacheDir != "" {
		// Stats go to stderr so stdout stays byte-identical across cache
		// states; the CI cache-effectiveness smoke greps this line.
		fmt.Fprintf(os.Stderr, "# cache: %s\n", ctx.CacheStats())
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fail("avfbench: -memprofile: %v\n", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail("avfbench: write heap profile: %v\n", err)
		}
	}
}
