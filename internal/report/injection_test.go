package report

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateInjectionGolden = flag.Bool("update", false, "rewrite the injection-table golden file")

// TestInjectionTableGolden locks the rendered injection table against
// testdata/injection_golden.txt, the same style as the internal/pipe
// simulator golden: the campaign report is part of the byte-determinism
// contract (same seed → identical report), so its rendering must not
// drift silently. Regenerate deliberately with: go test -run Injection -update.
func TestInjectionTableGolden(t *testing.T) {
	rows := []InjectionRow{
		{Label: "IQ", Bits: 640, Trials: 20, SDC: 3, Masked: 17,
			AVF: 0.15, Lo: 0.0524, Hi: 0.3604, ACE: 0.1482},
		{Label: "ROB", Bits: 6080, Trials: 180, SDC: 121, Masked: 59,
			AVF: 0.6722, Lo: 0.6007, Hi: 0.7362, ACE: 0.6641},
		{Label: "SQ.data", Bits: 2048, Trials: 61, Detected: 14, Masked: 43, Pruned: 4,
			AVF: 0.2295, Lo: 0.1416, Hi: 0.3494, ACE: 0.4102},
		{Label: "L2", Bits: 294912, Trials: 0, ACE: 0.8123},
		{Label: "overall", Bits: 303680, Trials: 261, SDC: 124, Detected: 14,
			Masked: 119, Pruned: 4, AVF: 0.7741, Lo: 0.7562, Hi: 0.792, ACE: 0.7803},
	}
	got := InjectionTable("Injection campaign — Baseline/s32 on 403.gcc (seed 1)", rows)

	path := filepath.Join("testdata", "injection_golden.txt")
	if *updateInjectionGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("injection table drifted from golden:\n got:\n%s\n want:\n%s", got, want)
	}
}

// TestInjectionTableFlags: the in-CI flag distinguishes contained,
// escaped and zero-trial rows.
func TestInjectionTableFlags(t *testing.T) {
	s := InjectionTable("t", []InjectionRow{
		{Label: "in", Trials: 10, AVF: 0.5, Lo: 0.2, Hi: 0.8, ACE: 0.5},
		{Label: "out", Trials: 10, AVF: 0.5, Lo: 0.2, Hi: 0.8, ACE: 0.9},
		{Label: "none", ACE: 0.9},
	})
	for _, want := range []string{" yes", " NO", " -"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
}
