package inject

import (
	"os"
	"path/filepath"
	"testing"

	"avfstress/internal/isa"
	"avfstress/internal/persist"
	"avfstress/internal/pipe"
	"avfstress/internal/simcache"
)

func sampleTrials() []pipe.FaultTrial {
	return []pipe.FaultTrial{
		{}, // zero record
		{Corrupted: false, Diverge: pipe.Diverge{Seq: -1, SrcSlot: -1}},                                  // masked
		{Corrupted: true, Diverge: pipe.Diverge{Seq: -1, SrcSlot: -1}},                                   // corrupted, no consumer
		{Corrupted: true, Diverge: pipe.Diverge{Seq: 12345, PC: 0x10004, Op: isa.OpMul, SrcSlot: 1}},     // RF consumer
		{Corrupted: true, Diverge: pipe.Diverge{Seq: 1 << 40, PC: 0x1000, Op: isa.OpStore, SrcSlot: -1}}, // init PC, big seq
		{Corrupted: true, Diverge: pipe.Diverge{Seq: 0, PC: 0x10000, Op: isa.OpBranch, SrcSlot: 0}},      // stream head
	}
}

func TestTrialBlobRoundTrip(t *testing.T) {
	for _, want := range sampleTrials() {
		b := encodeTrial(want)
		got, err := decodeTrial(b)
		if err != nil {
			t.Fatalf("decode(%q): %v", b, err)
		}
		// The codec does not carry the replay digest.
		want.Digest = 0
		if got != want {
			t.Errorf("round trip %q: got %+v, want %+v", b, got, want)
		}
	}
}

// TestLegacyTrialBlobFailsDecode: v1 trial blobs were a single outcome
// byte; they must fail the v2 decode so the engine takes the
// discard-and-rebuild path rather than misreading them.
func TestLegacyTrialBlobFailsDecode(t *testing.T) {
	for _, b := range [][]byte{{0}, {1}, {}, []byte("injtrial v2"), []byte("injtrial v1 1 0 0 0 0")} {
		if tr, err := decodeTrial(b); err == nil {
			t.Errorf("decode(%v) accepted a non-v2 blob: %+v", b, tr)
		}
	}
	// Trailing garbage and non-canonical spellings are rejected too —
	// only the exact canonical encoding decodes.
	good := string(encodeTrial(pipe.FaultTrial{Corrupted: true, Diverge: pipe.Diverge{Seq: 3, PC: 0x10004, Op: isa.OpAdd, SrcSlot: 0}}))
	for _, s := range []string{good + " ", good + "x", " " + good, "injtrial v2 1 03 10004 1 0", "injtrial v2 2 3 10004 1 0", "injtrial v2 1 3 10004 9 0"} {
		if tr, err := decodeTrial([]byte(s)); err == nil {
			t.Errorf("decode(%q) accepted a non-canonical blob: %+v", s, tr)
		}
	}
}

// FuzzDecodeTrial: the decoder never panics, and anything it accepts
// re-encodes to the identical bytes (canonical form), so two distinct
// blobs can never alias one trial record.
func FuzzDecodeTrial(f *testing.F) {
	for _, tr := range sampleTrials() {
		f.Add(encodeTrial(tr))
	}
	f.Add([]byte{1})
	f.Add([]byte("injtrial v2 1 -1 0 0 -1"))
	f.Fuzz(func(t *testing.T, b []byte) {
		tr, err := decodeTrial(b)
		if err != nil {
			return
		}
		if got := encodeTrial(tr); string(got) != string(b) {
			t.Fatalf("accepted non-canonical blob %q (canonical %q)", b, got)
		}
	})
}

// TestTrialBlobBitFlipQuarantinesEveryOffset: v2 trial blobs are longer
// than the one-byte v1 outcome and carry numeric fields a flipped digit
// could silently alter — the CRC frame must turn every single-bit
// corruption of the on-disk entry into a quarantined miss before the
// codec ever sees it.
func TestTrialBlobBitFlipQuarantinesEveryOffset(t *testing.T) {
	dir := t.TempDir()
	s := simcache.New(simcache.Options{Dir: dir})
	key := s.Key("trialblob-corrupt")
	s.PutBlob(key, encodeTrial(pipe.FaultTrial{Corrupted: true,
		Diverge: pipe.Diverge{Seq: 12345, PC: 0x10004, Op: isa.OpMul, SrcSlot: 1}}))
	versionDir := filepath.Join(dir, simcache.EngineVersion)
	var path string
	ents, err := os.ReadDir(versionDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".bin" {
			path = filepath.Join(versionDir, e.Name())
		}
	}
	if path == "" {
		t.Fatal("no blob entry on disk")
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(good); off++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), good...)
			mut[off] ^= 1 << bit
			if err := os.WriteFile(path, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			cold := simcache.New(simcache.Options{Dir: dir})
			if v, ok := cold.GetBlob(key); ok {
				t.Fatalf("offset %d bit %d: corrupt trial blob served as a hit (%q)", off, bit, v)
			}
			if st := cold.Stats(); st.Quarantined != 1 {
				t.Fatalf("offset %d bit %d: stats %+v, want Quarantined=1", off, bit, st)
			}
			if err := os.WriteFile(path, good, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestCampaignHealsLegacyTrialBlobs: a cache directory holding
// v-previous entries — every blob rewritten as a framed v1 one-byte
// outcome — must not poison a campaign: undecodable trial blobs are
// discarded and replayed, and the report comes out byte-identical to
// the clean run's.
func TestCampaignHealsLegacyTrialBlobs(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in -short mode")
	}
	dir := t.TempDir()
	o := testOptions(t, 80)
	o.Cache = simcache.New(simcache.Options{Dir: dir})
	clean, err := Run(bg, o)
	if err != nil {
		t.Fatal(err)
	}

	// Downgrade every on-disk blob (trial outcomes, golden info,
	// checkpoint manifests alike) to a legacy one-byte entry with a
	// valid frame.
	versionDir := filepath.Join(dir, simcache.EngineVersion)
	ents, err := os.ReadDir(versionDir)
	if err != nil {
		t.Fatal(err)
	}
	downgraded := 0
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".bin" {
			continue
		}
		if err := os.WriteFile(filepath.Join(versionDir, e.Name()),
			persist.EncodeFramed([]byte{1}), 0o644); err != nil {
			t.Fatal(err)
		}
		downgraded++
	}
	if downgraded == 0 {
		t.Fatal("campaign left no blobs to downgrade")
	}

	o.Cache = simcache.New(simcache.Options{Dir: dir})
	healed, err := Run(bg, o)
	if err != nil {
		t.Fatal(err)
	}
	if st := o.Cache.Stats(); st.Quarantined == 0 {
		t.Errorf("legacy blobs were served as hits, none quarantined: %+v", st)
	}
	if healed.String() != clean.String() {
		t.Errorf("report differs after healing legacy blobs:\nclean:\n%s\nhealed:\n%s", clean, healed)
	}
}
