package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestFramedRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, {0}, []byte("hello"), bytes.Repeat([]byte{0xA5}, 4096)} {
		enc := EncodeFramed(payload)
		got, err := DecodeFramed(enc)
		if err != nil {
			t.Fatalf("decode(%d bytes): %v", len(payload), err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip lost data: %d bytes in, %d out", len(payload), len(got))
		}
	}
}

// TestFramedEveryBitFlipIsCorrupt: flipping any single bit anywhere in
// a framed entry — magic, length, checksum or payload — must fail
// validation with ErrCorrupt. This is the property the simcache
// quarantine tier relies on.
func TestFramedEveryBitFlipIsCorrupt(t *testing.T) {
	enc := EncodeFramed([]byte("the golden run's replay facts"))
	for i := 0; i < len(enc)*8; i++ {
		mut := append([]byte(nil), enc...)
		mut[i/8] ^= 1 << (i % 8)
		if _, err := DecodeFramed(mut); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at %d accepted (err=%v)", i, err)
		}
	}
}

func TestFramedTruncationAndGarbage(t *testing.T) {
	enc := EncodeFramed([]byte("payload"))
	for _, mut := range [][]byte{
		enc[:0], enc[:5], enc[:frameHeaderSize-1], enc[:len(enc)-1],
		append(append([]byte(nil), enc...), 'x'),
		[]byte("not a frame at all"),
	} {
		if _, err := DecodeFramed(mut); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%d-byte mutation accepted (err=%v)", len(mut), err)
		}
	}
}

func TestFramedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "entry.bin")
	if err := WriteFramedFile(path, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFramedFile(path)
	if err != nil || string(got) != "abc" {
		t.Fatalf("read back %q, %v", got, err)
	}
	// A missing file is a plain read error, not corruption.
	if _, err := ReadFramedFile(filepath.Join(t.TempDir(), "absent")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: %v", err)
	}
	// Truncating the file on disk surfaces as ErrCorrupt.
	if err := os.Truncate(path, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFramedFile(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated file: %v", err)
	}
}

func TestWriteFileAtomicLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out")
	if err := WriteFileAtomic(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "v2" {
		t.Fatalf("read back %q, %v", b, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp files left behind: %v", ents)
	}
}

// FuzzDecodeFramed: arbitrary bytes must never panic, and anything the
// decoder accepts must re-encode to the identical entry (the frame is
// canonical).
func FuzzDecodeFramed(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeFramed(nil))
	f.Add(EncodeFramed([]byte("seed payload")))
	enc := EncodeFramed([]byte("flip me"))
	enc[len(enc)-1] ^= 0x40
	f.Add(enc)
	f.Fuzz(func(t *testing.T, b []byte) {
		payload, err := DecodeFramed(b)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-ErrCorrupt failure: %v", err)
			}
			return
		}
		if !bytes.Equal(EncodeFramed(payload), b) {
			t.Fatalf("accepted non-canonical frame (%d bytes)", len(b))
		}
	})
}
