package sched

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"avfstress/internal/scenario"
)

// recorder builds jobs that append their key to a shared log.
type recorder struct {
	mu  sync.Mutex
	log []string
}

func (r *recorder) job(key string, deps ...string) scenario.Job {
	return scenario.Job{Key: key, Deps: deps, Run: func(context.Context) error {
		r.mu.Lock()
		r.log = append(r.log, key)
		r.mu.Unlock()
		return nil
	}}
}

func (r *recorder) index(key string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, k := range r.log {
		if k == key {
			return i
		}
	}
	return -1
}

func TestTopologicalOrder(t *testing.T) {
	r := &recorder{}
	// Diamond: a → (b, c) → d.
	jobs := []scenario.Job{
		r.job("d", "b", "c"), r.job("b", "a"), r.job("c", "a"), r.job("a"),
	}
	if err := Run(context.Background(), jobs, Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if len(r.log) != 4 {
		t.Fatalf("ran %d jobs, want 4: %v", len(r.log), r.log)
	}
	for _, edge := range [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}} {
		if r.index(edge[0]) > r.index(edge[1]) {
			t.Errorf("%s ran after its dependent %s: %v", edge[0], edge[1], r.log)
		}
	}
}

func TestDedupByKey(t *testing.T) {
	var runs atomic.Int32
	shared := scenario.Job{Key: "shared", Run: func(context.Context) error {
		runs.Add(1)
		return nil
	}}
	jobs := []scenario.Job{shared, shared, shared,
		{Key: "after", Deps: []string{"shared", "shared"}, Run: func(context.Context) error { return nil }}}
	if err := Run(context.Background(), jobs, Options{}); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 1 {
		t.Errorf("shared job ran %d times", runs.Load())
	}
}

func TestWorkerBound(t *testing.T) {
	const workers = 3
	var cur, max atomic.Int32
	var jobs []scenario.Job
	for i := 0; i < 20; i++ {
		jobs = append(jobs, scenario.Job{Key: string(rune('a' + i)), Run: func(context.Context) error {
			c := cur.Add(1)
			for {
				m := max.Load()
				if c <= m || max.CompareAndSwap(m, c) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			cur.Add(-1)
			return nil
		}})
	}
	if err := Run(context.Background(), jobs, Options{Workers: workers}); err != nil {
		t.Fatal(err)
	}
	if m := max.Load(); m > workers {
		t.Errorf("observed %d concurrent jobs, bound is %d", m, workers)
	}
}

func TestErrorCancelsRemaining(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	jobs := []scenario.Job{
		{Key: "bad", Run: func(context.Context) error { return boom }},
		{Key: "after", Deps: []string{"bad"}, Run: func(context.Context) error {
			ran.Add(1)
			return nil
		}},
	}
	err := Run(context.Background(), jobs, Options{Workers: 1})
	if !errors.Is(err, boom) {
		t.Fatalf("error lost: %v", err)
	}
	if err.Error() != "boom" {
		t.Errorf("job error not returned as-is (keys are not display strings): %v", err)
	}
	if ran.Load() != 0 {
		t.Error("dependent of a failed job still executed its work")
	}
}

func TestCancellationStopsNewJobs(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	first := make(chan struct{})
	jobs := []scenario.Job{
		{Key: "one", Run: func(context.Context) error {
			close(first)
			cancel()
			return nil
		}},
		{Key: "two", Deps: []string{"one"}, Run: func(context.Context) error {
			ran.Add(1)
			return nil
		}},
	}
	err := Run(ctx, jobs, Options{Workers: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	<-first
	if ran.Load() != 0 {
		t.Error("job started after cancellation")
	}
}

func TestValidation(t *testing.T) {
	noop := func(context.Context) error { return nil }
	if err := Run(context.Background(), []scenario.Job{{Run: noop}}, Options{}); err == nil {
		t.Error("empty key accepted")
	}
	if err := Run(context.Background(),
		[]scenario.Job{{Key: "a", Deps: []string{"ghost"}, Run: noop}}, Options{}); err == nil ||
		!strings.Contains(err.Error(), "ghost") {
		t.Errorf("unknown dependency not reported: %v", err)
	}
	cyc := []scenario.Job{
		{Key: "a", Deps: []string{"b"}, Run: noop},
		{Key: "b", Deps: []string{"a"}, Run: noop},
	}
	if err := Run(context.Background(), cyc, Options{}); err == nil ||
		!strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle not reported: %v", err)
	}
	if err := Run(context.Background(),
		[]scenario.Job{{Key: "a", Deps: []string{"a"}, Run: noop}}, Options{}); err == nil {
		t.Error("self-dependency accepted")
	}
	if err := Run(context.Background(), nil, Options{}); err != nil {
		t.Errorf("empty DAG should succeed: %v", err)
	}
}

func TestNilRunIsGroupingNode(t *testing.T) {
	r := &recorder{}
	jobs := []scenario.Job{
		r.job("leaf"),
		{Key: "group", Deps: []string{"leaf"}},
		r.job("top", "group"),
	}
	if err := Run(context.Background(), jobs, Options{}); err != nil {
		t.Fatal(err)
	}
	if r.index("leaf") > r.index("top") {
		t.Errorf("grouping node broke ordering: %v", r.log)
	}
}

func TestOnDoneObservesEveryJob(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]bool{}
	jobs := []scenario.Job{
		{Key: "x", Run: func(context.Context) error { return nil }},
		{Key: "y", Deps: []string{"x"}, Run: func(context.Context) error { return nil }},
	}
	err := Run(context.Background(), jobs, Options{OnDone: func(key string, _ time.Duration, err error) {
		mu.Lock()
		seen[key] = true
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !seen["x"] || !seen["y"] {
		t.Errorf("OnDone missed jobs: %v", seen)
	}
}
