package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"avfstress/internal/analysis"
	"avfstress/internal/avf"
	"avfstress/internal/isa"
	"avfstress/internal/power"
	"avfstress/internal/prog"
	"avfstress/internal/report"
	"avfstress/internal/uarch"
)

// PowerRow pairs a program's proxy power with its core SER.
type PowerRow struct {
	Name  string
	Power float64 // arbitrary energy/cycle units
	SER   float64 // core (QS+RF), units/bit
	IPC   float64
}

// PowerContrastResult reproduces the paper's §IV-B argument that power
// viruses and AVF stressmarks optimise opposite corners: the
// maximum-power program is a full-bandwidth arithmetic loop with low
// queue occupancy, while the AVF stressmark stalls the machine full of
// ACE state at low activity.
type PowerContrastResult struct {
	Rows []PowerRow // sorted by power, descending
}

// PowerKing returns the highest-power row; AVFKing the highest-SER row.
func (p *PowerContrastResult) PowerKing() PowerRow {
	return p.maxBy(func(r PowerRow) float64 { return r.Power })
}

// AVFKing returns the highest-core-SER row.
func (p *PowerContrastResult) AVFKing() PowerRow {
	return p.maxBy(func(r PowerRow) float64 { return r.SER })
}

func (p *PowerContrastResult) maxBy(f func(PowerRow) float64) PowerRow {
	best := p.Rows[0]
	for _, r := range p.Rows {
		if f(r) > f(best) {
			best = r
		}
	}
	return best
}

// String renders the PowerContrastResult as its paper-style report.
func (p *PowerContrastResult) String() string {
	var b strings.Builder
	b.WriteString("§IV-B analysis — power viruses are not AVF stressmarks\n\n")
	t := &report.Table{Headers: []string{"program", "power (energy/cycle)", "core SER (units/bit)", "IPC"}}
	for _, r := range p.Rows {
		t.AddRow(r.Name, r.Power, r.SER, fmt.Sprintf("%.2f", r.IPC))
	}
	b.WriteString(t.String())
	pk, ak := p.PowerKing(), p.AVFKing()
	fmt.Fprintf(&b, "\nmax power:   %-22s (%.2f units, core SER %.3f)\n", pk.Name, pk.Power, pk.SER)
	fmt.Fprintf(&b, "max core SER: %-22s (%.2f units, core SER %.3f)\n", ak.Name, ak.Power, ak.SER)
	b.WriteString("long-latency stalls raise AVF but let clock gating cut power;\n")
	b.WriteString("full-bandwidth arithmetic maximises power but drains the queues.\n")
	return b.String()
}

// powerVirus builds a SYMPO-style maximum-activity loop: independent
// ALU/MUL streams at full issue bandwidth with DL1-resident memory
// traffic, no stalls.
func powerVirus(cfg uarch.Config) (*prog.Program, error) {
	var body []isa.Instr
	gens := []prog.AddrGen{prog.StridedBlock{
		Base: 0x4000_0000, Stride: 8, Region: uint64(cfg.Mem.DL1.SizeBytes / 2),
	}}
	// Four independent ALU chains + one mul stream + paired load/store:
	// everything issues at full width every cycle.
	for i := 0; i < 4; i++ {
		for lane := 0; lane < 4; lane++ {
			body = append(body, isa.Instr{
				Op: isa.OpAdd, Dest: isa.Reg(3 + lane), Src1: isa.Reg(3 + lane), Imm: 1,
			})
		}
		body = append(body, isa.Instr{Op: isa.OpMul, Dest: isa.Reg(8 + i), Src1: 2, Imm: 3})
		body = append(body,
			isa.Instr{Op: isa.OpLoad, Dest: isa.Reg(12 + i), Src1: 2, AddrGen: 0},
			isa.Instr{Op: isa.OpStore, Dest: isa.RZero, Src1: 2, Src2: isa.Reg(12 + i), AddrGen: 0},
		)
	}
	body = append(body, isa.Instr{Op: isa.OpBranch, Dest: isa.RZero, Src1: 2, BrGen: 0})
	var init []isa.Instr
	for r := isa.Reg(0); r < isa.NumArchRegs-1; r++ {
		init = append(init, isa.Instr{Op: isa.OpAdd, Dest: r, Src1: isa.RZero, Imm: int16(r)})
	}
	p := &prog.Program{
		Name: "power-virus", Init: init, Body: body,
		AddrGens:   gens,
		BrGens:     []prog.BranchGen{prog.LoopBranch{Iterations: 1 << 40}},
		Iterations: 1 << 40,
	}
	return p, p.Validate()
}

// PowerContrast evaluates the stressmark, a synthetic power virus and
// the workload suite under the power proxy.
func (c *Context) PowerContrast(ctx context.Context) (*PowerContrastResult, error) {
	cfg := c.Baseline
	rates := uarch.UniformRates(1)
	out := &PowerContrastResult{}
	add := func(name string, r *avf.Result) {
		out.Rows = append(out.Rows, PowerRow{
			Name:  name,
			Power: power.Of(r),
			SER:   r.SER(cfg, rates, avf.ClassQSRF),
			IPC:   r.IPC,
		})
	}
	sm, err := c.Stressmark(ctx, "baseline", cfg, rates)
	if err != nil {
		return nil, err
	}
	add("stressmark", sm.Result)
	pr, err := c.PowerVirus(ctx)
	if err != nil {
		return nil, err
	}
	add("power-virus", pr)
	wl, err := c.Workloads(ctx, cfg)
	if err != nil {
		return nil, err
	}
	for _, r := range wl {
		add(r.Workload, r)
	}
	sort.SliceStable(out.Rows, func(i, j int) bool { return out.Rows[i].Power > out.Rows[j].Power })
	return out, nil
}

// HVFRow pairs per-structure AVF with its HVF (occupancy) bound.
type HVFRow struct {
	Name string
	AVF  [uarch.NumStructures]float64
	HVF  analysis.HVF
}

// HVFResult reproduces the paper's §VIII discussion of Hardware
// Vulnerability Factors: HVF bounds AVF per structure, but the bound is
// workload-dependent, so it cannot establish the worst case — only the
// stressmark methodology can.
type HVFResult struct {
	Rows []HVFRow
}

// String renders the HVFResult as its paper-style report.
func (h *HVFResult) String() string {
	var b strings.Builder
	b.WriteString("§VIII analysis — HVF (occupancy) bounds vs measured AVF, ROB\n\n")
	t := &report.Table{Headers: []string{"program", "ROB HVF", "ROB AVF", "masking gap"}}
	for _, r := range h.Rows {
		t.AddRow(r.Name, r.HVF.Value[uarch.ROB], r.AVF[uarch.ROB],
			r.HVF.Value[uarch.ROB]-r.AVF[uarch.ROB])
	}
	b.WriteString(t.String())
	b.WriteString("\nAVF ≤ HVF everywhere; the gap is program-side masking (un-ACE,\n")
	b.WriteString("wrong path) that hardware-only analysis cannot see (paper §VIII).\n")
	return b.String()
}

// HVFStudy computes the HVF bound for the stressmark and the suite and
// verifies AVF ≤ HVF throughout.
func (c *Context) HVFStudy(ctx context.Context) (*HVFResult, error) {
	cfg := c.Baseline
	sm, err := c.Stressmark(ctx, "baseline", cfg, uarch.UniformRates(1))
	if err != nil {
		return nil, err
	}
	wl, err := c.Workloads(ctx, cfg)
	if err != nil {
		return nil, err
	}
	out := &HVFResult{}
	addChecked := func(name string, r *avf.Result) error {
		h := analysis.HVFOf(r)
		if err := h.Check(r, 0.02); err != nil {
			return err
		}
		row := HVFRow{Name: name, HVF: h}
		copy(row.AVF[:], r.AVF[:])
		out.Rows = append(out.Rows, row)
		return nil
	}
	if err := addChecked("stressmark", sm.Result); err != nil {
		return nil, err
	}
	for _, r := range wl {
		if err := addChecked(r.Workload, r); err != nil {
			return nil, err
		}
	}
	return out, nil
}
