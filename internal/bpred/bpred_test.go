package bpred

import (
	"testing"

	"avfstress/internal/prog"
)

func TestConfigNormalisation(t *testing.T) {
	p := New(Config{GlobalEntries: 1000}) // not a power of two
	if got := p.Config().GlobalEntries; got != 1024 {
		t.Errorf("global entries normalised to %d, want 1024", got)
	}
	d := New(Config{})
	if d.Config() != DefaultConfig() {
		t.Errorf("zero config should normalise to the default, got %+v", d.Config())
	}
}

func TestAlwaysTakenConverges(t *testing.T) {
	p := New(DefaultConfig())
	const pc = 0x1000
	for i := 0; i < 64; i++ {
		p.Update(pc, true)
	}
	p.ResetStats()
	for i := 0; i < 1000; i++ {
		p.Update(pc, true)
	}
	if p.Mispredicts != 0 {
		t.Errorf("always-taken branch mispredicted %d times after training", p.Mispredicts)
	}
}

func TestLoopBackedgeNearPerfect(t *testing.T) {
	// A taken-except-exit loop backedge is the stressmark's only branch;
	// the paper requires the stressmark never to mispredict in steady
	// state.
	p := New(DefaultConfig())
	const pc = 0x2004
	for i := 0; i < 10000; i++ {
		p.Update(pc, true)
	}
	if rate := p.MispredictRate(); rate > 0.01 {
		t.Errorf("loop backedge mispredicted at rate %.4f", rate)
	}
}

func TestPeriodicPatternLearnedByLocal(t *testing.T) {
	p := New(DefaultConfig())
	gen := prog.Periodic{Period: 8, Duty: 4}
	const pc = 0x3000
	for i := int64(0); i < 2000; i++ {
		p.Update(pc, gen.Taken(i))
	}
	p.ResetStats()
	for i := int64(2000); i < 4000; i++ {
		p.Update(pc, gen.Taken(i))
	}
	if rate := p.MispredictRate(); rate > 0.05 {
		t.Errorf("trained periodic pattern mispredicted at rate %.3f", rate)
	}
}

func TestPhaseAlignedPeriodicsDoNotAlias(t *testing.T) {
	// Several branches sharing one cyclic pattern at different phases
	// must coexist in the history-indexed local table (the workload
	// synthesiser relies on this).
	p := New(DefaultConfig())
	gens := make([]prog.Periodic, 8)
	for i := range gens {
		gens[i] = prog.Periodic{Period: 8, Duty: 4, Phase: int64(i)}
	}
	for i := int64(0); i < 4000; i++ {
		for b, g := range gens {
			p.Update(uint64(0x4000+4*b), g.Taken(i))
		}
	}
	p.ResetStats()
	for i := int64(4000); i < 8000; i++ {
		for b, g := range gens {
			p.Update(uint64(0x4000+4*b), g.Taken(i))
		}
	}
	if rate := p.MispredictRate(); rate > 0.08 {
		t.Errorf("phase-aligned periodic branches mispredicted at rate %.3f", rate)
	}
}

func TestBernoulliMispredictNearBias(t *testing.T) {
	// A trained tournament predictor mispredicts a Bernoulli branch at
	// roughly the rare-direction probability.
	p := New(DefaultConfig())
	gen := prog.Bernoulli{Seed: 5, P: 0.1}
	const pc = 0x5000
	for i := int64(0); i < 5000; i++ {
		p.Update(pc, gen.Taken(i))
	}
	p.ResetStats()
	for i := int64(5000); i < 30000; i++ {
		p.Update(pc, gen.Taken(i))
	}
	rate := p.MispredictRate()
	if rate < 0.05 || rate > 0.2 {
		t.Errorf("bernoulli(0.1) mispredict rate %.3f outside [0.05, 0.2]", rate)
	}
}

func TestPredictMatchesUpdateDecision(t *testing.T) {
	p := New(DefaultConfig())
	gen := prog.Bernoulli{Seed: 3, P: 0.4}
	for i := int64(0); i < 2000; i++ {
		pred := p.Predict(0x6000)
		taken := gen.Taken(i)
		correct := p.Update(0x6000, taken)
		if correct != (pred == taken) {
			t.Fatalf("iteration %d: Predict and Update disagree", i)
		}
	}
}

func TestResetStatsKeepsTraining(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 100; i++ {
		p.Update(0x7000, true)
	}
	p.ResetStats()
	if p.Lookups != 0 || p.Mispredicts != 0 {
		t.Error("counters not cleared")
	}
	if !p.Predict(0x7000) {
		t.Error("training lost after ResetStats")
	}
}
