package experiments

import (
	"context"
	"strings"
	"testing"

	"avfstress/internal/avf"
	"avfstress/internal/codegen"
	"avfstress/internal/uarch"
)

// fastCtx shares one reference-knob context across the integration tests
// (workload simulations and stressmark evaluations are cached inside).
var fastCtx = NewContext(Options{
	Scale: 32, Seed: 1, UseReferenceKnobs: true,
	WorkloadInstr: 120_000, WorkloadWarmup: 50_000,
})

func TestReferenceKnobsKeys(t *testing.T) {
	for _, key := range []string{"baseline", "rhc", "edr", "configA"} {
		k, err := ReferenceKnobs(key)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		if err := k.Normalize(uarch.Baseline()).Validate(uarch.Baseline()); err != nil && key != "configA" {
			t.Errorf("%s: knobs do not normalise cleanly: %v", key, err)
		}
	}
	if _, err := ReferenceKnobs("nope"); err == nil {
		t.Error("unknown key accepted")
	}
	// The EDR reference uses the L2-hit generator, as the paper reports.
	edr, _ := ReferenceKnobs("edr")
	if !edr.L2Hit {
		t.Error("EDR reference knobs must select the L2-hit generator")
	}
}

func TestConfigTables(t *testing.T) {
	s := ConfigTable(uarch.Baseline())
	for _, want := range []string{"80 entries, 76 bits/entry", "20 entries, 32 bits/entry",
		"64kB, 2-way", "256 entry", "1024kB"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table I missing %q:\n%s", want, s)
		}
	}
	s2 := ConfigTable(uarch.ConfigA())
	if !strings.Contains(s2, "96 entries") || !strings.Contains(s2, "2048kB") {
		t.Errorf("Table II wrong:\n%s", s2)
	}
}

func TestNamesAndUnknown(t *testing.T) {
	if len(Names()) != 14 {
		t.Errorf("experiment count %d, want 14", len(Names()))
	}
	if _, err := fastCtx.Run(bg, "bogus"); err == nil {
		t.Error("unknown experiment accepted")
	}
	// table1/table2 need no simulation.
	for _, n := range []string{"table1", "table2"} {
		out, err := fastCtx.Run(bg, n)
		if err != nil || out == "" {
			t.Errorf("%s: %v", n, err)
		}
	}
}

func TestFig3StressmarkWinsEveryClass(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite in -short mode")
	}
	f, err := fastCtx.Fig3(bg)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Workloads) != 21 {
		t.Fatalf("Fig3 compares %d workloads, want 21 SPEC proxies", len(f.Workloads))
	}
	// The headline reproduction target: the stressmark induces the
	// highest SER in every class (paper: 1.4×/2.5×/1.5×).
	for _, cl := range avf.AllClasses() {
		if adv := f.Advantage(cl); adv <= 1.0 {
			t.Errorf("stressmark does not win class %v: advantage %.2fx over %s",
				cl, adv, f.BestWorkload(cl).Name)
		}
	}
	if adv := f.Advantage(avf.ClassQSRF); adv < 1.2 || adv > 1.8 {
		t.Errorf("core advantage %.2fx outside the paper-like band [1.2, 1.8]", adv)
	}
	if adv := f.Advantage(avf.ClassDL1DTLB); adv < 1.8 {
		t.Errorf("DL1+DTLB advantage %.2fx, paper reports ~2.5x", adv)
	}
	s := f.String()
	if !strings.Contains(s, "stressmark") || !strings.Contains(s, "QS+RF") {
		t.Error("rendering incomplete")
	}
}

func TestFig4MiBench(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite in -short mode")
	}
	f, err := fastCtx.Fig4(bg)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Workloads) != 12 {
		t.Fatalf("Fig4 compares %d workloads, want 12 MiBench proxies", len(f.Workloads))
	}
	for _, cl := range avf.AllClasses() {
		if adv := f.Advantage(cl); adv <= 1.0 {
			t.Errorf("stressmark does not win class %v (%.2fx)", cl, adv)
		}
	}
	// The paper calls MiBench-induced SER "low": L2 advantage is large.
	if adv := f.Advantage(avf.ClassL2); adv < 1.5 {
		t.Errorf("L2 advantage over MiBench %.2fx, want ≥ 1.5", adv)
	}
}

func TestFig6Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite in -short mode")
	}
	f, err := fastCtx.Fig6(bg)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Suites) != 3 || len(f.Rows[0]) != 11 || len(f.Rows[1]) != 10 || len(f.Rows[2]) != 12 {
		t.Fatalf("Fig6 shape wrong: %d suites, rows %d/%d/%d",
			len(f.Suites), len(f.Rows[0]), len(f.Rows[1]), len(f.Rows[2]))
	}
	// Stressmark dominates DL1 and L2 AVF for every workload ("much
	// higher AVF on all structures, with the exception of FUs and in some
	// cases RF" — paper; per-structure DTLB can be matched by dense
	// big-footprint proxies on the scaled TLB, while the DL1+DTLB *class*
	// win is asserted in the Fig3/Fig4 tests).
	for i := range f.Rows {
		for _, r := range f.Rows[i] {
			for _, s := range []uarch.Structure{uarch.DL1, uarch.L2} {
				if r.AVF[s] > f.Stressmark.AVF[s] {
					t.Errorf("%s beats the stressmark on %v: %.3f > %.3f",
						r.Name, s, r.AVF[s], f.Stressmark.AVF[s])
				}
			}
		}
	}
	if !strings.Contains(f.String(), "Figure 6(a)") {
		t.Error("rendering incomplete")
	}
}

func TestWorstCaseBoundExceedsSustained(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite in -short mode")
	}
	w, err := fastCtx.WorstCase(bg)
	if err != nil {
		t.Fatal(err)
	}
	// The unsustainable single-cycle bound must exceed the sustained
	// stressmark SER, and the stressmark should approach it (paper: 89%).
	if w.Stressmark >= w.Breakdown.Value() {
		t.Errorf("sustained %.3f not below the instantaneous bound %.3f",
			w.Stressmark, w.Breakdown.Value())
	}
	if ratio := w.Stressmark / w.Breakdown.Value(); ratio < 0.6 {
		t.Errorf("stressmark reaches only %.0f%% of the bound; paper ~89%%", ratio*100)
	}
	if len(w.Coverage) != int(avf.NumClasses) {
		t.Errorf("coverage for %d classes", len(w.Coverage))
	}
}

func TestTable3ReferenceMode(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite in -short mode")
	}
	tb, err := fastCtx.Table3(bg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("Table III rows = %d", len(tb.Rows))
	}
	base := tb.Rows[0]
	if base.Config != "Baseline" {
		t.Errorf("row order wrong: %s", base.Config)
	}
	// Baseline: stressmark above every estimator except raw rates (paper:
	// 0.63 vs 0.46 best program vs 0.58 per-structure vs 1.0 raw).
	if base.Stressmark <= base.BestProgramSER {
		t.Errorf("baseline stressmark %.3f does not beat best program %.3f",
			base.Stressmark, base.BestProgramSER)
	}
	if base.SumRawRates <= base.Stressmark {
		t.Error("raw-rate estimate must be the pessimistic upper bound")
	}
	if base.BestProgram == "" {
		t.Error("best program unnamed")
	}
	if !strings.Contains(tb.String(), "Table III") {
		t.Error("rendering incomplete")
	}
}

func TestFig8KnobsDiffer(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite in -short mode")
	}
	f, err := fastCtx.Fig8(bg)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Marks) != 3 {
		t.Fatalf("Fig8 has %d stressmarks", len(f.Marks))
	}
	if f.KnobsRHC == f.KnobsEDR {
		t.Error("RHC and EDR stressmarks should differ")
	}
	if !f.KnobsEDR.L2Hit {
		t.Error("EDR stressmark must use the L2-hit generator (paper §VI-A)")
	}
	if !strings.Contains(f.String(), "Figure 8(a)") {
		t.Error("rendering incomplete")
	}
}

func TestFig9ConfigAAdaptation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite in -short mode")
	}
	f, err := fastCtx.Fig9(bg)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Marks) != 2 {
		t.Fatalf("Fig9 has %d marks", len(f.Marks))
	}
	// Config A reference knobs: larger loop (91 ≤ 1.2×96) and more
	// miss-dependent instructions, as the paper reports.
	if f.Knobs.LoopSize <= 81 {
		t.Errorf("Config A loop %d should exceed the baseline's 81", f.Knobs.LoopSize)
	}
	if f.Knobs.MissDependent <= 7 {
		t.Errorf("Config A miss-dependent %d should exceed the baseline's 7", f.Knobs.MissDependent)
	}
}

func TestEvaluateReferenceProducesACEStressmark(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite in -short mode")
	}
	sm, err := fastCtx.Stressmark(bg, "baseline", fastCtx.Baseline, uarch.UniformRates(1))
	if err != nil {
		t.Fatal(err)
	}
	if sm.Result.ACEInstrFrac < 0.999 {
		t.Errorf("stressmark ACE fraction %.4f", sm.Result.ACEInstrFrac)
	}
	if err := codegen.CheckACEClosure(sm.Program); err != nil {
		t.Error(err)
	}
	// Cached: a second call returns the same object.
	sm2, err := fastCtx.Stressmark(bg, "baseline", fastCtx.Baseline, uarch.UniformRates(1))
	if err != nil {
		t.Fatal(err)
	}
	if sm != sm2 {
		t.Error("stressmark cache miss")
	}
}

func TestPowerContrastReproducesSectionIVB(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite in -short mode")
	}
	p, err := fastCtx.PowerContrast(bg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rows) != 35 { // stressmark + power virus + 33 proxies
		t.Fatalf("power study has %d rows", len(p.Rows))
	}
	pk, ak := p.PowerKing(), p.AVFKing()
	// The paper's §IV-B claim: the maximum-power program is not the
	// maximum-AVF program, and vice versa.
	if pk.Name == ak.Name {
		t.Errorf("power king and AVF king coincide: %s", pk.Name)
	}
	if ak.Name != "stressmark" {
		t.Errorf("AVF king is %s, want the stressmark", ak.Name)
	}
	// The stressmark sits in the lower half of the power ranking (long
	// stalls gate the clock), while the power king's core SER is well
	// below the stressmark's.
	if pk.SER >= ak.SER {
		t.Errorf("power king core SER %.3f not below stressmark %.3f", pk.SER, ak.SER)
	}
	if ak.Power >= pk.Power/2 {
		t.Errorf("stressmark power %.2f not well below the power king's %.2f", ak.Power, pk.Power)
	}
	if !strings.Contains(p.String(), "power viruses") {
		t.Error("rendering incomplete")
	}
}

func TestHVFStudyBoundsHoldSuiteWide(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite in -short mode")
	}
	h, err := fastCtx.HVFStudy(bg)
	if err != nil {
		t.Fatal(err) // HVFStudy itself fails on any AVF > HVF violation
	}
	if len(h.Rows) != 34 {
		t.Fatalf("HVF study has %d rows", len(h.Rows))
	}
	// The masking gap is strictly positive for proxies with un-ACE work.
	gaps := 0
	for _, r := range h.Rows[1:] {
		if r.HVF.Value[uarch.ROB]-r.AVF[uarch.ROB] > 0.02 {
			gaps++
		}
	}
	if gaps < 20 {
		t.Errorf("only %d/33 proxies show a visible ROB masking gap", gaps)
	}
}

func TestRunAllNamesIncludeExtras(t *testing.T) {
	names := Names()
	has := map[string]bool{}
	for _, n := range names {
		has[n] = true
	}
	if !has["powercontrast"] || !has["hvf"] || !has["rootcause"] {
		t.Errorf("extras missing from experiment list: %v", names)
	}
}

// bg is the test suite's shared background context.
var bg = context.Background()
