// Mitigation study (paper §VII): quantify how much two SER-mitigation
// mechanisms — Radiation-Hardened Circuitry (RHC) and Error Detection and
// Recovery (EDR) on the ROB/LQ/SQ — reduce the *worst-case* core SER, by
// re-generating a stressmark for each fault-rate set and comparing
// against the naive estimators of Table III.
//
// This is the workflow the paper proposes for architects: pick candidate
// structures to protect, re-run the methodology, and read off the new
// worst case (instead of guessing with safety margins).
//
// Run with: go run ./examples/mitigation
package main

import (
	"context"
	"fmt"
	"log"

	"avfstress"
	"avfstress/internal/ga"
)

func main() {
	cfg := avfstress.Scaled(avfstress.Baseline(), 32)
	cases := []struct {
		name  string
		rates avfstress.FaultRates
		note  string
	}{
		{"Baseline", avfstress.UniformRates(1), "no protection"},
		{"RHC", avfstress.RHCRates(), "hardened ROB/LQ/SQ (rates 0.25-0.4)"},
		{"EDR", avfstress.EDRRates(), "detect+recover on ROB/LQ/SQ (rate 0)"},
	}

	fmt.Println("re-generating the stressmark for each protection scheme on", cfg.Name)
	var worst []float64
	for _, c := range cases {
		res, err := avfstress.Search(context.Background(), avfstress.SearchSpec{
			Config: cfg,
			Rates:  c.rates,
			GA:     ga.Config{PopSize: 10, Generations: 8, Seed: 2},
		})
		if err != nil {
			log.Fatal(err)
		}
		ser := res.Result.SER(cfg, c.rates, avfstress.ClassQSRF)
		worst = append(worst, ser)
		mode := "L2-miss"
		if res.Knobs.L2Hit {
			mode = "L2-hit"
		}
		fmt.Printf("\n%s (%s):\n", c.name, c.note)
		fmt.Printf("  worst-case core SER: %.3f units/bit (stressmark, %s generator)\n", ser, mode)
		fmt.Printf("  knobs: loop=%d loads=%d stores=%d missdep=%d depdist=%d regreg=%.2f\n",
			res.Knobs.LoopSize, res.Knobs.NumLoads, res.Knobs.NumStores,
			res.Knobs.MissDependent, res.Knobs.DepDistance, res.Knobs.FracRegReg)
	}

	fmt.Println("\nmitigation effectiveness against the worst case:")
	for i, c := range cases[1:] {
		red := (1 - worst[i+1]/worst[0]) * 100
		fmt.Printf("  %-8s reduces the worst-case core SER by %.0f%%\n", c.name, red)
	}
	fmt.Println("\nThe methodology adapts automatically: when ROB/LQ/SQ stop paying off,")
	fmt.Println("the GA shifts stress to the IQ, FUs and register file (paper §VI-A).")
}
