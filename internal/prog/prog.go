// Package prog represents the synthetic loop programs executed by the
// pipeline model: a one-time initialisation block followed by a loop body
// that repeats for a configurable number of iterations.
//
// Programs are static; all per-iteration dynamic information (effective
// addresses, branch outcomes) is produced by pure generator functions of
// the iteration number. This keeps runs of tens of millions of dynamic
// instructions trace-free and bit-reproducible, and makes wrong-path
// re-fetch trivially consistent.
package prog

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"avfstress/internal/isa"
)

// Program is a static synthetic program.
type Program struct {
	Name string

	// Init executes once before the loop. It exists to define every
	// architected register before use (the paper's generator initialises
	// its memory region and pointer-chase state here).
	Init []isa.Instr

	// Body is the loop kernel. By convention the final instruction is the
	// loop backedge branch.
	Body []isa.Instr

	// AddrGens produce effective addresses for memory instructions; a
	// memory instruction's AddrGen field indexes this table.
	AddrGens []AddrGen

	// BrGens produce branch outcomes; a branch's BrGen field indexes this
	// table.
	BrGens []BranchGen

	// Iterations is the nominal loop trip count. Runs may be cut short by
	// the simulator's instruction budget.
	Iterations int64

	// FootprintBytes documents the data-memory region the program
	// touches (used in reports only).
	FootprintBytes uint64
}

// Base program-counter values. Instructions are isa.InstrBytes wide.
const (
	InitBase uint64 = 0x0000_1000
	BodyBase uint64 = 0x0001_0000
)

// PCOf returns the program counter of body instruction idx.
func PCOf(idx int) uint64 { return BodyBase + uint64(idx)*isa.InstrBytes }

// Validate checks structural integrity: instruction validity, generator
// references, and loop shape. It is exercised heavily by the codegen and
// failure-injection tests.
func (p *Program) Validate() error {
	if len(p.Body) == 0 {
		return fmt.Errorf("prog %q: empty body", p.Name)
	}
	if p.Iterations <= 0 {
		return fmt.Errorf("prog %q: non-positive iteration count %d", p.Name, p.Iterations)
	}
	check := func(where string, ins []isa.Instr) error {
		for i, in := range ins {
			if err := in.Validate(); err != nil {
				return fmt.Errorf("prog %q: %s[%d]: %w", p.Name, where, i, err)
			}
			if in.Op.IsMem() {
				if in.AddrGen < 0 || in.AddrGen >= len(p.AddrGens) {
					return fmt.Errorf("prog %q: %s[%d]: address generator %d out of range (have %d)",
						p.Name, where, i, in.AddrGen, len(p.AddrGens))
				}
			}
			if in.Op == isa.OpBranch {
				if in.BrGen < 0 || in.BrGen >= len(p.BrGens) {
					return fmt.Errorf("prog %q: %s[%d]: branch generator %d out of range (have %d)",
						p.Name, where, i, in.BrGen, len(p.BrGens))
				}
			}
		}
		return nil
	}
	if err := check("init", p.Init); err != nil {
		return err
	}
	return check("body", p.Body)
}

// Listing renders the program as annotated assembly, in the spirit of the
// paper's generated "C with embedded Alpha assembly".
func (p *Program) Listing() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; program %s\n", p.Name)
	fmt.Fprintf(&b, "; iterations=%d footprint=%d bytes\n", p.Iterations, p.FootprintBytes)
	for i, g := range p.AddrGens {
		fmt.Fprintf(&b, "; ag%-2d %s\n", i, g)
	}
	for i, g := range p.BrGens {
		fmt.Fprintf(&b, "; bg%-2d %s\n", i, g)
	}
	b.WriteString("init:\n")
	for i, in := range p.Init {
		fmt.Fprintf(&b, "  %04x  %-32s", InitBase+uint64(i)*isa.InstrBytes, in.String())
		if in.Label != "" {
			fmt.Fprintf(&b, " ; %s", in.Label)
		}
		b.WriteByte('\n')
	}
	b.WriteString("loop:\n")
	for i, in := range p.Body {
		fmt.Fprintf(&b, "  %04x  %-32s", PCOf(i), in.String())
		if in.Label != "" {
			fmt.Fprintf(&b, " ; %s", in.Label)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// StaticLen returns the total static instruction count.
func (p *Program) StaticLen() int { return len(p.Init) + len(p.Body) }

// Fingerprint returns a compact content address of the program for
// internal/simcache keys: a hex SHA-256 over the name (which reaches
// avf.Result.Workload), the iteration count, the footprint, every
// instruction field that influences execution, and the full state of
// every address and branch generator. Instruction labels are excluded —
// they only decorate listings. The built-in generators are plain value
// structs, so %T/%+v renders their complete state deterministically;
// custom generator implementations must do the same for their
// simulation-relevant fields.
func (p *Program) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "prog{name=%q iters=%d footprint=%d}", p.Name, p.Iterations, p.FootprintBytes)
	section := func(tag string, ins []isa.Instr) {
		fmt.Fprintf(h, "|%s[%d]", tag, len(ins))
		for i := range ins {
			in := &ins[i]
			fmt.Fprintf(h, "|%d,%d,%d,%d,%d,%t,%d,%d,%t",
				in.Op, in.Dest, in.Src1, in.Src2, in.Imm, in.RegReg,
				in.AddrGen, in.BrGen, in.UnACE)
		}
	}
	section("init", p.Init)
	section("body", p.Body)
	// %#v, not %+v: the generators implement Stringer for listings, and
	// %+v would hash those lossy display strings (Bernoulli, for one,
	// rounds its probability to three decimals), aliasing distinct
	// programs. %#v renders the raw fields exactly and includes the
	// concrete type name.
	for _, g := range p.AddrGens {
		fmt.Fprintf(h, "|ag:%#v", g)
	}
	for _, g := range p.BrGens {
		fmt.Fprintf(h, "|bg:%#v", g)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Dyn is one dynamic instruction instance handed to the pipeline.
type Dyn struct {
	// Static points at the static instruction. It is never nil for
	// instructions produced by a Stream.
	Static *isa.Instr
	// Seq is the global dynamic sequence number, starting at 0.
	Seq int64
	// Iter is the loop iteration (-1 for init instructions).
	Iter int64
	// PC is the program counter of the instance.
	PC uint64
	// Addr is the effective address for memory ops (0 otherwise).
	Addr uint64
	// Taken is the actual branch outcome for OpBranch.
	Taken bool
}

// Stream lazily produces the dynamic instruction sequence of a program.
// The zero value is not usable; construct with NewStream.
type Stream struct {
	p       *Program
	inInit  bool
	idx     int
	iter    int64
	seq     int64
	scratch []isa.Reg
}

// NewStream returns a stream positioned at the first instruction.
func NewStream(p *Program) *Stream {
	return &Stream{p: p, inInit: len(p.Init) > 0}
}

// Reset rewinds the stream to the first instruction.
func (s *Stream) Reset() {
	s.inInit = len(s.p.Init) > 0
	s.idx, s.iter, s.seq = 0, 0, 0
}

// ResetTo rebinds the stream to program p and rewinds it, reusing the
// Stream allocation (used by pipe.Pipeline.Reset when pooling pipelines
// across GA fitness evaluations).
func (s *Stream) ResetTo(p *Program) {
	s.p = p
	s.Reset()
}

// Program returns the underlying program.
func (s *Stream) Program() *Program { return s.p }

// StreamState is the resumable cursor of a Stream: everything beyond the
// program itself that determines the remaining dynamic sequence. It is a
// plain value so pipe checkpoints can capture and serialise it.
type StreamState struct {
	InInit bool
	Idx    int
	Iter   int64
	Seq    int64
}

// State returns the stream's current cursor.
func (s *Stream) State() StreamState {
	return StreamState{InInit: s.inInit, Idx: s.idx, Iter: s.iter, Seq: s.seq}
}

// SetState repositions the stream at a previously captured cursor. The
// stream must already be bound (via NewStream or ResetTo) to the same
// program the state was captured from.
func (s *Stream) SetState(st StreamState) {
	s.inInit = st.InInit
	s.idx = st.Idx
	s.iter = st.Iter
	s.seq = st.Seq
}

// Next returns the next dynamic instruction. ok is false once the
// program's iteration count is exhausted.
func (s *Stream) Next() (d Dyn, ok bool) {
	ok = s.NextInto(&d)
	return d, ok
}

// NextInto writes the next dynamic instruction into d, avoiding the
// struct copies of Next on the simulator's per-fetch hot path. It
// reports false (leaving d untouched) once the program's iteration count
// is exhausted.
func (s *Stream) NextInto(d *Dyn) bool {
	p := s.p
	if s.inInit {
		s.materialise(d, &p.Init[s.idx], -1)
		s.idx++
		if s.idx == len(p.Init) {
			s.inInit = false
			s.idx = 0
		}
		return true
	}
	if s.iter >= p.Iterations {
		return false
	}
	s.materialise(d, &p.Body[s.idx], s.iter)
	s.idx++
	if s.idx == len(p.Body) {
		s.idx = 0
		s.iter++
	}
	return true
}

func (s *Stream) materialise(d *Dyn, in *isa.Instr, iter int64) {
	d.Static = in
	d.Seq = s.seq
	d.Iter = iter
	d.Addr = 0
	d.Taken = false
	if iter < 0 {
		d.PC = InitBase + uint64(s.idx)*isa.InstrBytes
	} else {
		d.PC = PCOf(s.idx)
	}
	if in.Op.IsMem() {
		// Type-switch devirtualisation: the built-in generators resolve to
		// direct (inlinable) calls on the per-fetch hot path, the
		// interface call remains as the general fallback.
		switch g := s.p.AddrGens[in.AddrGen].(type) {
		case LineSweep:
			d.Addr = g.Addr(iter)
		case PointerChase:
			d.Addr = g.Addr(iter)
		case StridedBlock:
			d.Addr = g.Addr(iter)
		case RandomWalk:
			d.Addr = g.Addr(iter)
		case Fixed:
			d.Addr = g.Address
		default:
			d.Addr = g.Addr(iter)
		}
	}
	if in.Op == isa.OpBranch {
		switch g := s.p.BrGens[in.BrGen].(type) {
		case LoopBranch:
			d.Taken = g.Taken(iter)
		case Periodic:
			d.Taken = g.Taken(iter)
		case Bernoulli:
			d.Taken = g.Taken(iter)
		default:
			d.Taken = g.Taken(iter)
		}
	}
	s.seq++
}
