// Package pipe is the cycle-level out-of-order core model (the
// reproduction's substitute for SimAlpha) with built-in ACE/AVF
// accounting (the substitute for SimSoda).
//
// The model implements the mechanisms the paper's methodology exploits:
//
//   - a 4-wide fetch/map/issue/commit pipeline with an issue queue whose
//     entries are freed at issue (21264-style), a reorder buffer, load
//     and store queues, and a physical register file with free-list
//     renaming;
//   - at most two memory operations issued per cycle (the 21264
//     restriction the paper names as limiting LQ/SQ fill rate);
//   - long-latency loads through a two-level cache hierarchy and DTLB;
//   - branch prediction with wrong-path fetch and a fixed redirect
//     penalty; wrong-path work is un-ACE and reduces queue AVF, exactly
//     the front-end masking effect of §IV-A.4;
//   - perfect memory disambiguation with store→load forwarding (the
//     synthetic programs have statically known addresses).
//
// Documented simplifications versus a full 21264 model: fetch and map
// are merged (redirect latency is modelled by the misprediction penalty),
// branch predictor state updates at fetch, wrong-path memory operations
// do not pollute the caches, and there is no bandwidth contention between
// hierarchy levels.
//
// The core is event-driven rather than scan-based: completions are
// scheduled on a calendar queue (timing wheel) keyed by cycle
// (events.go), operand wakeups ride the producers' completion broadcasts
// through per-register waiter lists, and issue selection walks a ready
// bitmap over the ROB ring in age order (readyq.go), so per-cycle work
// is proportional to the number of state changes, not to the ROB size.
// DESIGN.md §2 states the invariants.
//
// Because every run is deterministic, the pipeline also serves as the
// replay engine for Monte Carlo fault injection (inject.go): RunFault
// re-runs a program with a single-bit fault applied at a chosen cycle
// and reports whether the flip reaches committed architectural state,
// and Pool.SimulateGolden captures the commit digest replays are
// diffed against (DESIGN.md §9).
package pipe

import (
	"errors"
	"fmt"
	"math"

	"avfstress/internal/avf"
	"avfstress/internal/bpred"
	"avfstress/internal/cache"
	"avfstress/internal/isa"
	"avfstress/internal/prog"
	"avfstress/internal/uarch"
)

const (
	noReg   int16 = -1
	farAway int64 = math.MaxInt64 / 4
)

type uopState uint8

const (
	sWaiting uopState = iota // dispatched, not yet issued
	sIssued                  // executing
	sDone                    // completed, awaiting commit
)

// uop is one in-flight dynamic instruction (a ROB entry). Only the
// static-instruction pointer and the effective address survive from the
// dynamic instance (everything else the stages need is re-derived or
// captured in dedicated fields), keeping the ROB ring compact — at() is
// on every hot path.
type uop struct {
	static *isa.Instr
	addr   uint64 // effective address (memory ops)

	// dynSeq is the dynamic stream sequence number (prog.Dyn.Seq; -1
	// for synthetic wrong-path fetches). Injection replays report it as
	// the identity of a corrupted trial's first divergent commit.
	dynSeq int64

	dispatchCycle int64
	issueCycle    int64
	doneCycle     int64
	dataReady     int64 // loads: cycle the fill data arrived
	execLatency   int64 // FU stage-cycles consumed

	// gen counts dispatches into this ROB slot; scheduled events carry
	// the value so entries for flushed uops die on a mismatch.
	gen uint32

	destPhys int16
	oldPhys  int16
	src      [2]int16

	// opc caches static.Op so the stage hot paths avoid chasing the
	// static-instruction pointer.
	opc   isa.Op
	state uopState
	// pendingSrcs is the number of source operands not yet ready; the
	// uop enters the ready queue when it reaches zero.
	pendingSrcs uint8

	wrongPath bool
	ace       bool
	inIQ      bool
	inLQ      bool
	inSQ      bool
	forwarded bool // load satisfied from the store queue
	predTaken bool
	mispred   bool
}

func (u *uop) op() isa.Op { return u.opc }

type physReg struct {
	readyCycle int64
	written    bool // written during this run (not an initial value)
	aceValue   bool
	writeTime  int64
	lastRead   int64
}

// RunConfig bounds one simulation.
type RunConfig struct {
	// MaxInstructions is the total committed-instruction budget,
	// including warmup. Zero means run the program to completion.
	MaxInstructions int64
	// WarmupInstructions are committed before measurement starts.
	WarmupInstructions int64
	// MaxCycles caps simulated cycles (0 = derived automatically).
	MaxCycles int64
	// DeadlockCycles aborts if no instruction commits for this many
	// cycles (0 = 1,000,000).
	DeadlockCycles int64
}

// Fingerprint returns a canonical description of the run budget for
// internal/simcache keys. Every field can change the simulated window
// (and MaxCycles/DeadlockCycles can cut a run short), so all of them
// participate.
func (rc RunConfig) Fingerprint() string {
	return fmt.Sprintf("pipe.RunConfig%+v", rc)
}

// Pipeline simulates one program on one configuration. Create with New
// and call Run; Reset re-arms the same pipeline for another program on
// the same configuration without reallocating (see Pool).
type Pipeline struct {
	cfg    uarch.Config
	core   uarch.CoreConfig
	mem    *cache.Hierarchy
	bp     *bpred.Predictor
	stream *prog.Stream
	p      *prog.Program

	now int64

	rob     []uop
	ckpt    [][]int16 // rename-map checkpoint per ROB slot (branches only)
	head    int64     // oldest in-flight seq
	tail    int64     // next seq to allocate
	robCap  int64     // architectural capacity (cfg.Core.ROBEntries)
	robMask int64     // ring mask; ring size is the next power of two ≥ robCap

	archMap  []int16
	freeList []int16
	regs     []physReg

	compW   eventWheel    // completion events, keyed by doneCycle
	readyB  readyBits     // operand-ready uops, one bit per ROB slot
	waiters [][]waiterRef // per-physical-register consumers awaiting completion broadcast
	// blockedOn parks disambiguation-blocked loads on the ROB slot of the
	// store blocking them; the store's completion re-readies them.
	blockedOn [][]readyRef

	// dwStores indexes the in-flight correct-path stores by doubleword
	// address (age-ordered seqs), replacing loadMemCheck's ROB back-scan
	// with a couple of open-addressing probes (dwindex.go).
	dwStores dwIndex

	iqUsed, lqUsed, sqUsed int

	fetchStallUntil int64
	wrongPathMode   bool
	wpIdx           int
	pending         fetchItem
	havePending     bool
	streamDone      bool

	acct accounting

	// lastCommit is the cycle of the most recent commit, feeding the
	// deadlock detector. It is part of checkpoints so a restored run
	// resumes with the same deadlock headroom.
	lastCommit int64

	// Fault-injection replay state (inject.go): inj is non-nil only
	// inside fault replays; digestOn enables the commit digest (RunFault
	// full mode and Pool.SimulateGolden). ckptRec, non-nil only inside
	// SimulateGoldenCheckpointed, captures fork-replay checkpoints at the
	// top of the cycle loop (snapshot.go). Normal runs pay one
	// predictable branch per cycle and per commit.
	inj      *injState
	digestOn bool
	digest   uint64
	ckptRec  *ckptRecorder
	// liveRec, non-nil only inside SimulateGoldenRecorded, observes
	// correct-path destination writes and slot releases to map
	// statically dead definitions onto physical-register occupancy
	// intervals (liverec.go).
	liveRec *liveRecorder
}

type fetchItem struct {
	dyn       prog.Dyn
	wrongPath bool
}

// New builds a pipeline for the given configuration and program. The
// configuration and program must validate.
func New(cfg uarch.Config, p *prog.Program) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	mem, err := cache.NewHierarchy(cfg.Mem)
	if err != nil {
		return nil, err
	}
	pl := &Pipeline{
		cfg:    cfg,
		core:   cfg.Core,
		mem:    mem,
		bp:     bpred.New(cfg.Core.Bpred),
		stream: prog.NewStream(p),
		p:      p,
		robCap: int64(cfg.Core.ROBEntries),
	}
	ring := int64(1)
	for ring < pl.robCap {
		ring <<= 1
	}
	pl.robMask = ring - 1
	pl.rob = make([]uop, ring)
	pl.ckpt = make([][]int16, ring)
	ckptBacking := make([]int16, int(ring)*isa.NumArchRegs)
	for i := range pl.ckpt {
		pl.ckpt[i] = ckptBacking[i*isa.NumArchRegs : (i+1)*isa.NumArchRegs]
	}
	pl.blockedOn = make([][]readyRef, ring)
	pl.readyB.init(ring)
	pl.archMap = make([]int16, isa.NumArchRegs)
	pl.regs = make([]physReg, cfg.Core.PhysRegs)
	pl.freeList = make([]int16, 0, cfg.Core.PhysRegs)
	pl.waiters = make([][]waiterRef, cfg.Core.PhysRegs)
	pl.dwStores.initDW(cfg.Core.SQEntries)
	// Event horizon: no completion or wakeup is ever scheduled further
	// ahead than the fully serialised memory round trip plus the longest
	// functional-unit latency; double it for margin (the wheel can still
	// grow if a pathological configuration exceeds this).
	horizon := int64(cfg.Mem.MemLatency + cfg.Mem.DTLB.WalkLatency +
		cfg.Mem.DL1.HitLatency + cfg.Mem.L2.HitLatency +
		cfg.Core.MulLatency + cfg.Core.ALULatency + cfg.Core.MispredictPenalty + 64)
	pl.compW.initWheel(2 * horizon)
	pl.resetArchState()
	return pl, nil
}

// pushStore records a dispatched correct-path store in the doubleword
// index; its seq is strictly larger than every existing entry.
func (pl *Pipeline) pushStore(dw uint64, seq int64) { pl.dwStores.push(dw, seq) }

// dropStore removes a store that left flight: at commit it is the oldest
// entry of its list, at flush the youngest.
func (pl *Pipeline) dropStore(dw uint64, youngest bool) { pl.dwStores.drop(dw, youngest) }

// resetArchState (re)initialises the rename map, free list and register
// file to their power-on state.
func (pl *Pipeline) resetArchState() {
	// Architected registers r0..r30 start mapped to physical 0..30 and
	// ready; r31 is the hardwired zero.
	for r := 0; r < isa.NumArchRegs-1; r++ {
		pl.archMap[r] = int16(r)
	}
	pl.archMap[isa.RZero] = noReg
	for i := range pl.regs {
		pl.regs[i] = physReg{}
	}
	pl.freeList = pl.freeList[:0]
	for pr := isa.NumArchRegs - 1; pr < pl.core.PhysRegs; pr++ {
		pl.freeList = append(pl.freeList, int16(pr))
	}
}

// Reset re-arms the pipeline to simulate program p from cycle zero on
// the same configuration, reusing every allocation (ROB ring, checkpoint
// matrix, register file, event heaps, cache hierarchy). A Reset pipeline
// is bit-identical to a freshly built one; the golden-equivalence test
// and TestPoolMatchesFresh lock that in.
func (pl *Pipeline) Reset(p *prog.Program) error {
	if err := p.Validate(); err != nil {
		return err
	}
	pl.p = p
	pl.stream.ResetTo(p)
	pl.now = 0
	pl.head, pl.tail = 0, 0
	pl.iqUsed, pl.lqUsed, pl.sqUsed = 0, 0, 0
	pl.fetchStallUntil = 0
	pl.wrongPathMode = false
	pl.wpIdx = 0
	pl.pending = fetchItem{}
	pl.havePending = false
	pl.streamDone = false
	pl.acct = accounting{}
	pl.compW.reset()
	pl.readyB.reset()
	for i := range pl.waiters {
		pl.waiters[i] = pl.waiters[i][:0]
	}
	for i := range pl.blockedOn {
		pl.blockedOn[i] = pl.blockedOn[i][:0]
	}
	pl.dwStores.clearDW()
	pl.lastCommit = 0
	pl.inj = nil
	pl.digestOn = false
	pl.digest = 0
	pl.ckptRec = nil
	pl.liveRec = nil
	// ROB slots and checkpoints are left dirty: dispatch fully overwrites
	// a slot (preserving only gen) before any field is read.
	pl.resetArchState()
	pl.mem.Reset()
	pl.bp.Reset()
	return nil
}

func (pl *Pipeline) at(seq int64) *uop { return &pl.rob[seq&pl.robMask] }

func (pl *Pipeline) robCount() int { return int(pl.tail - pl.head) }

// Run executes the program under the given budget and returns the AVF
// result. Call once per New or Reset.
func (pl *Pipeline) Run(rc RunConfig) (*avf.Result, error) {
	if err := pl.runLoop(rc); err != nil {
		return nil, err
	}
	if !pl.acct.measuring {
		return nil, errors.New("pipe: program ended inside warmup window")
	}
	return pl.finalize(), nil
}

// runBudget holds the normalised cycle-loop limits derived from a
// RunConfig. Deriving them is deterministic, so a replay resumed from a
// checkpoint recomputes the identical budget from the same RunConfig.
type runBudget struct {
	maxInstrs int64
	maxCycles int64
	deadlock  int64
}

// budget normalises rc into hard loop limits.
func (pl *Pipeline) budget(rc RunConfig) (runBudget, error) {
	b := runBudget{
		maxInstrs: rc.MaxInstructions,
		maxCycles: rc.MaxCycles,
		deadlock:  rc.DeadlockCycles,
	}
	if b.deadlock <= 0 {
		b.deadlock = 1_000_000
	}
	if b.maxInstrs <= 0 {
		b.maxInstrs = math.MaxInt64
	}
	if b.maxCycles <= 0 {
		if rc.MaxInstructions > 0 {
			// Generous bound: every instruction fully serialised through
			// main memory would still finish within this.
			b.maxCycles = rc.MaxInstructions*int64(pl.cfg.Mem.MemLatency+pl.cfg.Mem.DTLB.WalkLatency+32) + 10_000
		} else {
			b.maxCycles = math.MaxInt64 / 2
		}
	}
	if rc.WarmupInstructions >= b.maxInstrs {
		return b, fmt.Errorf("pipe: warmup %d >= budget %d", rc.WarmupInstructions, b.maxInstrs)
	}
	return b, nil
}

// runLoop executes the program under the budget from cycle zero, leaving
// the pipeline state at end-of-run for the caller to finalize.
func (pl *Pipeline) runLoop(rc RunConfig) error {
	b, err := pl.budget(rc)
	if err != nil {
		return err
	}
	pl.acct.warmupLeft = rc.WarmupInstructions
	if rc.WarmupInstructions == 0 {
		pl.startMeasurement()
	}
	pl.lastCommit = 0
	return pl.runCycles(b)
}

// resumeLoop continues a run restored from a checkpoint under the same
// RunConfig the golden run used: warmup state, commit counts and the
// deadlock watermark all live in the restored state, so only the budget
// is recomputed.
func (pl *Pipeline) resumeLoop(rc RunConfig) error {
	b, err := pl.budget(rc)
	if err != nil {
		return err
	}
	return pl.runCycles(b)
}

// runCycles is the shared cycle loop of golden runs, fault replays and
// checkpoint-resumed replays. A fault-injection replay (pl.inj non-nil)
// applies each of its faults at that fault's injection cycle, polls the
// fate watches, and returns as soon as every outcome is resolved unless
// running in full mode. A checkpointing golden run (pl.ckptRec non-nil)
// snapshots the full simulator state at the top of the loop whenever the
// recorder's next capture cycle is reached.
func (pl *Pipeline) runCycles(b runBudget) error {
	for pl.acct.committed+pl.acct.warmupDone < b.maxInstrs {
		if pl.streamDone && pl.robCount() == 0 && !pl.havePending {
			break
		}
		if pl.now >= b.maxCycles {
			return fmt.Errorf("pipe: cycle budget %d exhausted at %d committed instructions",
				b.maxCycles, pl.acct.committed+pl.acct.warmupDone)
		}
		if rec := pl.ckptRec; rec != nil && pl.acct.measuring && pl.now >= rec.nextAt {
			rec.take(pl)
		}
		n := pl.commit()
		c := pl.complete()
		i := pl.issue()
		d := pl.dispatch()
		if n > 0 {
			pl.lastCommit = pl.now
		}
		if pl.now-pl.lastCommit > b.deadlock {
			return fmt.Errorf("pipe: deadlock: no commit for %d cycles at cycle %d (rob=%d iq=%d lq=%d sq=%d)",
				b.deadlock, pl.now, pl.robCount(), pl.iqUsed, pl.lqUsed, pl.sqUsed)
		}
		step := int64(1)
		if n+c+i+d == 0 {
			// Nothing changed this cycle: microarchitectural state is
			// frozen until the next completion or the end of a fetch
			// stall (typically the shadow of an L2 miss). Fast-forward.
			if next := pl.nextEvent(); next > pl.now+1 {
				step = next - pl.now
			}
		}
		if pl.acct.measuring {
			pl.acct.tickN(pl, step)
		}
		if inj := pl.inj; inj != nil {
			// End-of-cycle injection point: each fault lands after the
			// stages of its cycle have run, matching the half-open
			// [start, end) convention of every ACE interval. A frozen
			// multi-cycle step contains no state change, so applying at
			// any cycle inside it is equivalent. Faults are pure
			// observers, so co-replayed trials resolve exactly as they
			// would alone.
			for inj.next < len(inj.trials) {
				t := &inj.trials[inj.next]
				if t.fault.Cycle >= pl.now+step {
					break
				}
				if !t.applied {
					pl.applyFault(t)
				}
				inj.next++
			}
			if inj.memOpen > 0 {
				pl.injPoll()
			}
			if inj.open == 0 && !inj.full {
				return nil
			}
		}
		pl.now += step
	}
	return nil
}

// nextEvent returns the earliest future cycle at which pipeline state can
// change: an in-flight completion or the end of a fetch stall. Returns a
// far-future sentinel when nothing is pending (the deadlock detector
// handles that case). Operand wakeups never precede the completion that
// produces them, so scanning the completion wheel is sufficient.
func (pl *Pipeline) nextEvent() int64 {
	next := pl.earliestLiveCompletion()
	if pl.fetchStallUntil > pl.now && pl.fetchStallUntil < next {
		next = pl.fetchStallUntil
	}
	if next <= pl.now {
		return pl.now + 1
	}
	return next
}
