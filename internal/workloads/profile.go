// Package workloads synthesises the 33-program reference suite standing
// in for the paper's SPEC CPU2006 (11 integer + 10 FP) and MiBench (12)
// workloads, which are licensed suites compiled for Alpha that we cannot
// ship or run. Each proxy is a parameterised loop whose first-order
// characteristics — instruction mix, attainable ILP, branch behaviour and
// predictability, working-set size relative to the cache hierarchy,
// pointer-chase (dependent-miss) fraction, and un-ACE instruction
// fraction (NOPs plus the 3–16% dynamically dead instructions of
// Butts & Sohi) — are set per benchmark from published characterisations.
//
// The paper uses the suites only as an SER-coverage reference: the claim
// under reproduction is that the generated stressmark induces higher SER
// than the *best* of a broad, realistically masked workload population.
// The proxies are run on the same simulator as the stressmark, so all
// masking mechanisms (mispredict flushes, dead code, partial cache
// coverage, TLB thrash) act on them identically. DESIGN.md §4 documents
// this substitution.
package workloads

import (
	"fmt"
	"math/rand"

	"avfstress/internal/isa"
	"avfstress/internal/prog"
	"avfstress/internal/uarch"
)

// Suite labels the origin suite of a proxy.
type Suite int

// Suites.
const (
	SPECInt Suite = iota
	SPECFP
	MiBench
)

// String renders the suite name ("SPECint", ...).
func (s Suite) String() string {
	switch s {
	case SPECInt:
		return "SPECint2006"
	case SPECFP:
		return "SPECfp2006"
	case MiBench:
		return "MiBench"
	}
	return fmt.Sprintf("suite(%d)", int(s))
}

// Profile captures the first-order, microarchitecture-independent
// characteristics of one benchmark.
type Profile struct {
	Name  string
	Suite Suite

	// Instruction mix (fractions of the loop body; the remainder is
	// arithmetic).
	LoadFrac   float64
	StoreFrac  float64
	BranchFrac float64

	// HardBranchFrac is the fraction of branches that are data-dependent
	// (Bernoulli with probability MispredP of the rare direction); the
	// rest follow a predictable periodic pattern.
	HardBranchFrac float64
	// MispredP sets the rare-direction probability of hard branches; a
	// trained tournament predictor mispredicts them at roughly this rate.
	MispredP float64

	// LongArithFrac is the multiplier share of arithmetic (proxy for FP
	// and long-latency work).
	LongArithFrac float64
	// Lanes is the number of independent dependence chains interleaved
	// (attainable ILP); ChainLen is the arithmetic chain length between a
	// value's creation and its store.
	Lanes    int
	ChainLen int

	// WorkingSetL2x sizes the data footprint as a multiple of the L2
	// capacity (so proxies scale with uarch.Scaled configurations).
	WorkingSetL2x float64
	// ChaseFrac is the fraction of loads forming serialised dependent
	// chases (mcf-style); RandomFrac the fraction with random addresses;
	// the rest are strided streams.
	ChaseFrac  float64
	RandomFrac float64

	// UnACEFrac is the fraction of instructions that are un-ACE
	// (one third emitted as NOPs, the rest marked dynamically dead).
	UnACEFrac float64

	// BodySize is the static loop length in instructions.
	BodySize int
}

// Validate reports profile errors.
func (pf Profile) Validate() error {
	sum := pf.LoadFrac + pf.StoreFrac + pf.BranchFrac
	if sum > 0.95 {
		return fmt.Errorf("workload %s: mix fractions sum to %.2f", pf.Name, sum)
	}
	for _, f := range []float64{pf.LoadFrac, pf.StoreFrac, pf.BranchFrac,
		pf.HardBranchFrac, pf.MispredP, pf.LongArithFrac, pf.ChaseFrac,
		pf.RandomFrac, pf.UnACEFrac} {
		if f < 0 || f > 1 {
			return fmt.Errorf("workload %s: fraction %v out of [0,1]", pf.Name, f)
		}
	}
	if pf.BodySize < 8 {
		return fmt.Errorf("workload %s: body size %d too small", pf.Name, pf.BodySize)
	}
	if pf.WorkingSetL2x <= 0 {
		return fmt.Errorf("workload %s: non-positive working set", pf.Name)
	}
	if pf.Lanes < 1 || pf.ChainLen < 0 {
		return fmt.Errorf("workload %s: bad ILP shape lanes=%d chain=%d", pf.Name, pf.Lanes, pf.ChainLen)
	}
	return nil
}

// Build synthesises the proxy program for a configuration. Deterministic
// in (profile, cfg, seed).
func (pf Profile) Build(cfg uarch.Config, seed int64) (*prog.Program, error) {
	if err := pf.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := &builder{pf: pf, cfg: cfg, rng: rand.New(rand.NewSource(seed ^ int64(len(pf.Name))))}
	return b.build()
}

type builder struct {
	pf  Profile
	cfg uarch.Config
	rng *rand.Rand

	gens      []prog.AddrGen
	brs       []prog.BranchGen
	ws        uint64
	base      uint64
	chaseRegs []isa.Reg
}

const regBase isa.Reg = 2 // induction-like base register

func (b *builder) build() (*prog.Program, error) {
	pf := b.pf
	line := uint64(b.cfg.Mem.L2.LineBytes)
	b.ws = uint64(pf.WorkingSetL2x * float64(b.cfg.Mem.L2.SizeBytes))
	if min := 2 * line; b.ws < min {
		b.ws = min
	}
	b.ws -= b.ws % line
	b.base = 0x4000_0000

	n := pf.BodySize
	nLoad := int(pf.LoadFrac * float64(n))
	nStore := int(pf.StoreFrac * float64(n))
	nBranch := int(pf.BranchFrac * float64(n))
	nUnACE := int(pf.UnACEFrac * float64(n))
	nNop := nUnACE / 3
	nDead := nUnACE - nNop
	nChase := int(pf.ChaseFrac * float64(nLoad))
	if nChase > 4 {
		nChase = 4 // up to four serialised chase streams (bounded MLP)
	}

	// Reserve registers: r2 base; r1, r28..r30 chase streams; pool rest.
	var pool []isa.Reg
	pool = append(pool, 0)
	chaseCandidates := []isa.Reg{1, 28, 29, 30}
	b.chaseRegs = chaseCandidates[:nChase]
	for r := isa.Reg(3); r < isa.NumArchRegs-1; r++ {
		if int(r) >= 28 && containsReg(b.chaseRegs, r) {
			continue
		}
		pool = append(pool, r)
	}

	// Remaining op budget is arithmetic.
	nArith := n - nLoad - nStore - nBranch - nNop - 1 // -1 induction
	if nArith < 0 {
		return nil, fmt.Errorf("workload %s: mix overflows body (%d loads %d stores %d branches %d nops > %d)",
			pf.Name, nLoad, nStore, nBranch, nNop, n)
	}

	// Multiset of ops to place.
	kinds := make([]isa.Op, 0, n)
	for i := 0; i < nLoad; i++ {
		kinds = append(kinds, isa.OpLoad)
	}
	for i := 0; i < nStore; i++ {
		kinds = append(kinds, isa.OpStore)
	}
	for i := 0; i < nBranch; i++ {
		kinds = append(kinds, isa.OpBranch)
	}
	for i := 0; i < nNop; i++ {
		kinds = append(kinds, isa.OpNop)
	}
	for i := 0; i < nArith; i++ {
		kinds = append(kinds, isa.OpAdd) // latency decided at emission
	}
	b.rng.Shuffle(len(kinds), func(i, j int) { kinds[i], kinds[j] = kinds[j], kinds[i] })

	// Lane state: each lane carries a chain value register.
	lanes := pf.Lanes
	if lanes > 10 {
		lanes = 10
	}
	if lanes > len(pool)/2 {
		lanes = len(pool) / 2
	}
	cur := make([]isa.Reg, lanes)
	age := make([]int, lanes) // ops since the lane last stored
	for i := range cur {
		cur[i] = pool[0]
		pool = pool[1:]
	}

	deadLeft := nDead
	chaseIdx := 0
	body := make([]isa.Instr, 0, n)
	body = append(body, isa.Instr{
		Op: isa.OpAdd, Dest: regBase, Src1: regBase, Imm: int16(line), Label: "induction",
	})
	li := 0
	for _, k := range kinds {
		lane := li % lanes
		li++
		var in isa.Instr
		switch k {
		case isa.OpLoad:
			if chaseIdx < len(b.chaseRegs) && b.rng.Float64() < 0.5 {
				r := b.chaseRegs[chaseIdx]
				chaseIdx++
				in = isa.Instr{Op: isa.OpLoad, Dest: r, Src1: r,
					AddrGen: b.chaseGen(), Label: "chase"}
			} else {
				in = isa.Instr{Op: isa.OpLoad, Dest: cur[lane], Src1: regBase,
					AddrGen: b.loadGen(), Label: "load"}
				age[lane] = 0
			}
		case isa.OpStore:
			in = isa.Instr{Op: isa.OpStore, Dest: isa.RZero, Src1: regBase,
				Src2: cur[lane], AddrGen: b.storeGen(), Label: "store"}
			age[lane] = 0
		case isa.OpBranch:
			in = isa.Instr{Op: isa.OpBranch, Dest: isa.RZero, Src1: cur[lane],
				BrGen: b.branchGen(), Label: "branch"}
		case isa.OpNop:
			in = isa.Instr{Op: isa.OpNop, Dest: isa.RZero, Src1: isa.RZero, Src2: isa.RZero}
		default: // arithmetic
			op := isa.OpAdd
			if b.rng.Float64() < pf.LongArithFrac {
				op = isa.OpMul
			}
			in = isa.Instr{Op: op, Src1: cur[lane], Dest: cur[lane]}
			if age[lane] >= pf.ChainLen && lanes > 1 {
				// Start a fresh chain: break the dependence.
				in.Src1 = regBase
				age[lane] = 0
			}
			if b.rng.Float64() < 0.4 {
				in.RegReg = true
				in.Src2 = cur[(lane+1)%lanes]
			} else {
				in.Imm = int16(b.rng.Intn(255) + 1)
			}
			if deadLeft > 0 && b.rng.Float64() < pf.UnACEFrac {
				in.UnACE = true
				deadLeft--
			}
			age[lane]++
		}
		body = append(body, in)
	}
	body = append(body, isa.Instr{
		Op: isa.OpBranch, Dest: isa.RZero, Src1: regBase,
		BrGen: b.backedge(), Label: "backedge",
	})

	// Init: define every architected register.
	var init []isa.Instr
	for r := isa.Reg(0); r < isa.NumArchRegs-1; r++ {
		init = append(init, isa.Instr{Op: isa.OpAdd, Dest: r, Src1: isa.RZero, Imm: int16(r), Label: "init"})
	}
	p := &prog.Program{
		Name:           pf.Name,
		Init:           init,
		Body:           body,
		AddrGens:       b.gens,
		BrGens:         b.brs,
		Iterations:     1 << 40,
		FootprintBytes: b.ws,
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("workload %s: %w", pf.Name, err)
	}
	return p, nil
}

func containsReg(rs []isa.Reg, r isa.Reg) bool {
	for _, x := range rs {
		if x == r {
			return true
		}
	}
	return false
}

func (b *builder) addGen(g prog.AddrGen) int {
	b.gens = append(b.gens, g)
	return len(b.gens) - 1
}

// chaseGen: a serialised dependent-miss stream across the working set.
func (b *builder) chaseGen() int {
	line := uint64(b.cfg.Mem.L2.LineBytes)
	return b.addGen(prog.PointerChase{
		Base:   b.base,
		Stride: line * uint64(1+b.rng.Intn(4)),
		Region: b.ws,
	})
}

// loadGen: random or strided stream per the profile.
func (b *builder) loadGen() int {
	if b.rng.Float64() < b.pf.RandomFrac {
		return b.addGen(prog.RandomWalk{
			Base: b.base, Region: b.ws, Seed: uint64(b.rng.Int63()),
		})
	}
	line := uint64(b.cfg.Mem.L2.LineBytes)
	return b.addGen(prog.StridedBlock{
		Base: b.base, Stride: 8, Region: b.ws,
		Phase: (uint64(b.rng.Intn(1<<16)) * line) % b.ws,
	})
}

func (b *builder) storeGen() int { return b.loadGen() }

func (b *builder) branchGen() int {
	if b.rng.Float64() < b.pf.HardBranchFrac {
		b.brs = append(b.brs, prog.Bernoulli{Seed: uint64(b.rng.Int63()), P: b.pf.MispredP})
	} else {
		// One shared 8/4 pattern with per-branch phase: fully learnable
		// by a 10-bit local history and alias-safe across branches.
		b.brs = append(b.brs, prog.Periodic{Period: 8, Duty: 4, Phase: int64(b.rng.Intn(8))})
	}
	return len(b.brs) - 1
}

func (b *builder) backedge() int {
	b.brs = append(b.brs, prog.LoopBranch{Iterations: 1 << 40})
	return len(b.brs) - 1
}
