package simcache

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"avfstress/internal/avf"
	"avfstress/internal/uarch"
)

func sampleResult(tag string) *avf.Result {
	r := &avf.Result{Config: "cfg-" + tag, Workload: tag, Cycles: 123, Instructions: 456, IPC: 3.7}
	r.AVF[uarch.ROB] = 0.25
	r.AVF[uarch.DL1] = 0.5
	r.Activity.Fetched = 789
	return r
}

func TestKeyDistinguishesPartsAndVersions(t *testing.T) {
	s := New(Options{})
	if s.Key("a", "b") == s.Key("a", "c") {
		t.Error("different parts share a key")
	}
	// Length-prefixing: concatenation across part boundaries must not
	// collide.
	if s.Key("ab", "c") == s.Key("a", "bc") {
		t.Error("part boundaries are ambiguous")
	}
	old := New(Options{Version: "v0-test"})
	if s.Key("a", "b") == old.Key("a", "b") {
		t.Error("engine version does not participate in the key")
	}
	// A nil store still produces usable (EngineVersion-scoped) keys.
	var nils *Store
	if nils.Key("a", "b") != s.Key("a", "b") {
		t.Error("nil-store key differs from default-version key")
	}
}

func TestDoMemoises(t *testing.T) {
	s := New(Options{})
	var sims int
	sim := func() (*avf.Result, error) { sims++; return sampleResult("w"), nil }
	k := s.Key("x")
	r1, err := s.Do(k, sim)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Do(k, sim)
	if err != nil {
		t.Fatal(err)
	}
	if sims != 1 {
		t.Errorf("simulated %d times, want 1", sims)
	}
	if r1 != r2 {
		t.Error("memory tier did not return the shared result")
	}
	if _, err := s.Do(s.Key("y"), sim); err != nil {
		t.Fatal(err)
	}
	if sims != 2 {
		t.Errorf("distinct key did not simulate (sims=%d)", sims)
	}
	st := s.Stats()
	if st.MemHits != 1 || st.Simulated != 2 || st.DiskHits != 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	s := New(Options{})
	boom := errors.New("boom")
	k := s.Key("e")
	fail := func() (*avf.Result, error) { return nil, boom }
	if _, err := s.Do(k, fail); !errors.Is(err, boom) {
		t.Fatalf("error lost: %v", err)
	}
	ok := func() (*avf.Result, error) { return sampleResult("w"), nil }
	r, err := s.Do(k, ok)
	if err != nil || r == nil {
		t.Fatalf("failed call poisoned the key: %v", err)
	}
}

func TestDiskTierRoundTripsBitIdentically(t *testing.T) {
	dir := t.TempDir()
	want := sampleResult("disk")
	a := New(Options{Dir: dir})
	k := a.Key("k")
	if _, err := a.Do(k, func() (*avf.Result, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}
	// A second store on the same directory (a fresh process) must serve
	// the identical result from disk without simulating.
	b := New(Options{Dir: dir})
	got, err := b.Do(b.Key("k"), func() (*avf.Result, error) {
		t.Fatal("simulated despite a warm disk tier")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("disk round trip lost data:\nwant %+v\ngot  %+v", want, got)
	}
	if st := b.Stats(); st.DiskHits != 1 || st.Simulated != 0 {
		t.Errorf("stats %+v, want one disk hit and no simulation", st)
	}
}

func TestStaleEngineVersionSelfInvalidates(t *testing.T) {
	dir := t.TempDir()
	old := New(Options{Dir: dir, Version: "v-old"})
	if _, err := old.Do(old.Key("k"), func() (*avf.Result, error) { return sampleResult("old"), nil }); err != nil {
		t.Fatal(err)
	}
	cur := New(Options{Dir: dir, Version: "v-new"})
	sims := 0
	if _, err := cur.Do(cur.Key("k"), func() (*avf.Result, error) { sims++; return sampleResult("new"), nil }); err != nil {
		t.Fatal(err)
	}
	if sims != 1 {
		t.Error("stale engine version served a cached result")
	}
	// Each version owns its own subdirectory, so stale tiers are easy to
	// identify and sweep.
	for _, v := range []string{"v-old", "v-new"} {
		ents, err := os.ReadDir(filepath.Join(dir, v))
		if err != nil || len(ents) != 1 {
			t.Errorf("version dir %s: %d entries, err %v", v, len(ents), err)
		}
	}
}

func TestCorruptDiskEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{Dir: dir})
	k := s.Key("k")
	if _, err := s.Do(k, func() (*avf.Result, error) { return sampleResult("a"), nil }); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, EngineVersion, k.Hex()+".json")
	if err := os.WriteFile(path, []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := New(Options{Dir: dir})
	sims := 0
	if _, err := fresh.Do(fresh.Key("k"), func() (*avf.Result, error) { sims++; return sampleResult("a"), nil }); err != nil {
		t.Fatal(err)
	}
	if sims != 1 {
		t.Error("corrupt entry was served instead of re-simulating")
	}
}

func TestSingleflightDeduplicatesConcurrentCalls(t *testing.T) {
	s := New(Options{})
	k := s.Key("hot")
	var sims atomic.Int64
	gate := make(chan struct{})
	sim := func() (*avf.Result, error) {
		sims.Add(1)
		<-gate // hold the flight open until every caller has queued
		return sampleResult("w"), nil
	}
	const callers = 8
	var wg sync.WaitGroup
	results := make([]*avf.Result, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := s.Do(k, sim)
			if err != nil {
				t.Error(err)
			}
			results[i] = r
		}(i)
	}
	// Wait until the losers are parked on the flight, then release it.
	for s.Stats().Deduped < callers-1 {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()
	if n := sims.Load(); n != 1 {
		t.Errorf("%d concurrent identical calls ran %d simulations, want 1", callers, n)
	}
	for _, r := range results {
		if r != results[0] {
			t.Error("waiters did not share the winner's result")
		}
	}
	if st := s.Stats(); st.Deduped != callers-1 {
		t.Errorf("deduped = %d, want %d", st.Deduped, callers-1)
	}
}

func TestNilStoreJustSimulates(t *testing.T) {
	var s *Store
	sims := 0
	r, err := s.Do(s.Key("k"), func() (*avf.Result, error) { sims++; return sampleResult("w"), nil })
	if err != nil || r == nil || sims != 1 {
		t.Fatalf("nil store: r=%v err=%v sims=%d", r, err, sims)
	}
	if st := s.Stats(); st != (Stats{}) {
		t.Errorf("nil store stats %+v", st)
	}
}

// TestViewsShareTiersButCountLocally: two views of one store share the
// memoised results (the second view's request is a mem hit) while each
// view's LocalStats attributes only its own traffic — the per-job
// accounting the avfstressd service reports.
func TestViewsShareTiersButCountLocally(t *testing.T) {
	root := New(Options{})
	a, b := root.View(), root.View()
	key := root.Key("cfg", "prog", "rc")
	ra, err := a.Do(key, func() (*avf.Result, error) {
		return &avf.Result{Workload: "x", Cycles: 7}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Do(key, func() (*avf.Result, error) {
		t.Error("second view re-simulated a shared key")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ra != rb {
		t.Error("views returned different result objects for one key")
	}
	as, bs := a.LocalStats(), b.LocalStats()
	if as.Simulated != 1 || as.MemHits != 0 {
		t.Errorf("view a local stats %+v, want 1 sim", as)
	}
	if bs.Simulated != 0 || bs.MemHits != 1 {
		t.Errorf("view b local stats %+v, want 1 mem hit", bs)
	}
	if g := root.Stats(); g.Simulated != 1 || g.MemHits != 1 {
		t.Errorf("global stats %+v, want the union of both views", g)
	}
	if root.LocalStats() != (Stats{}) {
		t.Errorf("root handle counted traffic it did not serve: %+v", root.LocalStats())
	}
	if bs.Hits() != 1 {
		t.Errorf("Hits() = %d, want 1", bs.Hits())
	}
	var nilStore *Store
	if nilStore.View() != nil {
		t.Error("nil store's view is not nil")
	}
	if nilStore.LocalStats() != (Stats{}) {
		t.Error("nil store local stats non-zero")
	}
}

func TestDoBlob(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{Dir: dir})
	key := s.Key("blob", "target-1")
	calls := 0
	compute := func() ([]byte, error) {
		calls++
		return []byte{0x01}, nil
	}
	v, err := s.DoBlob(key, compute)
	if err != nil || len(v) != 1 || v[0] != 0x01 {
		t.Fatalf("DoBlob = %v, %v", v, err)
	}
	if v, _ = s.DoBlob(key, compute); v[0] != 0x01 {
		t.Fatal("memory-tier blob hit wrong")
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	st := s.Stats()
	if st.MemHits != 1 || st.Simulated != 1 {
		t.Fatalf("stats %+v, want 1 mem hit / 1 sim", st)
	}

	// A fresh store sharing the directory serves the blob from disk.
	s2 := New(Options{Dir: dir})
	v, err = s2.DoBlob(key, func() ([]byte, error) { t.Fatal("disk tier missed"); return nil, nil })
	if err != nil || v[0] != 0x01 {
		t.Fatalf("disk blob = %v, %v", v, err)
	}
	if st := s2.Stats(); st.DiskHits != 1 {
		t.Fatalf("stats %+v, want 1 disk hit", st)
	}

	// Errors are returned but never cached.
	ekey := s.Key("blob", "err")
	if _, err := s.DoBlob(ekey, func() ([]byte, error) { return nil, errors.New("boom") }); err == nil {
		t.Fatal("error not propagated")
	}
	if v, err := s.DoBlob(ekey, func() ([]byte, error) { return []byte{9}, nil }); err != nil || v[0] != 9 {
		t.Fatalf("retry after error = %v, %v", v, err)
	}

	// A nil store runs compute directly.
	var nilStore *Store
	if v, err := nilStore.DoBlob(key, func() ([]byte, error) { return []byte{7}, nil }); err != nil || v[0] != 7 {
		t.Fatalf("nil store DoBlob = %v, %v", v, err)
	}
}

func TestDoBlobSingleflight(t *testing.T) {
	s := New(Options{})
	key := s.Key("blob", "flight")
	var calls atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, err := s.DoBlob(key, func() ([]byte, error) {
				calls.Add(1)
				time.Sleep(5 * time.Millisecond)
				return []byte{42}, nil
			})
			if err != nil || v[0] != 42 {
				t.Errorf("DoBlob = %v, %v", v, err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1 (singleflight)", n)
	}
}

func TestGetPutBlob(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{Dir: dir})
	k := s.Key("blob")
	if _, ok := s.GetBlob(k); ok {
		t.Fatal("empty store reported a blob hit")
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Errorf("stats %+v, want 1 miss", st)
	}
	s.PutBlob(k, []byte("payload"))
	if v, ok := s.GetBlob(k); !ok || string(v) != "payload" {
		t.Fatalf("memory tier lost the blob: %q %v", v, ok)
	}
	// A fresh store on the same directory serves the blob from disk.
	s2 := New(Options{Dir: dir})
	if v, ok := s2.GetBlob(k); !ok || string(v) != "payload" {
		t.Fatalf("disk tier lost the blob: %q %v", v, ok)
	}
	if st := s2.Stats(); st.DiskHits != 1 || st.Misses != 0 {
		t.Errorf("stats %+v, want 1 disk hit and no misses", st)
	}
	// Nil store: always a miss, PutBlob a no-op.
	var nils *Store
	nils.PutBlob(k, []byte("x"))
	if _, ok := nils.GetBlob(k); ok {
		t.Error("nil store reported a hit")
	}
}

func TestBlobCapEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{Dir: dir, BlobCapBytes: 100})
	pay := make([]byte, 40)
	ka, kb, kc := s.Key("a"), s.Key("b"), s.Key("c")
	s.PutBlob(ka, pay)
	s.PutBlob(kb, pay)
	// Touch a so b is the least recently used.
	if _, ok := s.GetBlob(ka); !ok {
		t.Fatal("a missing before cap hit")
	}
	s.PutBlob(kc, pay) // 120 bytes resident -> evict b
	if st := s.Stats(); st.Evicted != 1 {
		t.Fatalf("stats %+v, want exactly 1 eviction", st)
	}
	if _, ok := s.GetBlob(ka); !ok {
		t.Error("recently used blob a evicted")
	}
	if _, ok := s.GetBlob(kc); !ok {
		t.Error("just-inserted blob c evicted")
	}
	// b fell out of memory but survives on disk: a hit, not a miss.
	before := s.Stats()
	if _, ok := s.GetBlob(kb); !ok {
		t.Fatal("evicted blob lost its disk entry")
	}
	if st := s.Stats(); st.DiskHits != before.DiskHits+1 {
		t.Errorf("stats %+v, want the reload counted as a disk hit", st)
	}
}

func TestBlobCapUnlimited(t *testing.T) {
	s := New(Options{BlobCapBytes: -1})
	pay := make([]byte, 1<<10)
	for i := 0; i < 64; i++ {
		s.PutBlob(s.Key("k", string(rune('a'+i))), pay)
	}
	if st := s.Stats(); st.Evicted != 0 {
		t.Errorf("unlimited cap evicted %d blobs", st.Evicted)
	}
}
