package sched

// Fault-containment tests (DESIGN.md §11): panic recovery, transient
// retry with backoff, per-job deadlines and the transient/permanent
// error classification.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"avfstress/internal/scenario"
)

func TestPanicFailsJobNotProcess(t *testing.T) {
	var survivorRan atomic.Bool
	jobs := []scenario.Job{
		{Key: "boom", Run: func(context.Context) error { panic("injected panic") }},
		{Key: "survivor", Run: func(context.Context) error { survivorRan.Store(true); return nil }},
	}
	err := Run(context.Background(), jobs, Options{Workers: 2})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
	if pe.Key != "boom" || pe.Value != "injected panic" {
		t.Errorf("panic identity lost: key=%q value=%v", pe.Key, pe.Value)
	}
	if !strings.Contains(err.Error(), "injected panic") || !strings.Contains(err.Error(), "faults_test.go") {
		t.Errorf("error carries no stack:\n%s", err)
	}
	// Panics are permanent: no retries even under an aggressive policy.
	var attempts atomic.Int32
	err = Run(context.Background(), []scenario.Job{
		{Key: "boom", Run: func(context.Context) error { attempts.Add(1); panic("again") }},
	}, Options{Retry: RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}})
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("panicking job attempted %d times, want 1", got)
	}
}

func TestPanicDrainsDependents(t *testing.T) {
	// A dependent of a panicked job must still be released (and then
	// skip work under the cancelled context) so Run returns.
	var depRan atomic.Bool
	jobs := []scenario.Job{
		{Key: "a", Run: func(context.Context) error { panic("dead dependency") }},
		{Key: "b", Deps: []string{"a"}, Run: func(ctx context.Context) error {
			depRan.Store(true)
			return ctx.Err()
		}},
	}
	done := make(chan error, 1)
	go func() { done <- Run(context.Background(), jobs, Options{Workers: 2}) }()
	select {
	case err := <-done:
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("want *PanicError, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run hung after a panic")
	}
}

func TestTransientRetriesThenSucceeds(t *testing.T) {
	var attempts atomic.Int32
	var retries []int
	var mu sync.Mutex
	jobs := []scenario.Job{{Key: "flaky", Run: func(context.Context) error {
		if attempts.Add(1) < 3 {
			return Transient(fmt.Errorf("spurious I/O"))
		}
		return nil
	}}}
	err := Run(context.Background(), jobs, Options{
		Retry: RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond},
		OnRetry: func(key string, attempt int, err error, backoff time.Duration) {
			mu.Lock()
			retries = append(retries, attempt)
			mu.Unlock()
			if key != "flaky" || !IsTransient(err) || backoff <= 0 {
				t.Errorf("OnRetry(%q, %d, %v, %v)", key, attempt, err, backoff)
			}
		},
	})
	if err != nil {
		t.Fatalf("transient failure not healed: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("attempts %d, want 3", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(retries) != 2 || retries[0] != 1 || retries[1] != 2 {
		t.Errorf("retry observations %v, want [1 2]", retries)
	}
}

func TestTransientExhaustsAttempts(t *testing.T) {
	var attempts atomic.Int32
	cause := errors.New("disk still broken")
	err := Run(context.Background(), []scenario.Job{
		{Key: "doomed", Run: func(context.Context) error { attempts.Add(1); return Transient(cause) }},
	}, Options{Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}})
	if !errors.Is(err, cause) {
		t.Fatalf("final error lost the cause: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("attempts %d, want 3", got)
	}
}

func TestPermanentErrorsAreNotRetried(t *testing.T) {
	var attempts atomic.Int32
	err := Run(context.Background(), []scenario.Job{
		{Key: "wrong", Run: func(context.Context) error { attempts.Add(1); return errors.New("bad spec") }},
	}, Options{Retry: RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}})
	if err == nil || attempts.Load() != 1 {
		t.Errorf("permanent error retried: attempts=%d err=%v", attempts.Load(), err)
	}
}

func TestJobDeadline(t *testing.T) {
	start := time.Now()
	err := Run(context.Background(), []scenario.Job{
		{Key: "stuck", Run: func(ctx context.Context) error {
			<-ctx.Done()
			return ctx.Err()
		}},
	}, Options{JobTimeout: 50 * time.Millisecond})
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("want *DeadlineError, got %v", err)
	}
	if de.Key != "stuck" || de.Timeout != 50*time.Millisecond {
		t.Errorf("deadline identity lost: %+v", de)
	}
	// The deadline error must not read as a run-level cancellation —
	// that distinction drives the service's failed-vs-canceled status.
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		t.Error("DeadlineError aliases a context cancellation")
	}
	if IsTransient(err) != true {
		t.Error("deadline should classify transient (retryable)")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("deadline took %v to fire", elapsed)
	}
}

func TestJobDeadlineRetries(t *testing.T) {
	// First attempt times out; the retry completes instantly.
	var attempts atomic.Int32
	err := Run(context.Background(), []scenario.Job{
		{Key: "slow-once", Run: func(ctx context.Context) error {
			if attempts.Add(1) == 1 {
				<-ctx.Done()
				return ctx.Err()
			}
			return nil
		}},
	}, Options{
		JobTimeout: 30 * time.Millisecond,
		Retry:      RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatalf("deadline retry did not heal: %v", err)
	}
	if got := attempts.Load(); got != 2 {
		t.Errorf("attempts %d, want 2", got)
	}
}

func TestRunCancellationWinsOverRetry(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var attempts atomic.Int32
	err := Run(ctx, []scenario.Job{
		{Key: "hopeless", Run: func(context.Context) error {
			if attempts.Add(1) == 1 {
				cancel()
			}
			return Transient(errors.New("transient but doomed"))
		}},
	}, Options{Retry: RetryPolicy{MaxAttempts: 100, BaseDelay: time.Millisecond}})
	if err == nil {
		t.Fatal("cancelled run returned nil")
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("retried %d times after cancellation, want attempts=1", got)
	}
}

func TestClassification(t *testing.T) {
	base := errors.New("x")
	for _, tc := range []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plain", base, false},
		{"transient", Transient(base), true},
		{"wrapped transient", fmt.Errorf("outer: %w", Transient(base)), true},
		{"transient cancellation", Transient(context.Canceled), false},
		{"deadline", &DeadlineError{Key: "k", Timeout: time.Second}, true},
		{"ctx deadline", context.DeadlineExceeded, false},
	} {
		if got := IsTransient(tc.err); got != tc.want {
			t.Errorf("%s: IsTransient=%v, want %v", tc.name, got, tc.want)
		}
	}
	if Transient(nil) != nil {
		t.Error("Transient(nil) != nil")
	}
	if !errors.Is(Transient(base), base) {
		t.Error("Transient hides the cause from errors.Is")
	}
}

func TestBackoffBoundsAndGrowth(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 10, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}
	for retry := 1; retry <= 8; retry++ {
		d := p.backoff(retry)
		wantBase := 10 * time.Millisecond << (retry - 1)
		if wantBase > 80*time.Millisecond {
			wantBase = 80 * time.Millisecond
		}
		// Jitter adds 0–50%.
		if d < wantBase || d > wantBase+wantBase/2 {
			t.Errorf("backoff(%d) = %v, want in [%v, %v]", retry, d, wantBase, wantBase+wantBase/2)
		}
	}
	// Defaults apply when the policy leaves delays zero.
	if d := (RetryPolicy{MaxAttempts: 2}).backoff(1); d < 50*time.Millisecond || d > 75*time.Millisecond {
		t.Errorf("default backoff %v outside [50ms, 75ms]", d)
	}
}
