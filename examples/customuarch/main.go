// Adapting to a different microarchitecture (paper §VI-B, Figure 9):
// the same methodology, pointed at the paper's Configuration A (bigger
// IQ/ROB/rename file, four multipliers, 4-way DL1, 512-entry DTLB, 2MB
// 8-way L2), re-tunes the stressmark automatically — more instructions
// dependent on the L2 miss to fill the larger IQ, a longer loop for the
// larger ROB.
//
// Run with: go run ./examples/customuarch
package main

import (
	"context"
	"fmt"
	"log"

	"avfstress"
	"avfstress/internal/ga"
)

func main() {
	rates := avfstress.UniformRates(1)
	configs := []avfstress.Config{
		avfstress.Scaled(avfstress.Baseline(), 32),
		avfstress.Scaled(avfstress.ConfigA(), 32),
	}

	type outcome struct {
		cfg avfstress.Config
		res *avfstress.SearchResult
	}
	var out []outcome
	for _, cfg := range configs {
		fmt.Printf("searching on %s (ROB %d, IQ %d, %d muls)...\n",
			cfg.Name, cfg.Core.ROBEntries, cfg.Core.IQEntries, cfg.Core.NumMuls)
		res, err := avfstress.Search(context.Background(), avfstress.SearchSpec{
			Config: cfg,
			Rates:  rates,
			GA:     ga.Config{PopSize: 10, Generations: 8, Seed: 4},
		})
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, outcome{cfg, res})
	}

	fmt.Println("\nfinal knobs side by side (cf. paper Figures 5a and 9b):")
	fmt.Printf("  %-28s %12s %12s\n", "knob", "Baseline", "ConfigA")
	b, a := out[0].res.Knobs, out[1].res.Knobs
	rows := []struct {
		name string
		b, a interface{}
	}{
		{"loop size", b.LoopSize, a.LoopSize},
		{"loads", b.NumLoads, a.NumLoads},
		{"stores", b.NumStores, a.NumStores},
		{"miss-dependent instrs", b.MissDependent, a.MissDependent},
		{"dependency distance", b.DepDistance, a.DepDistance},
		{"frac long-latency", fmt.Sprintf("%.2f", b.FracLongLatency), fmt.Sprintf("%.2f", a.FracLongLatency)},
		{"frac reg-reg", fmt.Sprintf("%.2f", b.FracRegReg), fmt.Sprintf("%.2f", a.FracRegReg)},
	}
	for _, r := range rows {
		fmt.Printf("  %-28s %12v %12v\n", r.name, r.b, r.a)
	}

	fmt.Println("\nper-structure AVF of each stressmark (cf. Figure 9a):")
	fmt.Printf("  %-10s %10s %10s\n", "structure", "Baseline", "ConfigA")
	for s := avfstress.Structure(0); s < 11; s++ {
		fmt.Printf("  %-10s %9.1f%% %9.1f%%\n", s,
			out[0].res.Result.AVF[s]*100, out[1].res.Result.AVF[s]*100)
	}
	fmt.Println("\nNo manual re-tuning was involved: the gene ranges, generator and")
	fmt.Println("memory layout all derive from the configuration (paper §VI-B).")
}
