package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testServer builds a server with MaxJobs 1 (deterministic per-job
// cache attribution) and returns it with its HTTP front end.
func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Options{MaxJobs: 1, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return srv, hs
}

func submit(t *testing.T, hs *httptest.Server, spec string) JobStatus {
	t.Helper()
	resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("submit: %s: %s", resp.Status, buf.String())
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getStatus(t *testing.T, hs *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(hs.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitTerminal(t *testing.T, hs *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, hs, id)
		if st.Status.Terminal() {
			return st
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobStatus{}
}

// fastSpec keeps service tests cheap: reference knobs, tiny windows.
const fastSpecTail = `"mode":"reference","workload_instr":40000,"workload_warmup":10000,"parallelism":1`

func TestSubmitRunFetch(t *testing.T) {
	_, hs := testServer(t)
	st := submit(t, hs, `{"scenarios":["table1","table2"]}`)
	if st.Status != StatusQueued && st.Status != StatusRunning {
		t.Errorf("fresh job status %s", st.Status)
	}
	if len(st.Scenarios) != 2 {
		t.Errorf("resolved scenarios %v", st.Scenarios)
	}
	st = waitTerminal(t, hs, st.ID)
	if st.Status != StatusDone {
		t.Fatalf("job ended %s: %s", st.Status, st.Error)
	}
	resp, err := http.Get(hs.URL + "/v1/results/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res struct {
		Report string `json:"report"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table I —", "Table II —", strings.Repeat("=", 72)} {
		if !strings.Contains(res.Report, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// format=text returns the raw report.
	resp2, err := http.Get(hs.URL + "/v1/results/" + st.ID + "?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp2.Body)
	if buf.String() != res.Report {
		t.Error("text results differ from the JSON report")
	}
}

func TestBadRequests(t *testing.T) {
	_, hs := testServer(t)
	for _, tc := range []struct {
		spec string
		code int
	}{
		{`{"scenarios":["bogus"]}`, http.StatusBadRequest},
		{`{"mode":"guess"}`, http.StatusBadRequest},
		{`{"unknown_field":1}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	} {
		resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", strings.NewReader(tc.spec))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("spec %q: status %d, want %d", tc.spec, resp.StatusCode, tc.code)
		}
	}
	resp, err := http.Get(hs.URL + "/v1/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job id: %d, want 404", resp.StatusCode)
	}
}

func TestResultsBeforeDoneConflict(t *testing.T) {
	_, hs := testServer(t)
	st := submit(t, hs, `{"scenarios":["fig3"],`+fastSpecTail+`}`)
	resp, err := http.Get(hs.URL + "/v1/results/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := waitTerminal(t, hs, st.ID); got.Status != StatusDone {
		t.Fatalf("job ended %s: %s", got.Status, got.Error)
	}
	if resp.StatusCode != http.StatusConflict && resp.StatusCode != http.StatusOK {
		t.Errorf("results while running: %d, want 409 (or 200 if already done)", resp.StatusCode)
	}
}

// TestOverlappingJobsShareSimulations is the serve-smoke contract in
// miniature: two jobs whose scenarios overlap share the server's store,
// so the second job's stats show cache hits and fewer fresh simulations
// than the first.
func TestOverlappingJobsShareSimulations(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite in -short mode")
	}
	_, hs := testServer(t)
	// Both submitted immediately; MaxJobs=1 queues the second while the
	// first runs, making the attribution deterministic.
	a := submit(t, hs, `{"scenarios":["fig3","fig4"],`+fastSpecTail+`}`)
	b := submit(t, hs, `{"scenarios":["fig3","fig4","fig7"],`+fastSpecTail+`}`)
	as := waitTerminal(t, hs, a.ID)
	bs := waitTerminal(t, hs, b.ID)
	if as.Status != StatusDone || bs.Status != StatusDone {
		t.Fatalf("jobs ended %s/%s: %s %s", as.Status, bs.Status, as.Error, bs.Error)
	}
	if as.Stats.Simulated == 0 {
		t.Fatalf("first job simulated nothing: %+v", as.Stats)
	}
	if bs.Stats.Hits() == 0 {
		t.Errorf("second job saw no cache hits: %+v", bs.Stats)
	}
	if bs.Stats.Simulated >= as.Stats.Simulated {
		t.Errorf("second job simulated %d, first %d — overlap not shared",
			bs.Stats.Simulated, as.Stats.Simulated)
	}
}

// TestCancellation: cancelling a running search-mode job ends it as
// canceled without corrupting the store — the same spec resubmitted
// afterwards completes.
func TestCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("GA search in -short mode")
	}
	_, hs := testServer(t)
	spec := `{"scenarios":["fig5"],"mode":"search","ga_pop":6,"ga_gens":12,"parallelism":1,"workload_instr":40000,"workload_warmup":10000}`
	st := submit(t, hs, spec)
	// Wait for the GA to emit progress, then cancel mid-search.
	deadline := time.Now().Add(60 * time.Second)
	for {
		cur := getStatus(t, hs, st.ID)
		if len(cur.Progress) > 0 && cur.Status == StatusRunning {
			break
		}
		if cur.Status.Terminal() {
			t.Fatalf("job finished before it could be cancelled: %s", cur.Status)
		}
		if time.Now().After(deadline) {
			t.Fatal("no progress observed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	got := waitTerminal(t, hs, st.ID)
	if got.Status != StatusCanceled {
		t.Fatalf("cancelled job ended %s (%s)", got.Status, got.Error)
	}
	if !strings.Contains(got.Error, "context canceled") {
		t.Errorf("cancellation cause lost: %q", got.Error)
	}
	// Results of a canceled job are gone.
	rresp, err := http.Get(hs.URL + "/v1/results/" + got.ID)
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusGone {
		t.Errorf("results of a canceled job: %d, want 410", rresp.StatusCode)
	}
	// The store survives: the same spec completes on resubmission.
	st2 := waitTerminal(t, hs, submit(t, hs, spec).ID)
	if st2.Status != StatusDone {
		t.Fatalf("resubmitted job ended %s: %s", st2.Status, st2.Error)
	}
}

// TestStreamedProgress: ?stream=1 delivers the job's progress lines and
// a final status line.
func TestStreamedProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite in -short mode")
	}
	_, hs := testServer(t)
	st := submit(t, hs, `{"scenarios":["fig4"],`+fastSpecTail+`}`)
	resp, err := http.Get(hs.URL + "/v1/jobs/" + st.ID + "?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "status: done") {
		t.Errorf("stream did not end with a terminal status:\n%s", out)
	}
	if !strings.Contains(out, "workload proxies") {
		t.Errorf("stream carries no experiment progress:\n%s", out)
	}
}

// TestListJobs: the listing covers every submission in order with
// server-wide store stats.
func TestListJobs(t *testing.T) {
	_, hs := testServer(t)
	a := submit(t, hs, `{"scenarios":["table1"]}`)
	b := submit(t, hs, `{"scenarios":["table2"]}`)
	waitTerminal(t, hs, a.ID)
	waitTerminal(t, hs, b.ID)
	resp, err := http.Get(hs.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 2 || list.Jobs[0].ID != a.ID || list.Jobs[1].ID != b.ID {
		ids := make([]string, len(list.Jobs))
		for i, j := range list.Jobs {
			ids[i] = j.ID
		}
		t.Errorf("listing %v, want [%s %s]", ids, a.ID, b.ID)
	}
}

// TestShutdownDrains: Shutdown cancels running jobs and returns.
func TestShutdownDrains(t *testing.T) {
	srv, hs := testServer(t)
	st := submit(t, hs, `{"scenarios":["fig3"],`+fastSpecTail+`}`)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	got := getStatus(t, hs, st.ID)
	if !got.Status.Terminal() {
		t.Errorf("job still %s after shutdown", got.Status)
	}
}

// TestHistoryEviction: MaxHistory bounds retained jobs; the oldest
// terminal jobs are evicted, running jobs never are.
func TestHistoryEviction(t *testing.T) {
	srv, err := New(Options{MaxJobs: 1, MaxHistory: 2})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	var ids []string
	for i := 0; i < 3; i++ {
		st := submit(t, hs, `{"scenarios":["table1"]}`)
		waitTerminal(t, hs, st.ID)
		ids = append(ids, st.ID)
	}
	resp, err := http.Get(hs.URL + "/v1/jobs/" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("oldest job still retained: %d, want 404", resp.StatusCode)
	}
	for _, id := range ids[1:] {
		if st := getStatus(t, hs, id); st.Status != StatusDone {
			t.Errorf("job %s lost: %+v", id, st)
		}
	}
}
