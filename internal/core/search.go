// Package core implements the paper's primary contribution: the
// automated AVF-stressmark generation methodology. It wires the genetic
// algorithm (internal/ga) to the code generator (internal/codegen) and
// the AVF simulator (internal/pipe + internal/cache), exactly as in the
// paper's Figure 2:
//
//	GA knobs → code generator → executable → AVF simulator → fitness → GA
//
// A Search adapts automatically to the microarchitecture (structure
// sizes parameterise the gene ranges and the generator) and to the
// circuit-level fault rates (which enter only through the fitness), which
// is the flexibility the paper demonstrates with its RHC, EDR and
// Configuration A studies.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"avfstress/internal/avf"
	"avfstress/internal/codegen"
	"avfstress/internal/ga"
	"avfstress/internal/pipe"
	"avfstress/internal/prog"
	"avfstress/internal/rootcause"
	"avfstress/internal/simcache"
	"avfstress/internal/uarch"
)

// gene indices (order of Genes).
const (
	gLoopSize = iota
	gNumLoads
	gNumStores
	gNumIndepArith
	gMissDependent
	gAvgChainLength
	gDepDistance
	gFracLongLatency
	gFracRegReg
	gSeed
	gL2Hit
	numGenes
)

// Genes returns the GA search space for a configuration. Ranges are
// derived from the structure sizes so the methodology adapts to the
// microarchitecture, mirroring §IV-B.
func Genes(cfg uarch.Config) []ga.Gene {
	maxLoop := float64(int(codegen.MaxLoopFactor * float64(cfg.Core.ROBEntries)))
	halfLoop := maxLoop / 2
	return []ga.Gene{
		gLoopSize:        {Name: "LoopSize", Min: 5, Max: maxLoop, Integer: true},
		gNumLoads:        {Name: "NumLoads", Min: 1, Max: halfLoop, Integer: true},
		gNumStores:       {Name: "NumStores", Min: 1, Max: halfLoop, Integer: true},
		gNumIndepArith:   {Name: "NumIndepArith", Min: 0, Max: 16, Integer: true},
		gMissDependent:   {Name: "MissDependent", Min: 0, Max: float64(cfg.Core.IQEntries), Integer: true},
		gAvgChainLength:  {Name: "AvgChainLength", Min: 0, Max: 16},
		gDepDistance:     {Name: "DepDistance", Min: 1, Max: codegen.MaxDepDistance, Integer: true},
		gFracLongLatency: {Name: "FracLongLatency", Min: 0, Max: 1},
		gFracRegReg:      {Name: "FracRegReg", Min: 0, Max: 1},
		gSeed:            {Name: "Seed", Min: 0, Max: 1023, Integer: true},
		gL2Hit:           {Name: "L2Hit", Min: 0, Max: 1, Integer: true},
	}
}

// KnobsFromGenome decodes a genome into (un-normalised) generator knobs.
func KnobsFromGenome(g ga.Genome) codegen.Knobs {
	return codegen.Knobs{
		LoopSize:        int(g[gLoopSize]),
		NumLoads:        int(g[gNumLoads]),
		NumStores:       int(g[gNumStores]),
		NumIndepArith:   int(g[gNumIndepArith]),
		MissDependent:   int(g[gMissDependent]),
		AvgChainLength:  g[gAvgChainLength],
		DepDistance:     int(g[gDepDistance]),
		FracLongLatency: g[gFracLongLatency],
		FracRegReg:      g[gFracRegReg],
		Seed:            int64(g[gSeed]),
		L2Hit:           g[gL2Hit] >= 0.5,
	}
}

// GenomeFromKnobs encodes knobs as a genome (for seeding searches).
func GenomeFromKnobs(k codegen.Knobs) ga.Genome {
	g := make(ga.Genome, numGenes)
	g[gLoopSize] = float64(k.LoopSize)
	g[gNumLoads] = float64(k.NumLoads)
	g[gNumStores] = float64(k.NumStores)
	g[gNumIndepArith] = float64(k.NumIndepArith)
	g[gMissDependent] = float64(k.MissDependent)
	g[gAvgChainLength] = k.AvgChainLength
	g[gDepDistance] = float64(k.DepDistance)
	g[gFracLongLatency] = k.FracLongLatency
	g[gFracRegReg] = k.FracRegReg
	g[gSeed] = float64(k.Seed)
	if k.L2Hit {
		g[gL2Hit] = 1
	}
	return g
}

// SearchSpec parameterises a stressmark search.
type SearchSpec struct {
	// Config is the target microarchitecture.
	Config uarch.Config
	// Rates are the circuit-level fault rates (default uniform 1).
	Rates uarch.FaultRates
	// Weights combine the class SERs into the fitness.
	Weights avf.Weights

	// Eval budgets one fitness simulation; Final budgets the closing
	// evaluation of the best solution (defaults derived from the config:
	// warmup covers an L2 fill, measurement covers two region sweeps).
	Eval  pipe.RunConfig
	Final pipe.RunConfig

	// GA controls the search (Genes are filled in by Search).
	GA ga.Config

	// SeedKnobs optionally seed the initial population.
	SeedKnobs []codegen.Knobs

	// Logf, when set, receives search progress lines (one per GA
	// generation: best/avg fitness and cataclysm events). GA.Logf, when
	// set directly, wins.
	Logf func(format string, args ...interface{})

	// Cache optionally memoises candidate simulations content-addressed
	// by (engine version, config, knobs, budget), sharing them across
	// searches, GA generations and — with a disk tier — processes. Nil
	// disables sharing; results are bit-identical either way.
	Cache *simcache.Store

	// RootCauseRank, when set, runs once after the final evaluation with
	// the winning stressmark: a diagnostic hook producing the
	// instruction-level root-cause ranking of the program the search
	// converged on (typically a thin closure over inject.Run with
	// Options.RootCause — DESIGN.md §14). Its result lands in
	// SearchResult.RootCause. A hook error fails the search: the hook is
	// opt-in, so a failing diagnostic is a configuration bug, not noise
	// to swallow.
	RootCauseRank func(context.Context, *prog.Program) (*rootcause.Result, error)
}

// DefaultEvalBudget sizes a fitness run for cfg: warmup long enough to
// fill the L2 once, measurement long enough to sweep the chase region.
func DefaultEvalBudget(cfg uarch.Config) pipe.RunConfig {
	loop := int64(cfg.Core.ROBEntries) // typical loop size
	l2Lines := int64(cfg.Mem.L2.NumLines())
	warm := l2Lines * loop
	measure := 2 * l2Lines * loop
	return pipe.RunConfig{MaxInstructions: warm + measure, WarmupInstructions: warm}
}

func (s SearchSpec) withDefaults() SearchSpec {
	var zero uarch.FaultRates
	if s.Rates == zero {
		s.Rates = uarch.UniformRates(1)
	}
	if s.Weights == (avf.Weights{}) {
		s.Weights = avf.DefaultWeights()
	}
	if s.Eval.MaxInstructions == 0 {
		s.Eval = DefaultEvalBudget(s.Config)
	}
	if s.Final.MaxInstructions == 0 {
		s.Final = s.Eval
		s.Final.MaxInstructions *= 2
	}
	if s.GA.PopSize == 0 {
		s.GA.PopSize = 20
	}
	if s.GA.Generations == 0 {
		s.GA.Generations = 20
	}
	return s
}

// SearchResult is the outcome of a stressmark search.
type SearchResult struct {
	// Knobs are the normalised knob settings of the best solution
	// (the paper's Figure 5a / 8c / 8d / 9b tables).
	Knobs codegen.Knobs
	// Program is the generated stressmark.
	Program *prog.Program
	// Result is the final (long) evaluation of the stressmark.
	Result *avf.Result
	// Fitness is the final evaluation's fitness value.
	Fitness float64
	// History is the per-generation fitness trace (Figure 5b).
	History []ga.GenStats
	// Evaluations counts fitness simulations actually run (memoised
	// duplicates excluded); FailedEvals counts candidates whose
	// simulation failed and were culled with fitness 0.
	Evaluations int64
	FailedEvals int64
	Cataclysms  int
	// RootCause is the instruction-level attribution of the winning
	// stressmark, produced by SearchSpec.RootCauseRank; nil when no hook
	// was set.
	RootCause *rootcause.Result
}

// Search runs the full methodology of Figure 2 and returns the
// stressmark for the spec's microarchitecture and fault rates. The
// context cancels the search between simulations (the GA checks it
// between generations and fitness evaluations); a cancelled Search
// returns the context's error and leaves only complete, valid entries
// in the spec's cache.
func Search(ctx context.Context, spec SearchSpec) (*SearchResult, error) {
	spec = spec.withDefaults()
	if err := spec.Config.Validate(); err != nil {
		return nil, err
	}
	gacfg := spec.GA
	gacfg.Genes = Genes(spec.Config)
	if gacfg.Logf == nil {
		gacfg.Logf = spec.Logf
	}
	for _, k := range spec.SeedKnobs {
		gacfg.InitialPopulation = append(gacfg.InitialPopulation, GenomeFromKnobs(k))
	}

	ev, err := NewEvaluator(spec.Config)
	if err != nil {
		return nil, err
	}
	ev.WithCache(spec.Cache)
	var (
		mu    sync.Mutex
		memo  = map[codegen.Knobs]float64{}
		evals atomic.Int64
		fails atomic.Int64
	)
	fitness := func(g ga.Genome) (float64, error) {
		k := KnobsFromGenome(g).Normalize(spec.Config)
		mu.Lock()
		if f, ok := memo[k]; ok {
			mu.Unlock()
			return f, nil
		}
		mu.Unlock()
		f, err := ev.EvaluateKnobs(ctx, spec.Rates, spec.Weights, k, spec.Eval)
		if err != nil {
			// Cancellation is not a property of the candidate: propagate
			// it instead of culling, and never memoise the zero score a
			// cancelled evaluation would otherwise leave behind.
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return 0, err
			}
			// Cull infeasible candidates instead of aborting the search.
			fails.Add(1)
			f = 0
		}
		// Count distinct candidates (process-local memo misses) whether
		// the simulation ran or was served by the shared cache: the
		// number is then a pure function of the GA trajectory, so search
		// reports stay byte-identical across cold and warm caches.
		evals.Add(1)
		mu.Lock()
		memo[k] = f
		mu.Unlock()
		return f, nil
	}

	gres, err := ga.Run(ctx, gacfg, fitness)
	if err != nil {
		return nil, err
	}
	best := KnobsFromGenome(gres.Best).Normalize(spec.Config)
	p, best, err := codegen.Generate(spec.Config, best, 1<<40)
	if err != nil {
		return nil, fmt.Errorf("core: regenerating best solution: %w", err)
	}
	res, err := ev.SimulateKnobs(ctx, best, spec.Final)
	if err != nil {
		return nil, fmt.Errorf("core: final evaluation: %w", err)
	}
	var rc *rootcause.Result
	if spec.RootCauseRank != nil {
		if rc, err = spec.RootCauseRank(ctx, p); err != nil {
			return nil, fmt.Errorf("core: root-cause ranking: %w", err)
		}
	}
	return &SearchResult{
		Knobs:       best,
		Program:     p,
		Result:      res,
		Fitness:     res.Fitness(spec.Config, spec.Rates, spec.Weights),
		History:     gres.History,
		Evaluations: evals.Load(),
		FailedEvals: fails.Load(),
		Cataclysms:  gres.Cataclysms,
		RootCause:   rc,
	}, nil
}

// Evaluator is the pooled fitness path for one configuration: candidate
// programs are simulated on recycled pipelines (pipe.Pool), so a GA
// search's thousands of evaluations reuse one set of simulator
// allocations per worker instead of rebuilding ROB, checkpoint matrix,
// register file and cache hierarchy every time. Safe for concurrent use.
type Evaluator struct {
	cfg   uarch.Config
	cfgFP string
	pool  *pipe.Pool
	cache *simcache.Store
}

// NewEvaluator validates cfg once and returns a pooled evaluator for it.
func NewEvaluator(cfg uarch.Config) (*Evaluator, error) {
	pool, err := pipe.NewPool(cfg)
	if err != nil {
		return nil, err
	}
	return &Evaluator{cfg: cfg, cfgFP: cfg.Fingerprint(), pool: pool}, nil
}

// WithCache routes the evaluator's simulations through the given store
// (nil disables memoisation) and returns the evaluator.
func (e *Evaluator) WithCache(s *simcache.Store) *Evaluator {
	e.cache = s
	return e
}

// SimulateKnobs returns the simulation result for one candidate,
// content-addressed by (config, knobs, budget): on a cache hit the
// generation and simulation are both skipped, and concurrent identical
// candidates (quantised-gene collisions within a generation) simulate
// once. The context is checked before the (uninterruptible) simulation
// starts — a cancelled evaluation returns the context's error and
// stores nothing.
func (e *Evaluator) SimulateKnobs(ctx context.Context, k codegen.Knobs, rc pipe.RunConfig) (*avf.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key := e.cache.Key(e.cfgFP, "knobs:"+k.Fingerprint(), rc.Fingerprint())
	return e.cache.Do(key, func() (*avf.Result, error) {
		p, _, err := codegen.Generate(e.cfg, k, 1<<40)
		if err != nil {
			return nil, err
		}
		return e.pool.Simulate(p, rc)
	})
}

// EvaluateKnobs generates and simulates one candidate on a pooled
// pipeline and returns its fitness.
func (e *Evaluator) EvaluateKnobs(ctx context.Context, rates uarch.FaultRates, w avf.Weights,
	k codegen.Knobs, rc pipe.RunConfig) (float64, error) {
	res, err := e.SimulateKnobs(ctx, k, rc)
	if err != nil {
		return 0, err
	}
	return res.Fitness(e.cfg, rates, w), nil
}

// EvaluateKnobs generates and simulates one candidate and returns its
// fitness. It remains the one-shot path for tests and benchmarks that
// probe individual knob settings; Search uses a long-lived Evaluator.
func EvaluateKnobs(ctx context.Context, cfg uarch.Config, rates uarch.FaultRates, w avf.Weights,
	k codegen.Knobs, rc pipe.RunConfig) (float64, error) {
	ev, err := NewEvaluator(cfg)
	if err != nil {
		return 0, err
	}
	return ev.EvaluateKnobs(ctx, rates, w, k, rc)
}
