package isa

import "testing"

func TestDownClose(t *testing.T) {
	cases := []struct{ in, want uint64 }{
		{0, 0},
		{1, 1},
		{0x80, 0xff},
		{0x100, 0x1ff},
		{0x8000000000000000, AllBits},
		{0x0000000000000011, 0x1f},
	}
	for _, c := range cases {
		if got := DownClose(c.in); got != c.want {
			t.Errorf("DownClose(%#x) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestSrcDemand(t *testing.T) {
	// Arithmetic: demand smears downward, src2 only for RegReg forms.
	add := &Instr{Op: OpAdd, Dest: 3, Src1: 1, Imm: 7}
	s1, s2 := SrcDemand(add, 0x100)
	if s1 != 0x1ff || s2 != 0 {
		t.Errorf("imm add demand = %#x/%#x, want 0x1ff/0", s1, s2)
	}
	mul := &Instr{Op: OpMul, Dest: 3, Src1: 1, Src2: 2, RegReg: true}
	s1, s2 = SrcDemand(mul, 0x100)
	if s1 != 0x1ff || s2 != 0x1ff {
		t.Errorf("reg-reg mul demand = %#x/%#x, want 0x1ff/0x1ff", s1, s2)
	}
	// Zero demand on the destination propagates nothing through
	// arithmetic.
	if s1, s2 = SrcDemand(add, 0); s1 != 0 || s2 != 0 {
		t.Errorf("zero-demand add = %#x/%#x, want 0/0", s1, s2)
	}
	// Loads demand the full address iff any result bit is demanded.
	ld := &Instr{Op: OpLoad, Dest: 4, Src1: 5, AddrGen: 0}
	if s1, _ = SrcDemand(ld, 1); s1 != AllBits {
		t.Errorf("demanded load address = %#x, want all bits", s1)
	}
	if s1, _ = SrcDemand(ld, 0); s1 != 0 {
		t.Errorf("undemanded load address = %#x, want 0", s1)
	}
	// Stores and branches are root consumers: full-word demand
	// regardless of destination demand.
	st := &Instr{Op: OpStore, Src1: 6, Src2: 7}
	if s1, s2 = SrcDemand(st, 0); s1 != AllBits || s2 != AllBits {
		t.Errorf("store demand = %#x/%#x, want all/all", s1, s2)
	}
	br := &Instr{Op: OpBranch, Src1: 8}
	if s1, _ = SrcDemand(br, 0); s1 != AllBits {
		t.Errorf("branch demand = %#x, want all bits", s1)
	}
	// UnACE results are discarded by definition.
	dead := &Instr{Op: OpStore, Src1: 6, Src2: 7, UnACE: true}
	if s1, s2 = SrcDemand(dead, AllBits); s1 != 0 || s2 != 0 {
		t.Errorf("un-ACE demand = %#x/%#x, want 0/0", s1, s2)
	}
}
