package cache

import "fmt"

// HierarchyConfig assembles the full memory system.
type HierarchyConfig struct {
	IL1, DL1, L2 Config
	DTLB         TLBConfig
	// MemLatency is the L2-miss penalty to main memory, in cycles.
	MemLatency int
}

// Validate reports the first configuration error.
func (c HierarchyConfig) Validate() error {
	for _, cc := range []Config{c.IL1, c.DL1, c.L2} {
		if err := cc.Validate(); err != nil {
			return err
		}
	}
	if err := c.DTLB.Validate(); err != nil {
		return err
	}
	if c.MemLatency <= 0 {
		return fmt.Errorf("hierarchy: non-positive memory latency %d", c.MemLatency)
	}
	if c.DL1.LineBytes != c.L2.LineBytes || c.IL1.LineBytes != c.L2.LineBytes {
		return fmt.Errorf("hierarchy: L1/L2 line sizes must match (IL1=%d DL1=%d L2=%d)",
			c.IL1.LineBytes, c.DL1.LineBytes, c.L2.LineBytes)
	}
	return nil
}

// Hierarchy composes IL1, DL1, a unified writeback L2 and the DTLB, and
// routes accesses through them with cumulative latency accounting.
// Bandwidth between levels is not modelled (accesses are independent);
// the stressmark's pointer chase serialises its L2 misses through the
// register dependence instead, exactly as in the paper.
type Hierarchy struct {
	IL1  *Cache
	DL1  *Cache
	L2   *Cache
	DTLB *TLB
	cfg  HierarchyConfig
}

// NewHierarchy builds the memory system.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Hierarchy{
		IL1:  MustNew(cfg.IL1),
		DL1:  MustNew(cfg.DL1),
		L2:   MustNew(cfg.L2),
		DTLB: MustNewTLB(cfg.DTLB),
		cfg:  cfg,
	}, nil
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// Data performs a data access of size bytes at addr issued at time now
// and returns the total latency in cycles (including the DL1 hit
// latency) and whether the access missed DL1 and L2.
func (h *Hierarchy) Data(now int64, addr uint64, size int, write bool) (latency int, dl1Miss, l2Miss bool) {
	t := now
	t += int64(h.DTLB.Access(t, addr))

	if hit, err := h.DL1.TouchHit(t+int64(h.cfg.DL1.HitLatency), addr, size, write); err != nil {
		panic(err)
	} else if hit {
		return int(t + int64(h.cfg.DL1.HitLatency) - now), false, false
	}
	dl1Miss = true
	la := h.DL1.LineAddr(addr)
	// DL1 miss: consult L2.
	if h.L2.Probe(la) {
		t += int64(h.cfg.L2.HitLatency)
	} else {
		l2Miss = true
		t += int64(h.cfg.MemLatency)
		h.fillL2(t, la)
	}
	// The DL1-miss read of the L2 line happens when the fill data moves
	// up (fill→read or read→read in L2 is ACE).
	h.mustTouch(h.L2, t, la, h.cfg.DL1.LineBytes, false)
	// Fill DL1, pushing any dirty victim down into L2.
	wb, dirty, err := h.DL1.Fill(t, addr)
	if err != nil {
		panic(err)
	}
	if dirty {
		h.writebackToL2(t, wb)
	}
	t += int64(h.cfg.DL1.HitLatency)
	h.mustTouch(h.DL1, t, addr, size, write)
	return int(t - now), dl1Miss, l2Miss
}

// Fetch performs an instruction fetch of one line-resident access at pc
// issued at time now and returns the added latency beyond the IL1 hit
// path (0 on an IL1 hit).
func (h *Hierarchy) Fetch(now int64, pc uint64) (extraLatency int) {
	if hit, err := h.IL1.TouchHit(now, pc, 4, false); err != nil {
		panic(err)
	} else if hit {
		return 0
	}
	t := now
	la := h.IL1.LineAddr(pc)
	if h.L2.Probe(la) {
		t += int64(h.cfg.L2.HitLatency)
	} else {
		t += int64(h.cfg.MemLatency)
		h.fillL2(t, la)
	}
	h.mustTouch(h.L2, t, la, h.cfg.IL1.LineBytes, false)
	wb, dirty, err := h.IL1.Fill(t, pc)
	if err != nil {
		panic(err)
	}
	if dirty {
		// Instruction lines are never dirty in this model; defensive.
		h.writebackToL2(t, wb)
	}
	h.mustTouch(h.IL1, t, pc, 4, false)
	return int(t - now)
}

func (h *Hierarchy) fillL2(t int64, addr uint64) {
	wb, dirty, err := h.L2.Fill(t, addr)
	if err != nil {
		panic(err)
	}
	_ = wb
	_ = dirty // dirty L2 victims drain to memory; nothing to track there.
}

// writebackToL2 applies a dirty DL1 victim to the L2 (write-allocate,
// off the critical path).
func (h *Hierarchy) writebackToL2(t int64, wb Writeback) {
	if !h.L2.Probe(wb.Addr) {
		h.fillL2(t, wb.Addr)
	}
	if err := h.L2.TouchMask(t, wb.Addr, wb.DirtyMask); err != nil {
		panic(err)
	}
}

func (h *Hierarchy) mustTouch(c *Cache, t int64, addr uint64, size int, write bool) {
	if err := c.Touch(t, addr, size, write); err != nil {
		panic(err)
	}
}

// Finalize closes all lifetime intervals at time now.
func (h *Hierarchy) Finalize(now int64) {
	h.IL1.Finalize(now)
	h.DL1.Finalize(now)
	h.L2.Finalize(now)
	h.DTLB.Finalize(now)
}

// ResetACE restarts ACE measurement in all levels at time now.
func (h *Hierarchy) ResetACE(now int64) {
	h.IL1.ResetACE(now)
	h.DL1.ResetACE(now)
	h.L2.ResetACE(now)
	h.DTLB.ResetACE(now)
}

// Reset returns every level to its power-on state without reallocating,
// so one Hierarchy can be reused across simulations of the same
// configuration (see pipe.Pipeline.Reset).
func (h *Hierarchy) Reset() {
	h.IL1.Reset()
	h.DL1.Reset()
	h.L2.Reset()
	h.DTLB.Reset()
}

// ResetStats clears hit/miss counters in all levels.
func (h *Hierarchy) ResetStats() {
	h.IL1.ResetStats()
	h.DL1.ResetStats()
	h.L2.ResetStats()
	h.DTLB.ResetStats()
}
