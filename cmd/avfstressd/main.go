// Command avfstressd serves the experiment portfolio over HTTP: clients
// submit declarative scenario specs, the daemon schedules their
// combined job DAG on a bounded worker pool, and every job shares one
// content-addressed simulation store — concurrent clients requesting
// overlapping scenarios each pay only the marginal simulations.
//
// Usage:
//
//	avfstressd [-addr :8080] [-cache-dir DIR] [-journal FILE] [-scale N]
//	           [-parallelism N] [-max-jobs N] [-max-queue N]
//	           [-retries N] [-job-timeout D] [-drain-timeout D]
//	           [-read-timeout D] [-write-timeout D] [-idle-timeout D]
//	           [-heartbeat D] [-lease-ttl D] [-quiet]
//	avfstressd -join URL [-runners N] [-runner-name NAME]
//	           [-cache-dir DIR] [-parallelism N] [-quiet]
//
// API:
//
//	POST   /v1/jobs          submit a scenario.Spec (JSON); returns the job
//	GET    /v1/jobs          list jobs + server-wide cache stats
//	GET    /v1/jobs/{id}     job status (+ ?stream=1: progress stream)
//	DELETE /v1/jobs/{id}     cancel a queued or running job
//	GET    /v1/results/{id}  rendered report + stats (+ ?format=text)
//	GET    /v1/healthz       journal/queue/cache health (JSON)
//	GET    /healthz          liveness
//
// The README documents every route with an example curl session.
// Specs may request registered experiments or the parametric
// stressmark / workloads / faultinject / rootcause scenarios
// (faultinject runs the Monte Carlo fault-injection validation,
// DESIGN.md §9; rootcause renders the same study's per-instruction
// attribution tables, DESIGN.md §14).
//
// With -journal, every accepted submission and terminal outcome is
// durably journalled: a killed daemon restarted on the same journal
// and cache resubmits its unfinished jobs and — because simulation
// results are memoised — reproduces their reports byte-identically
// (DESIGN.md §11). On SIGINT/SIGTERM the daemon drains gracefully:
// new submissions are refused, running jobs get -drain-timeout to
// finish, and whatever is still running resumes after restart.
//
// With -join URL the process runs as a campaign-fabric *runner*
// instead (DESIGN.md §13): no HTTP listener, no job API — it joins the
// coordinator daemon at URL, heartbeats, and executes the announced
// runs, racing the coordinator and its sibling runners claim-by-claim
// for leased jobs and individual simulations. Results flow through the
// coordinator's content-addressed store (CRC-framed, validated on
// receipt), so the coordinator's reports stay byte-identical however
// many runners share the work — runners add throughput, never bytes.
// -runners N hosts N independent runner loops in one process.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"avfstress/internal/sched"
	"avfstress/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		cacheDir = flag.String("cache-dir", "", "persist simulation results under this directory (shared across jobs, runs and processes)")
		journal  = flag.String("journal", "", "durable job journal file; on startup unfinished journalled jobs are resubmitted (empty = no journal)")
		scale    = flag.Int("scale", 0, "default cache scale-down factor for jobs that set none (0 = harness default)")
		par      = flag.Int("parallelism", 0, "per-job concurrency bound (0 = all cores)")
		maxJobs  = flag.Int("max-jobs", 0, "concurrently running jobs; excess queue in order (0 = all cores)")
		maxQueue = flag.Int("max-queue", 0, "admitted unfinished jobs; submissions beyond this get 429 (0 = 1024)")
		retries  = flag.Int("retries", 0, "attempts per scheduler job for transient failures; 1 disables retries (0 = server default of 3)")
		jobTO    = flag.Duration("job-timeout", 0, "deadline per scheduler job (simulation/search/render); exceeded deadlines are retried, then fail the job (0 = none)")
		drainTO  = flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM lets running jobs finish before they are suspended for restart")
		readTO   = flag.Duration("read-timeout", 30*time.Second, "HTTP read timeout (0 = none)")
		writeTO  = flag.Duration("write-timeout", 10*time.Minute, "HTTP write timeout; bounds streamed progress too (0 = none)")
		idleTO   = flag.Duration("idle-timeout", 2*time.Minute, "HTTP idle connection timeout (0 = none)")
		quiet    = flag.Bool("quiet", false, "suppress server logging")

		join       = flag.String("join", "", "run as a fabric runner joined to the coordinator daemon at this URL (no listener)")
		runners    = flag.Int("runners", 1, "with -join: independent runner loops hosted by this process")
		runnerName = flag.String("runner-name", "", "with -join: runner label in coordinator logs (default: the hostname)")
		heartbeat  = flag.Duration("heartbeat", 0, "fabric runner heartbeat period (0 = 500ms)")
		leaseTTL   = flag.Duration("lease-ttl", 0, "silence after which a runner's claims are freed for stealing (0 = 5s)")
	)
	flag.Parse()

	if *join != "" {
		runRunners(*join, *runners, *runnerName, *cacheDir, *par, *quiet)
		return
	}

	opts := service.Options{
		CacheDir:    *cacheDir,
		JournalPath: *journal,
		Scale:       *scale,
		Parallelism: *par,
		MaxJobs:     *maxJobs,
		MaxQueue:    *maxQueue,
		JobTimeout:  *jobTO,

		HeartbeatInterval: *heartbeat,
		LeaseTTL:          *leaseTTL,
	}
	if *retries > 0 {
		opts.Retry = sched.RetryPolicy{MaxAttempts: *retries}
	}
	if !*quiet {
		opts.Logf = func(f string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "avfstressd: "+f+"\n", args...)
		}
	}
	srv, err := service.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "avfstressd:", err)
		os.Exit(1)
	}
	if n := srv.Recovered(); n > 0 {
		fmt.Fprintf(os.Stderr, "avfstressd: resubmitted %d unfinished jobs from %s\n", n, *journal)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "avfstressd:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "avfstressd: listening on http://%s\n", ln.Addr())
	hs := &http.Server{
		Handler:      srv,
		ReadTimeout:  *readTO,
		WriteTimeout: *writeTO,
		IdleTimeout:  *idleTO,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "avfstressd:", err)
		os.Exit(1)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "avfstressd: %v — draining (up to %v)\n", s, *drainTO)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := srv.Drain(ctx); err != nil && err != context.DeadlineExceeded {
		fmt.Fprintln(os.Stderr, "avfstressd: drain:", err)
	}
	hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer hcancel()
	hs.Shutdown(hctx)
}

// runRunners hosts n fabric runner loops joined to the coordinator at
// url, until SIGINT/SIGTERM. Each loop gets its own local store (a
// per-runner subdirectory when -cache-dir is set — runners must not
// share tiers; the shared tier is the coordinator's store over HTTP).
func runRunners(url string, n int, name, cacheDir string, parallelism int, quiet bool) {
	if n < 1 {
		n = 1
	}
	if name == "" {
		name, _ = os.Hostname()
		if name == "" {
			name = "runner"
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "avfstressd: %v — stopping runners\n", s)
		cancel()
	}()

	var wg sync.WaitGroup
	for i := 1; i <= n; i++ {
		label := name
		dir := cacheDir
		if n > 1 {
			label = fmt.Sprintf("%s-%d", name, i)
		}
		if dir != "" {
			dir = filepath.Join(dir, fmt.Sprintf("runner-%d", i))
		}
		opts := service.RunnerOptions{
			Coordinator: url,
			Name:        label,
			Workers:     parallelism,
			CacheDir:    dir,
		}
		if !quiet {
			opts.Logf = func(f string, args ...interface{}) {
				fmt.Fprintf(os.Stderr, "avfstressd["+label+"]: "+f+"\n", args...)
			}
		}
		r := service.NewRunner(opts)
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Run(ctx)
		}()
	}
	fmt.Fprintf(os.Stderr, "avfstressd: %d runner(s) joining %s\n", n, url)
	wg.Wait()
}
