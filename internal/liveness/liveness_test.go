package liveness

import (
	"strings"
	"testing"

	"avfstress/internal/isa"
	"avfstress/internal/prog"
	"avfstress/internal/uarch"
)

func initAll() []isa.Instr {
	var ins []isa.Instr
	for r := isa.Reg(0); r < isa.NumArchRegs-1; r++ {
		ins = append(ins, isa.Instr{Op: isa.OpAdd, Dest: r, Src1: isa.RZero, Imm: int16(r)})
	}
	return ins
}

func loopOf(body []isa.Instr) *prog.Program {
	body = append(body, isa.Instr{Op: isa.OpBranch, Dest: isa.RZero, Src1: 2, BrGen: 0})
	return &prog.Program{
		Name: "unit", Init: initAll(), Body: body,
		BrGens:     []prog.BranchGen{prog.LoopBranch{Iterations: 1 << 40}},
		Iterations: 1 << 40,
	}
}

func core() uarch.CoreConfig { return uarch.Baseline().Core }

// findBodyDef returns the body instruction writing r (first match).
func findBodyDef(p *prog.Program, r isa.Reg) *isa.Instr {
	for i := range p.Body {
		in := &p.Body[i]
		if isa.WritesDest(in) && in.Dest == r {
			return in
		}
	}
	return nil
}

func TestDeadDefs(t *testing.T) {
	p := loopOf([]isa.Instr{
		{Op: isa.OpAdd, Dest: 5, Src1: 1, Imm: 1},                // dead: never read
		{Op: isa.OpAdd, Dest: 6, Src1: 2, Imm: 3},                // live: read by the mul
		{Op: isa.OpMul, Dest: 7, Src1: 6, Src2: 2, RegReg: true}, // live: read below
		{Op: isa.OpAdd, Dest: 8, Src1: 7, Imm: 1},                // dead: never read
		{Op: isa.OpAdd, Dest: 9, Src1: 9, Imm: 1},                // live: self-dependent chase
		{Op: isa.OpAdd, Dest: 10, Src1: 3, Imm: 2, UnACE: true},  // dead: un-ACE result
	})
	s := Analyze(p, core())
	for _, tc := range []struct {
		r    isa.Reg
		dead bool
	}{{5, true}, {6, false}, {7, false}, {8, true}, {9, false}, {10, true}} {
		in := findBodyDef(p, tc.r)
		if in == nil {
			t.Fatalf("no body def of r%d", tc.r)
		}
		if got := s.DeadDefs[in]; got != tc.dead {
			t.Errorf("def of r%d: dead=%v, want %v", tc.r, got, tc.dead)
		}
	}
	// Init defs of registers ACE instructions read are live. Init defs
	// the body redefines without reading first are dead, and so is r3's:
	// its only reader is the un-ACE add, and un-ACE reads never advance
	// a value's last-read time in the replay's fault model.
	for i := range p.Init {
		in := &p.Init[i]
		switch in.Dest {
		case 1, 2: // ACE-read every iteration, never redefined
			if s.DeadDefs[in] {
				t.Errorf("init def of r%d marked dead but the body reads it", in.Dest)
			}
		case 3: // read only by the un-ACE add
			if !s.DeadDefs[in] {
				t.Error("init def of r3 not marked dead despite only un-ACE readers")
			}
		case 5, 8: // redefined by the body with no read in between
			if !s.DeadDefs[in] {
				t.Errorf("init def of r%d not marked dead despite unread redefinition", in.Dest)
			}
		}
	}
	if f := s.DeadDefFrac(); f <= 0 || f >= 1 {
		t.Errorf("dead-def fraction %f not in (0, 1)", f)
	}
}

func TestOccupancyCaps(t *testing.T) {
	c := core()
	// A load/store-free body caps both LSQ halves at zero occupants and
	// leaves the IQ capped by the window's non-nop count (if smaller
	// than the queue).
	p := loopOf([]isa.Instr{
		{Op: isa.OpAdd, Dest: 5, Src1: 1, Imm: 1},
		{Op: isa.OpAdd, Dest: 6, Src1: 2, Imm: 3},
	})
	s := Analyze(p, c)
	if s.LQCap != 0 || s.SQCap != 0 {
		t.Errorf("LSQ caps %d/%d for a load/store-free body, want 0/0", s.LQCap, s.SQCap)
	}
	if s.MaxLoads != 0 || s.MaxStores != 0 {
		t.Errorf("window maxima loads=%d stores=%d, want 0/0", s.MaxLoads, s.MaxStores)
	}
	if s.IQCap <= 0 || s.IQCap > c.IQEntries {
		t.Errorf("IQ cap %d outside (0, %d]", s.IQCap, c.IQEntries)
	}
	if s.FUCap <= 0 || s.FUCap > c.NumALUs*c.ALULatency+c.NumMuls*c.MulLatency {
		t.Errorf("FU cap %d outside its bound", s.FUCap)
	}
	// The window writer count bounds free-list pop depth; a two-writer
	// body leaves most of the physical pool untouched.
	if s.MaxWriters > c.ROBEntries {
		t.Errorf("window writers %d exceed the ROB", s.MaxWriters)
	}
	wantFree := c.PhysRegs - (isa.NumArchRegs - 1) - s.MaxWriters
	if wantFree < 0 {
		wantFree = 0
	}
	if s.FreeRFSlots != wantFree {
		t.Errorf("free-list bound %d, want %d", s.FreeRFSlots, wantFree)
	}
	if s.MaxNonNop == 0 || s.MaxAdds == 0 {
		t.Error("window maxima missing the adds")
	}
	if !strings.Contains(s.String(), "liveness:") {
		t.Error("String() lacks the liveness prefix")
	}
}

func TestBitMasksFixpoint(t *testing.T) {
	// r1 feeds a store (root consumer, full demand); r2 feeds only the
	// low byte of an arithmetic chain whose sink demands all bits via a
	// branch compare.
	p := loopOf([]isa.Instr{
		{Op: isa.OpAdd, Dest: 5, Src1: 2, Imm: 1},
		{Op: isa.OpStore, Src1: 1, Src2: 5, AddrGen: 0},
	})
	p.AddrGens = []prog.AddrGen{prog.Fixed{Address: 0x4000_0000}}
	s := Analyze(p, core())
	if len(s.LiveIn) != len(p.Init)+len(p.Body) {
		t.Fatalf("LiveIn has %d entries, want %d", len(s.LiveIn), len(p.Init)+len(p.Body))
	}
	// At the loop head, both store operands' sources must be live with
	// full masks (store demands all bits, the add smears demand down).
	head := s.LiveIn[len(p.Init)]
	if head[1] != isa.AllBits {
		t.Errorf("store address source r1 live-in %#x, want all bits", head[1])
	}
	if head[2] != isa.AllBits {
		t.Errorf("store data chain source r2 live-in %#x, want all bits", head[2])
	}
	// A register nothing reads stays fully dead at every point.
	for i, m := range s.LiveIn {
		if m[20] != 0 {
			t.Errorf("untouched r20 live at point %d: %#x", i, m[20])
		}
	}
	if f := s.LiveBitFrac(); f <= 0 || f >= 1 {
		t.Errorf("live-bit fraction %f not in (0, 1)", f)
	}
}

func TestAnalyzeEmptyBody(t *testing.T) {
	// Degenerate programs must yield conservative no-cap facts, not
	// zero caps that would prune live structures.
	c := core()
	s := Analyze(&prog.Program{Name: "empty"}, c)
	if s.IQCap != c.IQEntries || s.LQCap != c.LQEntries || s.SQCap != c.SQEntries {
		t.Errorf("empty-body caps %d/%d/%d, want full queues", s.IQCap, s.LQCap, s.SQCap)
	}
	if s.FreeRFSlots != 0 || len(s.DeadDefs) != 0 {
		t.Errorf("empty-body prune facts %d free slots, %d dead defs, want none",
			s.FreeRFSlots, len(s.DeadDefs))
	}
}
