// Command benchjson converts `go test -bench` output on stdin into
// machine-readable JSON on stdout, so benchmark snapshots can be
// committed (BENCH_*.json) and compared across PRs without parsing the
// text format again. Used by `make bench`.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem | benchjson > BENCH_latest.json
//
// Each benchmark line becomes one record; custom b.ReportMetric units
// land in "metrics". Context lines (goos/goarch/pkg/cpu) are captured
// into the header.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the full converted run.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	rep := Report{Results: []Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "\t")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseLine handles `BenchmarkName-8  N  12.3 ns/op  4 B/op  2 allocs/op
// 5.0 custom-unit ...`: a name, an iteration count, then value/unit
// pairs.
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: f[0], Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[f[i+1]] = v
		}
	}
	return r, true
}
