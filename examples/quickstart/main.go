// Quickstart: generate an AVF stressmark for the paper's baseline
// Alpha-21264-like configuration with a small GA search, then print the
// final knob settings (paper Figure 5a), the convergence trace (Figure
// 5b) and the induced per-class SER (Figure 3's stressmark bars).
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"avfstress"
	"avfstress/internal/ga"
)

func main() {
	// Scale the storage arrays down 32× so the run finishes in seconds;
	// the core is exactly the paper's Table I (see DESIGN.md §4).
	cfg := avfstress.Scaled(avfstress.Baseline(), 32)
	rates := avfstress.UniformRates(1) // 1 unit/bit everywhere, as in the paper

	fmt.Println("searching for an AVF stressmark on", cfg.Name, "...")
	res, err := avfstress.Search(context.Background(), avfstress.SearchSpec{
		Config: cfg,
		Rates:  rates,
		GA:     ga.Config{PopSize: 10, Generations: 8, Seed: 1},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nfinal GA solution after %d evaluations (%d cataclysms):\n\n%s\n",
		res.Evaluations, res.Cataclysms, res.Knobs)

	fmt.Println("convergence (avg fitness per generation):")
	for _, h := range res.History {
		ev := ""
		if h.Cataclysm {
			ev = "  ← cataclysm"
		}
		fmt.Printf("  gen %2d  avg %.3f  best %.3f%s\n", h.Generation, h.Avg, h.Best, ev)
	}

	fmt.Println("\nstressmark-induced SER (units/bit, normalised per class):")
	for _, cl := range []avfstress.Class{
		avfstress.ClassQS, avfstress.ClassQSRF,
		avfstress.ClassDL1DTLB, avfstress.ClassL2,
	} {
		fmt.Printf("  %-10s %.3f\n", cl, res.Result.SER(cfg, rates, cl))
	}
	fmt.Printf("\nIPC %.2f, ROB occupancy %.0f%%, L2 miss rate %.0f%% — the L2-miss-shadow\n",
		res.Result.IPC, res.Result.OccupancyROB*100, res.Result.L2MissRate*100)
	fmt.Println("mechanism of §IV at work. Run with -h? See cmd/avfstress for the full CLI.")
}
