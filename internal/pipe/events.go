package pipe

// The event-driven core replaces the seed's per-cycle ROB scans with two
// small schedules:
//
//   - compQ, a min-heap of completion events pushed at issue, so
//     complete() touches only the uops finishing at the current cycle and
//     nextEvent() is an O(1) peek;
//   - wakeQ, a min-heap of operand-ready events. A consumer whose source
//     register has a known future ready cycle (its producer already
//     issued) schedules a timed wakeup; a consumer whose producer has not
//     issued yet parks on the producer register's waiter list and is
//     converted to a timed wakeup when the producer issues and broadcasts
//     its completion cycle.
//
// Events reference ROB slots by sequence number and are invalidated
// lazily: a misprediction flush rewinds tail without touching the heaps,
// and stale entries are recognised when popped because either the
// sequence number is outside [head, tail) or the slot's generation
// counter (bumped on every dispatch) no longer matches.

// event schedules a state change for the uop at seq: a completion
// (compQ) or one source operand becoming ready (wakeQ).
type event struct {
	cycle int64
	seq   int64
	gen   uint32
}

// eventHeap is a binary min-heap of events ordered by (cycle, seq). The
// seq tiebreak makes same-cycle completions pop in age order, which is
// what preserves the scan-based core's oldest-first flush semantics.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	return h[i].cycle < h[j].cycle || (h[i].cycle == h[j].cycle && h[i].seq < h[j].seq)
}

func (h *eventHeap) push(e event) {
	q := append(*h, e)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	*h = q
}

func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && q.less(l, least) {
			least = l
		}
		if r < n && q.less(r, least) {
			least = r
		}
		if least == i {
			break
		}
		q[i], q[least] = q[least], q[i]
		i = least
	}
	*h = q
	return top
}

// waiterRef parks a dispatched consumer on a physical register whose
// producer has not issued yet (ready cycle still unknown).
type waiterRef struct {
	seq int64
	gen uint32
}

// live reports whether the event or waiter still refers to the uop it was
// created for: in the current ROB window and with a matching generation.
func (pl *Pipeline) live(seq int64, gen uint32) (*uop, bool) {
	if seq < pl.head || seq >= pl.tail {
		return nil, false
	}
	u := pl.at(seq)
	return u, u.gen == gen
}

// drainWakeups applies every operand-ready event due at or before now.
// When a uop's last pending source resolves it enters the ready queue.
func (pl *Pipeline) drainWakeups() {
	for len(pl.wakeQ) > 0 && pl.wakeQ[0].cycle <= pl.now {
		e := pl.wakeQ.pop()
		u, ok := pl.live(e.seq, e.gen)
		if !ok || u.state != sWaiting {
			continue
		}
		u.pendingSrcs--
		if u.pendingSrcs == 0 {
			pl.readyQ.insert(e.seq, e.gen)
		}
	}
}

// watchOperands counts the uop's not-yet-ready sources and schedules one
// wakeup per source: a timed event when the ready cycle is already known,
// a waiter-list registration when the producer has not issued. Called at
// dispatch; a uop with no pending sources goes straight to the ready
// queue.
func (pl *Pipeline) watchOperands(seq int64, u *uop) {
	pending := uint8(0)
	for _, s := range u.src {
		if s == noReg {
			continue
		}
		rc := pl.regs[s].readyCycle
		if rc <= pl.now {
			continue
		}
		pending++
		if rc == farAway {
			pl.waiters[s] = append(pl.waiters[s], waiterRef{seq: seq, gen: u.gen})
		} else {
			pl.wakeQ.push(event{cycle: rc, seq: seq, gen: u.gen})
		}
	}
	u.pendingSrcs = pending
	if pending == 0 {
		pl.readyQ.insert(seq, u.gen)
	}
}

// broadcast converts the waiters parked on physical register p into timed
// wakeups at ready (the producer's completion cycle). Waiters from
// flushed consumers fail the generation check when their event pops.
func (pl *Pipeline) broadcast(p int16, ready int64) {
	w := pl.waiters[p]
	for _, ref := range w {
		pl.wakeQ.push(event{cycle: ready, seq: ref.seq, gen: ref.gen})
	}
	pl.waiters[p] = w[:0]
}
