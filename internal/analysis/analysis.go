// Package analysis implements the paper's alternative worst-case SER
// estimators, used in §VI ("back of the envelope" instantaneous maximum)
// and §VII / Table III (best individual program, sum of highest
// per-structure SERs, sum of raw circuit rates), so the stressmark can be
// compared against each of them.
package analysis

import (
	"fmt"
	"strings"

	"avfstress/internal/avf"
	"avfstress/internal/uarch"
)

// WorstCaseBreakdown is the §VI instantaneous-occupancy bound: the most
// vulnerable plausible single-cycle state of the queueing structures in
// the shadow of an L2 miss.
type WorstCaseBreakdown struct {
	// Entries assumed occupied with ACE state at the worst instant.
	ROBEntries int
	IQEntries  int
	LQEntries  int
	SQEntries  int
	// ACE bits at that instant and the normalising total.
	ACEBits   uint64
	TotalBits uint64
}

// Value returns the normalised instantaneous worst case in units/bit.
func (w WorstCaseBreakdown) Value() float64 {
	if w.TotalBits == 0 {
		return 0
	}
	return float64(w.ACEBits) / float64(w.TotalBits)
}

// String renders the WorstCaseBreakdown as its paper-style report.
func (w WorstCaseBreakdown) String() string {
	return fmt.Sprintf(
		"instantaneous worst case: ROB=%d IQ=%d LQ=%d SQ=%d FU=0 → %d/%d bits = %.3f units/bit",
		w.ROBEntries, w.IQEntries, w.LQEntries, w.SQEntries, w.ACEBits, w.TotalBits, w.Value())
}

// InstantaneousWorstCase reproduces the paper's §VI calculation for the
// queueing structures: in the shadow of a blocking L2 miss the ROB is
// full, the LQ and SQ hold as many of those instructions as they can,
// the IQ holds the remainder (capped at its size), and the function
// units are idle. For the baseline this distributes 80 ROB entries as
// 32 LQ + 32 SQ + 16 IQ, exactly as in the paper. Only the blocking miss
// itself lacks its data ("the LQ data array corresponding to an issued
// load contains ACE bits only after the data has been brought from the
// memory hierarchy"); the remaining LQ entries are completed hit loads
// waiting behind it, so their data arrays are ACE.
func InstantaneousWorstCase(cfg uarch.Config) WorstCaseBreakdown {
	core := cfg.Core
	w := WorstCaseBreakdown{ROBEntries: core.ROBEntries}
	rest := core.ROBEntries
	w.LQEntries = min(core.LQEntries, rest)
	rest -= w.LQEntries
	w.SQEntries = min(core.SQEntries, rest)
	rest -= w.SQEntries
	w.IQEntries = min(core.IQEntries, rest)

	half := uint64(core.LSQEntryBits) / 2
	lqData := uint64(0)
	if w.LQEntries > 0 {
		lqData = uint64(w.LQEntries-1) * half // all but the blocking miss
	}
	w.ACEBits = uint64(w.ROBEntries)*uint64(core.ROBEntryBits) +
		uint64(w.IQEntries)*uint64(core.IQEntryBits) +
		uint64(w.LQEntries)*half + lqData +
		uint64(w.SQEntries)*uint64(core.LSQEntryBits)
	for _, s := range uarch.QueueStructures {
		w.TotalBits += uarch.Bits(cfg, s)
	}
	return w
}

// Best returns the workload result with the highest class SER, the
// paper's "Best Individual Program" estimator.
func Best(results []*avf.Result, cfg uarch.Config, rates uarch.FaultRates, c avf.Class) (*avf.Result, float64) {
	var best *avf.Result
	bestSER := -1.0
	for _, r := range results {
		if s := r.SER(cfg, rates, c); s > bestSER {
			best, bestSER = r, s
		}
	}
	return best, bestSER
}

// SumOfHighestPerStructure computes the paper's "Sum of highest
// per-structure SER" estimator over a class: for each member structure,
// take the highest AVF observed across all workloads, derate the
// structure's raw rate with it, sum, and normalise by the class bits.
// The paper shows this estimator is fundamentally unsound (it composes
// states no single program can realise, yet can still undershoot).
func SumOfHighestPerStructure(results []*avf.Result, cfg uarch.Config, rates uarch.FaultRates, c avf.Class) float64 {
	var num, bits float64
	for _, s := range c.Structures() {
		maxAVF := 0.0
		for _, r := range results {
			if r.AVF[s] > maxAVF {
				maxAVF = r.AVF[s]
			}
		}
		num += maxAVF * float64(uarch.Bits(cfg, s)) * rates[s]
		bits += float64(uarch.Bits(cfg, s))
	}
	if bits == 0 {
		return 0
	}
	return num / bits
}

// SumOfRawRates is the most pessimistic estimator: no derating at all
// (AVF = 1 everywhere), i.e. the bit-weighted mean circuit rate of the
// class. The paper reports 1, 0.59 and 0.39 units/bit for the core under
// the Baseline, RHC and EDR rate sets.
func SumOfRawRates(cfg uarch.Config, rates uarch.FaultRates, c avf.Class) float64 {
	var num, bits float64
	for _, s := range c.Structures() {
		b := float64(uarch.Bits(cfg, s))
		num += b * rates[s]
		bits += b
	}
	if bits == 0 {
		return 0
	}
	return num / bits
}

// TightenedWorstCase is SumOfRawRates with the statically proven dead
// fraction of each structure's bit-cycle space subtracted (AVF ≤
// 1−deadFrac instead of AVF = 1): the tightened static upper bound the
// liveness pass (internal/liveness, DESIGN.md §12) buys without any
// derating data. deadFrac maps structures to their dead fractions;
// absent structures keep the pessimistic AVF = 1, so a nil map reduces
// to SumOfRawRates and the result can never exceed it.
func TightenedWorstCase(cfg uarch.Config, rates uarch.FaultRates, c avf.Class, deadFrac map[uarch.Structure]float64) float64 {
	var num, bits float64
	for _, s := range c.Structures() {
		b := float64(uarch.Bits(cfg, s))
		num += b * rates[s] * (1 - deadFrac[s])
		bits += b
	}
	if bits == 0 {
		return 0
	}
	return num / bits
}

// Coverage quantifies the SER coverage of a workload suite against a
// known worst case, formalising the paper's Figure 1 discussion.
type Coverage struct {
	Class     avf.Class
	Min, Max  float64 // workload-induced SER range
	Mean      float64
	WorstCase float64 // stressmark-established worst case
	BestName  string
}

// Gap returns the uncovered fraction between the highest
// workload-induced SER and the worst case: the safety margin (relative
// to the best workload) that would just reach the worst case.
func (c Coverage) Gap() float64 {
	if c.Max == 0 {
		return 0
	}
	return c.WorstCase/c.Max - 1
}

// String renders the Coverage as its paper-style report.
func (c Coverage) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: workloads span [%.3f, %.3f] (mean %.3f), worst case %.3f\n",
		c.Class, c.Min, c.Max, c.Mean, c.WorstCase)
	fmt.Fprintf(&b, "  highest workload: %s; required safety margin over it: %.0f%%\n",
		c.BestName, c.Gap()*100)
	return b.String()
}

// SuiteCoverage computes Coverage for a class over a workload population.
func SuiteCoverage(results []*avf.Result, cfg uarch.Config, rates uarch.FaultRates,
	c avf.Class, worstCase float64) Coverage {
	cov := Coverage{Class: c, WorstCase: worstCase, Min: -1}
	var sum float64
	for _, r := range results {
		s := r.SER(cfg, rates, c)
		sum += s
		if cov.Min < 0 || s < cov.Min {
			cov.Min = s
		}
		if s > cov.Max {
			cov.Max = s
			cov.BestName = r.Workload
		}
	}
	if len(results) > 0 {
		cov.Mean = sum / float64(len(results))
	}
	if cov.Min < 0 {
		cov.Min = 0
	}
	return cov
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
