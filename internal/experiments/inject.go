package experiments

// The fault-injection validation experiment (DESIGN.md §9): Monte Carlo
// statistical fault injection is the standard cross-check for an
// ACE-based AVF estimator, so the faultinject scenario runs campaigns
// over a representative workload panel plus the evolved stressmark and
// reports injection-measured AVF beside ACE-based AVF, flagging any
// campaign whose 95% confidence interval fails to contain the ACE
// value.

import (
	"context"
	"fmt"
	"strings"

	"avfstress/internal/analysis"
	"avfstress/internal/inject"
	"avfstress/internal/pipe"
	"avfstress/internal/report"
	"avfstress/internal/scenario"
	"avfstress/internal/uarch"
	"avfstress/internal/workloads"
)

// injectionPanel lists the workload proxies campaigns validate against:
// one representative per suite. Kept small deliberately — each entry
// costs Trials replays — while still spanning the three workload
// families' occupancy regimes.
var injectionPanel = []string{"403.gcc", "433.milc", "qsort"}

// InjectionStudy is the faultinject scenario's result: one campaign per
// panel workload plus one on the stressmark, all on one configuration
// and fault-rate set.
type InjectionStudy struct {
	Config    uarch.Config
	RatesName string
	Trials    int
	Campaigns []*inject.Result // panel order, stressmark last
}

// String renders the cross-campaign summary (bit-weighted, so the
// outcome counts reconcile with the AVF column), the rate-weighted
// comparison lines, and the stressmark campaign's per-structure
// detail.
func (s *InjectionStudy) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault-injection validation — %s under %s rates, %d trials per campaign\n\n",
		s.Config.Name, s.RatesName, s.Trials)
	rows := make([]report.InjectionRow, 0, len(s.Campaigns))
	for _, c := range s.Campaigns {
		rows = append(rows, report.InjectionRow{
			Label: c.Workload, Bits: c.TotalBits(), Trials: c.Trials,
			SDC: c.SDC, Detected: c.Detected, Masked: c.Masked, Pruned: c.Pruned,
			AVF: c.AVF, Lo: c.CI.Lo, Hi: c.CI.Hi, ACE: c.ACEAVF,
		})
	}
	b.WriteString(report.InjectionTable("bit-weighted AVF, injection vs ACE accounting:", rows))
	b.WriteString("\n")
	for _, c := range s.Campaigns {
		fmt.Fprintf(&b, "%-32s %s\n", c.Workload, c.DeratedLine())
	}
	if n := len(s.Campaigns); n > 0 {
		fmt.Fprintf(&b, "\nstressmark campaign, per structure:\n%s", s.Campaigns[n-1])
	}
	return b.String()
}

// RootCauseReport renders the study's attribution view: per campaign,
// the root-cause instruction and instruction-class tables plus the SDC
// density diagnostic, headed by the configuration's §VI instantaneous
// worst-case bound so the ranking reads against the occupancy ceiling
// the stressmark chases. The campaigns are the same memoised results as
// String() — attribution adds zero extra replays.
func (s *InjectionStudy) RootCauseReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Root-cause instruction analysis — %s under %s rates, %d trials per campaign\n\n",
		s.Config.Name, s.RatesName, s.Trials)
	fmt.Fprintf(&b, "%s\n\n", analysis.InstantaneousWorstCase(s.Config))
	for _, c := range s.Campaigns {
		if c.RootCause == nil {
			fmt.Fprintf(&b, "%s: campaign carries no attribution tables\n\n", c.Workload)
			continue
		}
		fmt.Fprintf(&b, "%s — SDC density %.4f per corrupting trial\n%s\n",
			c.Workload, c.RootCause.SDCDensity(), c.RootCause)
	}
	return strings.TrimRight(b.String(), "\n") + "\n"
}

// injectBudget sizes campaign simulations: the workload budget scaled
// down 8× — every trial replays the run, so campaigns trade window
// length for trial count. The golden run and all replays share it.
func (c *Context) injectBudget() pipe.RunConfig {
	rc := c.workloadBudget()
	rc.MaxInstructions /= 8
	rc.WarmupInstructions /= 8
	return rc
}

// FaultInjection runs (once, memoised) the injection validation study
// for the named configuration and rate set: a campaign of trials
// replays per panel workload and for the stressmark. The stressmark
// search is the suite's shared memoised search (declare it as a job
// dependency); campaigns fan their trials out through internal/sched
// and memoise per-trial outcomes in the shared simulation store.
func (c *Context) FaultInjection(ctx context.Context, configName, ratesName string, trials int) (*InjectionStudy, error) {
	cfg, err := ResolveConfig(configName, c.Opts.Scale)
	if err != nil {
		return nil, err
	}
	rates, err := ResolveRates(ratesName)
	if err != nil {
		return nil, err
	}
	if trials <= 0 {
		trials = defaultInjectTrials
	}
	key := fmt.Sprintf("fi\x00%s\x00%s\x00%d", cfg.Fingerprint(), rates.Fingerprint(), trials)
	return c.fi.do(key, func() (*InjectionStudy, error) {
		rc := c.injectBudget()
		study := &InjectionStudy{Config: cfg, RatesName: orDefault(ratesName, "uniform"), Trials: trials}
		for _, name := range injectionPanel {
			pf, err := workloads.ByName(name)
			if err != nil {
				return nil, err
			}
			p, err := pf.Build(cfg, c.Opts.Seed)
			if err != nil {
				return nil, err
			}
			res, err := inject.Run(ctx, inject.Options{
				Config: cfg, Program: p, Run: rc, Rates: rates,
				Trials: trials, Seed: c.Opts.Seed,
				Parallelism: c.Opts.Parallelism, Cache: c.cache,
				CheckpointInterval: c.Opts.CheckpointInterval,
				PruneStatic:        c.Opts.PruneStatic,
				RootCause:          true,
				Retry:              c.Opts.Retry,
				Executor:           c.Opts.Executor,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: injection campaign %s: %w", name, err)
			}
			c.logf("injection campaign %s: AVF %.4f [%.4f, %.4f] vs ACE %.4f",
				name, res.DeratedAVF, res.DeratedCI.Lo, res.DeratedCI.Hi, res.DeratedACE)
			c.logf("injection campaign %s: %s", name, res.PruneLine())
			study.Campaigns = append(study.Campaigns, res)
		}
		sm, err := c.Stressmark(ctx, SearchKeyFor(configName, ratesName), cfg, rates)
		if err != nil {
			return nil, err
		}
		res, err := inject.Run(ctx, inject.Options{
			Config: cfg, Program: sm.Program, Run: rc, Rates: rates,
			Trials: trials, Seed: c.Opts.Seed,
			Parallelism: c.Opts.Parallelism, Cache: c.cache,
			CheckpointInterval: c.Opts.CheckpointInterval,
			PruneStatic:        c.Opts.PruneStatic,
			RootCause:          true,
			Retry:              c.Opts.Retry,
			Executor:           c.Opts.Executor,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: injection campaign stressmark: %w", err)
		}
		c.logf("injection campaign stressmark: AVF %.4f [%.4f, %.4f] vs ACE %.4f",
			res.DeratedAVF, res.DeratedCI.Lo, res.DeratedCI.Hi, res.DeratedACE)
		c.logf("injection campaign stressmark: %s", res.PruneLine())
		study.Campaigns = append(study.Campaigns, res)
		return study, nil
	})
}

// faultInjectJob declares one injection study, keyed like the
// FaultInjection memo.
func (c *Context) faultInjectJob(configName, ratesName string, trials int, deps []string) scenario.Job {
	cfg, _ := ResolveConfig(configName, c.Opts.Scale)
	rates, _ := ResolveRates(ratesName)
	return scenario.Job{
		Key:  fmt.Sprintf("fi\x00%s\x00%s\x00%d", cfg.Fingerprint(), rates.Fingerprint(), trials),
		Deps: deps,
		Run: func(ctx context.Context) error {
			_, err := c.FaultInjection(ctx, configName, ratesName, trials)
			return err
		},
	}
}
