// Package rootcause attributes fault-injection outcomes to program
// instructions — the software-perspective companion to the
// hardware-structure AVF tables (DESIGN.md §14). For every corrupted
// trial the replay engine records the first divergent commit: the
// earliest-committing instruction whose architectural effect consumed
// the flipped bit (pipe.Diverge). This package walks the static def-use
// chain one level back from that consumer to the instruction whose
// value the flipped bit held — the root cause — and aggregates
// per-instruction and per-instruction-class vulnerability tables with
// Wilson confidence intervals and bit-cycle-normalised corruption
// shares.
//
// The walk is deliberately one-level, not transitive, mirroring the
// liveness pass's dead-definition rule: the flipped bit held exactly
// one value, produced by exactly one instruction; chasing further back
// would attribute the corruption to instructions whose own values were
// never touched. The differential harness in internal/inject
// (TestRootCauseSoundAgainstReplay) proves every attribution lies on
// the dynamic def-use path into the first divergent commit.
//
// Attribution scope is the core structures. The cache/TLB fate watches
// observe Biswas lifetime transitions, not instruction identity, so
// memory-hierarchy corruption aggregates as unattributed mass — the
// tables say so explicitly rather than guessing.
package rootcause

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"avfstress/internal/isa"
	"avfstress/internal/liveness"
	"avfstress/internal/pipe"
	"avfstress/internal/prog"
	"avfstress/internal/report"
	"avfstress/internal/uarch"
)

// Cause is the root-cause attribution of one corrupted trial.
type Cause struct {
	// PC and Op identify the attributed program instruction.
	PC uint64
	Op isa.Op
	// Instr points into the program's Init/Body slices.
	Instr *isa.Instr
	// Demanded reports whether the flipped bit lies inside the
	// bit-level demand mask the consumer places on the corrupted value
	// (isa.SrcDemand with full downstream demand). The replay's fault
	// model is value-level, so un-demanded bits still corrupt; the flag
	// measures how much of the attributed mass bit-level reasoning
	// would tighten away.
	Demanded bool
}

// Attribute resolves the root-cause instruction of one corrupted trial:
// the fault names the flipped bit's holding structure, the diverge
// record names the consuming instruction, and the static def-use walk
// (liveness.LastWriter over init·body^ω) maps the consumed operand back
// to its producer. Returns false when the corruption has no attributable
// instruction (memory-hierarchy structures, or a consumer PC outside
// the program).
func Attribute(p *prog.Program, f pipe.Fault, d pipe.Diverge) (Cause, bool) {
	if d.Seq < 0 {
		return Cause{}, false
	}
	cons, inBody, idx := instrAt(p, d.PC)
	if cons == nil {
		return Cause{}, false
	}
	// Which operand of the consumer did the flipped value flow through?
	// Queue-structure flips corrupt the consumer's own in-flight state
	// (its queue entry, its executing result, its loaded data), so the
	// consumer is its own producer; register-file and store/load operand
	// flips corrupt a register value the consumer read, so the producer
	// is that register's last static writer before the consumer.
	var src isa.Reg
	var slot int
	switch f.Structure {
	case uarch.RF:
		if d.SrcSlot < 0 {
			return Cause{}, false
		}
		slot = int(d.SrcSlot)
		src = isa.SrcRegAt(cons, slot)
	case uarch.LQTag:
		// The queued tag is the load's address, generated from the base
		// register.
		slot, src = 0, cons.Src1
	case uarch.SQTag:
		slot, src = 0, cons.Src1
	case uarch.SQData:
		// The store's data operand.
		slot, src = 1, cons.Src2
	case uarch.IQ, uarch.ROB, uarch.FU, uarch.LQData:
		return Cause{PC: d.PC, Op: cons.Op, Instr: cons, Demanded: true}, true
	default:
		return Cause{}, false
	}
	demanded := bitDemanded(cons, slot, f, uarchRegBits(f.Structure))
	producer, ok := liveness.LastWriter(p, inBody, idx, src)
	if !ok {
		// The operand is RZero or never defined: the flipped bit held a
		// power-on value the consumer still architecturally consumed.
		// Attribute the consumer itself rather than inventing a producer.
		return Cause{PC: d.PC, Op: cons.Op, Instr: cons, Demanded: demanded}, true
	}
	return Cause{PC: pcOf(p, producer), Op: producer.Op, Instr: producer, Demanded: demanded}, true
}

// uarchRegBits returns the bit width of one value-holding entry of the
// structure, for locating the flipped bit inside the consumed value.
// The register file and the LSQ halves hold 64-bit values.
func uarchRegBits(s uarch.Structure) uint64 { _ = s; return 64 }

// bitDemanded reports whether the flipped bit (position within its
// 64-bit value) lies in the demand mask the consumer places on operand
// slot through isa.SrcDemand under full downstream demand.
func bitDemanded(cons *isa.Instr, slot int, f pipe.Fault, width uint64) bool {
	s1, s2 := isa.SrcDemand(cons, isa.AllBits)
	mask := s1
	if slot == 1 {
		mask = s2
	}
	bit := f.Bit % width
	return mask>>bit&1 == 1
}

// instrAt maps a PC back into the program.
func instrAt(p *prog.Program, pc uint64) (in *isa.Instr, inBody bool, idx int) {
	if pc >= prog.BodyBase {
		i := int((pc - prog.BodyBase) / isa.InstrBytes)
		if i < len(p.Body) {
			return &p.Body[i], true, i
		}
		return nil, false, 0
	}
	if pc >= prog.InitBase {
		i := int((pc - prog.InitBase) / isa.InstrBytes)
		if i < len(p.Init) {
			return &p.Init[i], false, i
		}
	}
	return nil, false, 0
}

// pcOf maps a static-instruction pointer back to its PC.
func pcOf(p *prog.Program, in *isa.Instr) uint64 {
	for i := range p.Init {
		if in == &p.Init[i] {
			return prog.InitBase + uint64(i)*isa.InstrBytes
		}
	}
	for i := range p.Body {
		if in == &p.Body[i] {
			return prog.PCOf(i)
		}
	}
	return 0
}

// Trial is one corrupted trial submitted for aggregation.
type Trial struct {
	Fault   pipe.Fault
	Diverge pipe.Diverge
	// DUE marks trials on detection-protected structures (rate zero):
	// detected corruption rather than silent.
	DUE bool
}

// InstrRow is one program instruction's aggregated vulnerability.
type InstrRow struct {
	PC       uint64
	Op       isa.Op
	Text     string // disassembly of the attributed instruction
	SDC      int
	DUE      int
	Demanded int     // attributed trials whose flipped bit was demanded
	Share    float64 // bit-cycle-normalised share of total corruption mass
	Lo, Hi   float64 // Wilson 95% CI on attributed fraction of corrupted trials
}

// ClassRow aggregates per instruction class (opcode).
type ClassRow struct {
	Op       isa.Op
	SDC      int
	DUE      int
	Demanded int
	Share    float64
	Lo, Hi   float64
}

// Result is the root-cause analysis of one campaign.
type Result struct {
	// Corrupted counts the SDC/DUE trials examined, Attributed those
	// mapped to an instruction, Unattributed the memory-hierarchy rest.
	Corrupted    int
	Attributed   int
	Unattributed int

	// Instrs ranks instructions by attributed trials (desc, PC asc on
	// ties); Classes ranks opcodes by normalised share.
	Instrs  []InstrRow
	Classes []ClassRow
}

// Aggregate attributes every corrupted trial and folds the causes into
// per-instruction and per-class tables. sampled[s] is the number of
// replayed trials in structure s's stratum: a stratified campaign
// samples each structure's bit-cycle space with a different density, so
// each trial carries weight bits(s)/sampled(s) — its share of the
// structure's bit-cycle mass — and Share columns are normalised over
// the total corrupted mass. Iteration order is fixed (input order, then
// sorted rows), so equal inputs aggregate to byte-identical tables.
func Aggregate(p *prog.Program, cfg uarch.Config, trials []Trial, sampled map[uarch.Structure]int) *Result {
	res := &Result{}
	type acc struct {
		row    InstrRow
		weight float64
	}
	type cacc struct {
		row    ClassRow
		weight float64
	}
	instrs := map[uint64]*acc{}
	classes := map[isa.Op]*cacc{}
	var totalW float64
	for _, t := range trials {
		res.Corrupted++
		w := 1.0
		if n := sampled[t.Fault.Structure]; n > 0 {
			w = float64(uarch.Bits(cfg, t.Fault.Structure)) / float64(n)
		}
		totalW += w
		c, ok := Attribute(p, t.Fault, t.Diverge)
		if !ok {
			res.Unattributed++
			continue
		}
		res.Attributed++
		a := instrs[c.PC]
		if a == nil {
			a = &acc{row: InstrRow{PC: c.PC, Op: c.Op, Text: c.Instr.String()}}
			instrs[c.PC] = a
		}
		ca := classes[c.Op]
		if ca == nil {
			ca = &cacc{row: ClassRow{Op: c.Op}}
			classes[c.Op] = ca
		}
		if t.DUE {
			a.row.DUE++
			ca.row.DUE++
		} else {
			a.row.SDC++
			ca.row.SDC++
		}
		if c.Demanded {
			a.row.Demanded++
			ca.row.Demanded++
		}
		a.weight += w
		ca.weight += w
	}
	for _, a := range instrs {
		if totalW > 0 {
			a.row.Share = a.weight / totalW
		}
		iv := wilson(a.row.SDC+a.row.DUE, res.Corrupted)
		a.row.Lo, a.row.Hi = iv.lo, iv.hi
		res.Instrs = append(res.Instrs, a.row)
	}
	for _, ca := range classes {
		if totalW > 0 {
			ca.row.Share = ca.weight / totalW
		}
		iv := wilson(ca.row.SDC+ca.row.DUE, res.Corrupted)
		ca.row.Lo, ca.row.Hi = iv.lo, iv.hi
		res.Classes = append(res.Classes, ca.row)
	}
	sort.Slice(res.Instrs, func(i, j int) bool {
		a, b := res.Instrs[i], res.Instrs[j]
		if an, bn := a.SDC+a.DUE, b.SDC+b.DUE; an != bn {
			return an > bn
		}
		return a.PC < b.PC
	})
	sort.Slice(res.Classes, func(i, j int) bool {
		a, b := res.Classes[i], res.Classes[j]
		if a.Share != b.Share {
			return a.Share > b.Share
		}
		return a.Op < b.Op
	})
	return res
}

// SDCDensity is the attributed-SDC fraction of the examined corruption
// mass: the scalar the GA's diagnostic hook (core.SearchSpec.
// RootCauseRank) surfaces for SDC-density search modes.
func (r *Result) SDCDensity() float64 {
	if r.Corrupted == 0 {
		return 0
	}
	sdc := 0
	for _, row := range r.Instrs {
		sdc += row.SDC
	}
	return float64(sdc) / float64(r.Corrupted)
}

// InstrRows renders the instruction ranking as report rows (top n;
// n <= 0 means all).
func (r *Result) InstrRows(n int) []report.RootCauseRow {
	if n <= 0 || n > len(r.Instrs) {
		n = len(r.Instrs)
	}
	rows := make([]report.RootCauseRow, 0, n)
	for _, row := range r.Instrs[:n] {
		rows = append(rows, report.RootCauseRow{
			Name: fmt.Sprintf("%05x  %s", row.PC, row.Text),
			SDC:  row.SDC, DUE: row.DUE, Demanded: row.Demanded,
			Share: row.Share, Lo: row.Lo, Hi: row.Hi,
		})
	}
	return rows
}

// ClassRows renders the instruction-class ranking as report rows.
func (r *Result) ClassRows() []report.RootCauseRow {
	rows := make([]report.RootCauseRow, 0, len(r.Classes))
	for _, row := range r.Classes {
		rows = append(rows, report.RootCauseRow{
			Name: row.Op.String(),
			SDC:  row.SDC, DUE: row.DUE, Demanded: row.Demanded,
			Share: row.Share, Lo: row.Lo, Hi: row.Hi,
		})
	}
	return rows
}

// String renders the full root-cause report: scope line, instruction
// ranking and class ranking.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "root cause: %d corrupted, %d attributed, %d unattributed (memory hierarchy)\n",
		r.Corrupted, r.Attributed, r.Unattributed)
	b.WriteString(report.RootCauseTable("Root-cause instructions", r.InstrRows(0)))
	b.WriteString(report.RootCauseTable("Root-cause instruction classes", r.ClassRows()))
	return b.String()
}

// interval is a Wilson 95% score interval (boundary-safe at k=0, k=n).
type interval struct{ lo, hi float64 }

const z95 = 1.959963984540054

func wilson(k, n int) interval {
	if n <= 0 {
		return interval{}
	}
	p := float64(k) / float64(n)
	nn := float64(n)
	z2 := z95 * z95
	denom := 1 + z2/nn
	center := (p + z2/(2*nn)) / denom
	half := z95 * math.Sqrt(p*(1-p)/nn+z2/(4*nn*nn)) / denom
	return interval{lo: clamp01(center - half), hi: clamp01(center + half)}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
