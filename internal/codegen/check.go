package codegen

import (
	"fmt"

	"avfstress/internal/isa"
	"avfstress/internal/prog"
)

// CheckACEClosure verifies the generator's central invariant: every
// register value produced in the loop body transitively reaches program
// output (a store's data or address operand, or a branch condition)
// within a bounded number of iterations. The paper's generator guarantees
// this by construction; this checker proves it for a concrete program.
//
// The check unrolls the body three times, tracks reaching definitions,
// builds the value-flow graph, and requires every middle-iteration
// definition to reach a sink.
func CheckACEClosure(p *prog.Program) error {
	const unroll = 3
	type defID int
	const noDef defID = -1

	owner := make([]defID, isa.NumArchRegs)
	for i := range owner {
		owner[i] = noDef
	}
	// Init-block definitions are pre-existing values (defID noDef is fine
	// for them: only middle-iteration defs are checked).
	nDefs := unroll * len(p.Body)
	edges := make([][]defID, nDefs)
	sink := make([]bool, nDefs)

	var scratch []isa.Reg
	id := func(iter, idx int) defID { return defID(iter*len(p.Body) + idx) }
	for iter := 0; iter < unroll; iter++ {
		for idx := range p.Body {
			in := &p.Body[idx]
			d := id(iter, idx)
			scratch = scratch[:0]
			scratch = in.SrcRegs(scratch)
			isSink := in.Op == isa.OpStore || in.Op == isa.OpBranch
			for _, r := range scratch {
				src := owner[r]
				if src == noDef {
					continue
				}
				if isSink {
					sink[src] = true
				} else {
					edges[src] = append(edges[src], d)
				}
			}
			if in.Writes() {
				owner[in.Dest] = d
			}
		}
	}

	// Propagate sink-reachability backward via forward DFS from each
	// middle-iteration def.
	reaches := func(start defID) bool {
		seen := make(map[defID]bool)
		stack := []defID{start}
		for len(stack) > 0 {
			d := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if sink[d] {
				return true
			}
			if seen[d] {
				continue
			}
			seen[d] = true
			stack = append(stack, edges[d]...)
		}
		return false
	}
	for idx := range p.Body {
		in := &p.Body[idx]
		if !in.Writes() {
			continue
		}
		d := id(1, idx)
		if !reaches(d) {
			return fmt.Errorf("codegen: value of body[%d] (%v) in a steady-state iteration never reaches a store or branch", idx, in)
		}
	}
	return nil
}
