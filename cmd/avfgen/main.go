// Command avfgen turns code-generator knob settings into a stressmark
// listing (the reproduction's analogue of the paper's generated "C with
// embedded Alpha assembly").
//
// Usage:
//
//	avfgen [-config baseline|configA] [-scale N] [-ref key | knob flags]
//
// Example:
//
//	avfgen -ref baseline            # the paper's Figure 5a stressmark
//	avfgen -loop 60 -loads 12 -stores 12 -l2hit
package main

import (
	"flag"
	"fmt"
	"os"

	"avfstress/internal/codegen"
	"avfstress/internal/experiments"
	"avfstress/internal/uarch"
)

func main() {
	var (
		config = flag.String("config", "baseline", "target configuration: baseline or configA")
		scale  = flag.Int("scale", 1, "cache scale-down factor")
		ref    = flag.String("ref", "", "use reference knobs: baseline, rhc, edr or configA")

		loop    = flag.Int("loop", 81, "loop size (instructions)")
		loads   = flag.Int("loads", 29, "number of loads (incl. chase)")
		stores  = flag.Int("stores", 28, "number of stores")
		indep   = flag.Int("indep", 5, "independent arithmetic instructions")
		missdep = flag.Int("missdep", 7, "instructions dependent on the L2 miss")
		chain   = flag.Float64("chain", 2.14, "average dependence chain length")
		depdist = flag.Int("depdist", 6, "dependency distance")
		longlat = flag.Float64("longlat", 0.8, "fraction of long-latency arithmetic")
		regreg  = flag.Float64("regreg", 0.93, "fraction of reg-reg arithmetic")
		seed    = flag.Int64("seed", 42, "placement seed")
		l2hit   = flag.Bool("l2hit", false, "use the L2-hit generator variant")
	)
	flag.Parse()

	cfg := uarch.Baseline()
	if *config == "configA" {
		cfg = uarch.ConfigA()
	} else if *config != "baseline" {
		fmt.Fprintf(os.Stderr, "avfgen: unknown config %q\n", *config)
		os.Exit(1)
	}
	cfg = uarch.Scaled(cfg, *scale)

	k := codegen.Knobs{
		LoopSize: *loop, NumLoads: *loads, NumStores: *stores,
		NumIndepArith: *indep, MissDependent: *missdep,
		AvgChainLength: *chain, DepDistance: *depdist,
		FracLongLatency: *longlat, FracRegReg: *regreg,
		Seed: *seed, L2Hit: *l2hit,
	}
	if *ref != "" {
		var err error
		k, err = experiments.ReferenceKnobs(*ref)
		if err != nil {
			fmt.Fprintln(os.Stderr, "avfgen:", err)
			os.Exit(1)
		}
	}
	p, eff, err := codegen.Generate(cfg, k, 1<<20)
	if err != nil {
		fmt.Fprintln(os.Stderr, "avfgen:", err)
		os.Exit(1)
	}
	fmt.Printf("; effective knobs (after normalisation for %s):\n", cfg.Name)
	for _, line := range splitLines(eff.String()) {
		fmt.Printf(";   %s\n", line)
	}
	fmt.Println(p.Listing())
	if err := codegen.CheckACEClosure(p); err != nil {
		fmt.Fprintln(os.Stderr, "avfgen: ACE closure check failed:", err)
		os.Exit(1)
	}
	fmt.Println("; ACE closure check: every value reaches program output ✓")
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
