// Package service is the avfstressd job server: an HTTP surface over
// the scenario registry and the concurrent DAG scheduler. Clients
// submit declarative scenario.Specs (POST /v1/jobs), follow progress
// (GET /v1/jobs/{id}, optionally streamed), fetch rendered reports and
// results (GET /v1/results/{id}) and cancel running work (DELETE
// /v1/jobs/{id}).
//
// All jobs share one content-addressed simulation store (optionally
// disk-backed), so concurrent clients requesting overlapping scenarios
// each pay only the marginal simulations; every job runs against its
// own store view, so per-job cache-effectiveness stats are exact even
// under concurrency. Job execution is bounded by MaxJobs; each job's
// context is cancelled by DELETE or its spec's timeout, and
// cancellation propagates through the scheduler, the experiment
// harness and the GA (DESIGN.md §8).
//
// Besides the registered paper experiments, specs may request the
// parametric scenarios — stressmark, workloads and faultinject (the
// Monte Carlo fault-injection validation, sized by the spec's
// inject_trials field; DESIGN.md §9). Fault-injection trials memoise
// in the shared store like every other result, so repeated campaigns
// across jobs replay only the marginal trials.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"avfstress/internal/experiments"
	"avfstress/internal/scenario"
	"avfstress/internal/simcache"
)

// Options configures a Server.
type Options struct {
	// CacheDir enables the shared store's disk tier ("" = memory only).
	CacheDir string
	// Scale is the default cache scale-down factor for jobs that do not
	// set one (0 = the experiments default).
	Scale int
	// Parallelism bounds each job's concurrent jobs/simulations
	// (0 = GOMAXPROCS).
	Parallelism int
	// MaxJobs bounds concurrently *running* jobs; excess submissions
	// queue in order (0 = GOMAXPROCS).
	MaxJobs int
	// MaxHistory bounds retained jobs: when a submission would exceed
	// it, the oldest *terminal* jobs (and their reports) are evicted —
	// a long-running daemon's memory stays bounded, at the cost of old
	// job ids turning 404 (0 = 512).
	MaxHistory int
	// Logf, when set, receives server-side log lines.
	Logf func(format string, args ...interface{})
}

// Server implements http.Handler. Construct with New.
type Server struct {
	opts  Options
	store *simcache.Store
	slots chan struct{}
	mux   *http.ServeMux

	mu   sync.Mutex
	jobs map[string]*job
	seq  int
}

// Status is a job's lifecycle state.
type Status string

// Job lifecycle states.
const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// Terminal reports whether the state is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// job is one submitted request.
type job struct {
	id        string
	spec      scenario.Spec
	scenarios []string
	cancel    context.CancelFunc
	done      chan struct{}

	mu       sync.Mutex
	status   Status
	lines    []string
	report   string
	errMsg   string
	stats    simcache.Stats
	created  time.Time
	started  time.Time
	finished time.Time
}

func (j *job) logf(format string, args ...interface{}) {
	j.mu.Lock()
	j.lines = append(j.lines, fmt.Sprintf(format, args...))
	j.mu.Unlock()
}

// JobStatus is the wire form of a job's state.
type JobStatus struct {
	ID        string         `json:"id"`
	Status    Status         `json:"status"`
	Scenarios []string       `json:"scenarios"`
	Spec      scenario.Spec  `json:"spec"`
	Progress  []string       `json:"progress,omitempty"`
	Error     string         `json:"error,omitempty"`
	Stats     simcache.Stats `json:"stats"`
	CreatedAt time.Time      `json:"created_at"`
	StartedAt *time.Time     `json:"started_at,omitempty"`
	EndedAt   *time.Time     `json:"ended_at,omitempty"`
}

func (j *job) snapshot(progress bool) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.id, Status: j.status, Scenarios: j.scenarios, Spec: j.spec,
		Error: j.errMsg, Stats: j.stats, CreatedAt: j.created,
	}
	if progress {
		st.Progress = append([]string(nil), j.lines...)
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.EndedAt = &t
	}
	return st
}

// New builds a server with its shared simulation store.
func New(opts Options) *Server {
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = runtime.GOMAXPROCS(0)
	}
	if opts.MaxHistory <= 0 {
		opts.MaxHistory = 512
	}
	s := &Server{
		opts:  opts,
		store: simcache.New(simcache.Options{Dir: opts.CacheDir}),
		slots: make(chan struct{}, opts.MaxJobs),
		jobs:  map[string]*job{},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/results/{id}", s.handleResults)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Store exposes the shared simulation store (server-wide stats).
func (s *Server) Store() *simcache.Store { return s.store }

// Shutdown cancels every non-terminal job and waits for them to drain
// (bounded by ctx).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	var pending []*job
	for _, j := range s.jobs {
		pending = append(pending, j)
	}
	s.mu.Unlock()
	for _, j := range pending {
		j.cancel()
	}
	for _, j := range pending {
		select {
		case <-j.done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// handleSubmit validates the spec, registers the job and starts it in
// the background (queueing behind MaxJobs running jobs).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec scenario.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	names, err := experiments.ResolveSpec(spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	ctx := context.Background()
	var cancel context.CancelFunc
	if spec.TimeoutSec > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(spec.TimeoutSec)*time.Second)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	s.mu.Lock()
	s.seq++
	j := &job{
		id: fmt.Sprintf("job-%d", s.seq), spec: spec, scenarios: names,
		cancel: cancel, done: make(chan struct{}),
		status: StatusQueued, created: time.Now(),
	}
	s.jobs[j.id] = j
	s.evictLocked()
	s.mu.Unlock()
	s.logf("submitted %s: %v", j.id, names)
	go s.run(ctx, j)
	writeJSON(w, http.StatusAccepted, j.snapshot(false))
}

// evictLocked drops the oldest terminal jobs until at most MaxHistory
// remain, keeping the daemon's memory bounded. Non-terminal jobs are
// never evicted. Caller holds s.mu.
func (s *Server) evictLocked() {
	excess := len(s.jobs) - s.opts.MaxHistory
	for i := 1; excess > 0 && i <= s.seq; i++ {
		id := fmt.Sprintf("job-%d", i)
		if j, ok := s.jobs[id]; ok && func() bool {
			j.mu.Lock()
			defer j.mu.Unlock()
			return j.status.Terminal()
		}() {
			delete(s.jobs, id)
			excess--
		}
	}
}

// run executes one job against a fresh experiments context sharing the
// server's store through a per-job view.
func (s *Server) run(ctx context.Context, j *job) {
	defer close(j.done)
	defer j.cancel()

	// Take a run slot; a cancellation while queued resolves immediately.
	select {
	case s.slots <- struct{}{}:
		defer func() { <-s.slots }()
	case <-ctx.Done():
		j.finish("", ctx.Err(), simcache.Stats{})
		return
	}

	j.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	j.mu.Unlock()

	view := s.store.View()
	base := experiments.Options{
		Scale:       s.opts.Scale,
		Parallelism: s.opts.Parallelism,
		Cache:       view,
		Logf:        j.logf,
	}
	c, names, err := experiments.NewSpecContext(j.spec, base)
	var report string
	if err == nil {
		report, err = c.RunScenarios(ctx, names)
	}
	j.finish(report, err, view.LocalStats())
	s.logf("%s finished: %s (cache %s)", j.id, j.snapshot(false).Status, view.LocalStats())
}

func (j *job) finish(report string, err error, stats simcache.Stats) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	j.stats = stats
	switch {
	case err == nil:
		j.status = StatusDone
		j.report = report
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		j.status = StatusCanceled
		j.errMsg = err.Error()
	default:
		j.status = StatusFailed
		j.errMsg = err.Error()
	}
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
	}
	return j
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ordered := make([]*job, 0, len(s.jobs))
	for i := 1; i <= s.seq; i++ {
		if j, ok := s.jobs[fmt.Sprintf("job-%d", i)]; ok {
			ordered = append(ordered, j)
		}
	}
	s.mu.Unlock()
	jobs := make([]JobStatus, len(ordered))
	for i, j := range ordered {
		jobs[i] = j.snapshot(false)
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"jobs":  jobs,
		"stats": s.store.Stats(),
	})
}

// handleStatus reports a job; with ?stream=1 it streams progress lines
// as plain text until the job reaches a terminal state.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	if r.URL.Query().Get("stream") == "" {
		writeJSON(w, http.StatusOK, j.snapshot(true))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	sent := 0
	for {
		j.mu.Lock()
		lines := j.lines[sent:]
		sent = len(j.lines)
		status := j.status
		errMsg := j.errMsg
		j.mu.Unlock()
		for _, l := range lines {
			fmt.Fprintln(w, l)
		}
		if len(lines) > 0 && flusher != nil {
			flusher.Flush()
		}
		if status.Terminal() {
			fmt.Fprintf(w, "status: %s", status)
			if errMsg != "" {
				fmt.Fprintf(w, " (%s)", errMsg)
			}
			fmt.Fprintln(w)
			return
		}
		select {
		case <-j.done:
			// Loop once more to drain the final lines.
		case <-r.Context().Done():
			return
		case <-time.After(150 * time.Millisecond):
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.cancel()
	writeJSON(w, http.StatusAccepted, j.snapshot(false))
}

// handleResults returns the rendered report and result stats of a
// finished job: JSON by default, the raw report text with ?format=text.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	status, report := j.status, j.report
	j.mu.Unlock()
	if !status.Terminal() {
		httpError(w, http.StatusConflict, "job %s is %s; results are available once it finishes", j.id, status)
		return
	}
	if status != StatusDone {
		st := j.snapshot(false)
		httpError(w, http.StatusGone, "job %s %s: %s", j.id, st.Status, st.Error)
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, report)
		return
	}
	st := j.snapshot(false)
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"id":       j.id,
		"status":   st.Status,
		"stats":    st.Stats,
		"report":   report,
		"ended_at": st.EndedAt,
	})
}
