// Command benchjson converts `go test -bench` output on stdin into
// machine-readable JSON on stdout, so benchmark snapshots can be
// committed (BENCH_*.json) and compared across PRs without parsing the
// text format again. Used by `make bench` and, with -check, by the CI
// bench-smoke regression gate.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem | benchjson > BENCH_latest.json
//	go test -run '^$' -bench . -benchtime 1x ./... | benchjson -check BENCH_latest.json
//
// Each benchmark line becomes one record; custom b.ReportMetric units
// land in "metrics". Context lines (goos/goarch/pkg/cpu) are captured
// into the header; with multiple packages on stdin each result is tagged
// with its package. With -check, results are compared by name against
// the baseline snapshot and the exit status is non-zero if any benchmark
// regressed by more than -tolerance (ns/op).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Pkg         string             `json:"pkg,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the full converted run.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	var (
		check     = flag.String("check", "", "baseline BENCH_*.json: fail if any benchmark regresses past the tolerance")
		tolerance = flag.Float64("tolerance", 0.20, "allowed fractional ns/op regression vs the baseline (with -check)")
		minNs     = flag.Float64("min-ns", 1e6, "skip baselines faster than this in -check (single-iteration sub-ms timings are noise)")
	)
	flag.Parse()

	rep := Report{Results: []Result{}}
	curPkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			curPkg = strings.TrimPrefix(line, "pkg: ")
			if rep.Pkg == "" {
				rep.Pkg = curPkg
			}
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				if curPkg != rep.Pkg {
					r.Pkg = curPkg
				}
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "\t")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *check != "" && !compare(rep, *check, *tolerance, *minNs) {
		os.Exit(1)
	}
}

// compare reports whether every benchmark present in both the run and
// the baseline is within the allowed ns/op regression.
func compare(rep Report, baselinePath string, tolerance, minNs float64) bool {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading baseline: %v\n", err)
		return false
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: parsing baseline: %v\n", err)
		return false
	}
	baseBy := make(map[string]float64, len(base.Results))
	for _, r := range base.Results {
		baseBy[r.Pkg+"|"+stripProcs(r.Name)] = r.NsPerOp
	}
	ok := true
	checked := 0
	for _, r := range rep.Results {
		want, have := baseBy[r.Pkg+"|"+stripProcs(r.Name)]
		if !have || want < minNs {
			continue // new benchmark, or too fast to time reliably at 1x
		}
		checked++
		if r.NsPerOp > want*(1+tolerance) {
			fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s: %.0f ns/op vs baseline %.0f (+%.1f%% > %.0f%% allowed)\n",
				r.Name, r.NsPerOp, want, 100*(r.NsPerOp/want-1), 100*tolerance)
			ok = false
		}
	}
	fmt.Fprintf(os.Stderr, "benchjson: checked %d benchmarks against %s (tolerance %.0f%%)\n",
		checked, baselinePath, 100*tolerance)
	if checked == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmarks matched the baseline — the gate covered nothing\n")
		return false
	}
	return ok
}

// stripProcs removes the "-N" GOMAXPROCS suffix go test appends on
// multi-core machines, so -check matches snapshots across core counts.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	if i+1 == len(name) {
		return name
	}
	return name[:i]
}

// parseLine handles `BenchmarkName-8  N  12.3 ns/op  4 B/op  2 allocs/op
// 5.0 custom-unit ...`: a name, an iteration count, then value/unit
// pairs.
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: f[0], Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[f[i+1]] = v
		}
	}
	return r, true
}
