package pipe

// Register-file dead-interval recording (DESIGN.md §12). Static
// liveness (internal/liveness) proves certain static definitions dead
// — no ACE instruction ever reads the value before redefinition — but
// which physical register a definition lands in is decided dynamically
// by the free list. The golden run bridges that gap: a liveRecorder is
// armed during SimulateGoldenRecorded and logs, per physical slot, the
// occupancy intervals during which the slot holds a correct-path
// instance of a statically dead definition. Every (slot, cycle) fault
// target inside such an interval is masked by construction:
//
//   - before the value's writeTime the slot is not yet live
//     (applyFault sees writeTime > cycle);
//   - after it, the armed fate watch resolves on lastRead > cycle, and
//     a dead definition's lastRead never advances past its writeTime
//     (only ACE readers advance lastRead, and it has none).
//
// The recorder is a pure observer: it never mutates simulator state,
// so a recorded golden run is bit-identical to an unrecorded one, and
// the recorded intervals are independent of whether the campaign that
// triggered the run has pruning enabled — which keeps golden-info
// cache blobs byte-stable across knob settings.

import (
	"avfstress/internal/avf"
	"avfstress/internal/isa"
	"avfstress/internal/prog"
)

// RFDeadInterval is one recorded dead occupancy of a physical register
// slot: [Start, End) in absolute cycles, End == -1 when the occupancy
// was still open at the end of the run.
type RFDeadInterval struct {
	Slot  int16
	Start int64
	End   int64
}

type liveRecorder struct {
	dead map[*isa.Instr]bool
	open []int64 // per slot: start cycle of an open dead occupancy, -1 none
	out  []RFDeadInterval
}

func newLiveRecorder(physRegs int, dead map[*isa.Instr]bool) *liveRecorder {
	rec := &liveRecorder{dead: dead, open: make([]int64, physRegs)}
	for i := range rec.open {
		rec.open[i] = -1
	}
	return rec
}

// onWrite observes a correct-path destination write at issue.
func (rec *liveRecorder) onWrite(p int16, cycle int64, in *isa.Instr) {
	if rec.dead[in] {
		rec.open[p] = cycle
	}
}

// onRelease observes the slot's release at the overwriting
// instruction's commit, closing any open dead occupancy.
func (rec *liveRecorder) onRelease(p int16, cycle int64) {
	if st := rec.open[p]; st >= 0 {
		rec.open[p] = -1
		rec.out = append(rec.out, RFDeadInterval{Slot: p, Start: st, End: cycle})
	}
}

// finish closes still-open occupancies as open-ended intervals and
// returns the recorded set (deterministic order: closed intervals in
// release order, then open ones by slot).
func (rec *liveRecorder) finish() []RFDeadInterval {
	for p, st := range rec.open {
		if st >= 0 {
			rec.open[p] = -1
			rec.out = append(rec.out, RFDeadInterval{Slot: int16(p), Start: st, End: -1})
		}
	}
	return rec.out
}

// SimulateGoldenRecorded is SimulateGoldenCheckpointed plus dead-def
// interval recording: the golden run additionally maps the statically
// dead definitions in deadDefs onto physical-register occupancy
// intervals, returned in GoldenInfo.RFDead. Recording is a pure
// observer — result, digest and checkpoints are bit-identical to the
// unrecorded variants. A negative interval disables checkpoint capture
// (nil set), exactly as in SimulateGoldenCheckpointed.
func (pp *Pool) SimulateGoldenRecorded(p *prog.Program, rc RunConfig, interval int64, deadDefs map[*isa.Instr]bool) (*avf.Result, GoldenInfo, *CheckpointSet, error) {
	pl, err := pp.get(p)
	if err != nil {
		return nil, GoldenInfo{}, nil, err
	}
	var rec *ckptRecorder
	if interval >= 0 {
		if interval == 0 {
			interval = autoCheckpointInterval
		}
		rec = &ckptRecorder{interval: interval}
		pl.ckptRec = rec
	}
	lrec := newLiveRecorder(len(pl.regs), deadDefs)
	pl.liveRec = lrec
	pl.digestOn = true
	pl.digest = fnvOffset64
	res, runErr := pl.Run(rc)
	info := GoldenInfo{Digest: pl.digest}
	lead := pl.mem.TimestampLead()
	pl.digestOn = false
	pl.ckptRec = nil
	pl.liveRec = nil
	if runErr == nil {
		info.WindowStart = pl.acct.windowStart
		info.Cycles = res.Cycles
		info.RFDead = lrec.finish()
	}
	pp.pool.Put(pl)
	if runErr != nil {
		return nil, GoldenInfo{}, nil, runErr
	}
	var set *CheckpointSet
	if rec != nil {
		set = &CheckpointSet{Interval: rec.interval, Lead: lead, Checkpoints: rec.cks}
	}
	return res, info, set, nil
}
