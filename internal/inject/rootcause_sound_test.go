package inject

// Differential soundness tests for root-cause attribution (DESIGN.md
// §14): the replay engine's first-divergent-commit record and the static
// def-use walk in internal/rootcause are verified against the dynamic
// instruction stream itself. For every corrupting trial, the consumer
// named by the Diverge record must be the real dynamic instruction at
// that stream sequence, and the attributed root-cause instruction must
// lie on the dynamic def-use path into that commit — the consumer, or
// the dynamic last writer of the operand the flipped bit flowed through.
// The static walk (liveness.LastWriter over init·body^ω) and the
// dynamic reference are independent implementations, so agreement here
// is the attribution soundness contract, mirroring the statically-
// dead-must-replay-masked contract of the pruning tests.

import (
	"fmt"
	"testing"

	"avfstress/internal/codegen"
	"avfstress/internal/isa"
	"avfstress/internal/pipe"
	"avfstress/internal/prog"
	"avfstress/internal/rootcause"
	"avfstress/internal/uarch"
)

// memStructure reports whether s is a memory-hierarchy fate watch,
// which exposes no consuming-instruction identity.
func memStructure(s uarch.Structure) bool {
	return s == uarch.DL1 || s == uarch.DTLB || s == uarch.L2
}

// verifyTrialAttribution checks one corrupted trial against the dynamic
// stream and returns whether an attribution was actually verified.
func verifyTrialAttribution(t *testing.T, p *prog.Program, f pipe.Fault, d pipe.Diverge) bool {
	t.Helper()
	if memStructure(f.Structure) {
		if d.Seq >= 0 {
			t.Errorf("%v: memory-hierarchy trial claims a consuming instruction: %+v", f, d)
		}
		return false
	}
	if d.Seq < 0 {
		// Core-structure corruption without a consumer: only legal for a
		// register-file watch resolved by overwrite/pop bookkeeping — the
		// queues always know their occupant.
		if f.Structure != uarch.RF {
			t.Errorf("%v: corrupted core-structure trial without a consumer", f)
		}
		return false
	}
	c, ok := rootcause.Attribute(p, f, d)
	if !ok {
		t.Errorf("%v: corrupted trial with consumer %+v failed to attribute", f, d)
		return false
	}

	// Dynamic reference: walk the committed stream up to the diverge
	// sequence, tracking every architected register's last dynamic
	// writer.
	lastW := map[isa.Reg]uint64{}
	s := prog.NewStream(p)
	var cons prog.Dyn
	found := false
	for {
		dyn, more := s.Next()
		if !more || dyn.Seq > d.Seq {
			break
		}
		if dyn.Seq == d.Seq {
			cons, found = dyn, true
			break
		}
		if isa.WritesDest(dyn.Static) {
			lastW[dyn.Static.Dest] = dyn.PC
		}
	}
	if !found {
		t.Errorf("%v: diverge seq %d beyond the dynamic stream", f, d.Seq)
		return false
	}
	if cons.PC != d.PC || cons.Static.Op != d.Op {
		t.Errorf("%v: diverge names %05x %v, stream seq %d is %05x %v",
			f, d.PC, d.Op, d.Seq, cons.PC, cons.Static.Op)
		return false
	}

	// Which operand did the flipped value flow through? Queue-structure
	// flips corrupt the consumer's own in-flight state; RF and LSQ
	// operand flips corrupt a register value, whose dynamic last writer
	// is the true producer.
	var reg isa.Reg
	self := false
	switch f.Structure {
	case uarch.RF:
		if d.SrcSlot < 0 {
			t.Errorf("%v: RF consumer without a source slot: %+v", f, d)
			return false
		}
		reg = isa.SrcRegAt(cons.Static, int(d.SrcSlot))
	case uarch.LQTag, uarch.SQTag:
		reg = cons.Static.Src1
	case uarch.SQData:
		reg = cons.Static.Src2
	default:
		self = true
	}
	want := cons.PC
	if !self && reg != isa.RZero {
		if pc, ok := lastW[reg]; ok {
			want = pc
		}
	}
	if c.PC != want {
		t.Errorf("%v consumer %05x %v slot %d: attributed %05x %v, dynamic def-use path expects %05x",
			f, d.PC, d.Op, d.SrcSlot, c.PC, c.Op, want)
		return false
	}
	return true
}

// sweepAttributions samples each structure's bit-cycle space through the
// campaign's own splitmix64 streams, replays every sampled target, and
// verifies the attribution of each corrupting trial. Returns the number
// of verified attributions.
func sweepAttributions(t *testing.T, pool *pipe.Pool, p *prog.Program, rc pipe.RunConfig, cfg uarch.Config, seed int64, perStructure int) int {
	t.Helper()
	info, err := goldenWindow(pool, p, rc)
	if err != nil {
		t.Fatal(err)
	}
	verified := 0
	for s := uarch.Structure(0); s < uarch.NumStructures; s++ {
		r := stratumRNG(seed, s)
		bits := uarch.Bits(cfg, s)
		checked := 0
		for att := 0; att < 64*perStructure && checked < perStructure; att++ {
			f := pipe.Fault{
				Structure: s,
				Bit:       r.next() % bits,
				Cycle:     info.WindowStart + int64(r.next()%uint64(info.Cycles)),
			}
			trial, err := pool.SimulateFaultDetail(p, rc, f)
			if err != nil {
				t.Fatalf("%v: %v", f, err)
			}
			if !trial.Corrupted {
				if trial.Diverge.Seq >= 0 {
					t.Errorf("%v: masked trial claims a consumer: %+v", f, trial.Diverge)
				}
				continue
			}
			checked++
			if verifyTrialAttribution(t, p, f, trial.Diverge) {
				verified++
			}
		}
	}
	return verified
}

// goldenWindow runs the golden simulation once to learn the sampled
// cycle window.
func goldenWindow(pool *pipe.Pool, p *prog.Program, rc pipe.RunConfig) (pipe.GoldenInfo, error) {
	_, info, _, err := pool.SimulateGoldenRecorded(p, rc, -1, nil)
	return info, err
}

// TestRootCauseSoundAgainstReplay is the attribution soundness contract:
// part one drives a hand-built program whose def-use chains are fully
// known (every structure class exercised — arith chain, load, store,
// branch), part two fuzzes generated programs across seeds. In both,
// every corrupting trial's attributed instruction must lie on the
// dynamic def-use path into the first divergent commit.
func TestRootCauseSoundAgainstReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("replay sweep in -short mode")
	}
	cfg := uarch.Scaled(uarch.Baseline(), 32)

	// Hand-built: add feeds mul and both memory ops' base, mul feeds the
	// store's data, the load feeds a dependent add and the branch — every
	// attribution case (RF slots 0/1, LQ/SQ tag and data, queue
	// self-attribution, init-block producers after loop wrap) is
	// reachable.
	var init []isa.Instr
	for r := isa.Reg(0); r < isa.NumArchRegs-1; r++ {
		init = append(init, isa.Instr{Op: isa.OpAdd, Dest: r, Src1: isa.RZero, Imm: int16(r)})
	}
	body := []isa.Instr{
		{Op: isa.OpAdd, Dest: 6, Src1: 2, Imm: 3},
		{Op: isa.OpMul, Dest: 7, Src1: 6, Src2: 2, RegReg: true},
		{Op: isa.OpLoad, Dest: 8, Src1: 6, AddrGen: 0},
		{Op: isa.OpStore, Dest: isa.RZero, Src1: 6, Src2: 7, AddrGen: 1},
		{Op: isa.OpAdd, Dest: 9, Src1: 8, Imm: 1},
		{Op: isa.OpBranch, Dest: isa.RZero, Src1: 9, BrGen: 0},
	}
	small := &prog.Program{
		Name: "rootchain", Init: init, Body: body,
		AddrGens: []prog.AddrGen{
			prog.PointerChase{Base: 0x1_0000, Stride: 64, Region: 1 << 12},
			prog.PointerChase{Base: 0x8_0000, Stride: 64, Region: 1 << 12},
		},
		BrGens:     []prog.BranchGen{prog.LoopBranch{Iterations: 1 << 40}},
		Iterations: 1 << 40,
	}
	if err := small.Validate(); err != nil {
		t.Fatal(err)
	}
	pool, err := pipe.NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rc := pipe.RunConfig{MaxInstructions: 2_000, WarmupInstructions: 500}
	if n := sweepAttributions(t, pool, small, rc, cfg, 1, 12); n < 20 {
		t.Errorf("hand-built program verified only %d attributions, want >= 20", n)
	}

	// Fuzz: generated programs across seeds, each with its own pool and
	// golden window, sampled through the campaign's own streams.
	for _, seed := range []int64{1, 2, 3, 4, 5, 77} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			k := codegen.Knobs{LoopSize: 81, NumLoads: 29, NumStores: 28,
				NumIndepArith: 5, MissDependent: 7, AvgChainLength: 2.14,
				DepDistance: 6, FracLongLatency: 0.8, FracRegReg: 0.93, Seed: seed}
			p, _, err := codegen.Generate(cfg, k, 1<<40)
			if err != nil {
				t.Fatal(err)
			}
			frc := pipe.RunConfig{MaxInstructions: 3_000, WarmupInstructions: 1_000}
			if n := sweepAttributions(t, pool, p, frc, cfg, seed, 6); n < 10 {
				t.Errorf("seed %d verified only %d attributions, want >= 10", seed, n)
			}
		})
	}
}
